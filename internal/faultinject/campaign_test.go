package faultinject

import (
	"fmt"
	"testing"
)

// TestFullCampaign runs the complete Table 7.4 campaign: 49 hardware fault
// trials and 20 kernel-corruption trials. Containment must hold in every
// one, as it did in the paper.
func TestFullCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign is long")
	}
	scenarios := []Scenario{NodeFailProcCreate, NodeFailCOWSearch, NodeFailRandom, CorruptAddrMap, CorruptCOWTree}
	hw, sw := 0, 0
	for _, s := range scenarios {
		row := RunScenario(s, s.PaperTests())
		fmt.Printf("%-50s tests=%2d allOK=%v avgDetect=%.1fms maxDetect=%.1fms avgRecov=%.1fms\n",
			s, row.Tests, row.AllOK, row.AvgDetect, row.MaxDetect, row.AvgRecov)
		if !row.AllOK {
			for _, f := range row.Failures {
				t.Errorf("%s: %s", s, f)
			}
		}
		if s.Hardware() {
			hw += row.Tests
		} else {
			sw += row.Tests
		}
	}
	if hw != 49 || sw != 20 {
		t.Fatalf("campaign size hw=%d sw=%d, want 49/20", hw, sw)
	}
}
