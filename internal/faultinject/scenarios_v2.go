// scenarios_v2.go — the v2 adversarial campaign. The paper's Table 7.4
// injects fail-stop node faults and kernel data corruption; the v2 rows
// attack the substrate the recovery algorithms themselves depend on:
// messages are dropped, duplicated, delayed, and corrupted in flight, and
// further faults are injected *during* a recovery round — a second member
// dies mid-round, or the round coordinator (the recovery master) dies
// between its two barriers. Containment for the message rows means nobody
// dies and the workload completes unharmed (the fault is absorbed by
// checksum discard, retry, and dedup); for the recovery rows it means
// exactly the two faulted cells go down and the round still converges.
package faultinject

import (
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/proc"
	"repro/internal/rpc"
	"repro/internal/sim"
)

const (
	// MsgDrop loses SIPS messages carrying retry-safe RPC traffic
	// (requests to — or replies from — idempotent services); the caller's
	// bounded retransmit must recover (pmake).
	MsgDrop Scenario = CorruptCOWTree + 1 + iota
	// MsgDup delivers messages into the target cell twice; server-side
	// dedup and stale-reply discard must absorb the duplicates (pmake).
	MsgDup
	// MsgCorrupt flips payload bits in flight; the line checksum must
	// detect the damage at delivery and degrade the fault to a drop
	// (pmake).
	MsgCorrupt
	// DoubleFault fails a second cell while the first failure's recovery
	// round is between its barriers, forcing the barrier-shrink and
	// vote-withdrawal path (pmake).
	DoubleFault
	// CoordinatorDeath fails the round coordinator (the recovery master)
	// between barrier 1 and barrier 2; the survivors must restart the
	// round under the next live cell (pmake).
	CoordinatorDeath
	// FaultStorm mixes drops, duplicates, delays, and corruption over a
	// 25 ms window of the whole message stream (pmake).
	FaultStorm
	// FaultDuringReintegration closes the availability loop and then
	// attacks it: a cell fails at a random time, the reboot controller
	// microboots it, and a second fault kills the joiner just after the
	// join round's first barrier opens — the round must abort cleanly
	// without taking a survivor with it, and the retry must restore full
	// capacity (pmake).
	FaultDuringReintegration
	// CrashLoop cuts the rebooted cell down on every join attempt; the
	// controller must stop at its rejoin-backoff bound and give up,
	// leaving the survivors intact (pmake).
	CrashLoop
	// RollingReboot fails every fault-eligible cell in sequence under
	// load, waiting for each to reboot, rejoin, and restore full capacity
	// before the next kill (pmake).
	RollingReboot
	// SurgeFault kills a cell in the middle of the multi-tenant
	// frontend's burst window and rides the full death → reboot → rejoin
	// → re-stripe loop while the open-loop arrival stream keeps coming:
	// the user-visible availability window (first to last degraded or
	// lost request) must be bounded by the restore time (frontend).
	SurgeFault
)

// NumScenarios counts all campaign scenarios, paper rows and extensions.
const NumScenarios = int(SurgeFault) + 1

// crashLoopBound is the rejoin-attempt bound CrashLoop trials configure and
// then verify: the controller must give up after exactly this many attempts.
const crashLoopBound = 3

// RebootLoop reports whether the scenario exercises the availability loop:
// the trial boots with the reboot controller enabled, and cell deaths are
// expected to heal (except past CrashLoop's give-up bound) rather than
// persist to the end of the run.
func (s Scenario) RebootLoop() bool { return s >= FaultDuringReintegration }

// Extension reports whether the scenario extends the paper's Table 7.4
// (the v2 adversarial rows) rather than reproducing one of its rows.
func (s Scenario) Extension() bool { return s > CorruptCOWTree }

// DefaultTests returns the default campaign trial count: the paper's
// counts for Table 7.4 rows, fixed counts for the extension rows.
func (s Scenario) DefaultTests() int {
	if !s.Extension() {
		return s.PaperTests()
	}
	switch s {
	case MsgDrop, MsgDup, MsgCorrupt:
		return 10
	case DoubleFault, CoordinatorDeath, FaultStorm:
		return 6
	case FaultDuringReintegration, CrashLoop:
		return 6
	case RollingReboot:
		return 4
	case SurgeFault:
		return 4
	}
	return 0
}

// ExpectDeaths returns how many cells the scenario is expected to leave
// dead at the end of the run: message faults must kill nobody; the
// recovery-under-fault rows kill two; the availability-loop rows heal their
// deaths (only CrashLoop's give-up bound leaves its victim down).
func (s Scenario) ExpectDeaths() int {
	switch s {
	case MsgDrop, MsgDup, MsgCorrupt, FaultStorm, FaultDuringReintegration, RollingReboot, SurgeFault:
		return 0
	case DoubleFault, CoordinatorDeath:
		return 2
	default:
		return 1
	}
}

// AllScenarios lists every campaign scenario, paper rows first.
func AllScenarios() []Scenario {
	out := make([]Scenario, NumScenarios)
	for i := range out {
		out[i] = Scenario(i)
	}
	return out
}

// msgInjector drives machine.FaultHook for one trial. Every decision is a
// deterministic function of the message stream and the trial's seeded
// arming time, so same-seed trials stay bit-identical.
type msgInjector struct {
	h      *core.Hive
	mode   machine.MsgFault
	storm  bool
	target int      // destination cell filter (-1 = any)
	armAt  sim.Time // faults begin here
	until  sim.Time // and end here (0 = when the budget runs out)
	budget int
	active bool

	seq     int      // messages seen in the window (storm pattern index)
	fired   int      // faults actually injected
	firstAt sim.Time // time of the first injection

	// lanes holds a sharded run's injection state, one lane per source
	// cell (see laneDecide); nil in classic runs.
	lanes []msgLane
}

// msgLane is one source cell's independent injection state in a sharded
// run. The fault hook fires on the sending cell's shard, so per-source
// state keeps each decision a pure function of that shard's own message
// stream and clock — race-free and identical at any worker count.
type msgLane struct {
	seq     int
	budget  int
	until   sim.Time
	fired   int
	firstAt sim.Time
}

// armMsgFaults installs a fault hook for one of the message scenarios.
func armMsgFaults(h *core.Hive, s Scenario, target int, rng *rand.Rand) *msgInjector {
	inj := &msgInjector{
		h:      h,
		target: target,
		active: true,
		budget: 3,
		armAt:  sim.Time(800+rng.Intn(2000)) * sim.Millisecond,
	}
	switch s {
	case MsgDrop:
		inj.mode = machine.FaultDrop
	case MsgDup:
		inj.mode = machine.FaultDup
	case MsgCorrupt:
		inj.mode = machine.FaultCorrupt
	case FaultStorm:
		inj.storm = true
		inj.target = -1
		inj.budget = 40
		// The 25 ms storm window opens at the first message at or after
		// the arming time (a fixed window can land in a pure-compute gap
		// with no traffic at all).
	}
	if s != FaultStorm && len(h.Cells) != 4 {
		// On the paper's 4-cell machine every cell sees RPC traffic for
		// the whole run, so filtering on the target cell always finds
		// messages to fault. At larger counts pmake gives each cell at
		// most one job and the target may go quiet before the arming
		// time — fault the whole fabric instead (message faults kill
		// nobody; containment is judged globally either way).
		inj.target = -1
	}
	if h.Clu != nil {
		inj.lanes = make([]msgLane, len(h.Cells))
		for i := range inj.lanes {
			inj.lanes[i].budget = inj.budget
		}
	}
	h.M.FaultHook = inj.decide
	return inj
}

// disarm removes the hook (before the post-fault correctness check) and, in
// a sharded run, folds the per-lane tallies into the trial totals: fired is
// the sum over lanes, firstAt the minimum virtual injection time — both
// deterministic once each lane's stream is.
func (in *msgInjector) disarm() {
	in.active = false
	in.h.M.FaultHook = nil
	for i := range in.lanes {
		l := &in.lanes[i]
		in.fired += l.fired
		if l.fired > 0 && (in.firstAt == 0 || l.firstAt < in.firstAt) {
			in.firstAt = l.firstAt
		}
	}
}

// retrySafe reports whether losing msg is recoverable above the wire: only
// RPC traffic of idempotent services is retransmitted by the caller (and
// its retransmits deduplicated by the server), so only that traffic may be
// dropped or corrupted without failing the workload.
func (in *msgInjector) retrySafe(msg *machine.SIPSMsg) bool {
	meta, ok := rpc.ClassifySIPS(msg)
	if !ok {
		return false
	}
	return in.h.Cells[0].EP.IsIdempotent(meta.Proc)
}

// destCell maps the destination processor to its owning cell.
func (in *msgInjector) destCell(msg *machine.SIPSMsg) int {
	return in.h.CellOfNode[in.h.M.Procs[msg.To].Node.ID]
}

// hit records one injection and returns its decision.
func (in *msgInjector) hit(d machine.MsgFaultDecision) machine.MsgFaultDecision {
	if in.fired == 0 {
		in.firstAt = in.h.Eng.Now()
	}
	in.fired++
	in.budget--
	return d
}

// decide is the machine.FaultHook entry point.
func (in *msgInjector) decide(msg *machine.SIPSMsg) machine.MsgFaultDecision {
	if in.lanes != nil {
		return in.laneDecide(msg)
	}
	if !in.active || in.budget <= 0 {
		return machine.MsgFaultDecision{}
	}
	now := in.h.Eng.Now()
	if now < in.armAt || (in.until > 0 && now > in.until) {
		return machine.MsgFaultDecision{}
	}
	if in.target >= 0 && in.destCell(msg) != in.target {
		return machine.MsgFaultDecision{}
	}
	if in.storm {
		if in.fired == 0 {
			in.until = now + 25*sim.Millisecond
		}
		return in.stormDecide(msg)
	}
	switch in.mode {
	case machine.FaultDrop, machine.FaultCorrupt:
		if !in.retrySafe(msg) {
			return machine.MsgFaultDecision{}
		}
	case machine.FaultDup:
		if _, ok := rpc.ClassifySIPS(msg); !ok {
			return machine.MsgFaultDecision{}
		}
	}
	return in.hit(machine.MsgFaultDecision{Fault: in.mode})
}

// laneDecide is the sharded-run decision path: the hook runs on the sending
// cell's shard, so only that source's lane is touched and all times come
// from the source shard's own clock. Each lane carries the full budget and
// (for storms) opens its own 25 ms window at its first message at or after
// the arming time.
func (in *msgInjector) laneDecide(msg *machine.SIPSMsg) machine.MsgFaultDecision {
	if !in.active {
		return machine.MsgFaultDecision{}
	}
	srcNode := in.h.M.Procs[msg.From].Node.ID
	lane := &in.lanes[in.h.CellOfNode[srcNode]]
	if lane.budget <= 0 {
		return machine.MsgFaultDecision{}
	}
	now := in.h.M.NodeEngine(srcNode).Now()
	if now < in.armAt || (lane.until > 0 && now > lane.until) {
		return machine.MsgFaultDecision{}
	}
	if in.target >= 0 && in.destCell(msg) != in.target {
		return machine.MsgFaultDecision{}
	}
	hit := func(d machine.MsgFaultDecision) machine.MsgFaultDecision {
		if lane.fired == 0 {
			lane.firstAt = now
		}
		lane.fired++
		lane.budget--
		return d
	}
	if in.storm {
		if lane.until == 0 {
			lane.until = now + 25*sim.Millisecond
		}
		lane.seq++
		switch lane.seq % 5 {
		case 0:
			return hit(machine.MsgFaultDecision{Fault: machine.FaultDup})
		case 1:
			return hit(machine.MsgFaultDecision{Fault: machine.FaultDelay, Delay: 200 * sim.Microsecond})
		case 2:
			if in.retrySafe(msg) {
				return hit(machine.MsgFaultDecision{Fault: machine.FaultDrop})
			}
			return hit(machine.MsgFaultDecision{Fault: machine.FaultDelay, Delay: 100 * sim.Microsecond})
		case 3:
			if in.retrySafe(msg) {
				return hit(machine.MsgFaultDecision{Fault: machine.FaultCorrupt})
			}
		}
		return machine.MsgFaultDecision{}
	}
	switch in.mode {
	case machine.FaultDrop, machine.FaultCorrupt:
		if !in.retrySafe(msg) {
			return machine.MsgFaultDecision{}
		}
	case machine.FaultDup:
		if _, ok := rpc.ClassifySIPS(msg); !ok {
			return machine.MsgFaultDecision{}
		}
	}
	return hit(machine.MsgFaultDecision{Fault: in.mode})
}

// stormDecide mixes fault kinds over the stream in a fixed pattern:
// duplicates and delays may hit any message (dedup and timeouts absorb
// them), drops and corruption only retry-safe traffic.
func (in *msgInjector) stormDecide(msg *machine.SIPSMsg) machine.MsgFaultDecision {
	in.seq++
	switch in.seq % 5 {
	case 0:
		return in.hit(machine.MsgFaultDecision{Fault: machine.FaultDup})
	case 1:
		return in.hit(machine.MsgFaultDecision{Fault: machine.FaultDelay, Delay: 200 * sim.Microsecond})
	case 2:
		if in.retrySafe(msg) {
			return in.hit(machine.MsgFaultDecision{Fault: machine.FaultDrop})
		}
		return in.hit(machine.MsgFaultDecision{Fault: machine.FaultDelay, Delay: 100 * sim.Microsecond})
	case 3:
		if in.retrySafe(msg) {
			return in.hit(machine.MsgFaultDecision{Fault: machine.FaultCorrupt})
		}
	}
	return machine.MsgFaultDecision{}
}

// latencyProbe measures user-visible operation latency through the
// availability loop: a probe process on cell 0 (a file server, never a
// victim) computes a fixed slice every few milliseconds and records each
// op's elapsed virtual time. Recovery rounds freeze user compute (§3.1), so
// the probe's tail — the trial's LoopP99Ms — directly exposes what the
// fault → reboot → rejoin loop cost the workload.
type latencyProbe struct {
	samples []float64 // per-op latency, ms
	stop    bool
}

// probeOp/probePeriod shape the probe stream: ~200µs of work every 2ms
// yields a few thousand samples over a trial, enough for a stable p99.
const (
	probeOp     = 200 * sim.Microsecond
	probePeriod = 2 * sim.Millisecond
)

// startLatencyProbe spawns the probe on cell 0. The sample slice is only
// ever touched by the probe task (cell 0's shard) while the engine runs,
// and only read by the harness when it is stopped — race-free and
// deterministic at any worker count.
func startLatencyProbe(h *core.Hive) *latencyProbe {
	pr := &latencyProbe{}
	h.Cells[0].Procs.Spawn("probe", 903, func(p *proc.Process, t *sim.Task) {
		for !pr.stop {
			t0 := t.Now()
			p.Compute(t, probeOp)
			pr.samples = append(pr.samples, (t.Now() - t0).Millis())
			t.Sleep(probePeriod)
		}
	})
	return pr
}

// stopAndP99 ends the probe (it exits at its next iteration) and returns
// the p99 of the samples taken so far.
func (pr *latencyProbe) stopAndP99() float64 {
	pr.stop = true
	if len(pr.samples) == 0 {
		return 0
	}
	s := append([]float64(nil), pr.samples...)
	sort.Float64s(s)
	return s[(len(s)-1)*99/100]
}

// rpcCounterTotal sums one endpoint counter across every cell.
func rpcCounterTotal(h *core.Hive, name string) int64 {
	var n int64
	for _, c := range h.Cells {
		n += c.EP.Metrics.Counter(name).Value()
	}
	return n
}

// msgFaultDetected reports whether the messaging layer visibly observed
// and absorbed the injected wire fault — the detection criterion for the
// zero-death scenarios.
func msgFaultDetected(h *core.Hive, s Scenario) bool {
	switch s {
	case MsgDrop:
		// A dropped request or reply must have forced a retransmit.
		return rpcCounterTotal(h, "rpc.retries") > 0
	case MsgCorrupt:
		// The delivery-side checksum must have discarded a line.
		return h.M.Metrics.Counter("sips.checksum_drops").Value() > 0
	case MsgDup:
		// A duplicate request hits the server dedup table, a duplicate
		// reply the caller's duplicate- or stale-reply discard.
		return rpcCounterTotal(h, "rpc.dup_requests")+
			rpcCounterTotal(h, "rpc.dup_replies")+
			rpcCounterTotal(h, "rpc.stale_replies") > 0
	case FaultStorm:
		// Mixed faults: injection firing is the witness; per-kind
		// evidence is covered by the dedicated scenarios.
		return true
	}
	return false
}
