package faultinject

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/parallel"
)

// tracedTrials runs n NodeFailRandom trials with trace export enabled on a
// pool of the given width and returns the concatenated Chrome trace JSON
// plus the marshalled campaign row.
func tracedTrials(t *testing.T, workers, n int) ([]byte, []byte) {
	t.Helper()
	opts := TrialOpts{KeepTrace: true, TraceCap: 1 << 14}
	trials := parallel.Map(parallel.New(workers), n, func(i int) *TrialResult {
		return RunTrialOpts(NodeFailRandom, i, opts)
	})
	var traces bytes.Buffer
	for i, tr := range trials {
		if len(tr.TraceJSON) == 0 {
			t.Fatalf("trial %d: no trace exported", i)
		}
		traces.Write(tr.TraceJSON)
	}
	row, err := json.Marshal(Aggregate(NodeFailRandom, trials))
	if err != nil {
		t.Fatal(err)
	}
	return traces.Bytes(), row
}

// TestTraceAndMetricsDeterminism is the observability regression gate: the
// exported Chrome trace and the histogram-backed campaign row must be
// byte-identical whether trials run sequentially (-j1) or interleaved on a
// four-worker pool (-j4), and across repeated same-seed runs.
func TestTraceAndMetricsDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six traced injection trials")
	}
	const n = 2
	seqTrace, seqRow := tracedTrials(t, 1, n)
	parTrace, parRow := tracedTrials(t, 4, n)
	againTrace, againRow := tracedTrials(t, 4, n)

	if !bytes.Equal(seqTrace, parTrace) {
		t.Errorf("trace JSON diverged between -j1 (%d bytes) and -j4 (%d bytes)",
			len(seqTrace), len(parTrace))
	}
	if !bytes.Equal(parTrace, againTrace) {
		t.Errorf("trace JSON diverged between repeated same-seed -j4 runs")
	}
	if !bytes.Equal(seqRow, parRow) || !bytes.Equal(parRow, againRow) {
		t.Errorf("campaign row diverged:\n-j1:  %s\n-j4:  %s\n-j4': %s", seqRow, parRow, againRow)
	}

	// The export must actually contain structure worth gating on: at
	// least one cross-cell RPC slice and the recovery phase spans.
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	first := seqTrace[:bytes.IndexByte(seqTrace, '\n')+1]
	if err := json.Unmarshal(first, &doc); err != nil {
		t.Fatalf("trace is not valid Chrome trace JSON: %v", err)
	}
	seen := map[string]bool{}
	rpcSlices := 0
	for _, e := range doc.TraceEvents {
		seen[e.Name] = true
		if e.Ph == "X" && len(e.Name) > 4 && e.Name[:4] == "rpc:" {
			rpcSlices++
		}
	}
	for _, want := range []string{
		"recovery:detect", "recovery:alert", "recovery:barrier1",
		"recovery:barrier2", "recovery:resume",
	} {
		if !seen[want] {
			t.Errorf("trace missing recovery phase span %q", want)
		}
	}
	if rpcSlices == 0 {
		t.Error("trace has no RPC slices")
	}
}
