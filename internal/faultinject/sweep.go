// sweep.go — the seeded campaign sweep: enumerate the full
// (scenario × inject-time × target) grid and minimize any failing trial to
// its smallest reproducing seed. A grid point is one (scenario, trial)
// pair; the trial index deterministically encodes the target cell
// (1 + trial%2 for most scenarios) and, through the derived seed, the
// injection time, so sweeping trials 0..n-1 covers the grid.
//
// Every trial is hermetic (its own engine, seeded from the grid point) and
// the results are folded in grid order, so a sweep's report — including
// its witness hash — is byte-identical across runs and worker counts.
package faultinject

import (
	"fmt"
	"hash/fnv"

	"repro/internal/parallel"
)

// SweepOpts configures a campaign sweep.
type SweepOpts struct {
	// Scenarios to sweep; nil = every scenario, paper rows and extensions.
	Scenarios []Scenario
	// TrialsPer is the grid depth per scenario (minimum 1).
	TrialsPer int
	// Runner fans trials out; nil = the process-wide default pool.
	Runner *parallel.Runner
	// MinimizeAttempts bounds the candidate seeds tried when minimizing
	// a failure (default 8).
	MinimizeAttempts int
	// Shards selects the engine mode per trial (0 = classic, N = sharded
	// with N workers). The witness hash is identical at every value — the
	// sweep-level arm of the shard-identity gate.
	Shards int
}

// SweepFailure is one failing grid point, minimized.
type SweepFailure struct {
	Scenario Scenario
	Trial    int
	Seed     int64
	Notes    string
	// MinSeed is the smallest seed found that reproduces the failure;
	// equal to Seed when no smaller one reproduces it.
	MinSeed   int64
	Minimized bool // a smaller reproducing seed was found
	MinNotes  string
}

// SweepRow summarizes one scenario's slice of the grid.
type SweepRow struct {
	Scenario Scenario
	Name     string
	Trials   int
	OK       int
}

// SweepReport is the sweep's deterministic outcome.
type SweepReport struct {
	Points   int
	OKCount  int
	Rows     []*SweepRow
	Failures []*SweepFailure
	// Hash is an FNV-1a witness over every grid point's outcome in grid
	// order; two same-configuration sweeps must agree on it exactly.
	Hash uint64
}

// AllOK reports a clean sweep.
func (r *SweepReport) AllOK() bool { return len(r.Failures) == 0 }

// Sweep runs the grid and minimizes failures. Trials fan out across the
// runner; folding happens in grid order, so the report is byte-identical
// at any worker count.
func Sweep(opts SweepOpts) *SweepReport {
	scen := opts.Scenarios
	if scen == nil {
		scen = AllScenarios()
	}
	per := opts.TrialsPer
	if per < 1 {
		per = 1
	}
	r := opts.Runner
	if r == nil {
		r = parallel.Default()
	}
	n := len(scen) * per
	trials := parallel.Map(r, n, func(i int) *TrialResult {
		return RunTrialOpts(scen[i/per], i%per, TrialOpts{Shards: opts.Shards})
	})

	rep := &SweepReport{Points: n}
	for _, s := range scen {
		rep.Rows = append(rep.Rows, &SweepRow{Scenario: s, Name: s.String(), Trials: per})
	}
	w := fnv.New64a()
	for i, tr := range trials {
		fmt.Fprintf(w, "%d:%d:%d:%v:%v:%v:%v:%v:%.6f:%.6f:%s\n",
			int(tr.Scenario), i%per, tr.Seed,
			tr.Detected, tr.Contained, tr.IntegrityOK, tr.CorrectRunOK, tr.StateOK,
			tr.DetectMs, tr.RecoveryMs, tr.Notes)
		if tr.OK() {
			rep.OKCount++
			rep.Rows[i/per].OK++
			continue
		}
		rep.Failures = append(rep.Failures, minimize(tr, i%per, opts.MinimizeAttempts, opts.Shards))
	}
	rep.Hash = w.Sum64()
	return rep
}

// minimize searches ascending candidate seeds for the smallest one that
// still reproduces the failure at the same grid point (on the same engine
// mode the sweep ran).
func minimize(tr *TrialResult, trial, attempts, shards int) *SweepFailure {
	if attempts <= 0 {
		attempts = 8
	}
	f := &SweepFailure{
		Scenario: tr.Scenario,
		Trial:    trial,
		Seed:     tr.Seed,
		Notes:    tr.Notes,
		MinSeed:  tr.Seed,
	}
	for cand := int64(1); cand <= int64(attempts) && cand < tr.Seed; cand++ {
		if rt := RunTrialOpts(tr.Scenario, trial, TrialOpts{Seed: cand, Shards: shards}); !rt.OK() {
			f.MinSeed = cand
			f.Minimized = true
			f.MinNotes = rt.Notes
			break
		}
	}
	return f
}

// Format renders the report as a deterministic text block (no wall-clock
// content), suitable for byte-comparison across same-seed runs.
func (r *SweepReport) Format() string {
	out := fmt.Sprintf("sweep: %d grid points across %d scenarios\n", r.Points, len(r.Rows))
	for _, row := range r.Rows {
		out += fmt.Sprintf("  %-48s %d/%d contained\n", row.Name, row.OK, row.Trials)
	}
	for _, f := range r.Failures {
		out += fmt.Sprintf("  FAIL %s trial %d seed %d minseed %d minimized=%v notes=%s\n",
			f.Scenario, f.Trial, f.Seed, f.MinSeed, f.Minimized, f.Notes)
	}
	out += fmt.Sprintf("sweep hash: %016x\n", r.Hash)
	if r.AllOK() {
		out += fmt.Sprintf("PASS: %d/%d grid points contained; 0 unminimized failures\n", r.OKCount, r.Points)
	} else {
		out += fmt.Sprintf("FAIL: %d/%d grid points contained; %d failures (all minimized)\n",
			r.OKCount, r.Points, len(r.Failures))
	}
	return out
}
