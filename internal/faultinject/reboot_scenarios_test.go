package faultinject

import "testing"

// rebootScenarios are the three availability-loop scenarios: they close
// the fault → reboot → rejoin → full-capacity loop and then attack it.
var rebootScenarios = []Scenario{FaultDuringReintegration, CrashLoop, RollingReboot}

// TestRebootScenariosContained runs every default trial of the three
// reboot scenarios: each must detect, contain, pass the workload checks,
// and close the loop the way its containment rule demands (exactly one
// costly rejoin, a bounded give-up, or a full rolling restoration).
func TestRebootScenariosContained(t *testing.T) {
	if testing.Short() {
		t.Skip("full reboot campaign; skipped with -short")
	}
	for _, s := range rebootScenarios {
		for trial := 0; trial < s.DefaultTests(); trial++ {
			tr := RunTrial(s, trial)
			if !tr.OK() {
				t.Errorf("%v trial %d failed: det=%v cont=%v integ=%v check=%v state=%v notes=%s",
					s, trial, tr.Detected, tr.Contained, tr.IntegrityOK, tr.CorrectRunOK,
					tr.StateOK, tr.Notes)
				continue
			}
			t.Logf("%v trial %d ok rejoins=%d restore=%.1fms loop-p99=%.2fms",
				s, trial, tr.Rejoins, tr.RestoreMs, tr.LoopP99Ms)
		}
	}
}

// TestRebootScenarioMetrics pins the loop metrics for trial 0 of each
// scenario: the re-kill costs the joiner at least one extra attempt, the
// crash loop restores nothing, and the rolling reboot reports the worst
// pass.
func TestRebootScenarioMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("reboot trials; skipped with -short")
	}
	for _, s := range rebootScenarios {
		tr := RunTrial(s, 0)
		if !tr.OK() {
			t.Fatalf("%v trial 0 failed: %s", s, tr.Notes)
		}
		switch s {
		case FaultDuringReintegration:
			if tr.Rejoins != 1 || tr.RestoreMs <= 0 {
				t.Errorf("%v: rejoins=%d restore=%.1f, want exactly 1 rejoin with restore > 0",
					s, tr.Rejoins, tr.RestoreMs)
			}
		case CrashLoop:
			if tr.Rejoins != 0 || tr.RestoreMs != 0 {
				t.Errorf("%v: rejoins=%d restore=%.1f, want no rejoin and no restoration",
					s, tr.Rejoins, tr.RestoreMs)
			}
		case RollingReboot:
			if tr.Rejoins < 2 || tr.RestoreMs <= 0 {
				t.Errorf("%v: rejoins=%d restore=%.1f, want every victim restored",
					s, tr.Rejoins, tr.RestoreMs)
			}
		}
		if tr.LoopP99Ms <= 0 {
			t.Errorf("%v: loop p99 latency not measured", s)
		}
	}
}

// TestRebootScenarioShardIdentity requires the loop metrics to be
// identical between the classic-equivalent 1-shard engine and a 4-way
// sharded run, and the sharded trace hash to be reproducible.
func TestRebootScenarioShardIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded reboot trials; skipped with -short")
	}
	for _, s := range rebootScenarios {
		a := RunTrialOpts(s, 0, TrialOpts{TraceHash: true, Shards: 1})
		b := RunTrialOpts(s, 0, TrialOpts{TraceHash: true, Shards: 4})
		if a.TraceHash == 0 || a.OK() != b.OK() || a.RestoreMs != b.RestoreMs ||
			a.LoopP99Ms != b.LoopP99Ms || a.Rejoins != b.Rejoins {
			t.Errorf("%v: shard mismatch: ok=%v/%v restore=%v/%v p99=%v/%v rejoins=%d/%d notes=%q/%q",
				s, a.OK(), b.OK(), a.RestoreMs, b.RestoreMs, a.LoopP99Ms, b.LoopP99Ms,
				a.Rejoins, b.Rejoins, a.Notes, b.Notes)
		}
		c := RunTrialOpts(s, 0, TrialOpts{TraceHash: true, Shards: 4})
		if b.TraceHash != c.TraceHash {
			t.Errorf("%v: sharded trace hash not reproducible", s)
		}
	}
}
