package faultinject

import (
	"testing"

	"repro/internal/parallel"
)

// TestTrialDeterminismUnderParallelRunner is the regression gate for the
// parallel experiment layer: the same trial must produce identical
// detection latency, recovery latency, and event-trace hash whether it runs
// alone or interleaved with other trials on a multi-worker pool.
func TestTrialDeterminismUnderParallelRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six injection trials")
	}
	const n = 3
	opts := TrialOpts{TraceHash: true}
	seq := parallel.Map(parallel.New(1), n, func(i int) *TrialResult {
		return RunTrialOpts(NodeFailRandom, i, opts)
	})
	par := parallel.Map(parallel.New(4), n, func(i int) *TrialResult {
		return RunTrialOpts(NodeFailRandom, i, opts)
	})
	for i := range seq {
		s, p := seq[i], par[i]
		if s.TraceHash == 0 || p.TraceHash == 0 {
			t.Fatalf("trial %d: trace hash not recorded (seq=%x par=%x)", i, s.TraceHash, p.TraceHash)
		}
		if s.DetectMs != p.DetectMs {
			t.Errorf("trial %d: DetectMs %v (sequential) != %v (parallel)", i, s.DetectMs, p.DetectMs)
		}
		if s.RecoveryMs != p.RecoveryMs {
			t.Errorf("trial %d: RecoveryMs %v (sequential) != %v (parallel)", i, s.RecoveryMs, p.RecoveryMs)
		}
		if s.TraceHash != p.TraceHash {
			t.Errorf("trial %d: event-trace hash %x (sequential) != %x (parallel)", i, s.TraceHash, p.TraceHash)
		}
		if s.Detected != p.Detected || s.Contained != p.Contained {
			t.Errorf("trial %d: outcome diverged: seq=%+v par=%+v", i, s, p)
		}
	}
}

// TestScenarioAggregateDeterminism checks the aggregated campaign row is
// byte-identical across worker counts (ordered collection).
func TestScenarioAggregateDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four injection trials")
	}
	a := RunScenarioWith(parallel.New(1), NodeFailProcCreate, 2)
	b := RunScenarioWith(parallel.New(4), NodeFailProcCreate, 2)
	if a.AvgDetect != b.AvgDetect || a.MaxDetect != b.MaxDetect || a.AvgRecov != b.AvgRecov || a.AllOK != b.AllOK {
		t.Fatalf("aggregates diverged:\n-j1: %+v\n-j4: %+v", a, b)
	}
}
