package faultinject

import (
	"testing"

	"repro/internal/parallel"
)

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	// The acceptance bar for the campaign sweep: same configuration, any
	// worker count — byte-identical report, equal witness hash, all points
	// contained.
	if testing.Short() {
		t.Skip("full sweep trials in -short mode")
	}
	opts := SweepOpts{TrialsPer: 1}
	opts.Runner = parallel.New(1)
	a := Sweep(opts)
	opts.Runner = parallel.New(4)
	b := Sweep(opts)
	if a.Hash != b.Hash {
		t.Fatalf("witness hash diverged: %016x vs %016x", a.Hash, b.Hash)
	}
	if a.Format() != b.Format() {
		t.Fatalf("report bytes diverged:\n--- j1:\n%s--- j4:\n%s", a.Format(), b.Format())
	}
	if !a.AllOK() {
		t.Fatalf("sweep not clean:\n%s", a.Format())
	}
	if a.Points != len(AllScenarios()) || a.OKCount != a.Points {
		t.Fatalf("points=%d ok=%d, want %d/%d", a.Points, a.OKCount,
			len(AllScenarios()), len(AllScenarios()))
	}
}
