package faultinject

import "testing"

// TestSurgeFaultContained kills a cell mid-surge under the open-loop
// frontend: the fault must be contained, the victim must close the full
// death → reboot → rejoin loop exactly once, live traffic must flow
// through the whole episode, and the user-visible error window must be
// bounded by the restoration time.
func TestSurgeFaultContained(t *testing.T) {
	if testing.Short() {
		t.Skip("surge trial; skipped with -short")
	}
	tr := RunTrial(SurgeFault, 0)
	if !tr.OK() {
		t.Fatalf("surge trial failed: det=%v cont=%v integ=%v check=%v state=%v notes=%s",
			tr.Detected, tr.Contained, tr.IntegrityOK, tr.CorrectRunOK, tr.StateOK, tr.Notes)
	}
	if tr.Rejoins != 1 || tr.RestoreMs <= 0 {
		t.Errorf("rejoins=%d restore=%.1fms, want exactly one rejoin with restore > 0",
			tr.Rejoins, tr.RestoreMs)
	}
	if tr.FeIssued == 0 || tr.FeCompleted == 0 {
		t.Errorf("frontend issued=%d completed=%d, want live traffic through the fault",
			tr.FeIssued, tr.FeCompleted)
	}
	if tr.FeWindowMs <= 0 || tr.FeWindowMs > tr.RestoreMs+250 {
		t.Errorf("window=%.1fms restore=%.1fms, want 0 < window ≤ restore + 250ms slack",
			tr.FeWindowMs, tr.RestoreMs)
	}
	if tr.FeP99Us <= 0 {
		t.Error("frontend latency p99 not measured")
	}
}

// TestSurgeFaultShardIdentity requires the surge trial's verdict and
// frontend metrics to be identical between the 1-shard engine and a
// 4-way sharded run.
func TestSurgeFaultShardIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded surge trials; skipped with -short")
	}
	a := RunTrialOpts(SurgeFault, 1, TrialOpts{Shards: 1})
	b := RunTrialOpts(SurgeFault, 1, TrialOpts{Shards: 4})
	if a.OK() != b.OK() || a.FeIssued != b.FeIssued || a.FeCompleted != b.FeCompleted ||
		a.FeWindowMs != b.FeWindowMs || a.FeP99Us != b.FeP99Us || a.Rejoins != b.Rejoins {
		t.Errorf("shard mismatch: ok=%v/%v issued=%d/%d done=%d/%d window=%v/%v p99=%v/%v rejoins=%d/%d",
			a.OK(), b.OK(), a.FeIssued, b.FeIssued, a.FeCompleted, b.FeCompleted,
			a.FeWindowMs, b.FeWindowMs, a.FeP99Us, b.FeP99Us, a.Rejoins, b.Rejoins)
	}
}
