package faultinject

import (
	"fmt"
	"testing"
)

// trialFingerprint summarizes the fields the shard-identity gate diffs.
func trialFingerprint(r *TrialResult) string {
	return fmt.Sprintf("inj=%d detect=%.6f recov=%.6f d=%v c=%v i=%v ok=%v state=%v th=%x notes=%q",
		r.InjectedAt, r.DetectMs, r.RecoveryMs, r.Detected, r.Contained,
		r.IntegrityOK, r.CorrectRunOK, r.StateOK, r.TraceHash, r.Notes)
}

// TestShardedTrialIdentity runs one trial of hardware-fault, corruption,
// and message-fault scenarios on the sharded engine at 1 and 2 workers
// and requires identical outcomes including the per-shard dispatch-trace
// hash — the campaign-level determinism gate in miniature (CI runs the
// full quick campaign the same way). The hook-driven scenarios
// (NodeFailProcCreate, NodeFailCOWSearch, CorruptCOWTree) exercise the
// Engine.Global hop: their injections fire from workload tasks on cell
// shards and must reach machine-global state through the global phase.
func TestShardedTrialIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded trial identity skipped in -short")
	}
	for _, s := range []Scenario{NodeFailProcCreate, NodeFailCOWSearch,
		NodeFailRandom, CorruptAddrMap, CorruptCOWTree, MsgDrop, FaultStorm} {
		ref := RunTrialOpts(s, 0, TrialOpts{Shards: 1, TraceHash: true})
		got := RunTrialOpts(s, 0, TrialOpts{Shards: 2, TraceHash: true})
		if fp, want := trialFingerprint(got), trialFingerprint(ref); fp != want {
			t.Errorf("%v: 2-worker trial diverged\n got %s\nwant %s", s, fp, want)
		}
		if !ref.OK() {
			t.Errorf("%v: sharded trial not OK: %s", s, trialFingerprint(ref))
		}
	}
}
