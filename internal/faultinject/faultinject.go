// Package faultinject implements the §7.4 fault-injection campaign: the
// 49 fail-stop hardware fault tests and 20 kernel data corruption tests of
// Table 7.4, with the paper's measurement methodology — inject into one
// cell of a four-cell Hive, record the latency until the last cell enters
// recovery, observe whether the other cells survive, then run a pmake as a
// system correctness check and compare all output files against reference
// content.
package faultinject

import (
	"bytes"
	"fmt"
	"hash"
	"hash/fnv"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/kmem"
	"repro/internal/parallel"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wax"
	"repro/internal/workload"
)

// Scenario names one Table 7.4 row.
type Scenario int

const (
	// NodeFailProcCreate is a fail-stop node failure during process
	// creation (pmake), 20 tests.
	NodeFailProcCreate Scenario = iota
	// NodeFailCOWSearch is a fail-stop node failure during a
	// copy-on-write search (raytrace), 9 tests.
	NodeFailCOWSearch
	// NodeFailRandom is a fail-stop node failure at a random time
	// (pmake), 20 tests.
	NodeFailRandom
	// CorruptAddrMap corrupts a pointer in a process address map
	// (pmake), 8 tests.
	CorruptAddrMap
	// CorruptCOWTree corrupts a pointer in the copy-on-write tree
	// (raytrace), 12 tests.
	CorruptCOWTree
)

// String names the scenario as in Table 7.4.
func (s Scenario) String() string {
	switch s {
	case NodeFailProcCreate:
		return "node failure during process creation (P)"
	case NodeFailCOWSearch:
		return "node failure during copy-on-write search (R)"
	case NodeFailRandom:
		return "node failure at random time (P)"
	case CorruptAddrMap:
		return "corrupt pointer in process address map (P)"
	case CorruptCOWTree:
		return "corrupt pointer in copy-on-write tree (R)"
	case MsgDrop:
		return "message dropped in flight (P, ext)"
	case MsgDup:
		return "message duplicated in flight (P, ext)"
	case MsgCorrupt:
		return "message corrupted in flight (P, ext)"
	case DoubleFault:
		return "second node failure during recovery (P, ext)"
	case CoordinatorDeath:
		return "recovery coordinator fails mid-round (P, ext)"
	case FaultStorm:
		return "message fault storm (P, ext)"
	case FaultDuringReintegration:
		return "second fault during reintegration (P, ext)"
	case CrashLoop:
		return "crash loop bounded by rejoin backoff (P, ext)"
	case RollingReboot:
		return "rolling reboot of all cells (P, ext)"
	case SurgeFault:
		return "cell failure during frontend surge (F, ext)"
	default:
		return "unknown"
	}
}

// PaperTests returns the paper's trial count for the scenario.
func (s Scenario) PaperTests() int {
	switch s {
	case NodeFailProcCreate:
		return 20
	case NodeFailCOWSearch:
		return 9
	case NodeFailRandom:
		return 20
	case CorruptAddrMap:
		return 8
	case CorruptCOWTree:
		return 12
	}
	return 0
}

// Hardware reports whether the scenario injects a hardware fault.
func (s Scenario) Hardware() bool { return s <= NodeFailRandom }

// TrialResult is one injection's outcome.
type TrialResult struct {
	Scenario     Scenario
	Seed         int64
	TargetCell   int
	InjectedAt   sim.Time
	DetectMs     float64 // latency until the last cell enters recovery
	RecoveryMs   float64 // recovery duration (entry to completion)
	Detected     bool
	Contained    bool   // injected cell dead, all others alive & serving
	IntegrityOK  bool   // no corrupt data in surviving output files
	CorrectRunOK bool   // post-fault pmake correctness check passed
	StateOK      bool   // cross-cell kernel invariants hold after recovery
	TraceHash    uint64 // FNV-1a over the engine's dispatch trace (TrialOpts.TraceHash)
	TraceJSON    []byte // Chrome trace-event export (TrialOpts.KeepTrace)
	Notes        string

	// Availability-loop metrics (reboot scenarios; Scenario.RebootLoop).
	Rejoins   int     // committed rejoin passes
	RestoreMs float64 // worst pass: death verdict → join-round commit (full capacity)
	LoopP99Ms float64 // p99 probe-op latency (ms) while the loop ran

	// Frontend SLO metrics (SurgeFault): what the open-loop user
	// population saw of the death → reboot → rejoin loop.
	FeIssued    int     // jobs dispatched
	FeCompleted int     // jobs completed
	FeLost      int     // jobs lost with the victim
	FeP99Us     float64 // job latency p99 (virtual µs)
	FeWindowMs  float64 // user-visible availability window (ms)

	// Forensic capture (TrialOpts.KeepEvents): the merged typed event
	// stream and per-cell ring-truncation counters the trace-based
	// auditor re-derives its verdict from, plus the hive size.
	Cells   int
	Events  []trace.Event
	Dropped []trace.DropCount
	// EngineStats holds the sharded-engine instrumentation snapshot
	// (sharded trials with KeepEvents or KeepTrace; nil otherwise).
	EngineStats *sim.ClusterStats
}

// OK reports full containment per the paper's criterion, plus the
// invariant audit this reproduction adds.
func (r *TrialResult) OK() bool {
	return r.Detected && r.Contained && r.IntegrityOK && r.CorrectRunOK && r.StateOK
}

// corruption pathologies cycled across software-fault trials (§7.4: random
// addresses in the same cell or other cells, one word away, self-pointing).
type pathology int

const (
	pathSameCell pathology = iota
	pathOtherCell
	pathOffByOne
	pathSelf
)

// TrialOpts tunes one trial's instrumentation.
type TrialOpts struct {
	// TraceHash hashes every engine dispatch into TrialResult.TraceHash —
	// a strict event-order witness for determinism regression tests. Off
	// by default: the trace hook costs an allocation per dispatch.
	TraceHash bool
	// KeepTrace exports the hive's structured trace as Chrome trace-event
	// JSON into TrialResult.TraceJSON when the trial ends.
	KeepTrace bool
	// KeepEvents retains the merged typed event stream and the per-cell
	// ring-truncation counters in TrialResult.Events/Dropped — the input
	// of the trace-based containment auditor (internal/forensic).
	KeepEvents bool
	// TraceCap overrides the per-cell trace ring capacity (0 = default).
	TraceCap int
	// Seed overrides the seed derived from (scenario, trial). The sweep
	// failure minimizer uses it to search for the smallest reproducing
	// seed; 0 keeps the derived default.
	Seed int64
	// Cells sizes the Hive the trial boots (0 = the paper's 4 cells).
	// Larger campaigns exercise containment at scale; counts below 4 are
	// rejected — the methodology needs two file-server cells plus at
	// least two candidate victims.
	Cells int
	// Shards boots the trial's Hive on the sharded engine with this many
	// worker threads (0 = classic single engine). The derived seed is
	// independent of Shards, so runs at different worker counts are
	// directly comparable — and must be byte-identical.
	Shards int
}

// RunTrial executes one injection trial from a fresh boot.
func RunTrial(s Scenario, trial int) *TrialResult {
	return RunTrialOpts(s, trial, TrialOpts{})
}

// RunTrialOpts is RunTrial with explicit instrumentation options. The trial
// is entirely self-contained (its own engine, seeded from (s, trial)), so
// concurrent trials on a parallel.Runner give bit-identical results.
func RunTrialOpts(s Scenario, trial int, opts TrialOpts) *TrialResult {
	cells := opts.Cells
	if cells == 0 {
		cells = 4
	}
	if cells < 4 {
		panic(fmt.Sprintf("faultinject: campaign needs at least 4 cells, got %d", cells))
	}
	seed := int64(10007*trial + int(s)*211 + 7)
	if cells != 4 {
		// Distinct cell counts are distinct experiments; keep the 4-cell
		// seeds exactly as published while separating the others.
		seed += int64(cells) * 7919
	}
	if opts.Seed != 0 {
		seed = opts.Seed
	}
	h := workload.BootHiveWith(cells, seed, func(cfg *core.Config) {
		if opts.TraceCap > 0 {
			cfg.TraceCap = opts.TraceCap
		}
		if opts.Shards > 0 {
			cfg.Shards = opts.Shards
		}
		if s == CoordinatorDeath {
			// The recovery master (cell 0) is itself a casualty here, so
			// the file servers must live elsewhere: /usr and /data move
			// to cell 2, keeping the correctness check runnable on the
			// surviving cells.
			cfg.Mounts = []fs.Mount{
				{Prefix: "/tmp", Cell: cells - 1},
				{Prefix: "/usr", Cell: 2},
				{Prefix: "/data", Cell: 2},
			}
		}
		if s.RebootLoop() {
			// The availability loop is under test: a quick repair delay and
			// tight backoff keep the whole fault → reboot → rejoin → full
			// capacity loop inside the trial's 60 s window; CrashLoop's
			// small attempt bound makes the give-up path reachable.
			cfg.Reboot = core.RebootPolicy{
				Enabled:     true,
				Delay:       30 * sim.Millisecond,
				BackoffBase: 20 * sim.Millisecond,
				BackoffMax:  200 * sim.Millisecond,
				MaxAttempts: 4,
			}
			if s == CrashLoop {
				cfg.Reboot.MaxAttempts = crashLoopBound
			}
		}
	})
	res := &TrialResult{Scenario: s, Seed: seed, Cells: cells, TargetCell: 1 + trial%(cells-2)}
	if s == CoordinatorDeath {
		// Cell 0 is the coordinator casualty, so the first fault targets
		// a fixed non-coordinator, non-file-server cell.
		res.TargetCell = 1
	}
	if opts.TraceHash {
		if h.Clu != nil {
			// One hasher per shard: each shard's dispatch order is
			// deterministic on its own, while the wall-clock interleaving
			// across shards is not. Folding the per-shard digests in shard
			// order yields a witness identical at any worker count.
			ths := make([]hash.Hash64, h.Clu.NumShards()+1)
			for i := range ths {
				th := fnv.New64a()
				ths[i] = th
				//hive:lint-ignore shardcross observability hook installed before the run starts
				h.Clu.Shard(i).Trace = func(at sim.Time, what string) {
					fmt.Fprintf(th, "%d:%s\n", at, what)
				}
			}
			defer func() {
				sum := fnv.New64a()
				for _, th := range ths {
					fmt.Fprintf(sum, "%x\n", th.Sum64())
				}
				res.TraceHash = sum.Sum64()
			}()
		} else {
			th := fnv.New64a()
			h.Eng.Trace = func(at sim.Time, what string) {
				fmt.Fprintf(th, "%d:%s\n", at, what)
			}
			defer func() { res.TraceHash = th.Sum64() }()
		}
	}
	if opts.KeepTrace {
		defer func() {
			var buf bytes.Buffer
			var tracks []trace.CounterTrack
			if res.EngineStats != nil {
				tracks = trace.EngineCounterTracks(*res.EngineStats)
			}
			if err := h.Trace.ExportChromeWith(&buf, tracks); err == nil {
				res.TraceJSON = buf.Bytes()
			}
		}()
	}
	if opts.KeepEvents {
		defer func() {
			res.Events = h.Trace.Merged()
			res.Dropped = h.Trace.Dropped()
		}()
	}
	if h.Clu != nil && (opts.KeepTrace || opts.KeepEvents) {
		// Registered after the export defers so it runs before them
		// (LIFO): the Chrome export embeds these counters as Perfetto
		// counter tracks.
		defer func() {
			st := h.Clu.Stats()
			res.EngineStats = &st
		}()
	}
	// Targets rotate over cells 1..cells-2: none host /usr (cell 0) or
	// /tmp (the last cell), so the correctness check has its file servers
	// after the fault — the paper's workloads survive only if their
	// resources do (§2).
	target := res.TargetCell
	rng := h.Eng.Rand()

	var injected bool
	inject := func() {
		if injected || h.Cells[target].Failed() {
			return
		}
		injected = true
		res.InjectedAt = h.Eng.Now()
		switch {
		case s.Hardware(), s == DoubleFault, s == CoordinatorDeath, s.RebootLoop():
			h.Cells[target].FailHardware()
		}
	}

	// Reboot scenarios measure the loop's availability cost with a probe
	// workload; rollingDone gates the settle condition for the one scenario
	// whose injection driver spans most of the run.
	var probe *latencyProbe
	rollingDone := s != RollingReboot
	if s.RebootLoop() {
		probe = startLatencyProbe(h)
	}

	var wl *workload.Result
	var fe *workload.FrontendResult
	switch s {
	case NodeFailProcCreate:
		cfg := workload.DefaultPmake()
		victim := 2 + trial%6 // vary which job's creation triggers it
		cfg.InjectHook = func(t *sim.Task, job int) {
			if job == victim {
				// FailHardware touches every cell's state: hop to the
				// global phase (inline in classic mode).
				t.Engine().Global(t, inject)
			}
		}
		wl = workload.RunPmake(h, cfg, 60*sim.Second)

	case NodeFailRandom:
		cfg := workload.DefaultPmake()
		at := sim.Time(500+rng.Intn(4000)) * sim.Millisecond
		h.Eng.At(at, inject)
		wl = workload.RunPmake(h, cfg, 60*sim.Second)

	case NodeFailCOWSearch:
		cfg := workload.DefaultRaytrace()
		cfg.MainCell = target // the scene data home is the victim
		// Fail in the steady phase, when COW searches are periodic
		// (scratch growth): detection races the search against the
		// clock monitor's bus error, as in the paper's narrow 10-11 ms
		// band.
		cfg.ForkHook = func(t *sim.Task, worker int) {
			if worker == 3 {
				// The timer lives on the machine-global heap (and rng is
				// the global engine's): hop to the global phase to arm it.
				t.Engine().Global(t, func() {
					h.Eng.After(sim.Time(1500+rng.Intn(1500))*sim.Millisecond, inject)
				})
			}
		}
		wl = workload.RunRaytrace(h, cfg, 60*sim.Second)

	case CorruptAddrMap:
		cfg := workload.DefaultPmake()
		at := sim.Time(800+rng.Intn(2500)) * sim.Millisecond
		h.Eng.At(at, func() {
			if corruptAddrMap(h, target, pathology(trial%4), rng.Uint64()) {
				injected = true
				res.InjectedAt = h.Eng.Now()
				h.Cells[target].MarkCorrupt()
			}
		})
		wl = workload.RunPmake(h, cfg, 60*sim.Second)

	case CorruptCOWTree:
		cfg := workload.DefaultRaytrace()
		cfg.MainCell = target
		at := sim.Time(400+rng.Intn(1500)) * sim.Millisecond
		var sceneRoot kmem.Addr
		cfg.ForkHook = func(t *sim.Task, worker int) {
			if worker == 0 {
				// The parent's pre-fork leaf (now interior) is the
				// scene root every worker's search passes through.
				// sceneRoot is read by a global-heap timer, so take the
				// snapshot in the global phase (inline in classic mode).
				t.Engine().Global(t, func() {
					h.Cells[target].Procs.Each(func(p *proc.Process) {
						if p.Name == "rt.main" {
							sceneRoot = rootOf(h, p)
						}
					})
				})
			}
		}
		h.Eng.At(at, func() {
			if sceneRoot == kmem.NilAddr {
				return
			}
			if corruptNode(h, target, sceneRoot, pathology(trial%4), rng.Uint64()) {
				injected = true
				res.InjectedAt = h.Eng.Now()
				h.Cells[target].MarkCorrupt()
			}
		})
		wl = workload.RunRaytrace(h, cfg, 60*sim.Second)

	case MsgDrop, MsgDup, MsgCorrupt, FaultStorm:
		inj := armMsgFaults(h, s, target, rng)
		wl = workload.RunPmake(h, workload.DefaultPmake(), 60*sim.Second)
		inj.disarm()
		if inj.fired > 0 {
			injected = true
			res.InjectedAt = inj.firstAt
		}

	case DoubleFault:
		// First fault: the target cell fails at a random time. Second
		// fault: another member of the resulting recovery round dies just
		// after barrier 1 opens — while every survivor is inside the
		// round — exercising the barrier-shrink and vote-withdrawal path.
		second := doubleFaultSecond(target)
		at := sim.Time(500+rng.Intn(3000)) * sim.Millisecond
		h.Eng.At(at, inject)
		var secondArmed bool
		h.Coord.OnBarrier1Open = func(suspect, coordinator int) {
			if secondArmed || suspect != target {
				return
			}
			secondArmed = true
			h.Eng.After(2*sim.Millisecond, func() {
				if !h.Cells[second].Failed() {
					h.Cells[second].FailHardware()
				}
			})
		}
		wl = workload.RunPmake(h, workload.DefaultPmake(), 60*sim.Second)

	case CoordinatorDeath:
		// The round coordinator (the recovery master) fails between
		// barrier 1 and barrier 2 of the round recovering the target;
		// the survivors must restart the round under the next live cell.
		at := sim.Time(500+rng.Intn(3000)) * sim.Millisecond
		h.Eng.At(at, inject)
		var coordArmed bool
		h.Coord.OnBarrier1Open = func(suspect, coordinator int) {
			if coordArmed || suspect != target {
				return
			}
			coordArmed = true
			h.Eng.After(2*sim.Millisecond, func() {
				if c := h.Cells[coordinator]; !c.Failed() {
					c.FailHardware()
				}
			})
		}
		wl = workload.RunPmake(h, workload.DefaultPmake(), 60*sim.Second)

	case FaultDuringReintegration:
		// The target fails at a random time; while its reboot is being
		// re-admitted, a second fault kills the joiner just after the join
		// round's first barrier opens — with every member inside the round.
		// The abort must not take a survivor with it and the controller's
		// next attempt must restore full capacity.
		at := sim.Time(500+rng.Intn(3000)) * sim.Millisecond
		h.Eng.At(at, inject)
		var rekilled bool
		h.Coord.OnJoinBarrier1Open = func(joiner, coordinator int) {
			if rekilled || joiner != target {
				return
			}
			rekilled = true
			h.Eng.After(2*sim.Millisecond, func() {
				if c := h.Cells[joiner]; !c.Failed() {
					c.FailHardware()
				}
			})
		}
		wl = workload.RunPmake(h, workload.DefaultPmake(), 60*sim.Second)

	case CrashLoop:
		// Every join attempt is cut down just after barrier 1: the
		// controller must hit its rejoin-backoff bound and give up rather
		// than reboot forever.
		at := sim.Time(500+rng.Intn(3000)) * sim.Millisecond
		h.Eng.At(at, inject)
		h.Coord.OnJoinBarrier1Open = func(joiner, coordinator int) {
			if joiner != target {
				return
			}
			h.Eng.After(2*sim.Millisecond, func() {
				if c := h.Cells[joiner]; !c.Failed() {
					c.FailHardware()
				}
			})
		}
		wl = workload.RunPmake(h, workload.DefaultPmake(), 60*sim.Second)

	case RollingReboot:
		// Fail every fault-eligible cell in sequence (the file-server
		// cells anchor the §7.4 correctness methodology and stay up),
		// waiting for the loop to restore full capacity before each next
		// kill. The driver runs on the global engine, where coordinator
		// and controller state may be read directly.
		first := sim.Time(500+rng.Intn(2000)) * sim.Millisecond
		n := cells - 2 // victims rotate over cells 1..cells-2
		h.Eng.Go("rolling.driver", func(t *sim.Task) {
			t.Sleep(first)
			for i := 0; i < n; i++ {
				v := 1 + (trial+i)%n // pass 0 hits res.TargetCell
				if i == 0 {
					inject()
				} else if !h.Cells[v].Failed() {
					h.Cells[v].FailHardware()
				}
				deadline := t.Now() + 10*sim.Second
				for t.Now() < deadline &&
					!(h.Coord.LiveCount() == cells && h.Rebooter.Idle() && h.Coord.RecoveryIdle()) {
					t.Sleep(5 * sim.Millisecond)
				}
			}
			rollingDone = true
		})
		wl = workload.RunPmake(h, workload.DefaultPmake(), 60*sim.Second)

	case SurgeFault:
		// Kill the target in the middle of the frontend's burst window:
		// the open-loop arrival stream keeps coming while the availability
		// loop reboots, rejoins, and re-stripes the victim. The dispatchers
		// are detached (fork+exec), so they survive the victim and route
		// around the hole with Wax's placement hints; the user-visible
		// availability window they record must be bounded by the loop's
		// restore time. Wax runs under its supervisor, as in production:
		// the incarnation dies with the victim and a fresh one rebuilds
		// its view over the healed live set.
		sup := wax.Supervise(h)
		defer sup.Stop()
		fcfg := workload.DefaultFrontend()
		fcfg.Users = 200_000
		fcfg.Tenants = 32
		fcfg.RatePerSec = 400
		fcfg.Duration = 3 * sim.Second
		fcfg.BurstAt = 800 * sim.Millisecond
		fcfg.BurstLen = 1200 * sim.Millisecond
		fcfg.Seed = 0xFE00 + uint64(trial)
		at := sim.Time(900+rng.Intn(800)) * sim.Millisecond
		h.Eng.At(at, inject)
		wl, fe = workload.RunFrontend(h, fcfg, 60*sim.Second)
	}

	if !injected {
		res.Notes = "injection never triggered"
		return res
	}

	// A late corruption can land after the victim's last walk of the
	// damaged structure, leaving the fault latent when the workload
	// drains. The cell's periodic kernel consistency audit must still
	// find it (§4.1 aggressive failure detection) — run the target's
	// audit now so the verdict never depends on whether the workload
	// happened to re-touch the damaged node.
	if (s == CorruptAddrMap || s == CorruptCOWTree) && !h.Cells[target].Failed() {
		auditKernel(h, target)
	}

	// Cells this scenario is expected to kill (empty for message faults).
	expectDead := map[int]bool{}
	switch {
	case s == DoubleFault:
		expectDead[target] = true
		expectDead[doubleFaultSecond(target)] = true
	case s == CoordinatorDeath:
		expectDead[target] = true
		expectDead[0] = true
	case s.ExpectDeaths() == 1:
		expectDead[target] = true
	}

	switch {
	case s.RebootLoop():
		// The availability loop must settle before anything is judged:
		// the injection driver done, every controller task drained, no
		// membership round in flight, and the live set at its expected
		// final size (full capacity, except past CrashLoop's bound).
		want := len(h.Cells) - len(expectDead)
		h.RunUntil(func() bool {
			return rollingDone && h.Coord.LiveCount() == want &&
				h.Rebooter.Idle() && h.Coord.RecoveryIdle() &&
				h.Coord.RecoveryEndAt > res.InjectedAt
		}, h.Eng.Now()+15*sim.Second)

		if h.Coord.LastDetectAt > res.InjectedAt {
			res.Detected = true
			if s != RollingReboot {
				// Rolling trials span several injections; a single
				// last-detect minus first-inject latency would be
				// meaningless, so only the single-victim rows report it.
				res.DetectMs = (h.Coord.LastDetectAt - res.InjectedAt).Millis()
				if h.Coord.RecoveryEndAt > h.Coord.FirstDetectAt {
					res.RecoveryMs = (h.Coord.RecoveryEndAt - h.Coord.FirstDetectAt).Millis()
				}
			}
		}
		for _, rec := range h.Rebooter.Records {
			if rec.Restored() {
				res.Rejoins++
				if ms := (rec.RejoinAt - rec.DeadAt).Millis(); ms > res.RestoreMs {
					res.RestoreMs = ms
				}
			}
		}
		res.LoopP99Ms = probe.stopAndP99()

	case len(expectDead) > 0:
		// Let detection and recovery finish.
		want := len(h.Cells) - len(expectDead)
		h.RunUntil(func() bool {
			// RecoveryIdle matters for the multi-fault rows: the live
			// set reaches `want` at the last verdict, while that round's
			// recovery phases are still running.
			return h.Coord.LiveCount() == want && h.Coord.RecoveryEndAt > res.InjectedAt &&
				h.Coord.RecoveryIdle()
		}, h.Eng.Now()+5*sim.Second)

		if h.Coord.LastDetectAt > res.InjectedAt {
			res.Detected = true
			res.DetectMs = (h.Coord.LastDetectAt - res.InjectedAt).Millis()
			if h.Coord.RecoveryEndAt > h.Coord.FirstDetectAt {
				res.RecoveryMs = (h.Coord.RecoveryEndAt - h.Coord.FirstDetectAt).Millis()
			}
		}
	default:
		// Message faults kill nobody: detection means the messaging
		// layer visibly observed and absorbed the fault (checksum
		// discard, retransmit, dedup) while the workload ran.
		res.Detected = msgFaultDetected(h, s)
	}

	// Containment: exactly the expected set of cells is down.
	res.Contained = true
	for _, c := range h.Cells {
		switch {
		case expectDead[c.ID] && !c.Failed():
			res.Contained = false
			res.Notes += fmt.Sprintf("cell %d expected down but live;", c.ID)
		case !expectDead[c.ID] && c.Failed():
			res.Contained = false
			res.Notes += fmt.Sprintf("cell %d collaterally failed;", c.ID)
		}
	}
	if len(expectDead) == 0 && !s.RebootLoop() && (!wl.Done || len(wl.Errors) > 0) {
		// Message faults never kill a process, so the workload must have
		// finished cleanly. Reboot trials do kill cells (jobs on a victim
		// vanish — an availability loss §2 permits), so they are exempt.
		res.Contained = false
		res.Notes += fmt.Sprintf("workload under message faults: done=%v errs=%v;", wl.Done, wl.Errors)
	}
	if s == CoordinatorDeath && h.Coord.RoundRestarts == 0 {
		res.Contained = false
		res.Notes += "no round restart after coordinator death;"
	}
	if s.RebootLoop() {
		// The loop itself must have done its job, not just left the right
		// cells alive.
		switch s {
		case FaultDuringReintegration:
			if res.Rejoins != 1 || h.Rebooter.FullCapacityAt == 0 {
				res.Contained = false
				res.Notes += fmt.Sprintf("full capacity not restored (rejoins=%d);", res.Rejoins)
			} else if h.Rebooter.Records[0].Attempts < 2 {
				res.Contained = false
				res.Notes += "mid-join fault cost no extra attempt — injection missed the round;"
			}
		case CrashLoop:
			bounded := false
			for _, rec := range h.Rebooter.Records {
				if rec.Cell == target && rec.GaveUp && rec.Attempts == crashLoopBound {
					bounded = true
				}
			}
			if !bounded {
				res.Contained = false
				res.Notes += fmt.Sprintf("crash loop not bounded: records=%+v;", h.Rebooter.Records)
			}
		case RollingReboot:
			if res.Rejoins != len(h.Cells)-2 || h.Rebooter.FullCapacityAt == 0 {
				res.Contained = false
				res.Notes += fmt.Sprintf("rolling reboot restored %d/%d cells;",
					res.Rejoins, len(h.Cells)-2)
			}
		case SurgeFault:
			res.FeIssued = fe.Issued
			res.FeCompleted = fe.Completed
			res.FeLost = fe.Lost
			res.FeP99Us = fe.Latency.P99
			res.FeWindowMs = fe.ErrWindowMs
			switch {
			case res.Rejoins != 1 || h.Rebooter.FullCapacityAt == 0:
				res.Contained = false
				res.Notes += fmt.Sprintf("full capacity not restored (rejoins=%d);", res.Rejoins)
			case fe.Completed == 0 || fe.Issued == 0:
				res.Contained = false
				res.Notes += "frontend served no jobs;"
			case fe.Degraded == 0 || fe.ErrWindowMs <= 0:
				res.Contained = false
				res.Notes += "fault invisible to users — injection missed the surge;"
			case fe.ErrWindowMs > res.RestoreMs+250:
				res.Contained = false
				res.Notes += fmt.Sprintf("availability window %.1fms not bounded by restore %.1fms;",
					fe.ErrWindowMs, res.RestoreMs)
			}
		}
	}

	// Data integrity: no corrupt data visible in surviving outputs.
	bad, report := workload.VerifyOutputs(h, wl)
	res.IntegrityOK = bad == 0
	if bad > 0 {
		res.Notes += fmt.Sprintf("integrity: %v;", report)
	}

	// System correctness check: a fresh pmake forks processes on all
	// surviving cells; its success indicates the survivors were not
	// damaged (§7.4).
	check := workload.DefaultPmake()
	check.Files = 4
	check.Parallel = 2
	check.CompileCPU = 40 * sim.Millisecond
	check.NamespaceOps = 50
	check.SharedPages = 32
	check.AnonPages = 16
	check.SrcPages = 8
	check.OutPages = 4
	check.Seed = 0xC4EC + uint64(trial)
	check.Tag = "check" // disjoint namespace from the main workload's files
	cres := workload.RunPmake(h, check, 60*sim.Second)
	cbad, _ := workload.VerifyOutputs(h, cres)
	missing := 0
	for _, out := range cres.Outputs {
		if !outputPresent(h, out) {
			missing++
		}
	}
	res.CorrectRunOK = cres.Done && cbad == 0 && missing == 0 && len(cres.Errors) == 0
	if !res.CorrectRunOK {
		res.Notes += fmt.Sprintf("check: done=%v bad=%d missing=%d errs=%v;",
			cres.Done, cbad, missing, cres.Errors)
	}

	// Audit the survivors' cross-cell kernel state.
	if bad := h.CheckInvariants(); len(bad) > 0 {
		res.Notes += fmt.Sprintf("invariants: %v;", bad)
	} else {
		res.StateOK = true
	}
	return res
}

// auditKernel runs the target cell's periodic kernel consistency audit in
// a fresh process. If the audit finds damage the cell panics out from
// under the audit task, so completion is "audit finished or cell died".
func auditKernel(h *core.Hive, target int) {
	cell := h.Cells[target]
	done := false
	cell.Procs.Spawn("kaudit", 907, func(p *proc.Process, t *sim.Task) {
		defer func() { done = true }()
		cell.COW.Audit(t)
	})
	h.RunUntil(func() bool { return done || cell.Failed() }, h.Eng.Now()+5*sim.Second)
}

// doubleFaultSecond picks the second casualty of a DoubleFault trial:
// another non-file-server cell, never the first target. At 4 cells this is
// 3-target — the seed campaign's published pairing — and it stays valid at
// any larger count (cells 1 and 2 are victims, never mounts).
func doubleFaultSecond(target int) int {
	if target == 1 {
		return 2
	}
	return 1
}

// outputPresent checks a file exists with full length at its home.
func outputPresent(h *core.Hive, out workload.OutputFile) bool {
	ok := false
	done := false
	cell := h.Cells[out.Home]
	if cell.Failed() {
		return true
	}
	cell.Procs.Spawn("present", 901, func(p *proc.Process, t *sim.Task) {
		defer func() { done = true }()
		hd, err := cell.FS.Open(t, out.Path)
		if err != nil {
			return
		}
		pages, err := cell.FS.Read(t, hd, out.Pages)
		if err != nil {
			return
		}
		for _, pg := range pages {
			if pg.Tag == 0 {
				return
			}
		}
		ok = true
	})
	h.RunUntil(func() bool { return done }, h.Eng.Now()+20*sim.Second)
	return ok
}

// corruptAddrMap corrupts a live compile process's address-space map (its
// COW leaf's parent pointer) on the target cell.
func corruptAddrMap(h *core.Hive, target int, path pathology, r uint64) bool {
	var victim *proc.Process
	h.Cells[target].Procs.Each(func(p *proc.Process) {
		if victim == nil && len(p.Name) > 2 && p.Name[:2] == "cc" {
			victim = p
		}
	})
	if victim == nil {
		return false
	}
	return corruptNode(h, target, victim.Leaf, path, r)
}

// corruptNode overwrites a COW node's parent pointer with a pathological
// value per §7.4.
func corruptNode(h *core.Hive, target int, node kmem.Addr, path pathology, r uint64) bool {
	var val uint64
	switch path {
	case pathSameCell:
		val = uint64(kmem.MakeAddr(target, (r%(1<<20))&^7|64))
	case pathOtherCell:
		other := (target + 1) % len(h.Cells)
		val = uint64(kmem.MakeAddr(other, (r%(1<<20))&^7|64))
	case pathOffByOne:
		val = uint64(node) + kmem.WordSize
	case pathSelf:
		val = uint64(node)
	}
	return h.Cells[target].COW.CorruptParent(node, val)
}

// rootOf returns the node a process's current leaf points at (the pre-fork
// interior node holding the scene pages).
func rootOf(h *core.Hive, p *proc.Process) kmem.Addr {
	arena := h.Space.Arena(p.Cell)
	//hive:lint-ignore carefulref the injector plays the hardware: it reaches into a victim cell's arena from outside any cell, where the careful protocol does not apply
	parent, err := arena.ReadWord(p.Leaf, 0)
	if err != nil {
		return kmem.NilAddr
	}
	if parent == 0 {
		return p.Leaf
	}
	return kmem.Addr(parent)
}

// CampaignRow aggregates one scenario's trials (a Table 7.4 row). The
// latency columns come from log-bucketed histograms over the detected
// trials; the Avg/Max fields keep the paper table's summary statistics and
// the percentiles expose the tails Table 7.4 could not show.
type CampaignRow struct {
	Scenario  Scenario
	Name      string
	Tests     int
	AllOK     bool
	AvgDetect float64
	MaxDetect float64
	P50Detect float64
	P99Detect float64
	AvgRecov  float64
	P50Recov  float64
	P99Recov  float64
	Failures  []string

	// Availability-loop columns (reboot scenarios only): time from death
	// verdict to restored full capacity, and the p99 probe-op latency the
	// workload saw while the loop ran.
	AvgRestore float64 `json:",omitempty"`
	P99Restore float64 `json:",omitempty"`
	AvgLoopP99 float64 `json:",omitempty"`

	// Frontend columns (SurgeFault only): the user-visible availability
	// window across trials, in ms.
	AvgWindow float64 `json:",omitempty"`
	MaxWindow float64 `json:",omitempty"`

	// Detect and Recov are the full latency distributions (ms); Restore is
	// the availability-loop restoration distribution.
	Detect  *stats.HistSnapshot `json:",omitempty"`
	Recov   *stats.HistSnapshot `json:",omitempty"`
	Restore *stats.HistSnapshot `json:",omitempty"`
}

// RunScenario runs `tests` trials of a scenario and aggregates. Trials fan
// out across the process-wide parallel runner; see RunScenarioWith.
func RunScenario(s Scenario, tests int) *CampaignRow {
	return RunScenarioWith(parallel.Default(), s, tests)
}

// RunScenarioWith runs `tests` trials of a scenario on r's worker pool and
// aggregates them in trial order. Each trial boots its own simulation from
// a seed derived from (scenario, trial), so the aggregate row — averages,
// maxima, and failure list — is byte-identical at any worker count.
func RunScenarioWith(r *parallel.Runner, s Scenario, tests int) *CampaignRow {
	return RunScenarioCellsWith(r, s, tests, 0)
}

// RunScenarioCellsWith is RunScenarioWith at an explicit Hive size — the
// scaling campaign's entry point (cells 0 = the paper's 4).
func RunScenarioCellsWith(r *parallel.Runner, s Scenario, tests, cells int) *CampaignRow {
	return RunScenarioOptsWith(r, s, tests, TrialOpts{Cells: cells})
}

// RunScenarioOptsWith runs a scenario's trials with shared TrialOpts — the
// entry point for sharded-engine campaigns (the shard-identity gate runs
// the same trials at different worker counts and diffs the rows).
func RunScenarioOptsWith(r *parallel.Runner, s Scenario, tests int, opts TrialOpts) *CampaignRow {
	trials := parallel.Map(r, tests, func(i int) *TrialResult {
		return RunTrialOpts(s, i, opts)
	})
	return Aggregate(s, trials)
}

// Aggregate folds a scenario's ordered trial results into a Table 7.4 row.
// Detection and recovery latencies go through log-bucketed histograms so
// the row carries means, maxima, and tail percentiles from one accumulator.
func Aggregate(s Scenario, trials []*TrialResult) *CampaignRow {
	row := &CampaignRow{Scenario: s, Name: s.String(), Tests: len(trials), AllOK: true}
	var hd, hr, hres stats.Histogram
	var loopSum float64
	loopN := 0
	for i, tr := range trials {
		if !tr.OK() {
			row.AllOK = false
			row.Failures = append(row.Failures,
				fmt.Sprintf("trial %d: detected=%v contained=%v integrity=%v check=%v notes=%s",
					i, tr.Detected, tr.Contained, tr.IntegrityOK, tr.CorrectRunOK, tr.Notes))
		}
		// Message-fault scenarios kill nobody, so they have no recovery
		// latency to aggregate; only death scenarios feed the histograms.
		// (RollingReboot reports no single detect latency — see RunTrialOpts.)
		if tr.Detected && tr.DetectMs > 0 {
			hd.Observe(tr.DetectMs)
			hr.Observe(tr.RecoveryMs)
		}
		if tr.RestoreMs > 0 {
			hres.Observe(tr.RestoreMs)
		}
		if tr.Scenario.RebootLoop() {
			loopSum += tr.LoopP99Ms
			loopN++
		}
	}
	if hd.N() > 0 {
		row.AvgDetect = hd.Mean()
		row.MaxDetect = hd.Max()
		row.P50Detect = hd.Quantile(0.50)
		row.P99Detect = hd.Quantile(0.99)
		row.AvgRecov = hr.Mean()
		row.P50Recov = hr.Quantile(0.50)
		row.P99Recov = hr.Quantile(0.99)
		ds, rs := hd.Snapshot(), hr.Snapshot()
		row.Detect, row.Recov = &ds, &rs
	}
	if hres.N() > 0 {
		row.AvgRestore = hres.Mean()
		row.P99Restore = hres.Quantile(0.99)
		res := hres.Snapshot()
		row.Restore = &res
	}
	if loopN > 0 {
		row.AvgLoopP99 = loopSum / float64(loopN)
	}
	var hw stats.Histogram
	for _, tr := range trials {
		if tr.Scenario == SurgeFault && tr.FeWindowMs > 0 {
			hw.Observe(tr.FeWindowMs)
		}
	}
	if hw.N() > 0 {
		row.AvgWindow = hw.Mean()
		row.MaxWindow = hw.Max()
	}
	return row
}
