package faultinject

import (
	"fmt"
	"testing"
)

func TestOneTrialEach(t *testing.T) {
	for _, s := range []Scenario{NodeFailProcCreate, NodeFailCOWSearch, NodeFailRandom, CorruptAddrMap, CorruptCOWTree} {
		tr := RunTrial(s, 0)
		fmt.Printf("%-50s detect=%.1fms recov=%.1fms det=%v cont=%v integ=%v check=%v notes=%s\n",
			s, tr.DetectMs, tr.RecoveryMs, tr.Detected, tr.Contained, tr.IntegrityOK, tr.CorrectRunOK, tr.Notes)
	}
}
