package faultinject

import (
	"testing"

	"repro/internal/forensic"
	"repro/internal/parallel"
)

// auditOpts is the instrumentation cmd/hivemort runs the campaign with.
var auditOpts = TrialOpts{KeepEvents: true, TraceCap: 1 << 16}

// TestTraceAuditAgreesWithHarness re-derives Detected/Contained from the
// trace alone for one trial of every scenario and requires agreement with
// the harness's live-state verdict — the mort-check gate in miniature
// (cmd/hivemort runs all default trials the same way).
func TestTraceAuditAgreesWithHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("trace audit cross-check skipped in -short")
	}
	for _, s := range AllScenarios() {
		tr := RunTrialOpts(s, 0, auditOpts)
		rep := forensic.Analyze(tr.Events, tr.Dropped)
		if rep.Audit.Detected != tr.Detected || rep.Audit.Contained != tr.Contained {
			t.Errorf("%v: trace says detected=%v contained=%v, harness says %v/%v\nevidence: %v",
				s, rep.Audit.Detected, rep.Audit.Contained, tr.Detected, tr.Contained,
				rep.Audit.Evidence)
		}
	}
}

// forensicReport renders one trial's full forensic report text.
func forensicReport(s Scenario, trial int, opts TrialOpts) string {
	tr := RunTrialOpts(s, trial, opts)
	return forensic.Analyze(tr.Events, tr.Dropped).Format(3)
}

// TestForensicReportIdenticalAcrossJobs requires the rendered report to be
// byte-identical whether trials fan out across 1 or 8 workers: the report
// is a pure function of the trace, and the trace is a pure function of
// (scenario, trial).
func TestForensicReportIdenticalAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("report identity skipped in -short")
	}
	scenarios := []Scenario{NodeFailProcCreate, MsgDrop}
	render := func(workers int) []string {
		r := parallel.New(workers)
		return parallel.Map(r, len(scenarios), func(i int) string {
			return forensicReport(scenarios[i], 0, auditOpts)
		})
	}
	ref, got := render(1), render(8)
	for i := range ref {
		if ref[i] != got[i] {
			t.Errorf("%v: report differs between -j1 and -j8:\n--- j1 ---\n%s\n--- j8 ---\n%s",
				scenarios[i], ref[i], got[i])
		}
	}
}

// TestForensicReportIdenticalAcrossShards requires the report (including
// the audit verdict and profile) to be byte-identical between a 1-worker
// and an auto-sharded engine — the hivemort face of the shard-identity
// gate.
func TestForensicReportIdenticalAcrossShards(t *testing.T) {
	if testing.Short() {
		t.Skip("report shard identity skipped in -short")
	}
	for _, s := range []Scenario{NodeFailProcCreate, CorruptAddrMap, MsgDup} {
		one := TrialOpts{KeepEvents: true, TraceCap: 1 << 16, Shards: 1}
		auto := TrialOpts{KeepEvents: true, TraceCap: 1 << 16, Shards: 4}
		if a, b := forensicReport(s, 0, one), forensicReport(s, 0, auto); a != b {
			t.Errorf("%v: report differs between -shards 1 and -shards 4:\n--- 1 ---\n%s\n--- 4 ---\n%s", s, a, b)
		}
	}
}

// TestKeepEventsCapturesEngineStats checks the sharded-trial instrumentation
// snapshot rides along with the forensic capture.
func TestKeepEventsCapturesEngineStats(t *testing.T) {
	tr := RunTrialOpts(NodeFailProcCreate, 0, TrialOpts{KeepEvents: true, Shards: 2})
	if tr.EngineStats == nil {
		t.Fatal("sharded KeepEvents trial has no EngineStats")
	}
	if tr.EngineStats.Windows == 0 || len(tr.EngineStats.Shards) != tr.Cells+1 {
		t.Fatalf("EngineStats = windows %d, %d shards; want windows>0 and %d shards",
			tr.EngineStats.Windows, len(tr.EngineStats.Shards), tr.Cells+1)
	}
	classic := RunTrialOpts(NodeFailProcCreate, 0, TrialOpts{KeepEvents: true})
	if classic.EngineStats != nil {
		t.Fatal("classic trial should have no EngineStats")
	}
	if len(classic.Events) == 0 || len(classic.Dropped) != classic.Cells {
		t.Fatalf("KeepEvents capture incomplete: %d events, %d drop rows, %d cells",
			len(classic.Events), len(classic.Dropped), classic.Cells)
	}
}
