package faultinject

import (
	"testing"
)

// TestDeterministicReplay is the §7.4 methodology check: the simulation's
// determinism lets any trial be re-executed exactly — the property SimOS
// checkpoints gave the original authors for analyzing post-fault event
// sequences. Two executions of the same trial must agree on every
// observable.
func TestDeterministicReplay(t *testing.T) {
	for _, s := range []Scenario{NodeFailRandom, CorruptCOWTree} {
		a := RunTrial(s, 2)
		b := RunTrial(s, 2)
		if a.InjectedAt != b.InjectedAt || a.DetectMs != b.DetectMs ||
			a.RecoveryMs != b.RecoveryMs || a.Contained != b.Contained ||
			a.IntegrityOK != b.IntegrityOK || a.CorrectRunOK != b.CorrectRunOK {
			t.Fatalf("%s replay diverged:\n  a=%+v\n  b=%+v", s, a, b)
		}
	}
}

// TestTrialTargetsRotate checks the campaign alternates injection targets.
func TestTrialTargetsRotate(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		seen[1+i%2] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatal("targets do not rotate over cells 1 and 2")
	}
}
