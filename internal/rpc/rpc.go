// Package rpc implements Hive's intercell remote procedure call subsystem
// (§6 of the paper), layered on the FLASH SIPS primitive. The design follows
// the paper:
//
//   - The base system supports only requests serviced at interrupt level;
//     the minimum null RPC latency is 7.2 µs, fast enough that the client
//     processor spins for the reply and context-switches only after a 50 µs
//     timeout (which almost never fires).
//   - No retransmission or duplicate suppression: SIPS is reliable.
//   - No fragmentation: one 128-byte line carries most argument/result data;
//     anything larger is passed by reference through shared memory (and read
//     with the careful reference protocol) or copied, paying the Table 5.2
//     copy and allocate/free costs.
//   - A queuing service and server-process pool handles longer-latency
//     requests (minimum null queued RPC 34 µs); common services are
//     structured as best-effort interrupt-level routines that fall back to
//     the queued path only when they would block.
//   - Every call carries a timeout; a timeout is a failure-detection hint
//     about the callee cell (§4.3).
package rpc

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Component costs (ns), calibrated to §6 and Table 5.2. The null RPC totals
// exactly 7.2 µs; a "real" interrupt-level request adds marshalling so its
// stub + hardware component totals 9.6 µs; a request carrying more than one
// line of data adds the shared-memory copy (4.0 µs) and argument/result
// memory allocate/free (3.7 µs), totalling 17.3 µs of RPC cost as in
// Table 5.2.
const (
	ClientSendStub  sim.Time = 1500 // marshal into the SIPS line
	ClientRecvStub  sim.Time = 1100 // unmarshal reply
	ServerDispatch  sim.Time = 800  // demux + service entry/exit
	ServerReply     sim.Time = 650  // reply construction + launch overhead
	IntrEntryExit   sim.Time = 650  // interrupt entry/exit beyond payload access
	ExtraStubReal   sim.Time = 2000 // stub execution for non-trivial arguments (§6: 9.6 µs practical)
	ExtraHWReal     sim.Time = 400  // extra line handling for real requests
	CopySharedMem   sim.Time = 4000 // arg/result copy through shared memory (>1 line)
	AllocFreeArgMem sim.Time = 3700 // allocate/free arg and result memory (>1 line)

	// SpinTimeout is how long the client spins before context-switching.
	SpinTimeout sim.Time = 50 * sim.Microsecond
	// ContextSwitch is the cost of blocking and being rescheduled.
	ContextSwitch sim.Time = 10 * sim.Microsecond
	// QueueSync is the queued path's dequeue + synchronization cost
	// (with the context switch it dominates the 34 µs queued null RPC).
	QueueSync sim.Time = 16600
	// DefaultTimeout bounds a whole call before it becomes a failure
	// hint. It must comfortably exceed queued-service latencies that
	// include disk I/O (tens of ms), or slow-but-healthy servers would
	// be accused of failure; clock monitoring provides the fast
	// detection path (§4.3).
	DefaultTimeout sim.Time = 100 * sim.Millisecond

	// RetryBaseTimeout is the first per-attempt timeout for calls to
	// idempotent services: the paper's SIPS is reliable, but under the
	// v2 fault campaign messages can be dropped or corrupted in flight,
	// and idempotent calls retransmit with exponential backoff (500 µs,
	// 1 ms, 2 ms, then the remaining call budget) instead of failing.
	RetryBaseTimeout sim.Time = 500 * sim.Microsecond
	// RetryMaxAttempts bounds the retransmissions of one idempotent call
	// (the original send plus three retries); the final attempt waits out
	// the whole remaining call budget, so a slow-but-healthy server is
	// never accused faster than before.
	RetryMaxAttempts = 4

	// dedupCap bounds the server-side duplicate-suppression table (keys
	// are evicted FIFO); it needs only to cover the requests that can be
	// retransmitted or duplicated within one call timeout.
	dedupCap = 4096
)

// Errors returned by Call.
var (
	// ErrTimeout means no reply arrived within the call timeout.
	ErrTimeout = errors.New("rpc: call timed out")
	// ErrSendFailed means the SIPS send itself failed (bus error —
	// destination node failed or cut off).
	ErrSendFailed = errors.New("rpc: send failed")
	// ErrBadRequest is returned by servers that reject a sanity check.
	ErrBadRequest = errors.New("rpc: request failed sanity check")
	// ErrNoService means the callee has no handler for the proc number.
	ErrNoService = errors.New("rpc: no such service")
	// ErrShutdown means the calling endpoint was shut down (cell panic or
	// forced stop) while the call was outstanding.
	ErrShutdown = errors.New("rpc: endpoint shut down during call")
)

// ProcID names a remote procedure.
type ProcID int

// Request is one in-flight RPC.
type Request struct {
	ID        uint64
	From, To  int // cell IDs
	Proc      ProcID
	Args      any
	DataBytes int // payload size; >128 engages copy/alloc costs
	// Span is the causal trace span allocated by the client; the server
	// side records its recv/reply events under the same id, so the merged
	// trace links both halves of the call across cells.
	Span trace.SpanID

	future *sim.Future
	bd     *stats.Breakdown // optional component recorder (Table 5.2)
}

// reply is the wire representation of a completed call.
type reply struct {
	id     uint64
	proc   ProcID // the serviced procedure (fault injectors classify by it)
	result any
	err    string
}

// IntrHandler services a request at interrupt level. It runs in engine
// context and must not block. It returns the result, any extra service cost
// to charge to the server CPU's interrupt context, and handled=false to
// fall back to the queued path (e.g. a lock was busy or I/O is needed).
type IntrHandler func(req *Request) (result any, cost sim.Time, handled bool, err error)

// QueuedHandler services a request in a server-pool task; it may block.
type QueuedHandler func(t *sim.Task, req *Request) (any, error)

type service struct {
	name       string
	intr       IntrHandler
	queued     QueuedHandler
	idempotent bool
}

// ServiceOption tunes a Register call.
type ServiceOption func(*service)

// Idempotent marks a service safe to retransmit: a lost request or reply
// makes the client retry with backoff instead of failing the call. The
// server-side dedup table suppresses re-execution of retransmits it has
// already serviced, so marked services need only tolerate duplicate
// *delivery*, not duplicate *execution*.
func Idempotent() ServiceOption {
	return func(s *service) { s.idempotent = true }
}

// dedupKey identifies a request for duplicate suppression: caller cell ids
// never repeat a call id, so (from, id) is stable across retransmissions.
type dedupKey struct {
	from int
	id   uint64
}

// dedupEntry is the server's memory of one serviced (or in-service)
// request; rep is nil while the original is still being serviced.
type dedupEntry struct {
	rep *reply
}

// Endpoint is one cell's RPC engine: it owns the service table, the
// outstanding-call map, and the queued-request server pool.
type Endpoint struct {
	M      *machine.Machine
	CellID int
	Procs  []*machine.Processor // this cell's processors
	Peers  map[int]*Endpoint    // all endpoints by cell, for addressing

	// HintSink receives failure-detection hints (timeouts, send errors).
	HintSink func(suspectCell int, reason string)
	// Timeout bounds calls from this endpoint; 0 means DefaultTimeout.
	Timeout sim.Time
	// Metrics records per-endpoint counters.
	Metrics *stats.Registry
	// Tracer records this cell's RPC events (nil no-ops; set by the cell
	// layer).
	Tracer *trace.Tracer

	eng       *sim.Engine // the shard this cell's processors are bound to
	services  map[ProcID]*service
	pending   map[uint64]*Request
	queue     *sim.Queue
	nextID    uint64
	rrProc    int
	poolSize  int
	dead      bool
	histCall  *stats.Histogram // end-to-end successful call latency (µs)
	seen      map[dedupKey]*dedupEntry
	seenOrder []dedupKey // FIFO eviction order for seen
}

// NewEndpoint creates the endpoint for cell cellID using the given
// processors and registers its SIPS receive handler on each of their nodes.
// poolSize server tasks are started for the queued path.
func NewEndpoint(m *machine.Machine, cellID int, procs []*machine.Processor, poolSize int) *Endpoint {
	ep := &Endpoint{
		M:        m,
		CellID:   cellID,
		Procs:    procs,
		Peers:    map[int]*Endpoint{},
		Metrics:  stats.NewRegistry(),
		services: map[ProcID]*service{},
		pending:  map[uint64]*Request{},
		queue:    &sim.Queue{},
		poolSize: poolSize,
		seen:     map[dedupKey]*dedupEntry{},
	}
	ep.histCall = ep.Metrics.Hist("rpc.call_us")
	// The endpoint lives on the shard its processors are bound to (the
	// machine's single engine in a classic run); server tasks, interrupt
	// handlers, and trace stamps all belong there.
	ep.eng = m.Eng
	if len(procs) > 0 {
		ep.eng = m.NodeEngine(procs[0].Node.ID)
	}
	seen := map[int]bool{}
	for _, p := range procs {
		if !seen[p.Node.ID] {
			seen[p.Node.ID] = true
			p.Node.OnSIPS = ep.onSIPS
		}
	}
	for i := 0; i < poolSize; i++ {
		ep.eng.Go(fmt.Sprintf("cell%d.rpcserver%d", cellID, i), ep.serverLoop)
	}
	return ep
}

// Engine returns the shard this endpoint's cell runs on.
func (ep *Endpoint) Engine() *sim.Engine { return ep.eng }

// SetIncarnation stamps every future call id with a boot epoch. Dedup keys
// are (from, id) and rely on "caller cell ids never repeat a call id" —
// which must hold across reboots too: without the epoch, a rebooted cell's
// fresh endpoint would restart its ids at zero and peers would swallow its
// first calls (the join announcement among them) as retransmits of its
// previous incarnation's traffic.
func (ep *Endpoint) SetIncarnation(n int) {
	ep.nextID = uint64(n) << 48
}

// Connect wires two endpoints so they can address each other.
func Connect(eps ...*Endpoint) {
	for _, a := range eps {
		for _, b := range eps {
			a.Peers[b.CellID] = b
		}
	}
}

// Register installs handlers for proc. Either handler may be nil (nil intr
// means every request takes the queued path; nil queued means an unhandled
// interrupt-level request fails). Options mark service properties — in
// particular Idempotent, which enables client-side retransmission.
func (ep *Endpoint) Register(proc ProcID, name string, intr IntrHandler, queued QueuedHandler, opts ...ServiceOption) {
	svc := &service{name: name, intr: intr, queued: queued}
	for _, o := range opts {
		o(svc)
	}
	ep.services[proc] = svc
}

// IsIdempotent reports whether proc is registered idempotent here. Service
// tables are registered symmetrically on every cell, so a client consults
// its own table to decide whether a call to a peer may be retransmitted.
func (ep *Endpoint) IsIdempotent(proc ProcID) bool {
	svc, ok := ep.services[proc]
	return ok && svc.idempotent
}

// Shutdown marks the endpoint dead (cell panic/failure): the server pool
// stops, no further requests are serviced, and every outstanding outgoing
// call resolves immediately with ErrShutdown (a clean error, not a 100 ms
// timeout accusing the healthy callee).
func (ep *Endpoint) Shutdown() {
	ep.dead = true
	ep.queue.Close()
	// Resolve outstanding calls in id order: the wakeups run tasks, so
	// map iteration order must not leak into the simulation.
	ids := make([]uint64, 0, len(ep.pending))
	for id := range ep.pending {
		ids = append(ids, id)
	}
	sort.SliceStable(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ep.pending[id].future.Set(nil, ErrShutdown)
	}
}

// Dead reports whether the endpoint has been shut down.
func (ep *Endpoint) Dead() bool { return ep.dead }

// PeerIDs returns every peer cell id ascending — the deterministic
// iteration order for broadcast-style callers (Peers is a map, and map
// order must never decide the sequence RPCs are issued in).
func (ep *Endpoint) PeerIDs() []int {
	out := make([]int, 0, len(ep.Peers))
	for c := range ep.Peers {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// targetProc picks the destination processor on the callee cell for call
// id, round-robin over its non-halted processors. In a sharded run the
// round-robin cursor belongs to the callee's shard and cannot be mutated
// from here, so the pick becomes a pure function of the call id — the same
// load spreading, derived from a value both sides agree on. (The halted
// flags it reads only change in the global phase, so a cross-shard read
// sees a stable, deterministic value.)
func (ep *Endpoint) targetProc(callee *Endpoint, id uint64) *machine.Processor {
	n := len(callee.Procs)
	if ep.eng.Cluster() != nil && callee.eng != ep.eng {
		for i := 0; i < n; i++ {
			p := callee.Procs[(int(id%uint64(n))+i)%n]
			if !p.Halted() {
				return p
			}
		}
		return callee.Procs[0]
	}
	for i := 0; i < n; i++ {
		p := callee.Procs[(callee.rrProc+i)%n]
		if !p.Halted() {
			callee.rrProc = (callee.rrProc + i + 1) % n
			return p
		}
	}
	return callee.Procs[0]
}

// CallOpts tunes one call.
type CallOpts struct {
	DataBytes int              // total arg+result payload bytes (0 = null)
	Timeout   sim.Time         // overrides endpoint timeout
	Breakdown *stats.Breakdown // records component times (Table 5.2)
	NoHint    bool             // suppress failure hints (used by the prober)
}

// record charges a cost category both to the caller's CPU and the optional
// breakdown recorder.
func record(bd *stats.Breakdown, name string, d sim.Time) {
	if bd != nil {
		bd.Observe(name, d)
	}
}

// Call performs a synchronous RPC from task t (running on proc) to cell
// `to`. It returns the handler's result or an error; timeouts and send
// failures raise failure-detection hints unless suppressed.
func (ep *Endpoint) Call(t *sim.Task, proc *machine.Processor, to int, procID ProcID, args any, opts CallOpts) (any, error) {
	bd := opts.Breakdown
	callee, ok := ep.Peers[to]
	if !ok {
		return nil, fmt.Errorf("%w: unknown cell %d", ErrSendFailed, to)
	}
	ep.nextID++
	req := &Request{
		ID: ep.nextID, From: ep.CellID, To: to, Proc: procID,
		Args: args, DataBytes: opts.DataBytes,
		future: &sim.Future{}, bd: bd,
	}
	callStart := t.Now()
	req.Span = ep.Tracer.NextSpan()
	ep.Tracer.EmitSpan(callStart, trace.RPCSend, req.Span, int64(to), int64(procID), "")

	// Client stub: marshal args into the SIPS line.
	stub := ClientSendStub
	if opts.DataBytes > 0 {
		stub += ExtraStubReal / 2
	}
	proc.Use(t, stub)
	record(bd, "client stub (send)", stub)

	// Oversize arguments: allocate arg memory and copy through shared
	// memory (half the cost on the client side).
	if opts.DataBytes > machine.SIPSLineBytes {
		proc.Use(t, AllocFreeArgMem/2+CopySharedMem/2)
		record(bd, "alloc/free arg memory (client half)", AllocFreeArgMem/2)
		record(bd, "arg copy through shared memory (client half)", CopySharedMem/2)
	}

	ep.pending[req.ID] = req
	defer delete(ep.pending, req.ID)

	timeout := opts.Timeout
	if timeout == 0 {
		timeout = ep.Timeout
	}
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	deadline := callStart + timeout

	// Idempotent services retransmit with exponential backoff; all other
	// calls get one attempt with the whole budget (the paper's behavior:
	// SIPS is reliable, a timeout is a failure hint, §6).
	attempts := 1
	attemptBudget := timeout
	if svc, okSvc := ep.services[procID]; okSvc && svc.idempotent && RetryBaseTimeout < timeout {
		attempts = RetryMaxAttempts
		attemptBudget = RetryBaseTimeout
	}

	var val any
	var ferr error
	var ok2 bool
	for attempt := 0; attempt < attempts; attempt++ {
		dst := ep.targetProc(callee, req.ID)
		msg := &machine.SIPSMsg{To: dst.ID, Kind: machine.SIPSRequest, Size: machine.SIPSLineBytes, Payload: req}
		sendStart := t.Now()
		if err := ep.M.SendSIPS(t, proc, msg); err != nil {
			ep.Metrics.Counter("rpc.send_failures").Inc()
			ep.Tracer.EmitSpan(t.Now(), trace.RPCTimeout, req.Span, int64(to), int64(procID), "")
			if !opts.NoHint && ep.HintSink != nil {
				ep.HintSink(to, "rpc send bus error")
			}
			return nil, fmt.Errorf("%w to cell %d: %v", ErrSendFailed, to, err)
		}
		if attempt == 0 {
			record(bd, "hardware message launch", t.Now()-sendStart)
			ep.Metrics.Counter("rpc.calls").Inc()
		}

		// The last attempt (or the only one) waits out the remaining
		// call budget, so retries never accuse a slow-but-healthy
		// server faster than a single-attempt call would.
		budget := attemptBudget
		if remaining := deadline - t.Now(); attempt == attempts-1 || budget > remaining {
			budget = remaining
		}
		if budget <= 0 {
			break
		}

		// Spin for the reply; context-switch after SpinTimeout (§6).
		spin := budget
		if spin > SpinTimeout {
			spin = SpinTimeout
		}
		val, ferr, ok2 = req.future.WaitTimeout(t, spin)
		if !ok2 {
			ep.Metrics.Counter("rpc.spin_timeouts").Inc()
			proc.Use(t, ContextSwitch)
			val, ferr, ok2 = req.future.WaitTimeout(t, budget-spin)
			if ok2 {
				proc.Use(t, ContextSwitch) // switch back in
			}
		}
		if ok2 || t.Now() >= deadline {
			break
		}
		// Lost on the wire (or the server is slow): retransmit. The
		// server's dedup table suppresses re-execution, so the retry is
		// safe even when the original request was delivered.
		ep.Metrics.Counter("rpc.retries").Inc()
		ep.Tracer.EmitSpan(t.Now(), trace.RPCRetry, req.Span, int64(to), int64(attempt+1), "")
		attemptBudget *= 2
	}
	if ok2 && ferr != nil {
		// The endpoint was shut down under us (cell panic): surface the
		// clean local error — the callee is not a failure suspect.
		ep.Metrics.Counter("rpc.shutdown_aborts").Inc()
		ep.Tracer.EmitSpan(t.Now(), trace.RPCTimeout, req.Span, int64(to), int64(procID), "shutdown")
		return nil, fmt.Errorf("%w: cell %d proc %d", ErrShutdown, to, procID)
	}
	if !ok2 {
		ep.Metrics.Counter("rpc.timeouts").Inc()
		ep.Tracer.EmitSpan(t.Now(), trace.RPCTimeout, req.Span, int64(to), int64(procID), "")
		if !opts.NoHint && ep.HintSink != nil {
			ep.HintSink(to, "rpc timeout")
		}
		return nil, fmt.Errorf("%w: cell %d proc %d", ErrTimeout, to, procID)
	}

	rep := val.(*reply)
	// Client stub: unmarshal the reply.
	stub = ClientRecvStub
	if opts.DataBytes > 0 {
		stub += ExtraStubReal / 2
	}
	proc.Use(t, stub)
	record(bd, "client stub (receive)", stub)
	ep.Tracer.EmitSpan(t.Now(), trace.RPCReply, req.Span, int64(to), int64(procID), "")
	ep.histCall.ObserveTime(t.Now() - callStart)
	if rep.err != "" {
		return rep.result, errors.New(rep.err)
	}
	return rep.result, nil
}

// onSIPS is the hardware receive handler: it runs in interrupt context on
// the addressed processor.
func (ep *Endpoint) onSIPS(msg *machine.SIPSMsg) {
	if ep.dead {
		return
	}
	switch msg.Kind {
	case machine.SIPSRequest:
		ep.handleRequest(msg)
	case machine.SIPSReply:
		rep := msg.Payload.(*reply)
		if req, ok := ep.pending[rep.id]; ok {
			if req.future.Ready() {
				// A wire-duplicated reply for a call still unwinding:
				// the first copy already resolved the future.
				ep.Metrics.Counter("rpc.dup_replies").Inc()
				ep.Tracer.EmitSpan(ep.eng.Now(), trace.RPCDedup, req.Span, int64(req.To), 0, "dup-reply")
				return
			}
			req.future.Set(rep, nil)
		} else {
			// The caller already timed out (or this is a duplicate of a
			// reply that landed): call ids are never reused, so a late
			// reply can only be discarded, never delivered to a later
			// call.
			ep.Metrics.Counter("rpc.stale_replies").Inc()
			ep.Tracer.Emit(ep.eng.Now(), trace.RPCDedup, -1, 0, "stale-reply")
		}
	}
}

// remember inserts a fresh dedup entry for key, evicting the oldest entry
// once the table is full.
func (ep *Endpoint) remember(key dedupKey) *dedupEntry {
	if len(ep.seenOrder) >= dedupCap {
		delete(ep.seen, ep.seenOrder[0])
		ep.seenOrder = ep.seenOrder[1:]
	}
	ent := &dedupEntry{}
	ep.seen[key] = ent
	ep.seenOrder = append(ep.seenOrder, key)
	return ent
}

// noteServed caches the reply for a serviced request so a retransmit can be
// answered without re-execution.
func (ep *Endpoint) noteServed(req *Request, rep *reply) {
	if ent, ok := ep.seen[dedupKey{req.From, req.ID}]; ok {
		ent.rep = rep
	}
}

// handleRequest runs the interrupt-level service path.
func (ep *Endpoint) handleRequest(msg *machine.SIPSMsg) {
	req := msg.Payload.(*Request)
	proc := ep.M.Procs[msg.To]
	svc := ep.services[req.Proc]
	ep.Tracer.EmitSpan(ep.eng.Now(), trace.RPCRecv, req.Span, int64(req.From), int64(req.Proc), "")

	// Interrupt entry + demux.
	base := IntrEntryExit + ServerDispatch
	if req.DataBytes > 0 {
		base += ExtraHWReal
	}

	// Duplicate suppression: a retransmitted (or wire-duplicated) request
	// that was already serviced is answered from the cached reply without
	// re-executing the handler; one still in service is dropped — the
	// original's reply will resolve the caller's future, since the call
	// id is unchanged across retransmissions.
	key := dedupKey{req.From, req.ID}
	if ent, dup := ep.seen[key]; dup {
		ep.Metrics.Counter("rpc.dup_requests").Inc()
		ep.Tracer.EmitSpan(ep.eng.Now(), trace.RPCDedup, req.Span, int64(req.From), 0, "dup-request")
		if ent.rep != nil {
			rep := ent.rep
			proc.Interrupt(base, func() { ep.resend(proc, req, rep) })
		}
		return
	}
	ep.remember(key)

	if svc == nil {
		proc.Interrupt(base, func() {
			ep.reply(proc, req, nil, ErrNoService, 0)
		})
		return
	}
	if svc.intr == nil {
		// Straight to the queued path.
		proc.Interrupt(base, func() { ep.enqueue(req) })
		return
	}

	proc.Interrupt(base, func() {
		record(req.bd, "server dispatch", base)
		result, cost, handled, err := svc.intr(req)
		if !handled {
			if svc.queued == nil {
				ep.reply(proc, req, nil, ErrBadRequest, 0)
				return
			}
			ep.Metrics.Counter("rpc.intr_fallbacks").Inc()
			ep.enqueue(req)
			return
		}
		ep.Metrics.Counter("rpc.intr_served").Inc()
		ep.reply(proc, req, result, err, cost)
	})
}

// reply sends the reply from interrupt context after charging the service
// cost and reply construction.
func (ep *Endpoint) reply(proc *machine.Processor, req *Request, result any, err error, serviceCost sim.Time) {
	cost := serviceCost + ServerReply
	if req.DataBytes > machine.SIPSLineBytes {
		// Server half of the copy/alloc costs.
		cost += AllocFreeArgMem/2 + CopySharedMem/2
		record(req.bd, "alloc/free arg memory (server half)", AllocFreeArgMem/2)
		record(req.bd, "arg copy through shared memory (server half)", CopySharedMem/2)
	}
	record(req.bd, "server service", serviceCost)
	record(req.bd, "server reply", ServerReply)
	rep := &reply{id: req.ID, proc: req.Proc}
	rep.result = result
	if err != nil {
		rep.err = err.Error()
	}
	ep.noteServed(req, rep)
	caller := ep.Peers[req.From]
	if caller == nil {
		return
	}
	proc.Interrupt(cost, func() {
		ep.Tracer.EmitSpan(ep.eng.Now(), trace.RPCReply, req.Span, int64(req.From), int64(req.Proc), "")
		dst := ep.targetProc(caller, req.ID)
		ep.M.SendSIPSAsync(proc, &machine.SIPSMsg{
			To: dst.ID, Kind: machine.SIPSReply, Size: machine.SIPSLineBytes, Payload: rep,
		})
	})
}

// resend answers a retransmitted request from the dedup cache: reply
// construction and launch costs are paid again, the service itself is not
// re-executed.
func (ep *Endpoint) resend(proc *machine.Processor, req *Request, rep *reply) {
	caller := ep.Peers[req.From]
	if caller == nil {
		return
	}
	proc.Interrupt(ServerReply, func() {
		ep.Tracer.EmitSpan(ep.eng.Now(), trace.RPCReply, req.Span, int64(req.From), int64(req.Proc), "")
		dst := ep.targetProc(caller, req.ID)
		ep.M.SendSIPSAsync(proc, &machine.SIPSMsg{
			To: dst.ID, Kind: machine.SIPSReply, Size: machine.SIPSLineBytes, Payload: rep,
		})
	})
}

// enqueue hands a request to the server pool.
func (ep *Endpoint) enqueue(req *Request) {
	ep.Metrics.Counter("rpc.queued").Inc()
	ep.queue.Push(req)
}

// serverLoop is one server-pool task: it dequeues requests, pays the
// context-switch and synchronization costs that dominate the 34 µs queued
// null RPC, runs the (possibly blocking) handler, and sends the completion.
func (ep *Endpoint) serverLoop(t *sim.Task) {
	for {
		v, ok := ep.queue.Pop(t)
		if !ok {
			return
		}
		req := v.(*Request)
		proc := ep.serverProc()
		if proc == nil {
			return // all processors halted; cell is dead
		}
		proc.Use(t, ContextSwitch+QueueSync)
		svc := ep.services[req.Proc]
		var result any
		var err error
		if svc == nil || svc.queued == nil {
			err = ErrNoService
		} else {
			result, err = svc.queued(t, req)
		}
		if ep.dead {
			return
		}
		proc = ep.serverProc()
		if proc == nil {
			return
		}
		// Completion RPC back to the client.
		rep := &reply{id: req.ID, proc: req.Proc, result: result}
		if err != nil {
			rep.err = err.Error()
		}
		ep.noteServed(req, rep)
		caller := ep.Peers[req.From]
		if caller == nil {
			continue
		}
		proc.Use(t, ServerReply)
		ep.Tracer.EmitSpan(t.Now(), trace.RPCReply, req.Span, int64(req.From), int64(req.Proc), "")
		dst := ep.targetProc(caller, req.ID)
		ep.M.SendSIPS(t, proc, &machine.SIPSMsg{
			To: dst.ID, Kind: machine.SIPSReply, Size: machine.SIPSLineBytes, Payload: rep,
		})
	}
}

// serverProc returns a live processor for server-pool execution.
func (ep *Endpoint) serverProc() *machine.Processor {
	for _, p := range ep.Procs {
		if !p.Halted() {
			return p
		}
	}
	return nil
}

// MsgMeta describes one RPC message observed on the SIPS wire — the view a
// fault injector needs to choose targets by service rather than blindly.
type MsgMeta struct {
	ID       uint64
	From, To int // cell ids (zero for replies, which carry no routing echo)
	Proc     ProcID
	IsReply  bool
}

// ClassifySIPS decodes the RPC payload of a SIPS message, reporting false
// for non-RPC traffic. Fault injectors use it to restrict drop/corrupt
// faults to traffic whose loss the RPC layer can absorb (see Idempotent).
func ClassifySIPS(msg *machine.SIPSMsg) (MsgMeta, bool) {
	switch p := msg.Payload.(type) {
	case *Request:
		return MsgMeta{ID: p.ID, From: p.From, To: p.To, Proc: p.Proc}, true
	case *reply:
		return MsgMeta{ID: p.id, Proc: p.proc, IsReply: true}, true
	}
	return MsgMeta{}, false
}
