package rpc

import (
	"errors"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

const (
	procIdem ProcID = 50 + iota
	procSleepy
)

// registerIdem installs an idempotent interrupt-level service on ep that
// counts executions.
func registerIdem(ep *Endpoint, executions *int) {
	ep.Register(procIdem, "idem",
		func(req *Request) (any, sim.Time, bool, error) {
			*executions++
			return "ok", 0, true, nil
		}, nil, Idempotent())
}

func TestRetryRecoversDroppedRequest(t *testing.T) {
	f := newFixture(t, 2)
	executions := 0
	registerIdem(f.eps[0], &executions) // client table: idempotence lookup
	registerIdem(f.eps[1], &executions)
	dropped := false
	f.m.FaultHook = func(msg *machine.SIPSMsg) machine.MsgFaultDecision {
		if meta, ok := ClassifySIPS(msg); ok && !meta.IsReply && !dropped {
			dropped = true
			return machine.MsgFaultDecision{Fault: machine.FaultDrop}
		}
		return machine.MsgFaultDecision{}
	}
	f.run(t, func(tk *sim.Task) {
		got, err := f.eps[0].Call(tk, f.m.Procs[0], 1, procIdem, nil, CallOpts{})
		if err != nil || got != "ok" {
			t.Errorf("call after drop: %v, %v", got, err)
		}
	})
	if !dropped {
		t.Fatal("fault hook never fired")
	}
	if n := f.eps[0].Metrics.Counter("rpc.retries").Value(); n != 1 {
		t.Fatalf("rpc.retries = %d, want 1", n)
	}
	if executions != 1 {
		t.Fatalf("service executed %d times", executions)
	}
}

func TestDroppedReplyRetriesWithoutReExecution(t *testing.T) {
	// The reply is lost, so the request WAS serviced: the retransmit must
	// be answered from the server's dedup cache, not re-executed.
	f := newFixture(t, 2)
	executions := 0
	registerIdem(f.eps[0], &executions)
	registerIdem(f.eps[1], &executions)
	dropped := false
	f.m.FaultHook = func(msg *machine.SIPSMsg) machine.MsgFaultDecision {
		if meta, ok := ClassifySIPS(msg); ok && meta.IsReply && !dropped {
			dropped = true
			return machine.MsgFaultDecision{Fault: machine.FaultDrop}
		}
		return machine.MsgFaultDecision{}
	}
	f.run(t, func(tk *sim.Task) {
		got, err := f.eps[0].Call(tk, f.m.Procs[0], 1, procIdem, nil, CallOpts{})
		if err != nil || got != "ok" {
			t.Errorf("call after reply drop: %v, %v", got, err)
		}
	})
	if executions != 1 {
		t.Fatalf("service executed %d times, want 1 (dedup answers the retransmit)", executions)
	}
	if n := f.eps[1].Metrics.Counter("rpc.dup_requests").Value(); n != 1 {
		t.Fatalf("rpc.dup_requests = %d, want 1", n)
	}
}

func TestDuplicatedRequestNotReExecuted(t *testing.T) {
	// Wire duplication (not loss): the duplicate lands while or after the
	// original is serviced; the handler must run once.
	f := newFixture(t, 2)
	executions := 0
	registerIdem(f.eps[0], &executions)
	registerIdem(f.eps[1], &executions)
	duped := false
	f.m.FaultHook = func(msg *machine.SIPSMsg) machine.MsgFaultDecision {
		if meta, ok := ClassifySIPS(msg); ok && !meta.IsReply && !duped {
			duped = true
			return machine.MsgFaultDecision{Fault: machine.FaultDup}
		}
		return machine.MsgFaultDecision{}
	}
	f.run(t, func(tk *sim.Task) {
		got, err := f.eps[0].Call(tk, f.m.Procs[0], 1, procIdem, nil, CallOpts{})
		if err != nil || got != "ok" {
			t.Errorf("call under dup: %v, %v", got, err)
		}
	})
	if executions != 1 {
		t.Fatalf("service executed %d times, want 1", executions)
	}
	if n := f.eps[1].Metrics.Counter("rpc.dup_requests").Value(); n != 1 {
		t.Fatalf("rpc.dup_requests = %d, want 1", n)
	}
}

func TestDuplicatedReplyDiscarded(t *testing.T) {
	f := newFixture(t, 2)
	executions := 0
	registerIdem(f.eps[0], &executions)
	registerIdem(f.eps[1], &executions)
	duped := false
	f.m.FaultHook = func(msg *machine.SIPSMsg) machine.MsgFaultDecision {
		if meta, ok := ClassifySIPS(msg); ok && meta.IsReply && !duped {
			duped = true
			return machine.MsgFaultDecision{Fault: machine.FaultDup}
		}
		return machine.MsgFaultDecision{}
	}
	f.run(t, func(tk *sim.Task) {
		got, err := f.eps[0].Call(tk, f.m.Procs[0], 1, procIdem, nil, CallOpts{})
		if err != nil || got != "ok" {
			t.Errorf("call under reply dup: %v, %v", got, err)
		}
	})
	// The second copy arrives one wire latency after the first: either the
	// call is still unwinding (dup_replies) or it already returned and the
	// id is gone (stale_replies). Both mean "discarded, not delivered".
	dup := f.eps[0].Metrics.Counter("rpc.dup_replies").Value()
	stale := f.eps[0].Metrics.Counter("rpc.stale_replies").Value()
	if dup+stale != 1 {
		t.Fatalf("dup_replies=%d stale_replies=%d, want exactly one discard", dup, stale)
	}
	if executions != 1 {
		t.Fatalf("service executed %d times", executions)
	}
}

func TestNonIdempotentCallFailsFastOnDrop(t *testing.T) {
	// Services not marked Idempotent keep the paper's behavior: no
	// retransmission — a lost request is a timeout (a failure hint), never
	// a silent double execution.
	f := newFixture(t, 2)
	executions := 0
	f.eps[1].Register(procSleepy, "non-idem",
		func(req *Request) (any, sim.Time, bool, error) {
			executions++
			return nil, 0, true, nil
		}, nil)
	f.m.FaultHook = func(msg *machine.SIPSMsg) machine.MsgFaultDecision {
		if meta, ok := ClassifySIPS(msg); ok && !meta.IsReply {
			return machine.MsgFaultDecision{Fault: machine.FaultDrop}
		}
		return machine.MsgFaultDecision{}
	}
	var elapsed sim.Time
	f.run(t, func(tk *sim.Task) {
		start := tk.Now()
		_, err := f.eps[0].Call(tk, f.m.Procs[0], 1, procSleepy, nil,
			CallOpts{Timeout: 2 * sim.Millisecond, NoHint: true})
		elapsed = tk.Now() - start
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
	})
	if n := f.eps[0].Metrics.Counter("rpc.retries").Value(); n != 0 {
		t.Fatalf("non-idempotent call retried %d times", n)
	}
	if executions != 0 {
		t.Fatalf("dropped request executed %d times", executions)
	}
	if elapsed < 2*sim.Millisecond {
		t.Fatalf("failed before the timeout: %v", elapsed)
	}
}

func TestRetryBackoffExhaustsToTimeout(t *testing.T) {
	// Everything is dropped: the idempotent caller retransmits with
	// backoff, then fails at exactly the original call budget — retries
	// never accuse a server faster than a single-attempt call would.
	f := newFixture(t, 2)
	executions := 0
	registerIdem(f.eps[0], &executions)
	registerIdem(f.eps[1], &executions)
	f.m.FaultHook = func(msg *machine.SIPSMsg) machine.MsgFaultDecision {
		return machine.MsgFaultDecision{Fault: machine.FaultDrop}
	}
	const budget = 10 * sim.Millisecond
	var elapsed sim.Time
	hints := 0
	f.eps[0].HintSink = func(cell int, reason string) { hints++ }
	f.run(t, func(tk *sim.Task) {
		start := tk.Now()
		_, err := f.eps[0].Call(tk, f.m.Procs[0], 1, procIdem, nil, CallOpts{Timeout: budget})
		elapsed = tk.Now() - start
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
	})
	if n := f.eps[0].Metrics.Counter("rpc.retries").Value(); n != RetryMaxAttempts-1 {
		t.Fatalf("rpc.retries = %d, want %d", n, RetryMaxAttempts-1)
	}
	if elapsed < budget {
		t.Fatalf("gave up after %v, before the %v budget", elapsed, budget)
	}
	if hints != 1 {
		t.Fatalf("hints = %d, want 1 (one failure hint per failed call)", hints)
	}
}

func TestLateReplyDiscardedAndIDsNeverReused(t *testing.T) {
	// A reply that arrives after its call timed out must be discarded —
	// and because call ids are never reused, it can never be delivered to
	// a later call.
	f := newFixture(t, 2)
	f.eps[1].Register(procSleepy, "sleepy", nil,
		func(t *sim.Task, req *Request) (any, error) {
			t.Sleep(5 * sim.Millisecond)
			return "late", nil
		})
	registerNull(f.eps[1])
	f.run(t, func(tk *sim.Task) {
		_, err := f.eps[0].Call(tk, f.m.Procs[0], 1, procSleepy, nil,
			CallOpts{Timeout: sim.Millisecond, NoHint: true})
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
		// A fresh call while the late reply is still in flight: it must
		// complete with its own result, untouched by the late reply.
		got, err := f.eps[0].Call(tk, f.m.Procs[0], 1, procNull, nil, CallOpts{})
		if err != nil || got != nil {
			t.Errorf("fresh call: %v, %v", got, err)
		}
		tk.Sleep(10 * sim.Millisecond) // let the late reply land
	})
	if n := f.eps[0].Metrics.Counter("rpc.stale_replies").Value(); n != 1 {
		t.Fatalf("rpc.stale_replies = %d, want 1", n)
	}
}

func TestShutdownMidCallReturnsCleanError(t *testing.T) {
	// The calling endpoint is shut down (cell panic) while a call is
	// outstanding: the caller gets ErrShutdown immediately — not a 100 ms
	// timeout accusing the healthy callee — and no failure hint is raised.
	f := newFixture(t, 2)
	f.eps[1].Register(procSleepy, "sleepy", nil,
		func(t *sim.Task, req *Request) (any, error) {
			t.Sleep(5 * sim.Millisecond)
			return nil, nil
		})
	hints := 0
	f.eps[0].HintSink = func(cell int, reason string) { hints++ }
	f.e.At(sim.Millisecond, func() { f.eps[0].Shutdown() })
	var elapsed sim.Time
	f.run(t, func(tk *sim.Task) {
		start := tk.Now()
		_, err := f.eps[0].Call(tk, f.m.Procs[0], 1, procSleepy, nil, CallOpts{})
		elapsed = tk.Now() - start
		if !errors.Is(err, ErrShutdown) {
			t.Errorf("err = %v, want ErrShutdown", err)
		}
	})
	if elapsed > 2*sim.Millisecond {
		t.Fatalf("shutdown abort took %v, want immediate", elapsed)
	}
	if hints != 0 {
		t.Fatalf("shutdown raised %d failure hints against a healthy callee", hints)
	}
	if n := f.eps[0].Metrics.Counter("rpc.shutdown_aborts").Value(); n != 1 {
		t.Fatalf("rpc.shutdown_aborts = %d", n)
	}
}
