package rpc

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/stats"
)

// fixture builds a 2-cell machine (one node per cell) with connected
// endpoints.
type fixture struct {
	e   *sim.Engine
	m   *machine.Machine
	eps []*Endpoint
}

func newFixture(t *testing.T, cells int) *fixture {
	t.Helper()
	e := sim.NewEngine(11)
	cfg := machine.DefaultConfig()
	cfg.Nodes = cells
	cfg.MemPerNodeMB = 1
	m := machine.New(e, cfg)
	f := &fixture{e: e, m: m}
	for c := 0; c < cells; c++ {
		f.eps = append(f.eps, NewEndpoint(m, c, []*machine.Processor{m.Procs[c]}, 2))
	}
	Connect(f.eps...)
	return f
}

func (f *fixture) run(t *testing.T, fn func(tk *sim.Task)) {
	t.Helper()
	f.e.Go("client", fn)
	f.e.Run(0)
}

const (
	procNull ProcID = iota
	procEcho
	procBig
	procQueuedNull
	procBlocky
)

func registerNull(ep *Endpoint) {
	ep.Register(procNull, "null",
		func(req *Request) (any, sim.Time, bool, error) { return nil, 0, true, nil }, nil)
}

func TestNullRPCLatency(t *testing.T) {
	// §6: minimum end-to-end null RPC latency is 7.2 µs.
	f := newFixture(t, 2)
	registerNull(f.eps[1])
	var lat sim.Time
	f.run(t, func(tk *sim.Task) {
		start := tk.Now()
		_, err := f.eps[0].Call(tk, f.m.Procs[0], 1, procNull, nil, CallOpts{})
		if err != nil {
			t.Errorf("call: %v", err)
		}
		lat = tk.Now() - start
	})
	if us := lat.Micros(); us < 6.8 || us > 7.6 {
		t.Fatalf("null RPC = %.2f µs, want ≈7.2 µs", us)
	}
}

func TestRealRPCComponentLatency(t *testing.T) {
	// §6: commonly-used interrupt-level requests measure 9.6 µs of RPC
	// component (stub execution above the null RPC).
	f := newFixture(t, 2)
	f.eps[1].Register(procEcho, "echo",
		func(req *Request) (any, sim.Time, bool, error) { return req.Args, 0, true, nil }, nil)
	var lat sim.Time
	f.run(t, func(tk *sim.Task) {
		start := tk.Now()
		got, err := f.eps[0].Call(tk, f.m.Procs[0], 1, procEcho, "hi", CallOpts{DataBytes: 64})
		if err != nil || got != "hi" {
			t.Errorf("call: %v %v", got, err)
		}
		lat = tk.Now() - start
	})
	if us := lat.Micros(); us < 9.0 || us > 10.2 {
		t.Fatalf("real RPC = %.2f µs, want ≈9.6 µs", us)
	}
}

func TestOversizeRPCMatchesTable52(t *testing.T) {
	// Table 5.2: the remote fault's RPC component is 17.3 µs — stubs,
	// hardware, the >1-line copy through shared memory, and arg memory
	// alloc/free.
	f := newFixture(t, 2)
	f.eps[1].Register(procBig, "big",
		func(req *Request) (any, sim.Time, bool, error) { return nil, 0, true, nil }, nil)
	var lat sim.Time
	bd := stats.NewBreakdown()
	f.run(t, func(tk *sim.Task) {
		start := tk.Now()
		_, err := f.eps[0].Call(tk, f.m.Procs[0], 1, procBig, nil,
			CallOpts{DataBytes: 512, Breakdown: bd})
		if err != nil {
			t.Errorf("call: %v", err)
		}
		lat = tk.Now() - start
	})
	if us := lat.Micros(); us < 16.4 || us > 18.2 {
		t.Fatalf("oversize RPC = %.2f µs, want ≈17.3 µs", us)
	}
	if len(bd.Components()) < 5 {
		t.Fatalf("breakdown too coarse: %v", bd.Components())
	}
}

func TestQueuedNullRPCLatency(t *testing.T) {
	// §6: minimum end-to-end null queued RPC latency is 34 µs.
	f := newFixture(t, 2)
	f.eps[1].Register(procQueuedNull, "queued-null", nil,
		func(t *sim.Task, req *Request) (any, error) { return nil, nil })
	var lat sim.Time
	f.run(t, func(tk *sim.Task) {
		start := tk.Now()
		_, err := f.eps[0].Call(tk, f.m.Procs[0], 1, procQueuedNull, nil, CallOpts{})
		if err != nil {
			t.Errorf("call: %v", err)
		}
		lat = tk.Now() - start
	})
	if us := lat.Micros(); us < 31 || us > 37 {
		t.Fatalf("queued null RPC = %.2f µs, want ≈34 µs", us)
	}
}

func TestIntrFallbackToQueued(t *testing.T) {
	// Best-effort interrupt-level service that falls back (§6): the
	// first attempt reports not-handled, the queued handler completes.
	f := newFixture(t, 2)
	intrTried := false
	f.eps[1].Register(procBlocky, "blocky",
		func(req *Request) (any, sim.Time, bool, error) {
			intrTried = true
			return nil, 0, false, nil // "lock busy"
		},
		func(t *sim.Task, req *Request) (any, error) { return "queued-result", nil })
	f.run(t, func(tk *sim.Task) {
		got, err := f.eps[0].Call(tk, f.m.Procs[0], 1, procBlocky, nil, CallOpts{})
		if err != nil || got != "queued-result" {
			t.Errorf("got %v, %v", got, err)
		}
	})
	if !intrTried {
		t.Fatal("interrupt-level path never tried")
	}
	if f.eps[1].Metrics.Counter("rpc.intr_fallbacks").Value() != 1 {
		t.Fatal("fallback not counted")
	}
}

func TestCallToFailedCellTimesOutWithHint(t *testing.T) {
	f := newFixture(t, 2)
	registerNull(f.eps[1])
	var hints []int
	f.eps[0].HintSink = func(cell int, reason string) { hints = append(hints, cell) }
	var start, end sim.Time
	f.run(t, func(tk *sim.Task) {
		// Fail the callee after the send is in flight: halt only the
		// processor so the send succeeds but no service runs.
		f.m.Procs[1].Halt()
		start = tk.Now()
		_, err := f.eps[0].Call(tk, f.m.Procs[0], 1, procNull, nil,
			CallOpts{Timeout: 500 * sim.Microsecond})
		end = tk.Now()
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v", err)
		}
	})
	if len(hints) != 1 || hints[0] != 1 {
		t.Fatalf("hints = %v", hints)
	}
	if d := end - start; d < 500*sim.Microsecond {
		t.Fatalf("returned before timeout: %v", d)
	}
}

func TestCallToFailStoppedNodeFailsFast(t *testing.T) {
	// A fully failed node produces an immediate bus error on the SIPS
	// send — the fault model's no-indefinite-stall guarantee.
	f := newFixture(t, 2)
	f.m.Nodes[1].FailStop()
	var hints int
	f.eps[0].HintSink = func(cell int, reason string) { hints++ }
	f.run(t, func(tk *sim.Task) {
		_, err := f.eps[0].Call(tk, f.m.Procs[0], 1, procNull, nil, CallOpts{})
		if !errors.Is(err, ErrSendFailed) {
			t.Errorf("err = %v", err)
		}
	})
	if hints != 1 {
		t.Fatalf("hints = %d", hints)
	}
}

func TestNoServiceError(t *testing.T) {
	f := newFixture(t, 2)
	f.run(t, func(tk *sim.Task) {
		_, err := f.eps[0].Call(tk, f.m.Procs[0], 1, ProcID(99), nil, CallOpts{})
		if err == nil || err.Error() != ErrNoService.Error() {
			t.Errorf("err = %v", err)
		}
	})
}

func TestHandlerErrorPropagates(t *testing.T) {
	f := newFixture(t, 2)
	f.eps[1].Register(procEcho, "err",
		func(req *Request) (any, sim.Time, bool, error) {
			return nil, 0, true, fmt.Errorf("server says no")
		}, nil)
	f.run(t, func(tk *sim.Task) {
		_, err := f.eps[0].Call(tk, f.m.Procs[0], 1, procEcho, nil, CallOpts{})
		if err == nil || err.Error() != "server says no" {
			t.Errorf("err = %v", err)
		}
	})
}

func TestConcurrentCallsFromManyCells(t *testing.T) {
	f := newFixture(t, 4)
	served := 0
	f.eps[0].Register(procEcho, "count",
		func(req *Request) (any, sim.Time, bool, error) {
			served++
			return served, 2000, true, nil
		}, nil)
	var wg sim.WaitGroup
	wg.Add(3)
	for c := 1; c < 4; c++ {
		c := c
		f.e.Go(fmt.Sprintf("client%d", c), func(tk *sim.Task) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := f.eps[c].Call(tk, f.m.Procs[c], 0, procEcho, nil, CallOpts{}); err != nil {
					t.Errorf("cell %d call %d: %v", c, i, err)
				}
			}
		})
	}
	f.e.Go("waiter", func(tk *sim.Task) { wg.Wait(tk) })
	f.e.Run(0)
	if served != 30 {
		t.Fatalf("served = %d", served)
	}
}

func TestShutdownStopsService(t *testing.T) {
	f := newFixture(t, 2)
	registerNull(f.eps[1])
	f.eps[1].Shutdown()
	f.run(t, func(tk *sim.Task) {
		_, err := f.eps[0].Call(tk, f.m.Procs[0], 1, procNull, nil,
			CallOpts{Timeout: 200 * sim.Microsecond, NoHint: true})
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v", err)
		}
	})
	if !f.eps[1].Dead() {
		t.Fatal("endpoint not dead")
	}
}

func TestQueuedHandlerMayBlock(t *testing.T) {
	f := newFixture(t, 2)
	f.eps[1].Register(procBlocky, "sleepy", nil,
		func(t *sim.Task, req *Request) (any, error) {
			t.Sleep(300 * sim.Microsecond) // e.g. disk I/O
			return "slow", nil
		})
	var lat sim.Time
	f.run(t, func(tk *sim.Task) {
		start := tk.Now()
		got, err := f.eps[0].Call(tk, f.m.Procs[0], 1, procBlocky, nil, CallOpts{})
		lat = tk.Now() - start
		if err != nil || got != "slow" {
			t.Errorf("got %v, %v", got, err)
		}
	})
	if lat < 300*sim.Microsecond {
		t.Fatalf("latency %v shorter than handler sleep", lat)
	}
}

func TestServerPoolParallelism(t *testing.T) {
	// Two pool servers should overlap two blocking requests.
	f := newFixture(t, 3)
	f.eps[0].Register(procBlocky, "sleepy", nil,
		func(t *sim.Task, req *Request) (any, error) {
			t.Sleep(1 * sim.Millisecond)
			return nil, nil
		})
	var done sim.Time
	var wg sim.WaitGroup
	wg.Add(2)
	for c := 1; c < 3; c++ {
		c := c
		f.e.Go(fmt.Sprintf("client%d", c), func(tk *sim.Task) {
			defer wg.Done()
			f.eps[c].Call(tk, f.m.Procs[c], 0, procBlocky, nil, CallOpts{Timeout: 10 * sim.Millisecond})
		})
	}
	f.e.Go("waiter", func(tk *sim.Task) {
		wg.Wait(tk)
		done = tk.Now()
	})
	f.e.Run(0)
	if done > 2*sim.Millisecond {
		t.Fatalf("blocking requests serialized: done at %v", done)
	}
}

func TestBreakdownRecordsComponents(t *testing.T) {
	f := newFixture(t, 2)
	f.eps[1].Register(procBig, "big",
		func(req *Request) (any, sim.Time, bool, error) { return nil, 0, true, nil }, nil)
	bd := stats.NewBreakdown()
	f.run(t, func(tk *sim.Task) {
		f.eps[0].Call(tk, f.m.Procs[0], 1, procBig, nil,
			CallOpts{DataBytes: 512, Breakdown: bd})
	})
	// The recorded components must include both client halves and the
	// server-side shares, and their total approximates the 17.3 µs call.
	total := bd.MeanTotal()
	if total < 14 || total > 19 {
		t.Fatalf("breakdown total = %.1f µs", total)
	}
	names := bd.Components()
	want := []string{"client stub (send)", "server dispatch", "server reply"}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("component %q missing from %v", w, names)
		}
	}
}

func TestTargetProcSkipsHalted(t *testing.T) {
	// A cell with two processors keeps serving when one halts.
	e := sim.NewEngine(5)
	cfg := machine.DefaultConfig()
	cfg.Nodes = 2
	cfg.ProcsPerNode = 2
	cfg.MemPerNodeMB = 1
	m := machine.New(e, cfg)
	ep0 := NewEndpoint(m, 0, m.Nodes[0].Procs, 2)
	ep1 := NewEndpoint(m, 1, m.Nodes[1].Procs, 2)
	Connect(ep0, ep1)
	registerNull(ep1)
	m.Procs[2].Halt() // cell 1's first CPU
	ok := false
	e.Go("client", func(tk *sim.Task) {
		for i := 0; i < 4; i++ {
			if _, err := ep0.Call(tk, m.Procs[0], 1, procNull, nil, CallOpts{}); err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
		}
		ok = true
	})
	e.Run(sim.Second)
	if !ok {
		t.Fatal("calls failed with one CPU halted")
	}
}
