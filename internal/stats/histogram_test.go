package stats

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.N() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram not all-zero")
	}
	for _, v := range []float64{1, 2, 4, 8, 16} {
		h.Observe(v)
	}
	if h.N() != 5 {
		t.Errorf("N = %d", h.N())
	}
	if h.Min() != 1 || h.Max() != 16 {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Mean(); math.Abs(got-6.2) > 1e-9 {
		t.Errorf("Mean = %v, want 6.2", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	// Log-bucketed: estimates must land within one bucket width (2^¼).
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.5, 500}, {0.9, 900}, {0.99, 990}, {1, 1000},
	} {
		got := h.Quantile(tc.q)
		lo, hi := tc.want/1.2, tc.want*1.2
		if got < lo || got > hi {
			t.Errorf("Quantile(%v) = %v, want within [%v, %v]", tc.q, got, lo, hi)
		}
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Observe(-3)
	h.Observe(0)
	h.Observe(10)
	if h.Min() != -3 || h.Max() != 10 {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Quantile(0.25); got != -3 {
		t.Errorf("Quantile(0.25) = %v, want -3 (the <=0 bucket)", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) = %v, want 10", got)
	}
	s := h.Snapshot()
	if len(s.Buckets) != 2 || s.Buckets[0].Count != 2 {
		t.Errorf("snapshot buckets = %+v", s.Buckets)
	}
}

func TestHistogramObserveTime(t *testing.T) {
	var h Histogram
	h.ObserveTime(50 * sim.Microsecond)
	if got := h.Mean(); math.Abs(got-50) > 1e-9 {
		t.Errorf("ObserveTime mean = %v µs, want 50", got)
	}
}

func TestHistogramSnapshotFormat(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(float64(1 + i%7))
	}
	out := h.Snapshot().Format(3)
	if !strings.Contains(out, "n=100") || !strings.Contains(out, "#") {
		t.Errorf("Format output missing summary or bars:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines > 4 {
		t.Errorf("Format(3) printed %d lines, want <= 4:\n%s", lines, out)
	}
}

func TestHistogramDeterminism(t *testing.T) {
	run := func() string {
		var h Histogram
		v := 1.0
		for i := 0; i < 500; i++ {
			v = math.Mod(v*1.7+3.1, 977) + 1
			h.Observe(v)
		}
		return h.Snapshot().Format(0)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("snapshot differs between identical runs:\n%s\n%s", a, b)
	}
}

func TestRegistryHist(t *testing.T) {
	r := NewRegistry()
	r.Hist("b.lat").Observe(2)
	r.Hist("a.lat").Observe(1)
	r.Hist("a.lat").Observe(3)
	if r.Hist("a.lat").N() != 2 {
		t.Errorf("a.lat N = %d", r.Hist("a.lat").N())
	}
	names := r.HistNames()
	if len(names) != 2 || names[0] != "a.lat" || names[1] != "b.lat" {
		t.Errorf("HistNames = %v", names)
	}
}

func TestHistogramMergeAndP999(t *testing.T) {
	var a, b Histogram
	for i := 1; i <= 500; i++ {
		a.Observe(float64(i))
	}
	for i := 501; i <= 1000; i++ {
		b.Observe(float64(i))
	}
	a.Merge(&b)
	if a.N() != 1000 {
		t.Fatalf("merged N = %d, want 1000", a.N())
	}
	if a.Min() != 1 || a.Max() != 1000 {
		t.Errorf("merged min/max = %v/%v, want 1/1000", a.Min(), a.Max())
	}
	if got := a.Quantile(0.999); got < 900 || got > 1001 {
		t.Errorf("p999 = %v, want within the top bucket", got)
	}
	s := a.Snapshot()
	if s.P999 < 900 || s.P999 > 1001 {
		t.Errorf("snapshot P999 = %v, want within the top bucket", s.P999)
	}
	if s.P999 < s.P99 || s.P99 < s.P50 {
		t.Errorf("quantiles not monotone: p50=%v p99=%v p999=%v", s.P50, s.P99, s.P999)
	}
	// Merging an empty histogram is a no-op.
	var empty Histogram
	a.Merge(&empty)
	if a.N() != 1000 || a.Min() != 1 {
		t.Errorf("merge of empty changed state: N=%d min=%v", a.N(), a.Min())
	}
	// Merging into an empty histogram adopts the source wholesale.
	empty.Merge(&a)
	if empty.N() != 1000 || empty.Min() != 1 || empty.Max() != 1000 {
		t.Errorf("merge into empty: N=%d min=%v max=%v", empty.N(), empty.Min(), empty.Max())
	}
}
