// Package stats provides the measurement infrastructure used to regenerate
// the paper's tables: counters, latency distributions, named latency
// component breakdowns (Table 5.2), and periodic samplers (the 20 ms
// firewall-page samples of §4.2).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Counter is a monotonically increasing event count. Increments are atomic:
// in sharded runs counters are bumped concurrently from parallel engine
// shards, and because integer addition commutes the final value is still
// deterministic regardless of worker count.
type Counter struct {
	n atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds d.
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Value returns the count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Distribution accumulates latency (or other) samples and reports summary
// statistics. Samples are stored, so use for bounded-cardinality series.
//
// Unlike Counter, a Distribution is NOT safe for concurrent observation:
// float accumulation does not commute, so sample order matters for
// determinism. Each instance must be observed from a single shard (per-cell
// metrics from their cell's shard, run-level metrics from the global
// phase); the race detector enforces this in sharded tests.
type Distribution struct {
	samples []float64
	sum     float64
}

// Observe records one sample.
func (d *Distribution) Observe(v float64) {
	d.samples = append(d.samples, v)
	d.sum += v
}

// ObserveTime records a sim.Time sample in microseconds.
func (d *Distribution) ObserveTime(t sim.Time) { d.Observe(t.Micros()) }

// N returns the sample count.
func (d *Distribution) N() int { return len(d.samples) }

// Sum returns the total of all samples.
func (d *Distribution) Sum() float64 { return d.sum }

// Mean returns the average, or 0 with no samples.
func (d *Distribution) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	return d.sum / float64(len(d.samples))
}

// Min returns the smallest sample, or 0 with none.
func (d *Distribution) Min() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	m := d.samples[0]
	for _, v := range d.samples[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample, or 0 with none.
func (d *Distribution) Max() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	m := d.samples[0]
	for _, v := range d.samples[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (0-100) by nearest-rank.
func (d *Distribution) Percentile(p float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	s := append([]float64(nil), d.samples...)
	sort.Float64s(s)
	idx := int(math.Ceil(p/100*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Stddev returns the population standard deviation.
func (d *Distribution) Stddev() float64 {
	if len(d.samples) < 2 {
		return 0
	}
	mean := d.Mean()
	var ss float64
	for _, v := range d.samples {
		ss += (v - mean) * (v - mean)
	}
	return math.Sqrt(ss / float64(len(d.samples)))
}

// histBucketsPerOctave sets the Histogram resolution: 4 buckets per
// power of two, i.e. bucket bounds grow by 2^(1/4) ≈ 19 %.
const histBucketsPerOctave = 4

// Histogram accumulates samples into logarithmic buckets and reports
// percentile estimates from the bucket counts. Unlike Distribution it
// stores O(buckets) state, not O(samples), so it suits unbounded series
// (per-RPC latency, per-fault latency); Distribution remains for the
// exact-mean component tables. All arithmetic is deterministic: samples
// arrive in engine order and quantiles are computed over sorted bucket
// indices.
type Histogram struct {
	counts   map[int]int64 // bucket index -> count (sparse)
	zero     int64         // samples <= 0
	n        int64
	sum      float64
	min, max float64
}

// bucketOf maps a positive sample to its logarithmic bucket index.
func bucketOf(v float64) int {
	return int(math.Floor(math.Log2(v) * histBucketsPerOctave))
}

// bucketLo returns the inclusive lower bound of bucket idx.
func bucketLo(idx int) float64 {
	return math.Pow(2, float64(idx)/histBucketsPerOctave)
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h.counts == nil {
		h.counts = make(map[int]int64)
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	if v <= 0 {
		h.zero++
		return
	}
	h.counts[bucketOf(v)]++
}

// ObserveTime records a sim.Time sample in microseconds.
func (h *Histogram) ObserveTime(t sim.Time) { h.Observe(t.Micros()) }

// Merge folds another histogram's samples into h. Bucket counts add
// exactly, so the merged quantiles are identical to observing both
// sample streams into one histogram in any order — which is what makes
// per-cell histograms (each observed from its own shard) safe to merge
// into one SLO curve after the run.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.n == 0 {
		return
	}
	if h.counts == nil {
		h.counts = make(map[int]int64)
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.n == 0 || o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
	h.zero += o.zero
	for _, idx := range o.sortedBuckets() {
		h.counts[idx] += o.counts[idx]
	}
}

// N returns the sample count.
func (h *Histogram) N() int64 { return h.n }

// Sum returns the total of all samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the average, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest sample, or 0 with none.
func (h *Histogram) Min() float64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample, or 0 with none.
func (h *Histogram) Max() float64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// sortedBuckets returns the occupied bucket indices ascending.
func (h *Histogram) sortedBuckets() []int {
	idxs := make([]int, 0, len(h.counts))
	for i := range h.counts {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	return idxs
}

// Quantile estimates the q-th quantile (0..1) by nearest rank over the
// buckets, returning the geometric midpoint of the selected bucket
// clamped to the observed min/max. Exact for the extremes (0 -> Min,
// 1 -> Max), within one bucket width (±19 %) elsewhere.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank <= h.zero {
		return h.min // the <=0 bucket: its smallest member is the min
	}
	seen := h.zero
	for _, idx := range h.sortedBuckets() {
		seen += h.counts[idx]
		if seen >= rank {
			mid := math.Sqrt(bucketLo(idx) * bucketLo(idx+1))
			return math.Min(math.Max(mid, h.min), h.max)
		}
	}
	return h.max
}

// HistBucket is one occupied bucket of a snapshot.
type HistBucket struct {
	Lo, Hi float64 // [Lo, Hi)
	Count  int64
}

// HistSnapshot is a Histogram rendered to plain values.
type HistSnapshot struct {
	N              int64
	Mean, Min, Max float64
	P50, P90, P99  float64
	P999           float64
	Buckets        []HistBucket // ascending; <=0 samples as [0,0)
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		N: h.n, Mean: h.Mean(), Min: h.Min(), Max: h.Max(),
		P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
		P999: h.Quantile(0.999),
	}
	if h.zero > 0 {
		s.Buckets = append(s.Buckets, HistBucket{Count: h.zero})
	}
	for _, idx := range h.sortedBuckets() {
		s.Buckets = append(s.Buckets, HistBucket{
			Lo: bucketLo(idx), Hi: bucketLo(idx + 1), Count: h.counts[idx],
		})
	}
	return s
}

// Format renders the snapshot: a summary line plus up to maxRows bucket
// bars (largest first; <=0 keeps every bucket), for dashboards.
func (s HistSnapshot) Format(maxRows int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d mean=%.1f min=%.1f p50=%.1f p90=%.1f p99=%.1f max=%.1f\n",
		s.N, s.Mean, s.Min, s.P50, s.P90, s.P99, s.Max)
	rows := append([]HistBucket(nil), s.Buckets...)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Count > rows[j].Count })
	if maxRows > 0 && len(rows) > maxRows {
		rows = rows[:maxRows]
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Lo < rows[j].Lo })
	var peak int64 = 1
	for _, b := range rows {
		if b.Count > peak {
			peak = b.Count
		}
	}
	for _, b := range rows {
		bar := int(b.Count * 24 / peak)
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&sb, "  [%9.1f,%9.1f) %-24s %d\n",
			b.Lo, b.Hi, strings.Repeat("#", bar), b.Count)
	}
	return sb.String()
}

// Breakdown accumulates named latency components, preserving insertion
// order, to regenerate component tables like Table 5.2.
type Breakdown struct {
	order []string
	comps map[string]*Distribution
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{comps: make(map[string]*Distribution)}
}

// Observe records a sample for the named component.
func (b *Breakdown) Observe(name string, t sim.Time) {
	d, ok := b.comps[name]
	if !ok {
		d = &Distribution{}
		b.comps[name] = d
		b.order = append(b.order, name)
	}
	d.ObserveTime(t)
}

// Component returns the distribution for name (nil if never observed).
func (b *Breakdown) Component(name string) *Distribution { return b.comps[name] }

// Components returns component names in insertion order.
func (b *Breakdown) Components() []string { return append([]string(nil), b.order...) }

// MeanTotal returns the sum of the component means (µs).
func (b *Breakdown) MeanTotal() float64 {
	var total float64
	for _, name := range b.order {
		total += b.comps[name].Mean()
	}
	return total
}

// Format renders the breakdown as aligned rows of "name  mean-µs".
func (b *Breakdown) Format() string {
	var sb strings.Builder
	for _, name := range b.order {
		fmt.Fprintf(&sb, "  %-42s %7.1f us\n", name, b.comps[name].Mean())
	}
	fmt.Fprintf(&sb, "  %-42s %7.1f us\n", "TOTAL", b.MeanTotal())
	return sb.String()
}

// Sampler records a value at fixed virtual-time intervals; used for the
// remotely-writable-page samples (§4.2: 5.0 s sampled at 20 ms).
type Sampler struct {
	Interval sim.Time
	values   []float64
	stopped  bool
}

// Start begins sampling fn every Interval on the engine until Stop.
func (s *Sampler) Start(e *sim.Engine, fn func() float64) {
	if s.Interval <= 0 {
		s.Interval = 20 * sim.Millisecond
	}
	var tick func()
	tick = func() {
		if s.stopped {
			return
		}
		s.values = append(s.values, fn())
		e.After(s.Interval, tick)
	}
	e.After(s.Interval, tick)
}

// Stop ends sampling.
func (s *Sampler) Stop() { s.stopped = true }

// Values returns the recorded samples.
func (s *Sampler) Values() []float64 { return append([]float64(nil), s.values...) }

// Mean returns the average sample, or 0 with none.
func (s *Sampler) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Max returns the largest sample, or 0 with none.
func (s *Sampler) Max() float64 {
	var m float64
	for _, v := range s.values {
		if v > m {
			m = v
		}
	}
	return m
}

// Table builds aligned text tables for the benchmark harness output.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends one row; cells beyond the header count are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// Registry is a named collection of counters and distributions, one per
// cell/kernel, so experiments can pull out whichever metrics they report.
// Lookup (and lazy creation) is guarded by a lock so shards of a sharded
// run may fetch metrics concurrently; hot paths should cache the returned
// pointer when the name is fixed.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	dists    map[string]*Distribution
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		dists:    make(map[string]*Distribution),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok = r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Dist returns (creating if needed) the named distribution.
func (r *Registry) Dist(name string) *Distribution {
	r.mu.RLock()
	d, ok := r.dists[name]
	r.mu.RUnlock()
	if ok {
		return d
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok = r.dists[name]
	if !ok {
		d = &Distribution{}
		r.dists[name] = d
	}
	return d
}

// Hist returns (creating if needed) the named histogram.
func (r *Registry) Hist(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok = r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// HistNames returns all histogram names, sorted.
func (r *Registry) HistNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CounterNames returns all counter names, sorted.
func (r *Registry) CounterNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot renders every nonzero counter; for debugging and cmd output.
func (r *Registry) Snapshot() string {
	var sb strings.Builder
	for _, n := range r.CounterNames() {
		if v := r.Counter(n).Value(); v != 0 {
			fmt.Fprintf(&sb, "  %-40s %12d\n", n, v)
		}
	}
	return sb.String()
}
