package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d", c.Value())
	}
}

func TestDistributionSummary(t *testing.T) {
	var d Distribution
	for _, v := range []float64{1, 2, 3, 4, 5} {
		d.Observe(v)
	}
	if d.N() != 5 || d.Sum() != 15 || d.Mean() != 3 {
		t.Fatalf("n=%d sum=%f mean=%f", d.N(), d.Sum(), d.Mean())
	}
	if d.Min() != 1 || d.Max() != 5 {
		t.Fatalf("min=%f max=%f", d.Min(), d.Max())
	}
	if p := d.Percentile(50); p != 3 {
		t.Fatalf("p50 = %f", p)
	}
	if p := d.Percentile(100); p != 5 {
		t.Fatalf("p100 = %f", p)
	}
	if s := d.Stddev(); math.Abs(s-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("stddev = %f", s)
	}
}

func TestDistributionEmpty(t *testing.T) {
	var d Distribution
	if d.Mean() != 0 || d.Min() != 0 || d.Max() != 0 || d.Percentile(50) != 0 || d.Stddev() != 0 {
		t.Fatal("empty distribution not all-zero")
	}
}

func TestObserveTimeConvertsToMicros(t *testing.T) {
	var d Distribution
	d.ObserveTime(3 * sim.Microsecond)
	if d.Mean() != 3 {
		t.Fatalf("mean = %f µs", d.Mean())
	}
}

func TestBreakdownOrderAndTotal(t *testing.T) {
	b := NewBreakdown()
	b.Observe("beta", 2*sim.Microsecond)
	b.Observe("alpha", 1*sim.Microsecond)
	b.Observe("beta", 4*sim.Microsecond)
	if got := b.Components(); len(got) != 2 || got[0] != "beta" || got[1] != "alpha" {
		t.Fatalf("components = %v", got)
	}
	if b.MeanTotal() != 4 { // beta mean 3 + alpha mean 1
		t.Fatalf("total = %f", b.MeanTotal())
	}
	out := b.Format()
	if !strings.Contains(out, "beta") || !strings.Contains(out, "TOTAL") {
		t.Fatalf("format = %q", out)
	}
}

func TestSampler(t *testing.T) {
	e := sim.NewEngine(1)
	s := &Sampler{Interval: 10 * sim.Millisecond}
	v := 0.0
	s.Start(e, func() float64 { v++; return v })
	e.Run(55 * sim.Millisecond)
	s.Stop()
	e.Run(100 * sim.Millisecond)
	if n := len(s.Values()); n != 5 {
		t.Fatalf("samples = %d, want 5", n)
	}
	if s.Mean() != 3 || s.Max() != 5 {
		t.Fatalf("mean=%f max=%f", s.Mean(), s.Max())
	}
}

func TestSamplerDefaultInterval(t *testing.T) {
	e := sim.NewEngine(1)
	s := &Sampler{}
	s.Start(e, func() float64 { return 1 })
	e.Run(45 * sim.Millisecond)
	if len(s.Values()) != 2 { // 20 ms default: samples at 20, 40
		t.Fatalf("samples = %d", len(s.Values()))
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("title", "name", "value")
	tb.AddRow("short", "1")
	tb.AddRow("a-much-longer-name", "22", "ignored-extra")
	out := tb.String()
	if !strings.HasPrefix(out, "title\n") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[2], "---") {
		t.Fatalf("header/separator malformed: %q", out)
	}
	// Columns align: the "value" column starts at the same offset in
	// every row.
	idx := strings.Index(lines[1], "value")
	if !strings.HasPrefix(lines[3][idx:], "1") || !strings.HasPrefix(lines[4][idx:], "22") {
		t.Fatalf("misaligned:\n%s", out)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Add(2)
	r.Counter("a").Inc()
	if r.Counter("a").Value() != 3 {
		t.Fatal("counter identity broken")
	}
	if names := r.CounterNames(); len(names) != 2 || names[0] != "a" {
		t.Fatalf("names = %v", names)
	}
	snap := r.Snapshot()
	if !strings.Contains(snap, "a") || !strings.Contains(snap, "3") {
		t.Fatalf("snapshot = %q", snap)
	}
	r.Dist("lat").Observe(1.5)
	if r.Dist("lat").N() != 1 {
		t.Fatal("dist identity broken")
	}
}

// Property: Mean is always between Min and Max, and Percentile is monotone.
func TestPropertyDistributionInvariants(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		var d Distribution
		for _, v := range vals {
			// Skip pathological magnitudes where the running sum
			// itself overflows/loses precision; latencies are small.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e15 {
				return true
			}
			d.Observe(v)
		}
		if d.Mean() < d.Min()-1e-9 || d.Mean() > d.Max()+1e-9 {
			return false
		}
		last := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := d.Percentile(p)
			if v < last-1e-9 {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
