package lint

import "go/ast"

// stablesort: sort.Slice, sort.Sort and slices.SortFunc leave the
// relative order of equal elements unspecified, and the underlying
// algorithm has changed across Go releases (1.19 moved to pattern-
// defeating quicksort). A comparator without a total order — like
// sorting cells by free-page count with no tie-break — therefore
// produces different outputs on different toolchains even with a fixed
// seed. Model code must use the stable variants (whose output is fully
// determined by a deterministic input order) and give comparators an
// explicit tie-break such as the cell id.
var stablesortAnalyzer = &Analyzer{
	Name: "stablesort",
	Doc:  "no unstable sorts in model packages; use sort.SliceStable/sort.Stable with a total-order comparator",
	Run:  runStablesort,
}

// stablesortBanned maps package path to the unstable entry points.
var stablesortBanned = map[string]map[string]string{
	"sort": {
		"Slice": "sort.SliceStable",
		"Sort":  "sort.Stable",
	},
	"slices": {
		"SortFunc": "slices.SortStableFunc",
	},
}

func runStablesort(p *Pass) {
	if !p.Cfg.ModelPackage(p.Pkg.Path) {
		return
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			ipath, ok := p.importedPackage(file, id)
			if !ok {
				return true
			}
			if repl, banned := stablesortBanned[ipath][sel.Sel.Name]; banned {
				p.Reportf(call.Pos(), "%s.%s is unstable for equal keys (order varies across Go versions); use %s and a deterministic tie-break",
					ipath, sel.Sel.Name, repl)
			}
			return true
		})
	}
}
