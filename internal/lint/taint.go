package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the conservative dataflow (taint) engine behind the
// fault-containment analyzers. It tracks values from designated sources
// through assignments, struct fields, returns and call arguments, across
// function and package boundaries, until they reach analyzer-designated
// sinks.
//
// The abstraction is deliberately coarse so it stays sound in the
// directions the paper cares about and cheap enough to run inside the
// tier-1 gate:
//
//   - Object-level, flow-insensitive: a variable (or struct field) is
//     tainted everywhere once any assignment taints it. Field taint is
//     per *field*, not per instance — if one rpc reply's payload flows
//     into reply.result, every read of reply.result is suspect.
//   - Interprocedural via a whole-module fixed point: tainted arguments
//     taint callee parameters; tainted returns taint call results.
//     Interface calls propagate through every module method that
//     implements the interface (see callgraph.go).
//   - Calls to functions outside the module (stdlib, func-typed fields)
//     pass taint through: any tainted argument taints the result.
//   - Sanitizers clear taint: a call to a designated validation function
//     yields a clean result, and additionally marks its (identifier-
//     rooted) arguments validated within the calling function, so
//     guard-style checks — `if err := validateX(args); err != nil {
//     return err }` followed by use of args — count.
//
// Soundness caveats (documented in DESIGN.md): aliasing through stored
// pointers is not tracked beyond field taint; a sanitizer call anywhere
// in a function clears its argument for the whole function (the engine
// has no statement ordering); closures invoked through variables are
// unknown calls; sanitizer bodies are trusted wholesale — taint is not
// tracked inside them, so a validator that forwards raw data into a
// sink is invisible; error-typed values never carry taint. These lose
// precision, not containment: each widens what is *reported*, except
// the sanitizer rules, which assume validation functions are called
// before use and actually validate — the code-review property the
// analyzer makes greppable.

// Origin records where taint entered a value chain.
type Origin struct {
	Pos  token.Pos
	Desc string
}

// FieldSource designates every read of a struct field as a taint source,
// e.g. rpc.Request.Args.
type FieldSource struct {
	PkgPath string // defining package import path
	Type    string // named struct type
	Field   string
	Desc    string // human description used in diagnostics
}

// TaintSpec configures one taint analysis.
type TaintSpec struct {
	// FieldSources lists struct fields whose reads are sources.
	FieldSources []FieldSource
	// CallSource, if set, inspects a call and reports a source
	// description when the call's result is tainted at birth (e.g.
	// kmem.Space.Arena of a possibly-remote cell).
	CallSource func(pkg *Package, call *ast.CallExpr) (string, bool)
	// Sanitizer reports whether a call to fn validates the data passing
	// through it.
	Sanitizer func(fn *types.Func) bool
}

// Taint is one converged whole-module taint analysis.
type Taint struct {
	spec  *TaintSpec
	pkgs  []*Package
	graph *CallGraph

	objTaint map[types.Object]*Origin
	retTaint map[*types.Func]*Origin
	// sanitized records, per declared function, the identifier-rooted
	// objects a sanitizer call vouched for in that function.
	sanitized map[*types.Func]map[types.Object]bool
	changed   bool
}

// NewTaint runs the analysis to a fixed point over the given packages
// (which must be type-checked) and returns the converged state.
func NewTaint(pkgs []*Package, graph *CallGraph, spec *TaintSpec) *Taint {
	tt := &Taint{
		spec:      spec,
		pkgs:      pkgs,
		graph:     graph,
		objTaint:  map[types.Object]*Origin{},
		retTaint:  map[*types.Func]*Origin{},
		sanitized: map[*types.Func]map[types.Object]bool{},
	}
	for {
		tt.changed = false
		for _, pkg := range pkgs {
			if pkg.Info == nil {
				continue
			}
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
					if !ok {
						continue
					}
					// Sanitizer bodies are the trust boundary: they hold raw
					// remote data by design, and their results are forced
					// clean at every call site (callTaint). Scanning them
					// would leak taint through shared callee objects — e.g.
					// args.Parent.Cell() inside a validator taints the
					// receiver of kmem.Addr.Cell for the whole module.
					if tt.spec.Sanitizer != nil && tt.spec.Sanitizer(fn) {
						continue
					}
					tt.scanFunc(pkg, fn, fd)
				}
			}
		}
		if !tt.changed {
			return tt
		}
	}
}

// TaintOf reports the origin tainting expression e (evaluated in pkg), or
// nil when e is clean. Callers use it after convergence, at sink sites.
func (tt *Taint) TaintOf(pkg *Package, e ast.Expr) *Origin {
	return tt.exprTaint(pkg, e)
}

// SanitizedIn reports whether e's root object was passed through a
// sanitizer somewhere in fn.
func (tt *Taint) SanitizedIn(fn *types.Func, e ast.Expr) bool {
	root := rootObject(tt.pkgInfo(fn), e)
	if root == nil {
		return false
	}
	return tt.sanitized[fn.Origin()][root]
}

// ObjectTainted reports the origin tainting a variable or field object
// directly (tests use this to probe propagation).
func (tt *Taint) ObjectTainted(obj types.Object) *Origin { return tt.objTaint[obj] }

// ResultTainted reports the origin tainting fn's results.
func (tt *Taint) ResultTainted(fn *types.Func) *Origin {
	if fn == nil {
		return nil
	}
	return tt.retTaint[fn.Origin()]
}

func (tt *Taint) pkgInfo(fn *types.Func) *types.Info {
	if n := tt.graph.NodeOf(fn); n != nil && n.Pkg != nil {
		return n.Pkg.Info
	}
	return nil
}

// isErrorType reports whether t is the error interface (see exprTaint:
// error values are exempt from taint).
func isErrorType(t types.Type) bool {
	return t.String() == "error" || types.Implements(t, errorIface())
}

func (tt *Taint) taintObj(obj types.Object, o *Origin) {
	if obj == nil || o == nil {
		return
	}
	if isErrorType(obj.Type()) {
		return
	}
	if _, ok := tt.objTaint[obj]; ok {
		return
	}
	tt.objTaint[obj] = o
	tt.changed = true
}

func (tt *Taint) taintRet(fn *types.Func, o *Origin) {
	if fn == nil || o == nil {
		return
	}
	fn = fn.Origin()
	if _, ok := tt.retTaint[fn]; ok {
		return
	}
	tt.retTaint[fn] = o
	tt.changed = true
}

func (tt *Taint) markSanitized(fn *types.Func, obj types.Object) {
	if obj == nil {
		return
	}
	fn = fn.Origin()
	m := tt.sanitized[fn]
	if m == nil {
		m = map[types.Object]bool{}
		tt.sanitized[fn] = m
	}
	if !m[obj] {
		m[obj] = true
		tt.changed = true
	}
}

// scanFunc propagates taint through one function body. Function literals
// nested in the body share the enclosing function's scope: assignments
// inside them use the same variable objects, and sanitizer calls inside
// them vouch within the enclosing function. Returns inside literals do
// not taint the enclosing function's results.
func (tt *Taint) scanFunc(pkg *Package, fn *types.Func, fd *ast.FuncDecl) {
	var walk func(n ast.Node, retOwner *types.Func)
	walk = func(n ast.Node, retOwner *types.Func) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			// Returns inside the literal belong to nobody we can name;
			// everything else flows in the enclosing scope.
			walkChildren(n.Body, func(c ast.Node) { walk(c, nil) })
			return
		case *ast.AssignStmt:
			tt.scanAssign(pkg, fn, n)
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					tt.scanValueSpec(pkg, vs)
				}
			}
		case *ast.RangeStmt:
			if o := tt.exprTaint(pkg, n.X); o != nil {
				tt.taintObj(assignTarget(pkg.Info, n.Key), o)
				tt.taintObj(assignTarget(pkg.Info, n.Value), o)
			}
		case *ast.ReturnStmt:
			if retOwner != nil {
				for _, r := range n.Results {
					if o := tt.exprTaint(pkg, r); o != nil {
						tt.taintRet(retOwner, o)
						break
					}
				}
				// Naked return with named tainted results.
				if len(n.Results) == 0 {
					if sig, ok := retOwner.Type().(*types.Signature); ok {
						for i := 0; i < sig.Results().Len(); i++ {
							if o := tt.objTaint[sig.Results().At(i)]; o != nil {
								tt.taintRet(retOwner, o)
								break
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			tt.scanCall(pkg, fn, n)
		}
		walkChildren(n, func(c ast.Node) { walk(c, retOwner) })
	}
	walkChildren(fd.Body, func(c ast.Node) { walk(c, fn) })
}

// walkChildren visits n's direct children (ast.Inspect-style but one
// level, so the walker controls descent into function literals).
func walkChildren(n ast.Node, visit func(ast.Node)) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		if c != nil {
			visit(c)
		}
		return false
	})
}

func (tt *Taint) scanAssign(pkg *Package, fn *types.Func, as *ast.AssignStmt) {
	if len(as.Lhs) == len(as.Rhs) {
		for i, rhs := range as.Rhs {
			if o := tt.exprTaint(pkg, rhs); o != nil {
				tt.taintObj(assignTarget(pkg.Info, as.Lhs[i]), o)
			}
		}
		return
	}
	// Tuple assignment (call, type assertion, map read): one RHS.
	if len(as.Rhs) == 1 {
		if o := tt.exprTaint(pkg, as.Rhs[0]); o != nil {
			for _, lhs := range as.Lhs {
				tt.taintObj(assignTarget(pkg.Info, lhs), o)
			}
		}
	}
}

func (tt *Taint) scanValueSpec(pkg *Package, vs *ast.ValueSpec) {
	if len(vs.Values) == 0 {
		return
	}
	if len(vs.Values) == len(vs.Names) {
		for i, v := range vs.Values {
			if o := tt.exprTaint(pkg, v); o != nil {
				tt.taintObj(pkg.Info.Defs[vs.Names[i]], o)
			}
		}
		return
	}
	if o := tt.exprTaint(pkg, vs.Values[0]); o != nil {
		for _, name := range vs.Names {
			tt.taintObj(pkg.Info.Defs[name], o)
		}
	}
}

// scanCall propagates argument taint into known callees and records
// sanitizer vouching.
func (tt *Taint) scanCall(pkg *Package, fn *types.Func, call *ast.CallExpr) {
	callee := CalleeFunc(pkg.Info, call)
	if callee == nil {
		return
	}
	if tt.spec.Sanitizer != nil && tt.spec.Sanitizer(callee) {
		for _, arg := range call.Args {
			tt.markSanitized(fn, rootObject(pkg.Info, arg))
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			tt.markSanitized(fn, rootObject(pkg.Info, sel.X))
		}
		return
	}
	// Resolve to module bodies (conservatively for interface calls).
	targets := tt.graph.resolveCall(pkg, call)
	for _, tgt := range targets {
		sig, ok := tgt.node.Fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		for i, arg := range call.Args {
			o := tt.exprTaint(pkg, arg)
			if o == nil {
				continue
			}
			// A value the caller already vetted enters the callee clean:
			// validation at the boundary covers everything downstream.
			if tt.sanitized[fn.Origin()][rootObject(pkg.Info, arg)] {
				continue
			}
			pi := i
			if sig.Variadic() && pi >= sig.Params().Len() {
				pi = sig.Params().Len() - 1
			}
			if pi >= 0 && pi < sig.Params().Len() {
				tt.taintObj(sig.Params().At(pi), o)
			}
		}
		// A tainted receiver taints the callee's receiver variable.
		if sig.Recv() != nil {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if o := tt.exprTaint(pkg, sel.X); o != nil {
					tt.taintObj(sig.Recv(), o)
				}
			}
		}
	}
}

// exprTaint evaluates the taint of an expression. Error-typed values
// never carry taint: an error is a failure signal, not remote payload
// (errdrop polices those), and because return taint is per-function —
// not per-result — a tainted `err` threaded through `return a, b, err`
// would otherwise poison every data result a function cleanly computed.
func (tt *Taint) exprTaint(pkg *Package, e ast.Expr) *Origin {
	if e != nil {
		if t := pkg.Info.TypeOf(e); t != nil && isErrorType(t) {
			return nil
		}
	}
	switch e := e.(type) {
	case nil:
		return nil
	case *ast.Ident:
		if obj := pkg.Info.Uses[e]; obj != nil {
			return tt.objTaint[obj]
		}
		return tt.objTaint[pkg.Info.Defs[e]]
	case *ast.SelectorExpr:
		// A designated source field read?
		if src := tt.fieldSourceOf(pkg, e); src != nil {
			return src
		}
		// The field object itself tainted (per-field, all instances)?
		if sel, ok := pkg.Info.Uses[e.Sel]; ok {
			if o := tt.objTaint[sel]; o != nil {
				return o
			}
		}
		// Deep taint: a field of a tainted value is tainted.
		return tt.exprTaint(pkg, e.X)
	case *ast.CallExpr:
		return tt.callTaint(pkg, e)
	case *ast.ParenExpr:
		return tt.exprTaint(pkg, e.X)
	case *ast.StarExpr:
		return tt.exprTaint(pkg, e.X)
	case *ast.UnaryExpr:
		return tt.exprTaint(pkg, e.X)
	case *ast.IndexExpr:
		if o := tt.exprTaint(pkg, e.X); o != nil {
			return o
		}
		return nil
	case *ast.SliceExpr:
		return tt.exprTaint(pkg, e.X)
	case *ast.TypeAssertExpr:
		// A type assertion checks shape, not content: taint survives.
		return tt.exprTaint(pkg, e.X)
	case *ast.BinaryExpr:
		if o := tt.exprTaint(pkg, e.X); o != nil {
			return o
		}
		return tt.exprTaint(pkg, e.Y)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if o := tt.exprTaint(pkg, el); o != nil {
				return o
			}
		}
		return nil
	}
	return nil
}

// callTaint evaluates the taint of a call's result.
func (tt *Taint) callTaint(pkg *Package, call *ast.CallExpr) *Origin {
	// Source call (e.g. Arena() of a possibly-remote cell)?
	if tt.spec.CallSource != nil {
		if desc, ok := tt.spec.CallSource(pkg, call); ok {
			return &Origin{Pos: call.Pos(), Desc: desc}
		}
	}
	callee := CalleeFunc(pkg.Info, call)
	if callee != nil && tt.spec.Sanitizer != nil && tt.spec.Sanitizer(callee) {
		return nil
	}
	// Type conversion T(x): taint of x.
	if len(call.Args) == 1 && callee == nil {
		if _, isType := pkg.Info.Types[call.Fun]; isType && pkg.Info.Types[call.Fun].IsType() {
			return tt.exprTaint(pkg, call.Args[0])
		}
	}
	// Known module callee(s): converged return taint.
	if callee != nil {
		targets := tt.graph.resolveCall(pkg, call)
		if len(targets) > 0 {
			for _, tgt := range targets {
				if o := tt.retTaint[tgt.node.Fn.Origin()]; o != nil {
					return o
				}
			}
			return nil
		}
	}
	// Unknown callee (stdlib, func value, interface with no module
	// implementation): taint passes through from any argument, and from
	// the receiver of a method call.
	for _, arg := range call.Args {
		if o := tt.exprTaint(pkg, arg); o != nil {
			return o
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if o := tt.exprTaint(pkg, sel.X); o != nil {
			return o
		}
	}
	return nil
}

// fieldSourceOf matches a selector against the designated source fields.
func (tt *Taint) fieldSourceOf(pkg *Package, sel *ast.SelectorExpr) *Origin {
	obj, ok := pkg.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() || obj.Pkg() == nil {
		return nil
	}
	for i := range tt.spec.FieldSources {
		fs := &tt.spec.FieldSources[i]
		if obj.Name() != fs.Field || obj.Pkg().Path() != fs.PkgPath {
			continue
		}
		if named := namedOwnerOf(pkg, sel); named == fs.Type {
			return &Origin{Pos: sel.Pos(), Desc: fs.Desc}
		}
	}
	return nil
}

// namedOwnerOf returns the named type of the selector's base (through
// pointers), "" when unknown.
func namedOwnerOf(pkg *Package, sel *ast.SelectorExpr) string {
	t := pkg.Info.TypeOf(sel.X)
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// assignTarget resolves the object an assignment writes: an identifier's
// variable, a selector's field object, or the base variable of an index/
// dereference (writing a[i] or *p taints the container).
func assignTarget(info *types.Info, lhs ast.Expr) types.Object {
	switch lhs := lhs.(type) {
	case nil:
		return nil
	case *ast.Ident:
		if lhs.Name == "_" {
			return nil
		}
		if obj := info.Defs[lhs]; obj != nil {
			return obj
		}
		return info.Uses[lhs]
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[lhs.Sel].(*types.Var); ok && obj.IsField() {
			return obj
		}
		return nil
	case *ast.IndexExpr:
		return assignTarget(info, lhs.X)
	case *ast.StarExpr:
		return assignTarget(info, lhs.X)
	case *ast.ParenExpr:
		return assignTarget(info, lhs.X)
	}
	return nil
}

// rootObject strips selectors, indexes, calls and dereferences down to
// the base identifier's object (nil when the expression has no stable
// root, e.g. a call result used inline).
func rootObject(info *types.Info, e ast.Expr) types.Object {
	if info == nil {
		return nil
	}
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.CallExpr:
			// A sanitized receiver roots method-call results:
			// validate(args) then args.Get() stays suppressed.
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				e = sel.X
				continue
			}
			return nil
		default:
			return nil
		}
	}
}
