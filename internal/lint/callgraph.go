package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds the module-wide call graph the interprocedural
// analyzers walk. It is purely go/types-based (stdlib only): nodes are
// the module's declared functions and methods, edges are resolved call
// sites. Static calls resolve exactly; calls through interface values
// resolve conservatively to every module method that implements the
// interface's method (sound over-approximation for module code — a
// dynamic call cannot reach a method the graph does not list, unless the
// callee lives outside the module, which the taint engine models
// separately as an unknown call).

// CGNode is one declared function or method in the module.
type CGNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl // nil for interface methods (no body)
	Pkg  *Package      // owning package (nil for interface methods)

	// Callees and Callers are deterministic: sorted by position of the
	// call site, then callee/caller path.
	Callees []*CGEdge
	Callers []*CGEdge
}

// CGEdge is one resolved call site.
type CGEdge struct {
	Caller *CGNode
	Callee *CGNode
	Site   *ast.CallExpr
	// Dynamic marks an edge added by conservative interface resolution:
	// the call may reach the callee, rather than provably reaching it.
	Dynamic bool
}

// CallGraph indexes the module's functions and their call edges.
type CallGraph struct {
	nodes map[*types.Func]*CGNode
	// funcOfLit maps each function literal to the declared function whose
	// body lexically contains it (closures are analyzed as part of their
	// enclosing function).
	funcOfLit map[*ast.FuncLit]*CGNode
	// methodsByName indexes module methods for interface resolution.
	methodsByName map[string][]*CGNode
}

// NodeOf returns the graph node for fn (nil when fn is not a module
// function).
func (g *CallGraph) NodeOf(fn *types.Func) *CGNode {
	if fn == nil {
		return nil
	}
	return g.nodes[fn.Origin()]
}

// Nodes returns every node sorted by (package path, position) so every
// downstream iteration is deterministic.
func (g *CallGraph) Nodes() []*CGNode {
	out := make([]*CGNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if pa, pb := pkgPathOf(a.Fn), pkgPathOf(b.Fn); pa != pb {
			return pa < pb
		}
		if a.Fn.Pos() != b.Fn.Pos() {
			return a.Fn.Pos() < b.Fn.Pos()
		}
		return a.Fn.FullName() < b.Fn.FullName()
	})
	return out
}

func pkgPathOf(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// Reachable returns the set of nodes reachable from the seeds (following
// callee edges, seeds included).
func (g *CallGraph) Reachable(seeds ...*CGNode) map[*CGNode]bool {
	seen := map[*CGNode]bool{}
	var walk func(n *CGNode)
	walk = func(n *CGNode) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		for _, e := range n.Callees {
			walk(e.Callee)
		}
	}
	for _, s := range seeds {
		walk(s)
	}
	return seen
}

// BuildCallGraph constructs the graph over the given packages. Every
// package must carry type info (Info != nil); syntax-only packages are
// skipped.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		nodes:         map[*types.Func]*CGNode{},
		funcOfLit:     map[*ast.FuncLit]*CGNode{},
		methodsByName: map[string][]*CGNode{},
	}
	// Pass 1: declare nodes for every FuncDecl.
	for _, pkg := range pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &CGNode{Fn: obj, Decl: fd, Pkg: pkg}
				g.nodes[obj] = n
				if fd.Recv != nil {
					g.methodsByName[fd.Name.Name] = append(g.methodsByName[fd.Name.Name], n)
				}
			}
		}
	}
	// Deterministic method buckets (package load order is sorted, but be
	// explicit: resolution appends edges in bucket order).
	names := make([]string, 0, len(g.methodsByName))
	for name := range g.methodsByName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := g.methodsByName[name]
		sort.SliceStable(b, func(i, j int) bool {
			if pa, pb := pkgPathOf(b[i].Fn), pkgPathOf(b[j].Fn); pa != pb {
				return pa < pb
			}
			return b[i].Fn.Pos() < b[j].Fn.Pos()
		})
	}
	// Pass 2: resolve call sites.
	for _, pkg := range pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller := g.NodeOf(pkg.Info.Defs[fd.Name].(*types.Func))
				if caller == nil {
					continue
				}
				g.indexBody(pkg, caller, fd.Body)
			}
		}
	}
	// Caller lists mirror callee lists; sort both by site position.
	// (Nodes() iterates deterministically; the per-node sorts are also
	// order-independent, but hivelint lints itself.)
	for _, n := range g.Nodes() {
		sort.SliceStable(n.Callees, func(i, j int) bool {
			return edgeLess(n.Callees[i], n.Callees[j])
		})
		sort.SliceStable(n.Callers, func(i, j int) bool {
			return edgeLess(n.Callers[i], n.Callers[j])
		})
	}
	return g
}

func edgeLess(a, b *CGEdge) bool {
	pa, pb := token.NoPos, token.NoPos
	if a.Site != nil {
		pa = a.Site.Pos()
	}
	if b.Site != nil {
		pb = b.Site.Pos()
	}
	if pa != pb {
		return pa < pb
	}
	return a.Callee.Fn.FullName() < b.Callee.Fn.FullName()
}

// indexBody records the call edges and closure ownership inside one
// function body.
func (g *CallGraph) indexBody(pkg *Package, caller *CGNode, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			g.funcOfLit[n] = caller
		case *ast.CallExpr:
			for _, callee := range g.resolveCall(pkg, n) {
				e := &CGEdge{Caller: caller, Callee: callee.node, Site: n, Dynamic: callee.dynamic}
				caller.Callees = append(caller.Callees, e)
				callee.node.Callers = append(callee.node.Callers, e)
			}
		}
		return true
	})
}

type resolved struct {
	node    *CGNode
	dynamic bool
}

// CalleeFunc resolves the static *types.Func a call invokes, whether or
// not it is a module function. Returns nil for calls through plain
// function values, built-ins, and type conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// resolveCall maps one call expression to the module functions it may
// invoke.
func (g *CallGraph) resolveCall(pkg *Package, call *ast.CallExpr) []resolved {
	fn := CalleeFunc(pkg.Info, call)
	if fn == nil {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			return g.resolveInterfaceCall(fn, sig)
		}
	}
	if n := g.NodeOf(fn); n != nil {
		return []resolved{{node: n}}
	}
	return nil
}

// resolveInterfaceCall returns every module method that may satisfy an
// interface method call: same name, receiver type implements the
// interface.
func (g *CallGraph) resolveInterfaceCall(fn *types.Func, sig *types.Signature) []resolved {
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []resolved
	for _, cand := range g.methodsByName[fn.Name()] {
		recv := cand.Fn.Type().(*types.Signature).Recv()
		if recv == nil {
			continue
		}
		if types.Implements(recv.Type(), iface) {
			out = append(out, resolved{node: cand, dynamic: true})
			continue
		}
		// A value receiver also serves pointer values; check the pointer
		// type when the receiver itself does not implement.
		if _, isPtr := recv.Type().(*types.Pointer); !isPtr {
			if types.Implements(types.NewPointer(recv.Type()), iface) {
				out = append(out, resolved{node: cand, dynamic: true})
			}
		}
	}
	return out
}

// EnclosingFunc returns the declared function whose body contains the
// given function literal (closures belong to their enclosing function).
func (g *CallGraph) EnclosingFunc(lit *ast.FuncLit) *CGNode { return g.funcOfLit[lit] }
