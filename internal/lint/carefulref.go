package lint

import (
	"go/ast"
	"go/types"
)

// carefulref: the §3.3 careful-reference discipline, machine-checked.
// Hive cells read each other's exported memory, and a remote read can
// return garbage (bus error, stale parity, a dying cell's scribbles) at
// any moment — so the paper routes every such read through the careful
// reference protocol: bounded-time access, tag re-check, no kernel state
// changed until the value is vetted. In this module the protocol lives in
// internal/careful (Reader/Ctx); the raw substrate is kmem: Space.Arena(c)
// hands out cell c's arena, and Space.ReadWord/TagAt dereference an
// arbitrary cell's address directly.
//
// The rule: outside the CarefulAllow packages (careful itself, kmem), no
// code may (a) call Space.ReadWord/TagAt — those take an Addr that can
// point into any cell — or (b) touch an arena obtained as
// Space.Arena(expr) where expr is not self-evidently the cell's own ID.
// The taint engine tracks arenas from the Arena() call through variables,
// helper returns and parameters to the ReadWord/WriteWord/TagAt/Free
// sites, so a helper like cow's `func (mg *Manager) arena() *kmem.Arena {
// return mg.Space.Arena(mg.CellID) }` is recognised as local and stays
// clean, while an arena threaded through three calls from a remote cell
// ID still gets flagged at the dereference.
var carefulrefAnalyzer = &Analyzer{
	Name:      "carefulref",
	Doc:       "reads of another cell's kmem arena must go through careful.Reader/Ctx (§3.3 careful references); raw Space.ReadWord/TagAt and remote Space.Arena(c) dereferences are flagged outside internal/careful",
	RunModule: runCarefulref,
}

// carefulArenaSinks are the *kmem.Arena methods that dereference or
// mutate arena memory. CorruptWord and EachTagged are deliberately
// absent: CorruptWord is the fault-injection API (it exists to simulate
// hardware scribbling), and EachTagged is the audit walk, which runs on
// the local arena by construction.
var carefulArenaSinks = map[string]bool{
	"ReadWord": true, "WriteWord": true, "TagAt": true, "Free": true,
}

func runCarefulref(mp *ModulePass) {
	tt := NewTaint(mp.Pkgs, mp.Graph(), &TaintSpec{
		CallSource: arenaOfPossiblyRemoteCell,
	})
	for _, pkg := range mp.Pkgs {
		if pkg.Info == nil || !mp.Cfg.ModelPackage(pkg.Path) || mp.Cfg.CarefulAllow[pkg.Path] {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				recv := pkg.Info.TypeOf(sel.X)
				switch {
				case isKmemType(recv, "Space") && (sel.Sel.Name == "ReadWord" || sel.Sel.Name == "TagAt"):
					mp.Reportf(call.Pos(), "Space.%s dereferences an arbitrary cell's memory raw; remote reads must go through careful.Reader/Ctx (§3.3)", sel.Sel.Name)
				case isKmemType(recv, "Arena") && carefulArenaSinks[sel.Sel.Name]:
					if o := tt.TaintOf(pkg, sel.X); o != nil {
						mp.Reportf(call.Pos(), "Arena.%s on %s; another cell's memory must be read through careful.Reader/Ctx (§3.3)", sel.Sel.Name, o.Desc)
					}
				}
				return true
			})
		}
	}
}

// arenaOfPossiblyRemoteCell marks Space.Arena(expr) results tainted
// unless expr names the caller's own cell ID (an identifier or selector
// ending in CellID/cellID/self — the module-wide spelling of "my cell").
func arenaOfPossiblyRemoteCell(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Arena" || len(call.Args) != 1 {
		return "", false
	}
	fn := CalleeFunc(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "repro/internal/kmem" {
		return "", false
	}
	if isSelfCellExpr(call.Args[0]) {
		return "", false
	}
	return "a possibly-remote cell's arena (Space.Arena whose argument is not the local cell ID)", true
}

// isSelfCellExpr reports whether e syntactically names the local cell:
// a bare or selected identifier spelled CellID, cellID or self.
func isSelfCellExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return selfCellName(e.Name)
	case *ast.SelectorExpr:
		return selfCellName(e.Sel.Name)
	}
	return false
}

func selfCellName(name string) bool {
	return name == "CellID" || name == "cellID" || name == "self"
}

// isKmemType reports whether t is kmem.<name> or *kmem.<name>.
func isKmemType(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "repro/internal/kmem"
}
