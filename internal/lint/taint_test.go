package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"testing"
)

// taintLab loads the taintlab fixture and converges a taint analysis
// with Wire.Payload as the source field and the module's standard
// sanitizer naming convention.
func taintLab(t *testing.T) (*Package, *CallGraph, *Taint) {
	t.Helper()
	pkg := loadFixture(t, "taintlab", "repro/internal/taintlab", true)
	g := BuildCallGraph([]*Package{pkg})
	tt := NewTaint([]*Package{pkg}, g, &TaintSpec{
		FieldSources: []FieldSource{{
			PkgPath: "repro/internal/taintlab", Type: "Wire", Field: "Payload",
			Desc: "a wire payload",
		}},
		Sanitizer: isSanitizerFunc,
	})
	return pkg, g, tt
}

// fnNamed finds a fixture function or method by its declared name.
func fnNamed(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					return fn
				}
			}
		}
	}
	t.Fatalf("fixture function %s not found", name)
	return nil
}

// TestTaintPropagation probes the converged return taint of each fixture
// function: field writes taint the field across instances, interface
// calls reach every implementor, variadic args clamp to the last
// parameter, closures flow in the enclosing scope, sanitizer results are
// clean, and error-typed values never carry taint.
func TestTaintPropagation(t *testing.T) {
	pkg, _, tt := taintLab(t)
	cases := []struct {
		fn      string
		tainted bool
	}{
		{"fieldWrite", true},      // b1.data write taints reads of b2.data
		{"readBack", true},        // via the interface call into realStore.Put
		{"gather", true},          // variadic param tainted by excess arg
		{"throughVariadic", true}, // and the call result carries it back
		{"throughClosure", true},  // capture write flows in enclosing scope
		{"guarded", true},         // the variable stays tainted; only the guard vouches
		{"cleaned", false},        // sanitizer results are clean
		{"validateWire", false},   // sanitizer bodies are not scanned
		{"errExempt", false},      // error-typed returns are exempt
		{"cleanConst", false},
	}
	for _, tc := range cases {
		got := tt.ResultTainted(fnNamed(t, pkg, tc.fn))
		if (got != nil) != tc.tainted {
			t.Errorf("ResultTainted(%s) = %v, want tainted=%v", tc.fn, got, tc.tainted)
		}
	}
}

// TestTaintObjectProbes checks the object-level state directly: the
// interface implementor's parameter and the written struct field are
// tainted; an untouched function's parameter is not.
func TestTaintObjectProbes(t *testing.T) {
	pkg, _, tt := taintLab(t)

	put := fnNamed(t, pkg, "Put")
	v := put.Type().(*types.Signature).Params().At(0)
	if tt.ObjectTainted(v) == nil {
		t.Errorf("realStore.Put's parameter should be tainted through the interface call")
	}

	var dataField types.Object
	for id, obj := range pkg.Info.Defs {
		if fv, ok := obj.(*types.Var); ok && fv.IsField() && id.Name == "data" {
			dataField = obj
		}
	}
	if dataField == nil {
		t.Fatal("box.data field object not found")
	}
	if tt.ObjectTainted(dataField) == nil {
		t.Errorf("box.data should be tainted by the field write in fieldWrite")
	}

	clean := fnNamed(t, pkg, "verifyPayload")
	cp := clean.Type().(*types.Signature).Params().At(0)
	if o := tt.ObjectTainted(cp); o != nil {
		t.Errorf("sanitizer parameter tainted (%v); sanitizer calls must not propagate into the callee", o)
	}
}

// TestTaintSanitizedIn proves guard-style vouching: after
// verifyPayload(p), p is sanitized within guarded even though the object
// itself remains tainted module-wide.
func TestTaintSanitizedIn(t *testing.T) {
	pkg, _, tt := taintLab(t)
	guarded := fnNamed(t, pkg, "guarded")

	var pIdent *ast.Ident
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				return true
			}
			if id, ok := ret.Results[0].(*ast.Ident); ok && id.Name == "p" {
				pIdent = id
			}
			return true
		})
	}
	if pIdent == nil {
		t.Fatal("return p not found in guarded")
	}
	if !tt.SanitizedIn(guarded, pIdent) {
		t.Errorf("p should be sanitized in guarded after verifyPayload(p)")
	}
	if tt.ObjectTainted(pkg.Info.Uses[pIdent]) == nil {
		t.Errorf("p should still be object-tainted; the guard vouches per function, it does not launder the object")
	}
}

// TestCallGraph checks the builder: static edges, conservative interface
// edges, mirrored caller lists, closure ownership and reachability.
func TestCallGraph(t *testing.T) {
	pkg, g, _ := taintLab(t)

	gather := g.NodeOf(fnNamed(t, pkg, "gather"))
	if gather == nil || gather.Decl == nil || gather.Pkg != pkg {
		t.Fatal("gather has no complete graph node")
	}

	tv := g.NodeOf(fnNamed(t, pkg, "throughVariadic"))
	foundStatic := false
	for _, e := range tv.Callees {
		if e.Callee == gather {
			foundStatic = true
			if e.Dynamic {
				t.Errorf("throughVariadic → gather should be a static edge")
			}
		}
	}
	if !foundStatic {
		t.Errorf("missing static edge throughVariadic → gather")
	}

	ti := g.NodeOf(fnNamed(t, pkg, "throughIface"))
	put := g.NodeOf(fnNamed(t, pkg, "Put"))
	foundDyn := false
	for _, e := range ti.Callees {
		if e.Callee == put {
			foundDyn = true
			if !e.Dynamic {
				t.Errorf("throughIface → realStore.Put should be marked Dynamic")
			}
		}
	}
	if !foundDyn {
		t.Errorf("missing interface edge throughIface → realStore.Put")
	}

	mirrored := false
	for _, e := range gather.Callers {
		if e.Caller == tv {
			mirrored = true
		}
	}
	if !mirrored {
		t.Errorf("gather's caller list does not mirror throughVariadic's callee edge")
	}

	tc := g.NodeOf(fnNamed(t, pkg, "throughClosure"))
	var lit *ast.FuncLit
	ast.Inspect(tc.Decl, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && lit == nil {
			lit = fl
		}
		return true
	})
	if lit == nil {
		t.Fatal("no closure literal in throughClosure")
	}
	if g.EnclosingFunc(lit) != tc {
		t.Errorf("closure in throughClosure not owned by its enclosing function")
	}

	if !g.Reachable(ti)[put] {
		t.Errorf("realStore.Put should be reachable from throughIface")
	}
}

// TestCallGraphDeterministic builds the graph twice and demands the same
// node and edge order: the interprocedural analyzers iterate it, so any
// map-order leak here becomes nondeterministic diagnostics.
func TestCallGraphDeterministic(t *testing.T) {
	pkg := loadFixture(t, "taintlab", "repro/internal/taintlab", true)
	shape := func() []string {
		var out []string
		for _, n := range BuildCallGraph([]*Package{pkg}).Nodes() {
			line := n.Fn.FullName() + " →"
			for _, e := range n.Callees {
				line += " " + e.Callee.Fn.FullName()
			}
			out = append(out, line)
		}
		return out
	}
	a, b := shape(), shape()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("call graph order differs between identical builds:\n%v\n%v", a, b)
	}
}
