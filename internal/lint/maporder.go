package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// maporder: Go randomizes map iteration order per run, so any `range`
// over a map whose order can escape — into an appended slice, an
// emitted line, a float accumulation, an RPC issue order — makes two
// runs of the same seed diverge. PR 1 already had to fix exactly this
// in hivebench's Table 7.2 footer.
//
// The analyzer flags every range-over-map in model code except two
// provably safe shapes:
//
//  1. An order-insensitive body: statements restricted to commutative
//     updates (integer += / ++, set-style writes m[k]=v, delete),
//     conditionals over them, and constant-result early returns
//     (membership tests). Calls are conservatively treated as escapes
//     except len/cap/min/max and type conversions; float accumulation
//     is an escape because float addition does not commute.
//
//  2. The collect-then-sort idiom: the body only appends to a slice
//     that a later statement of the same block passes to sort.* /
//     slices.* — the canonical "keys, then sort, then iterate" shape.
//
// Anything else needs either a rewrite via sorted keys or an explicit
// //hive:lint-ignore maporder <reason>.
var maporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "no map iteration whose order can escape; sort keys first or prove the body commutative",
	Run:  runMaporder,
}

func runMaporder(p *Pass) {
	if !p.Cfg.ModelPackage(p.Pkg.Path) || p.Pkg.Info == nil {
		return
	}
	for _, file := range p.Pkg.Files {
		// Walk statement lists so a range statement can see its
		// following siblings (for the collect-then-sort idiom).
		ast.Inspect(file, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, st := range list {
				rs, ok := st.(*ast.RangeStmt)
				if !ok || !p.isMapType(rs.X) {
					continue
				}
				if p.orderInsensitiveBody(rs.Body.List) {
					continue
				}
				if p.collectThenSort(file, rs, list[i+1:]) {
					continue
				}
				p.Reportf(rs.Pos(), "map iteration order escapes here; sort the keys first (or make the body commutative, or annotate //hive:lint-ignore maporder <reason>)")
			}
			return true
		})
	}
}

// isMapType reports whether e is statically a map.
func (p *Pass) isMapType(e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// ---------------------------------------------------------------------
// Shape 1: order-insensitive bodies
// ---------------------------------------------------------------------

// orderInsensitiveBody reports whether executing stmts once per map
// entry yields the same final state for every visit order.
func (p *Pass) orderInsensitiveBody(stmts []ast.Stmt) bool {
	for _, st := range stmts {
		if !p.orderInsensitiveStmt(st) {
			return false
		}
	}
	return true
}

func (p *Pass) orderInsensitiveStmt(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.AssignStmt:
		return p.orderInsensitiveAssign(st)
	case *ast.IncDecStmt:
		return p.pureExpr(st.X)
	case *ast.ExprStmt:
		// Only delete(m, k) — any other call could emit in map order.
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" && p.isBuiltin(id) {
				return p.pureExprs(call.Args)
			}
		}
		return false
	case *ast.IfStmt:
		if st.Init != nil && !p.orderInsensitiveStmt(st.Init) {
			return false
		}
		if !p.pureExpr(st.Cond) {
			return false
		}
		if !p.orderInsensitiveBody(st.Body.List) {
			return false
		}
		if st.Else != nil {
			return p.orderInsensitiveStmt(st.Else)
		}
		return true
	case *ast.BlockStmt:
		return p.orderInsensitiveBody(st.List)
	case *ast.RangeStmt:
		// A nested range over a *slice/array* is fine if its body is;
		// a nested map range inherits the outer nondeterminism (and is
		// additionally checked on its own).
		if p.isMapType(st.X) {
			return false
		}
		return p.pureExpr(st.X) && p.orderInsensitiveBody(st.Body.List)
	case *ast.ForStmt:
		if st.Init != nil && !p.orderInsensitiveStmt(st.Init) {
			return false
		}
		if st.Cond != nil && !p.pureExpr(st.Cond) {
			return false
		}
		if st.Post != nil && !p.orderInsensitiveStmt(st.Post) {
			return false
		}
		return p.orderInsensitiveBody(st.Body.List)
	case *ast.BranchStmt:
		// continue just skips an entry; break makes "which entries ran"
		// order-dependent.
		return st.Tok == token.CONTINUE
	case *ast.ReturnStmt:
		// Returning a constant (membership tests: `if ok { return true }`)
		// gives the same answer for every visit order. Returning a key
		// or value picks an arbitrary entry.
		for _, r := range st.Results {
			if !p.constantExpr(r) {
				return false
			}
		}
		return true
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || !p.pureExprs(vs.Values) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// orderInsensitiveAssign accepts commutative updates and set-style
// writes; everything else (notably plain `x = v`, float accumulation,
// and append) is treated as an order escape.
func (p *Pass) orderInsensitiveAssign(st *ast.AssignStmt) bool {
	switch st.Tok {
	case token.DEFINE:
		// Fresh per-iteration locals are fine as long as the
		// initializers cannot emit.
		return p.pureExprs(st.Rhs)
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		// Commutative only over integers: float addition is not
		// associative, so accumulation order changes the sum.
		for _, lhs := range st.Lhs {
			if p.isFloat(lhs) {
				return false
			}
		}
		return p.pureExprs(st.Lhs) && p.pureExprs(st.Rhs)
	case token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return p.pureExprs(st.Lhs) && p.pureExprs(st.Rhs)
	case token.ASSIGN:
		// Two idempotent shapes are safe. m[k] = v is a set-style
		// write: each entry lands in its own slot regardless of visit
		// order. x = <constant> (flag setting, `if failed[c] { doomed
		// = true }`) converges to the same value no matter which entry
		// triggers it first.
		constRhs := true
		for _, rhs := range st.Rhs {
			if !p.constantExpr(rhs) {
				constRhs = false
			}
		}
		for _, lhs := range st.Lhs {
			switch lhs.(type) {
			case *ast.IndexExpr:
			case *ast.Ident:
				if !constRhs {
					return false
				}
			default:
				return false
			}
		}
		return p.pureExprs(st.Lhs) && p.pureExprs(st.Rhs)
	default:
		return false
	}
}

// pureExpr conservatively accepts expressions that cannot observe or
// leak iteration order: operands, field/index reads, arithmetic, plus
// len/cap/min/max and type conversions. Any other call is an escape.
func (p *Pass) pureExpr(e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && p.isBuiltin(id) {
			switch id.Name {
			case "len", "cap", "min", "max":
				return true
			}
		}
		if tv, ok := p.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion
		}
		pure = false
		return false
	})
	return pure
}

func (p *Pass) pureExprs(es []ast.Expr) bool {
	for _, e := range es {
		if !p.pureExpr(e) {
			return false
		}
	}
	return true
}

// isFloat reports whether e's static type has a float kind.
func (p *Pass) isFloat(e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// constantExpr accepts literals and the predeclared true/false/nil.
func (p *Pass) constantExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		switch e.Name {
		case "true", "false", "nil":
			return p.isBuiltin(e)
		}
	}
	return false
}

// isBuiltin reports whether id resolves to a universe-scope object (or
// is unresolvable, in which case we trust the spelling).
func (p *Pass) isBuiltin(id *ast.Ident) bool {
	if p.Pkg.Info == nil {
		return true
	}
	obj := p.Pkg.Info.Uses[id]
	if obj == nil {
		return true
	}
	return obj.Parent() == types.Universe
}

// ---------------------------------------------------------------------
// Shape 2: collect-then-sort
// ---------------------------------------------------------------------

// collectThenSort recognizes
//
//	for k := range m { keys = append(keys, k) }   // possibly if-guarded
//	sort.Xxx(keys) / slices.Xxx(keys, ...)
//
// where the sort call appears among the following statements of the
// same block before any other use of keys. The appended set is order-
// independent; the sort then fixes the order (comparator adequacy is
// stablesort's department).
func (p *Pass) collectThenSort(file *ast.File, rs *ast.RangeStmt, following []ast.Stmt) bool {
	target := p.appendOnlyTarget(rs.Body.List, nil)
	if target == nil {
		return false
	}
	for _, st := range following {
		es, ok := st.(*ast.ExprStmt)
		if !ok {
			if usesIdent(st, target.Name) {
				return false
			}
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			if usesIdent(st, target.Name) {
				return false
			}
			continue
		}
		sel, selOK := call.Fun.(*ast.SelectorExpr)
		argID, argOK := call.Args[0].(*ast.Ident)
		if selOK && argOK && argID.Name == target.Name {
			if id, ok := sel.X.(*ast.Ident); ok {
				if ipath, ok := p.importedPackage(file, id); ok && (ipath == "sort" || ipath == "slices") {
					return true
				}
			}
		}
		if usesIdent(st, target.Name) {
			return false
		}
	}
	return false
}

// appendOnlyTarget returns the single identifier that every statement
// in stmts appends to (allowing if-guards with pure conditions), or nil.
func (p *Pass) appendOnlyTarget(stmts []ast.Stmt, target *ast.Ident) *ast.Ident {
	for _, st := range stmts {
		switch st := st.(type) {
		case *ast.AssignStmt:
			id := p.appendAssignTarget(st)
			if id == nil {
				return nil
			}
			if target == nil {
				target = id
			} else if target.Name != id.Name {
				return nil
			}
		case *ast.IfStmt:
			if st.Init != nil || !p.pureExpr(st.Cond) || st.Else != nil {
				return nil
			}
			target = p.appendOnlyTarget(st.Body.List, target)
			if target == nil {
				return nil
			}
		case *ast.BranchStmt:
			if st.Tok != token.CONTINUE {
				return nil
			}
		default:
			return nil
		}
	}
	return target
}

// appendAssignTarget matches `x = append(x, ...)` (or +=-free variants)
// and returns x.
func (p *Pass) appendAssignTarget(st *ast.AssignStmt) *ast.Ident {
	if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
		return nil
	}
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return nil
	}
	lhs, ok := st.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return nil
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || !p.isBuiltin(fn) {
		return nil
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || first.Name != lhs.Name {
		return nil
	}
	if !p.pureExprs(call.Args[1:]) {
		return nil
	}
	return lhs
}

// usesIdent reports whether node mentions name anywhere.
func usesIdent(node ast.Node, name string) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
			return false
		}
		return !found
	})
	return found
}
