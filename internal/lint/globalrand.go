package lint

import "go/ast"

// globalrand: the process-wide math/rand generator is shared mutable
// state. Two engines drawing from it interleave nondeterministically,
// and any library call that also touches it perturbs every later draw.
// All randomness must flow from an engine-seeded *rand.Rand, so a seed
// fully determines a run. Applies to the whole module, including cmd/:
// a report generator that shuffles via the global source is just as
// unreproducible.
var globalrandAnalyzer = &Analyzer{
	Name: "globalrand",
	Doc:  "no package-level math/rand functions; use an engine-seeded *rand.Rand",
	Run:  runGlobalrand,
}

// globalrandAllowed are the math/rand (and v2) names that construct or
// name generators rather than drawing from the global one.
var globalrandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
	"Rand":       true,
	"Source":     true,
	"Zipf":       true,
	"PCG":        true,
	"ChaCha8":    true,
}

func runGlobalrand(p *Pass) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || globalrandAllowed[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			ipath, ok := p.importedPackage(file, id)
			if !ok || (ipath != "math/rand" && ipath != "math/rand/v2") {
				return true
			}
			p.Reportf(sel.Pos(), "rand.%s draws from the process-global generator; thread an engine-seeded *rand.Rand instead", sel.Sel.Name)
			return true
		})
	}
}
