package lint

import "go/ast"

// walltime: model code must run on sim virtual time only. A single
// time.Now in a latency calculation silently couples results to the
// host machine; time.Sleep couples them to the Go scheduler. cmd/
// binaries report wall-clock throughput and are out of scope;
// internal/parallel times its OS-level worker pool by design and is
// allowlisted in Config.WalltimeAllow.
var walltimeAnalyzer = &Analyzer{
	Name: "walltime",
	Doc:  "no time.Now/Since/Sleep/timers in model packages; virtual time only",
	Run:  runWalltime,
}

// walltimeBanned is the wall-clock surface of package time. Pure
// value/format helpers (time.Duration, time.Unix, constants) stay legal:
// the model uses time.Duration for virtual durations.
var walltimeBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runWalltime(p *Pass) {
	if !p.Cfg.ModelPackage(p.Pkg.Path) || p.Cfg.WalltimeAllow[p.Pkg.Path] {
		return
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !walltimeBanned[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if ipath, ok := p.importedPackage(file, id); ok && ipath == "time" {
				p.Reportf(sel.Pos(), "time.%s is wall-clock; model code must use sim virtual time (Engine.Now / Task.Sleep)", sel.Sel.Name)
			}
			return true
		})
	}
}
