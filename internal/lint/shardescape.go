package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// shardescape: the semantic upgrade of shardcross. The sharded engine's
// determinism rests on closures crossing shards carrying *values*, not
// references into the sending shard's mutable state:
//
//   - Engine.Send(dst, d, fn) is asynchronous: the sender keeps running
//     while fn waits in the mailbox, so fn may neither WRITE a captured
//     variable of the sending function (the write lands in the sender's
//     shard from the receiver's goroutine — a data race and a
//     merge-order dependence) nor READ a captured variable the sender
//     still mutates (the value read depends on how far the sender got —
//     exactly the scheduling dependence the stamped mailbox exists to
//     remove). Reads of variables assigned once at declaration are fine:
//     they are immutable snapshots.
//   - Engine.SendGlobal(fn) runs fn in the global phase with every shard
//     quiescent, so reads are safe — but writes to captured shard-local
//     variables still race with nothing flushing them back
//     deterministically, so writes are flagged.
//   - Engine.Global(t, fn) parks the calling task until fn has run: the
//     handoff is synchronous and the shards are quiescent, so capturing
//     by reference — including writing results back through captured
//     variables — is the sanctioned pattern (careful.Ctx and wax do
//     exactly this). Global closures are exempt.
//
// The check is interprocedural: a function that takes a func() parameter
// and forwards it into a Send position (machine's sendWire) imposes
// Send's policy on closure literals at its own call sites, closed
// transitively over the call graph.
//
// Caveats (DESIGN.md): only function literals are analyzed (a closure
// built elsewhere and passed through a variable is not traced), and
// capture is judged at variable granularity — a write through a captured
// pointer (c.failed = true) is a *read* of c here. Both are precision
// losses on the quiet side; the analyzer is a tripwire for the common
// shapes, not a proof.
var shardescapeAnalyzer = &Analyzer{
	Name:      "shardescape",
	Doc:       "closures crossing shards via Engine.Send must not capture shard-local mutable state by reference (no writes; no reads of still-mutated variables); SendGlobal closures must not write captures; Global is the sanctioned synchronous handoff",
	RunModule: runShardescape,
}

// escapePolicy is the restriction a crossing position imposes.
type escapePolicy int

const (
	escapeNone       escapePolicy = iota // Global: exempt
	escapeNoWrite                        // SendGlobal: reads fine, writes flagged
	escapeNoWriteOrMutableRead
)

func sendPolicy(method string) (escapePolicy, bool) {
	switch method {
	case "Send":
		return escapeNoWriteOrMutableRead, true
	case "SendGlobal":
		return escapeNoWrite, true
	case "Global":
		return escapeNone, true
	}
	return escapeNone, false
}

func runShardescape(mp *ModulePass) {
	g := mp.Graph()
	forwarders := escapeForwarders(mp, g)
	for _, pkg := range mp.Pkgs {
		if pkg.Info == nil || !mp.Cfg.ModelPackage(pkg.Path) || mp.Cfg.ShardcrossAllow[pkg.Path] {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					for i, arg := range call.Args {
						lit, ok := arg.(*ast.FuncLit)
						if !ok {
							continue
						}
						pol, method := crossingPolicy(pkg, call, i, forwarders)
						if pol > escapeNone {
							checkEscape(mp, pkg, fd, lit, pol, method)
						}
					}
					return true
				})
			}
		}
	}
}

// crossingPolicy decides whether argument i of call is a cross-shard
// closure position, via a direct Engine method or a recorded forwarder.
func crossingPolicy(pkg *Package, call *ast.CallExpr, i int, forwarders map[*types.Func]map[int]escapePolicy) (escapePolicy, string) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isSimEngine(pkg.Info.TypeOf(sel.X)) {
		if pol, ok := sendPolicy(sel.Sel.Name); ok {
			return pol, "Engine." + sel.Sel.Name
		}
	}
	if fn := CalleeFunc(pkg.Info, call); fn != nil {
		if pol, ok := forwarders[fn.Origin()][i]; ok {
			return pol, fn.Name()
		}
	}
	return escapeNone, ""
}

// escapeForwarders finds (function, parameter index) pairs whose func()
// parameter flows into a Send/SendGlobal closure position, transitively.
func escapeForwarders(mp *ModulePass, g *CallGraph) map[*types.Func]map[int]escapePolicy {
	fw := map[*types.Func]map[int]escapePolicy{}
	record := func(fn *types.Func, idx int, pol escapePolicy) bool {
		m := fw[fn]
		if m == nil {
			m = map[int]escapePolicy{}
			fw[fn] = m
		}
		if pol > m[idx] {
			m[idx] = pol
			return true
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for _, node := range g.Nodes() {
			if node.Decl == nil || node.Decl.Body == nil || node.Pkg == nil {
				continue
			}
			sig := node.Fn.Type().(*types.Signature)
			paramIdx := map[types.Object]int{}
			for i := 0; i < sig.Params().Len(); i++ {
				p := sig.Params().At(i)
				if _, ok := p.Type().Underlying().(*types.Signature); ok {
					paramIdx[p] = i
				}
			}
			if len(paramIdx) == 0 {
				continue
			}
			pkg := node.Pkg
			ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for i, arg := range call.Args {
					id, ok := ast.Unparen(arg).(*ast.Ident)
					if !ok {
						continue
					}
					pi, isParam := paramIdx[pkg.Info.Uses[id]]
					if !isParam {
						continue
					}
					pol, _ := crossingPolicy(pkg, call, i, fw)
					if pol > escapeNone && record(node.Fn, pi, pol) {
						changed = true
					}
				}
				return true
			})
		}
	}
	return fw
}

// checkEscape analyzes one crossing closure under the given policy.
func checkEscape(mp *ModulePass, pkg *Package, fd *ast.FuncDecl, lit *ast.FuncLit, pol escapePolicy, method string) {
	captured := capturedVars(pkg, fd, lit)
	if len(captured) == 0 {
		return
	}
	writtenOutside := assignedOutsideDecl(pkg, fd, lit)
	// Deterministic report order: by variable position.
	sort.SliceStable(captured, func(i, j int) bool { return captured[i].Pos() < captured[j].Pos() })
	for _, v := range captured {
		wIn, rIn := usageInLit(pkg, lit, v)
		switch {
		case wIn:
			mp.Reportf(lit.Pos(), "closure passed to %s writes captured variable %s; a cross-shard closure must not mutate the sending shard's state (copy the value or use Engine.Global)", method, v.Name())
		case rIn && pol == escapeNoWriteOrMutableRead && writtenOutside[v]:
			mp.Reportf(lit.Pos(), "closure passed to %s reads captured variable %s, which the sender still mutates; the value seen depends on scheduling — snapshot it into a local before sending", method, v.Name())
		}
	}
}

// capturedVars lists function-scoped variables the literal uses but does
// not declare: objects declared inside fd (params, receiver, locals) but
// outside lit. Package-level variables are out of scope here.
func capturedVars(pkg *Package, fd *ast.FuncDecl, lit *ast.FuncLit) []*types.Var {
	seen := map[*types.Var]bool{}
	var out []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if !posWithin(v.Pos(), fd.Pos(), fd.End()) || posWithin(v.Pos(), lit.Pos(), lit.End()) {
			return true
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}

func posWithin(p, lo, hi token.Pos) bool { return p >= lo && p < hi }

// usageInLit classifies how the literal uses v: written (assignment
// target, ++/--, range assign) and/or read.
func usageInLit(pkg *Package, lit *ast.FuncLit, v *types.Var) (written, read bool) {
	targets := assignTargetIdents(lit.Body)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pkg.Info.Uses[id] != v {
			return true
		}
		if targets[id] {
			written = true
		} else {
			read = true
		}
		return true
	})
	return written, read
}

// assignedOutsideDecl finds captured-candidate variables the enclosing
// function mutates after declaration: plain `=` assignment targets,
// ++/--, or `for ... = range`. A variable only ever bound at its `:=` or
// parameter declaration is an immutable snapshot for capture purposes.
func assignedOutsideDecl(pkg *Package, fd *ast.FuncDecl, lit *ast.FuncLit) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	mark := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := pkg.Info.Uses[id].(*types.Var); ok && !v.IsField() {
				out[v] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == lit {
			return false // the literal's own writes are the write check's job
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				for _, lhs := range n.Lhs {
					mark(lhs)
				}
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				mark(n.Key)
				mark(n.Value)
			}
		}
		return true
	})
	return out
}

// assignTargetIdents collects identifiers appearing as assignment
// targets (any token: a `:=` inside the literal re-binding an outer name
// actually defines a fresh object, so Uses won't match it anyway).
func assignTargetIdents(body ast.Node) map[*ast.Ident]bool {
	out := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					out[id] = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				out[id] = true
			}
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				if id, ok := ast.Unparen(n.Key).(*ast.Ident); ok {
					out[id] = true
				}
				if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok {
					out[id] = true
				}
			}
		}
		return true
	})
	return out
}

// isSimEngine reports whether t is sim.Engine or *sim.Engine.
func isSimEngine(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Engine" && obj.Pkg() != nil &&
		obj.Pkg().Path() == "repro/internal/sim"
}
