package lint

import (
	"fmt"
	"sort"
	"strings"
)

// layering: DESIGN.md §2 splits the module into substrates (sim,
// machine, kmem, disk, rpc, careful, stats, trace, sched, parallel —
// the FLASH/SimOS replacements) and core packages (vm, fs, cow, proc,
// membership, core, wax, smpos, workload, faultinject — the paper's
// contribution). The import DAG must flow strictly downward: a
// substrate importing a core package is an inversion that calcifies
// fast and eventually makes the machine model depend on kernel policy.
// Config.Layers ranks every internal package; an import is legal only
// from a higher rank to a strictly lower one. Packages missing from the
// table are flagged so the table cannot silently rot.
var layeringAnalyzer = &Analyzer{
	Name: "layering",
	Doc:  "imports between internal packages must flow strictly down the DESIGN.md §2 layer ranks",
	Run:  runLayering,
}

func runLayering(p *Pass) {
	from, ok := p.Cfg.internalName(p.Pkg.Path)
	if !ok {
		return // cmd/, examples/ and the root package may import anything
	}
	fromRank, known := p.Cfg.Layers[from]
	if !known {
		for _, file := range p.Pkg.Files {
			p.Reportf(file.Package, "package %s is not in the layering table; add it to lint.DefaultConfig with a rank", p.Pkg.Path)
			break // one report per package is enough
		}
		return
	}
	for _, file := range p.Pkg.Files {
		for _, imp := range file.Imports {
			ipath := strings.Trim(imp.Path.Value, `"`)
			if ipath == p.Cfg.ModulePath {
				p.Reportf(imp.Pos(), "internal package %s imports the root package %s; the public API sits above every layer", from, ipath)
				continue
			}
			to, ok := p.Cfg.internalName(ipath)
			if !ok {
				continue
			}
			toRank, known := p.Cfg.Layers[to]
			if !known {
				p.Reportf(imp.Pos(), "imported package %s is not in the layering table; add it to lint.DefaultConfig with a rank", ipath)
				continue
			}
			if toRank >= fromRank {
				p.Reportf(imp.Pos(), "layering inversion: %s (%s, rank %d) must not import %s (%s, rank %d); the DESIGN.md §2 DAG flows strictly downward",
					from, layerKind(fromRank), fromRank, to, layerKind(toRank), toRank)
			}
		}
	}
}

// layerKind names the half of the DESIGN.md §2 inventory a rank belongs
// to: substrates are ranks 0-3, core packages 4 and above.
func layerKind(rank int) string {
	if rank <= 3 {
		return "substrate"
	}
	return "core"
}

// LayerTable renders the configured ranks, lowest first, for -list and
// the docs. Iteration is over sorted names so output is deterministic.
func LayerTable(cfg *Config) []string {
	names := make([]string, 0, len(cfg.Layers))
	for name := range cfg.Layers {
		names = append(names, name)
	}
	sort.Strings(names)
	sort.SliceStable(names, func(i, j int) bool { return cfg.Layers[names[i]] < cfg.Layers[names[j]] })
	var out []string
	for _, n := range names {
		out = append(out, fmt.Sprintf("rank %2d %-9s %s", cfg.Layers[n], layerKind(cfg.Layers[n]), n))
	}
	return out
}
