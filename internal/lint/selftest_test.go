package lint

import (
	"reflect"
	"testing"
)

// maxPragmas caps the module-wide //hive:lint-ignore budget. Exceptions
// must stay rare enough to review by hand; raising this number is a
// design decision, not a convenience. The current inventory (11): three
// shardcross (two boot-time wirings, one pre-run observability hook),
// two maporder pure counts, one carefulref (the fault injector plays
// the hardware), and five errdrop sites that are deliberate best-effort
// casts to possibly-dead peers (signal fan-out, membership alert, page
// release, firewall revocation, frame return) — the paper's own
// protocols make those sends advisory.
const maxPragmas = 12

// TestModuleLintClean lints the entire module inside `go test ./...`,
// making the tier-1 gate itself fail on any new determinism or layering
// hazard. It skips cleanly when the source tree is not available (for
// example when the package is tested from an install, not a checkout).
func TestModuleLintClean(t *testing.T) {
	root := moduleRootForTest(t)
	m, err := LoadModule(root, nil)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	res, err := m.Lint(nil)
	if err != nil {
		t.Fatalf("linting module: %v", err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("%s", d)
	}
	if len(res.Pragmas) > maxPragmas {
		t.Errorf("module carries %d //hive:lint-ignore pragmas; budget is %d — fix the code instead",
			len(res.Pragmas), maxPragmas)
	}
	for _, pr := range res.Pragmas {
		if pr.Reason == "" {
			// collectPragmas already rejects these; belt and braces.
			t.Errorf("%s:%d: pragma without reason", pr.File, pr.Line)
		}
		t.Logf("exception: %s:%d [%s] %s", pr.File, pr.Line, pr.Analyzer, pr.Reason)
	}
}

// TestLintOutputDeterministic runs the whole-module lint twice and
// demands identical results: the linter must hold itself to the
// standard it enforces (its own maps never leak iteration order).
func TestLintOutputDeterministic(t *testing.T) {
	root := moduleRootForTest(t)
	lintOnce := func() *Result {
		m, err := LoadModule(root, nil)
		if err != nil {
			t.Fatalf("loading module: %v", err)
		}
		res, err := m.Lint(nil)
		if err != nil {
			t.Fatalf("linting module: %v", err)
		}
		return res
	}
	a, b := lintOnce(), lintOnce()
	if !reflect.DeepEqual(a.Diagnostics, b.Diagnostics) {
		t.Errorf("diagnostics differ between identical runs:\n%v\n%v", a.Diagnostics, b.Diagnostics)
	}
	if !reflect.DeepEqual(a.Pragmas, b.Pragmas) {
		t.Errorf("pragma inventory differs between identical runs:\n%v\n%v", a.Pragmas, b.Pragmas)
	}
}
