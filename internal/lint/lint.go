// Package lint is hivelint: a determinism & layering static-analysis
// suite for this module, built purely on the standard library's
// go/parser, go/ast and go/types (the repo is stdlib-only, so there is
// no golang.org/x/tools dependency).
//
// DESIGN.md §1 claims every experiment is "fully deterministic (seeded
// PRNG, strictly ordered event queue)". That property used to be
// enforced only by convention; hivelint makes it machine-checked. Seven
// per-package analyzers police the hazards that break reproducibility or
// erode the layering the design depends on:
//
//	walltime    no wall-clock time in model code (virtual time only)
//	globalrand  no package-level math/rand (engine-seeded *rand.Rand only)
//	maporder    no map iteration whose order can escape into results
//	rawconc     no raw goroutines/channels/sync outside sim & parallel
//	stablesort  no unstable sorts whose tie order is Go-version-dependent
//	layering    the DESIGN.md §2 import DAG, substrates below core
//	shardcross  cross-shard work through the mailbox only, never a raw
//	            shard engine pulled from the cluster
//
// On top of those, an interprocedural layer (a module-wide call graph
// plus a conservative taint engine, see callgraph.go and taint.go)
// machine-checks the fault-containment disciplines the Hive paper states
// in prose:
//
//	carefulref   reads of another cell's arena go through careful.Reader
//	             (the §3.3 careful-reference protocol)
//	rpctaint     data from RPC requests / SIPS payloads is validated
//	             before it mutates kernel state (distrust other cells)
//	errdrop      RPC call errors (ErrTimeout/ErrShutdown) are never
//	             silently discarded — a dropped failure erodes containment
//	shardescape  closures crossing shards via Engine.Send/SendGlobal do
//	             not capture shard-local mutable state by reference
//
// The suite runs three ways: the cmd/hivelint CLI (with -json), the
// `make lint` target, and an in-tree self-test that lints the whole
// module inside `go test ./...` so the tier-1 gate fails on any new
// determinism hazard.
//
// Deliberate exceptions carry a pragma on the offending line (or the
// line above):
//
//	//hive:lint-ignore <analyzer> <reason>
//
// The reason is mandatory, and the self-test caps the module-wide
// pragma budget so exceptions stay rare and documented.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding, addressed by file position.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named check. Per-package analyzers set Run; the
// interprocedural analyzers set RunModule and see every loaded package at
// once, plus the call graph.
type Analyzer struct {
	Name string
	Doc  string // one-line rule, shown by `hivelint -list` and in docs
	Run  func(*Pass)
	// RunModule, when set, runs once over the whole loaded package set
	// (the module, or a fixture subset in tests) instead of per package.
	RunModule func(*ModulePass)
}

// Analyzers returns the full hivelint suite in a fixed order: the
// per-package syntactic checks first, then the interprocedural layer.
func Analyzers() []*Analyzer {
	return []*Analyzer{walltimeAnalyzer, globalrandAnalyzer, maporderAnalyzer,
		rawconcAnalyzer, stablesortAnalyzer, layeringAnalyzer, shardcrossAnalyzer,
		carefulrefAnalyzer, rpctaintAnalyzer, errdropAnalyzer, shardescapeAnalyzer}
}

// AnalyzerNames returns the suite's analyzer names sorted alphabetically
// (the order -list and -json present them in).
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

// Config carries the module-wide policy the analyzers enforce.
type Config struct {
	// ModulePath is the module's import path ("repro").
	ModulePath string
	// WalltimeAllow lists import paths exempt from the walltime check
	// (the parallel runner measures real elapsed time by design).
	WalltimeAllow map[string]bool
	// RawconcAllow lists import paths allowed to use goroutines,
	// channels and sync primitives directly.
	RawconcAllow map[string]bool
	// ShardcrossAllow lists import paths allowed to pull raw shard
	// engines out of a sim.Cluster (the sim package itself). The same
	// paths are exempt from shardescape: the mailbox implementation
	// necessarily handles crossing closures directly.
	ShardcrossAllow map[string]bool
	// CarefulAllow lists import paths allowed to read kmem arenas raw:
	// the careful package (it implements the protocol) and kmem itself.
	CarefulAllow map[string]bool
	// Layers ranks every internal package; imports must flow strictly
	// downward (see layering.go). Substrates are ranks 0-3, core 4+.
	Layers map[string]int
}

// DefaultConfig returns the policy for this module, mirroring the
// DESIGN.md §2 inventory.
func DefaultConfig() *Config {
	return &Config{
		ModulePath: "repro",
		WalltimeAllow: map[string]bool{
			"repro/internal/parallel": true, // wall-clock worker pool by design
		},
		RawconcAllow: map[string]bool{
			"repro/internal/sim":      true, // task switching is goroutine-based
			"repro/internal/parallel": true, // the OS-level worker pool
			"repro/internal/stats":    true, // lock-free counters shared across shard workers
		},
		ShardcrossAllow: map[string]bool{
			"repro/internal/sim": true, // implements the mailbox itself
		},
		CarefulAllow: map[string]bool{
			"repro/internal/careful": true, // implements the protocol
			"repro/internal/kmem":    true, // the arena itself
		},
		Layers: map[string]int{
			// Substrates (DESIGN.md §2 "built from scratch").
			"sim":      0,
			"kmem":     0,
			"lint":     0, // tooling; imports nothing from the model
			"benchcmp": 0, // tooling; stdlib-only report comparison
			"stats":    1,
			"trace":    1,
			"disk":     1,
			"forensic": 2, // pure consumer of the trace substrate
			"machine":  2,
			"rpc":      3,
			"careful":  3,
			"sched":    3,
			"parallel": 3,
			// Core (the paper's contribution) sits strictly above.
			"vm":          4,
			"membership":  4,
			"fs":          5,
			"cow":         5,
			"proc":        6,
			"core":        7,
			"smpos":       8,
			"wax":         8,
			"workload":    8,
			"faultinject": 9,
			"harness":     10,
		},
	}
}

// ModelPackage reports whether path is simulation-model code: the root
// package plus everything under internal/. cmd/ and examples/ are
// front-ends (wall-clock reporting is fine there) and are exempt from
// the model-only analyzers.
func (c *Config) ModelPackage(path string) bool {
	return path == c.ModulePath || strings.HasPrefix(path, c.ModulePath+"/internal/")
}

// internalName returns the bare package name under internal/ ("vm" for
// "repro/internal/vm") and whether path is an internal package.
func (c *Config) internalName(path string) (string, bool) {
	prefix := c.ModulePath + "/internal/"
	if !strings.HasPrefix(path, prefix) {
		return "", false
	}
	return strings.TrimPrefix(path, prefix), true
}

// Package is one parsed (and usually type-checked) package.
type Package struct {
	Path  string // import path; fixtures may load under a fake path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	// Info is the type-check result; nil when the package was loaded
	// syntax-only (the layering fixtures, which never need types).
	Info *types.Info

	pragmas []*pragma
}

// pragma is one //hive:lint-ignore comment.
type pragma struct {
	file     string
	line     int
	analyzer string
	reason   string
	used     bool
}

var pragmaRE = regexp.MustCompile(`^//hive:lint-ignore\s+([A-Za-z0-9_-]*)\s*(.*)$`)

// Pass is one analyzer's view of one package.
type Pass struct {
	Pkg   *Package
	Cfg   *Config
	an    *Analyzer
	diags *[]Diagnostic
}

// Reportf records a diagnostic unless an ignore pragma covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	for _, pr := range p.Pkg.pragmas {
		if pr.analyzer == p.an.Name && pr.file == position.Filename &&
			(pr.line == position.Line || pr.line == position.Line-1) {
			pr.used = true
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.an.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil when unknown (syntax-only
// loads, or expressions go/types could not resolve).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Pkg.Info == nil {
		return nil
	}
	return p.Pkg.Info.TypeOf(e)
}

// importedPackage resolves the package an identifier refers to, e.g. the
// "time" in time.Now. It prefers type information and falls back to the
// file's import table, so it works on syntax-only loads too.
func (p *Pass) importedPackage(file *ast.File, id *ast.Ident) (string, bool) {
	if p.Pkg.Info != nil {
		if obj, ok := p.Pkg.Info.Uses[id]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				return pn.Imported().Path(), true
			}
			return "", false // a variable/field shadowing a package name
		}
	}
	for _, imp := range file.Imports {
		ipath := strings.Trim(imp.Path.Value, `"`)
		name := path.Base(ipath)
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == id.Name {
			return ipath, true
		}
	}
	return "", false
}

// isCallTo reports whether call is pkgPath.fn, e.g. ("time", "Now").
func (p *Pass) isCallTo(file *ast.File, call *ast.CallExpr, pkgPath, fn string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fn {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	got, ok := p.importedPackage(file, id)
	return ok && got == pkgPath
}

// ---------------------------------------------------------------------
// Loading
// ---------------------------------------------------------------------

// moduleImporter type-checks module-internal packages from source and
// delegates the standard library to the stdlib source importer. Both
// share one FileSet so positions stay coherent. The cache persists for
// the life of the Module, so stdlib packages type-check once.
type moduleImporter struct {
	root   string // module root directory
	module string // module import path
	fset   *token.FileSet
	std    types.Importer
	cache  map[string]*types.Package
	built  map[string]*Package // module packages, with their Info
}

func newModuleImporter(root, module string, fset *token.FileSet) *moduleImporter {
	return &moduleImporter{
		root:   root,
		module: module,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		cache:  map[string]*types.Package{},
		built:  map[string]*Package{},
	}
}

func (m *moduleImporter) Import(ipath string) (*types.Package, error) {
	if ipath == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := m.cache[ipath]; ok {
		return p, nil
	}
	var p *types.Package
	var err error
	if ipath == m.module || strings.HasPrefix(ipath, m.module+"/") {
		dir := filepath.Join(m.root, filepath.FromSlash(strings.TrimPrefix(ipath, m.module)))
		_, p, err = m.buildModule(ipath, dir)
	} else {
		p, err = m.std.Import(ipath)
		if err == nil {
			m.cache[ipath] = p
		}
	}
	return p, err
}

// buildModule parses and type-checks one module directory as import
// path ipath, keeping the syntax and type info for the analyzers.
func (m *moduleImporter) buildModule(ipath, dir string) (*Package, *types.Package, error) {
	files, err := parseDir(m.fset, dir)
	if err != nil {
		return nil, nil, err
	}
	conf := types.Config{Importer: m}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	tpkg, err := conf.Check(ipath, m.fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %w", ipath, err)
	}
	pkg := &Package{Path: ipath, Dir: dir, Fset: m.fset, Files: files, Info: info}
	m.cache[ipath] = tpkg
	m.built[ipath] = pkg
	return pkg, tpkg, nil
}

// parseDir parses every non-test .go file in dir (with comments).
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go source in %s", dir)
	}
	return files, nil
}

// collectPragmas scans the files' comments for //hive:lint-ignore.
// Malformed pragmas (missing analyzer or reason, unknown analyzer) are
// reported as diagnostics of the "pragma" pseudo-analyzer: an exception
// without a written reason is itself a violation.
func collectPragmas(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) []*pragma {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	var out []*pragma
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				mm := pragmaRE.FindStringSubmatch(c.Text)
				if mm == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				name, reason := mm[1], strings.TrimSpace(mm[2])
				switch {
				case name == "" || !known[name]:
					*diags = append(*diags, Diagnostic{File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Analyzer: "pragma", Message: fmt.Sprintf("hive:lint-ignore names unknown analyzer %q", name)})
				case reason == "":
					*diags = append(*diags, Diagnostic{File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Analyzer: "pragma", Message: "hive:lint-ignore requires a reason after the analyzer name"})
				default:
					out = append(out, &pragma{file: pos.Filename, line: pos.Line, analyzer: name, reason: reason})
				}
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Module-level driver
// ---------------------------------------------------------------------

// Module is a loaded source tree ready to lint.
type Module struct {
	Root string
	Cfg  *Config
	Fset *token.FileSet

	imp *moduleImporter
}

// LoadModule opens the module rooted at dir (which must hold go.mod).
func LoadModule(root string, cfg *Config) (*Module, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		return nil, fmt.Errorf("%s is not a module root: %w", root, err)
	}
	fset := token.NewFileSet()
	return &Module{Root: root, Cfg: cfg, Fset: fset, imp: newModuleImporter(root, cfg.ModulePath, fset)}, nil
}

// PackageDirs walks the tree and returns every directory containing
// non-test Go source, skipping testdata and hidden directories. The
// result is sorted, so everything downstream is deterministic.
func (m *Module) PackageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(m.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != m.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// importPath maps a directory under the module root to its import path.
func (m *Module) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return m.Cfg.ModulePath, nil
	}
	return m.Cfg.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// LoadPackage parses and type-checks the package in dir under its real
// import path, reusing work done while resolving earlier imports.
func (m *Module) LoadPackage(dir string) (*Package, error) {
	ipath, err := m.importPath(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := m.imp.built[ipath]; ok {
		return pkg, nil
	}
	pkg, _, err := m.imp.buildModule(ipath, dir)
	return pkg, err
}

// Result is a whole-module lint run.
type Result struct {
	Diagnostics []Diagnostic
	// Pragmas is every well-formed ignore pragma found, whether or not
	// it fired; the self-test budgets these.
	Pragmas []PragmaUse
}

// PragmaUse describes one //hive:lint-ignore exception.
type PragmaUse struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
}

// Pragmas lists the package's well-formed ignore pragmas. It is only
// populated after RunAnalyzers (which scans the comments).
func (p *Package) Pragmas() []PragmaUse {
	var out []PragmaUse
	for _, pr := range p.pragmas {
		out = append(out, PragmaUse{File: pr.file, Line: pr.line, Analyzer: pr.analyzer, Reason: pr.reason})
	}
	return out
}

// Lint runs the given analyzers (nil = the full suite) over every
// package in the module: the per-package analyzers package by package,
// then the interprocedural analyzers once over the whole loaded set.
// When the full suite ran, every //hive:lint-ignore pragma that
// suppressed nothing is reported as an "unused-pragma" diagnostic — a
// stale exception is itself a violation. Diagnostics come back sorted by
// position.
func (m *Module) Lint(analyzers []*Analyzer) (*Result, error) {
	fullSuite := analyzers == nil
	if fullSuite {
		analyzers = Analyzers()
	}
	dirs, err := m.PackageDirs()
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := m.LoadPackage(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	res := &Result{}
	res.Diagnostics = LintPackages(pkgs, m.Cfg, analyzers, fullSuite)
	for _, pkg := range pkgs {
		res.Pragmas = append(res.Pragmas, pkg.Pragmas()...)
	}
	sortPragmas(res.Pragmas)
	return res, nil
}

// LintPackages runs the per-package and module-level analyzers over an
// explicit package set. With reportUnused set, pragmas that suppressed
// nothing are reported (only meaningful when the analyzer set is the
// full suite — a pragma for an analyzer that never ran is not stale).
func LintPackages(pkgs []*Package, cfg *Config, analyzers []*Analyzer, reportUnused bool) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		pkg.pragmas = collectPragmas(pkg.Fset, pkg.Files, &diags)
		for _, a := range analyzers {
			if a.Run != nil {
				a.Run(&Pass{Pkg: pkg, Cfg: cfg, an: a, diags: &diags})
			}
		}
	}
	mp := newModulePass(pkgs, cfg, &diags)
	for _, a := range analyzers {
		if a.RunModule != nil {
			mp.an = a
			a.RunModule(mp)
		}
	}
	if reportUnused {
		for _, pkg := range pkgs {
			for _, pr := range pkg.pragmas {
				if !pr.used {
					diags = append(diags, Diagnostic{
						File: pr.file, Line: pr.line, Col: 1,
						Analyzer: "unused-pragma",
						Message:  fmt.Sprintf("//hive:lint-ignore %s suppresses nothing; delete the stale pragma", pr.analyzer),
					})
				}
			}
		}
	}
	SortDiagnostics(diags)
	return diags
}

// RunAnalyzers applies analyzers to one loaded package and returns the
// diagnostics, including malformed-pragma reports. Module-level
// analyzers see just this package.
func RunAnalyzers(pkg *Package, cfg *Config, analyzers []*Analyzer) []Diagnostic {
	return LintPackages([]*Package{pkg}, cfg, analyzers, false)
}

// ModulePass is an interprocedural analyzer's view of the whole loaded
// package set: every package, the call graph over them, and shared
// access to diagnostics with pragma suppression.
type ModulePass struct {
	Pkgs []*Package
	Cfg  *Config

	an        *Analyzer
	diags     *[]Diagnostic
	pkgByFile map[string]*Package
	graph     *CallGraph
}

func newModulePass(pkgs []*Package, cfg *Config, diags *[]Diagnostic) *ModulePass {
	mp := &ModulePass{Pkgs: pkgs, Cfg: cfg, diags: diags, pkgByFile: map[string]*Package{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			mp.pkgByFile[pkg.Fset.Position(f.Pos()).Filename] = pkg
		}
	}
	return mp
}

// Graph returns the call graph over the pass's packages, built on first
// use and shared by all module analyzers.
func (mp *ModulePass) Graph() *CallGraph {
	if mp.graph == nil {
		mp.graph = BuildCallGraph(mp.Pkgs)
	}
	return mp.graph
}

// Fset returns the shared FileSet (every package in a pass shares one).
func (mp *ModulePass) Fset() *token.FileSet {
	if len(mp.Pkgs) > 0 {
		return mp.Pkgs[0].Fset
	}
	return nil
}

// Reportf records a diagnostic at pos unless an ignore pragma in the
// owning package covers the line.
func (mp *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	position := mp.Fset().Position(pos)
	if pkg := mp.pkgByFile[position.Filename]; pkg != nil {
		for _, pr := range pkg.pragmas {
			if pr.analyzer == mp.an.Name && pr.file == position.Filename &&
				(pr.line == position.Line || pr.line == position.Line-1) {
				pr.used = true
				return
			}
		}
	}
	*mp.diags = append(*mp.diags, Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: mp.an.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// sortPragmas orders pragma uses by file, line, analyzer so the CLI and
// self-test see them deterministically regardless of load order.
func sortPragmas(ps []PragmaUse) {
	sort.SliceStable(ps, func(i, j int) bool {
		a, b := ps[i], ps[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Analyzer < b.Analyzer
	})
}

// SortDiagnostics orders by file, line, column, analyzer, message.
func SortDiagnostics(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// FindModuleRoot walks up from dir looking for this module's go.mod.
// It returns "" when the source tree is not available (for example when
// tests run against an installed copy of the package).
func FindModuleRoot(dir string) string {
	for {
		gm := filepath.Join(dir, "go.mod")
		if data, err := os.ReadFile(gm); err == nil {
			if strings.Contains(string(data), "module repro") {
				return dir
			}
			return ""
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}
