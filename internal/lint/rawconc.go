package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// rawconc: model concurrency must be expressed as sim.Task virtual-time
// tasks, never as raw goroutines, channels or sync primitives. A stray
// `go` statement in model code races real scheduling against virtual
// time and destroys run-to-run reproducibility in a way no seed can
// fix. Only internal/sim (which implements virtual-time tasks on top of
// goroutines) and internal/parallel (the OS-level trial pool) may touch
// the raw machinery; they are allowlisted in Config.RawconcAllow.
var rawconcAnalyzer = &Analyzer{
	Name: "rawconc",
	Doc:  "no go statements, channels, select, or sync outside internal/sim and internal/parallel",
	Run:  runRawconc,
}

func runRawconc(p *Pass) {
	if p.Cfg.RawconcAllow[p.Pkg.Path] {
		return
	}
	for _, file := range p.Pkg.Files {
		for _, imp := range file.Imports {
			ipath := strings.Trim(imp.Path.Value, `"`)
			if ipath == "sync" || ipath == "sync/atomic" {
				p.Reportf(imp.Pos(), "import of %q: model code must use sim virtual-time sync (sim.Mutex, sim.Semaphore, Task blocking)", ipath)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.Reportf(n.Pos(), "go statement: model concurrency must be a sim.Task, not a raw goroutine")
			case *ast.SelectStmt:
				p.Reportf(n.Pos(), "select statement: channel scheduling is nondeterministic; use sim events")
			case *ast.SendStmt:
				p.Reportf(n.Pos(), "channel send: model code must not use channels; use sim events and virtual-time sync")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					p.Reportf(n.Pos(), "channel receive: model code must not use channels; use sim events and virtual-time sync")
				}
			case *ast.ChanType:
				p.Reportf(n.Pos(), "chan type: model code must not use channels; use sim events and virtual-time sync")
			}
			return true
		})
	}
}
