package lint

import (
	"go/ast"
	"go/types"
)

// shardcross: in the sharded engine every cross-shard interaction must go
// through the deterministic mailbox — Engine.Send, Engine.SendGlobal, or
// Engine.Global — which stamps crossings with (virtual time, source shard,
// per-edge sequence) so merge order never depends on OS scheduling. Pulling
// another shard's *sim.Engine out of the cluster with Cluster.Shard or
// Cluster.Global and scheduling on it directly bypasses the stamping and
// reintroduces exactly the nondeterminism (and data races) the mailbox
// exists to prevent. Model code therefore may not touch Cluster.Shard or
// Cluster.Global at all; the two legitimate uses — boot-time wiring in
// core.Boot before any worker runs, and observability hooks installed
// before the run starts — carry //hive:lint-ignore pragmas with reasons.
var shardcrossAnalyzer = &Analyzer{
	Name: "shardcross",
	Doc:  "no direct cross-shard engine access outside the mailbox (Engine.Send/SendGlobal/Global); Cluster.Shard and Cluster.Global are boot-wiring only",
	Run:  runShardcross,
}

// shardcrossBanned lists the *sim.Cluster methods that hand out raw shard
// engines.
var shardcrossBanned = map[string]bool{"Shard": true, "Global": true}

func runShardcross(p *Pass) {
	if !p.Cfg.ModelPackage(p.Pkg.Path) || p.Cfg.ShardcrossAllow[p.Pkg.Path] {
		return
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !shardcrossBanned[sel.Sel.Name] {
				return true
			}
			if isSimCluster(p.TypeOf(sel.X)) {
				p.Reportf(call.Pos(), "Cluster.%s hands out a raw shard engine, bypassing the deterministic mailbox; cross-shard work must go through Engine.Send/SendGlobal/Global (boot-time wiring may annotate //hive:lint-ignore shardcross <reason>)",
					sel.Sel.Name)
			}
			return true
		})
	}
}

// isSimCluster reports whether t is sim.Cluster or *sim.Cluster.
func isSimCluster(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Cluster" && obj.Pkg() != nil &&
		obj.Pkg().Path() == "repro/internal/sim"
}
