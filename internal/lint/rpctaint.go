package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// rpctaint: the paper's distrust-of-other-cells rule. A Hive cell
// "assumes other cells are faulty until proven otherwise": anything that
// arrives over the wire — RPC request arguments on the server side, RPC
// reply contents on the client side, raw SIPS payloads — may have been
// produced by a corrupt kernel, so it must be vetted before it is allowed
// to change kernel state. Otherwise a single wild value from a dying
// peer becomes a wild write in a healthy cell, which is exactly the
// fault propagation the architecture exists to stop.
//
// Sources are the two fields wire data enters through: rpc.Request.Args
// and machine.SIPSMsg.Payload (replies ride SIPS payloads too, so
// Endpoint.Call results are tainted transitively through the rpc
// package's own plumbing). Sinks are the irreversible kernel-state
// mutations: arena writes/frees (kmem), COW tree edits (cow) and page
// cache insertions (vm). Reads are deliberately not sinks — kmem reads
// are tag-checked and may return garbage by design; it is mutation that
// must be gated. Sanitizers are named validation functions
// (validate*/vet*/sanitize*/verify*, or *Checksum*): calling one on the
// data — or on the variable holding it, guard-style — clears the taint
// for that function.
var rpctaintAnalyzer = &Analyzer{
	Name:      "rpctaint",
	Doc:       "data from rpc.Request args or SIPS payloads must pass a validate*/vet*/verify*/checksum function before reaching kmem/cow/vm mutation sinks (distrust other cells)",
	RunModule: runRpctaint,
}

// rpctaintSinks maps (package path → type name → method set) for the
// kernel-state mutations remote data must not reach unvetted.
var rpctaintSinks = map[string]map[string]map[string]bool{
	"repro/internal/kmem": {
		"Arena": {"WriteWord": true, "Free": true},
	},
	"repro/internal/cow": {
		"Manager": {"Record": true, "Fork": true, "FreeNode": true},
	},
	// VM.Fault is deliberately NOT a sink: it is the generic page-fault
	// entry, validates through the resolver chain and returns errors on
	// garbage, and faulting a page a peer named is exactly how shared
	// memory is used. Import/InsertLocal bypass that gate and install
	// cache entries directly, so they must see vetted data.
	"repro/internal/vm": {
		"VM": {"Import": true, "InsertLocal": true},
	},
}

var sanitizerNameRE = regexp.MustCompile(`(?i)^(validate|vet|sanitiz|verify)`)

// isSanitizerFunc reports whether fn is a designated validation function.
func isSanitizerFunc(fn *types.Func) bool {
	return sanitizerNameRE.MatchString(fn.Name()) ||
		strings.Contains(strings.ToLower(fn.Name()), "checksum")
}

func runRpctaint(mp *ModulePass) {
	tt := NewTaint(mp.Pkgs, mp.Graph(), &TaintSpec{
		FieldSources: []FieldSource{
			{PkgPath: "repro/internal/rpc", Type: "Request", Field: "Args",
				Desc: "rpc request args (sent by another cell)"},
			{PkgPath: "repro/internal/machine", Type: "SIPSMsg", Field: "Payload",
				Desc: "a SIPS message payload (sent by another cell)"},
		},
		Sanitizer: isSanitizerFunc,
	})
	for _, pkg := range mp.Pkgs {
		if pkg.Info == nil || !mp.Cfg.ModelPackage(pkg.Path) {
			continue
		}
		// The wire layers themselves handle raw payloads by design: rpc
		// unwraps requests/replies, machine delivers SIPS lines (with the
		// checksum drop). The distrust rule binds their *clients*.
		if pkg.Path == "repro/internal/rpc" || pkg.Path == "repro/internal/machine" {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				// A sanitizer may do its vetting right at the sink
				// (read-check-write); its own body is the gate.
				if isSanitizerFunc(fn) {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					method, typeName := rpctaintSinkOf(pkg, call)
					if method == "" {
						return true
					}
					for _, arg := range call.Args {
						o := tt.TaintOf(pkg, arg)
						if o == nil || tt.SanitizedIn(fn, arg) {
							continue
						}
						mp.Reportf(call.Pos(), "%s.%s argument %s carries %s without validation; vet remote data (validate*/vet*/verify*) before it mutates kernel state", typeName, method, types.ExprString(arg), o.Desc)
						break
					}
					return true
				})
			}
		}
	}
}

// rpctaintSinkOf matches a call against the sink table, returning the
// method and receiver type names ("" when not a sink).
func rpctaintSinkOf(pkg *Package, call *ast.CallExpr) (method, typeName string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	t := pkg.Info.TypeOf(sel.X)
	if t == nil {
		return "", ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", ""
	}
	byType, ok := rpctaintSinks[named.Obj().Pkg().Path()]
	if !ok {
		return "", ""
	}
	if byType[named.Obj().Name()][sel.Sel.Name] {
		return sel.Sel.Name, named.Obj().Name()
	}
	return "", ""
}
