package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"
)

// moduleRootForTest locates the checked-out module source, or skips:
// installed-package test runs have no tree to lint.
func moduleRootForTest(t *testing.T) string {
	t.Helper()
	_, self, _, ok := runtime.Caller(0)
	if ok {
		if _, err := os.Stat(self); err == nil {
			if root := FindModuleRoot(filepath.Dir(self)); root != "" {
				return root
			}
		}
	}
	if cwd, err := os.Getwd(); err == nil {
		if root := FindModuleRoot(cwd); root != "" {
			return root
		}
	}
	t.Skip("module source tree not available; skipping source-dependent lint test")
	return ""
}

// sharedImporter caches stdlib type-checking across fixture loads.
var sharedFixture struct {
	fset *token.FileSet
	imp  *moduleImporter
}

// loadFixture parses testdata/src/<name> under the fake import path
// `as`, type-checking it when typed is set (fixture imports are stdlib
// only, so this works without a go.mod of its own).
func loadFixture(t *testing.T, name, as string, typed bool) *Package {
	t.Helper()
	root := moduleRootForTest(t)
	if sharedFixture.fset == nil {
		sharedFixture.fset = token.NewFileSet()
		sharedFixture.imp = newModuleImporter(root, "repro", sharedFixture.fset)
	}
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", name)
	files, err := parseDir(sharedFixture.fset, dir)
	if err != nil {
		t.Fatalf("parsing fixture %s: %v", name, err)
	}
	pkg := &Package{Path: as, Dir: dir, Fset: sharedFixture.fset, Files: files}
	if typed {
		info := &types.Info{
			Types: map[ast.Expr]types.TypeAndValue{},
			Defs:  map[*ast.Ident]types.Object{},
			Uses:  map[*ast.Ident]types.Object{},
		}
		conf := types.Config{Importer: sharedFixture.imp}
		if _, err := conf.Check(as, sharedFixture.fset, files, info); err != nil {
			t.Fatalf("type-checking fixture %s: %v", name, err)
		}
		pkg.Info = info
	}
	return pkg
}

var wantRE = regexp.MustCompile("// want (.+)$")
var wantArgRE = regexp.MustCompile("`([^`]*)`")

// wantsIn extracts the `// want` expectations per line of every fixture
// file.
func wantsIn(t *testing.T, pkg *Package) map[string]map[int][]*regexp.Regexp {
	t.Helper()
	wants := map[string]map[int][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		fname := pkg.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(fname)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			args := wantArgRE.FindAllStringSubmatch(m[1], -1)
			if args == nil {
				t.Fatalf("%s:%d: malformed want comment %q", fname, i+1, line)
			}
			if wants[fname] == nil {
				wants[fname] = map[int][]*regexp.Regexp{}
			}
			for _, a := range args {
				wants[fname][i+1] = append(wants[fname][i+1], regexp.MustCompile(a[1]))
			}
		}
	}
	return wants
}

// checkFixture runs one analyzer over a fixture and compares its
// diagnostics against the fixture's want comments, both directions.
// It returns every diagnostic (all analyzers' plus pragma reports) for
// tests that assert beyond the wants.
func checkFixture(t *testing.T, name, as string, typed bool, an *Analyzer) []Diagnostic {
	t.Helper()
	pkg := loadFixture(t, name, as, typed)
	all := RunAnalyzers(pkg, DefaultConfig(), []*Analyzer{an})
	wants := wantsIn(t, pkg)
	matched := map[*regexp.Regexp]bool{}
	for _, d := range all {
		if d.Analyzer != an.Name {
			continue
		}
		ok := false
		for _, re := range wants[d.File][d.Line] {
			if !matched[re] && re.MatchString(d.Message) {
				matched[re] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for fname, lines := range wants {
		for line, res := range lines {
			for _, re := range res {
				if !matched[re] {
					t.Errorf("%s:%d: no %s diagnostic matched want `%s`", fname, line, an.Name, re)
				}
			}
		}
	}
	return all
}

// TestAnalyzerFixtures is the positive/negative matrix: each analyzer
// has a fixture that fails without its check and passes with it.
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		fixture string
		as      string
		typed   bool
		an      *Analyzer
	}{
		{"walltime", "repro/internal/walltime", true, walltimeAnalyzer},
		{"globalrand", "repro/internal/globalrand", true, globalrandAnalyzer},
		{"maporder", "repro/internal/maporder", true, maporderAnalyzer},
		{"rawconc", "repro/internal/rawconc", true, rawconcAnalyzer},
		{"stablesort", "repro/internal/stablesort", true, stablesortAnalyzer},
		{"shardcross", "repro/internal/shardcross", true, shardcrossAnalyzer},
		{"layering", "repro/internal/machine", false, layeringAnalyzer},
		{"layering_trace", "repro/internal/trace", false, layeringAnalyzer},
		{"layering_unknown", "repro/internal/mystery", false, layeringAnalyzer},
		{"carefulref", "repro/internal/carefulref", true, carefulrefAnalyzer},
		{"rpctaint", "repro/internal/rpctaint", true, rpctaintAnalyzer},
		{"errdrop", "repro/internal/errdrop", true, errdropAnalyzer},
		{"shardescape", "repro/internal/shardescape", true, shardescapeAnalyzer},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			checkFixture(t, tc.fixture, tc.as, tc.typed, tc.an)
		})
	}
}

// TestAllowlists proves the configured exemptions silence the checks:
// the same fixtures that fail as model packages are clean when loaded
// under an allowlisted (or out-of-scope) import path.
func TestAllowlists(t *testing.T) {
	cases := []struct {
		fixture string
		as      string
		typed   bool
		an      *Analyzer
	}{
		// internal/parallel may use wall-clock time (worker pool).
		{"walltime", "repro/internal/parallel", true, walltimeAnalyzer},
		// cmd/ binaries report wall-clock timing by design.
		{"walltime", "repro/cmd/hivesim", true, walltimeAnalyzer},
		// internal/sim and internal/parallel own the raw concurrency.
		{"rawconc", "repro/internal/sim", true, rawconcAnalyzer},
		{"rawconc", "repro/internal/parallel", true, rawconcAnalyzer},
		// maporder and stablesort only police model packages.
		{"maporder", "repro/cmd/hivebench", true, maporderAnalyzer},
		{"stablesort", "repro/examples/quickstart", true, stablesortAnalyzer},
		// shardcross only polices model packages (internal/sim itself is
		// allowlisted, but the fixture can't load under that path: it
		// imports the real sim package).
		{"shardcross", "repro/cmd/hivesim", true, shardcrossAnalyzer},
		// layering only constrains internal packages.
		{"layering", "repro/cmd/hivesim", false, layeringAnalyzer},
		// carefulref exempts the protocol's own implementation.
		{"carefulref", "repro/internal/careful", true, carefulrefAnalyzer},
		// the interprocedural analyzers only police model packages. (The
		// fixtures import the real rpc/sim packages, so they cannot load
		// under those paths; cmd/ stands in for "out of scope".)
		{"rpctaint", "repro/cmd/hivebench", true, rpctaintAnalyzer},
		{"errdrop", "repro/cmd/hivesim", true, errdropAnalyzer},
		{"shardescape", "repro/cmd/hivesim", true, shardescapeAnalyzer},
	}
	for _, tc := range cases {
		t.Run(tc.fixture+"_as_"+strings.ReplaceAll(tc.as, "/", "_"), func(t *testing.T) {
			pkg := loadFixture(t, tc.fixture, tc.as, tc.typed)
			for _, d := range RunAnalyzers(pkg, DefaultConfig(), []*Analyzer{tc.an}) {
				t.Errorf("allowlisted path %s still diagnosed: %s", tc.as, d)
			}
		})
	}
}

// TestPragmaMechanics exercises the //hive:lint-ignore escape hatch:
// suppression on the same and preceding line, mandatory reasons,
// unknown-analyzer detection, and per-analyzer scoping.
func TestPragmaMechanics(t *testing.T) {
	all := checkFixture(t, "pragma", "repro/internal/pragma", true, walltimeAnalyzer)

	var pragmaDiags []Diagnostic
	for _, d := range all {
		if d.Analyzer == "pragma" {
			pragmaDiags = append(pragmaDiags, d)
		}
	}
	if len(pragmaDiags) != 2 {
		t.Fatalf("want 2 malformed-pragma diagnostics, got %d: %v", len(pragmaDiags), pragmaDiags)
	}
	if !strings.Contains(pragmaDiags[0].Message, "requires a reason") {
		t.Errorf("missing-reason pragma not reported: %s", pragmaDiags[0])
	}
	if !strings.Contains(pragmaDiags[1].Message, "unknown analyzer") {
		t.Errorf("unknown-analyzer pragma not reported: %s", pragmaDiags[1])
	}

	// The two well-formed walltime pragmas (plus the deliberately
	// mis-scoped maporder one) must surface in the pragma inventory.
	pkg := loadFixture(t, "pragma", "repro/internal/pragma", true)
	RunAnalyzers(pkg, DefaultConfig(), []*Analyzer{walltimeAnalyzer})
	var reasons []string
	for _, pr := range pkg.pragmas {
		reasons = append(reasons, pr.analyzer+": "+pr.reason)
	}
	want := []string{
		"walltime: fixture exercising the escape hatch",
		"walltime: same-line pragmas work too",
		"maporder: wrong analyzer on purpose",
	}
	if strings.Join(reasons, "\n") != strings.Join(want, "\n") {
		t.Errorf("pragma inventory mismatch:\ngot  %q\nwant %q", reasons, want)
	}
}

// TestDiagnosticString pins the file:line:col rendering the CLI prints.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{File: "internal/vm/vm.go", Line: 7, Col: 3, Analyzer: "walltime", Message: "no"}
	if got, want := d.String(), "internal/vm/vm.go:7:3: walltime: no"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestLayerTableCoversInventory keeps the rank table honest: every
// internal package in the tree must be ranked (the analyzer reports
// unranked packages, so this is belt-and-braces for the config itself).
func TestLayerTableCoversInventory(t *testing.T) {
	root := moduleRootForTest(t)
	ents, err := os.ReadDir(filepath.Join(root, "internal"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	var missing []string
	for _, e := range ents {
		if e.IsDir() {
			if _, ok := cfg.Layers[e.Name()]; !ok {
				missing = append(missing, e.Name())
			}
		}
	}
	if len(missing) > 0 {
		t.Errorf("internal packages missing from the layer table: %v", missing)
	}
}
