// Fixture for the layering analyzer's self-maintenance rule: the tests
// load this directory under a fake internal import path that is missing
// from the layer table, which must itself be a diagnostic so the table
// cannot silently rot as packages are added.
package layeringunknown // want `not in the layering table`
