// Fixture for the maporder analyzer: map iteration order must never
// escape into simulation state or output.
package maporder

import "sort"

// Positive: appending keys without a following sort leaks the order.
func escapes(m map[int]int) []int {
	var out []int
	for k := range m { // want `map iteration order escapes`
		out = append(out, k)
	}
	return out
}

// Positive: emitting inside the loop publishes the order directly.
func emits(m map[string]int) {
	for k := range m { // want `map iteration order escapes`
		println(k)
	}
}

// Positive: float addition does not commute, so even a plain
// accumulation is order-sensitive.
func floatSum(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want `map iteration order escapes`
		s += v
	}
	return s
}

// Positive: break makes the set of visited entries order-dependent.
func breaks(m map[int]int) int {
	n := 0
	for range m { // want `map iteration order escapes`
		n++
		if n > 2 {
			break
		}
	}
	return n
}

// Positive: returning a key picks an arbitrary entry.
func anyKey(m map[int]int) int {
	for k := range m { // want `map iteration order escapes`
		return k
	}
	return -1
}

// Negative: integer counting commutes.
func counts(m map[int]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n++
		}
	}
	return n
}

// Negative: integer accumulation commutes.
func intSum(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// Negative: the collect-then-sort idiom fixes the order explicitly.
func sortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Negative: collect-then-sort with an if-guard on the collection.
func sortedPositive(m map[int]int) []int {
	var keys []int
	for k, v := range m {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	return keys
}

// Negative: constant-result early return (membership test).
func contains(m map[int]bool, x int) bool {
	for k := range m {
		if k == x {
			return true
		}
	}
	return false
}

// Negative: idempotent flag setting converges for any order.
func anyFailed(deps map[int]bool, failed map[int]bool) bool {
	doomed := false
	for c := range deps {
		if failed[c] {
			doomed = true
		}
	}
	return doomed
}

// Negative: set-style writes land each entry in its own slot.
func invert(m map[int]string) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Negative: deleting while ranging is explicitly allowed by the spec
// and order-insensitive.
func prune(m map[int]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}
