// Fixture for the shardescape analyzer: closures crossing shards via
// Engine.Send must carry values, not references into the sender's mutable
// state; SendGlobal closures may read but not write; Global closures are
// the sanctioned synchronous handoff. A helper that forwards its func()
// parameter into a Send position inherits Send's policy at its call sites.
package shardescape

import "repro/internal/sim"

// sends: the asynchronous crossing.
func sends(src, dst *sim.Engine) int {
	total := 0
	src.Send(dst, 1, func() { // want `closure passed to Engine.Send writes captured variable total`
		total++
	})

	cursor := 0
	src.Send(dst, 1, func() { // want `closure passed to Engine.Send reads captured variable cursor, which the sender still mutates`
		_ = cursor
	})
	cursor = 7

	snapshot := cursor // an immutable copy is the sanctioned payload
	src.Send(dst, 1, func() {
		_ = snapshot
	})
	return total
}

// sendGlobal: shards are quiescent in the global phase, so reads are
// safe — but writes to captured shard-local state are still flagged.
func sendGlobal(src *sim.Engine) {
	count := 0
	src.SendGlobal(func() { // want `closure passed to Engine.SendGlobal writes captured variable count`
		count = 1
	})

	limit := 8
	src.SendGlobal(func() {
		_ = limit
	})
	limit = 9 // mutated-read is fine for SendGlobal: the sender is parked
	_ = count
	_ = limit
}

// global: the synchronous handoff — writing results back through captured
// variables is the sanctioned pattern.
func global(e *sim.Engine, t *sim.Task) uint64 {
	var out uint64
	e.Global(t, func() {
		out = 42
	})
	return out
}

// relay forwards its parameter into a Send position, so closure literals
// at its call sites live under Send's policy.
func relay(src, dst *sim.Engine, fn func()) {
	src.Send(dst, 1, fn)
}

func viaRelay(src, dst *sim.Engine) {
	hits := 0
	relay(src, dst, func() { // want `closure passed to relay writes captured variable hits`
		hits++
	})
	_ = hits
}
