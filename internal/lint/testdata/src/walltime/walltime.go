// Fixture for the walltime analyzer: model code must not read the wall
// clock. Loaded by the tests as a model package (and once as the
// allowlisted repro/internal/parallel, expecting silence).
package walltime

import "time"

var bootEpoch = time.Now() // want `time\.Now is wall-clock`

func sleepy() time.Duration {
	time.Sleep(time.Millisecond)    // want `time\.Sleep is wall-clock`
	t := time.NewTimer(time.Second) // want `time\.NewTimer is wall-clock`
	t.Stop()
	_ = time.After(time.Second)  // want `time\.After is wall-clock`
	return time.Since(bootEpoch) // want `time\.Since is wall-clock`
}

// Negative: time's pure value helpers are legal — the model uses
// time.Duration for virtual durations.
func durations() time.Duration {
	d := 3 * time.Second
	return d + time.Millisecond
}

// Negative: a method that happens to be called Now on a non-package
// receiver is not the wall clock.
type fakeClock struct{}

func (fakeClock) Now() int { return 0 }

func useFake() int {
	var c fakeClock
	return c.Now()
}
