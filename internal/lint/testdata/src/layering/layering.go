// Fixture for the layering analyzer. The tests load this directory
// under the fake import path repro/internal/machine — a rank-2
// substrate — so the DESIGN.md §2 DAG rules apply. (This file is parsed
// but never type-checked, so the imports need not resolve.)
package machine

import (
	_ "repro"                 // want `imports the root package`
	_ "repro/internal/nosuch" // want `not in the layering table`
	_ "repro/internal/rpc"    // want `layering inversion: machine \(substrate, rank 2\) must not import rpc \(substrate, rank 3\)`
	_ "repro/internal/sim"    // below us: legal
	_ "repro/internal/stats"  // below us: legal
	_ "repro/internal/vm"     // want `layering inversion: machine \(substrate, rank 2\) must not import vm \(core, rank 4\)`

	_ "fmt" // stdlib is always legal
)
