// Fixture for the carefulref analyzer: raw Space dereferences are always
// flagged; an arena obtained for a possibly-remote cell is tracked through
// variables, helper returns and parameters to the dereference; the local
// cell's own arena stays clean.
package carefulref

import "repro/internal/kmem"

type cell struct {
	CellID int
	Space  *kmem.Space
}

// rawSpaceReads: Space-level dereferences take an Addr naming any cell,
// so they are flagged unconditionally outside internal/careful.
func rawSpaceReads(c *cell, addr kmem.Addr) {
	_, _ = c.Space.ReadWord(addr, 0) // want `Space.ReadWord dereferences an arbitrary cell's memory raw`
	_, _ = c.Space.TagAt(addr)       // want `Space.TagAt dereferences an arbitrary cell's memory raw`
}

// remoteArena: dereferencing an arena obtained with a non-self cell ID.
func remoteArena(c *cell, peer int, addr kmem.Addr) {
	ar := c.Space.Arena(peer)
	_, _ = ar.ReadWord(addr, 0) // want `Arena.ReadWord on a possibly-remote cell's arena`
	ar.WriteWord(addr, 0, 1)    // want `Arena.WriteWord on a possibly-remote cell's arena`
}

// localArena: the local cell's own arena is not remote memory.
func localArena(c *cell, addr kmem.Addr) {
	ar := c.Space.Arena(c.CellID)
	_, _ = ar.ReadWord(addr, 0)
}

// peerArena launders a remote arena through a helper return; the taint
// follows it to the dereference at the caller.
func (c *cell) peerArena(p int) *kmem.Arena { return c.Space.Arena(p) }

func throughReturn(c *cell, addr kmem.Addr) {
	_, _ = c.peerArena(2).TagAt(addr) // want `Arena.TagAt on a possibly-remote cell's arena`
}

// selfArena returns the cell's own arena; the helper hop does not make
// it remote.
func (c *cell) selfArena() *kmem.Arena { return c.Space.Arena(c.CellID) }

func throughLocalHelper(c *cell, addr kmem.Addr) {
	_, _ = c.selfArena().ReadWord(addr, 0)
}

// deref takes an arena as a parameter: a remote arena passed in from a
// call site is still caught at the dereference here.
func deref(ar *kmem.Arena, addr kmem.Addr) {
	ar.Free(addr) // want `Arena.Free on a possibly-remote cell's arena`
}

func throughParam(c *cell, addr kmem.Addr) {
	deref(c.Space.Arena(3), addr)
}
