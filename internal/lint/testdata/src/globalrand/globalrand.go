// Fixture for the globalrand analyzer: every draw must come from an
// engine-seeded *rand.Rand, never the package-level generator.
package globalrand

import "math/rand"

func draws(xs []int) {
	_ = rand.Intn(4)                       // want `rand\.Intn draws from the process-global`
	_ = rand.Float64()                     // want `rand\.Float64 draws from the process-global`
	_ = rand.Int63()                       // want `rand\.Int63 draws from the process-global`
	_ = rand.Perm(8)                       // want `rand\.Perm draws from the process-global`
	rand.Shuffle(len(xs), func(i, j int) { // want `rand\.Shuffle draws from the process-global`
		xs[i], xs[j] = xs[j], xs[i]
	})
}

// Negative: constructing a seeded generator and drawing from it is the
// required pattern.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, 1.1, 1, 100)
	return r.Intn(4) + int(z.Uint64())
}
