// Fixture for the rawconc analyzer: raw goroutines, channels and sync
// primitives are confined to internal/sim and internal/parallel. The
// tests also load this file as repro/internal/sim to prove the
// allowlist silences every diagnostic.
package rawconc

import "sync" // want `import of "sync"`

var mu sync.Mutex

func spawn() int {
	ch := make(chan int) // want `chan type`
	go send(ch)          // want `go statement`
	select {}            // want `select statement`
}

func send(ch chan int) { // want `chan type`
	ch <- 1 // want `channel send`
}

func recv(ch <-chan int) int { // want `chan type`
	return <-ch // want `channel receive`
}
