// Fixture pinning internal/trace's place in the DESIGN.md §2 DAG: a
// rank-1 substrate next to stats, importable by machine, rpc, vm,
// membership, and core — and forbidden from importing any of them. The
// tests load this directory under the fake import path
// repro/internal/trace. (Parsed but never type-checked, so the imports
// need not resolve.)
package trace

import (
	_ "repro/internal/core"       // want `layering inversion: trace \(substrate, rank 1\) must not import core \(core, rank 7\)`
	_ "repro/internal/machine"    // want `layering inversion: trace \(substrate, rank 1\) must not import machine \(substrate, rank 2\)`
	_ "repro/internal/membership" // want `layering inversion: trace \(substrate, rank 1\) must not import membership \(core, rank 4\)`
	_ "repro/internal/rpc"        // want `layering inversion: trace \(substrate, rank 1\) must not import rpc \(substrate, rank 3\)`
	_ "repro/internal/sim"        // below us: legal (trace events carry sim.Time)
	_ "repro/internal/vm"         // want `layering inversion: trace \(substrate, rank 1\) must not import vm \(core, rank 4\)`

	_ "encoding/json" // stdlib is always legal
)
