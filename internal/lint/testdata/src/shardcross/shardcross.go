// Fixture for the shardcross analyzer: direct shard-engine access is a
// violation; the mailbox entry points are fine; boot-time wiring may carry
// a pragma.
package shardcross

import "repro/internal/sim"

// direct pulls raw shard engines out of the cluster — both accessors are
// bypasses of the mailbox stamping.
func direct(clu *sim.Cluster) *sim.Engine {
	e := clu.Shard(1) // want `Cluster.Shard hands out a raw shard engine`
	_ = e
	return clu.Global() // want `Cluster.Global hands out a raw shard engine`
}

// mailbox is the sanctioned cross-shard surface: stamped crossings and
// G-phase closures on the engine you already run on.
func mailbox(src, dst *sim.Engine) {
	src.Send(dst, 5, func() {})
	src.SendGlobal(func() {})
}

// wired shows the documented escape hatch for boot-time wiring.
func wired(clu *sim.Cluster) *sim.Engine {
	//hive:lint-ignore shardcross fixture: boot-time wiring before workers start
	return clu.Shard(0)
}

// unrelated proves the check is type-based: a local type with the same
// method names is not a sim.Cluster.
type notCluster struct{}

func (notCluster) Shard(int) int { return 0 }
func (notCluster) Global() int   { return 0 }

func fine(n notCluster) int { return n.Shard(1) + n.Global() }
