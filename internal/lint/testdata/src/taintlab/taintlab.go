// Fixture for the taint-engine and call-graph unit tests. The test
// designates Wire.Payload as the source field and validate*/verify* as
// sanitizers, then probes how taint moves through field writes, interface
// calls, variadic arguments and closure captures.
package taintlab

type Wire struct {
	Payload any
}

// --- field writes: taint is per field, across instances ---

type box struct {
	data any
}

func fieldWrite(w *Wire, b1, b2 *box) any {
	b1.data = w.Payload
	return b2.data // the FIELD is tainted, so another instance's read is too
}

// --- interface calls: conservative resolution to every implementor ---

type store interface {
	Put(v any)
}

type realStore struct {
	last any
}

func (s *realStore) Put(v any) { s.last = v }

func throughIface(w *Wire, s store) {
	s.Put(w.Payload)
}

func readBack(s *realStore) any { return s.last }

// --- variadic arguments: excess args clamp to the variadic parameter ---

func gather(vs ...any) any {
	if len(vs) > 0 {
		return vs[0]
	}
	return nil
}

func throughVariadic(w *Wire) any {
	return gather(1, 2, w.Payload)
}

// --- closure capture: literals flow in the enclosing function's scope ---

func throughClosure(w *Wire) any {
	var grab any
	fn := func() { grab = w.Payload }
	fn()
	return grab
}

// --- sanitizers: results are clean; guard calls vouch for the variable ---

func validateWire(w *Wire) any { return w.Payload }

func cleaned(w *Wire) any {
	return validateWire(w)
}

func verifyPayload(v any) error { return nil }

func guarded(w *Wire) any {
	p := w.Payload
	if err := verifyPayload(p); err != nil {
		return nil
	}
	return p
}

// --- error exemption: error-typed values never carry taint ---

type wireErr struct {
	v any
}

func (e *wireErr) Error() string { return "wire" }

func errExempt(w *Wire) error {
	return &wireErr{v: w.Payload}
}

// --- control: nothing tainted flows here ---

func cleanConst() any { return 42 }
