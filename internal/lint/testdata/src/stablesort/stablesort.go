// Fixture for the stablesort analyzer: unstable sorts leave equal-key
// order to the whims of the current Go release.
package stablesort

import (
	"slices"
	"sort"
)

type row struct{ cell, free int }

// Positive: the exact wax.applyPolicy shape this check was written for —
// equal free-page counts would order arbitrarily.
func fragile(rows []row) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].free > rows[j].free }) // want `sort\.Slice is unstable`
}

// Positive: sort.Sort has the same unspecified equal-key order.
func viaInterface(d sort.Interface) {
	sort.Sort(d) // want `sort\.Sort is unstable`
}

// Positive: the slices package's comparison sort is unstable too.
func generic(rows []row) {
	slices.SortFunc(rows, func(a, b row) int { return b.free - a.free }) // want `slices\.SortFunc is unstable`
}

// Negative: stable variants with a deterministic input order are the
// sanctioned fix, ideally with an explicit tie-break.
func fixed(rows []row) {
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].free != rows[j].free {
			return rows[i].free > rows[j].free
		}
		return rows[i].cell < rows[j].cell
	})
	slices.SortStableFunc(rows, func(a, b row) int { return b.free - a.free })
}

// Negative: sorts over a total order have no ties to get wrong.
func totalOrder(xs []int, ss []string) {
	sort.Ints(xs)
	sort.Strings(ss)
	slices.Sort(xs)
}
