// Fixture for the rpctaint analyzer: data arriving through rpc.Request.Args
// or a SIPS payload must pass a named validator before reaching a kernel
// mutation sink. Taint survives type assertions and helper hops; a
// validate* return or a guard-style verify* call clears it.
package rpctaint

import (
	"errors"

	"repro/internal/kmem"
	"repro/internal/machine"
	"repro/internal/rpc"
)

type writeArgs struct {
	Addr kmem.Addr
	Val  uint64
}

type server struct {
	arena *kmem.Arena
}

// unvetted: wire args straight into an arena write.
func (s *server) unvetted(req *rpc.Request) {
	args := req.Args.(*writeArgs)
	s.arena.WriteWord(args.Addr, 0, args.Val) // want `Arena.WriteWord argument args.Addr carries rpc request args`
}

// validateWrite is a designated sanitizer: its result enters the caller
// clean.
func validateWrite(req *rpc.Request) (*writeArgs, error) {
	args, ok := req.Args.(*writeArgs)
	if !ok {
		return nil, errors.New("bad args")
	}
	return args, nil
}

// vetted: the validator return is trusted.
func (s *server) vetted(req *rpc.Request) error {
	args, err := validateWrite(req)
	if err != nil {
		return err
	}
	s.arena.WriteWord(args.Addr, 0, args.Val)
	return nil
}

func verifyArgs(a *writeArgs) error {
	if a.Val == 0 {
		return errors.New("zero value")
	}
	return nil
}

// guarded: calling a verify* function on the variable vouches for it in
// this function even though the variable itself stays tainted elsewhere.
func (s *server) guarded(req *rpc.Request) error {
	args := req.Args.(*writeArgs)
	if err := verifyArgs(args); err != nil {
		return err
	}
	s.arena.WriteWord(args.Addr, 0, args.Val)
	return nil
}

// store is one hop removed from the wire: its parameters are tainted by
// the indirect call site below and caught at the sink here.
func (s *server) store(a kmem.Addr, v uint64) {
	s.arena.WriteWord(a, 0, v) // want `Arena.WriteWord argument a carries rpc request args`
}

func (s *server) indirect(req *rpc.Request) {
	args := req.Args.(*writeArgs)
	s.store(args.Addr, args.Val)
}

// sips: the second wire source — raw SIPS payloads.
func (s *server) sips(msg *machine.SIPSMsg, addr kmem.Addr) {
	v := msg.Payload.(uint64)
	s.arena.WriteWord(addr, 0, v) // want `Arena.WriteWord argument v carries a SIPS message payload`
}
