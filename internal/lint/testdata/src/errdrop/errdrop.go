// Fixture for the errdrop analyzer: an rpc call's error is a dead-cell
// hint, so discarding it — as a bare statement, via go/defer, assigned to
// _, or assigned and never read — is flagged, one helper hop included.
package errdrop

import (
	"repro/internal/machine"
	"repro/internal/rpc"
	"repro/internal/sim"
)

type cell struct {
	ep   *rpc.Endpoint
	proc *machine.Processor
}

// dropped: the statement-shaped discards.
func (c *cell) dropped(t *sim.Task) {
	c.ep.Call(t, c.proc, 1, 7, nil, rpc.CallOpts{})        // want `result of Call discarded`
	_, _ = c.ep.Call(t, c.proc, 1, 7, nil, rpc.CallOpts{}) // want `error of Call assigned to _`
}

// fired: go and defer throw the error away just as surely.
func (c *cell) fired(t *sim.Task) {
	go c.ep.Call(t, c.proc, 1, 7, nil, rpc.CallOpts{})    // want `result of Call discarded by go statement`
	defer c.ep.Call(t, c.proc, 1, 7, nil, rpc.CallOpts{}) // want `result of Call discarded by defer`
}

// lost: assigned to a named result, then overwritten before anyone reads
// it — the timeout is gone.
func (c *cell) lost(t *sim.Task) (err error) {
	_, err = c.ep.Call(t, c.proc, 1, 7, nil, rpc.CallOpts{}) // want `error of Call assigned to err but never read in lost`
	err = nil
	return
}

// ping propagates the rpc error upward: it is a member of the erroring
// set, and dropping ITS result drops the timeout one hop removed.
func (c *cell) ping(t *sim.Task) error {
	_, err := c.ep.Call(t, c.proc, 1, 7, nil, rpc.CallOpts{})
	return err
}

func (c *cell) fanout(t *sim.Task) {
	c.ping(t) // want `result of ping discarded`
}

// handled: reading the error — even just to count the failure — is the
// contract.
func (c *cell) handled(t *sim.Task) int {
	fails := 0
	if _, err := c.ep.Call(t, c.proc, 1, 7, nil, rpc.CallOpts{}); err != nil {
		fails++
	}
	return fails
}

// bestEffort shows the documented escape hatch for deliberate advisory
// sends to possibly-dead peers.
func (c *cell) bestEffort(t *sim.Task) {
	//hive:lint-ignore errdrop fixture: deliberate best-effort cast to a possibly-dead peer
	c.ep.Call(t, c.proc, 1, 7, nil, rpc.CallOpts{})
}
