// Fixture for the //hive:lint-ignore escape hatch, run under the
// walltime analyzer.
package pragma

import "time"

// A well-formed pragma on the preceding line suppresses the diagnostic.
//
//hive:lint-ignore walltime fixture exercising the escape hatch
var suppressed = time.Now()

var alsoSuppressed = time.Now() //hive:lint-ignore walltime same-line pragmas work too

// A pragma without a reason is itself a violation and suppresses
// nothing.
//
//hive:lint-ignore walltime
var noReason = time.Now() // want `time\.Now is wall-clock`

// A pragma naming an unknown analyzer is a violation too.
//
//hive:lint-ignore frobnicate because reasons
var wrongName = time.Now() // want `time\.Now is wall-clock`

// A pragma for a different analyzer does not suppress this one.
//
//hive:lint-ignore maporder wrong analyzer on purpose
var wrongAnalyzer = time.Now() // want `time\.Now is wall-clock`
