package lint

import (
	"go/ast"
	"go/types"
)

// errdrop: RPC failures are never silently dropped. In Hive an RPC that
// returns ErrTimeout or ErrShutdown is a *failure hint* — the callee may
// be dead, and the caller is obliged to react (consult membership, abort
// the operation, requeue). A discarded error turns a detectable cell
// failure into silent state divergence, which is how containment erodes
// one forgotten `_` at a time.
//
// The analyzer seeds on (*rpc.Endpoint).Call and closes over the call
// graph: any module function whose last result is an error and whose body
// calls a member is itself a member (its error may carry the timeout
// upward). At every member call site in model code it flags three
// shapes: the bare statement call (error discarded entirely), the error
// assigned to `_`, and the error assigned to a variable that is never
// subsequently read in that function. Deliberate best-effort sends (alert
// fan-out to possibly-dead peers) carry //hive:lint-ignore errdrop
// pragmas naming the reason.
var errdropAnalyzer = &Analyzer{
	Name:      "errdrop",
	Doc:       "errors from rpc calls (and functions propagating them) must not be discarded, assigned to _, or assigned and never read — a dropped ErrTimeout hides a dead cell",
	RunModule: runErrdrop,
}

func runErrdrop(mp *ModulePass) {
	g := mp.Graph()
	members := rpcErroringFuncs(mp, g)
	for _, pkg := range mp.Pkgs {
		if pkg.Info == nil || !mp.Cfg.ModelPackage(pkg.Path) {
			continue
		}
		// rpc implements the calls; its internals shuffle errors by design.
		if pkg.Path == "repro/internal/rpc" {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkErrdropIn(mp, pkg, fd, members)
			}
		}
	}
}

// rpcErroringFuncs computes the member set: functions whose error result
// may carry an rpc failure. Seeded with (*rpc.Endpoint).Call, closed
// under "returns error and calls a member".
func rpcErroringFuncs(mp *ModulePass, g *CallGraph) map[*types.Func]bool {
	members := map[*types.Func]bool{}
	isSeed := func(fn *types.Func) bool {
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		return fn.Pkg().Path() == "repro/internal/rpc" && fn.Name() == "Call"
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes() {
			if n.Decl == nil || members[n.Fn] || !returnsError(n.Fn) {
				continue
			}
			calls := false
			ast.Inspect(n.Decl, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok || n.Pkg == nil {
					return true
				}
				callee := CalleeFunc(n.Pkg.Info, call)
				if callee != nil && (isSeed(callee) || members[callee.Origin()]) {
					calls = true
				}
				return !calls
			})
			if calls {
				members[n.Fn] = true
				changed = true
			}
		}
	}
	return members
}

// returnsError reports whether fn's last result is the error type.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Implements(last, errorIface()) || last.String() == "error"
}

var errIfaceCache *types.Interface

func errorIface() *types.Interface {
	if errIfaceCache == nil {
		errIfaceCache = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	}
	return errIfaceCache
}

// checkErrdropIn flags dropped member-call errors inside one function.
func checkErrdropIn(mp *ModulePass, pkg *Package, fd *ast.FuncDecl, members map[*types.Func]bool) {
	isMemberCall := func(call *ast.CallExpr) (*types.Func, bool) {
		fn := CalleeFunc(pkg.Info, call)
		if fn == nil {
			return nil, false
		}
		fn = fn.Origin()
		if fn.Pkg() != nil && fn.Pkg().Path() == "repro/internal/rpc" && fn.Name() == "Call" {
			return fn, true
		}
		return fn, members[fn]
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if fn, member := isMemberCall(call); member {
					mp.Reportf(call.Pos(), "result of %s discarded; its error may be rpc.ErrTimeout/ErrShutdown (a dead-cell hint that must be handled)", fn.Name())
				}
			}
		case *ast.GoStmt:
			if fn, member := isMemberCall(n.Call); member {
				mp.Reportf(n.Call.Pos(), "result of %s discarded by go statement; its error may be rpc.ErrTimeout/ErrShutdown (a dead-cell hint that must be handled)", fn.Name())
			}
		case *ast.DeferStmt:
			if fn, member := isMemberCall(n.Call); member {
				mp.Reportf(n.Call.Pos(), "result of %s discarded by defer; its error may be rpc.ErrTimeout/ErrShutdown (a dead-cell hint that must be handled)", fn.Name())
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, member := isMemberCall(call)
			if !member {
				return true
			}
			errLhs := n.Lhs[len(n.Lhs)-1]
			id, ok := errLhs.(*ast.Ident)
			if !ok {
				return true
			}
			if id.Name == "_" {
				mp.Reportf(call.Pos(), "error of %s assigned to _; rpc.ErrTimeout/ErrShutdown is a dead-cell hint that must be handled", fn.Name())
				return true
			}
			obj := pkg.Info.Defs[id]
			if obj == nil {
				obj = pkg.Info.Uses[id]
			}
			if obj != nil && !objReadIn(pkg, fd.Body, obj) {
				mp.Reportf(call.Pos(), "error of %s assigned to %s but never read in %s; rpc.ErrTimeout/ErrShutdown is a dead-cell hint that must be handled", fn.Name(), id.Name, fd.Name.Name)
			}
		}
		return true
	})
}

// objReadIn reports whether obj is read (used other than as an
// assignment target) anywhere in body. Flow-insensitive: a read before
// the assignment also counts, which errs toward silence.
func objReadIn(pkg *Package, body *ast.BlockStmt, obj types.Object) bool {
	assignLHS := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					assignLHS[id] = true
				}
			}
		}
		return true
	})
	read := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || assignLHS[id] {
			return true
		}
		if pkg.Info.Uses[id] == obj {
			read = true
		}
		return !read
	})
	return read
}
