package parallel_test

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"testing"

	"repro/internal/parallel"
	"repro/internal/sim"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		r := parallel.New(workers)
		got := parallel.Map(r, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	r := parallel.New(4)
	if got := parallel.Map(r, 0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestNewClampsWorkers(t *testing.T) {
	if parallel.New(0).Workers() < 1 {
		t.Fatal("New(0) gave no workers")
	}
	if parallel.New(-3).Workers() < 1 {
		t.Fatal("New(-3) gave no workers")
	}
	if parallel.New(5).Workers() != 5 {
		t.Fatal("New(5) != 5 workers")
	}
}

func TestMapPanicCaptureDeterministic(t *testing.T) {
	for _, workers := range []int{1, 8} {
		r := parallel.New(workers)
		ran := make([]bool, 16)
		func() {
			defer func() {
				p := recover()
				if p == nil {
					t.Fatalf("workers=%d: expected re-panic", workers)
				}
				// The lowest-index panic wins regardless of scheduling.
				if !strings.Contains(fmt.Sprint(p), "job 3 panicked: boom-3") {
					t.Fatalf("workers=%d: panic = %v", workers, p)
				}
			}()
			parallel.Map(r, 16, func(i int) int {
				ran[i] = true
				if i == 3 || i == 11 {
					panic(fmt.Sprintf("boom-%d", i))
				}
				return i
			})
		}()
		// Every job still ran: one bad trial must not sink the campaign.
		for i, ok := range ran {
			if !ok {
				t.Fatalf("workers=%d: job %d never ran", workers, i)
			}
		}
	}
}

func TestMapErrFirstByIndex(t *testing.T) {
	r := parallel.New(4)
	sentinel := errors.New("bad trial")
	out, err := parallel.MapErr(r, 10, func(i int) (int, error) {
		if i == 7 || i == 2 {
			return 0, sentinel
		}
		return i, nil
	})
	if err == nil || !errors.Is(err, sentinel) || !strings.Contains(err.Error(), "job 2") {
		t.Fatalf("err = %v", err)
	}
	if out[5] != 5 {
		t.Fatalf("out[5] = %d", out[5])
	}
}

// traceHash runs a small multi-task simulation and hashes its full dispatch
// trace — a strict witness of the event order inside one engine.
func traceHash(seed int64) uint64 {
	h := fnv.New64a()
	e := sim.NewEngine(seed)
	e.Trace = func(at sim.Time, what string) {
		fmt.Fprintf(h, "%d:%s\n", at, what)
	}
	var m sim.Mutex
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("t%d", i)
		e.Go(name, func(tk *sim.Task) {
			for j := 0; j < 20; j++ {
				tk.Sleep(sim.Time(e.Rand().Intn(50)))
				m.Lock(tk)
				if tk.BlockTimeout(sim.Time(e.Rand().Intn(3))) {
					tk.Sleep(1)
				}
				m.Unlock(tk)
			}
		})
	}
	e.Run(0)
	return h.Sum64()
}

// TestEngineDeterminismUnderParallelism is the core safety property of the
// whole layer: engines running concurrently on the pool produce exactly the
// event order they produce alone.
func TestEngineDeterminismUnderParallelism(t *testing.T) {
	const n = 12
	seq := parallel.Map(parallel.New(1), n, func(i int) uint64 {
		return traceHash(int64(100 + i))
	})
	par := parallel.Map(parallel.New(8), n, func(i int) uint64 {
		return traceHash(int64(100 + i))
	})
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("seed %d: sequential hash %x != parallel hash %x", 100+i, seq[i], par[i])
		}
	}
}

func TestDefaultRunner(t *testing.T) {
	if parallel.Default().Workers() < 1 {
		t.Fatal("default runner has no workers")
	}
	parallel.SetDefaultWorkers(3)
	if parallel.Default().Workers() != 3 {
		t.Fatal("SetDefaultWorkers(3) not reflected")
	}
	parallel.SetDefaultWorkers(0) // restore per-CPU default
	if parallel.Default().Workers() < 1 {
		t.Fatal("restored default has no workers")
	}
}
