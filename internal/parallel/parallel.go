// Package parallel fans independent, deterministic simulation jobs across
// OS threads. Every Hive experiment is an isolated simulation: it boots its
// own sim.Engine from an explicit seed and shares no mutable state with any
// other trial. That makes experiment campaigns embarrassingly parallel —
// the trials of the §7.4 fault-injection campaign, the twelve Table 7.2
// configurations, and the scalability and detection sweeps can all run
// concurrently with bit-identical per-trial results.
//
// The contract is strict: a job must not touch anything outside its own
// engine. The simulation packages keep to this (their only package-level
// state is immutable error values and calibration constants), so the same
// table comes out whether the campaign runs on one worker or sixteen.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Runner executes independent jobs on a fixed-size worker pool. A Runner is
// stateless between calls and safe for concurrent use.
type Runner struct {
	workers int
}

// New returns a Runner with the given worker count; n <= 0 means one worker
// per available CPU (GOMAXPROCS).
func New(n int) *Runner {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: n}
}

// Workers returns the pool size.
func (r *Runner) Workers() int { return r.workers }

// defaultRunner is the process-wide runner used by experiment code that is
// not handed an explicit Runner. Commands set it from their -j flag.
var defaultRunner atomic.Pointer[Runner]

// Default returns the process-wide runner (one worker per CPU unless
// SetDefaultWorkers was called).
func Default() *Runner {
	if r := defaultRunner.Load(); r != nil {
		return r
	}
	return New(0)
}

// SetDefaultWorkers sets the process-wide worker count; n <= 0 restores one
// worker per CPU. Commands call this once from their -j flag before running
// experiments.
func SetDefaultWorkers(n int) { defaultRunner.Store(New(n)) }

// jobPanic records a panic captured inside a job.
type jobPanic struct {
	index int
	val   any
}

// Map runs fn(i) for every i in [0, n) on r's worker pool and returns the
// results in index order. Results are positionally stable regardless of the
// worker count or scheduling, so deterministic jobs produce byte-identical
// aggregate output at -j 1 and -j N.
//
// A panic inside one job does not disturb the others: every job runs to
// completion, and Map then re-panics with the lowest-index panic (wrapped
// with its job index) so failure reporting is deterministic too.
func Map[T any](r *Runner, n int, fn func(i int) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	var (
		mu      sync.Mutex
		panics  []jobPanic
		workers = r.workers
	)
	if workers > n {
		workers = n
	}
	run := func(i int) {
		defer func() {
			if p := recover(); p != nil {
				mu.Lock()
				panics = append(panics, jobPanic{index: i, val: p})
				mu.Unlock()
			}
		}()
		out[i] = fn(i)
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					run(i)
				}
			}()
		}
		wg.Wait()
	}
	if len(panics) > 0 {
		first := panics[0]
		for _, p := range panics[1:] {
			if p.index < first.index {
				first = p
			}
		}
		panic(fmt.Sprintf("parallel: job %d panicked: %v", first.index, first.val))
	}
	return out
}

// MapErr is Map for jobs that return (T, error). It returns the first error
// by job index (the deterministic choice) alongside all results.
func MapErr[T any](r *Runner, n int, fn func(i int) (T, error)) ([]T, error) {
	type res struct {
		v   T
		err error
	}
	rs := Map(r, n, func(i int) res {
		v, err := fn(i)
		return res{v, err}
	})
	out := make([]T, n)
	var firstErr error
	for i, x := range rs {
		out[i] = x.v
		if x.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("job %d: %w", i, x.err)
		}
	}
	return out, firstErr
}

// WallTimer starts a real-time stopwatch and returns a function reporting
// the seconds elapsed since the call. It exists for reporting the
// simulator's own dispatch rate (events per wall second); wall clock must
// never feed back into model state, so the returned value belongs in
// report-only fields, not gated metrics.
func WallTimer() func() float64 {
	t0 := time.Now()
	return func() float64 { return time.Since(t0).Seconds() }
}
