package harness

import (
	"math"
	"testing"
)

// near asserts v is within frac of want.
func near(t *testing.T, name string, v, want, frac float64) {
	t.Helper()
	if want == 0 {
		if v != 0 {
			t.Errorf("%s = %v, want 0", name, v)
		}
		return
	}
	if math.Abs(v-want)/want > frac {
		t.Errorf("%s = %.2f, want ≈%.2f (±%.0f%%)", name, v, want, frac*100)
	}
}

func TestCareful41MatchesPaper(t *testing.T) {
	c := RunCareful41()
	near(t, "careful read µs", c.CarefulReadUs, 1.16, 0.10)
	near(t, "null RPC µs", c.NullRPCUs, 7.2, 0.06)
	if c.NullRPCUs < 5*c.CarefulReadUs {
		t.Errorf("careful read not substantially faster than RPC: %.2f vs %.2f",
			c.CarefulReadUs, c.NullRPCUs)
	}
}

func TestRPC6MatchesPaper(t *testing.T) {
	r := RunRPC6()
	near(t, "null µs", r.NullUs, 7.2, 0.06)
	near(t, "real µs", r.RealUs, 9.6, 0.06)
	near(t, "oversize µs", r.OversizeUs, 17.3, 0.06)
	near(t, "queued µs", r.QueuedUs, 34, 0.08)
}

func TestTable52MatchesPaper(t *testing.T) {
	x := RunTable52()
	near(t, "local fault µs", x.LocalUs, 6.9, 0.06)
	near(t, "remote fault µs", x.RemoteUs, 50.7, 0.06)
	near(t, "breakdown total µs", x.Components.MeanTotal(), 50.7, 0.05)
}

func TestTable73MatchesPaper(t *testing.T) {
	x := RunTable73()
	near(t, "read local ms", x.Read4MBLocalMs, 65.0, 0.08)
	near(t, "read remote ms", x.Read4MBRemoteMs, 76.2, 0.08)
	near(t, "write local ms", x.Write4MBLocalMs, 83.7, 0.08)
	near(t, "write remote ms", x.Write4MBRemoteMs, 87.3, 0.08)
	near(t, "open local µs", x.OpenLocalUs, 148, 0.08)
	near(t, "open remote µs", x.OpenRemoteUs, 580, 0.15)
	// Ratios (the paper's headline column).
	near(t, "read ratio", x.Read4MBRemoteMs/x.Read4MBLocalMs, 1.2, 0.08)
	near(t, "fault ratio", x.FaultRemoteUs/x.FaultLocalUs, 7.4, 0.08)
}

func TestHardware81AllFunctional(t *testing.T) {
	hw := RunHardware81()
	if !hw.Firewall || !hw.FaultModel || !hw.RemapRegion || !hw.SIPS || !hw.Cutoff {
		t.Fatalf("hardware features: %+v", *hw)
	}
}

func TestScalabilityCrossover(t *testing.T) {
	pts := RunScalability([]int{4, 16})
	small, big := pts[0], pts[1]
	// At 4 CPUs the two designs are comparable; at 16 the SMP kernel is
	// lock-bound and Hive is well ahead.
	if ratio := float64(small.HiveOps) / float64(small.SMPOps); ratio > 1.3 {
		t.Errorf("4-CPU ratio = %.2f, expected near parity", ratio)
	}
	if ratio := float64(big.HiveOps) / float64(big.SMPOps); ratio < 1.8 {
		t.Errorf("16-CPU ratio = %.2f, expected Hive well ahead", ratio)
	}
}

func TestAgreementModesAgree(t *testing.T) {
	ac := RunAgreementComparison()
	if !ac.VoteOK {
		t.Fatal("vote mode failed to confirm a real failure")
	}
	if ac.VoteDetectMs <= 0 || ac.OracleDetectMs <= 0 {
		t.Fatalf("detect: oracle=%.1f vote=%.1f", ac.OracleDetectMs, ac.VoteDetectMs)
	}
	if ac.VoteDetectMs > 3*ac.OracleDetectMs+10 {
		t.Fatalf("voting much slower than oracle: %.1f vs %.1f",
			ac.VoteDetectMs, ac.OracleDetectMs)
	}
}

func TestDetectionSweepBounded(t *testing.T) {
	avg, max := RunDetectionSweep(4)
	if avg <= 0 || max <= 0 || max > 45 {
		t.Fatalf("avg=%.1f max=%.1f ms", avg, max)
	}
}

func TestTable74QuickAllContained(t *testing.T) {
	if testing.Short() {
		t.Skip("runs five injection trials")
	}
	rows := RunTable74(0.05)
	for _, r := range rows {
		if !r.AllOK {
			t.Errorf("%s: %v", r.Scenario, r.Failures)
		}
	}
}

func TestCOWLookupComparison(t *testing.T) {
	c := RunCOWLookupComparison()
	if c.SharedMemUs <= 0 || c.RPCUs <= 0 {
		t.Fatalf("lookup: sm=%.2f rpc=%.2f", c.SharedMemUs, c.RPCUs)
	}
	// The shared-memory walk is cheaper per lookup, but (§5.3) the
	// end-to-end Touch is dominated by the bind RPC: "just as fast".
	if c.SharedMemUs >= c.RPCUs {
		t.Errorf("shared memory (%.2fµs) not cheaper than RPC (%.2fµs) per lookup",
			c.SharedMemUs, c.RPCUs)
	}
	if c.TouchSMUs > 0 && c.TouchRPCUs > 0 {
		ratio := c.TouchRPCUs / c.TouchSMUs
		if ratio > 3 {
			t.Errorf("end-to-end RPC touch %.1fx slower — paper expects 'just as fast'", ratio)
		}
	}
}

func TestSIPSBeatsIPI(t *testing.T) {
	c := RunSIPSvsIPI()
	if c.SIPSUs <= 0 || c.IPIUs <= 0 {
		t.Fatalf("sips=%.2f ipi=%.2f", c.SIPSUs, c.IPIUs)
	}
	// §6: without SIPS, intercell communication over IPIs and shared
	// queues is more expensive — per-sender queue polls and cache-line
	// ping-pong.
	if c.IPIUs <= c.SIPSUs {
		t.Fatalf("IPI path (%.2fµs) not slower than SIPS (%.2fµs)", c.IPIUs, c.SIPSUs)
	}
}

func TestCCNOWContainmentHolds(t *testing.T) {
	c := RunCCNOW()
	if !c.Contained {
		t.Fatal("failure not contained on the CC-NOW configuration")
	}
	// Remote faults stretch with the link latency; local ones don't.
	if c.FaultLocalUs > 7.5 {
		t.Errorf("local fault = %.1f µs, should be unchanged", c.FaultLocalUs)
	}
	if c.FaultRemoteUs < 55 {
		t.Errorf("remote fault = %.1f µs, should exceed the FLASH 50.7 µs", c.FaultRemoteUs)
	}
	if c.DetectMs <= 0 || c.DetectMs > 60 {
		t.Errorf("detection = %.1f ms", c.DetectMs)
	}
}

func TestDetectionCurveMonotone(t *testing.T) {
	// §4.3: less frequent checks widen the window of vulnerability —
	// average detection latency must grow with the check period.
	pts := DetectionCurve(3)
	if len(pts) < 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].DetectMs+1 < pts[i-1].DetectMs {
			t.Fatalf("detection not monotone: %+v", pts)
		}
	}
	// The coarsest setting should be clearly slower than the finest.
	if pts[len(pts)-1].DetectMs < 2*pts[0].DetectMs {
		t.Fatalf("100 ms checks (%.1f) not clearly slower than 10 ms (%.1f)",
			pts[len(pts)-1].DetectMs, pts[0].DetectMs)
	}
}
