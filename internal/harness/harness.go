// Package harness regenerates every table and figure of the paper's
// evaluation (§4-§7) from the simulation. Each experiment function runs
// the relevant workload or microbenchmark and returns both a formatted
// table and the measured values, so the benchmark suite can assert on them
// and cmd/hivebench can print them next to the paper's numbers.
package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/proc"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workload"
)

// twoCell boots the microbenchmark machine: two processors, two cells
// (Table 7.3's measurement configuration).
func twoCell() *core.Hive {
	cfg := core.DefaultConfig()
	cfg.Machine.Nodes = 2
	cfg.Cells = 2
	cfg.Mounts = []fs.Mount{{Prefix: "/warm", Cell: 1}, {Prefix: "/shared", Cell: 1}}
	cfg.Seed = 7
	return core.Boot(cfg)
}

// runOn spawns fn as a process on the cell and drives the engine until it
// finishes.
func runOn(h *core.Hive, cell int, fn func(p *proc.Process, t *sim.Task)) {
	done := false
	h.Cells[cell].Procs.Spawn("bench", 800, func(p *proc.Process, t *sim.Task) {
		defer func() { done = true }()
		fn(p, t)
	})
	h.RunUntil(func() bool { return done }, h.Eng.Now()+120*sim.Second)
}

// Careful41 measures §4.1: the careful-reference clock read vs the RPC
// alternative.
type Careful41 struct {
	CarefulReadUs float64 // paper: 1.16 µs
	MissShareUs   float64 // paper: 0.7 µs of it is the cache miss
	NullRPCUs     float64 // paper: ≥7.2 µs
}

// RunCareful41 executes the measurement.
func RunCareful41() *Careful41 {
	h := twoCell()
	out := &Careful41{MissShareUs: h.Cfg.Machine.MissNs.Micros()}
	runOn(h, 0, func(p *proc.Process, t *sim.Task) {
		c := h.Cells[0]
		const n = 64
		start := t.Now()
		for i := 0; i < n; i++ {
			ctx := c.Reader.On(t, c.Sched.Procs[0], 1)
			ctx.ReadClock(h.Cells[1].Nodes[0])
			ctx.Off()
		}
		out.CarefulReadUs = (t.Now() - start).Micros() / n

		start = t.Now()
		for i := 0; i < n; i++ {
			vet1(c.EP.Call(t, c.Sched.Procs[0], 1, rpcPingProc, nil, rpc.CallOpts{}))
		}
		out.NullRPCUs = (t.Now() - start).Micros() / n
	})
	return out
}

// rpcPingProc reuses the membership ping service (registered on every cell).
const rpcPingProc rpc.ProcID = 181

// RPC6 measures §6: null, practical, oversize, and queued RPC latencies.
type RPC6 struct {
	NullUs     float64 // paper: 7.2
	RealUs     float64 // paper: 9.6 (RPC component of common requests)
	OversizeUs float64 // Table 5.2's 17.3 µs RPC component
	QueuedUs   float64 // paper: 34
}

// RunRPC6 executes the measurement.
func RunRPC6() *RPC6 {
	h := twoCell()
	out := &RPC6{}
	// A queued-only echo service on cell 1.
	const echoQ rpc.ProcID = 900
	h.Cells[1].EP.Register(echoQ, "bench.echoq", nil,
		func(t *sim.Task, req *rpc.Request) (any, error) { return req.Args, nil })
	runOn(h, 0, func(p *proc.Process, t *sim.Task) {
		c := h.Cells[0]
		const n = 64
		measure := func(opts rpc.CallOpts, procID rpc.ProcID) float64 {
			start := t.Now()
			for i := 0; i < n; i++ {
				vet1(c.EP.Call(t, c.Sched.Procs[0], 1, procID, nil, opts))
			}
			return (t.Now() - start).Micros() / n
		}
		out.NullUs = measure(rpc.CallOpts{}, rpcPingProc)
		out.RealUs = measure(rpc.CallOpts{DataBytes: 64}, rpcPingProc)
		out.OversizeUs = measure(rpc.CallOpts{DataBytes: 512}, rpcPingProc)
		out.QueuedUs = measure(rpc.CallOpts{}, echoQ)
	})
	return out
}

// Table52 measures the remote page-fault path and its breakdown.
type Table52 struct {
	LocalUs    float64 // paper: 6.9
	RemoteUs   float64 // paper: 50.7
	Components *stats.Breakdown
}

// RunTable52 executes the measurement: 1024 faults that hit in the data
// home page cache, as in the paper.
func RunTable52() *Table52 {
	h := twoCell()
	out := &Table52{Components: stats.NewBreakdown()}
	// Data home (cell 1) creates and caches the file pages.
	const npages = 1024
	runOn(h, 1, func(p *proc.Process, t *sim.Task) {
		hd := vet1(h.Cells[1].FS.Create(t, "/shared"))
		vet(h.Cells[1].FS.Write(t, hd, npages, 5))
	})
	runOn(h, 0, func(p *proc.Process, t *sim.Task) {
		key := fileKey(h, 1, "/shared")
		// Local baseline: fault the same page of a local file.
		hdl := vet1(h.Cells[0].FS.Create(t, "/local"))
		vet(h.Cells[0].FS.Write(t, hdl, 1, 6))
		lpl := vm.LogicalPage{Obj: vm.ObjID{Kind: vm.FileObj, Home: 0, Num: fileKey(h, 0, "/local")}}
		pf, _ := h.Cells[0].VM.Fault(t, lpl, false)
		start := t.Now()
		const reps = 256
		for i := 0; i < reps; i++ {
			pf2, _ := h.Cells[0].VM.Fault(t, lpl, false)
			h.Cells[0].VM.Unref(t, pf2)
		}
		out.LocalUs = (t.Now() - start).Micros() / reps
		h.Cells[0].VM.Unref(t, pf)

		// Remote: 1024 distinct pages, all hitting the data home cache.
		start = t.Now()
		for off := int64(0); off < npages; off++ {
			lp := vm.LogicalPage{Obj: vm.ObjID{Kind: vm.FileObj, Home: 1, Num: key}, Off: off}
			rpf, err := h.Cells[0].VM.Fault(t, lp, false)
			if err != nil {
				continue
			}
			rpf.Refs++ // hold: avoid release RPCs inside the timing loop
			h.Cells[0].VM.Unref(t, rpf)
		}
		out.RemoteUs = (t.Now() - start).Micros() / npages
	})
	// Reconstruct the component view from the calibrated constants (the
	// same decomposition Table 5.2 reports).
	bd := out.Components
	obs := func(name string, d sim.Time) { bd.Observe(name, d) }
	obs("client: file system", vm.FSClientCost)
	obs("client: locking overhead", vm.LockingCost)
	obs("client: miscellaneous VM", vm.MiscVMClient)
	obs("client: import page", vm.ImportCost)
	obs("data home: miscellaneous VM", vm.MiscVMDataHome)
	obs("data home: export page", vm.ExportCost)
	obs("RPC: stubs and subsystem", rpc.ClientSendStub+rpc.ClientRecvStub+rpc.ServerDispatch+rpc.ServerReply+rpc.ExtraStubReal)
	obs("RPC: hardware message and interrupts", 2*(500+700+300)+rpc.IntrEntryExit+rpc.ExtraHWReal)
	obs("RPC: arg/result copy through shared memory", rpc.CopySharedMem)
	obs("RPC: allocate/free arg and result memory", rpc.AllocFreeArgMem)
	return out
}

// fileKey resolves a path to its FileID at its home cell.
func fileKey(h *core.Hive, home int, path string) uint64 {
	var id uint64
	runOn(h, home, func(p *proc.Process, t *sim.Task) {
		if hd, err := h.Cells[home].FS.Open(t, path); err == nil {
			id = uint64(hd.Key.ID)
		}
	})
	return id
}

// Table73 measures local vs remote kernel operation latency.
type Table73 struct {
	Read4MBLocalMs, Read4MBRemoteMs   float64 // paper: 65.0 / 76.2
	Write4MBLocalMs, Write4MBRemoteMs float64 // paper: 83.7 / 87.3
	OpenLocalUs, OpenRemoteUs         float64 // paper: 148 / 580
	FaultLocalUs, FaultRemoteUs       float64 // paper: 6.9 / 50.7
}

// RunTable73 executes the microbenchmarks on a two-processor two-cell
// system with a warm file cache, as in the paper.
func RunTable73() *Table73 {
	h := twoCell()
	out := &Table73{}
	const npages = 1024 // 4 MB
	runOn(h, 1, func(p *proc.Process, t *sim.Task) {
		fsys := h.Cells[1].FS
		hd := vet1(fsys.Create(t, "/warm/remote"))
		vet(fsys.Write(t, hd, npages, 2))
		hd2 := vet1(fsys.Create(t, "/warm/rw"))
		vet(fsys.Write(t, hd2, npages, 3))
	})
	runOn(h, 0, func(p *proc.Process, t *sim.Task) {
		fsys := h.Cells[0].FS
		// Local 4 MB read/write on cell 0's own files.
		hl := vet1(fsys.Create(t, "/l/file"))
		start := t.Now()
		vet(fsys.Write(t, hl, npages, 4))
		out.Write4MBLocalMs = (t.Now() - start).Millis()
		hl.Pos = 0
		start = t.Now()
		vet1(fsys.Read(t, hl, npages))
		out.Read4MBLocalMs = (t.Now() - start).Millis()

		// Remote read (cache-warm at the data home).
		hr := vet1(fsys.Open(t, "/warm/remote"))
		start = t.Now()
		vet1(fsys.Read(t, hr, npages))
		out.Read4MBRemoteMs = (t.Now() - start).Millis()

		// Remote write/extend.
		hw := vet1(fsys.Create(t, "/warm/newobj"))
		start = t.Now()
		vet(fsys.Write(t, hw, npages, 5))
		out.Write4MBRemoteMs = (t.Now() - start).Millis()

		// Opens (3-component paths as in the calibration).
		vet1(fsys.Create(t, "/l/sub/file2"))
		start = t.Now()
		const n = 32
		for i := 0; i < n; i++ {
			vet1(fsys.Open(t, "/l/sub/file2"))
		}
		out.OpenLocalUs = (t.Now() - start).Micros() / n
	})
	// Create the remote open target, then measure remote opens.
	runOn(h, 1, func(p *proc.Process, t *sim.Task) {
		vet1(h.Cells[1].FS.Create(t, "/warm/sub/x"))
	})
	runOn(h, 0, func(p *proc.Process, t *sim.Task) {
		start := t.Now()
		const n = 32
		for i := 0; i < n; i++ {
			vet1(h.Cells[0].FS.Open(t, "/warm/sub/x"))
		}
		out.OpenRemoteUs = (t.Now() - start).Micros() / n
	})
	t52 := RunTable52()
	out.FaultLocalUs = t52.LocalUs
	out.FaultRemoteUs = t52.RemoteUs
	return out
}

// Table72Row is one workload's timing across configurations.
type Table72Row struct {
	Workload    string
	IRIXSec     float64
	Slowdown1   float64 // percent vs IRIX
	Slowdown2   float64
	Slowdown4   float64
	RemoteNotes string
}

// RunTable72 executes the three workloads on IRIX and 1/2/4-cell Hive.
// The twelve (workload, system) configurations are independent boots, so
// they fan out across the process-wide parallel runner; slowdowns are then
// assembled from the ordered timings, identical at any worker count.
func RunTable72() []Table72Row {
	type runner func(h *core.Hive) *workload.Result
	workloads := []struct {
		name string
		run  runner
	}{
		{"ocean", func(h *core.Hive) *workload.Result {
			return workload.RunOcean(h, workload.DefaultOcean(), 120*sim.Second)
		}},
		{"raytrace", func(h *core.Hive) *workload.Result {
			return workload.RunRaytrace(h, workload.DefaultRaytrace(), 120*sim.Second)
		}},
		{"pmake", func(h *core.Hive) *workload.Result {
			return workload.RunPmake(h, workload.DefaultPmake(), 120*sim.Second)
		}},
	}
	systems := []int{0, 1, 2, 4} // 0 = the IRIX baseline
	elapsed := parallel.Map(parallel.Default(), len(workloads)*len(systems), func(i int) float64 {
		w := workloads[i/len(systems)]
		cells := systems[i%len(systems)]
		h := workload.BootIRIX()
		if cells > 0 {
			h = workload.BootHive(cells)
		}
		return w.run(h).Elapsed.Seconds()
	})
	var rows []Table72Row
	for wi, w := range workloads {
		t := elapsed[wi*len(systems) : (wi+1)*len(systems)]
		base := t[0]
		rows = append(rows, Table72Row{
			Workload:  w.name,
			IRIXSec:   base,
			Slowdown1: (t[1]/base - 1) * 100,
			Slowdown2: (t[2]/base - 1) * 100,
			Slowdown4: (t[3]/base - 1) * 100,
		})
	}
	return rows
}

// Firewall42 measures §4.2: the firewall check's latency cost and the
// firewall management policy's remotely-writable page populations.
type Firewall42 struct {
	WriteMissOverheadPct float64 // paper: +6.3 % (pmake) remote write miss
	PmakeAvgWritable     float64 // paper: ≈15 pages/cell (max 42, /tmp server)
	PmakeMaxWritable     float64
	OceanAvgWritable     float64 // paper: ≈550 pages/cell
	PmakeUserPages       float64 // paper: ≈6000 user pages per cell
}

// RunFirewall42 executes the measurement.
func RunFirewall42() *Firewall42 {
	out := &Firewall42{}

	// Write-miss latency with and without the firewall check.
	measure := func(enabled bool) sim.Time {
		e := sim.NewEngine(3)
		cfg := machine.DefaultConfig()
		cfg.Nodes = 2
		cfg.MemPerNodeMB = 1
		cfg.FirewallEnabled = enabled
		m := machine.New(e, cfg)
		lo, _ := m.NodePages(0)
		var d sim.Time
		e.Go("w", func(t *sim.Task) {
			if enabled {
				m.GrantWrite(t, m.Procs[0], lo, m.NodeProcMask(1))
			}
			start := t.Now()
			for i := 0; i < 64; i++ {
				m.WritePage(t, m.Procs[1], lo, uint64(i))
			}
			d = (t.Now() - start) / 64
		})
		e.Run(0)
		return d
	}
	with, without := measure(true), measure(false)
	out.WriteMissOverheadPct = (float64(with)/float64(without) - 1) * 100

	// pmake: sample remotely-writable pages per cell every 20 ms.
	h := workload.BootHive(4)
	sampler := make([]*stats.Sampler, 4)
	for i := range sampler {
		cell := h.Cells[i]
		sampler[i] = &stats.Sampler{Interval: 20 * sim.Millisecond}
		sampler[i].Start(h.Eng, func() float64 { return float64(cell.VM.RemotelyWritablePages()) })
	}
	workload.RunPmake(h, workload.DefaultPmake(), 120*sim.Second)
	var sum, max float64
	for i, s := range sampler {
		s.Stop()
		sum += s.Mean()
		if s.Max() > max {
			max = s.Max()
		}
		_ = i
	}
	out.PmakeAvgWritable = sum / 4
	out.PmakeMaxWritable = max
	var up float64
	for _, c := range h.Cells {
		up += float64(c.VM.UserPages())
	}
	out.PmakeUserPages = up / 4

	// ocean: sample during the run.
	h2 := workload.BootHive(4)
	sampler2 := make([]*stats.Sampler, 4)
	for i := range sampler2 {
		cell := h2.Cells[i]
		sampler2[i] = &stats.Sampler{Interval: 20 * sim.Millisecond}
		sampler2[i].Start(h2.Eng, func() float64 { return float64(cell.VM.RemotelyWritablePages()) })
	}
	workload.RunOcean(h2, workload.DefaultOcean(), 120*sim.Second)
	var sum2 float64
	for _, s := range sampler2 {
		s.Stop()
		sum2 += s.Mean()
	}
	out.OceanAvgWritable = sum2 / 4
	return out
}

// PmakeFaultTraffic reproduces the §5.2 fault-traffic analysis.
type PmakeFaultTraffic struct {
	Faults1Cell  int64 // paper: 8935 page-cache faults
	Faults4Cell  int64
	Remote4Cell  int64   // paper: 4946 remote
	FaultMs1Cell float64 // paper: 117 ms cumulative
	FaultMs4Cell float64 // paper: 455 ms cumulative
}

// RunPmakeFaultTraffic executes it.
func RunPmakeFaultTraffic() *PmakeFaultTraffic {
	out := &PmakeFaultTraffic{}
	r1 := workload.RunPmake(workload.BootHive(1), workload.DefaultPmake(), 120*sim.Second)
	out.Faults1Cell = r1.FaultHits
	out.FaultMs1Cell = float64(r1.FaultHits) * 6.9 / 1000
	r4 := workload.RunPmake(workload.BootHive(4), workload.DefaultPmake(), 120*sim.Second)
	out.Faults4Cell = r4.FaultHits
	out.Remote4Cell = r4.RemoteFaults
	local := float64(r4.FaultHits - r4.RemoteFaults)
	out.FaultMs4Cell = (local*6.9 + float64(r4.RemoteFaults)*50.7) / 1000
	return out
}

// FormatUs formats a microsecond value.
func FormatUs(v float64) string { return fmt.Sprintf("%.1f µs", v) }

// FormatMs formats a millisecond value.
func FormatMs(v float64) string { return fmt.Sprintf("%.1f ms", v) }

// FormatPct formats a percentage.
func FormatPct(v float64) string { return fmt.Sprintf("%+.1f %%", v) }
