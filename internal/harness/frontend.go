package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/wax"
	"repro/internal/workload"
)

// FrontendPoint is one row of the throughput-vs-offered-load sweep: the
// default frontend with its user population and arrival rate scaled by
// Multiplier, on a healthy 4-cell hive with Wax supervising.
type FrontendPoint struct {
	Multiplier float64
	Users      int

	Offered   int
	Issued    int
	Shed      int
	Completed int
	Good      int
	Redirects int

	Latency stats.HistSnapshot

	OfferedPerSec    float64
	ThroughputPerSec float64
	GoodputPerSec    float64

	// WaxRetargets counts placement hints Wax installed during the run
	// (ApplyPlaceTargets accepted), the cross-cell balancing at work.
	WaxRetargets int

	// WallSec is real time for this point — reported, never gated.
	WallSec float64
}

// FrontendReport is the full frontend experiment: the load sweep plus the
// availability-under-fault row (a cell killed mid-surge, aggregated over
// SurgeFault trials).
type FrontendReport struct {
	Points []FrontendPoint
	Fault  *faultinject.CampaignRow
}

// frontendMultipliers is the offered-load sweep: under capacity, at the
// calibrated point, and overloaded (the admission cap must shed, not
// collapse). The 2× point runs the full million-user population.
var frontendMultipliers = []float64{0.5, 1.0, 2.0}

// RunFrontendSweep executes the load sweep and the fault row. scale ∈
// (0,1] shrinks the fault-trial count for quick runs; the sweep itself is
// always the full configuration, so its gated metrics are identical in
// quick and full mode. Sweep points and fault trials are independent
// boots and fan out across the process-wide parallel runner.
func RunFrontendSweep(scale float64) *FrontendReport {
	nf := int(float64(faultinject.SurgeFault.DefaultTests())*scale + 0.5)
	if nf < 1 {
		nf = 1
	}
	total := len(frontendMultipliers) + nf
	points := make([]FrontendPoint, len(frontendMultipliers))
	trials := parallel.Map(parallel.Default(), total, func(i int) *faultinject.TrialResult {
		if i >= len(frontendMultipliers) {
			return faultinject.RunTrial(faultinject.SurgeFault, i-len(frontendMultipliers))
		}
		points[i] = runFrontendPoint(frontendMultipliers[i], i)
		return nil
	})
	rep := &FrontendReport{
		Points: points,
		Fault:  faultinject.Aggregate(faultinject.SurgeFault, trials[len(frontendMultipliers):]),
	}
	return rep
}

// runFrontendPoint boots a healthy hive, supervises Wax over it, and runs
// the default frontend at the given offered-load multiplier.
func runFrontendPoint(mult float64, idx int) FrontendPoint {
	wall := parallel.WallTimer()
	h := workload.BootHiveWith(4, int64(6100+idx*37), func(cfg *core.Config) {})
	sup := wax.Supervise(h)
	defer sup.Stop()

	cfg := workload.DefaultFrontend()
	cfg.Users = int(float64(cfg.Users) * mult)
	cfg.RatePerSec = int(float64(cfg.RatePerSec) * mult)
	_, fe := workload.RunFrontend(h, cfg, 60*sim.Second)

	return FrontendPoint{
		Multiplier:       mult,
		Users:            cfg.Users,
		Offered:          fe.Offered,
		Issued:           fe.Issued,
		Shed:             fe.Shed,
		Completed:        fe.Completed,
		Good:             fe.Good,
		Redirects:        fe.Redirects,
		Latency:          fe.Latency,
		OfferedPerSec:    fe.OfferedPerSec,
		ThroughputPerSec: fe.ThroughputPerSec,
		GoodputPerSec:    fe.GoodputPerSec,
		WaxRetargets:     sup.Cur.PlaceRetargets,
		WallSec:          wall(),
	}
}

// FormatFrontend renders the two frontend tables.
func FormatFrontend(rep *FrontendReport) string {
	tb := stats.NewTable("multi-tenant frontend — throughput vs offered load (4 cells, Wax on)",
		"offered", "users", "jobs/s in", "done/s", "goodput/s", "shed", "p50", "p99", "p999")
	for _, p := range rep.Points {
		tb.AddRow(
			fmt.Sprintf("%.1fx", p.Multiplier),
			fmt.Sprintf("%d", p.Users),
			fmt.Sprintf("%.0f", p.OfferedPerSec),
			fmt.Sprintf("%.0f", p.ThroughputPerSec),
			fmt.Sprintf("%.0f", p.GoodputPerSec),
			fmt.Sprintf("%d", p.Shed),
			FormatUs(p.Latency.P50),
			FormatUs(p.Latency.P99),
			FormatUs(p.Latency.P999),
		)
	}
	f := rep.Fault
	tf := stats.NewTable("availability under fault — cell killed mid-surge",
		"trials", "contained", "avg window", "max window", "avg restore (ms)")
	tf.AddRow(fmt.Sprint(f.Tests), fmt.Sprint(f.AllOK),
		FormatMs(f.AvgWindow), FormatMs(f.MaxWindow), FormatMs(f.AvgRestore))
	return tb.String() + "\n" + tf.String()
}
