package harness

import "fmt"

// The harness microbenchmarks run against healthy cells: every RPC
// targets a live peer and every file operation names a path the setup
// phase created. An error here is a harness bug, not a fault-containment
// event, so the benchmarks fail loudly instead of silently timing a
// broken operation (which is what discarded errors — flagged by the
// errdrop analyzer — used to do).
//
// The vet* names are deliberate: they match the lint suite's sanitizer
// convention, because the success assertion is the harness's validation
// of a remote result — a reply that passed it is vouched for. A neutral
// name (must1) would instead make these generic identity functions a
// module-wide taint mixer: return taint is tracked per function, so one
// tainted RPC reply threaded through would taint every value the helper
// ever returns.

// vet panics on a benchmark-infrastructure error.
func vet(err error) {
	if err != nil {
		panic(fmt.Sprintf("harness: benchmark operation failed: %v", err))
	}
}

// vet1 returns v or panics on a benchmark-infrastructure error.
func vet1[T any](v T, err error) T {
	vet(err)
	return v
}

// vet2 returns (a, b) or panics on a benchmark-infrastructure error.
func vet2[A, B any](a A, b B, err error) (A, B) {
	vet(err)
	return a, b
}
