package harness

import (
	"fmt"
	"testing"

	"repro/internal/parallel"
)

// TestScaleDeterminism is the scaling suite's -j1 vs -j8 byte-identity
// gate: the rendered table and every row must match exactly whether the
// probes run sequentially or on eight workers — the property that lets
// `hivebench -only scale` claim identical rows at any -j.
func TestScaleDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("boots 8- and 16-cell hives repeatedly")
	}
	counts := []int{8, 16}

	run := func(workers int) string {
		parallel.SetDefaultWorkers(workers)
		defer parallel.SetDefaultWorkers(0)
		rows := RunScale(counts, 1)
		for i := range rows {
			// The wall-clock dispatch rates are the rows' only
			// non-deterministic fields; everything else must be identical.
			if rows[i].WallEventsPerSec <= 0 || rows[i].ShardedWallEventsPerSec <= 0 {
				t.Errorf("row %d missing wall dispatch rates: %+v", i, rows[i])
			}
			rows[i].WallEventsPerSec = 0
			rows[i].ShardedWallEventsPerSec = 0
		}
		return fmt.Sprintf("%+v\n%s", rows, FormatScale(rows))
	}

	seq := run(1)
	par := run(8)
	if seq != par {
		t.Errorf("scale rows diverged across worker counts:\n-j1:\n%s\n-j8:\n%s", seq, par)
	}
	if seq != run(8) {
		t.Errorf("scale rows diverged across repeated same-seed runs")
	}
}

// TestScaleContainment16 asserts the fault campaign stays fully contained on
// a 16-cell Hive — the acceptance bar for scaling the recovery protocol.
func TestScaleContainment16(t *testing.T) {
	if testing.Short() {
		t.Skip("boots 16-cell hives")
	}
	rows := RunScale([]int{16}, 1)
	r := rows[0]
	if !r.Contained {
		t.Fatalf("16-cell campaign not contained: %+v", r)
	}
	if r.DetectMs <= 0 || r.RecoveryMs <= 0 {
		t.Fatalf("missing latency measurements: %+v", r)
	}
	if !r.Contained || r.FaultTrials != len(scaleScenarios) {
		t.Fatalf("expected %d trials, got %+v", len(scaleScenarios), r)
	}
}
