package harness

import (
	"testing"

	"repro/internal/faultinject"
	"repro/internal/parallel"
)

// TestCampaignSliceDeterminism extends the sequential-vs-parallel
// determinism regression from the trial level up to a faultdrill
// campaign slice: a multi-scenario sweep rendered through the same
// Table 7.4 formatter the CLI uses must be byte-identical whether the
// trials run on one worker or four. This is the property that lets
// `faultdrill -j N` claim "same results at any -j".
func TestCampaignSliceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs eight injection trials")
	}
	// A slice of the §7.4 campaign: one fail-stop and one corruption
	// scenario, two trials each, exactly as cmd/faultdrill sweeps them.
	scenarios := []faultinject.Scenario{
		faultinject.NodeFailProcCreate,
		faultinject.CorruptAddrMap,
	}
	const trialsPer = 2

	run := func(workers int) ([]*Table74Row, string) {
		r := parallel.New(workers)
		var rows []*Table74Row
		for _, s := range scenarios {
			rows = append(rows, faultinject.RunScenarioWith(r, s, trialsPer))
		}
		return rows, FormatTable74(rows)
	}

	seqRows, seqTable := run(1)
	parRows, parTable := run(4)

	for i := range seqRows {
		s, p := seqRows[i], parRows[i]
		if s.AllOK != p.AllOK {
			t.Errorf("%s: containment verdict diverged: seq=%v par=%v", s.Scenario, s.AllOK, p.AllOK)
		}
		if s.AvgDetect != p.AvgDetect || s.MaxDetect != p.MaxDetect {
			t.Errorf("%s: detection latency diverged: seq=(%v,%v) par=(%v,%v)",
				s.Scenario, s.AvgDetect, s.MaxDetect, p.AvgDetect, p.MaxDetect)
		}
		if s.AvgRecov != p.AvgRecov {
			t.Errorf("%s: recovery latency diverged: seq=%v par=%v", s.Scenario, s.AvgRecov, p.AvgRecov)
		}
		if len(s.Failures) != len(p.Failures) {
			t.Errorf("%s: failure list diverged: seq=%v par=%v", s.Scenario, s.Failures, p.Failures)
		} else {
			for j := range s.Failures {
				if s.Failures[j] != p.Failures[j] {
					t.Errorf("%s: failure %d diverged: seq=%q par=%q", s.Scenario, j, s.Failures[j], p.Failures[j])
				}
			}
		}
	}
	if seqTable != parTable {
		t.Errorf("rendered Table 7.4 diverged across worker counts:\n-j1:\n%s\n-j4:\n%s", seqTable, parTable)
	}
}
