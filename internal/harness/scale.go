package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ScaleRow is one cell count's scaling measurements: the paper's workloads
// and fault campaign rerun on a Hive of N single-node cells. Every field
// derives from virtual time and event counts — never wall clock — so rows
// are byte-identical at any worker count.
type ScaleRow struct {
	Cells int

	// Workload completion times (virtual seconds). Pmake is fixed work
	// (11 files, 4-way) so it isolates the overhead of more cells; ocean
	// runs one thread per cell so it scales work with the machine.
	PmakeSec float64
	OceanSec float64

	// RPC throughput over the pmake run: intercell calls issued across
	// all cells, and calls per virtual second.
	RPCCalls  int64
	RPCPerSec float64

	// Engine events dispatched over the pmake run, and events per
	// virtual second — the simulator work measure the perf gate tracks.
	Events       int64
	EventsPerSec float64

	// The scale_sharded probe: the same pmake rerun on the sharded engine
	// (one shard per cell, one worker per shard). The virtual-time fields
	// are deterministic and perf-gated; the WallEvents rates are the real
	// events/sec of each engine mode and are reported, never gated (wall
	// clock varies with the host).
	ShardedPmakeSec         float64
	ShardedEvents           int64
	ShardedEventsPerSec     float64
	WallEventsPerSec        float64 // classic engine, Dispatched()/wall
	ShardedWallEventsPerSec float64 // sharded engine, Dispatched()/wall

	// Fault campaign at this size: NodeFailRandom, DoubleFault, and
	// CoordinatorDeath trials. Latencies are averages over the detected
	// trials; Contained means every trial fully passed (Table 7.4's
	// criterion plus the invariant audit).
	FaultTrials int
	DetectMs    float64
	RecoveryMs  float64
	Contained   bool
}

// scaleScenarios is the campaign slice rerun per cell count: a random-time
// node failure plus the two recovery-under-fault scenarios whose cost grows
// with round membership.
var scaleScenarios = []faultinject.Scenario{
	faultinject.NodeFailRandom,
	faultinject.DoubleFault,
	faultinject.CoordinatorDeath,
}

// RunScale measures each requested cell count with `trials` fault trials
// per scenario. Every probe (pmake, ocean, and each scenario's trial slice)
// is an independent boot, so the probes fan out across the process-wide
// parallel runner; results merge in cell-count order.
func RunScale(cellCounts []int, trials int) []ScaleRow {
	const unitsPer = 3 + 3 // pmake, sharded pmake, ocean, one unit per scaleScenario
	type part struct {
		pmakeSec, oceanSec float64
		rpcCalls, events   int64
		wallEvSec          float64
		row                *faultinject.CampaignRow
	}
	parts := parallel.Map(parallel.Default(), unitsPer*len(cellCounts), func(i int) part {
		cells := cellCounts[i/unitsPer]
		switch i % unitsPer {
		case 0:
			h := bootScale(cells, 0)
			calls0 := rpcCallCount(h)
			ev0 := h.Eng.Dispatched()
			wall := parallel.WallTimer()
			res := workload.RunPmake(h, workload.DefaultPmake(), 120*sim.Second)
			ev := int64(h.Eng.Dispatched() - ev0)
			return part{
				pmakeSec:  res.Elapsed.Seconds(),
				rpcCalls:  rpcCallCount(h) - calls0,
				events:    ev,
				wallEvSec: float64(ev) / wall(),
			}
		case 1:
			// scale_sharded: the same pmake on the sharded engine. Event
			// counts come from the cluster (all shards), so the perf gate
			// covers the sharded dispatch path from day one.
			h := bootScale(cells, workload.AutoShards(cells))
			ev0 := h.Clu.Dispatched()
			wall := parallel.WallTimer()
			res := workload.RunPmake(h, workload.DefaultPmake(), 120*sim.Second)
			ev := int64(h.Clu.Dispatched() - ev0)
			return part{
				pmakeSec:  res.Elapsed.Seconds(),
				events:    ev,
				wallEvSec: float64(ev) / wall(),
			}
		case 2:
			h := bootScale(cells, 0)
			cfg := workload.DefaultOcean()
			cfg.Threads = cells // one thread per CPU on the scaled machine
			res := workload.RunOcean(h, cfg, 120*sim.Second)
			return part{oceanSec: res.Elapsed.Seconds()}
		default:
			s := scaleScenarios[i%unitsPer-3]
			return part{row: faultinject.RunScenarioCellsWith(parallel.Default(), s, trials, cells)}
		}
	})

	var out []ScaleRow
	for i, cells := range cellCounts {
		p := parts[i*unitsPer : (i+1)*unitsPer]
		row := ScaleRow{
			Cells:                   cells,
			PmakeSec:                p[0].pmakeSec,
			OceanSec:                p[2].oceanSec,
			RPCCalls:                p[0].rpcCalls,
			Events:                  p[0].events,
			WallEventsPerSec:        p[0].wallEvSec,
			ShardedPmakeSec:         p[1].pmakeSec,
			ShardedEvents:           p[1].events,
			ShardedWallEventsPerSec: p[1].wallEvSec,
			Contained:               true,
		}
		if row.PmakeSec > 0 {
			row.RPCPerSec = float64(row.RPCCalls) / row.PmakeSec
			row.EventsPerSec = float64(row.Events) / row.PmakeSec
		}
		if row.ShardedPmakeSec > 0 {
			row.ShardedEventsPerSec = float64(row.ShardedEvents) / row.ShardedPmakeSec
		}
		var detect, recov float64
		n := 0
		for _, u := range p[3:] {
			row.FaultTrials += u.row.Tests
			if !u.row.AllOK {
				row.Contained = false
			}
			if u.row.AvgDetect > 0 {
				detect += u.row.AvgDetect
				recov += u.row.AvgRecov
				n++
			}
		}
		if n > 0 {
			row.DetectMs = detect / float64(n)
			row.RecoveryMs = recov / float64(n)
		}
		out = append(out, row)
	}
	return out
}

// bootScale boots the standard scaled Hive for a cell count: the paper's
// machine when the count divides it, one node per cell beyond that.
// shards < 1 forces the classic engine regardless of the process default;
// positive counts boot the sharded engine with that many workers.
func bootScale(cells, shards int) *core.Hive {
	return workload.BootHiveWith(cells, core.DefaultConfig().Seed, func(cfg *core.Config) {
		if shards > 0 {
			cfg.Shards = shards
		} else {
			cfg.Shards = -1
		}
	})
}

// rpcCallCount sums the cells' outbound intercell call counters.
func rpcCallCount(h *core.Hive) int64 {
	var n int64
	for _, c := range h.Cells {
		n += c.EP.Metrics.Counter("rpc.calls").Value()
	}
	return n
}

// FormatScale renders the scaling table. Only deterministic (virtual-time)
// values appear here so the table is byte-identical at every -j and -shards;
// the wall-clock dispatch rates of the two engine modes live in the
// ScaleRow's WallEventsPerSec fields and are reported separately.
func FormatScale(rows []ScaleRow) *stats.Table {
	tb := stats.NewTable("Scaling — workloads and fault campaign vs cell count",
		"cells", "pmake s", "ocean s", "RPC calls", "RPC/s", "events", "events/s",
		"sharded ev", "sharded ev/s",
		"detect ms", "recov ms", "contained")
	for _, r := range rows {
		tb.AddRow(fmt.Sprint(r.Cells),
			fmt.Sprintf("%.2f", r.PmakeSec),
			fmt.Sprintf("%.2f", r.OceanSec),
			fmt.Sprint(r.RPCCalls),
			fmt.Sprintf("%.0f", r.RPCPerSec),
			fmt.Sprint(r.Events),
			fmt.Sprintf("%.0f", r.EventsPerSec),
			fmt.Sprint(r.ShardedEvents),
			fmt.Sprintf("%.0f", r.ShardedEventsPerSec),
			fmt.Sprintf("%.1f", r.DetectMs),
			fmt.Sprintf("%.1f", r.RecoveryMs),
			fmt.Sprintf("%v", r.Contained))
	}
	return tb
}
