package harness

import (
	"fmt"
	"testing"
)

func TestQuickHarness(t *testing.T) {
	c := RunCareful41()
	fmt.Printf("careful41: read=%.2fus (1.16) rpc=%.2fus (7.2)\n", c.CarefulReadUs, c.NullRPCUs)
	r := RunRPC6()
	fmt.Printf("rpc6: null=%.1f (7.2) real=%.1f (9.6) oversize=%.1f (17.3) queued=%.1f (34)\n",
		r.NullUs, r.RealUs, r.OversizeUs, r.QueuedUs)
	t52 := RunTable52()
	fmt.Printf("t52: local=%.1f (6.9) remote=%.1f (50.7) breakdownTotal=%.1f\n",
		t52.LocalUs, t52.RemoteUs, t52.Components.MeanTotal())
	t73 := RunTable73()
	fmt.Printf("t73: read %.1f/%.1f (65/76.2) write %.1f/%.1f (83.7/87.3) open %.0f/%.0f (148/580) fault %.1f/%.1f\n",
		t73.Read4MBLocalMs, t73.Read4MBRemoteMs, t73.Write4MBLocalMs, t73.Write4MBRemoteMs,
		t73.OpenLocalUs, t73.OpenRemoteUs, t73.FaultLocalUs, t73.FaultRemoteUs)
	hw := RunHardware81()
	fmt.Printf("t81: %+v\n", *hw)
	sc := RunScalability([]int{1, 2, 4, 8})
	for _, p := range sc {
		fmt.Printf("scal: cpus=%d smp=%d hive=%d ratio=%.2f\n", p.CPUs, p.SMPOps, p.HiveOps, float64(p.HiveOps)/float64(p.SMPOps))
	}
	ac := RunAgreementComparison()
	fmt.Printf("agree: oracle=%.1fms vote=%.1fms ok=%v\n", ac.OracleDetectMs, ac.VoteDetectMs, ac.VoteOK)
}
