package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/machine"
	"repro/internal/membership"
	"repro/internal/parallel"
	"repro/internal/proc"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/smpos"
	"repro/internal/stats"
	"repro/internal/vm"
)

// Table74Row is one fault-injection scenario's aggregate.
type Table74Row = faultinject.CampaignRow

// RunTable74 executes the §7.4 campaign. scale ∈ (0,1] shrinks the trial
// counts proportionally for quick runs (1.0 = the paper's 49+20 trials).
func RunTable74(scale float64) []*Table74Row {
	scenarios := []faultinject.Scenario{
		faultinject.NodeFailProcCreate,
		faultinject.NodeFailCOWSearch,
		faultinject.NodeFailRandom,
		faultinject.CorruptAddrMap,
		faultinject.CorruptCOWTree,
	}
	// Flatten the campaign to (scenario, trial) units so the worker pool
	// load-balances across scenario boundaries; aggregate per scenario
	// afterwards in trial order (identical at any worker count).
	counts := make([]int, len(scenarios))
	total := 0
	for i, s := range scenarios {
		n := int(float64(s.PaperTests())*scale + 0.5)
		if n < 1 {
			n = 1
		}
		counts[i] = n
		total += n
	}
	trials := parallel.Map(parallel.Default(), total, func(i int) *faultinject.TrialResult {
		for si, n := range counts {
			if i < n {
				return faultinject.RunTrial(scenarios[si], i)
			}
			i -= n
		}
		panic("unreachable")
	})
	var rows []*Table74Row
	off := 0
	for si, s := range scenarios {
		rows = append(rows, faultinject.Aggregate(s, trials[off:off+counts[si]]))
		off += counts[si]
	}
	return rows
}

// RunRebootLoop executes the availability-loop campaign: the three reboot
// scenarios that close the fault → reboot → rejoin → full-capacity loop.
// scale ∈ (0,1] shrinks the trial counts for quick runs. The aggregates
// carry time-to-restored-full-capacity (AvgRestore/P99Restore) and the p99
// workload-op latency measured while the loop ran (AvgLoopP99).
func RunRebootLoop(scale float64) []*faultinject.CampaignRow {
	scenarios := []faultinject.Scenario{
		faultinject.FaultDuringReintegration,
		faultinject.CrashLoop,
		faultinject.RollingReboot,
	}
	counts := make([]int, len(scenarios))
	total := 0
	for i, s := range scenarios {
		n := int(float64(s.DefaultTests())*scale + 0.5)
		if n < 1 {
			n = 1
		}
		counts[i] = n
		total += n
	}
	trials := parallel.Map(parallel.Default(), total, func(i int) *faultinject.TrialResult {
		for si, n := range counts {
			if i < n {
				return faultinject.RunTrial(scenarios[si], i)
			}
			i -= n
		}
		panic("unreachable")
	})
	var rows []*faultinject.CampaignRow
	off := 0
	for si, s := range scenarios {
		rows = append(rows, faultinject.Aggregate(s, trials[off:off+counts[si]]))
		off += counts[si]
	}
	return rows
}

// FormatRebootLoop renders the availability-loop campaign table.
func FormatRebootLoop(rows []*faultinject.CampaignRow) string {
	tb := stats.NewTable("availability loop — reboot, rejoin, restore",
		"scenario", "trials", "all ok", "avg restore (ms)", "p99 restore (ms)", "loop p99 op (ms)")
	for _, r := range rows {
		restore, p99 := FormatMs(r.AvgRestore), FormatMs(r.P99Restore)
		if r.AvgRestore == 0 {
			// The bounded crash loop never restores; the row carries only
			// the during-loop latency.
			restore, p99 = "—", "—"
		}
		tb.AddRow(r.Name, fmt.Sprintf("%d", r.Tests), fmt.Sprint(r.AllOK),
			restore, p99, FormatMs(r.AvgLoopP99))
	}
	return tb.String()
}

// Hardware81 exercises every Table 8.1 hardware feature and reports which
// are functional.
type Hardware81 struct {
	Firewall    bool
	FaultModel  bool
	RemapRegion bool
	SIPS        bool
	Cutoff      bool
}

// RunHardware81 executes the feature self-tests.
func RunHardware81() *Hardware81 {
	out := &Hardware81{}
	h := twoCell()
	m := h.M
	runOn(h, 0, func(p *proc.Process, t *sim.Task) {
		proc0 := h.Cells[0].Sched.Procs[0]
		// Generate SIPS traffic (a ping RPC) before checking the counter.
		vet1(h.Cells[0].EP.Call(t, proc0, 1, rpcPingProc, nil, rpc.CallOpts{}))
		lo1, _ := m.NodePages(1)
		// Firewall: remote write denied, local allowed.
		errRemote := m.WritePage(t, proc0, lo1, 1)
		lo0, _ := m.NodePages(0)
		errLocal := m.WritePage(t, proc0, lo0, 1)
		out.Firewall = errRemote != nil && errLocal == nil
		// Remap region: same architectural page, node-private frames.
		out.RemapRegion = m.RemapTranslate(m.Procs[0], 0) != m.RemapTranslate(m.Procs[1], 0)
		// SIPS: delivered earlier throughout boot; check the counter.
		out.SIPS = m.Metrics.Counter("sips.sends").Value() > 0
	})
	// Fault model: failed node gives bus errors, not stalls.
	m.Nodes[1].FailStop()
	runOn(h, 0, func(p *proc.Process, t *sim.Task) {
		proc0 := h.Cells[0].Sched.Procs[0]
		lo1, _ := m.NodePages(1)
		_, _, err := m.ReadPage(t, proc0, lo1)
		out.FaultModel = err != nil
	})
	// Cutoff.
	h2 := twoCell()
	h2.Cells[1].Panic("test")
	out.Cutoff = h2.M.Nodes[1].CutOff()
	return out
}

// Scalability runs the §1 scalability ablation: kernel-intensive load on a
// shared-everything SMP OS vs the multicellular Hive, at growing CPU
// counts. Returned map: cpus -> (smpOps, hiveOps).
type ScalabilityPoint struct {
	CPUs    int
	SMPOps  int64
	HiveOps int64
}

// RunScalability executes the ablation. Each (cpu count, OS design) probe
// is an independent boot, so the 2×len(cpuCounts) units fan out across the
// process-wide parallel runner.
func RunScalability(cpuCounts []int) []ScalabilityPoint {
	const (
		opService = 80 * sim.Microsecond
		burst     = 150 * sim.Microsecond
		duration  = 300 * sim.Millisecond
		procsPer  = 3
	)
	ops := parallel.Map(parallel.Default(), 2*len(cpuCounts), func(i int) int64 {
		n := cpuCounts[i/2]
		if i%2 == 0 {
			sys := smpos.Boot(n, smpos.DefaultConfig())
			return sys.ThroughputProbe(procsPer*n, opService, burst, duration)
		}
		cfg := core.DefaultConfig()
		cfg.Machine.Nodes = n
		cfg.Cells = n
		cfg.Mounts = nil
		h := core.Boot(cfg)
		return smpos.HiveThroughputProbe(h, procsPer, opService, burst, duration,
			smpos.DefaultConfig().LockedFraction)
	})
	var out []ScalabilityPoint
	for i, n := range cpuCounts {
		out = append(out, ScalabilityPoint{CPUs: n, SMPOps: ops[2*i], HiveOps: ops[2*i+1]})
	}
	return out
}

// AgreementComparison contrasts oracle and voting agreement (an ablation
// on the paper's §4.3 choice to defer the real protocol).
type AgreementComparison struct {
	OracleDetectMs float64
	VoteDetectMs   float64
	VoteOK         bool
}

// RunAgreementComparison fails one cell under each mode.
func RunAgreementComparison() *AgreementComparison {
	out := &AgreementComparison{}
	run := func(mode membership.AgreementMode) (float64, bool) {
		cfg := core.DefaultConfig()
		cfg.Machine.MemPerNodeMB = 8
		cfg.Agreement = mode
		h := core.Boot(cfg)
		h.Run(50 * sim.Millisecond)
		at := h.Eng.Now()
		h.Cells[2].FailHardware()
		ok := h.RunUntil(func() bool { return h.Coord.LiveCount() == 3 }, h.Eng.Now()+2*sim.Second)
		return (h.Coord.LastDetectAt - at).Millis(), ok
	}
	out.OracleDetectMs, _ = run(membership.Oracle)
	out.VoteDetectMs, out.VoteOK = run(membership.Vote)
	return out
}

// DetectionIntervalSweep measures the §4.3 tradeoff: clock-check frequency
// vs window of vulnerability (detection latency).
type DetectionPoint struct {
	CheckEveryMs float64
	DetectMs     float64
}

// RunDetectionSweep measures detection latency across injection phases at
// the default clock-check interval.
func RunDetectionSweep(trials int) (avg, max float64) {
	return RunDetectionSweepAt(0, trials)
}

// RunDetectionSweepAt runs the sweep with an explicit clock-check period
// (in ticks) — the real §4.3 frequency/vulnerability curve. Trials are
// independent boots and run on the process-wide parallel runner.
func RunDetectionSweepAt(checkEvery, trials int) (avg, max float64) {
	ds := parallel.Map(parallel.Default(), trials, func(i int) float64 {
		cfg := core.DefaultConfig()
		cfg.Machine.MemPerNodeMB = 4
		cfg.Seed = int64(31 + i*17)
		cfg.ClockCheckEvery = checkEvery
		h := core.Boot(cfg)
		h.Run(sim.Time(20+i*7) * sim.Millisecond)
		at := h.Eng.Now()
		h.Cells[1].FailHardware()
		h.RunUntil(func() bool { return h.Coord.LiveCount() == 3 }, h.Eng.Now()+2*sim.Second)
		return (h.Coord.LastDetectAt - at).Millis()
	})
	var sum float64
	for _, d := range ds {
		sum += d
		if d > max {
			max = d
		}
	}
	return sum / float64(trials), max
}

// DetectionCurve sweeps check periods and returns (periodMs, avgDetectMs)
// pairs — the vulnerability-window curve of §4.3.
func DetectionCurve(trials int) []DetectionPoint {
	var out []DetectionPoint
	for _, every := range []int{1, 2, 5, 10} {
		avg, _ := RunDetectionSweepAt(every, trials)
		out = append(out, DetectionPoint{
			CheckEveryMs: float64(every) * membership.TickInterval.Millis(),
			DetectMs:     avg,
		})
	}
	return out
}

// SIPSvsIPI measures the §6 hardware-support argument: a null round trip
// over SIPS vs the same exchange layered on bare interprocessor interrupts,
// where the receiver must poll one producer-consumer queue per sender in
// shared memory and the queue data ping-pongs between caches.
type SIPSvsIPI struct {
	SIPSUs float64
	IPIUs  float64
}

// RunSIPSvsIPI executes the measurement.
func RunSIPSvsIPI() *SIPSvsIPI {
	out := &SIPSvsIPI{}
	h := twoCell()
	m := h.M
	runOn(h, 0, func(p *proc.Process, t *sim.Task) {
		proc0 := h.Cells[0].Sched.Procs[0]
		const n = 64

		// SIPS round trip: the null RPC.
		start := t.Now()
		for i := 0; i < n; i++ {
			vet1(h.Cells[0].EP.Call(t, proc0, 1, rpcPingProc, nil, rpc.CallOpts{}))
		}
		out.SIPSUs = (t.Now() - start).Micros() / n

		// IPI round trip: launch + queue write (remote misses for the
		// ping-ponging queue line), bare IPI, receiver polls per-sender
		// queues (modelled inside SendIPI), then the reverse path.
		start = t.Now()
		for i := 0; i < n; i++ {
			done := &sim.Future{}
			proc0.Use(t, rpc.ClientSendStub)
			m.RemoteMiss(t, proc0) // enqueue request into the shared queue
			m.SendIPI(t, proc0, 1, func() {
				// The receiver found the request after its poll; it
				// enqueues the reply (another ping-ponging line) and
				// fires the reply IPI.
				h.Eng.After(m.Cfg.UncachedNs+m.Cfg.MissNs+m.Cfg.IPINs, func() {
					// The client's reply interrupt polls its own
					// per-sender queues.
					m.Procs[0].Interrupt(m.Cfg.MissNs*sim.Time(m.Cfg.Nodes), func() {
						done.Set(nil, nil)
					})
				})
			})
			done.Wait(t)
			m.RemoteMiss(t, proc0) // read the reply line
			proc0.Use(t, rpc.ClientRecvStub)
		}
		out.IPIUs = (t.Now() - start).Micros() / n
	})
	return out
}

// COWLookupComparison is the §5.3 ablation: the shared-memory COW search
// (careful reference protocol) vs the conventional RPC walk. The paper
// concludes the RPC approach "would be simpler and probably just as fast";
// this measures both, for a hit in a cross-cell tree.
type COWLookupComparison struct {
	SharedMemUs float64
	RPCUs       float64
	TouchSMUs   float64 // end-to-end Touch incl. page binding
	TouchRPCUs  float64
}

// RunCOWLookupComparison executes the measurement.
func RunCOWLookupComparison() *COWLookupComparison {
	out := &COWLookupComparison{}
	h := twoCell()
	// Parent on cell 0 writes two pages, forks a child leaf to cell 1.
	runOn(h, 0, func(p *proc.Process, t *sim.Task) {
		if err := p.TouchAnon(t, 7, true); err != nil {
			return
		}
		if err := p.TouchAnon(t, 8, true); err != nil {
			return
		}
		_, childLeaf, err := h.Cells[0].COW.Fork(t, p.Leaf, 1)
		if err != nil {
			return
		}
		// Measure on cell 1 via a dedicated process there.
		done := false
		h.Cells[1].Procs.Spawn("measure", 801, func(cp *proc.Process, ct *sim.Task) {
			defer func() { done = true }()
			const n = 64
			mg := h.Cells[1].COW
			start := ct.Now()
			for i := 0; i < n; i++ {
				vet2(mg.LookupVia(ct, 0 /* SharedMemory */, childLeaf, 7))
			}
			out.SharedMemUs = (ct.Now() - start).Micros() / n
			start = ct.Now()
			for i := 0; i < n; i++ {
				vet2(mg.LookupVia(ct, 1 /* RPCWalk */, childLeaf, 7))
			}
			out.RPCUs = (ct.Now() - start).Micros() / n

			// End-to-end Touch (lookup + first bind + access) per mode,
			// on distinct pages so both pay the import RPC.
			start = ct.Now()
			if pf, err := mg.Touch(ct, childLeaf, 7, false); err == nil {
				out.TouchSMUs = (ct.Now() - start).Micros()
				pf.Refs++ // hold the bind out of the other measurement
				h.Cells[1].VM.Unref(ct, pf)
			}
			mg.Mode = 1 // RPCWalk
			start = ct.Now()
			if pf, err := mg.Touch(ct, childLeaf, 8, false); err == nil {
				out.TouchRPCUs = (ct.Now() - start).Micros()
				pf.Refs++
				h.Cells[1].VM.Unref(ct, pf)
			}
			mg.Mode = 0
		})
		for !done {
			t.Sleep(sim.Millisecond)
		}
	})
	return out
}

// FormatTable74 renders the campaign as Table 7.4.
func FormatTable74(rows []*Table74Row) string {
	tb := stats.NewTable("Table 7.4 — fault injection results",
		"scenario", "tests", "contained", "avg detect (ms)", "max detect (ms)", "avg recovery (ms)")
	for _, r := range rows {
		tb.AddRow(r.Scenario.String(), fmt.Sprint(r.Tests), fmt.Sprint(r.AllOK),
			fmt.Sprintf("%.1f", r.AvgDetect), fmt.Sprintf("%.1f", r.MaxDetect),
			fmt.Sprintf("%.1f", r.AvgRecov))
	}
	return tb.String()
}

// RunFirewallGranularity measures the §4.2 representation ablation: with a
// page write-shared between two cells, how many wild writes from the other
// cells does each firewall design block?
func RunFirewallGranularity() (bitVector, singleBit int64) {
	run := func(mode machine.FirewallMode) int64 {
		e := sim.NewEngine(17)
		cfg := machine.DefaultConfig()
		cfg.Nodes = 8
		cfg.MemPerNodeMB = 1
		cfg.FirewallMode = mode
		m := machine.New(e, cfg)
		lo, _ := m.NodePages(0)
		var blocked int64
		e.Go("t", func(t *sim.Task) {
			// Pages 0..63 of node 0, each write-shared with cell 1.
			for p := machine.PageNum(0); p < 64; p++ {
				m.GrantWrite(t, m.Procs[0], lo+p, m.NodeProcMask(1))
			}
			// Wild writes from every *other* node.
			for n := 2; n < 8; n++ {
				for p := machine.PageNum(0); p < 64; p++ {
					if !m.WildWrite(m.Procs[n], lo+p) {
						blocked++
					}
				}
			}
		})
		e.Run(0)
		return blocked
	}
	return run(machine.FirewallBitVector), run(machine.FirewallSingleBit)
}

// CCNOW runs the §8 CC-NOW direction: the same Hive on a machine whose
// remote memory is reached over a local-area network (microseconds, not
// hundreds of nanoseconds). Fault containment must be unaffected; remote
// operation latency stretches with the interconnect.
type CCNOW struct {
	FaultLocalUs    float64 // page fault, local (unchanged)
	FaultRemoteUs   float64 // page fault to the data home over the NOW link
	DetectMs        float64 // failure detection latency
	Contained       bool
	RemoteLatencyUs float64 // the configured NOW link latency
}

// RunCCNOW executes the experiment with a 5 µs remote memory latency.
func RunCCNOW() *CCNOW {
	out := &CCNOW{RemoteLatencyUs: 5}
	cfg := core.DefaultConfig()
	cfg.Machine.Nodes = 2
	cfg.Cells = 2
	cfg.Machine.RemoteMissNs = 5 * sim.Microsecond
	cfg.Mounts = nil
	cfg.Seed = 23
	h := core.Boot(cfg)

	runOn(h, 1, func(p *proc.Process, t *sim.Task) {
		hd := vet1(h.Cells[1].FS.Create(t, "/now/file"))
		vet(h.Cells[1].FS.Write(t, hd, 64, 3))
	})
	runOn(h, 0, func(p *proc.Process, t *sim.Task) {
		key := fileKey(h, 1, "/now/file")
		// Local baseline.
		hl := vet1(h.Cells[0].FS.Create(t, "/l"))
		vet(h.Cells[0].FS.Write(t, hl, 1, 4))
		lpl := vm.LogicalPage{Obj: vm.ObjID{Kind: vm.FileObj, Home: 0, Num: fileKey(h, 0, "/l")}}
		pf, _ := h.Cells[0].VM.Fault(t, lpl, false)
		start := t.Now()
		for i := 0; i < 32; i++ {
			pf2, _ := h.Cells[0].VM.Fault(t, lpl, false)
			h.Cells[0].VM.Unref(t, pf2)
		}
		out.FaultLocalUs = (t.Now() - start).Micros() / 32
		h.Cells[0].VM.Unref(t, pf)
		// Remote over the NOW link.
		start = t.Now()
		for off := int64(0); off < 32; off++ {
			lp := vm.LogicalPage{Obj: vm.ObjID{Kind: vm.FileObj, Home: 1, Num: key}, Off: off}
			rpf, err := h.Cells[0].VM.Fault(t, lp, false)
			if err != nil {
				continue
			}
			rpf.Refs++
			h.Cells[0].VM.Unref(t, rpf)
		}
		out.FaultRemoteUs = (t.Now() - start).Micros() / 32
	})

	// Containment across the NOW link.
	at := h.Eng.Now()
	h.Cells[1].FailHardware()
	out.Contained = h.RunUntil(func() bool { return h.Coord.LiveCount() == 1 }, h.Eng.Now()+2*sim.Second)
	out.DetectMs = (h.Coord.LastDetectAt - at).Millis()
	return out
}
