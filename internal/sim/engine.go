// Package sim provides a deterministic, process-oriented discrete-event
// simulation engine. It is the substrate on which the machine model and the
// Hive kernels execute: simulated time is virtual (nanoseconds), concurrency
// is cooperative (exactly one task or event callback runs at a time), and
// every run with the same seed and inputs produces the same event order.
//
// The engine plays the role SimOS played for the original Hive work: it lets
// "kernel" code written in ordinary blocking style (RPCs, lock waits, disk
// I/O) execute against a virtual clock.
//
// Engines are fully self-contained: two engines share no state, so
// independent simulations may run concurrently on separate OS threads
// (see internal/parallel) with bit-identical per-engine results.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Time is a point in virtual time, in nanoseconds since boot.
type Time int64

// Duration aliases for readability when building latency models.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// String formats a Time as a human-readable duration.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns the time as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the time as a float64 number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns the time as a float64 number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Engine is a discrete-event simulator. All mutation happens on a single
// logical thread: either the engine loop itself (running event callbacks) or
// the one task the engine has handed control to. No locking is required in
// simulation code.
type Engine struct {
	now        Time
	events     eventHeap
	nLive      int // scheduled, non-cancelled events (cancellation is lazy)
	free       []*Event
	seq        uint64
	rng        *rand.Rand
	cur        *Task
	live       []*Task // all non-done tasks, for deadlock diagnostics
	nTasks     int
	stopped    bool
	failure    any    // panic value escaped from a task
	dispatched uint64 // total events fired since boot

	// Sharded mode (see cluster.go). A free-standing engine has clu == nil
	// and behaves exactly as before; a shard engine is driven by its
	// Cluster's window loop instead of Run.
	clu          *Cluster
	id           int  // shard id: 0 = global, 1..N = cells
	running      bool // this shard's window is executing on the current goroutine
	pendingCross map[crossKey]*Event

	// Trace, if non-nil, receives a line for every dispatched event.
	// Used by determinism tests and debugging.
	Trace func(at Time, what string)
}

// NewEngine returns an engine with virtual time 0 and a PRNG seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic PRNG. It must only be used from
// simulation context (tasks or event callbacks) to preserve determinism.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// schedule inserts an event at absolute time t (clamped to now), drawing
// from the freelist when possible.
func (e *Engine) schedule(t Time, fn func()) *Event {
	if e.clu != nil {
		t = e.clu.guardSchedule(e, t)
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = Event{engine: e, at: t, seq: e.seq, fn: fn, index: -1}
	} else {
		ev = &Event{engine: e, at: t, seq: e.seq, fn: fn, index: -1}
	}
	heap.Push(&e.events, ev)
	e.nLive++
	return ev
}

// atOwned schedules an engine-owned event: the pointer is never handed to
// simulation code, so the engine recycles it through the freelist as soon
// as it fires. All internal timers (task wakes, sleeps) go through here.
func (e *Engine) atOwned(t Time, fn func()) *Event {
	ev := e.schedule(t, fn)
	ev.owned = true
	return ev
}

// recycle puts a dead event (not in the heap, no outstanding references)
// back on the freelist.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

// release relinquishes the caller's reference to an event that has either
// fired or been cancelled. If it already left the heap it is recycled now;
// if it is still queued (lazily cancelled) the pop path reclaims it.
func (e *Engine) release(ev *Event) {
	if ev.index >= 0 {
		ev.owned = true
		return
	}
	if !ev.owned { // owned events are recycled by the dispatch loop
		e.recycle(ev)
	}
}

// At schedules fn to run at absolute virtual time t (clamped to now). The
// returned Event stays valid indefinitely: it is never recycled, so Cancel,
// Reschedule, and Pending are safe at any later point.
func (e *Engine) At(t Time, fn func()) *Event {
	return e.schedule(t, fn)
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop halts the engine loop after the current event completes. On a
// cluster shard it also halts the cluster at the next window barrier.
func (e *Engine) Stop() {
	e.stopped = true
	if e.clu != nil {
		e.clu.stopped.Store(true)
	}
}

// ShardID returns the engine's shard id within its cluster (0 = global),
// or 0 for a free-standing engine.
func (e *Engine) ShardID() int { return e.id }

// Cluster returns the cluster this engine belongs to, or nil.
func (e *Engine) Cluster() *Cluster { return e.clu }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Run processes events until the queue is empty, the deadline passes, or
// Stop is called. A deadline of 0 means run until idle. It panics if a task
// panicked (propagating the original value) and returns the final time.
func (e *Engine) Run(deadline Time) Time {
	if e.clu != nil {
		panic("sim: engine is a cluster shard; drive it with Cluster.Run")
	}
	for !e.stopped && len(e.events) > 0 {
		ev := e.events[0]
		if ev.cancelled { // lazily-cancelled: discard without firing
			heap.Pop(&e.events)
			if ev.owned {
				e.recycle(ev)
			}
			continue
		}
		if deadline > 0 && ev.at > deadline {
			e.now = deadline
			break
		}
		heap.Pop(&e.events)
		e.nLive--
		e.dispatched++
		e.now = ev.at
		fn, owned := ev.fn, ev.owned
		fn()
		if owned {
			e.recycle(ev)
		}
		if e.failure != nil {
			panic(e.failure)
		}
	}
	if deadline > 0 && e.now < deadline && !e.stopped {
		e.now = deadline
	}
	return e.now
}

// Step processes a single event, returning false when the queue is empty.
func (e *Engine) Step() bool {
	if e.clu != nil {
		panic("sim: engine is a cluster shard; drive it with Cluster.Run")
	}
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.cancelled {
			if ev.owned {
				e.recycle(ev)
			}
			continue
		}
		e.nLive--
		e.dispatched++
		e.now = ev.at
		fn, owned := ev.fn, ev.owned
		fn()
		if owned {
			e.recycle(ev)
		}
		if e.failure != nil {
			panic(e.failure)
		}
		return true
	}
	return false
}

// Dispatched returns the total number of events fired since boot — the
// deterministic work measure the scaling suite reports as events/sec.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// Pending returns the number of scheduled (non-cancelled) events. It is
// O(1): the engine keeps the count current across push, pop, and cancel.
func (e *Engine) Pending() int { return e.nLive }

// LiveTasks returns the number of tasks that have been started and have not
// yet finished.
func (e *Engine) LiveTasks() int { return e.nTasks }

// StuckTasks returns the names of live tasks that are parked with no pending
// wake event; useful when diagnosing a simulated deadlock after Run returns
// with live tasks remaining.
func (e *Engine) StuckTasks() []string {
	var names []string
	for _, t := range e.live {
		if !t.done && t.parked {
			names = append(names, t.name)
		}
	}
	sort.Strings(names)
	return names
}

// DumpState returns a human-readable snapshot for debugging.
func (e *Engine) DumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%v events=%d tasks=%d\n", e.now, e.Pending(), e.nTasks)
	for _, t := range e.live {
		if !t.done {
			fmt.Fprintf(&b, "  task %q parked=%v killed=%v\n", t.name, t.parked, t.killed)
		}
	}
	return b.String()
}

func (e *Engine) trace(what string) {
	if e.Trace != nil {
		e.Trace(e.now, what)
	}
}

// Event is a scheduled callback. Events may be cancelled or rescheduled
// before they fire; both are used to model interrupt time-stealing.
type Event struct {
	engine    *Engine
	at        Time
	seq       uint64
	fn        func()
	index     int
	cancelled bool
	owned     bool // engine-owned: recycled once it leaves the heap
}

// When returns the time the event is scheduled to fire.
func (ev *Event) When() Time { return ev.at }

// Cancel prevents the event from firing. It reports whether the event was
// still pending. Cancellation is lazy: the event stays in the queue and is
// discarded when it reaches the front, so Cancel is O(1) instead of the
// O(log n) heap splice it used to be.
func (ev *Event) Cancel() bool {
	if ev.cancelled || ev.index < 0 {
		ev.cancelled = true
		return false
	}
	ev.cancelled = true
	e := ev.engine
	e.nLive--
	// Amortized cleanup: when over half the queue is cancelled garbage,
	// rebuild it so pushes stay O(log live) rather than O(log total).
	if len(e.events) >= 64 && e.nLive < len(e.events)/2 {
		e.compact()
	}
	return true
}

// Reschedule moves a still-pending event to a new absolute time. It reports
// whether the event was still pending (a fired or cancelled event cannot be
// rescheduled).
func (ev *Event) Reschedule(t Time) bool {
	if ev.cancelled || ev.index < 0 {
		return false
	}
	if t < ev.engine.now {
		t = ev.engine.now
	}
	ev.at = t
	heap.Fix(&ev.engine.events, ev.index)
	return true
}

// Pending reports whether the event is still scheduled.
func (ev *Event) Pending() bool { return !ev.cancelled && ev.index >= 0 }

// compact drops cancelled events from the queue and re-establishes the heap
// invariant. O(n), amortized against the cancellations that triggered it.
func (e *Engine) compact() {
	keep := e.events[:0]
	for _, ev := range e.events {
		if ev.cancelled {
			ev.index = -1
			if ev.owned {
				e.recycle(ev)
			}
		} else {
			keep = append(keep, ev)
		}
	}
	for i := len(keep); i < len(e.events); i++ {
		e.events[i] = nil
	}
	for i, ev := range keep {
		ev.index = i
	}
	e.events = keep
	heap.Init(&e.events)
}

// eventHeap orders events by (time, sequence), giving FIFO order among
// simultaneous events — the property that makes runs deterministic.
// It implements container/heap.Interface.
type eventHeap []*Event

// Len implements heap.Interface.
func (h eventHeap) Len() int { return len(h) }

// Less implements heap.Interface: earlier time, then earlier sequence.
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// Swap implements heap.Interface.
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

// Push implements heap.Interface.
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

// Pop implements heap.Interface.
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
