package sim

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkEngineEventsPerSec measures wall-clock event throughput on the
// mix the Hive kernels actually generate: plain timers (Sleep), timeouts
// that expire (BlockTimeout), and timeouts that are cancelled by an early
// wake — the pattern of every RPC call. The events/sec metric is the upper
// bound on how much virtual time the full simulation can cover per second
// of real time.
func BenchmarkEngineEventsPerSec(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	var worker *Task
	worker = e.Go("worker", func(t *Task) {
		for i := 0; i < b.N; i++ {
			t.Sleep(10)            // timer that fires
			if t.BlockTimeout(5) { // timeout that expires
				_ = i
			}
		}
	})
	e.Go("waker", func(t *Task) {
		// Every 40ns wake the worker if it is parked: some BlockTimeouts
		// get cancelled early, exercising the lazy-cancel path.
		for !worker.Done() {
			t.Sleep(40)
			worker.WakeSoon()
		}
	})
	start := time.Now()
	b.ResetTimer()
	e.Run(0)
	b.StopTimer()
	if el := time.Since(start).Seconds(); el > 0 {
		// ~3 dispatched events per iteration (sleep wake, timeout, waker).
		b.ReportMetric(3*float64(b.N)/el, "events/sec")
	}
}

// BenchmarkEngineSharded measures event throughput of the sharded engine
// across shard counts and cross-shard traffic ratios. Each shard runs a
// dense local event load; a fraction of events additionally post a
// mailbox send to the next shard with the minimum legal delay (the
// lookahead), the worst case for merge overhead. Workers = shards, so on
// a multi-core host this also measures parallel speedup; events/sec is
// the headline metric either way.
func BenchmarkEngineSharded(b *testing.B) {
	const lookahead = Time(700) // the FLASH remote-miss floor the stack uses
	for _, shards := range []int{1, 4, 16} {
		for _, crossPct := range []int{0, 10, 50} {
			name := fmt.Sprintf("shards=%d/cross=%dpct", shards, crossPct)
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				c := NewCluster(1, shards, lookahead)
				c.SetWorkers(shards)
				perShard := b.N/shards + 1
				for id := 1; id <= shards; id++ {
					id := id
					e := c.Shard(id)
					dst := c.Shard(1 + id%shards)
					e.Go("load", func(t *Task) {
						for i := 0; i < perShard; i++ {
							t.Sleep(Time(30 + i%17))
							if crossPct > 0 && i%100 < crossPct && dst != e {
								e.Send(dst, lookahead, func() {})
							}
						}
					})
				}
				start := time.Now()
				b.ResetTimer()
				c.Run(0)
				b.StopTimer()
				if el := time.Since(start).Seconds(); el > 0 {
					b.ReportMetric(float64(c.Dispatched())/el, "events/sec")
				}
			})
		}
	}
}

// BenchmarkEventCancel measures the schedule-then-cancel cycle that every
// completed-in-time RPC performs on its timeout timer.
func BenchmarkEventCancel(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	e.Go("driver", func(t *Task) {
		for i := 0; i < b.N; i++ {
			ev := e.After(1000, func() {})
			ev.Cancel()
			t.Sleep(1) // drain so the heap stays small
		}
	})
	b.ResetTimer()
	e.Run(0)
}

// BenchmarkPendingCount measures Engine.Pending with a deep event queue —
// the probe RunUntil-style drivers issue every step.
func BenchmarkPendingCount(b *testing.B) {
	e := NewEngine(1)
	for i := 0; i < 4096; i++ {
		e.At(Time(1000+i), func() {})
	}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		n += e.Pending()
	}
	if n == 0 {
		b.Fatal("no pending events")
	}
}

// BenchmarkTaskChurn measures task creation and exit — the removeLive path
// that fires once per process, RPC service task, and interrupt thread.
func BenchmarkTaskChurn(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	const liveSet = 256 // long-lived tasks, as in a booted 4-cell Hive
	for i := 0; i < liveSet; i++ {
		e.Go("resident", func(t *Task) { t.Block() })
	}
	e.Go("driver", func(t *Task) {
		for i := 0; i < b.N; i++ {
			done := false
			e.Go("ephemeral", func(t2 *Task) { done = true })
			for !done {
				t.Sleep(1)
			}
		}
	})
	b.ResetTimer()
	e.Run(0)
}
