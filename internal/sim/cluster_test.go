package sim

import (
	"fmt"
	"strings"
	"testing"
)

// clusterWorkload drives a 4-shard cluster through sleeps, RNG draws,
// cross-shard sends, global hops, and engine-context global requests, and
// returns a digest of everything observable. Every worker count must
// produce the same digest byte-for-byte.
func clusterWorkload(t *testing.T, workers int) string {
	t.Helper()
	const L = 100
	c := NewCluster(42, 4, L)
	c.SetWorkers(workers)

	// logs[id] is appended only by shard id's execution context (the G
	// phase for logs[0]), so parallel windows never share a slice.
	logs := make([][]string, 5)
	for id := 1; id <= 4; id++ {
		id := id
		e := c.Shard(id)
		e.Go(fmt.Sprintf("t%d", id), func(tk *Task) {
			for i := 0; i < 40; i++ {
				d := Time(e.Rand().Intn(37)) + 1
				tk.Sleep(d)
				logs[id] = append(logs[id], fmt.Sprintf("s%d i%d @%d", id, i, tk.Now()))
				switch i % 10 {
				case 3:
					dst := c.Shard(1 + id%4)
					from, iter := id, i
					e.Send(dst, L+d, func() {
						logs[dst.ShardID()] = append(logs[dst.ShardID()],
							fmt.Sprintf("x from%d i%d @%d", from, iter, dst.Now()))
					})
				case 6:
					from, iter := id, i
					e.Global(tk, func() {
						logs[0] = append(logs[0],
							fmt.Sprintf("g from%d i%d @%d", from, iter, tk.Now()))
					})
				case 9:
					from, iter := id, i
					e.SendGlobal(func() {
						logs[0] = append(logs[0],
							fmt.Sprintf("sg from%d i%d @%d", from, iter, c.Global().Now()))
					})
				}
			}
		})
	}
	c.Run(0)
	var b strings.Builder
	for id, lg := range logs {
		fmt.Fprintf(&b, "== shard %d (dispatched %d) ==\n", id, c.Shard(id).Dispatched())
		for _, line := range lg {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "now=%d total=%d\n", c.Now(), c.Dispatched())
	return b.String()
}

func TestClusterIdentityAcrossWorkers(t *testing.T) {
	ref := clusterWorkload(t, 1)
	for _, w := range []int{2, 4, 8} {
		if got := clusterWorkload(t, w); got != ref {
			t.Fatalf("workers=%d diverged from serial reference:\n--- serial ---\n%s\n--- workers=%d ---\n%s", w, ref, w, got)
		}
	}
}

func TestShardSeedIndependentOfShardCount(t *testing.T) {
	small := NewCluster(7, 4, 100)
	big := NewCluster(7, 8, 100)
	for id := 1; id <= 4; id++ {
		a, b := small.Shard(id).Rand(), big.Shard(id).Rand()
		for i := 0; i < 64; i++ {
			if x, y := a.Int63(), b.Int63(); x != y {
				t.Fatalf("shard %d draw %d differs between 4-shard and 8-shard clusters: %d vs %d", id, i, x, y)
			}
		}
	}
}

func TestCrossSendOnWindowBoundary(t *testing.T) {
	// A zero-lookahead send: delay exactly L lands exactly on the next
	// window boundary and must fire at precisely that time.
	const L = 100
	c := NewCluster(1, 2, L)
	var firedAt Time = -1
	src, dst := c.Shard(1), c.Shard(2)
	src.Go("sender", func(tk *Task) {
		src.Send(dst, L, func() { firedAt = dst.Now() })
	})
	c.Run(0)
	if firedAt != L {
		t.Fatalf("boundary send fired at %d, want exactly %d", firedAt, L)
	}
}

func TestCrossSendBelowLookaheadPanics(t *testing.T) {
	const L = 100
	c := NewCluster(1, 2, L)
	src, dst := c.Shard(1), c.Shard(2)
	src.Go("sender", func(tk *Task) {
		src.Send(dst, L-1, func() {})
	})
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "below the lookahead window") {
			t.Fatalf("want lookahead violation panic, got %v", r)
		}
	}()
	c.Run(0)
}

func TestCrossCancel(t *testing.T) {
	const L = 100
	run := func(cancelAt Time) bool {
		c := NewCluster(3, 2, L)
		fired := false
		src, dst := c.Shard(1), c.Shard(2)
		src.Go("sender", func(tk *Task) {
			cr := src.Send(dst, 3*L, func() { fired = true })
			tk.Sleep(cancelAt)
			cr.Cancel()
		})
		c.Run(0)
		return fired
	}
	// Cancelled in the send window, before the entry is merged.
	if run(50) {
		t.Fatal("cancel before merge: event fired anyway")
	}
	// Cancelled after merge but a full window before the fire time: the
	// cancellation marker reaches the destination first.
	if run(150) {
		t.Fatal("cancel one window ahead: event fired anyway")
	}
	// Cancelled inside the fire window: too late by design — the event
	// fires, identically in serial and parallel runs.
	if !run(320) {
		t.Fatal("cancel inside the fire window should lose deterministically")
	}
}

func TestCrossShardScheduleMigrationPanics(t *testing.T) {
	const L = 100
	c := NewCluster(5, 2, L)
	other := c.Shard(2)
	c.Shard(1).Go("trespasser", func(tk *Task) {
		other.After(0, func() {}) // direct cross-shard schedule: forbidden
	})
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "route cross-shard events") {
			t.Fatalf("want cross-shard schedule diagnostic, got %v", r)
		}
	}()
	c.Run(0)
}

func TestClusterDeadlockReportsShard(t *testing.T) {
	c := NewCluster(9, 3, 100)
	c.Shard(1).Go("stuck-a", func(tk *Task) { tk.Block() })
	c.Shard(3).Go("stuck-b", func(tk *Task) { tk.Block() })
	c.Run(0)
	got := c.StuckTasks()
	want := []string{"shard1:stuck-a", "shard3:stuck-b"}
	if len(got) != len(want) {
		t.Fatalf("StuckTasks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("StuckTasks = %v, want %v", got, want)
		}
	}
}

func TestGlobalHopRoundTrip(t *testing.T) {
	const L = 100
	c := NewCluster(11, 2, L)
	e := c.Shard(1)
	var inHop, after int
	var hopShard, homeShard int = -1, -1
	e.Go("hopper", func(tk *Task) {
		tk.Sleep(10)
		e.Global(tk, func() {
			inHop++
			hopShard = tk.Engine().ShardID()
		})
		after++
		homeShard = tk.Engine().ShardID()
		if tk.Now()%L != 0 {
			t.Errorf("task returned home at %d, want a window edge (multiple of %d)", tk.Now(), L)
		}
	})
	c.Run(0)
	if inHop != 1 || after != 1 {
		t.Fatalf("hop ran %d times, continuation %d times; want 1 and 1", inHop, after)
	}
	if hopShard != 0 {
		t.Fatalf("hop executed on shard %d, want the global shard 0", hopShard)
	}
	if homeShard != 1 {
		t.Fatalf("task returned bound to shard %d, want its home shard 1", homeShard)
	}
}

func TestSendGlobalStampOrder(t *testing.T) {
	// Same-window SendGlobal requests from different shards must be served
	// in stamp order: (time, source shard, per-edge sequence).
	const L = 100
	c := NewCluster(13, 3, L)
	var order []string
	for id := 3; id >= 1; id-- {
		id := id
		e := c.Shard(id)
		e.Go(fmt.Sprintf("t%d", id), func(tk *Task) {
			tk.Sleep(Time(5 * id)) // shard 1 stamps earliest
			e.SendGlobal(func() { order = append(order, fmt.Sprintf("s%d", id)) })
		})
	}
	c.Run(0)
	want := "s1,s2,s3"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("global-phase order = %s, want %s", got, want)
	}
}

func TestClusterRunDeadline(t *testing.T) {
	const L = 100
	c := NewCluster(17, 2, L)
	var fires []Time
	e := c.Shard(1)
	e.Go("ticker", func(tk *Task) {
		for i := 0; i < 10; i++ {
			tk.Sleep(60)
			fires = append(fires, tk.Now())
		}
	})
	if got := c.Run(250); got != 250 {
		t.Fatalf("Run(250) = %d, want 250", got)
	}
	for _, at := range fires {
		if at > 250 {
			t.Fatalf("event fired at %d, beyond the deadline 250", at)
		}
	}
	n := len(fires)
	if n != 4 { // 60, 120, 180, 240
		t.Fatalf("fired %d events before the deadline, want 4 (got %v)", n, fires)
	}
	c.Run(0)
	if len(fires) != 10 {
		t.Fatalf("resumed run fired %d total, want 10", len(fires))
	}
}

func TestClusterShardRunPanics(t *testing.T) {
	c := NewCluster(1, 1, 100)
	defer func() {
		if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "Cluster.Run") {
			t.Fatalf("want shard Run panic, got %v", r)
		}
	}()
	c.Shard(1).Run(0)
}
