package sim

import (
	"encoding/json"
	"testing"
)

// statsWorkload runs a small 3-shard cluster with cross-shard traffic and
// global hops, returning the probe snapshot.
func statsWorkload(workers int) ClusterStats {
	const L = 50
	c := NewCluster(9, 3, L)
	c.SetWorkers(workers)
	for id := 1; id <= 3; id++ {
		id := id
		e := c.Shard(id)
		e.Go("t", func(tk *Task) {
			for i := 0; i < 30; i++ {
				tk.Sleep(Time(e.Rand().Intn(23)) + 1)
				switch i % 5 {
				case 2:
					e.Send(c.Shard(1+id%3), L+1, func() {})
				case 4:
					e.SendGlobal(func() {})
				}
			}
		})
	}
	c.Run(0)
	return c.Stats()
}

func TestClusterStatsPopulated(t *testing.T) {
	st := statsWorkload(1)
	if st.Windows == 0 {
		t.Fatal("no lookahead windows recorded")
	}
	if st.Lookahead != 50 {
		t.Fatalf("lookahead = %d, want 50", st.Lookahead)
	}
	if len(st.Shards) != 4 { // global + 3 cell shards
		t.Fatalf("shards = %d, want 4", len(st.Shards))
	}
	var mailIn, mailOut, hops, dispatched uint64
	for _, s := range st.Shards {
		mailIn += s.MailIn
		mailOut += s.MailOut
		hops += s.Hops
		dispatched += s.Dispatched
		if s.ActiveWindows > st.Windows {
			t.Errorf("shard %d active %d exceeds window count %d", s.Shard, s.ActiveWindows, st.Windows)
		}
	}
	if mailIn == 0 || mailIn != mailOut {
		t.Fatalf("mailbox counters in=%d out=%d, want equal and nonzero", mailIn, mailOut)
	}
	if hops == 0 {
		t.Fatal("no global hops counted despite SendGlobal traffic")
	}
	if dispatched == 0 {
		t.Fatal("no dispatches counted")
	}
	if len(st.Samples) == 0 {
		t.Fatal("no window samples recorded")
	}
	for _, s := range st.Shards {
		share := st.BarrierIdleShare(s.Shard)
		if share < 0 || share > 1 {
			t.Errorf("shard %d idle share %f out of [0,1]", s.Shard, share)
		}
	}
}

func TestClusterStatsIdenticalAcrossWorkers(t *testing.T) {
	ref, _ := json.Marshal(statsWorkload(1))
	for _, w := range []int{2, 4} {
		got, _ := json.Marshal(statsWorkload(w))
		if string(got) != string(ref) {
			t.Fatalf("stats diverge at workers=%d:\n%s\nvs serial:\n%s", w, got, ref)
		}
	}
}
