package sim

// Sharded execution: a Cluster partitions one simulation across N+1 Engine
// shards — shard 0 is the serial "global" shard owning machine-global and
// boot-time events, shards 1..N each own one cell's events, tasks, and RNG
// stream. Execution advances in conservative lookahead windows derived from
// the minimum cross-cell latency (the 700 ns remote-miss/IPI floor of the
// FLASH interconnect): within a window every cell shard runs independently
// (in parallel when workers > 1), because no cross-shard interaction can
// land earlier than the latency floor. At the window barrier, cross-shard
// events are merged in an order fixed entirely by their stamp
// (virtual time, source shard, per-edge sequence) — never by OS scheduling —
// so a run with 1 worker and a run with N workers are byte-identical.
//
// Null messages are unnecessary: classic Chandy-Misra-Bryant needs them
// because a process cannot know when an idle neighbor will next send. Here
// the latency floor is static and global, so the barrier itself is the
// proof of safety — after all shards reach the window edge, every message
// that could affect the next window has been produced and merged.
//
// Cross-shard discipline (enforced at runtime, and statically by hivelint's
// shardcross analyzer):
//
//   - Event traffic between cells goes through Engine.Send (the mailbox).
//     The send delay must be >= the cluster lookahead.
//   - Cross-cell *state* touches hop to the global phase via Engine.Global:
//     the calling task parks, shard 0 adopts it for the duration of the
//     critical section (all cell shards are quiescent, so the section may
//     touch anything), and the task returns home at the next window edge.
//   - Engine-context code (no task) reaches the global phase with
//     Engine.SendGlobal.
//   - Tasks never migrate between shards. A cross-shard schedule or
//     dispatch panics with a diagnostic in serial mode; in parallel mode it
//     is a data race caught by the race detector and the identity gate.

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Cluster phases. Idle between windows (and before Run), P while cell
// shards execute a window, G while shard 0 executes the same window
// exclusively.
const (
	phaseIdle = int32(iota)
	phaseP
	phaseG
)

// Cluster is a set of Engine shards advancing in lockstep lookahead
// windows. Shard 0 is the global shard; shards 1..N belong to cells.
type Cluster struct {
	shards    []*Engine
	lookahead Time
	workers   int

	now     Time // grid progress: every shard has processed all events < now
	horizon Time // end (exclusive) of the window currently executing
	phase   atomic.Int32
	// serialCur is the shard whose window is executing when workers == 1
	// (or shard 0 during the G phase); -1 otherwise. It exists so serial
	// runs can diagnose cross-shard schedule violations deterministically.
	serialCur int

	mail    [][]mailLane // mail[src][dst]
	hops    []hopLane    // per-source-shard Global/SendGlobal entries
	stopped atomic.Bool

	probe clusterProbe
}

// clusterProbe accumulates the deterministic window/mailbox counters
// behind Cluster.Stats. Every field is touched only by the coordinator
// between windows (never inside the parallel phase), so the counters are
// a pure function of the event schedule — byte-identical at any worker
// count — and cost O(shards) per window.
type clusterProbe struct {
	windows uint64
	active  []uint64 // per shard: windows in which it had work
	mailIn  []uint64 // per shard: cross-shard events merged in
	mailOut []uint64 // per shard: cross-shard events sent
	hops    []uint64 // per shard: global-phase requests raised
	maxHeap []int    // per shard: pending-event high-water mark

	lastMerged int // events merged at the most recent barrier

	samples []WindowSample
	stride  uint64 // sample every stride-th window
}

// probeSampleCap bounds the retained window time series. When full, the
// series is decimated deterministically (every other sample dropped, the
// stride doubled), so an arbitrarily long run keeps a bounded, evenly
// spaced history whose content depends only on the schedule.
const probeSampleCap = 4096

// ShardStats is one shard's deterministic execution counters.
type ShardStats struct {
	Shard         int    `json:"shard"`
	ActiveWindows uint64 `json:"active_windows"` // windows with local work (shard 0: global phase)
	Dispatched    uint64 `json:"dispatched"`     // events fired on this shard
	MailIn        uint64 `json:"mail_in"`        // cross-shard events merged into this shard
	MailOut       uint64 `json:"mail_out"`       // cross-shard events sent by this shard
	Hops          uint64 `json:"hops"`           // global-phase requests raised by this shard
	MaxHeap       int    `json:"max_heap"`       // pending-event high-water mark at barriers
}

// WindowSample is one point of the (possibly decimated) per-window time
// series: the state observed at the barrier that opened the window.
type WindowSample struct {
	At      Time `json:"at"`       // window start
	Merged  int  `json:"merged"`   // cross-shard events merged at the barrier
	Active  int  `json:"active"`   // cell shards with work in the window
	Pending int  `json:"pending"`  // live events across all shards after the merge
	MaxHeap int  `json:"max_heap"` // largest single-shard heap after the merge
}

// ClusterStats is a snapshot of the sharded engine's instrumentation:
// totals per shard plus a bounded window time series. All values derive
// from virtual time and the deterministic merge order, so snapshots taken
// at the same virtual point are byte-identical across worker counts.
type ClusterStats struct {
	Lookahead   Time           `json:"lookahead_ns"`
	Windows     uint64         `json:"windows"`
	Shards      []ShardStats   `json:"shards"`
	Samples     []WindowSample `json:"samples"`
	SampleEvery uint64         `json:"sample_every"` // stride of the retained series
}

// BarrierIdleShare reports, for one shard, the fraction of windows in
// which it had nothing to do — time spent waiting at the barrier for
// other shards. 0 when no windows have run.
func (st ClusterStats) BarrierIdleShare(shard int) float64 {
	if st.Windows == 0 || shard < 0 || shard >= len(st.Shards) {
		return 0
	}
	return 1 - float64(st.Shards[shard].ActiveWindows)/float64(st.Windows)
}

// mailLane buffers cross-shard events from one source shard to one
// destination shard. Only the source shard appends (during its window);
// the coordinator drains it at the barrier, so no locking is needed.
type mailLane struct {
	seq     uint64
	entries []*crossEvent
}

// crossEvent is one mailbox entry. fn == nil marks a cancellation marker
// targeting the earlier entry with sequence cancelSeq on the same edge.
type crossEvent struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	merged    bool
	cancelSeq uint64
}

// hopLane buffers requests for the global phase from one source shard.
type hopLane struct {
	seq     uint64
	entries []hopEntry
}

type hopEntry struct {
	at  Time
	seq uint64
	src int
	t   *Task  // adoption request from Engine.Global, or
	fn  func() // plain callback from Engine.SendGlobal
}

// crossKey identifies an in-flight merged cross event for cancellation.
type crossKey struct {
	src int
	seq uint64
}

// shardSeed derives an independent RNG seed for one shard from the root
// seed (splitmix64 finalizer), so the shard count never changes any
// shard's draw sequence.
func shardSeed(root int64, id int) int64 {
	z := uint64(root) + 0x9e3779b97f4a7c15*uint64(id+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// NewCluster returns a cluster with n cell shards (ids 1..n) plus the
// global shard 0, all at virtual time 0. lookahead is the minimum
// cross-shard latency: no Engine.Send may use a smaller delay, and it sets
// the window size. Workers defaults to 1 (the serial reference order);
// raise it with SetWorkers.
func NewCluster(seed int64, n int, lookahead Time) *Cluster {
	if n < 1 {
		panic("sim: cluster needs at least one cell shard")
	}
	if lookahead <= 0 {
		panic("sim: cluster lookahead must be positive")
	}
	c := &Cluster{lookahead: lookahead, workers: 1, serialCur: -1}
	c.shards = make([]*Engine, n+1)
	for i := range c.shards {
		e := NewEngine(shardSeed(seed, i))
		e.clu = c
		e.id = i
		c.shards[i] = e
	}
	c.mail = make([][]mailLane, n+1)
	for i := range c.mail {
		c.mail[i] = make([]mailLane, n+1)
	}
	c.hops = make([]hopLane, n+1)
	c.probe = clusterProbe{
		active:  make([]uint64, n+1),
		mailIn:  make([]uint64, n+1),
		mailOut: make([]uint64, n+1),
		hops:    make([]uint64, n+1),
		maxHeap: make([]int, n+1),
		stride:  1,
	}
	return c
}

// Stats snapshots the engine instrumentation accumulated so far.
func (c *Cluster) Stats() ClusterStats {
	p := &c.probe
	st := ClusterStats{
		Lookahead:   c.lookahead,
		Windows:     p.windows,
		Shards:      make([]ShardStats, len(c.shards)),
		Samples:     append([]WindowSample(nil), p.samples...),
		SampleEvery: p.stride,
	}
	for id, s := range c.shards {
		st.Shards[id] = ShardStats{
			Shard:         id,
			ActiveWindows: p.active[id],
			Dispatched:    s.dispatched,
			MailIn:        p.mailIn[id],
			MailOut:       p.mailOut[id],
			Hops:          p.hops[id],
			MaxHeap:       p.maxHeap[id],
		}
	}
	return st
}

// observeWindow records one window's barrier-time state: which shards
// have work, how deep each heap is, and what the preceding merge moved.
// Runs on the coordinator between mergeMail and the P phase.
func (c *Cluster) observeWindow(horizon Time, winStart Time) {
	p := &c.probe
	p.windows++
	active, pending, maxHeap := 0, 0, 0
	for id, s := range c.shards {
		// Shard 0's activity is observed in the G phase (after the hop
		// merge), where its work for this window actually exists.
		if id != 0 && s.hasWorkBefore(horizon) {
			p.active[id]++
			active++
		}
		pending += s.nLive
		if s.nLive > maxHeap {
			maxHeap = s.nLive
		}
		if s.nLive > p.maxHeap[id] {
			p.maxHeap[id] = s.nLive
		}
	}
	if (p.windows-1)%p.stride == 0 {
		p.samples = append(p.samples, WindowSample{
			At:      winStart,
			Merged:  p.lastMerged,
			Active:  active,
			Pending: pending,
			MaxHeap: maxHeap,
		})
		if len(p.samples) >= probeSampleCap {
			// Deterministic decimation: keep every other sample, double
			// the stride. The retained series stays evenly spaced.
			kept := p.samples[:0]
			for i := 0; i < len(p.samples); i += 2 {
				kept = append(kept, p.samples[i])
			}
			p.samples = kept
			p.stride *= 2
		}
	}
	p.lastMerged = 0
}

// SetWorkers sets how many OS goroutines execute cell shards during the
// parallel phase. 1 runs shards serially in shard order — the reference
// execution every other worker count must match byte-for-byte.
func (c *Cluster) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	c.workers = n
}

// Workers returns the configured worker count.
func (c *Cluster) Workers() int { return c.workers }

// Lookahead returns the window size.
func (c *Cluster) Lookahead() Time { return c.lookahead }

// Global returns the global shard (shard 0).
func (c *Cluster) Global() *Engine { return c.shards[0] }

// Shard returns shard id (0 = global, 1..N = cells).
func (c *Cluster) Shard(id int) *Engine { return c.shards[id] }

// NumShards returns the number of cell shards (excluding the global shard).
func (c *Cluster) NumShards() int { return len(c.shards) - 1 }

// Now returns the cluster's grid progress: every shard has processed all
// events strictly before this time.
func (c *Cluster) Now() Time { return c.now }

// Stop halts the cluster at the next window barrier.
func (c *Cluster) Stop() { c.stopped.Store(true) }

// Stopped reports whether Stop has been called.
func (c *Cluster) Stopped() bool { return c.stopped.Load() }

// Dispatched returns the total events fired across all shards.
func (c *Cluster) Dispatched() uint64 {
	var n uint64
	for _, s := range c.shards {
		n += s.dispatched
	}
	return n
}

// Pending returns the number of scheduled, non-cancelled events across all
// shards (buffered mailbox entries included).
func (c *Cluster) Pending() int {
	n := 0
	for _, s := range c.shards {
		n += s.nLive
	}
	for src := range c.mail {
		for dst := range c.mail[src] {
			for _, en := range c.mail[src][dst].entries {
				if !en.cancelled && en.fn != nil {
					n++
				}
			}
		}
	}
	return n
}

// LiveTasks returns the number of live tasks across all shards.
func (c *Cluster) LiveTasks() int {
	n := 0
	for _, s := range c.shards {
		n += s.nTasks
	}
	return n
}

// StuckTasks returns "shardN:name" for every parked live task, sorted by
// shard then name, so a simulated deadlock names the shard it lives on.
func (c *Cluster) StuckTasks() []string {
	var names []string
	for id, s := range c.shards {
		for _, name := range s.StuckTasks() {
			names = append(names, fmt.Sprintf("shard%d:%s", id, name))
		}
	}
	sort.Strings(names)
	return names
}

// Run advances the cluster until every shard is idle, the deadline passes,
// or Stop is called. Semantics match Engine.Run: a deadline of 0 means run
// until idle; events at exactly the deadline fire; the return value is the
// final grid time (== deadline when one was given and not stopped early).
func (c *Cluster) Run(deadline Time) Time {
	for !c.stopped.Load() {
		c.mergeMail()
		next, ok := c.nextEventTime()
		if !ok {
			break
		}
		if deadline > 0 && next > deadline {
			break
		}
		winStart := (next / c.lookahead) * c.lookahead
		horizon := winStart + c.lookahead
		if deadline > 0 && horizon > deadline+1 {
			horizon = deadline + 1
		}
		c.horizon = horizon
		c.observeWindow(horizon, winStart)

		// P phase: cell shards execute the window.
		c.phase.Store(phaseP)
		if c.workers <= 1 {
			for id := 1; id < len(c.shards); id++ {
				c.serialCur = id
				s := c.shards[id]
				s.running = true
				s.runWindow(horizon)
				s.running = false
			}
			c.serialCur = -1
		} else {
			c.runParallel(horizon)
		}

		// G phase: the global shard executes the same window exclusively.
		c.phase.Store(phaseG)
		c.serialCur = 0
		c.mergeHops()
		g := c.shards[0]
		if g.hasWorkBefore(horizon) {
			c.probe.active[0]++
		}
		g.running = true
		g.runWindow(horizon)
		g.running = false
		c.serialCur = -1
		c.phase.Store(phaseIdle)

		c.now = horizon
		if deadline > 0 {
			if c.now > deadline {
				c.now = deadline
			}
			if horizon >= deadline+1 {
				return c.now
			}
		}
	}
	if deadline > 0 && c.now < deadline && !c.stopped.Load() {
		c.now = deadline
	}
	return c.now
}

// runParallel executes one window across the cell shards on up to
// c.workers goroutines. Shards share no mutable state during the window,
// so the only synchronization is the join; a panic on any shard is
// re-raised on the coordinator (lowest shard id wins, deterministically).
func (c *Cluster) runParallel(horizon Time) {
	type job struct {
		s *Engine
	}
	var jobs []job
	for id := 1; id < len(c.shards); id++ {
		if c.shards[id].hasWorkBefore(horizon) {
			jobs = append(jobs, job{c.shards[id]})
		}
	}
	if len(jobs) == 0 {
		return
	}
	if len(jobs) == 1 {
		s := jobs[0].s
		s.running = true
		s.runWindow(horizon)
		s.running = false
		return
	}
	failures := make([]any, len(jobs))
	var wg sync.WaitGroup
	var next atomic.Int64
	workers := c.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				s := jobs[i].s
				func() {
					defer func() {
						if r := recover(); r != nil {
							failures[i] = r
						}
					}()
					s.running = true
					s.runWindow(horizon)
					s.running = false
				}()
			}
		}()
	}
	wg.Wait()
	for _, f := range failures {
		if f != nil {
			panic(f)
		}
	}
}

// hasWorkBefore reports whether the shard has a live event before horizon,
// discarding lazily-cancelled heap tops on the way.
func (e *Engine) hasWorkBefore(horizon Time) bool {
	for len(e.events) > 0 {
		ev := e.events[0]
		if ev.cancelled {
			heap.Pop(&e.events)
			if ev.owned {
				e.recycle(ev)
			}
			continue
		}
		return ev.at < horizon
	}
	return false
}

// runWindow processes this shard's events with at < horizon. It is the
// per-window slice of Engine.Run; a task panic propagates to the caller.
func (e *Engine) runWindow(horizon Time) {
	for !e.stopped && len(e.events) > 0 {
		ev := e.events[0]
		if ev.cancelled {
			heap.Pop(&e.events)
			if ev.owned {
				e.recycle(ev)
			}
			continue
		}
		if ev.at >= horizon {
			return
		}
		heap.Pop(&e.events)
		e.nLive--
		e.dispatched++
		e.now = ev.at
		fn, owned := ev.fn, ev.owned
		fn()
		if owned {
			e.recycle(ev)
		}
		if e.failure != nil {
			panic(e.failure)
		}
	}
}

// nextEventTime returns the earliest live event time across all shards.
func (c *Cluster) nextEventTime() (Time, bool) {
	var best Time
	found := false
	for _, s := range c.shards {
		for len(s.events) > 0 && s.events[0].cancelled {
			ev := heap.Pop(&s.events).(*Event)
			if ev.owned {
				s.recycle(ev)
			}
		}
		if len(s.events) > 0 {
			if !found || s.events[0].at < best {
				best = s.events[0].at
				found = true
			}
		}
	}
	return best, found
}

// guardSchedule enforces the cross-shard discipline on Engine.schedule.
// During the P phase only the executing shard may touch its heap (serial
// runs panic on violations; parallel runs surface them via the race
// detector and the identity gate). During the G phase shard 0 may push
// onto any heap — all cell shards are quiescent — but pushes onto cell
// shards are clamped to the window edge so no shard ever observes an
// event earlier than its local clock.
func (c *Cluster) guardSchedule(e *Engine, at Time) Time {
	switch c.phase.Load() {
	case phaseP:
		if cur := c.serialCur; cur >= 0 && cur != e.id {
			panic(fmt.Sprintf(
				"sim: cross-shard schedule onto shard %d while shard %d is executing: "+
					"shards own their event heaps; route cross-shard events through the "+
					"mailbox (Engine.Send) or the global phase (Engine.Global/SendGlobal)",
				e.id, cur))
		}
	case phaseG:
		if e.id != 0 && at < c.horizon {
			at = c.horizon
		}
	}
	return at
}

// Crossing is a handle on a cross-shard send, usable by the sending shard
// to cancel it. Cancellation is deterministic but window-granular: it is
// guaranteed only when issued at least one full window before the event's
// fire time; a cancel racing the fire window loses (identically in serial
// and parallel runs).
type Crossing struct {
	c        *Cluster
	src, dst int
	seq      uint64
	ev       *Event      // same-shard fast path
	entry    *crossEvent // cross-shard entry, until merged
}

// Send schedules fn on dst's shard d nanoseconds from now, routed through
// the deterministic cross-shard mailbox. d must be at least the cluster
// lookahead (the minimum cross-cell latency). Must be called from the
// sending shard's execution context.
func (e *Engine) Send(dst *Engine, d Time, fn func()) *Crossing {
	c := e.clu
	if c == nil {
		if dst != e {
			panic("sim: Send between engines that are not cluster shards")
		}
		return &Crossing{ev: e.After(d, fn)}
	}
	if dst.clu != c {
		panic("sim: Send to an engine outside this cluster")
	}
	if dst == e {
		return &Crossing{c: c, src: e.id, dst: e.id, ev: e.After(d, fn)}
	}
	if d < c.lookahead {
		panic(fmt.Sprintf(
			"sim: cross-shard send with delay %v below the lookahead window %v: "+
				"cross-shard events must respect the minimum intercell latency",
			d, c.lookahead))
	}
	lane := &c.mail[e.id][dst.id]
	lane.seq++
	en := &crossEvent{at: e.now + d, seq: lane.seq, fn: fn}
	lane.entries = append(lane.entries, en)
	return &Crossing{c: c, src: e.id, dst: dst.id, seq: en.seq, entry: en}
}

// Cancel prevents the crossing from firing if it is still cancellable:
// always for a same-shard crossing, and for a cross-shard crossing when
// the cancel reaches the destination's merge point before the fire window.
// Must be called from the sending shard's execution context. It reports
// whether a cancellation was applied or enqueued.
func (cr *Crossing) Cancel() bool {
	if cr.ev != nil {
		return cr.ev.Cancel()
	}
	en := cr.entry
	if !en.merged {
		if en.cancelled {
			return false
		}
		en.cancelled = true
		return true
	}
	// Already merged into the destination heap: route a cancellation
	// marker through the same edge so it applies at a deterministic point.
	lane := &cr.c.mail[cr.src][cr.dst]
	lane.seq++
	lane.entries = append(lane.entries, &crossEvent{seq: lane.seq, cancelSeq: cr.seq})
	return true
}

// mergeMail drains every mailbox lane into the destination heaps. Order is
// fixed by the stamp (time, source shard, per-edge sequence); destination-
// local sequence numbers are assigned in stamp order, so the merged order
// is independent of worker count and OS scheduling. Runs between windows.
func (c *Cluster) mergeMail() {
	type tagged struct {
		src int
		en  *crossEvent
	}
	for dst := range c.shards {
		var batch []tagged
		for src := range c.shards {
			lane := &c.mail[src][dst]
			if len(lane.entries) == 0 {
				continue
			}
			for _, en := range lane.entries {
				en.merged = true
				batch = append(batch, tagged{src, en})
			}
			lane.entries = lane.entries[:0]
		}
		if len(batch) == 0 {
			continue
		}
		d := c.shards[dst]
		// Cancellation markers first: they target entries merged at an
		// earlier barrier, so they can never race an entry in this batch.
		for _, tg := range batch {
			if tg.en.fn != nil {
				continue
			}
			k := crossKey{src: tg.src, seq: tg.en.cancelSeq}
			if ev, ok := d.pendingCross[k]; ok {
				ev.Cancel()
				delete(d.pendingCross, k)
			}
		}
		sort.SliceStable(batch, func(i, j int) bool {
			a, b := batch[i], batch[j]
			if a.en.at != b.en.at {
				return a.en.at < b.en.at
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.en.seq < b.en.seq
		})
		for _, tg := range batch {
			en := tg.en
			if en.fn == nil || en.cancelled {
				continue
			}
			c.probe.mailOut[tg.src]++
			c.probe.mailIn[dst]++
			c.probe.lastMerged++
			if d.pendingCross == nil {
				d.pendingCross = make(map[crossKey]*Event)
			}
			k := crossKey{src: tg.src, seq: en.seq}
			fn := en.fn
			ev := d.schedule(en.at, func() {
				delete(d.pendingCross, k)
				fn()
			})
			d.pendingCross[k] = ev
		}
	}
}

// SendGlobal runs fn in the global phase of the current window, stamped
// with (time, source shard, sequence) so the global shard processes
// requests from all cells in a deterministic order. Callable from any
// execution context; engine-context code (interrupt handlers, event
// callbacks) uses this where task code would use Global. Without a
// cluster it degrades to an immediate event.
func (e *Engine) SendGlobal(fn func()) {
	c := e.clu
	if c == nil || e.id == 0 {
		e.atOwned(e.now, fn)
		return
	}
	lane := &c.hops[e.id]
	lane.seq++
	lane.entries = append(lane.entries, hopEntry{at: e.now, seq: lane.seq, fn: fn})
}

// Global runs fn in the global phase of the current window on behalf of t,
// which must be the running task on this shard. The task parks; shard 0
// adopts it at the window barrier (every cell shard quiescent, so fn may
// touch any cross-cell state: membership rounds, remote page contents,
// neighbor clocks); the task returns to its home shard at the next window
// edge. Without a cluster — or already on the global shard — fn runs
// inline.
func (e *Engine) Global(t *Task, fn func()) {
	c := e.clu
	if c == nil || e.id == 0 {
		fn()
		return
	}
	if t != nil && t.inGlobal > 0 {
		// Nested hop: the task is already adopted by the global shard with
		// every cell shard quiescent, so the inner section runs inline.
		fn()
		return
	}
	if t == nil || t.eng != e || e.cur != t {
		panic("sim: Global must be called by the running task on its own shard")
	}
	t.inGlobal++
	lane := &c.hops[e.id]
	lane.seq++
	lane.entries = append(lane.entries, hopEntry{at: e.now, seq: lane.seq, t: t})
	t.park()
	// Now running adopted on shard 0, inside the G phase.
	fn()
	t.inGlobal--
	if t.inGlobal == 0 && t.home != c.shards[0] {
		home := t.home
		t.eng = home
		home.atOwned(c.horizon, func() { t.wake(false) })
		t.park()
	}
}

// mergeHops drains the per-shard global-phase requests into shard 0's
// heap in stamp order. Runs at the P→G barrier, so requests raised during
// a window are served in that same window's global phase.
func (c *Cluster) mergeHops() {
	var all []hopEntry
	for src := 1; src < len(c.shards); src++ {
		lane := &c.hops[src]
		c.probe.hops[src] += uint64(len(lane.entries))
		for _, en := range lane.entries {
			en.src = src
			all = append(all, en)
		}
		lane.entries = lane.entries[:0]
	}
	if len(all) == 0 {
		return
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	g := c.shards[0]
	for _, en := range all {
		if en.t != nil {
			t := en.t
			g.atOwned(en.at, func() { c.adoptRun(t) })
		} else {
			g.atOwned(en.at, en.fn)
		}
	}
}

// adoptRun temporarily binds a cell task to the global shard and
// dispatches it — the mechanism behind Global hops and cross-shard wakes
// from the G phase (futures, barriers, membership verdicts). When the task
// parks again — unless it is still inside a Global section — it is handed
// back to its home shard, and any wake timer it armed on the global heap
// migrates with it (clamped to the window edge, preserving the rule that
// no shard observes an event before its clock).
func (c *Cluster) adoptRun(t *Task) {
	if t.done || !t.parked {
		return
	}
	g := c.shards[0]
	t.eng = g
	t.wake(false)
	if t.done || t.inGlobal > 0 {
		return
	}
	if t.eng == g && t.home != g {
		t.eng = t.home
		if ev := t.wakeEv; ev != nil && ev.engine == g && ev.Pending() {
			c.migrateEvent(ev, t.home)
		}
	}
}

// migrateEvent moves a pending event from the global heap to a cell
// shard's heap, re-stamping it with a destination-local sequence and
// clamping it to the window edge. Only legal during the G phase, when the
// destination shard is quiescent.
func (c *Cluster) migrateEvent(ev *Event, dst *Engine) {
	src := ev.engine
	heap.Remove(&src.events, ev.index)
	src.nLive--
	dst.seq++
	ev.engine = dst
	ev.seq = dst.seq
	if ev.at < c.horizon {
		ev.at = c.horizon
	}
	heap.Push(&dst.events, ev)
	dst.nLive++
}
