package sim

import "testing"

// Edge cases for the Event lifecycle under lazy cancellation and the
// engine-internal freelist: fired events, double cancels, cancel/reschedule
// interleavings, compaction, and the O(1) Pending counter.

func TestCancelAfterFiring(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	ev := e.At(10, func() { fired++ })
	e.Run(0)
	if fired != 1 {
		t.Fatalf("event fired %d times, want 1", fired)
	}
	if ev.Cancel() {
		t.Error("Cancel after firing reported the event as still pending")
	}
	if ev.Pending() {
		t.Error("fired event reports Pending")
	}
	if got := e.Pending(); got != 0 {
		t.Errorf("engine Pending = %d after fire+cancel, want 0", got)
	}
	e.Run(0) // a cancelled, fired event must not fire again
	if fired != 1 {
		t.Fatalf("event re-fired after post-fire Cancel: %d", fired)
	}
}

func TestRescheduleAfterFiring(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	ev := e.At(10, func() { fired++ })
	e.Run(0)
	if ev.Reschedule(100) {
		t.Error("Reschedule after firing reported success")
	}
	e.Run(0)
	if fired != 1 {
		t.Fatalf("fired event re-fired after Reschedule: %d", fired)
	}
}

func TestDoubleCancel(t *testing.T) {
	e := NewEngine(1)
	ev := e.At(10, func() { t.Error("cancelled event fired") })
	if !ev.Cancel() {
		t.Fatal("first Cancel reported not pending")
	}
	if ev.Cancel() {
		t.Error("second Cancel reported pending — live counter would double-decrement")
	}
	if got := e.Pending(); got != 0 {
		t.Errorf("Pending = %d after double cancel, want 0", got)
	}
	e.Run(0)
}

func TestCancelThenReschedule(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(10, func() { fired = true })
	ev.Cancel()
	if ev.Reschedule(20) {
		t.Error("Reschedule revived a cancelled event")
	}
	e.Run(0)
	if fired {
		t.Error("cancelled event fired after Reschedule attempt")
	}
	if got := e.Pending(); got != 0 {
		t.Errorf("Pending = %d, want 0", got)
	}
}

func TestRescheduleThenCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(10, func() { fired = true })
	if !ev.Reschedule(5) {
		t.Fatal("Reschedule of a pending event failed")
	}
	if !ev.Cancel() {
		t.Fatal("Cancel after Reschedule reported not pending")
	}
	e.Run(0)
	if fired {
		t.Error("event fired after Reschedule+Cancel")
	}
}

// TestPendingCountAcrossLifecycle walks the live counter through push,
// cancel, fire, and idle, checking it against the ground truth at each step.
func TestPendingCountAcrossLifecycle(t *testing.T) {
	e := NewEngine(1)
	var evs []*Event
	for i := 0; i < 10; i++ {
		evs = append(evs, e.At(Time(10+i), func() {}))
	}
	if got := e.Pending(); got != 10 {
		t.Fatalf("Pending = %d after 10 schedules, want 10", got)
	}
	for i := 0; i < 4; i++ {
		evs[i].Cancel()
	}
	if got := e.Pending(); got != 6 {
		t.Fatalf("Pending = %d after 4 cancels, want 6", got)
	}
	if !e.Step() {
		t.Fatal("Step found no event despite 6 pending")
	}
	if got := e.Pending(); got != 5 {
		t.Fatalf("Pending = %d after one Step, want 5", got)
	}
	e.Run(0)
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending = %d after Run, want 0", got)
	}
}

// TestLazyCancelStorm floods the queue with cancellations so the amortized
// compaction triggers, then checks ordering and the counter both survive.
func TestLazyCancelStorm(t *testing.T) {
	e := NewEngine(1)
	var fireOrder []Time
	const n = 500
	var doomed []*Event
	for i := 0; i < n; i++ {
		tm := Time(1000 + i)
		if i%5 == 0 { // every fifth event survives
			e.At(tm, func() { fireOrder = append(fireOrder, e.Now()) })
		} else {
			doomed = append(doomed, e.At(tm, func() { t.Error("doomed event fired") }))
		}
	}
	for _, ev := range doomed {
		ev.Cancel()
	}
	want := n / 5
	if got := e.Pending(); got != want {
		t.Fatalf("Pending = %d after storm, want %d", got, want)
	}
	e.Run(0)
	if len(fireOrder) != want {
		t.Fatalf("%d survivors fired, want %d", len(fireOrder), want)
	}
	for i := 1; i < len(fireOrder); i++ {
		if fireOrder[i] <= fireOrder[i-1] {
			t.Fatalf("fire order regressed at %d: %v then %v", i, fireOrder[i-1], fireOrder[i])
		}
	}
}

// TestCompactPreservesReschedule cancels enough events to force a compaction
// and then reschedules a survivor: its heap index must still be correct.
func TestCompactPreservesReschedule(t *testing.T) {
	e := NewEngine(1)
	fired := make(map[Time]bool)
	var survivors, doomed []*Event
	for i := 0; i < 128; i++ {
		tm := Time(1000 + i)
		ev := e.At(tm, func() { fired[e.Now()] = true })
		if i%2 == 0 {
			survivors = append(survivors, ev)
		} else {
			doomed = append(doomed, ev)
		}
	}
	// Cancel the odd half; with 128 events this crosses the compaction
	// threshold (len >= 64 and nLive < len/2 after enough cancels).
	for _, ev := range doomed {
		ev.Cancel()
	}
	if got := e.Pending(); got != len(survivors) {
		t.Fatalf("Pending = %d, want %d survivors", got, len(survivors))
	}
	// Move the last survivor to the front of the timeline.
	if !survivors[len(survivors)-1].Reschedule(1) {
		t.Fatal("Reschedule after compaction failed")
	}
	first := true
	e.Trace = func(at Time, what string) {
		_ = what
		if first {
			if at != 1 {
				t.Errorf("first dispatch at %v, want the rescheduled t=1", at)
			}
			first = false
		}
	}
	e.Run(0)
	if len(fired) != len(survivors) {
		t.Fatalf("%d events fired, want %d", len(fired), len(survivors))
	}
}

// TestPublicEventNotRecycled guards the freelist contract: an Event returned
// by At/After must stay valid (and inert) after firing even when the engine
// keeps scheduling through the freelist afterwards.
func TestPublicEventNotRecycled(t *testing.T) {
	e := NewEngine(1)
	ev := e.At(5, func() {})
	e.Run(0)
	// Generate freelist churn: internal sleep timers are recycled.
	e.Go("churn", func(tk *Task) {
		for i := 0; i < 50; i++ {
			tk.Sleep(1)
		}
	})
	e.Run(0)
	if ev.Pending() {
		t.Error("long-fired public event claims Pending after freelist churn")
	}
	if ev.Cancel() {
		t.Error("long-fired public event claims a successful Cancel")
	}
	if ev.Reschedule(1000) {
		t.Error("long-fired public event accepted a Reschedule")
	}
	if got := e.Pending(); got != 0 {
		t.Errorf("Pending = %d, want 0", got)
	}
}

// TestBlockTimeoutStress exercises the release() path: repeated
// BlockTimeout cycles must not leak pending events or corrupt the counter,
// whether the task times out or is woken first.
func TestBlockTimeoutStress(t *testing.T) {
	e := NewEngine(7)
	var timeouts, wakes int
	var blocked *Task
	e.Go("blocker", func(tk *Task) {
		blocked = tk
		for i := 0; i < 200; i++ {
			if tk.BlockTimeout(10) {
				timeouts++
			} else {
				wakes++
			}
		}
	})
	e.Go("waker", func(tk *Task) {
		for i := 0; i < 100; i++ {
			tk.Sleep(25) // wakes the blocker mid-wait on some iterations
			if blocked != nil {
				blocked.WakeSoon()
			}
		}
	})
	e.Run(0)
	if timeouts+wakes != 200 {
		t.Fatalf("blocker completed %d+%d cycles, want 200", timeouts, wakes)
	}
	if timeouts == 0 || wakes == 0 {
		t.Fatalf("stress did not exercise both paths: timeouts=%d wakes=%d", timeouts, wakes)
	}
	if got := e.Pending(); got != 0 {
		t.Errorf("Pending = %d after stress, want 0", got)
	}
}

// TestFreelistReuseKeepsDeterminism runs the same task mix twice on fresh
// engines and asserts identical traces — the freelist must not perturb
// event ordering.
func TestFreelistReuseKeepsDeterminism(t *testing.T) {
	run := func() []string {
		e := NewEngine(99)
		var trace []string
		e.Trace = func(at Time, what string) {
			trace = append(trace, at.String()+" "+what)
		}
		var mu Mutex
		for i := 0; i < 4; i++ {
			e.Go("worker", func(tk *Task) {
				for j := 0; j < 20; j++ {
					mu.Lock(tk)
					tk.Sleep(Time(1 + e.Rand().Intn(5)))
					mu.Unlock(tk)
					tk.BlockTimeout(3)
				}
			})
		}
		e.Run(0)
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}
