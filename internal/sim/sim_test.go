package sim

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run(0)
	if fmt.Sprint(order) != "[1 2 3]" {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d", i, v)
		}
	}
}

func TestEventCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(10, func() { fired = true })
	if !ev.Cancel() {
		t.Fatal("cancel reported not pending")
	}
	if ev.Cancel() {
		t.Fatal("second cancel reported pending")
	}
	e.Run(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEventReschedule(t *testing.T) {
	e := NewEngine(1)
	var at Time
	ev := e.At(10, func() { at = e.Now() })
	if !ev.Reschedule(50) {
		t.Fatal("reschedule failed")
	}
	e.Run(0)
	if at != 50 {
		t.Fatalf("fired at %v, want 50", at)
	}
	if ev.Reschedule(80) {
		t.Fatal("reschedule of fired event succeeded")
	}
}

func TestRescheduleEarlier(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.At(20, func() { order = append(order, "a") })
	ev := e.At(30, func() { order = append(order, "b") })
	ev.Reschedule(10)
	e.Run(0)
	if strings.Join(order, "") != "ba" {
		t.Fatalf("order = %v", order)
	}
}

func TestRunDeadline(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.At(100, func() { fired = true })
	e.Run(50)
	if fired {
		t.Fatal("event beyond deadline fired")
	}
	if e.Now() != 50 {
		t.Fatalf("now = %v, want 50", e.Now())
	}
	e.Run(200)
	if !fired {
		t.Fatal("event not fired after extending deadline")
	}
}

func TestTaskSleep(t *testing.T) {
	e := NewEngine(1)
	var wake Time
	e.Go("sleeper", func(tk *Task) {
		tk.Sleep(42)
		wake = tk.Now()
	})
	e.Run(0)
	if wake != 42 {
		t.Fatalf("woke at %v", wake)
	}
	if e.LiveTasks() != 0 {
		t.Fatalf("live tasks = %d", e.LiveTasks())
	}
}

func TestTaskInterleaving(t *testing.T) {
	e := NewEngine(1)
	var log []string
	e.Go("a", func(tk *Task) {
		log = append(log, "a0")
		tk.Sleep(10)
		log = append(log, "a1")
		tk.Sleep(20)
		log = append(log, "a2")
	})
	e.Go("b", func(tk *Task) {
		log = append(log, "b0")
		tk.Sleep(15)
		log = append(log, "b1")
	})
	e.Run(0)
	want := "a0 b0 a1 b1 a2"
	if got := strings.Join(log, " "); got != want {
		t.Fatalf("log = %q, want %q", got, want)
	}
}

func TestTaskKillParked(t *testing.T) {
	e := NewEngine(1)
	cleaned := false
	var tk *Task
	tk = e.Go("victim", func(t2 *Task) {
		defer func() { cleaned = true }()
		t2.Block() // parked forever
		t.Error("victim resumed past Block")
	})
	e.At(10, func() { tk.Kill() })
	e.Run(0)
	if !cleaned {
		t.Fatal("deferred cleanup did not run")
	}
	if !tk.Done() {
		t.Fatal("task not done")
	}
}

func TestTaskKillBeforeStart(t *testing.T) {
	e := NewEngine(1)
	ran := false
	tk := e.Go("never", func(t2 *Task) { ran = true })
	tk.Kill()
	e.Run(0)
	if ran {
		t.Fatal("killed task body ran")
	}
}

func TestOnKillRuns(t *testing.T) {
	e := NewEngine(1)
	n := 0
	tk := e.Go("t", func(t2 *Task) {
		t2.OnKill(func() { n++ })
		t2.Sleep(5)
	})
	e.Run(0)
	if n != 1 || !tk.Done() {
		t.Fatalf("onKill ran %d times", n)
	}
}

func TestBlockTimeout(t *testing.T) {
	e := NewEngine(1)
	var timedOut bool
	var at Time
	e.Go("t", func(tk *Task) {
		timedOut = tk.BlockTimeout(100)
		at = tk.Now()
	})
	e.Run(0)
	if !timedOut || at != 100 {
		t.Fatalf("timedOut=%v at=%v", timedOut, at)
	}
}

func TestBlockWokenBeforeTimeout(t *testing.T) {
	e := NewEngine(1)
	var timedOut bool
	tk := e.Go("t", func(tk *Task) {
		timedOut = tk.BlockTimeout(100)
	})
	e.At(30, func() { tk.WakeSoon() })
	e.Run(0)
	if timedOut {
		t.Fatal("reported timeout despite wake")
	}
	if e.Pending() != 0 {
		t.Fatal("timeout event not cancelled")
	}
}

func TestMutexFIFO(t *testing.T) {
	e := NewEngine(1)
	var m Mutex
	var order []string
	hold := func(name string, start, d Time) {
		e.Go(name, func(tk *Task) {
			tk.Sleep(start)
			m.Lock(tk)
			order = append(order, name)
			tk.Sleep(d)
			m.Unlock(tk)
		})
	}
	hold("a", 0, 50)
	hold("b", 10, 10)
	hold("c", 20, 10)
	e.Run(0)
	if got := strings.Join(order, ""); got != "abc" {
		t.Fatalf("order = %q", got)
	}
	if m.Locked() {
		t.Fatal("mutex still locked")
	}
}

func TestMutexTryLock(t *testing.T) {
	e := NewEngine(1)
	var m Mutex
	e.Go("t", func(tk *Task) {
		if !m.TryLock(tk) {
			t.Error("TryLock failed on free mutex")
		}
		if m.TryLock(tk) {
			t.Error("TryLock succeeded on held mutex")
		}
		m.Unlock(tk)
	})
	e.Run(0)
}

func TestMutexForceRelease(t *testing.T) {
	e := NewEngine(1)
	var m Mutex
	acquired := false
	var holder *Task
	holder = e.Go("holder", func(tk *Task) {
		m.Lock(tk)
		tk.Block() // dies holding the lock
	})
	e.Go("waiter", func(tk *Task) {
		tk.Sleep(10)
		m.Lock(tk)
		acquired = true
		m.Unlock(tk)
	})
	e.At(20, func() {
		holder.Kill()
		m.ForceRelease()
	})
	e.Run(0)
	if !acquired {
		t.Fatal("waiter never acquired after ForceRelease")
	}
}

func TestSemaphore(t *testing.T) {
	e := NewEngine(1)
	s := NewSemaphore(2)
	maxConc, conc := 0, 0
	for i := 0; i < 5; i++ {
		e.Go(fmt.Sprintf("w%d", i), func(tk *Task) {
			s.Acquire(tk)
			conc++
			if conc > maxConc {
				maxConc = conc
			}
			tk.Sleep(10)
			conc--
			s.Release()
		})
	}
	e.Run(0)
	if maxConc != 2 {
		t.Fatalf("max concurrency = %d, want 2", maxConc)
	}
	if s.Available() != 2 {
		t.Fatalf("available = %d", s.Available())
	}
}

func TestCondSignalBroadcast(t *testing.T) {
	e := NewEngine(1)
	var m Mutex
	c := Cond{M: &m}
	ready := false
	woke := 0
	for i := 0; i < 3; i++ {
		e.Go(fmt.Sprintf("w%d", i), func(tk *Task) {
			m.Lock(tk)
			for !ready {
				c.Wait(tk)
			}
			woke++
			m.Unlock(tk)
		})
	}
	e.Go("signaller", func(tk *Task) {
		tk.Sleep(10)
		m.Lock(tk)
		ready = true
		c.Broadcast()
		m.Unlock(tk)
	})
	e.Run(0)
	if woke != 3 {
		t.Fatalf("woke = %d", woke)
	}
}

func TestCondWaitTimeout(t *testing.T) {
	e := NewEngine(1)
	var m Mutex
	c := Cond{M: &m}
	var timedOut bool
	e.Go("w", func(tk *Task) {
		m.Lock(tk)
		timedOut = c.WaitTimeout(tk, 50)
		m.Unlock(tk)
	})
	e.Run(0)
	if !timedOut {
		t.Fatal("expected timeout")
	}
	if len(c.waiters) != 0 {
		t.Fatal("stale waiter left behind")
	}
}

func TestFuture(t *testing.T) {
	e := NewEngine(1)
	f := &Future{}
	var got any
	e.Go("waiter", func(tk *Task) {
		got, _ = f.Wait(tk)
	})
	e.At(10, func() { f.Set(42, nil) })
	e.Run(0)
	if got != 42 {
		t.Fatalf("got %v", got)
	}
	// Second Set is a no-op.
	f.Set(99, nil)
	if v, _ := f.val, f.err; v != 42 {
		t.Fatalf("value overwritten: %v", v)
	}
}

func TestFutureWaitTimeout(t *testing.T) {
	e := NewEngine(1)
	f := &Future{}
	var ok bool
	e.Go("waiter", func(tk *Task) {
		_, _, ok = f.WaitTimeout(tk, 30)
	})
	e.Run(0)
	if ok {
		t.Fatal("expected timeout")
	}
	// Late Set after timeout must not wake anyone or panic.
	f.Set(1, nil)
}

func TestFutureWaitTimeoutSatisfied(t *testing.T) {
	e := NewEngine(1)
	f := &Future{}
	var ok bool
	var got any
	e.Go("waiter", func(tk *Task) {
		got, _, ok = f.WaitTimeout(tk, 100)
	})
	e.At(10, func() { f.Set("x", nil) })
	e.Run(0)
	if !ok || got != "x" {
		t.Fatalf("ok=%v got=%v", ok, got)
	}
}

func TestQueue(t *testing.T) {
	e := NewEngine(1)
	q := &Queue{}
	var got []any
	e.Go("consumer", func(tk *Task) {
		for {
			v, ok := q.Pop(tk)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	e.Go("producer", func(tk *Task) {
		for i := 0; i < 3; i++ {
			tk.Sleep(10)
			q.Push(i)
		}
		tk.Sleep(10)
		q.Close()
	})
	e.Run(0)
	if fmt.Sprint(got) != "[0 1 2]" {
		t.Fatalf("got %v", got)
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine(1)
	var wg WaitGroup
	finished := 0
	wg.Add(3)
	for i := 0; i < 3; i++ {
		d := Time(10 * (i + 1))
		e.Go(fmt.Sprintf("w%d", i), func(tk *Task) {
			tk.Sleep(d)
			finished++
			wg.Done()
		})
	}
	var doneAt Time
	e.Go("waiter", func(tk *Task) {
		wg.Wait(tk)
		doneAt = tk.Now()
	})
	e.Run(0)
	if finished != 3 || doneAt != 30 {
		t.Fatalf("finished=%d doneAt=%v", finished, doneAt)
	}
}

func TestBarrier(t *testing.T) {
	e := NewEngine(1)
	b := NewBarrier(3)
	var times []Time
	for i := 0; i < 3; i++ {
		d := Time(10 * (i + 1))
		e.Go(fmt.Sprintf("p%d", i), func(tk *Task) {
			tk.Sleep(d)
			b.Await(tk)
			times = append(times, tk.Now())
		})
	}
	e.Run(0)
	if len(times) != 3 {
		t.Fatalf("len(times) = %d", len(times))
	}
	for _, tm := range times {
		if tm != 30 {
			t.Fatalf("barrier released at %v, want 30", tm)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	e := NewEngine(1)
	b := NewBarrier(2)
	rounds := 0
	for i := 0; i < 2; i++ {
		e.Go(fmt.Sprintf("p%d", i), func(tk *Task) {
			for r := 0; r < 3; r++ {
				tk.Sleep(10)
				b.Await(tk)
			}
			rounds++
		})
	}
	e.Run(0)
	if rounds != 2 {
		t.Fatalf("rounds = %d", rounds)
	}
}

func TestBarrierSetParties(t *testing.T) {
	e := NewEngine(1)
	b := NewBarrier(3)
	released := false
	e.Go("p0", func(tk *Task) {
		b.Await(tk)
		released = true
	})
	e.Go("p1", func(tk *Task) {
		b.Await(tk)
	})
	// Third party "fails"; shrink the barrier.
	e.At(50, func() { b.SetParties(2) })
	e.Run(0)
	if !released {
		t.Fatal("barrier never opened after SetParties")
	}
}

func TestStuckTaskDiagnostics(t *testing.T) {
	e := NewEngine(1)
	e.Go("stuck", func(tk *Task) { tk.Block() })
	e.Run(0)
	stuck := e.StuckTasks()
	if len(stuck) != 1 || stuck[0] != "stuck" {
		t.Fatalf("stuck = %v", stuck)
	}
	if !strings.Contains(e.DumpState(), "stuck") {
		t.Fatal("DumpState missing stuck task")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() string {
		e := NewEngine(7)
		var log []string
		e.Trace = func(at Time, what string) {
			log = append(log, fmt.Sprintf("%d:%s", at, what))
		}
		var m Mutex
		for i := 0; i < 8; i++ {
			name := fmt.Sprintf("t%d", i)
			e.Go(name, func(tk *Task) {
				for j := 0; j < 5; j++ {
					tk.Sleep(Time(e.Rand().Intn(100)))
					m.Lock(tk)
					tk.Sleep(Time(e.Rand().Intn(10)))
					m.Unlock(tk)
				}
			})
		}
		e.Run(0)
		return strings.Join(log, "\n")
	}
	a, b := run(), run()
	if a != b {
		t.Fatal("two identical runs diverged")
	}
}

func TestTaskPanicPropagates(t *testing.T) {
	e := NewEngine(1)
	e.Go("bad", func(tk *Task) { panic("boom") })
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "boom") {
			t.Fatalf("recover = %v", r)
		}
	}()
	e.Run(0)
	t.Fatal("expected panic")
}

func TestSleepEventSteal(t *testing.T) {
	e := NewEngine(1)
	var ev *Event
	var woke Time
	e.Go("computer", func(tk *Task) {
		tk.SleepEvent(100, func(x *Event) { ev = x })
		woke = tk.Now()
	})
	// At t=50 an "interrupt" steals 30ns from the computing task.
	e.At(50, func() { ev.Reschedule(ev.When() + 30) })
	e.Run(0)
	if woke != 130 {
		t.Fatalf("woke at %v, want 130", woke)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		500:             "500ns",
		1500:            "1.500us",
		2 * Millisecond: "2.000ms",
		3 * Second:      "3.000s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
}

// Property: any interleaving of sleeps preserves per-task ordering and the
// engine clock is monotonic across all observations.
func TestPropertyClockMonotonic(t *testing.T) {
	f := func(seed int64, delays []uint8) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine(seed)
		var last Time
		mono := true
		for i, d := range delays {
			d := Time(d)
			e.Go(fmt.Sprintf("t%d", i), func(tk *Task) {
				for j := 0; j < 3; j++ {
					tk.Sleep(d)
					if tk.Now() < last {
						mono = false
					}
					last = tk.Now()
				}
			})
		}
		e.Run(0)
		return mono
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a mutex never admits two holders at once, under random load.
func TestPropertyMutexExclusion(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		e := NewEngine(seed)
		var m Mutex
		inside, ok := 0, true
		for i := 0; i < int(n%16)+2; i++ {
			e.Go(fmt.Sprintf("t%d", i), func(tk *Task) {
				for j := 0; j < 4; j++ {
					tk.Sleep(Time(e.Rand().Intn(50)))
					m.Lock(tk)
					inside++
					if inside != 1 {
						ok = false
					}
					tk.Sleep(Time(e.Rand().Intn(5)))
					inside--
					m.Unlock(tk)
				}
			})
		}
		e.Run(0)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkEngineEventThroughput measures raw simulator speed: how many
// scheduled events the engine dispatches per wall-clock second. This bounds
// how much virtual time the whole Hive simulation can cover.
func BenchmarkEngineEventThroughput(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(100, tick)
		}
	}
	e.After(100, tick)
	b.ResetTimer()
	e.Run(0)
}

// BenchmarkTaskSwitch measures a park/wake round trip between two tasks.
func BenchmarkTaskSwitch(b *testing.B) {
	e := NewEngine(1)
	e.Go("ping", func(t *Task) {
		for i := 0; i < b.N; i++ {
			t.Sleep(10)
		}
	})
	b.ResetTimer()
	e.Run(0)
}
