package sim

import "fmt"

// killedPanic is thrown inside a task goroutine when the task is killed
// (e.g. its processor's node suffered a fail-stop fault). It unwinds the
// task's stack, running deferred cleanup, and is swallowed by the task
// wrapper.
type killedPanic struct{ name string }

// String names the sentinel for diagnostics.
func (k killedPanic) String() string { return "task killed: " + k.name }

// taskFailure wraps a genuine panic escaping task code so the engine can
// re-raise it on the caller's goroutine.
type taskFailure struct {
	name string
	val  any
}

// Task is a simulated thread of control: a goroutine that runs only when the
// engine hands it the virtual CPU and that blocks by parking in virtual time.
// Kernel code, simulated user processes, interrupt service threads, and the
// Wax policy process are all Tasks.
type Task struct {
	eng      *Engine
	home     *Engine // the shard the task belongs to; eng == home except while adopted by the global shard
	name     string
	resume   chan struct{}
	yield    chan struct{}
	done     bool
	parked   bool
	started  bool
	killed   bool
	timedOut bool
	inGlobal int    // depth of Engine.Global sections the task is inside
	wakeEv   *Event // pending wake timer, so adoption can migrate it home
	liveIdx  int    // position in home.live, for O(1) removal on exit

	// Data lets subsystems attach context (e.g. the owning cell) without
	// threading extra parameters everywhere.
	Data any

	// OnKill callbacks run (in engine context) after the task has been
	// killed and unwound; used to release simulated resources.
	onKill []func()
}

// Go starts fn as a new task named name. The task begins running at the
// current virtual time (after already-scheduled events for this instant).
func (e *Engine) Go(name string, fn func(t *Task)) *Task {
	t := &Task{
		eng:    e,
		home:   e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	e.nTasks++
	t.liveIdx = len(e.live)
	e.live = append(e.live, t)
	go func() {
		<-t.resume // wait for first dispatch
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedPanic); !ok {
					t.eng.failure = taskFailure{name: t.name, val: r}
				}
			}
			t.done = true
			t.home.nTasks--
			for _, f := range t.onKill {
				f()
			}
			t.yield <- struct{}{}
		}()
		if t.killed {
			panic(killedPanic{t.name})
		}
		fn(t)
	}()
	e.atOwned(e.now, func() {
		if !t.done {
			e.dispatch(t)
		}
	})
	return t
}

// dispatch hands the virtual CPU to t until it parks or finishes. It must be
// called from engine context (inside an event callback).
func (e *Engine) dispatch(t *Task) {
	if e.clu != nil && !e.running {
		panic(fmt.Sprintf(
			"sim: task %q (shard %d) dispatched outside its shard's execution window: "+
				"tasks never migrate between shards; route cross-shard work through the "+
				"mailbox (Engine.Send) or the global phase (Engine.Global)",
			t.name, e.id))
	}
	prev := e.cur
	e.cur = t
	t.started = true
	if e.Trace != nil {
		e.Trace(e.now, "run "+t.name)
	}
	t.resume <- struct{}{}
	<-t.yield
	e.cur = prev
	if e.failure != nil {
		f := e.failure.(taskFailure)
		panic(fmt.Sprintf("sim: task %q panicked: %v", f.name, f.val))
	}
	if t.done {
		t.home.removeLive(t)
	}
}

// removeLive drops a finished task from the live set by swapping it with
// the last entry — O(1) instead of the O(n) splice it used to be. Live-set
// order is not meaningful; diagnostics that need determinism sort by name.
func (e *Engine) removeLive(t *Task) {
	i := t.liveIdx
	if i < 0 || i >= len(e.live) || e.live[i] != t {
		return
	}
	last := len(e.live) - 1
	e.live[i] = e.live[last]
	e.live[i].liveIdx = i
	e.live[last] = nil
	e.live = e.live[:last]
	t.liveIdx = -1
}

// Name returns the task's name.
func (t *Task) Name() string { return t.name }

// Engine returns the engine the task runs on.
func (t *Task) Engine() *Engine { return t.eng }

// Now returns the current virtual time.
func (t *Task) Now() Time { return t.eng.now }

// Done reports whether the task has finished.
func (t *Task) Done() bool { return t.done }

// Killed reports whether the task has been killed.
func (t *Task) Killed() bool { return t.killed }

// park suspends the task until another party calls wake. Must be called from
// the task's own goroutine while it holds the virtual CPU.
func (t *Task) park() {
	if t.killed {
		panic(killedPanic{t.name})
	}
	t.parked = true
	t.yield <- struct{}{}
	<-t.resume
	if t.killed {
		panic(killedPanic{t.name})
	}
}

// wake resumes a parked task. Must be called from engine context (an event
// callback); waking from task context goes through WakeSoon.
func (t *Task) wake(timedOut bool) {
	if t.done || !t.parked {
		return
	}
	t.parked = false
	t.timedOut = timedOut
	t.wakeEv = nil
	t.eng.dispatch(t)
}

// WakeSoon schedules the parked task to resume at the current virtual time.
// Safe to call from any simulation context. Waking a task that is not parked
// is a no-op. During a cluster's global phase, waking a cell task adopts it
// onto the global shard for one dispatch (see Cluster.adoptRun) — this is
// how futures and barriers resolved by global-phase code resume their
// cross-cell waiters deterministically.
func (t *Task) WakeSoon() {
	e := t.eng
	if c := e.clu; c != nil && c.phase.Load() == phaseG && e.id != 0 {
		g := c.shards[0]
		g.atOwned(g.now, func() { c.adoptRun(t) })
		return
	}
	e.atOwned(e.now, func() { t.wake(false) })
}

// Sleep suspends the task for d nanoseconds of virtual time.
func (t *Task) Sleep(d Time) {
	if d < 0 {
		// Yield: reschedule self after simultaneous events.
		d = 0
	}
	t.wakeEv = t.eng.atOwned(t.eng.now+d, func() { t.wake(false) })
	t.park()
}

// SleepEvent suspends the task for d nanoseconds but exposes the wake event
// before parking via register, so another party may Reschedule it (interrupt
// time-stealing) while the task sleeps. The exposed event is never recycled,
// so holding the pointer past the sleep is safe.
func (t *Task) SleepEvent(d Time, register func(*Event)) {
	ev := t.eng.After(d, func() { t.wake(false) })
	t.wakeEv = ev
	if register != nil {
		register(ev)
	}
	t.park()
}

// Block parks the task indefinitely until something wakes it (via WakeSoon
// or a wait-queue). Use BlockTimeout when a bound is needed.
func (t *Task) Block() {
	t.park()
}

// BlockTimeout parks the task for at most d; it reports whether the wait
// timed out rather than being woken.
func (t *Task) BlockTimeout(d Time) (timedOut bool) {
	tev := t.eng.After(d, func() { t.wake(true) })
	t.wakeEv = tev
	t.park()
	tev.Cancel()
	tev.engine.release(tev) // this call held the only reference
	return t.timedOut
}

// Kill terminates the task: if it is parked it unwinds immediately (running
// its defers); if it is runnable it unwinds at its next suspension point.
// Safe to call from any simulation context, including the task itself.
func (t *Task) Kill() {
	if t.done || t.killed {
		return
	}
	t.killed = true
	if t == t.eng.cur {
		panic(killedPanic{t.name})
	}
	t.eng.atOwned(t.eng.now, func() {
		if t.done {
			return
		}
		if t.parked {
			t.parked = false
			t.eng.dispatch(t)
		}
	})
}

// OnKill registers fn to run (in engine context) after the task finishes or
// is killed.
func (t *Task) OnKill(fn func()) { t.onKill = append(t.onKill, fn) }
