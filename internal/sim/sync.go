package sim

// Synchronization primitives in virtual time. Because the engine is a single
// logical thread, these need no real locking; they exist to order simulated
// threads and to let kernel code be written in natural blocking style.

// Mutex is a FIFO mutual-exclusion lock in virtual time.
type Mutex struct {
	owner   *Task
	waiters []*Task
}

// Lock acquires the mutex, parking t until it is available.
func (m *Mutex) Lock(t *Task) {
	if m.owner == nil {
		m.owner = t
		return
	}
	m.waiters = append(m.waiters, t)
	t.park()
}

// TryLock acquires the mutex if it is free, reporting success.
func (m *Mutex) TryLock(t *Task) bool {
	if m.owner == nil {
		m.owner = t
		return true
	}
	return false
}

// Unlock releases the mutex, handing it to the longest waiter if any.
func (m *Mutex) Unlock(t *Task) {
	if m.owner != t {
		panic("sim: unlock of mutex not held by task " + t.name)
	}
	m.owner = nil
	m.wakeNext()
}

func (m *Mutex) wakeNext() {
	for len(m.waiters) > 0 {
		next := m.waiters[0]
		m.waiters = m.waiters[1:]
		if next.done || next.killed {
			continue
		}
		m.owner = next
		next.WakeSoon()
		return
	}
}

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.owner != nil }

// HeldBy reports whether t holds the mutex.
func (m *Mutex) HeldBy(t *Task) bool { return m.owner == t }

// ForceRelease releases the mutex regardless of owner; used by failure
// recovery when the owning task was killed mid-critical-section.
func (m *Mutex) ForceRelease() {
	m.owner = nil
	m.wakeNext()
}

// Semaphore is a counting semaphore in virtual time.
type Semaphore struct {
	n       int
	waiters []*Task
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(n int) *Semaphore { return &Semaphore{n: n} }

// Acquire takes one permit, parking until one is available.
func (s *Semaphore) Acquire(t *Task) {
	if s.n > 0 {
		s.n--
		return
	}
	s.waiters = append(s.waiters, t)
	t.park()
}

// TryAcquire takes a permit without blocking, reporting success.
func (s *Semaphore) TryAcquire() bool {
	if s.n > 0 {
		s.n--
		return true
	}
	return false
}

// Release returns one permit, waking the longest waiter if any.
func (s *Semaphore) Release() {
	for len(s.waiters) > 0 {
		next := s.waiters[0]
		s.waiters = s.waiters[1:]
		if next.done || next.killed {
			continue
		}
		next.WakeSoon()
		return
	}
	s.n++
}

// Available returns the number of free permits.
func (s *Semaphore) Available() int { return s.n }

// Cond is a condition variable associated with a Mutex.
type Cond struct {
	M       *Mutex
	waiters []*Task
}

// Wait atomically releases the mutex, parks, and reacquires on wake.
func (c *Cond) Wait(t *Task) {
	c.waiters = append(c.waiters, t)
	c.M.Unlock(t)
	t.park()
	c.M.Lock(t)
}

// WaitTimeout is Wait with an upper bound; reports whether it timed out.
func (c *Cond) WaitTimeout(t *Task, d Time) (timedOut bool) {
	c.waiters = append(c.waiters, t)
	c.M.Unlock(t)
	timedOut = t.BlockTimeout(d)
	if timedOut {
		for i, w := range c.waiters {
			if w == t {
				c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
				break
			}
		}
	}
	c.M.Lock(t)
	return timedOut
}

// Signal wakes one waiter.
func (c *Cond) Signal() {
	for len(c.waiters) > 0 {
		next := c.waiters[0]
		c.waiters = c.waiters[1:]
		if next.done || next.killed {
			continue
		}
		next.WakeSoon()
		return
	}
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		if !w.done && !w.killed {
			w.WakeSoon()
		}
	}
}

// Future is a write-once value that waiters can block on; the building block
// for RPC replies.
type Future struct {
	set     bool
	val     any
	err     error
	waiters []*Task
}

// Set completes the future, waking all waiters. Setting twice is a no-op so
// a late reply after a timeout-triggered retry cannot corrupt state.
func (f *Future) Set(val any, err error) {
	if f.set {
		return
	}
	f.set = true
	f.val = val
	f.err = err
	ws := f.waiters
	f.waiters = nil
	for _, w := range ws {
		if !w.done && !w.killed {
			w.WakeSoon()
		}
	}
}

// Ready reports whether the future has been completed.
func (f *Future) Ready() bool { return f.set }

// Wait blocks until the future completes and returns its value.
func (f *Future) Wait(t *Task) (any, error) {
	for !f.set {
		f.waiters = append(f.waiters, t)
		t.park()
	}
	return f.val, f.err
}

// WaitTimeout waits at most d; ok is false if the future is still unset.
func (f *Future) WaitTimeout(t *Task, d Time) (val any, err error, ok bool) {
	if f.set {
		return f.val, f.err, true
	}
	f.waiters = append(f.waiters, t)
	deadline := t.Now() + d
	for !f.set {
		remaining := deadline - t.Now()
		if remaining <= 0 {
			return nil, nil, false
		}
		if t.BlockTimeout(remaining) && !f.set {
			// Timed out: remove self from waiters.
			for i, w := range f.waiters {
				if w == t {
					f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
					break
				}
			}
			return nil, nil, false
		}
	}
	return f.val, f.err, true
}

// Queue is an unbounded FIFO with blocking Pop; models request queues.
type Queue struct {
	items   []any
	waiters []*Task
	closed  bool
}

// Push appends an item and wakes one waiter.
func (q *Queue) Push(v any) {
	q.items = append(q.items, v)
	for len(q.waiters) > 0 {
		next := q.waiters[0]
		q.waiters = q.waiters[1:]
		if next.done || next.killed {
			continue
		}
		next.WakeSoon()
		return
	}
}

// Pop removes the oldest item, blocking while the queue is empty. It returns
// ok=false if the queue is closed and drained.
func (q *Queue) Pop(t *Task) (any, bool) {
	for len(q.items) == 0 {
		if q.closed {
			return nil, false
		}
		q.waiters = append(q.waiters, t)
		t.park()
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// TryPop removes the oldest item without blocking.
func (q *Queue) TryPop() (any, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// Close marks the queue closed and wakes all waiters.
func (q *Queue) Close() {
	q.closed = true
	ws := q.waiters
	q.waiters = nil
	for _, w := range ws {
		if !w.done && !w.killed {
			w.WakeSoon()
		}
	}
}

// WaitGroup tracks a set of tasks and lets another task await them all.
type WaitGroup struct {
	n       int
	waiters []*Task
}

// Add increments the counter by delta.
func (wg *WaitGroup) Add(delta int) {
	wg.n += delta
	if wg.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.n == 0 {
		wg.release()
	}
}

// Done decrements the counter.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks until the counter reaches zero.
func (wg *WaitGroup) Wait(t *Task) {
	for wg.n > 0 {
		wg.waiters = append(wg.waiters, t)
		t.park()
	}
}

func (wg *WaitGroup) release() {
	ws := wg.waiters
	wg.waiters = nil
	for _, w := range ws {
		if !w.done && !w.killed {
			w.WakeSoon()
		}
	}
}

// Barrier is a reusable N-party barrier; recovery's double global barrier
// (§4.3 of the paper) is built on it.
type Barrier struct {
	parties int
	arrived int
	gen     int
	waiters []*Task
}

// NewBarrier returns a barrier for n parties.
func NewBarrier(n int) *Barrier { return &Barrier{parties: n} }

// SetParties changes the party count (used when the live set shrinks after a
// cell failure). If the new count is already satisfied the barrier opens.
func (b *Barrier) SetParties(n int) {
	b.parties = n
	if b.arrived >= b.parties {
		b.open()
	}
}

// Await arrives at the barrier and blocks until all parties have arrived.
func (b *Barrier) Await(t *Task) {
	gen := b.gen
	b.arrived++
	if b.arrived >= b.parties {
		b.open()
		return
	}
	for b.gen == gen {
		b.waiters = append(b.waiters, t)
		t.park()
	}
}

// Arrived returns how many parties have arrived in the current generation.
func (b *Barrier) Arrived() int { return b.arrived }

func (b *Barrier) open() {
	b.gen++
	b.arrived = 0
	ws := b.waiters
	b.waiters = nil
	for _, w := range ws {
		if !w.done && !w.killed {
			w.WakeSoon()
		}
	}
}
