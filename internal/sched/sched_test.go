package sched

import (
	"fmt"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

func newSched(t *testing.T, cpus int) (*sim.Engine, *Scheduler, *machine.Machine) {
	t.Helper()
	e := sim.NewEngine(13)
	cfg := machine.DefaultConfig()
	cfg.Nodes = cpus
	cfg.MemPerNodeMB = 1
	m := machine.New(e, cfg)
	return e, New(0, m.Procs), m
}

func TestComputeSingleCPUSerializes(t *testing.T) {
	e, s, _ := newSched(t, 1)
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		e.Go(fmt.Sprintf("p%d", i), func(tk *sim.Task) {
			s.Compute(tk, 30*sim.Millisecond)
			ends = append(ends, tk.Now())
		})
	}
	e.Run(0)
	if len(ends) != 2 {
		t.Fatalf("ends = %v", ends)
	}
	// Two 30 ms jobs on one CPU: total wall ≥ 60 ms (plus switches).
	last := ends[1]
	if ends[0] > last {
		last = ends[0]
	}
	if last < 60*sim.Millisecond {
		t.Fatalf("finished at %v — jobs overlapped on one CPU", last)
	}
}

func TestComputeTimeslicesInterleave(t *testing.T) {
	e, s, _ := newSched(t, 1)
	var firstDone, secondDone sim.Time
	e.Go("long", func(tk *sim.Task) {
		s.Compute(tk, 100*sim.Millisecond)
		firstDone = tk.Now()
	})
	e.Go("short", func(tk *sim.Task) {
		s.Compute(tk, 10*sim.Millisecond)
		secondDone = tk.Now()
	})
	e.Run(0)
	// The short job must not wait for the whole long job: with 10 ms
	// slices it finishes far before the long one.
	if secondDone >= firstDone {
		t.Fatalf("short=%v long=%v — no timeslicing", secondDone, firstDone)
	}
}

func TestComputeParallelOnTwoCPUs(t *testing.T) {
	e, s, _ := newSched(t, 2)
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		e.Go(fmt.Sprintf("p%d", i), func(tk *sim.Task) {
			s.Compute(tk, 30*sim.Millisecond)
			ends = append(ends, tk.Now())
		})
	}
	e.Run(0)
	for _, end := range ends {
		if end > 35*sim.Millisecond {
			t.Fatalf("end = %v — jobs serialized despite two CPUs", end)
		}
	}
}

func TestFreezeThaw(t *testing.T) {
	e, s, _ := newSched(t, 1)
	var resumedAt sim.Time
	e.Go("user", func(tk *sim.Task) {
		s.Compute(tk, 5*sim.Millisecond)
		s.Compute(tk, 5*sim.Millisecond) // blocked while frozen
		resumedAt = tk.Now()
	})
	e.At(2*sim.Millisecond, func() { s.Freeze() })
	e.At(50*sim.Millisecond, func() { s.Thaw() })
	e.Run(0)
	if !((resumedAt >= 50*sim.Millisecond) && resumedAt < 70*sim.Millisecond) {
		t.Fatalf("resumed at %v, want shortly after thaw at 50ms", resumedAt)
	}
	if s.Frozen() {
		t.Fatal("still frozen")
	}
}

func TestSystemNotFrozen(t *testing.T) {
	// Kernel-mode work proceeds during recovery's user freeze (§4.3).
	e, s, _ := newSched(t, 1)
	s.Freeze()
	var done sim.Time
	e.Go("kernel", func(tk *sim.Task) {
		s.System(tk, 5*sim.Millisecond)
		done = tk.Now()
	})
	e.Run(100 * sim.Millisecond)
	if done == 0 || done > 10*sim.Millisecond {
		t.Fatalf("kernel work done at %v despite freeze", done)
	}
}

func TestReserveAndRelease(t *testing.T) {
	e, s, _ := newSched(t, 4)
	if !s.Reserve(2) {
		t.Fatal("reserve failed")
	}
	if s.CPUCount() != 2 {
		t.Fatalf("cpu count = %d", s.CPUCount())
	}
	if s.Reserve(4) {
		t.Fatal("over-reservation accepted")
	}
	if !s.Reserve(0) {
		t.Fatal("release failed")
	}
	if s.CPUCount() != 4 {
		t.Fatalf("cpu count = %d", s.CPUCount())
	}
	_ = e
}

func TestReserveLimitsParallelism(t *testing.T) {
	e, s, _ := newSched(t, 2)
	s.Reserve(1) // one CPU space-shared away
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		e.Go(fmt.Sprintf("p%d", i), func(tk *sim.Task) {
			s.Compute(tk, 20*sim.Millisecond)
			ends = append(ends, tk.Now())
		})
	}
	e.Run(0)
	var max sim.Time
	for _, v := range ends {
		if v > max {
			max = v
		}
	}
	if max < 40*sim.Millisecond {
		t.Fatalf("finished at %v — reservation not honoured", max)
	}
}

func TestGangComputeHoldsAllCPUs(t *testing.T) {
	e, s, _ := newSched(t, 2)
	var gangDone, otherDone sim.Time
	e.Go("gang", func(tk *sim.Task) {
		s.GangCompute(tk, 20*sim.Millisecond)
		gangDone = tk.Now()
	})
	e.Go("other", func(tk *sim.Task) {
		tk.Sleep(sim.Millisecond)
		s.Compute(tk, 5*sim.Millisecond)
		otherDone = tk.Now()
	})
	e.Run(0)
	if otherDone < gangDone {
		t.Fatalf("other (%v) ran during the gang burst (ends %v)", otherDone, gangDone)
	}
	if s.Metrics.Counter("sched.gang_bursts").Value() != 1 {
		t.Fatal("gang burst not counted")
	}
}

func TestPickSkipsHaltedCPUs(t *testing.T) {
	e, s, m := newSched(t, 2)
	m.Procs[0].Halt()
	done := false
	e.Go("p", func(tk *sim.Task) {
		s.Compute(tk, 5*sim.Millisecond)
		done = true
	})
	e.Run(sim.Second)
	if !done {
		t.Fatal("compute stuck on halted CPU")
	}
}

func TestBatchPolicyRunsToCompletion(t *testing.T) {
	// §8 heterogeneous management: a Batch cell runs jobs to completion,
	// so a short job behind a long one waits for the whole long job.
	e, s, _ := newSched(t, 1)
	s.Policy = Batch
	var shortDone sim.Time
	e.Go("long", func(tk *sim.Task) { s.Compute(tk, 100*sim.Millisecond) })
	e.Go("short", func(tk *sim.Task) {
		s.Compute(tk, 5*sim.Millisecond)
		shortDone = tk.Now()
	})
	e.Run(0)
	if shortDone < 100*sim.Millisecond {
		t.Fatalf("short finished at %v — Batch policy timesliced", shortDone)
	}
}
