// Package sched is the per-cell processor scheduler: it time-slices the
// cell's processors among runnable processes, lets interrupt handlers steal
// time (via the machine layer), and exposes the gang-scheduling and
// space-sharing hooks that Wax drives (Table 3.4 of the paper).
package sched

import (
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Policy selects a cell's scheduling discipline — §8's heterogeneous
// resource management: "a multicellular operating system can segregate
// processes by type and use different strategies in different cells".
type Policy int

const (
	// Timeshare is the classic UNIX quantum-based discipline.
	Timeshare Policy = iota
	// Batch runs each compute request to completion (no involuntary
	// slice boundaries) — throughput-oriented cells.
	Batch
)

// DefaultTimeslice matches a classic 10 ms UNIX quantum.
const DefaultTimeslice = 10 * sim.Millisecond

// ContextSwitch is charged at every involuntary slice boundary.
const ContextSwitch = 10 * sim.Microsecond

// Scheduler multiplexes one cell's CPUs.
type Scheduler struct {
	CellID    int
	Procs     []*machine.Processor
	Timeslice sim.Time
	Policy    Policy

	cpus    *sim.Semaphore
	rr      int
	Metrics *stats.Registry

	// reserved CPUs are space-shared out of the general pool (Wax's
	// "granting a set of processors exclusively to a process").
	reserved int

	// frozen suspends user-level compute (recovery suspends user
	// processes while kernel-level work continues, §4.3).
	frozen      bool
	thawWaiters []*sim.Task
}

// Freeze suspends user-level computation at the next slice boundary.
func (s *Scheduler) Freeze() { s.frozen = true }

// Thaw resumes user-level computation.
func (s *Scheduler) Thaw() {
	s.frozen = false
	ws := s.thawWaiters
	s.thawWaiters = nil
	for _, w := range ws {
		if !w.Done() {
			w.WakeSoon()
		}
	}
}

// Frozen reports whether user compute is suspended.
func (s *Scheduler) Frozen() bool { return s.frozen }

func (s *Scheduler) waitThaw(t *sim.Task) {
	for s.frozen {
		s.thawWaiters = append(s.thawWaiters, t)
		t.Block()
	}
}

// New returns a scheduler over the given processors.
func New(cellID int, procs []*machine.Processor) *Scheduler {
	return &Scheduler{
		CellID:    cellID,
		Procs:     procs,
		Timeslice: DefaultTimeslice,
		cpus:      sim.NewSemaphore(len(procs)),
		Metrics:   stats.NewRegistry(),
	}
}

// pick returns the next CPU round-robin, skipping halted ones.
func (s *Scheduler) pick() *machine.Processor {
	for i := 0; i < len(s.Procs); i++ {
		p := s.Procs[(s.rr+i)%len(s.Procs)]
		if !p.Halted() {
			s.rr = (s.rr + i + 1) % len(s.Procs)
			return p
		}
	}
	return s.Procs[0]
}

// Compute runs d nanoseconds of user-mode CPU work for task t, acquiring a
// processor and yielding at each timeslice so runnable peers interleave.
// Interrupts arriving on the chosen CPU extend the burst (time stealing).
func (s *Scheduler) Compute(t *sim.Task, d sim.Time) {
	first := true
	for d > 0 {
		s.waitThaw(t)
		s.cpus.Acquire(t)
		if !first {
			s.Metrics.Counter("sched.switches").Inc()
			s.pick() // charge nothing extra; switch cost below
		}
		slice := s.Timeslice
		if s.Policy == Batch {
			slice = d // run to completion
		}
		if d < slice {
			slice = d
		}
		p := s.pick()
		if !first {
			p.Use(t, ContextSwitch)
		}
		p.Use(t, slice)
		d -= slice
		s.cpus.Release()
		first = false
	}
}

// System runs kernel-mode work for t on any CPU without a slice boundary
// (syscall paths are not preempted in this model).
func (s *Scheduler) System(t *sim.Task, d sim.Time) {
	s.pick().Use(t, d)
}

// SystemShared runs kernel-mode work that competes for a CPU with user
// compute (used by throughput probes where kernel time must occupy real
// processor capacity).
func (s *Scheduler) SystemShared(t *sim.Task, d sim.Time) {
	s.cpus.Acquire(t)
	s.pick().Use(t, d)
	s.cpus.Release()
}

// CPUCount returns the number of schedulable processors.
func (s *Scheduler) CPUCount() int { return len(s.Procs) - s.reserved }

// Reserve space-shares n CPUs out of the pool (Wax hint); it reports
// whether the reservation fit.
func (s *Scheduler) Reserve(n int) bool {
	if n < 0 || n > len(s.Procs)-1 {
		return false
	}
	delta := n - s.reserved
	if delta > 0 {
		for i := 0; i < delta; i++ {
			if !s.cpus.TryAcquire() {
				// Roll back partial reservation.
				for j := 0; j < i; j++ {
					s.cpus.Release()
				}
				return false
			}
		}
	} else {
		for i := 0; i < -delta; i++ {
			s.cpus.Release()
		}
	}
	s.reserved = n
	return true
}

// GangCompute runs a gang-scheduled burst: the task holds every
// unreserved CPU for its duration, as Wax's gang-scheduling policy would
// arrange for the threads of a parallel application.
func (s *Scheduler) GangCompute(t *sim.Task, d sim.Time) {
	n := len(s.Procs) - s.reserved
	for i := 0; i < n; i++ {
		s.cpus.Acquire(t)
	}
	s.pick().Use(t, d)
	for i := 0; i < n; i++ {
		s.cpus.Release()
	}
	s.Metrics.Counter("sched.gang_bursts").Inc()
}
