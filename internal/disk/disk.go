// Package disk models a disk drive in the style of the HP 97560 model the
// paper cites (Kotz, Toh, Radhakrishnan, Dartmouth PCS-TR94-20): a seek
// curve, rotational positioning, per-sector transfer, and FIFO queueing at
// the drive. SimOS modelled both DMA latency and controller occupancy; we
// fold controller occupancy into the per-request overhead.
package disk

import (
	"math"

	"repro/internal/sim"
)

// Config describes a drive.
type Config struct {
	Cylinders      int
	RPM            int
	SectorsPerTrk  int
	SectorBytes    int
	TracksPerCyl   int
	SeekAvgMs      float64 // published average seek
	SeekMaxMs      float64
	ControllerOvNs sim.Time // per-request controller + DMA setup overhead
}

// HP97560 returns the parameters of the HP 97560 drive (1.3 GB, 5400 RPM).
func HP97560() Config {
	return Config{
		Cylinders:      1962,
		RPM:            4002,
		SectorsPerTrk:  72,
		SectorBytes:    512,
		TracksPerCyl:   19,
		SeekAvgMs:      13.5,
		SeekMaxMs:      25.0,
		ControllerOvNs: 200_000, // 0.2 ms controller occupancy + DMA setup
	}
}

// Drive is one disk with a FIFO request queue in virtual time.
type Drive struct {
	cfg     Config
	eng     *sim.Engine
	busy    *sim.Mutex
	headCyl int

	// Stats
	Reads, Writes int64
	BusyTime      sim.Time
}

// New returns a drive on the given engine.
func New(e *sim.Engine, cfg Config) *Drive {
	return &Drive{cfg: cfg, eng: e, busy: &sim.Mutex{}}
}

// Rebind moves the drive onto another engine. Sharded boots call it (via
// machine.BindShard) so each node's drive draws rotational latency from its
// owning cell's shard RNG and schedules on that shard's heap.
func (d *Drive) Rebind(e *sim.Engine) { d.eng = e }

// Capacity returns the drive size in bytes.
func (d *Drive) Capacity() int64 {
	c := d.cfg
	return int64(c.Cylinders) * int64(c.TracksPerCyl) * int64(c.SectorsPerTrk) * int64(c.SectorBytes)
}

// rotationNs returns the time for one full revolution.
func (d *Drive) rotationNs() sim.Time {
	return sim.Time(60.0 / float64(d.cfg.RPM) * 1e9)
}

// seekNs models the seek curve: a short constant settle plus a square-root
// distance term calibrated so a one-third-stroke seek matches SeekAvgMs.
func (d *Drive) seekNs(from, to int) sim.Time {
	dist := to - from
	if dist < 0 {
		dist = -dist
	}
	if dist == 0 {
		return 0
	}
	settle := 2.0 // ms
	third := float64(d.cfg.Cylinders) / 3
	k := (d.cfg.SeekAvgMs - settle) / math.Sqrt(third)
	ms := settle + k*math.Sqrt(float64(dist))
	if ms > d.cfg.SeekMaxMs {
		ms = d.cfg.SeekMaxMs
	}
	return sim.Time(ms * 1e6)
}

// transferNs returns the media transfer time for n bytes.
func (d *Drive) transferNs(n int) sim.Time {
	perSector := d.rotationNs() / sim.Time(d.cfg.SectorsPerTrk)
	sectors := (n + d.cfg.SectorBytes - 1) / d.cfg.SectorBytes
	if sectors == 0 {
		sectors = 1
	}
	return perSector * sim.Time(sectors)
}

// access performs one I/O of n bytes at byte offset off, blocking task t for
// queueing plus mechanical latency.
func (d *Drive) access(t *sim.Task, off int64, n int, write bool) {
	d.busy.Lock(t)
	start := t.Now()

	bytesPerCyl := int64(d.cfg.TracksPerCyl) * int64(d.cfg.SectorsPerTrk) * int64(d.cfg.SectorBytes)
	cyl := int(off / bytesPerCyl)
	if cyl >= d.cfg.Cylinders {
		cyl = cyl % d.cfg.Cylinders
	}

	lat := d.cfg.ControllerOvNs
	lat += d.seekNs(d.headCyl, cyl)
	// Rotational delay: uniformly distributed over one revolution.
	lat += sim.Time(d.eng.Rand().Int63n(int64(d.rotationNs())))
	lat += d.transferNs(n)
	d.headCyl = cyl

	t.Sleep(lat)
	d.BusyTime += t.Now() - start
	if write {
		d.Writes++
	} else {
		d.Reads++
	}
	d.busy.Unlock(t)
}

// Read blocks t for the latency of reading n bytes at offset off.
func (d *Drive) Read(t *sim.Task, off int64, n int) { d.access(t, off, n, false) }

// Write blocks t for the latency of writing n bytes at offset off.
func (d *Drive) Write(t *sim.Task, off int64, n int) { d.access(t, off, n, true) }
