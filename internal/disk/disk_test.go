package disk

import (
	"testing"

	"repro/internal/sim"
)

func TestCapacity(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, HP97560())
	// HP 97560 is a ~1.3 GB drive.
	gb := float64(d.Capacity()) / (1 << 30)
	if gb < 1.0 || gb > 1.6 {
		t.Fatalf("capacity = %.2f GB", gb)
	}
}

func TestReadLatencyPlausible(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, HP97560())
	var lat sim.Time
	e.Go("t", func(tk *sim.Task) {
		start := tk.Now()
		d.Read(tk, 1<<28, 4096)
		lat = tk.Now() - start
	})
	e.Run(0)
	// Seek + rotation + transfer for one page: single-digit to tens of ms.
	if lat < 2*sim.Millisecond || lat > 50*sim.Millisecond {
		t.Fatalf("4 KB read latency = %v", lat)
	}
	if d.Reads != 1 {
		t.Fatalf("Reads = %d", d.Reads)
	}
}

func TestSequentialFasterThanRandom(t *testing.T) {
	measure := func(stride int64) sim.Time {
		e := sim.NewEngine(7)
		d := New(e, HP97560())
		var total sim.Time
		e.Go("t", func(tk *sim.Task) {
			start := tk.Now()
			off := int64(0)
			for i := 0; i < 20; i++ {
				d.Read(tk, off, 4096)
				off += stride
			}
			total = tk.Now() - start
		})
		e.Run(0)
		return total
	}
	seq := measure(4096)
	random := measure(50 << 20)
	if seq >= random {
		t.Fatalf("sequential (%v) not faster than random (%v)", seq, random)
	}
}

func TestRequestsSerializeAtDrive(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, HP97560())
	var done []sim.Time
	for i := 0; i < 3; i++ {
		e.Go("t", func(tk *sim.Task) {
			d.Read(tk, 0, 4096)
			done = append(done, tk.Now())
		})
	}
	e.Run(0)
	if len(done) != 3 {
		t.Fatalf("completions = %d", len(done))
	}
	for i := 1; i < len(done); i++ {
		if done[i] <= done[i-1] {
			t.Fatalf("requests overlapped: %v", done)
		}
	}
}

func TestWriteCounts(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, HP97560())
	e.Go("t", func(tk *sim.Task) {
		d.Write(tk, 0, 8192)
	})
	e.Run(0)
	if d.Writes != 1 || d.BusyTime == 0 {
		t.Fatalf("Writes=%d BusyTime=%v", d.Writes, d.BusyTime)
	}
}

func TestLargeTransferScales(t *testing.T) {
	e := sim.NewEngine(3)
	d := New(e, HP97560())
	var small, large sim.Time
	e.Go("t", func(tk *sim.Task) {
		s := tk.Now()
		d.Read(tk, 0, 4096)
		small = tk.Now() - s
		s = tk.Now()
		d.Read(tk, 0, 1<<20)
		large = tk.Now() - s
	})
	e.Run(0)
	if large <= small {
		t.Fatalf("1 MB (%v) not slower than 4 KB (%v)", large, small)
	}
}
