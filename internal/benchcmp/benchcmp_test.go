package benchcmp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func report(quick bool, exps ...Experiment) *Report {
	return &Report{Name: "hivebench", Quick: quick, Experiments: exps}
}

func exp(id string, kv ...any) Experiment {
	m := map[string]float64{}
	for i := 0; i < len(kv); i += 2 {
		m[kv[i].(string)] = kv[i+1].(float64)
	}
	return Experiment{ID: id, Metrics: m}
}

func TestIdenticalReportsPass(t *testing.T) {
	base := report(true, exp("t52", "local_us", 6.9, "remote_us", 50.7))
	res := Compare(base, base, 0.05)
	if !res.OK() || res.Compared != 2 {
		t.Fatalf("identical reports should pass: %+v", res)
	}
}

func TestRegressionBeyondToleranceFails(t *testing.T) {
	base := report(true, exp("t52", "remote_us", 50.7))
	cand := report(true, exp("t52", "remote_us", 50.7*1.06)) // +6% > 5% gate
	res := Compare(base, cand, 0.05)
	if res.OK() {
		t.Fatal("6% regression passed the 5% gate")
	}
	if !strings.Contains(res.Failures[0], "t52/remote_us") {
		t.Fatalf("failure should name the metric: %q", res.Failures[0])
	}
}

func TestDriftWithinTolerancePasses(t *testing.T) {
	base := report(true, exp("t52", "remote_us", 50.7))
	cand := report(true, exp("t52", "remote_us", 50.7*1.04)) // +4% < 5%
	if res := Compare(base, cand, 0.05); !res.OK() {
		t.Fatalf("4%% drift failed the 5%% gate: %v", res.Failures)
	}
}

func TestImprovementBeyondToleranceAlsoFails(t *testing.T) {
	// A large "improvement" in a deterministic metric is still an
	// unexplained behavior change; the baseline must be refreshed
	// deliberately, not drift silently.
	base := report(true, exp("t74", "s1_avg_detect_ms", 16.0))
	cand := report(true, exp("t74", "s1_avg_detect_ms", 10.0))
	if res := Compare(base, cand, 0.05); res.OK() {
		t.Fatal("37% improvement should still trip the drift gate")
	}
}

func TestZeroBaselineFailsOnNonzeroCandidate(t *testing.T) {
	base := report(true, exp("t74", "failures", 0.0))
	cand := report(true, exp("t74", "failures", 1.0))
	if res := Compare(base, cand, 0.05); res.OK() {
		t.Fatal("0 -> 1 change passed")
	}
	if res := Compare(base, base, 0.05); !res.OK() {
		t.Fatal("0 -> 0 should pass")
	}
}

func TestMissingExperimentFails(t *testing.T) {
	base := report(true, exp("t52", "local_us", 6.9), exp("rpc6", "null_us", 7.2))
	cand := report(true, exp("t52", "local_us", 6.9))
	res := Compare(base, cand, 0.05)
	if res.OK() {
		t.Fatal("dropped experiment passed")
	}
	if !strings.Contains(res.Failures[0], `"rpc6"`) {
		t.Fatalf("failure should name the experiment: %q", res.Failures[0])
	}
}

func TestMissingMetricFails(t *testing.T) {
	base := report(true, exp("t52", "local_us", 6.9, "remote_us", 50.7))
	cand := report(true, exp("t52", "local_us", 6.9))
	if res := Compare(base, cand, 0.05); res.OK() {
		t.Fatal("dropped metric passed")
	}
}

func TestNewExperimentAndMetricWarn(t *testing.T) {
	base := report(true, exp("t52", "local_us", 6.9))
	cand := report(true, exp("t52", "local_us", 6.9, "extra_us", 1.0), exp("scale", "events_8c", 100.0))
	res := Compare(base, cand, 0.05)
	if !res.OK() {
		t.Fatalf("additions should warn, not fail: %v", res.Failures)
	}
	if len(res.Warnings) != 2 {
		t.Fatalf("want 2 warnings, got %v", res.Warnings)
	}
}

func TestQuickMismatchFails(t *testing.T) {
	base := report(true, exp("t52", "local_us", 6.9))
	cand := report(false, exp("t52", "local_us", 6.9))
	res := Compare(base, cand, 0.05)
	if res.OK() {
		t.Fatal("quick-mode mismatch passed")
	}
	if !strings.Contains(res.Failures[0], "quick-mode mismatch") {
		t.Fatalf("unexpected failure: %q", res.Failures[0])
	}
}

func TestFailureOrderIsStable(t *testing.T) {
	base := report(true, exp("t52", "a", 1.0, "b", 2.0, "c", 3.0))
	cand := report(true, exp("t52", "a", 2.0, "b", 4.0, "c", 6.0))
	first := Compare(base, cand, 0.05)
	for i := 0; i < 20; i++ {
		if got := Compare(base, cand, 0.05); strings.Join(got.Failures, "\n") != strings.Join(first.Failures, "\n") {
			t.Fatal("failure order varies across runs")
		}
	}
}

func TestLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.json")
	doc := `{"name":"hivebench","quick":true,"experiments":[
		{"id":"t52","wall_ms":24.0,"metrics":{"local_us":6.9}}]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Quick || len(r.Experiments) != 1 || r.Experiments[0].Metrics["local_us"] != 6.9 {
		t.Fatalf("bad parse: %+v", r)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file should error")
	}
}
