// Package benchcmp compares two hivebench -json reports and flags
// performance regressions. It is the library behind `make bench-gate`:
// the committed BENCH_hive.json is the baseline, a freshly generated
// report is the candidate, and any deterministic metric drifting beyond
// the tolerance fails the gate.
//
// Only the experiments' metrics participate: they derive from virtual
// time and event counts, so on a healthy tree they are byte-identical
// run to run and any drift is a real behavior change. Wall-clock fields
// (wall_ms, total_wall_ms) vary with the host and are ignored.
package benchcmp

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// Report is the subset of the hivebench -json document the gate reads.
type Report struct {
	Name        string       `json:"name"`
	Quick       bool         `json:"quick"`
	Experiments []Experiment `json:"experiments"`
}

// Experiment is one experiment's entry in a report.
type Experiment struct {
	ID      string             `json:"id"`
	Metrics map[string]float64 `json:"metrics"`
}

// Load reads and parses a report file.
func Load(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("benchcmp: parse %s: %w", path, err)
	}
	return &r, nil
}

// Result is the outcome of one comparison. Failures make the gate exit
// nonzero; warnings (new experiments or metrics not in the baseline) are
// informational — they mean the baseline needs a refresh, not that the
// tree regressed.
type Result struct {
	Failures []string
	Warnings []string
	Compared int // metrics checked against the baseline
}

// OK reports whether the candidate passed the gate.
func (r *Result) OK() bool { return len(r.Failures) == 0 }

// Compare checks the candidate report against the baseline. A metric
// fails when its relative drift exceeds tol (e.g. 0.05 for the 5% gate);
// a baseline metric of exactly zero fails on any nonzero candidate
// value, since relative drift is undefined there. Experiments or metrics
// present in the baseline but missing from the candidate fail (the bench
// lost coverage); ones only in the candidate warn. Reports generated at
// different -quick settings are not comparable and fail outright.
func Compare(baseline, candidate *Report, tol float64) *Result {
	res := &Result{}
	if baseline.Quick != candidate.Quick {
		res.Failures = append(res.Failures, fmt.Sprintf(
			"quick-mode mismatch: baseline quick=%v, candidate quick=%v (regenerate with matching flags)",
			baseline.Quick, candidate.Quick))
		return res
	}

	candExps := make(map[string]Experiment, len(candidate.Experiments))
	for _, e := range candidate.Experiments {
		candExps[e.ID] = e
	}
	baseIDs := make(map[string]bool, len(baseline.Experiments))

	for _, be := range baseline.Experiments {
		baseIDs[be.ID] = true
		ce, ok := candExps[be.ID]
		if !ok {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"experiment %q: in baseline but missing from candidate", be.ID))
			continue
		}
		for _, name := range sortedKeys(be.Metrics) {
			base := be.Metrics[name]
			cand, ok := ce.Metrics[name]
			if !ok {
				res.Failures = append(res.Failures, fmt.Sprintf(
					"%s/%s: in baseline but missing from candidate", be.ID, name))
				continue
			}
			res.Compared++
			if drift, bad := exceeds(base, cand, tol); bad {
				res.Failures = append(res.Failures, fmt.Sprintf(
					"%s/%s: %g -> %g (%+.1f%%, tolerance ±%.1f%%)",
					be.ID, name, base, cand, drift*100, tol*100))
			}
		}
		for _, name := range sortedKeys(ce.Metrics) {
			if _, ok := be.Metrics[name]; !ok {
				res.Warnings = append(res.Warnings, fmt.Sprintf(
					"%s/%s: new metric not in baseline (refresh with `make bench-report`)", be.ID, name))
			}
		}
	}
	for _, ce := range candidate.Experiments {
		if !baseIDs[ce.ID] {
			res.Warnings = append(res.Warnings, fmt.Sprintf(
				"experiment %q: new, not in baseline (refresh with `make bench-report`)", ce.ID))
		}
	}
	return res
}

// exceeds returns the signed relative drift and whether it breaks tol.
func exceeds(base, cand, tol float64) (float64, bool) {
	if base == cand {
		return 0, false
	}
	if base == 0 {
		return math.Inf(sign(cand)), true
	}
	drift := (cand - base) / math.Abs(base)
	return drift, math.Abs(drift) > tol
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// sortedKeys returns the map's keys in sorted order so failure lists are
// stable across runs.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
