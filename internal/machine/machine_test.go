package machine

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testMachine(t *testing.T, nodes int) (*sim.Engine, *Machine) {
	t.Helper()
	e := sim.NewEngine(42)
	cfg := DefaultConfig()
	cfg.Nodes = nodes
	cfg.MemPerNodeMB = 1 // keep page arrays small in tests
	return e, New(e, cfg)
}

// run executes fn as a task and drains the engine.
func run(e *sim.Engine, fn func(t *sim.Task)) {
	e.Go("test", fn)
	e.Run(0)
}

func TestPageOwnership(t *testing.T) {
	_, m := testMachine(t, 4)
	if m.PagesPerNode != 1<<20/4096 {
		t.Fatalf("PagesPerNode = %d", m.PagesPerNode)
	}
	for n := 0; n < 4; n++ {
		lo, hi := m.NodePages(n)
		if m.HomeNode(lo) != n || m.HomeNode(hi-1) != n {
			t.Fatalf("node %d range [%d,%d) misattributed", n, lo, hi)
		}
	}
}

func TestBootFirewallLocalOnly(t *testing.T) {
	_, m := testMachine(t, 4)
	lo, _ := m.NodePages(2)
	if m.Firewall(lo) != m.NodeProcMask(2) {
		t.Fatalf("boot firewall = %x", m.Firewall(lo))
	}
	if m.WritableByRemote(lo) {
		t.Fatal("boot page remotely writable")
	}
}

func TestLocalWriteAllowed(t *testing.T) {
	e, m := testMachine(t, 2)
	lo, _ := m.NodePages(0)
	run(e, func(tk *sim.Task) {
		if err := m.WritePage(tk, m.Procs[0], lo, 7); err != nil {
			t.Errorf("local write failed: %v", err)
		}
		tag, corrupt := m.PageTag(lo)
		if tag != 7 || corrupt {
			t.Errorf("tag=%d corrupt=%v", tag, corrupt)
		}
	})
}

func TestRemoteWriteDeniedByFirewall(t *testing.T) {
	e, m := testMachine(t, 2)
	lo, _ := m.NodePages(0)
	run(e, func(tk *sim.Task) {
		err := m.WritePage(tk, m.Procs[1], lo, 9)
		if !errors.Is(err, ErrBusError) {
			t.Errorf("remote write err = %v, want bus error", err)
		}
		if tag, _ := m.PageTag(lo); tag == 9 {
			t.Error("denied write mutated the page")
		}
	})
	if m.Metrics.Counter("firewall.denials").Value() != 1 {
		t.Error("denial not counted")
	}
}

func TestGrantThenRemoteWrite(t *testing.T) {
	e, m := testMachine(t, 2)
	lo, _ := m.NodePages(0)
	run(e, func(tk *sim.Task) {
		if err := m.GrantWrite(tk, m.Procs[0], lo, m.NodeProcMask(1)); err != nil {
			t.Fatalf("grant: %v", err)
		}
		if err := m.WritePage(tk, m.Procs[1], lo, 11); err != nil {
			t.Errorf("remote write after grant: %v", err)
		}
		if !m.WritableByRemote(lo) {
			t.Error("WritableByRemote false after grant")
		}
		if err := m.RevokeWrite(tk, m.Procs[0], lo, m.NodeProcMask(1)); err != nil {
			t.Fatalf("revoke: %v", err)
		}
		if err := m.WritePage(tk, m.Procs[1], lo, 12); !errors.Is(err, ErrBusError) {
			t.Errorf("write after revoke err = %v", err)
		}
	})
	if m.Metrics.Counter("firewall.revocations").Value() == 0 {
		t.Error("revocation not counted")
	}
}

func TestOnlyLocalProcessorChangesFirewall(t *testing.T) {
	e, m := testMachine(t, 2)
	lo, _ := m.NodePages(0)
	run(e, func(tk *sim.Task) {
		err := m.SetFirewall(tk, m.Procs[1], lo, ^uint64(0))
		if !errors.Is(err, ErrBusError) {
			t.Errorf("remote firewall change err = %v", err)
		}
	})
}

func TestFirewallDisabled(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.MemPerNodeMB = 1
	cfg.FirewallEnabled = false
	m := New(e, cfg)
	lo, _ := m.NodePages(0)
	run(e, func(tk *sim.Task) {
		if err := m.WritePage(tk, m.Procs[1], lo, 5); err != nil {
			t.Errorf("write with firewall disabled: %v", err)
		}
	})
}

func TestFirewallCheckLatency(t *testing.T) {
	// A remote write with the firewall enabled must cost more than with
	// it disabled — the §4.2 firewall-overhead experiment in miniature.
	measure := func(enabled bool) sim.Time {
		e := sim.NewEngine(1)
		cfg := DefaultConfig()
		cfg.Nodes = 2
		cfg.MemPerNodeMB = 1
		cfg.FirewallEnabled = enabled
		m := New(e, cfg)
		lo, _ := m.NodePages(0)
		var elapsed sim.Time
		run(e, func(tk *sim.Task) {
			if enabled {
				m.GrantWrite(tk, m.Procs[0], lo, m.NodeProcMask(1))
			}
			start := tk.Now()
			m.WritePage(tk, m.Procs[1], lo, 1)
			elapsed = tk.Now() - start
		})
		return elapsed
	}
	with, without := measure(true), measure(false)
	if with <= without {
		t.Fatalf("firewall check added no latency: with=%v without=%v", with, without)
	}
	overhead := float64(with-without) / float64(without)
	if overhead > 0.10 {
		t.Fatalf("firewall overhead %.1f%% implausibly high", overhead*100)
	}
}

func TestFailStopBusErrors(t *testing.T) {
	e, m := testMachine(t, 2)
	lo1, _ := m.NodePages(1)
	run(e, func(tk *sim.Task) {
		m.Nodes[1].FailStop()
		if _, _, err := m.ReadPage(tk, m.Procs[0], lo1); !errors.Is(err, ErrBusError) {
			t.Errorf("read of failed node err = %v", err)
		}
		if err := m.WritePage(tk, m.Procs[0], lo1, 1); !errors.Is(err, ErrBusError) {
			t.Errorf("write to failed node err = %v", err)
		}
		if _, err := m.ReadClockWord(tk, m.Procs[0], 1); !errors.Is(err, ErrBusError) {
			t.Errorf("clock read of failed node err = %v", err)
		}
	})
}

func TestFailStopHaltsProcessorAndKillsTasks(t *testing.T) {
	e, m := testMachine(t, 2)
	halted := false
	m.Procs[1].OnHalt = append(m.Procs[1].OnHalt, func() { halted = true })
	m.Nodes[1].FailStop()
	if !halted || !m.Procs[1].Halted() {
		t.Fatal("OnHalt not invoked")
	}
	// A task trying to compute on the halted CPU freezes (fail-stop).
	frozen := e.Go("victim", func(tk *sim.Task) {
		m.Procs[1].Use(tk, 100)
		t.Error("victim computed on halted CPU")
	})
	e.Run(0)
	if frozen.Done() {
		t.Fatal("victim finished")
	}
	frozen.Kill()
	e.Run(0)
}

func TestMemoryCutoff(t *testing.T) {
	e, m := testMachine(t, 2)
	lo1, _ := m.NodePages(1)
	run(e, func(tk *sim.Task) {
		m.Nodes[1].EngageCutoff()
		// Remote access refused...
		if _, _, err := m.ReadPage(tk, m.Procs[0], lo1); !errors.Is(err, ErrBusError) {
			t.Errorf("remote read after cutoff err = %v", err)
		}
		// ...but local access still works (the panicking cell can dump state).
		if _, _, err := m.ReadPage(tk, m.Procs[1], lo1); err != nil {
			t.Errorf("local read after cutoff err = %v", err)
		}
		m.Nodes[1].ReleaseCutoff()
		if _, _, err := m.ReadPage(tk, m.Procs[0], lo1); err != nil {
			t.Errorf("remote read after release err = %v", err)
		}
	})
}

func TestRepairResetsNode(t *testing.T) {
	e, m := testMachine(t, 2)
	lo, _ := m.NodePages(1)
	run(e, func(tk *sim.Task) {
		m.GrantWrite(tk, m.Procs[1], lo, ^uint64(0))
		m.Nodes[1].FailStop()
		m.MarkCorrupt(lo)
		m.Nodes[1].Repair()
		if m.Nodes[1].Failed() || m.Procs[1].Halted() {
			t.Error("node still failed after repair")
		}
		if _, corrupt := m.PageTag(lo); corrupt {
			t.Error("page still corrupt after repair scrub")
		}
		if m.Firewall(lo) != m.NodeProcMask(1) {
			t.Error("firewall not reset to boot state")
		}
	})
}

func TestWildWriteBlockedAndLanded(t *testing.T) {
	e, m := testMachine(t, 2)
	lo0, _ := m.NodePages(0)
	run(e, func(tk *sim.Task) {
		// Remote wild write blocked by firewall.
		if m.WildWrite(m.Procs[1], lo0) {
			t.Error("wild write landed through firewall")
		}
		// After a grant, the wild write lands and corrupts.
		m.GrantWrite(tk, m.Procs[0], lo0, m.NodeProcMask(1))
		if !m.WildWrite(m.Procs[1], lo0) {
			t.Error("wild write blocked despite grant")
		}
		if _, corrupt := m.PageTag(lo0); !corrupt {
			t.Error("page not marked corrupt")
		}
	})
}

func TestDMAWriteFirewallChecked(t *testing.T) {
	e, m := testMachine(t, 2)
	lo0, _ := m.NodePages(0)
	run(e, func(tk *sim.Task) {
		// DMA from node 1's device to node 0's protected page: denied.
		if err := m.DMAWrite(1, lo0, 3); !errors.Is(err, ErrBusError) {
			t.Errorf("remote DMA err = %v", err)
		}
		// Local DMA allowed.
		if err := m.DMAWrite(0, lo0, 3); err != nil {
			t.Errorf("local DMA err = %v", err)
		}
	})
}

func TestSIPSDelivery(t *testing.T) {
	e, m := testMachine(t, 2)
	var got *SIPSMsg
	var deliveredAt sim.Time
	m.Nodes[1].OnSIPS = func(msg *SIPSMsg) {
		got = msg
		deliveredAt = e.Now()
	}
	var sentAt sim.Time
	run(e, func(tk *sim.Task) {
		sentAt = tk.Now()
		err := m.SendSIPS(tk, m.Procs[0], &SIPSMsg{To: 1, Kind: SIPSRequest, Size: 64, Payload: "hello"})
		if err != nil {
			t.Errorf("send: %v", err)
		}
	})
	if got == nil {
		t.Fatal("message not delivered")
	}
	if got.From != 0 || got.Payload != "hello" {
		t.Fatalf("got %+v", got)
	}
	// Delivery latency = IPI + payload access ≈ 1 µs at default config.
	lat := deliveredAt - sentAt
	if lat < m.Cfg.IPINs || lat > m.Cfg.IPINs+m.Cfg.SIPSPayloadNs+m.Cfg.UncachedNs {
		t.Fatalf("delivery latency = %v", lat)
	}
}

func TestSIPSToFailedNode(t *testing.T) {
	e, m := testMachine(t, 2)
	m.Nodes[1].FailStop()
	run(e, func(tk *sim.Task) {
		err := m.SendSIPS(tk, m.Procs[0], &SIPSMsg{To: 1, Kind: SIPSRequest})
		if !errors.Is(err, ErrBusError) {
			t.Errorf("send to failed node err = %v", err)
		}
	})
}

func TestSIPSOversizePanics(t *testing.T) {
	e, m := testMachine(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for oversize SIPS")
		}
	}()
	run(e, func(tk *sim.Task) {
		m.SendSIPS(tk, m.Procs[0], &SIPSMsg{To: 1, Size: 256})
	})
}

func TestInterruptStealsTime(t *testing.T) {
	e, m := testMachine(t, 1)
	p := m.Procs[0]
	var computeDone sim.Time
	e.Go("computer", func(tk *sim.Task) {
		p.Use(tk, 1000)
		computeDone = tk.Now()
	})
	handlerRan := false
	e.At(500, func() {
		p.Interrupt(200, func() { handlerRan = true })
	})
	e.Run(0)
	if !handlerRan {
		t.Fatal("handler never ran")
	}
	if computeDone != 1200 {
		t.Fatalf("compute finished at %v, want 1200 (1000 + 200 stolen)", computeDone)
	}
}

func TestInterruptsSerializePerCPU(t *testing.T) {
	e, m := testMachine(t, 1)
	p := m.Procs[0]
	var ends []sim.Time
	e.At(0, func() {
		p.Interrupt(100, func() { ends = append(ends, e.Now()) })
		p.Interrupt(100, func() { ends = append(ends, e.Now()) })
	})
	e.Run(0)
	if len(ends) != 2 || ends[0] != 100 || ends[1] != 200 {
		t.Fatalf("ends = %v, want [100 200]", ends)
	}
}

func TestClockWord(t *testing.T) {
	e, m := testMachine(t, 2)
	run(e, func(tk *sim.Task) {
		m.TickClock(tk, m.Procs[0], 0)
		m.TickClock(tk, m.Procs[0], 0)
		v, err := m.ReadClockWord(tk, m.Procs[1], 0)
		if err != nil || v != 2 {
			t.Errorf("clock = %d err = %v", v, err)
		}
	})
}

func TestClockWordRemoteCostsMiss(t *testing.T) {
	e, m := testMachine(t, 2)
	run(e, func(tk *sim.Task) {
		start := tk.Now()
		m.ReadClockWord(tk, m.Procs[1], 0)
		if d := tk.Now() - start; d != m.Cfg.MissNs {
			t.Errorf("remote clock read cost %v, want %v", d, m.Cfg.MissNs)
		}
	})
}

func TestRemapTranslate(t *testing.T) {
	_, m := testMachine(t, 4)
	for n := 0; n < 4; n++ {
		p := m.RemapTranslate(m.Procs[n], 0)
		if m.HomeNode(p) != n {
			t.Fatalf("remap page for node %d landed on node %d", n, m.HomeNode(p))
		}
	}
	// Same architectural address, different physical page per node —
	// that is the property that gives each cell private trap vectors.
	if m.RemapTranslate(m.Procs[0], 1) == m.RemapTranslate(m.Procs[1], 1) {
		t.Fatal("remap region not node-private")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range remap did not panic")
		}
	}()
	m.RemapTranslate(m.Procs[0], m.Cfg.RemapPages)
}

func TestScrubPage(t *testing.T) {
	_, m := testMachine(t, 1)
	m.MarkCorrupt(0)
	m.ScrubPage(0, 99)
	tag, corrupt := m.PageTag(0)
	if tag != 99 || corrupt {
		t.Fatalf("after scrub tag=%d corrupt=%v", tag, corrupt)
	}
}

// Property: the firewall admits a write iff the writer's bit is set,
// regardless of the sequence of grants and revokes that produced the state.
func TestPropertyFirewallSoundness(t *testing.T) {
	f := func(ops []uint16) bool {
		e := sim.NewEngine(3)
		cfg := DefaultConfig()
		cfg.Nodes = 4
		cfg.MemPerNodeMB = 1
		m := New(e, cfg)
		lo, _ := m.NodePages(0)
		ok := true
		e.Go("t", func(tk *sim.Task) {
			for _, op := range ops {
				writer := int(op) % 4
				if op&0x100 != 0 {
					m.GrantWrite(tk, m.Procs[0], lo, m.NodeProcMask(writer))
				} else if op&0x200 != 0 {
					m.RevokeWrite(tk, m.Procs[0], lo, m.NodeProcMask(writer))
				}
				allowed := m.Firewall(lo)&m.NodeProcMask(writer) != 0
				err := m.WritePage(tk, m.Procs[writer], lo, uint64(op))
				if allowed != (err == nil) {
					ok = false
				}
			}
		})
		e.Run(0)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFirewallModeSingleBitLosesContainment(t *testing.T) {
	// §4.2: a single bit per page grants global write access — a grant
	// to one sharer admits every processor, including faulty ones.
	e := sim.NewEngine(9)
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.MemPerNodeMB = 1
	cfg.FirewallMode = FirewallSingleBit
	m := New(e, cfg)
	lo, _ := m.NodePages(0)
	run(e, func(tk *sim.Task) {
		// Grant write to cell 1 only...
		m.GrantWrite(tk, m.Procs[0], lo, m.NodeProcMask(1))
		// ...but an unrelated processor on node 3 can now write too.
		if err := m.WritePage(tk, m.Procs[3], lo, 9); err != nil {
			t.Errorf("single-bit mode should admit everyone after a grant: %v", err)
		}
		// With the bit vector, the same write is denied.
	})
	e2 := sim.NewEngine(9)
	cfg.FirewallMode = FirewallBitVector
	m2 := New(e2, cfg)
	lo2, _ := m2.NodePages(0)
	run(e2, func(tk *sim.Task) {
		m2.GrantWrite(tk, m2.Procs[0], lo2, m2.NodeProcMask(1))
		if err := m2.WritePage(tk, m2.Procs[3], lo2, 9); !errors.Is(err, ErrBusError) {
			t.Errorf("bit vector failed to contain: %v", err)
		}
	})
}

func TestFirewallModeProcByteBlocksSecondSharer(t *testing.T) {
	// §4.2: naming one processor per page prevents a cell's scheduler
	// from moving the writer to a sibling CPU — the second processor of
	// the sharing cell is denied.
	e := sim.NewEngine(9)
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.ProcsPerNode = 2
	cfg.MemPerNodeMB = 1
	cfg.FirewallMode = FirewallProcByte
	m := New(e, cfg)
	lo, _ := m.NodePages(0)
	run(e, func(tk *sim.Task) {
		// Grant the whole of node 1's mask (both CPUs), as the group
		// policy wants; ProcByte can only honour one of them.
		m.GrantWrite(tk, m.Procs[0], lo, m.NodeProcMask(1))
		err2 := m.WritePage(tk, m.Procs[2], lo, 1)
		err3 := m.WritePage(tk, m.Procs[3], lo, 1)
		if (err2 == nil) == (err3 == nil) {
			t.Errorf("ProcByte admitted %v/%v — exactly one sibling should write", err2, err3)
		}
	})
}
