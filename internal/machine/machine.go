// Package machine models the Stanford FLASH multiprocessor at the level the
// Hive kernel programs against: CC-NUMA nodes on a mesh, a cache-miss cost
// model, and the five pieces of custom hardware from Table 8.1 of the paper —
// the per-page firewall write-permission bit-vector, the memory fault model
// (bus errors instead of indefinite stalls), the remap region, the SIPS
// short interprocessor send facility, and the per-node memory cutoff.
//
// The model charges virtual time for every memory operation using the
// latencies published in §7.2 of the paper (50 ns L2 hit, 700 ns miss,
// 700 ns IPI, +300 ns SIPS payload access) and enforces the fault semantics
// the Hive recovery algorithms rely on.
package machine

import (
	"errors"
	"fmt"

	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Errors making up the FLASH memory fault model. Accesses never stall
// indefinitely: they either complete or fail with one of these.
var (
	// ErrBusError is returned for accesses to failed nodes, firewall
	// write denials, and accesses to cut-off memory.
	ErrBusError = errors.New("machine: bus error")
	// ErrFirewall is a bus error caused specifically by a firewall
	// write-permission denial; errors.Is(err, ErrBusError) also holds.
	ErrFirewall = fmt.Errorf("firewall write denied (%w)", ErrBusError)
	// ErrHalted is returned when the issuing processor itself has halted.
	ErrHalted = errors.New("machine: processor halted")
)

// PageNum is a global physical page frame number. Node n owns the contiguous
// range [n*PagesPerNode, (n+1)*PagesPerNode).
type PageNum int

// NoPage is the sentinel for "no frame".
const NoPage PageNum = -1

// FirewallMode selects the write-permission representation — the design
// alternatives §4.2 weighs before choosing a bit vector per page.
type FirewallMode int

const (
	// FirewallBitVector is FLASH's choice: a 64-bit vector per page, one
	// bit per processor.
	FirewallBitVector FirewallMode = iota
	// FirewallSingleBit is the rejected cheap option: one bit per page
	// granting *global* write access — "no fault containment for
	// processes that use any remote memory".
	FirewallSingleBit
	// FirewallProcByte is the rejected middle option: a byte per page
	// naming a single processor with write access — it "would prevent
	// the scheduler in each cell from balancing the load on its
	// processors".
	FirewallProcByte
)

// Config describes the simulated machine. DefaultConfig matches the paper's
// evaluation machine (§7.2).
type Config struct {
	Nodes        int // nodes in the mesh
	ProcsPerNode int // processors per node (1 in the paper)
	MemPerNodeMB int // local memory per node
	PageSize     int // bytes; firewall granularity (§4.2: 4 KB)

	L2HitNs sim.Time // first-level miss that hits in L2
	MissNs  sim.Time // L2 miss to memory (local or remote; §7.2: flat 700 ns)
	// RemoteMissNs, when nonzero, overrides MissNs for accesses to other
	// nodes' memory — the CC-NUMA/CC-NOW configurations of §8, where
	// remote memory may be reached over a local-area network.
	RemoteMissNs  sim.Time
	IPINs         sim.Time // interprocessor interrupt delivery
	SIPSPayloadNs sim.Time // extra latency to access a SIPS payload line
	UncachedNs    sim.Time // uncached write to the coherence controller
	// FirewallCheckNs is the additional latency the firewall check adds
	// to a remote write-ownership request (§4.2 measures +6.3 % of the
	// remote write miss latency under pmake).
	FirewallCheckNs sim.Time

	FirewallEnabled bool         // disable to measure the check's cost (§4.2)
	FirewallMode    FirewallMode // permission representation (§4.2 ablation)
	RemapPages      int          // per-node remap region size in pages (trap vectors)

	Disk disk.Config // per-node disk model
}

// DefaultConfig returns the paper's machine: 4 nodes, one 200 MHz R4000-class
// processor and 32 MB per node, 4 KB pages, 700 ns memory latency.
func DefaultConfig() Config {
	return Config{
		Nodes:           4,
		ProcsPerNode:    1,
		MemPerNodeMB:    32,
		PageSize:        4096,
		L2HitNs:         50,
		MissNs:          700,
		IPINs:           700,
		SIPSPayloadNs:   300,
		UncachedNs:      500,
		FirewallCheckNs: 44, // ≈6.3 % of a 700 ns remote write miss
		FirewallEnabled: true,
		RemapPages:      4,
		Disk:            disk.HP97560(),
	}
}

// Machine is the simulated multiprocessor.
type Machine struct {
	Cfg          Config
	Eng          *sim.Engine
	Nodes        []*Node
	Procs        []*Processor
	PagesPerNode int

	// Metrics observed by the firewall-overhead experiment.
	Metrics *stats.Registry

	// Trace, when set by the cell layer, holds one recording handle per
	// node so hardware events (firewall updates, SIPS sends) land on the
	// owning cell's trace track. Entries and the slice itself may be nil
	// (standalone machine tests record nothing).
	Trace []*trace.Tracer

	// FaultHook, when set by a fault injector, inspects every SIPS
	// message at launch and may drop, delay, duplicate, or corrupt it
	// (see MsgFault). The hook runs in engine context and must be a
	// deterministic function of the message and its own seeded state;
	// nil (the production configuration) adds no cost to the send path.
	// In a sharded run the hook fires on the *sending* cell's shard,
	// concurrently with other shards' windows, so it must be safe for
	// concurrent calls and its verdict must not depend on a draw sequence
	// shared across cells (key any randomness on the message itself).
	FaultHook func(*SIPSMsg) MsgFaultDecision

	// engines[n] is the engine driving node n's events: Eng everywhere in
	// a classic run, the owning cell's shard after BindShard in a sharded
	// run. Every timed operation attributed to a node — SIPS delivery,
	// interrupts, compute bursts, disk I/O, trace timestamps — goes
	// through its entry.
	engines []*sim.Engine

	pages []pageState // indexed by PageNum
}

// tracer returns node n's recording handle; the nil tracer no-ops.
func (m *Machine) tracer(n int) *trace.Tracer {
	if n < 0 || n >= len(m.Trace) {
		return nil
	}
	return m.Trace[n]
}

// pageState is the physical state of one page frame: its firewall vector and
// an abstract content tag used for data-integrity checking. Real memory
// contents are not simulated; the tag stands in for a page checksum, and a
// wild write scrambles it.
type pageState struct {
	fw      uint64 // firewall: bit i grants write permission to processor i
	tag     uint64 // content tag (checksum surrogate)
	corrupt bool   // set by wild writes
	writes  uint64 // write-generation counter
}

// New builds a machine on the given engine.
func New(e *sim.Engine, cfg Config) *Machine {
	if cfg.Nodes <= 0 || cfg.ProcsPerNode <= 0 {
		panic("machine: invalid config")
	}
	if cfg.FirewallEnabled && cfg.Nodes*cfg.ProcsPerNode > 64 {
		// The firewall's per-page write-permission vector is 64 bits
		// wide (one bit per processor); beyond that, NodeProcMask's %64
		// wraparound would alias distinct processors and silently void
		// containment. Refuse rather than degrade.
		panic(fmt.Sprintf("machine: %d processors exceed the firewall's 64-bit permission vector",
			cfg.Nodes*cfg.ProcsPerNode))
	}
	m := &Machine{
		Cfg:          cfg,
		Eng:          e,
		PagesPerNode: cfg.MemPerNodeMB << 20 / cfg.PageSize,
		Metrics:      stats.NewRegistry(),
	}
	m.pages = make([]pageState, m.PagesPerNode*cfg.Nodes)
	for i := range m.pages {
		// Boot-time firewall: only the home node's processors may write.
		m.pages[i].fw = m.homeProcMask(PageNum(i))
	}
	m.engines = make([]*sim.Engine, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		m.engines[n] = e
	}
	for n := 0; n < cfg.Nodes; n++ {
		node := &Node{ID: n, M: m, Disk: disk.New(e, cfg.Disk)}
		m.Nodes = append(m.Nodes, node)
		for p := 0; p < cfg.ProcsPerNode; p++ {
			proc := &Processor{ID: n*cfg.ProcsPerNode + p, Node: node, eng: e}
			node.Procs = append(node.Procs, proc)
			m.Procs = append(m.Procs, proc)
		}
	}
	return m
}

// NodeEngine returns the engine driving node n's events: the owning cell's
// shard in a sharded run, Eng otherwise.
func (m *Machine) NodeEngine(n int) *sim.Engine { return m.engines[n] }

// eng is shorthand for NodeEngine.
func (m *Machine) eng(n int) *sim.Engine { return m.engines[n] }

// BindShard rebinds node n — its processors, its disk, and all event
// scheduling attributed to it — to engine e, the cluster shard of the cell
// the node belongs to. The boot layer calls it once per node before any
// kernel subsystem captures a processor or drive, so every timed operation
// for the node lands on its cell's shard. The cluster's lookahead must not
// exceed WireLatency(), or cross-shard SIPS sends would violate the
// lookahead floor.
func (m *Machine) BindShard(n int, e *sim.Engine) {
	m.engines[n] = e
	for _, p := range m.Nodes[n].Procs {
		p.eng = e
	}
	m.Nodes[n].Disk.Rebind(e)
}

// WireLatency exposes the interprocessor delivery latency — the minimum
// cross-cell interaction delay, and therefore the largest legal cluster
// lookahead for a sharded run.
func (m *Machine) WireLatency() sim.Time { return m.wireLatency() }

// NumPages returns the total number of page frames.
func (m *Machine) NumPages() int { return len(m.pages) }

// HomeNode returns the node owning page p's physical storage.
func (m *Machine) HomeNode(p PageNum) int { return int(p) / m.PagesPerNode }

// NodePages returns the page range [lo, hi) owned by node n.
func (m *Machine) NodePages(n int) (lo, hi PageNum) {
	return PageNum(n * m.PagesPerNode), PageNum((n + 1) * m.PagesPerNode)
}

// homeProcMask returns the firewall bits for all processors on p's home node.
func (m *Machine) homeProcMask(p PageNum) uint64 {
	return m.NodeProcMask(m.HomeNode(p))
}

// NodeProcMask returns the firewall bit mask covering every processor of
// node n. On machines larger than 64 processors each bit would cover several
// processors (§4.2); with the paper's sizes it is one bit per processor.
func (m *Machine) NodeProcMask(n int) uint64 {
	var mask uint64
	for p := 0; p < m.Cfg.ProcsPerNode; p++ {
		mask |= 1 << uint((n*m.Cfg.ProcsPerNode+p)%64)
	}
	return mask
}

// Node is one FLASH node: processors, a slice of main memory, a coherence
// controller (firewall + SIPS + cutoff), and local I/O (a disk).
type Node struct {
	ID    int
	M     *Machine
	Procs []*Processor
	Disk  *disk.Drive

	// failed and cutoff are "frozen flags" under sharding: in a sharded
	// run they are mutated only while every cell shard is quiescent (the
	// global phase), so parallel-phase readers on other shards see
	// deterministic, at-most-one-window-stale values — exactly the
	// staleness a real remote observer has over the interconnect.
	failed    bool   // fail-stop hardware fault
	cutoff    bool   // memory cutoff engaged by cell panic
	clockWord uint64 // shared clock word monitored by neighbour cells (§4.3)

	// OnSIPS is the OS's SIPS receive handler; invoked in interrupt
	// context on the node's first processor.
	OnSIPS func(msg *SIPSMsg)
}

// Failed reports whether the node has suffered a fail-stop fault.
func (n *Node) Failed() bool { return n.failed }

// CutOff reports whether the memory cutoff is engaged.
func (n *Node) CutOff() bool { return n.cutoff }

// EngageCutoff makes the coherence controller refuse all remote accesses to
// this node's memory; used by the cell panic routine to stop the spread of
// potentially corrupt data (Table 8.1).
func (n *Node) EngageCutoff() { n.cutoff = true }

// ReleaseCutoff re-enables remote access (after reboot/reintegration).
func (n *Node) ReleaseCutoff() { n.cutoff = false }

// FailStop halts every processor on the node and makes its memory range
// inaccessible — the paper's §7.4 hardware fault injection. Tasks bound to
// the node's processors are killed. Sharded runs invoke it (like Repair and
// EngageCutoff) from the global phase: the frozen-flags rule above.
func (n *Node) FailStop() {
	n.failed = true
	for _, p := range n.Procs {
		p.Halt()
	}
}

// Repair clears the fail-stop state (reintegration, §4.3). Memory contents
// are scrubbed: tags reset, corruption cleared, firewall back to boot state.
func (n *Node) Repair() {
	n.failed = false
	n.cutoff = false
	lo, hi := n.M.NodePages(n.ID)
	for p := lo; p < hi; p++ {
		n.M.pages[p] = pageState{fw: n.M.homeProcMask(p)}
	}
	for _, p := range n.Procs {
		p.Unhalt()
	}
}

// accessible reports whether memory on this node can be reached from
// processor proc (nil error), or the bus error to deliver.
func (n *Node) accessible(fromNode int) error {
	if n.failed {
		return ErrBusError
	}
	if n.cutoff && fromNode != n.ID {
		return ErrBusError
	}
	return nil
}
