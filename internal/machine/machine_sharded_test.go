package machine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
)

// shardedMachine boots a 4-node machine on a 2-cell cluster: nodes 0,1 on
// shard 1 and nodes 2,3 on shard 2, the smallest topology with both
// same-shard and cross-shard traffic.
func shardedMachine(workers int) (*sim.Cluster, *Machine) {
	cfg := DefaultConfig()
	c := sim.NewCluster(42, 2, sim.Time(700))
	c.SetWorkers(workers)
	m := New(c.Global(), cfg)
	m.BindShard(0, c.Shard(1))
	m.BindShard(1, c.Shard(1))
	m.BindShard(2, c.Shard(2))
	m.BindShard(3, c.Shard(2))
	return c, m
}

// shardedMachineWorkload exercises SIPS (both directions across the shard
// boundary and within one shard), remote page reads/writes through the
// global hop, firewall grants, and careful clock reads, and digests all
// observable outcomes. Worker counts must not change a byte of it.
func shardedMachineWorkload(workers int) string {
	c, m := shardedMachine(workers)
	var mu [4][]string // per-node logs; each appended only by its own shard
	logf := func(node int, f string, args ...any) {
		mu[node] = append(mu[node], fmt.Sprintf(f, args...))
	}
	for n := 0; n < 4; n++ {
		n := n
		node := m.Nodes[n]
		node.OnSIPS = func(msg *SIPSMsg) {
			logf(n, "sips from p%d kind%d @%d", msg.From, msg.Kind, m.eng(n).Now())
		}
	}
	// Cross-shard page traffic: node 0's task writes into node 2's memory
	// (firewall granted first by node 2's local task).
	lo2, _ := m.NodePages(2)
	e1, e2 := c.Shard(1), c.Shard(2)
	e2.Go("granter", func(t *sim.Task) {
		if err := m.GrantWrite(t, m.Procs[2], lo2, m.NodeProcMask(0)); err != nil {
			logf(2, "grant err %v", err)
		}
	})
	e1.Go("writer", func(t *sim.Task) {
		t.Sleep(5000) // let the grant land
		for i := 0; i < 8; i++ {
			if err := m.WritePage(t, m.Procs[0], lo2, uint64(100+i)); err != nil {
				logf(0, "w%d err %v @%d", i, err, t.Now())
			} else {
				logf(0, "w%d ok @%d", i, t.Now())
			}
			tag, corrupt, err := m.ReadPage(t, m.Procs[0], lo2)
			logf(0, "r%d tag=%d corrupt=%v err=%v @%d", i, tag, corrupt, err, t.Now())
		}
	})
	// SIPS in both directions plus a same-shard send (node 0 -> node 1).
	e1.Go("sips01", func(t *sim.Task) {
		for i := 0; i < 6; i++ {
			t.Sleep(sim.Time(900 + 130*i))
			m.SendSIPS(t, m.Procs[0], &SIPSMsg{To: 1, Kind: SIPSRequest, Size: 64})
			m.SendSIPS(t, m.Procs[0], &SIPSMsg{To: 3, Kind: SIPSRequest, Size: 64})
		}
	})
	e2.Go("sips23", func(t *sim.Task) {
		for i := 0; i < 6; i++ {
			t.Sleep(sim.Time(1100 + 170*i))
			m.SendSIPS(t, m.Procs[3], &SIPSMsg{To: 0, Kind: SIPSReply, Size: 32})
		}
	})
	// Clock ticks on node 2, careful reads from node 1 across the boundary.
	e2.Go("clock2", func(t *sim.Task) {
		for i := 0; i < 30; i++ {
			t.Sleep(1000)
			m.TickClock(t, m.Procs[2], 2)
		}
	})
	e1.Go("monitor", func(t *sim.Task) {
		for i := 0; i < 6; i++ {
			t.Sleep(4000)
			v, err := m.ReadClockWord(t, m.Procs[1], 2)
			logf(1, "clk=%d err=%v @%d", v, err, t.Now())
		}
	})
	c.Run(0)
	var b strings.Builder
	for n, lg := range mu {
		fmt.Fprintf(&b, "== node %d ==\n", n)
		for _, line := range lg {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "sends=%d reads=%d writes=%d now=%d\n",
		m.Metrics.Counter("sips.sends").Value(),
		m.Metrics.Counter("mem.reads").Value(),
		m.Metrics.Counter("mem.writes").Value(),
		c.Now())
	return b.String()
}

func TestMachineShardedIdentity(t *testing.T) {
	ref := shardedMachineWorkload(1)
	if !strings.Contains(ref, "w0 ok") || !strings.Contains(ref, "clk=") {
		t.Fatalf("workload did not exercise the cross-shard paths:\n%s", ref)
	}
	for _, w := range []int{2, 4} {
		if got := shardedMachineWorkload(w); got != ref {
			t.Fatalf("workers=%d diverged from serial reference:\n--- serial ---\n%s\n--- workers=%d ---\n%s", w, ref, w, got)
		}
	}
}

// TestMachineShardedRemoteReadSeesOwnerWrites pins down the visibility
// contract: a remote read hopping to the global phase observes every write
// the owning shard performed in windows up to and including the current one.
func TestMachineShardedRemoteReadSeesOwnerWrites(t *testing.T) {
	c, m := shardedMachine(2)
	lo2, _ := m.NodePages(2)
	e1, e2 := c.Shard(1), c.Shard(2)
	e2.Go("owner", func(tk *sim.Task) {
		for i := 1; i <= 20; i++ {
			if err := m.WritePage(tk, m.Procs[2], lo2, uint64(i)); err != nil {
				t.Errorf("local write %d: %v", i, err)
			}
			tk.Sleep(500)
		}
	})
	var got []uint64
	e1.Go("reader", func(tk *sim.Task) {
		for i := 0; i < 5; i++ {
			tk.Sleep(2000)
			v, _, err := m.ReadPage(tk, m.Procs[0], lo2)
			if err != nil {
				t.Errorf("remote read: %v", err)
			}
			got = append(got, v)
		}
	})
	c.Run(0)
	if len(got) != 5 {
		t.Fatalf("reader observed %d values, want 5", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("remote reads went backwards: %v", got)
		}
	}
	if got[len(got)-1] == 0 {
		t.Fatalf("remote reads never observed an owner write: %v", got)
	}
}
