package machine

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// SIPS — the short interprocessor send facility (§6). Each send delivers one
// 128-byte cache line of data in about the latency of a remote cache miss,
// with hardware reliability and flow control. Separate request and reply
// receive queues per node make deadlock avoidance easy.

// SIPSLineBytes is the payload capacity of one SIPS message.
const SIPSLineBytes = 128

// wireLatency is the interprocessor delivery latency: the IPI time on
// FLASH's mesh, or the (longer) link latency on a CC-NOW configuration
// where nodes are workstations on a network (§8).
func (m *Machine) wireLatency() sim.Time {
	if m.Cfg.RemoteMissNs > m.Cfg.IPINs {
		return m.Cfg.RemoteMissNs
	}
	return m.Cfg.IPINs
}

// SIPSKind selects the hardware receive queue.
type SIPSKind int

const (
	// SIPSRequest messages go to the request queue.
	SIPSRequest SIPSKind = iota
	// SIPSReply messages go to the reply queue, so replies can always be
	// received even while the request queue is full.
	SIPSReply
)

// SIPSMsg is one short interprocessor send.
type SIPSMsg struct {
	From    int      // sending processor ID
	To      int      // destination processor ID
	Kind    SIPSKind // request or reply queue
	Size    int      // payload bytes; must be <= SIPSLineBytes
	Payload any      // marshalled argument line (data beyond a line is sent by reference)
	// ByRef optionally carries a reference (remote address / page) for
	// data beyond the 128-byte line; the receiver must use the careful
	// reference protocol to access it.
	ByRef any
}

// SendSIPS transmits msg from the calling task's processor. Delivery costs
// one IPI latency; the receiver pays the payload access latency when the
// handler runs. If the destination node has failed or is cut off, the send
// fails with a bus error after the IPI latency (the fault model guarantees
// no indefinite stall).
func (m *Machine) SendSIPS(t *sim.Task, proc *Processor, msg *SIPSMsg) error {
	if proc.Halted() {
		return ErrHalted
	}
	if msg.Size > SIPSLineBytes {
		panic("machine: SIPS payload exceeds one cache line")
	}
	msg.From = proc.ID
	dstProc := m.Procs[msg.To]
	dstNode := dstProc.Node

	// The send itself occupies the sender for the uncached launch write.
	proc.Use(t, m.Cfg.UncachedNs)

	if err := dstNode.accessible(proc.Node.ID); err != nil {
		m.Metrics.Counter("sips.send_failures").Inc()
		return err
	}
	m.Metrics.Counter("sips.sends").Inc()
	m.tracer(proc.Node.ID).Emit(m.Eng.Now(), trace.SIPS, int64(msg.To), int64(msg.Kind), "")

	// Delivery: IPI latency, then the node's receive handler runs in
	// interrupt context, paying the payload access latency.
	m.Eng.After(m.wireLatency(), func() {
		if dstNode.failed || dstProc.Halted() {
			return // message lost with the node; sender's timeout handles it
		}
		handler := dstNode.OnSIPS
		if handler == nil {
			m.Metrics.Counter("sips.dropped_no_handler").Inc()
			return
		}
		dstProc.Interrupt(m.Cfg.SIPSPayloadNs, func() { handler(msg) })
	})
	return nil
}

// SendSIPSAsync transmits msg from interrupt or engine context (no task to
// charge; the caller must have accounted the launch cost in its interrupt
// handler cost). Used for RPC replies sent from interrupt level.
func (m *Machine) SendSIPSAsync(proc *Processor, msg *SIPSMsg) error {
	if proc.Halted() {
		return ErrHalted
	}
	if msg.Size > SIPSLineBytes {
		panic("machine: SIPS payload exceeds one cache line")
	}
	msg.From = proc.ID
	dstProc := m.Procs[msg.To]
	dstNode := dstProc.Node
	if err := dstNode.accessible(proc.Node.ID); err != nil {
		m.Metrics.Counter("sips.send_failures").Inc()
		return err
	}
	m.Metrics.Counter("sips.sends").Inc()
	m.tracer(proc.Node.ID).Emit(m.Eng.Now(), trace.SIPS, int64(msg.To), int64(msg.Kind), "")
	m.Eng.After(m.wireLatency(), func() {
		if dstNode.failed || dstProc.Halted() {
			return
		}
		handler := dstNode.OnSIPS
		if handler == nil {
			m.Metrics.Counter("sips.dropped_no_handler").Inc()
			return
		}
		dstProc.Interrupt(m.Cfg.SIPSPayloadNs, func() { handler(msg) })
	})
	return nil
}

// SendIPI delivers a bare interprocessor interrupt with no payload —
// the pre-SIPS mechanism (§6 discusses why it is insufficient). Kept for
// the RPC-over-IPI ablation benchmark.
func (m *Machine) SendIPI(t *sim.Task, proc *Processor, to int, fn func()) error {
	if proc.Halted() {
		return ErrHalted
	}
	dstProc := m.Procs[to]
	proc.Use(t, m.Cfg.UncachedNs)
	if err := dstProc.Node.accessible(proc.Node.ID); err != nil {
		return err
	}
	m.Eng.After(m.wireLatency(), func() {
		if dstProc.Halted() {
			return
		}
		// Without SIPS the receiver must poll per-sender queues in
		// shared memory: one extra remote miss per sender scanned.
		dstProc.Interrupt(m.Cfg.MissNs*sim.Time(m.Cfg.Nodes), fn)
	})
	return nil
}
