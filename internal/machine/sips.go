package machine

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// SIPS — the short interprocessor send facility (§6). Each send delivers one
// 128-byte cache line of data in about the latency of a remote cache miss,
// with hardware reliability and flow control. Separate request and reply
// receive queues per node make deadlock avoidance easy.

// SIPSLineBytes is the payload capacity of one SIPS message.
const SIPSLineBytes = 128

// wireLatency is the interprocessor delivery latency: the IPI time on
// FLASH's mesh, or the (longer) link latency on a CC-NOW configuration
// where nodes are workstations on a network (§8).
func (m *Machine) wireLatency() sim.Time {
	if m.Cfg.RemoteMissNs > m.Cfg.IPINs {
		return m.Cfg.RemoteMissNs
	}
	return m.Cfg.IPINs
}

// SIPSKind selects the hardware receive queue.
type SIPSKind int

const (
	// SIPSRequest messages go to the request queue.
	SIPSRequest SIPSKind = iota
	// SIPSReply messages go to the reply queue, so replies can always be
	// received even while the request queue is full.
	SIPSReply
)

// SIPSMsg is one short interprocessor send.
type SIPSMsg struct {
	From    int      // sending processor ID
	To      int      // destination processor ID
	Kind    SIPSKind // request or reply queue
	Size    int      // payload bytes; must be <= SIPSLineBytes
	Payload any      // marshalled argument line (data beyond a line is sent by reference)
	// ByRef optionally carries a reference (remote address / page) for
	// data beyond the 128-byte line; the receiver must use the careful
	// reference protocol to access it.
	ByRef any
	// Checksum covers the line; it is computed by the sending hardware at
	// launch and verified at delivery, so injected payload corruption is
	// *detected* and the line discarded — the messaging analogue of the
	// firewall's containment contract (a corrupt line never reaches
	// software).
	Checksum uint32
}

// sipsChecksum is the hardware line checksum. Payload contents are not
// simulated, so the checksum covers the header words; corruption is
// modelled as bit flips in the stored checksum (see FaultCorrupt).
func sipsChecksum(msg *SIPSMsg) uint32 {
	h := uint32(2166136261)
	for _, w := range [4]uint32{uint32(msg.From), uint32(msg.To), uint32(msg.Kind), uint32(msg.Size)} {
		h = (h ^ w) * 16777619
	}
	return h
}

// MsgFault enumerates the wire faults a FaultHook can inject.
type MsgFault int

const (
	// FaultNone delivers the message normally.
	FaultNone MsgFault = iota
	// FaultDrop loses the message on the wire.
	FaultDrop
	// FaultDelay adds MsgFaultDecision.Delay of extra wire latency.
	FaultDelay
	// FaultDup delivers the message twice (one wire latency apart).
	FaultDup
	// FaultCorrupt flips payload bits in flight; the delivery-side
	// checksum verification detects the damage and discards the line.
	FaultCorrupt
)

// MsgFaultDecision is a FaultHook's verdict on one message.
type MsgFaultDecision struct {
	Fault MsgFault
	Delay sim.Time // extra latency for FaultDelay
}

// SendSIPS transmits msg from the calling task's processor. Delivery costs
// one IPI latency; the receiver pays the payload access latency when the
// handler runs. If the destination node has failed or is cut off, the send
// fails with a bus error after the IPI latency (the fault model guarantees
// no indefinite stall).
func (m *Machine) SendSIPS(t *sim.Task, proc *Processor, msg *SIPSMsg) error {
	if proc.Halted() {
		return ErrHalted
	}
	if msg.Size > SIPSLineBytes {
		panic("machine: SIPS payload exceeds one cache line")
	}
	msg.From = proc.ID
	dstNode := m.Procs[msg.To].Node

	// The send itself occupies the sender for the uncached launch write.
	proc.Use(t, m.Cfg.UncachedNs)

	if err := dstNode.accessible(proc.Node.ID); err != nil {
		m.Metrics.Counter("sips.send_failures").Inc()
		return err
	}
	// Delivery: IPI latency, then the node's receive handler runs in
	// interrupt context, paying the payload access latency.
	m.launchSIPS(proc.Node.ID, msg)
	return nil
}

// SendSIPSAsync transmits msg from interrupt or engine context (no task to
// charge; the caller must have accounted the launch cost in its interrupt
// handler cost). Used for RPC replies sent from interrupt level.
func (m *Machine) SendSIPSAsync(proc *Processor, msg *SIPSMsg) error {
	if proc.Halted() {
		return ErrHalted
	}
	if msg.Size > SIPSLineBytes {
		panic("machine: SIPS payload exceeds one cache line")
	}
	msg.From = proc.ID
	dstNode := m.Procs[msg.To].Node
	if err := dstNode.accessible(proc.Node.ID); err != nil {
		m.Metrics.Counter("sips.send_failures").Inc()
		return err
	}
	m.launchSIPS(proc.Node.ID, msg)
	return nil
}

// sendWire schedules fn after the wire delay on the destination node's
// engine, routing through the cluster's deterministic mailbox when source
// and destination live on different shards. The wire latency is the
// cluster's lookahead floor, so the mailbox delay constraint holds by
// construction.
func (m *Machine) sendWire(srcNode, dstNode int, delay sim.Time, fn func()) {
	src := m.eng(srcNode)
	if dst := m.eng(dstNode); dst != src {
		src.Send(dst, delay, fn)
		return
	}
	src.After(delay, fn)
}

// launchSIPS is the shared wire path of SendSIPS and SendSIPSAsync: it
// stamps the hardware checksum, consults the fault hook, and schedules
// delivery after the wire latency. srcNode is the sending node (for trace
// attribution).
func (m *Machine) launchSIPS(srcNode int, msg *SIPSMsg) {
	e := m.eng(srcNode)
	dstNode := m.Procs[msg.To].Node.ID
	m.Metrics.Counter("sips.sends").Inc()
	m.tracer(srcNode).Emit(e.Now(), trace.SIPS, int64(msg.To), int64(msg.Kind), "")
	msg.Checksum = sipsChecksum(msg)

	delay := m.wireLatency()
	if m.FaultHook != nil {
		switch d := m.FaultHook(msg); d.Fault {
		case FaultDrop:
			m.Metrics.Counter("sips.fault_drops").Inc()
			m.tracer(srcNode).Emit(e.Now(), trace.MsgDrop, int64(msg.To), int64(msg.Kind), "")
			return
		case FaultDelay:
			m.Metrics.Counter("sips.fault_delays").Inc()
			m.tracer(srcNode).Emit(e.Now(), trace.MsgDelay, int64(msg.To), int64(d.Delay), "")
			delay += d.Delay
		case FaultDup:
			m.Metrics.Counter("sips.fault_dups").Inc()
			m.tracer(srcNode).Emit(e.Now(), trace.MsgDup, int64(msg.To), int64(msg.Kind), "")
			m.sendWire(srcNode, dstNode, delay+m.wireLatency(), func() { m.deliverSIPS(msg) })
		case FaultCorrupt:
			m.Metrics.Counter("sips.fault_corruptions").Inc()
			msg.Checksum ^= 0xA5A5A5A5 // bits flipped in flight
		}
	}
	m.sendWire(srcNode, dstNode, delay, func() { m.deliverSIPS(msg) })
}

// deliverSIPS is the receive side: the hardware drops lines addressed to
// failed or halted destinations, verifies the line checksum (discarding
// detectably-corrupt lines), and runs the node's receive handler in
// interrupt context.
func (m *Machine) deliverSIPS(msg *SIPSMsg) {
	dstProc := m.Procs[msg.To]
	dstNode := dstProc.Node
	if dstNode.failed || dstProc.Halted() {
		return // message lost with the node; sender's timeout handles it
	}
	if msg.Checksum != sipsChecksum(msg) {
		m.Metrics.Counter("sips.checksum_drops").Inc()
		m.tracer(dstNode.ID).Emit(m.eng(dstNode.ID).Now(), trace.MsgCorrupt, int64(msg.To), int64(msg.Kind), "")
		return // detected corruption: discarded, never reaches software
	}
	handler := dstNode.OnSIPS
	if handler == nil {
		m.Metrics.Counter("sips.dropped_no_handler").Inc()
		return
	}
	dstProc.Interrupt(m.Cfg.SIPSPayloadNs, func() { handler(msg) })
}

// SendIPI delivers a bare interprocessor interrupt with no payload —
// the pre-SIPS mechanism (§6 discusses why it is insufficient). Kept for
// the RPC-over-IPI ablation benchmark.
func (m *Machine) SendIPI(t *sim.Task, proc *Processor, to int, fn func()) error {
	if proc.Halted() {
		return ErrHalted
	}
	dstProc := m.Procs[to]
	proc.Use(t, m.Cfg.UncachedNs)
	if err := dstProc.Node.accessible(proc.Node.ID); err != nil {
		return err
	}
	m.sendWire(proc.Node.ID, dstProc.Node.ID, m.wireLatency(), func() {
		if dstProc.Halted() {
			return
		}
		// Without SIPS the receiver must poll per-sender queues in
		// shared memory: one extra remote miss per sender scanned.
		dstProc.Interrupt(m.Cfg.MissNs*sim.Time(m.Cfg.Nodes), fn)
	})
	return nil
}
