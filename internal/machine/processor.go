package machine

import "repro/internal/sim"

// Processor is one CPU. Simulated execution charges time through Use, which
// is "stealable": interrupt handlers arriving while a task computes push the
// task's completion later, modelling the CPU time interrupts consume.
type Processor struct {
	ID   int
	Node *Node
	eng  *sim.Engine

	halted bool

	// curCompute is the wake event of the compute burst currently
	// executing on this CPU, if any; interrupts reschedule it.
	curCompute *sim.Event

	// intrBusyUntil serializes interrupt context: back-to-back handlers
	// queue behind one another.
	intrBusyUntil sim.Time

	// OnHalt callbacks run when the processor halts (node failure); the
	// scheduler uses this to kill the tasks it had bound here.
	OnHalt []func()

	// IntrNesting counts handlers currently queued/active, for stats.
	IntrNesting int
}

// Halted reports whether the processor has been halted by a fault.
func (p *Processor) Halted() bool { return p.halted }

// Halt stops the processor (fail-stop fault). Registered OnHalt callbacks
// run so the OS layer can kill bound tasks.
func (p *Processor) Halt() {
	if p.halted {
		return
	}
	p.halted = true
	for _, f := range p.OnHalt {
		f()
	}
}

// Unhalt restarts a halted processor (reintegration).
func (p *Processor) Unhalt() { p.halted = false }

// Use executes d nanoseconds of work for task t on this CPU. Interrupts
// arriving during the burst extend it. If the processor halts mid-burst the
// task never resumes on its own (the fault injector kills it), matching
// fail-stop semantics.
func (p *Processor) Use(t *sim.Task, d sim.Time) {
	if p.halted {
		// A halted CPU executes nothing; freeze the caller. It will be
		// killed by the failure machinery.
		t.Block()
		return
	}
	if d <= 0 {
		return
	}
	var ev *sim.Event
	t.SleepEvent(d, func(e *sim.Event) {
		ev = e
		p.curCompute = e
	})
	if p.curCompute == ev {
		p.curCompute = nil
	}
}

// StealTime pushes the currently executing compute burst (if any) later by
// d, charging interrupt execution time to the interrupted task.
func (p *Processor) StealTime(d sim.Time) {
	if p.curCompute != nil && p.curCompute.Pending() {
		p.curCompute.Reschedule(p.curCompute.When() + d)
	}
}

// Interrupt runs fn in interrupt context on this CPU after cost nanoseconds
// of handler execution. Handlers serialize per CPU and steal time from any
// task computing on it. fn runs in engine context; it must not block — work
// that can block is handed to a queued-service task by the RPC layer.
// Interrupt reports false if the processor is halted (the interrupt is
// dropped, as on real hardware).
func (p *Processor) Interrupt(cost sim.Time, fn func()) bool {
	if p.halted {
		return false
	}
	now := p.eng.Now()
	start := now
	if p.intrBusyUntil > start {
		start = p.intrBusyUntil
	}
	p.intrBusyUntil = start + cost
	p.StealTime(cost)
	p.IntrNesting++
	p.eng.At(start+cost, func() {
		p.IntrNesting--
		if p.halted {
			return
		}
		fn()
	})
	return true
}

// InterruptTask is like Interrupt but runs fn as a task so it may block
// (used for handlers that must wait, e.g. queued RPC completion delivery).
func (p *Processor) InterruptTask(name string, cost sim.Time, fn func(t *sim.Task)) bool {
	return p.Interrupt(cost, func() {
		p.eng.Go(name, fn)
	})
}
