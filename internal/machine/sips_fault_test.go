package machine

import (
	"testing"

	"repro/internal/sim"
)

// sipsProbe wires a receive handler on node 1 that records every delivery
// with its time, and returns the sender function.
type sipsProbe struct {
	e     *sim.Engine
	m     *Machine
	times []sim.Time
	msgs  []*SIPSMsg
}

func newSIPSProbe(t *testing.T) *sipsProbe {
	t.Helper()
	e, m := testMachine(t, 2)
	p := &sipsProbe{e: e, m: m}
	m.Nodes[1].OnSIPS = func(msg *SIPSMsg) {
		p.times = append(p.times, e.Now())
		p.msgs = append(p.msgs, msg)
	}
	return p
}

// send launches one message from node 0 to node 1 and drains the engine.
func (p *sipsProbe) send(t *testing.T) {
	t.Helper()
	p.e.Go("sender", func(tk *sim.Task) {
		if err := p.m.SendSIPS(tk, p.m.Procs[0], &SIPSMsg{
			To: 1, Kind: SIPSRequest, Size: 64, Payload: "x",
		}); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	p.e.Run(0)
}

func TestFaultHookDropLosesMessage(t *testing.T) {
	p := newSIPSProbe(t)
	first := true
	p.m.FaultHook = func(msg *SIPSMsg) MsgFaultDecision {
		if first {
			first = false
			return MsgFaultDecision{Fault: FaultDrop}
		}
		return MsgFaultDecision{}
	}
	p.send(t)
	p.send(t)
	if len(p.times) != 1 {
		t.Fatalf("deliveries = %d, want 1 (first dropped)", len(p.times))
	}
	if n := p.m.Metrics.Counter("sips.fault_drops").Value(); n != 1 {
		t.Fatalf("sips.fault_drops = %d", n)
	}
}

func TestFaultHookDelayAddsExactLatency(t *testing.T) {
	p := newSIPSProbe(t)
	const extra = 5 * sim.Microsecond
	delay := false
	p.m.FaultHook = func(msg *SIPSMsg) MsgFaultDecision {
		if delay {
			return MsgFaultDecision{Fault: FaultDelay, Delay: extra}
		}
		return MsgFaultDecision{}
	}
	p.send(t)
	normalAt := p.times[0]
	base := p.e.Now()
	delay = true
	p.send(t)
	if len(p.times) != 2 {
		t.Fatalf("deliveries = %d", len(p.times))
	}
	// Same path, plus exactly the injected delay.
	if got, want := p.times[1]-base, normalAt+extra; got != want {
		t.Fatalf("delayed delivery after %v, want %v", got, want)
	}
	if n := p.m.Metrics.Counter("sips.fault_delays").Value(); n != 1 {
		t.Fatalf("sips.fault_delays = %d", n)
	}
}

func TestFaultHookDupDeliversTwice(t *testing.T) {
	p := newSIPSProbe(t)
	armed := true
	p.m.FaultHook = func(msg *SIPSMsg) MsgFaultDecision {
		if armed {
			armed = false
			return MsgFaultDecision{Fault: FaultDup}
		}
		return MsgFaultDecision{}
	}
	p.send(t)
	if len(p.times) != 2 {
		t.Fatalf("deliveries = %d, want 2 (original + duplicate)", len(p.times))
	}
	// The duplicate trails the original by one wire latency.
	if d := p.times[1] - p.times[0]; d != p.m.wireLatency() {
		t.Fatalf("duplicate trails by %v, want %v", d, p.m.wireLatency())
	}
	if p.msgs[0] != p.msgs[1] {
		t.Fatal("duplicate is not the same line")
	}
	if n := p.m.Metrics.Counter("sips.fault_dups").Value(); n != 1 {
		t.Fatalf("sips.fault_dups = %d", n)
	}
}

func TestFaultHookCorruptionDetectedByChecksum(t *testing.T) {
	// The corruption contract: a payload-corrupted line must never reach
	// software — the delivery-side checksum detects it and the line is
	// discarded, degrading the fault to a drop.
	p := newSIPSProbe(t)
	p.m.FaultHook = func(msg *SIPSMsg) MsgFaultDecision {
		return MsgFaultDecision{Fault: FaultCorrupt}
	}
	p.send(t)
	if len(p.times) != 0 {
		t.Fatalf("corrupt line reached software (%d deliveries)", len(p.times))
	}
	if n := p.m.Metrics.Counter("sips.fault_corruptions").Value(); n != 1 {
		t.Fatalf("sips.fault_corruptions = %d", n)
	}
	if n := p.m.Metrics.Counter("sips.checksum_drops").Value(); n != 1 {
		t.Fatalf("sips.checksum_drops = %d", n)
	}
	// A clean line still passes the verifier.
	p.m.FaultHook = nil
	p.send(t)
	if len(p.times) != 1 {
		t.Fatalf("clean line not delivered after corruption test")
	}
}

func TestChecksumStampedBeforeHook(t *testing.T) {
	// The hardware stamps the checksum at launch, so a hook observing the
	// message sees the line exactly as the verifier will.
	p := newSIPSProbe(t)
	var seen uint32
	p.m.FaultHook = func(msg *SIPSMsg) MsgFaultDecision {
		seen = msg.Checksum
		return MsgFaultDecision{}
	}
	p.send(t)
	if len(p.msgs) != 1 || seen == 0 || p.msgs[0].Checksum != seen {
		t.Fatalf("checksum not stamped at launch: hook saw %#x, delivered %#x", seen, p.msgs[0].Checksum)
	}
}
