package machine

import "repro/internal/sim"

// Remap region and shared clock words.
//
// FLASH provides a range of physical addresses that is remapped to node-
// local memory, so every cell can have its own trap vectors at the same
// architectural address (Table 8.1). We model the translation and give each
// node a clock word in its local memory — the location a cell's clock
// handler increments on every tick and that neighbouring cells monitor
// through the careful reference protocol (§4.3).

// RemapTranslate resolves an access to the remap region issued by proc:
// remap page r (0 <= r < cfg.RemapPages) maps to the r-th page of the
// issuing processor's node. It panics if r is out of range, as the hardware
// would raise an address error.
func (m *Machine) RemapTranslate(proc *Processor, r int) PageNum {
	if r < 0 || r >= m.Cfg.RemapPages {
		panic("machine: remap access out of range")
	}
	lo, _ := m.NodePages(proc.Node.ID)
	return lo + PageNum(r)
}

// clockWords live conceptually in each node's remap page 0; modelled as a
// per-node counter with shared-memory access semantics.

// TickClock increments node n's clock word; called by the local cell's
// clock interrupt handler. Timer interrupts run at the highest priority:
// the tick steals its L2-hit cost from whatever the CPU is executing
// instead of queueing behind it, so the clock word keeps advancing even
// when the CPU is saturated with interrupt-level RPC service — a wedged
// clock must mean a failed cell, not a busy one (§4.3).
func (m *Machine) TickClock(t *sim.Task, proc *Processor, n int) {
	if proc.Node.ID != n {
		panic("machine: clock word is written only by its own node")
	}
	proc.StealTime(m.Cfg.L2HitNs)
	m.Nodes[n].clockWord++
}

// ReadClockWord reads node n's clock word from processor proc, charging a
// remote cache miss (0.7 µs — the dominant cost in the §4.1 careful-read
// measurement). It returns a bus error if the node has failed or is cut off.
func (m *Machine) ReadClockWord(t *sim.Task, proc *Processor, n int) (uint64, error) {
	if proc.Halted() {
		return 0, ErrHalted
	}
	node := m.Nodes[n]
	if proc.Node.ID == n {
		m.CacheHit(t, proc)
	} else {
		m.RemoteMiss(t, proc)
	}
	if err := node.accessible(proc.Node.ID); err != nil {
		return 0, err
	}
	if g := m.eng(n); g != m.eng(proc.Node.ID) {
		// Sharded run, remote clock word: it advances inside the owner's
		// window, so the careful read hops to the global phase and
		// observes the value as of the window edge — the same bounded
		// staleness a real remote read has over the interconnect.
		var v uint64
		proc.eng.Global(t, func() { v = node.clockWord })
		return v, nil
	}
	return node.clockWord, nil
}

// ClockWordValue returns node n's clock word without charging time (tests).
func (m *Machine) ClockWordValue(n int) uint64 { return m.Nodes[n].clockWord }
