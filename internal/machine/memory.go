package machine

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// Memory operations. Each charges virtual time on the issuing processor and
// enforces the memory fault model: accesses to failed or cut-off nodes get
// bus errors; firewall violations on writes get bus errors; nothing stalls
// indefinitely.

// ReadPage performs a cache-miss read of page p's content tag by task t on
// processor proc. Reads are never blocked by the firewall (§4.2: read misses
// do not count as ownership requests).
func (m *Machine) ReadPage(t *sim.Task, proc *Processor, p PageNum) (tag uint64, corrupt bool, err error) {
	if proc.Halted() {
		return 0, false, ErrHalted
	}
	home := m.Nodes[m.HomeNode(p)]
	proc.Use(t, m.missLatency(proc.Node.ID, home.ID))
	if err := home.accessible(proc.Node.ID); err != nil {
		m.Metrics.Counter("mem.bus_errors").Inc()
		return 0, false, err
	}
	m.Metrics.Counter("mem.reads").Inc()
	if g := m.eng(home.ID); g != m.eng(proc.Node.ID) {
		// Sharded run, remote page: its state belongs to another cell's
		// shard, so the read hops to the global phase (every shard
		// quiescent) instead of racing the owner's window.
		proc.eng.Global(t, func() {
			ps := &m.pages[p]
			tag, corrupt = ps.tag, ps.corrupt
		})
		return tag, corrupt, nil
	}
	ps := &m.pages[p]
	return ps.tag, ps.corrupt, nil
}

// WritePage performs a write-ownership request for page p and, if the
// firewall admits it, stores a new content tag. The coherence controller of
// the home node checks the firewall bit for the issuing processor on each
// ownership request (§4.2).
func (m *Machine) WritePage(t *sim.Task, proc *Processor, p PageNum, tag uint64) error {
	if proc.Halted() {
		return ErrHalted
	}
	home := m.Nodes[m.HomeNode(p)]
	lat := m.missLatency(proc.Node.ID, home.ID)
	if m.Cfg.FirewallEnabled && home.ID != proc.Node.ID {
		lat += m.Cfg.FirewallCheckNs
	}
	proc.Use(t, lat)
	if err := home.accessible(proc.Node.ID); err != nil {
		m.Metrics.Counter("mem.bus_errors").Inc()
		return err
	}
	if g := m.eng(home.ID); g != m.eng(proc.Node.ID) {
		// Sharded run, remote page: the firewall check and the store both
		// touch the home shard's state, so the ownership request hops to
		// the global phase.
		var werr error
		proc.eng.Global(t, func() {
			if werr = m.checkFirewall(proc.ID, p); werr != nil {
				return
			}
			ps := &m.pages[p]
			ps.tag = tag
			ps.corrupt = false
			ps.writes++
			m.Metrics.Counter("mem.writes").Inc()
		})
		return werr
	}
	if err := m.checkFirewall(proc.ID, p); err != nil {
		return err
	}
	ps := &m.pages[p]
	ps.tag = tag
	ps.corrupt = false
	ps.writes++
	m.Metrics.Counter("mem.writes").Inc()
	return nil
}

// WildWrite models an erroneous store from a faulty kernel: if the firewall
// admits the write, the page content is corrupted. It reports whether the
// write landed (false means the firewall or fault model blocked it). It has
// no task to hop with, so in a sharded run a cross-shard wild write must be
// issued from the global phase (fault injectors run there); same-node wild
// writes are always safe.
func (m *Machine) WildWrite(proc *Processor, p PageNum) bool {
	home := m.Nodes[m.HomeNode(p)]
	if home.accessible(proc.Node.ID) != nil {
		return false
	}
	if m.checkFirewall(proc.ID, p) != nil {
		m.Metrics.Counter("firewall.wild_writes_blocked").Inc()
		return false
	}
	ps := &m.pages[p]
	ps.corrupt = true
	ps.tag ^= 0xdeadbeefcafef00d
	ps.writes++
	m.Metrics.Counter("firewall.wild_writes_landed").Inc()
	return true
}

// DMAWrite is a write from an I/O device on node ioNode; the coherence
// controller checks it as if it came from that node's processor (§4.2).
// Like WildWrite it carries no task: sharded runs may call it only for
// pages homed on ioNode's own shard or from the global phase.
func (m *Machine) DMAWrite(ioNode int, p PageNum, tag uint64) error {
	home := m.Nodes[m.HomeNode(p)]
	if err := home.accessible(ioNode); err != nil {
		return err
	}
	procID := ioNode * m.Cfg.ProcsPerNode
	if err := m.checkFirewall(procID, p); err != nil {
		return err
	}
	ps := &m.pages[p]
	ps.tag = tag
	ps.corrupt = false
	ps.writes++
	return nil
}

// checkFirewall validates a write-ownership request against page p's
// firewall state under the configured representation. With the firewall
// disabled every write is admitted.
func (m *Machine) checkFirewall(procID int, p PageNum) error {
	if !m.Cfg.FirewallEnabled {
		return nil
	}
	m.Metrics.Counter("firewall.checks").Inc()
	allowed := false
	switch m.Cfg.FirewallMode {
	case FirewallBitVector:
		allowed = m.pages[p].fw&(1<<uint(procID%64)) != 0
	case FirewallSingleBit:
		// One bit per page: the home's boot mask means "local only";
		// anything beyond it means globally writable.
		home := m.homeProcMask(p)
		allowed = m.pages[p].fw&^home != 0 || m.pages[p].fw&(1<<uint(procID%64)) != 0
	case FirewallProcByte:
		// A byte per page names exactly one remote processor; local
		// processors keep access through the home mask.
		if m.pages[p].fw&m.homeProcMask(p)&(1<<uint(procID%64)) != 0 {
			allowed = true
		} else {
			allowed = m.singleRemote(p) == procID
		}
	}
	if !allowed {
		m.Metrics.Counter("firewall.denials").Inc()
		return ErrFirewall
	}
	return nil
}

// singleRemote returns the one remote processor a ProcByte firewall admits:
// the lowest remote bit set (the byte can only name one).
func (m *Machine) singleRemote(p PageNum) int {
	remote := m.pages[p].fw &^ m.homeProcMask(p)
	if remote == 0 {
		return -1
	}
	for i := 0; i < 64; i++ {
		if remote&(1<<uint(i)) != 0 {
			return i
		}
	}
	return -1
}

// BootFirewall sets page p's firewall directly, with no timing or locality
// checks; used only at boot (the OS partitions memory among cells before
// enabling protection) and by node repair.
func (m *Machine) BootFirewall(p PageNum, bits uint64) { m.pages[p].fw = bits }

// Firewall returns page p's current permission bit-vector.
func (m *Machine) Firewall(p PageNum) uint64 { return m.pages[p].fw }

// SetFirewall replaces page p's firewall bits. Only a processor local to the
// page's home node may change them (§4.2); the operation costs an uncached
// write to the coherence controller. Revoking permission additionally pays
// the writeback-synchronization cost, modelled (per §7.2) as one more
// uncached write.
func (m *Machine) SetFirewall(t *sim.Task, proc *Processor, p PageNum, bits uint64) error {
	if proc.Halted() {
		return ErrHalted
	}
	if m.HomeNode(p) != proc.Node.ID {
		return ErrBusError
	}
	cost := m.Cfg.UncachedNs
	if old := m.pages[p].fw; old&^bits != 0 {
		cost += m.Cfg.UncachedNs // revocation: wait for pending writebacks
		m.Metrics.Counter("firewall.revocations").Inc()
		m.tracer(proc.Node.ID).Emit(proc.eng.Now(), trace.FirewallRevoke, int64(p), int64(bits), "")
	} else {
		m.Metrics.Counter("firewall.grants").Inc()
		m.tracer(proc.Node.ID).Emit(proc.eng.Now(), trace.FirewallGrant, int64(p), int64(bits), "")
	}
	proc.Use(t, cost)
	m.pages[p].fw = bits
	return nil
}

// SetFirewallIntr changes page p's firewall bits from interrupt context on
// the home node (no task to charge — the caller must fold the returned cost
// into its interrupt handler cost). It returns the cost and an error if the
// issuing processor is not local to the page.
func (m *Machine) SetFirewallIntr(proc *Processor, p PageNum, bits uint64) (sim.Time, error) {
	if m.HomeNode(p) != proc.Node.ID {
		return 0, ErrBusError
	}
	cost := m.Cfg.UncachedNs
	if old := m.pages[p].fw; old&^bits != 0 {
		cost += m.Cfg.UncachedNs
		m.Metrics.Counter("firewall.revocations").Inc()
		m.tracer(proc.Node.ID).Emit(proc.eng.Now(), trace.FirewallRevoke, int64(p), int64(bits), "")
	} else {
		m.Metrics.Counter("firewall.grants").Inc()
		m.tracer(proc.Node.ID).Emit(proc.eng.Now(), trace.FirewallGrant, int64(p), int64(bits), "")
	}
	m.pages[p].fw = bits
	return cost, nil
}

// GrantWrite adds procMask to page p's firewall (must run on the home node).
func (m *Machine) GrantWrite(t *sim.Task, proc *Processor, p PageNum, procMask uint64) error {
	return m.SetFirewall(t, proc, p, m.pages[p].fw|procMask)
}

// RevokeWrite removes procMask from page p's firewall.
func (m *Machine) RevokeWrite(t *sim.Task, proc *Processor, p PageNum, procMask uint64) error {
	return m.SetFirewall(t, proc, p, m.pages[p].fw&^procMask)
}

// PageTag returns the stored content tag without charging time (used by
// integrity checkers outside the timed simulation).
func (m *Machine) PageTag(p PageNum) (tag uint64, corrupt bool) {
	ps := &m.pages[p]
	return ps.tag, ps.corrupt
}

// MarkCorrupt flags a page as corrupted without a firewall check; the fault
// injector uses it to model corruption that happened before detection.
func (m *Machine) MarkCorrupt(p PageNum) { m.pages[p].corrupt = true }

// ScrubPage resets a page's content state (page reallocation).
func (m *Machine) ScrubPage(p PageNum, tag uint64) {
	ps := &m.pages[p]
	ps.tag = tag
	ps.corrupt = false
}

// WritableByRemote reports whether page p is writable by any processor
// outside its home node — the quantity sampled in the §4.2 firewall study.
// The cell layer aggregates it over each cell's pages.
func (m *Machine) WritableByRemote(p PageNum) bool {
	return m.pages[p].fw&^m.homeProcMask(p) != 0
}

// missLatency returns the L2-miss cost between two nodes: flat MissNs by
// default (the paper's §7.2 model), or the CC-NOW split when RemoteMissNs
// is configured.
func (m *Machine) missLatency(fromNode, homeNode int) sim.Time {
	if m.Cfg.RemoteMissNs > 0 && fromNode != homeNode {
		return m.Cfg.RemoteMissNs
	}
	return m.Cfg.MissNs
}

// CacheHit charges an L2 hit on the issuing processor; kernel code uses it
// for accesses known to be cache-resident.
func (m *Machine) CacheHit(t *sim.Task, proc *Processor) {
	proc.Use(t, m.Cfg.L2HitNs)
}

// RemoteMiss charges one remote cache miss (e.g. the careful-reference
// protocol's read of another cell's clock word).
func (m *Machine) RemoteMiss(t *sim.Task, proc *Processor) {
	if m.Cfg.RemoteMissNs > 0 {
		proc.Use(t, m.Cfg.RemoteMissNs)
		return
	}
	proc.Use(t, m.Cfg.MissNs)
}
