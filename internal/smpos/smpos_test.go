package smpos

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestBootSingleKernel(t *testing.T) {
	sys := Boot(4, DefaultConfig())
	if len(sys.Hive.Cells) != 1 {
		t.Fatalf("cells = %d", len(sys.Hive.Cells))
	}
	if len(sys.Cell().Sched.Procs) != 4 {
		t.Fatalf("cpus = %d", len(sys.Cell().Sched.Procs))
	}
	if sys.Hive.Cfg.Machine.FirewallEnabled {
		t.Fatal("SMP baseline should not pay firewall checks")
	}
}

func TestKernelOpChargesServiceTime(t *testing.T) {
	sys := Boot(1, DefaultConfig())
	var elapsed sim.Time
	done := false
	sys.Hive.Eng.Go("p", func(tk *sim.Task) {
		start := tk.Now()
		sys.KernelOp(tk, 100*sim.Microsecond)
		elapsed = tk.Now() - start
		done = true
	})
	sys.Hive.Run(sim.Second)
	if !done || elapsed < 100*sim.Microsecond {
		t.Fatalf("elapsed = %v", elapsed)
	}
}

func TestGiantLockSaturates(t *testing.T) {
	const (
		op    = 80 * sim.Microsecond
		burst = 150 * sim.Microsecond
		dur   = 200 * sim.Millisecond
	)
	ops4 := Boot(4, DefaultConfig()).ThroughputProbe(12, op, burst, dur)
	ops16 := Boot(16, DefaultConfig()).ThroughputProbe(48, op, burst, dur)
	// A giant-locked kernel cannot scale 4×16; well under linear.
	if float64(ops16) > 2.5*float64(ops4) {
		t.Fatalf("giant lock scaled too well: %d -> %d", ops4, ops16)
	}
	if ops16 < ops4 {
		t.Fatalf("throughput regressed outright: %d -> %d", ops4, ops16)
	}
}

func TestTunedKernelScalesBetterThanGiant(t *testing.T) {
	const (
		op    = 80 * sim.Microsecond
		burst = 150 * sim.Microsecond
		dur   = 200 * sim.Millisecond
	)
	giant := Boot(16, DefaultConfig()).ThroughputProbe(48, op, burst, dur)
	tuned := Boot(16, TunedConfig()).ThroughputProbe(48, op, burst, dur)
	if tuned <= giant {
		t.Fatalf("lock splitting did not help: giant=%d tuned=%d", giant, tuned)
	}
}

func TestHiveProbeScalesLinearly(t *testing.T) {
	const (
		op    = 80 * sim.Microsecond
		burst = 150 * sim.Microsecond
		dur   = 200 * sim.Millisecond
	)
	boot := func(n int) *core.Hive {
		cfg := core.DefaultConfig()
		cfg.Machine.Nodes = n
		cfg.Cells = n
		cfg.Mounts = nil
		return core.Boot(cfg)
	}
	ops4 := HiveThroughputProbe(boot(4), 3, op, burst, dur, DefaultConfig().LockedFraction)
	ops16 := HiveThroughputProbe(boot(16), 3, op, burst, dur, DefaultConfig().LockedFraction)
	ratio := float64(ops16) / float64(ops4)
	if ratio < 3.5 {
		t.Fatalf("multicellular scaling 4->16 CPUs only %.2fx", ratio)
	}
}

func TestContentionCounted(t *testing.T) {
	sys := Boot(2, DefaultConfig())
	sys.ThroughputProbe(8, 80*sim.Microsecond, 20*sim.Microsecond, 100*sim.Millisecond)
	if sys.Metrics.Counter("smpos.lock_contended").Value() == 0 {
		t.Fatal("no contention recorded under heavy kernel load")
	}
	if sys.Metrics.Counter("smpos.kernel_ops").Value() == 0 {
		t.Fatal("no kernel ops recorded")
	}
}
