// Package smpos models the shared-everything SMP operating system the paper
// contrasts Hive against (§1): a single monolithic kernel in which all
// processors directly share all kernel resources. Functionally it is the
// IRIX baseline (a one-cell boot of the same kernel code); this package
// adds the *scalability* aspect the paper argues qualitatively — kernel
// data structures protected by contended locks, so parallelism degrades as
// processors are added, whereas the multicellular design scales by adding
// cells.
//
// The lock-contention model is intentionally simple: each kernel operation
// holds one of a small set of kernel locks for a configurable fraction of
// its service time, in the style of early-90s SMP kernels whose
// "improving parallelism is an iterative trial-and-error process of
// identifying and fixing bottlenecks" (§1).
package smpos

import (
	"repro/internal/core"
	"repro/internal/membership"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Config tunes the shared-everything contention model.
type Config struct {
	// KernelLocks is how far lock splitting has progressed: 1 models a
	// giant-locked kernel, larger values a partially parallelized one.
	KernelLocks int
	// LockedFraction is the fraction (0..1) of each kernel operation's
	// service time spent holding a kernel lock.
	LockedFraction float64
}

// DefaultConfig models a giant-locked kernel — the §1 starting point of
// the "iterative trial-and-error" parallelization process.
func DefaultConfig() Config {
	return Config{KernelLocks: 1, LockedFraction: 0.5}
}

// TunedConfig models a kernel after several rounds of lock splitting.
func TunedConfig() Config {
	return Config{KernelLocks: 4, LockedFraction: 0.35}
}

// System is an SMP OS instance: one kernel over the whole machine.
type System struct {
	Hive *core.Hive // single cell, protection hardware off
	Cfg  Config

	locks   []*sim.Mutex
	rr      int
	Metrics *stats.Registry
}

// Boot brings up the SMP OS on a machine with the given node count.
func Boot(nodes int, cfg Config) *System {
	hcfg := core.DefaultConfig()
	hcfg.Cells = 1
	hcfg.Machine.Nodes = nodes
	hcfg.Machine.FirewallEnabled = false
	hcfg.Agreement = membership.Oracle
	sys := &System{Hive: core.Boot(hcfg), Cfg: cfg, Metrics: stats.NewRegistry()}
	if cfg.KernelLocks < 1 {
		cfg.KernelLocks = 1
	}
	for i := 0; i < cfg.KernelLocks; i++ {
		sys.locks = append(sys.locks, &sim.Mutex{})
	}
	return sys
}

// Cell returns the single kernel instance.
func (s *System) Cell() *core.Cell { return s.Hive.Cells[0] }

// KernelOp performs a kernel operation of the given service time, holding
// one of the kernel locks for LockedFraction of it — the serialization a
// shared-everything kernel imposes.
func (s *System) KernelOp(t *sim.Task, service sim.Time) {
	locked := sim.Time(float64(service) * s.Cfg.LockedFraction)
	open := service - locked
	sched := s.Cell().Sched
	sched.SystemShared(t, open)
	if locked <= 0 {
		return
	}
	l := s.locks[s.rr%len(s.locks)]
	s.rr++
	if l.Locked() {
		s.Metrics.Counter("smpos.lock_contended").Inc()
	}
	l.Lock(t)
	sched.SystemShared(t, locked)
	l.Unlock(t)
	s.Metrics.Counter("smpos.kernel_ops").Inc()
}

// ThroughputProbe runs `procs` kernel-intensive processes for the given
// duration and returns completed kernel operations — the §1 scalability
// comparison's measurement. Each process alternates a small compute burst
// with a kernel operation.
func (s *System) ThroughputProbe(procs int, opService, computeBurst sim.Time, duration sim.Time) int64 {
	var ops int64
	stopAt := s.Hive.Eng.Now() + duration
	for i := 0; i < procs; i++ {
		s.Cell().Procs.Spawn("probe", 500, func(p *proc.Process, t *sim.Task) {
			for t.Now() < stopAt {
				p.Compute(t, computeBurst)
				s.KernelOp(t, opService)
				ops++
			}
		})
	}
	s.Hive.Run(stopAt)
	return ops
}

// HiveThroughputProbe is the multicellular counterpart: the same offered
// load on a Hive, where each cell's kernel has its own locks, so cross-cell
// contention is structural zero (few kernel resources are shared between
// cells, §1). Kernel ops here serialize only within a cell.
func HiveThroughputProbe(h *core.Hive, procsPerCell int, opService, computeBurst sim.Time, duration sim.Time, lockedFraction float64) int64 {
	var ops int64
	stopAt := h.Eng.Now() + duration
	locks := make([]*sim.Mutex, len(h.Cells))
	for i := range locks {
		locks[i] = &sim.Mutex{}
	}
	for ci, c := range h.Cells {
		cell := c
		lock := locks[ci]
		for i := 0; i < procsPerCell; i++ {
			cell.Procs.Spawn("probe", 500, func(p *proc.Process, t *sim.Task) {
				for t.Now() < stopAt {
					p.Compute(t, computeBurst)
					locked := sim.Time(float64(opService) * lockedFraction)
					cell.Sched.SystemShared(t, opService-locked)
					if locked > 0 {
						lock.Lock(t)
						cell.Sched.SystemShared(t, locked)
						lock.Unlock(t)
					}
					ops++
				}
			})
		}
	}
	h.Run(stopAt)
	return ops
}
