package forensic

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// buildTrace emits a hand-built stream through a real Set so merge order
// and spans behave exactly as in production.
func buildTrace(cells, capPerCell int, emit func(tr func(cell int) *trace.Tracer)) ([]trace.Event, []trace.DropCount) {
	s := trace.NewSet(cells, capPerCell)
	emit(s.Tracer)
	return s.Merged(), s.Dropped()
}

func TestGraphContainedFault(t *testing.T) {
	events, dropped := buildTrace(3, 64, func(tr func(int) *trace.Tracer) {
		// Cell 1 gets a hardware fault, calls out once before dying, is
		// alerted and voted on, and its pages are cleaned up.
		tr(1).Emit(10*sim.Millisecond, trace.Inject, 1, 0, "hw-fail")
		tr(1).EmitSpan(11*sim.Millisecond, trace.RPCSend, 7, 0, 120, "")
		tr(1).Emit(12*sim.Millisecond, trace.Panic, 0, 0, "fail-stop hardware fault injected")
		tr(0).Emit(13*sim.Millisecond, trace.Alert, 1, 0, "clock")
		tr(2).Emit(14*sim.Millisecond, trace.Vote, 1, 0, "dead")
		tr(0).Emit(15*sim.Millisecond, trace.Kill, 3, 0, "pages")
	})
	g := BuildGraph(events, dropped)

	if got := g.FaultCells(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("FaultCells = %v, want [1]", got)
	}
	if got := g.DeathCells(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DeathCells = %v, want [1]", got)
	}
	if len(g.Escapes) != 0 {
		t.Fatalf("unexpected escapes: %v", g.Escapes)
	}
	counts := g.ClassCounts()
	if counts[Validated] != 3 { // rpc out + alert + vote
		t.Errorf("validated = %d, want 3 (edges %+v)", counts[Validated], g.Edges)
	}
	if counts[Discarded] != 1 { // cleanup
		t.Errorf("discarded = %d, want 1", counts[Discarded])
	}

	v := Audit(g, events)
	if !v.Detected || !v.Contained {
		t.Fatalf("audit = detected=%v contained=%v, want both true\n%v",
			v.Detected, v.Contained, v.Evidence)
	}
}

func TestGraphSyntheticEscape(t *testing.T) {
	events, dropped := buildTrace(3, 64, func(tr func(int) *trace.Tracer) {
		// Cell 1 is injected, touches cell 2 via RPC, then cell 2 — which
		// has no injected fault — dies: the escape the design must prevent.
		tr(1).Emit(10*sim.Millisecond, trace.Inject, 1, 0, "corrupt")
		tr(2).EmitSpan(11*sim.Millisecond, trace.RPCRecv, 9, 1, 120, "")
		tr(2).Emit(12*sim.Millisecond, trace.Panic, 0, 0, "kernel data corruption")
	})
	g := BuildGraph(events, dropped)

	if len(g.Escapes) != 1 {
		t.Fatalf("escapes = %v, want exactly one", g.Escapes)
	}
	if !strings.Contains(g.Escapes[0], "cell 2 died") ||
		!strings.Contains(g.Escapes[0], "cell 1") {
		t.Errorf("escape message %q should name victim cell 2 and contact cell 1", g.Escapes[0])
	}
	var esc *Edge
	for i := range g.Edges {
		if g.Edges[i].Class == Escaped {
			esc = &g.Edges[i]
		}
	}
	if esc == nil {
		t.Fatal("no Escaped edge in graph")
	}
	if esc.From != 1 || esc.To != 2 {
		t.Errorf("escape edge %d->%d, want 1->2 (lastTouch attribution)", esc.From, esc.To)
	}

	v := Audit(g, events)
	if v.Contained {
		t.Fatalf("audit says contained despite an escape\n%v", v.Evidence)
	}
	if !v.Truncated && g.Truncated {
		t.Error("truncation flag not propagated")
	}
}

func TestAuditWireFaults(t *testing.T) {
	events, dropped := buildTrace(2, 64, func(tr func(int) *trace.Tracer) {
		tr(0).Emit(1*sim.Millisecond, trace.MsgDrop, 1, 0, "")
		tr(0).Emit(2*sim.Millisecond, trace.RPCRetry, 1, 0, "")
	})
	g := BuildGraph(events, dropped)
	v := Audit(g, events)
	if !v.Detected || !v.Contained {
		t.Fatalf("drop+retry: detected=%v contained=%v, want both true\n%v",
			v.Detected, v.Contained, v.Evidence)
	}

	// A drop with no retransmit evidence is undetected.
	events2, dropped2 := buildTrace(2, 64, func(tr func(int) *trace.Tracer) {
		tr(0).Emit(1*sim.Millisecond, trace.MsgDrop, 1, 0, "")
	})
	v2 := Audit(BuildGraph(events2, dropped2), events2)
	if v2.Detected {
		t.Fatalf("drop without retry should be undetected\n%v", v2.Evidence)
	}
}

func TestAuditHintAloneIsNotDetection(t *testing.T) {
	events, dropped := buildTrace(2, 64, func(tr func(int) *trace.Tracer) {
		tr(1).Emit(10*sim.Millisecond, trace.Inject, 1, 0, "hw-fail")
		tr(1).Emit(11*sim.Millisecond, trace.Panic, 0, 0, "dead")
		tr(0).Emit(12*sim.Millisecond, trace.Hint, 1, 0, "timeout")
	})
	v := Audit(BuildGraph(events, dropped), events)
	if v.Detected {
		t.Fatalf("a lone hint must not count as detection\n%v", v.Evidence)
	}
}

func TestFirewallEdgesGatedOnRecovery(t *testing.T) {
	events, dropped := buildTrace(2, 64, func(tr func(int) *trace.Tracer) {
		tr(1).Emit(1*sim.Millisecond, trace.Inject, 1, 0, "hw-fail")
		// Routine permission narrowing outside recovery: no edge.
		tr(0).Emit(2*sim.Millisecond, trace.FirewallRevoke, 5, 0, "")
		tr(0).EmitSpan(3*sim.Millisecond, trace.PhaseBegin, 11, 0, 0, "recovery:barrier1")
		tr(0).Emit(4*sim.Millisecond, trace.FirewallRevoke, 5, 0, "")
		tr(0).EmitSpan(5*sim.Millisecond, trace.PhaseEnd, 11, 0, 0, "recovery:barrier1")
	})
	g := BuildGraph(events, dropped)
	fw := 0
	for _, e := range g.Edges {
		if e.Via == "firewall" {
			fw += e.Count
		}
	}
	if fw != 1 {
		t.Fatalf("firewall edge count = %d, want 1 (only the in-recovery revoke)\n%+v", fw, g.Edges)
	}
}

func TestProfilePairsSpans(t *testing.T) {
	events, _ := buildTrace(2, 64, func(tr func(int) *trace.Tracer) {
		// One closed fs-RPC span of 5ms on cell 0, one left open, one instant.
		tr(0).EmitSpan(10*sim.Millisecond, trace.RPCSend, 7, 1, 120, "")
		tr(0).EmitSpan(15*sim.Millisecond, trace.RPCReply, 7, 1, 120, "")
		tr(0).EmitSpan(20*sim.Millisecond, trace.RPCSend, 8, 1, 120, "")
		tr(1).Emit(21*sim.Millisecond, trace.Heartbeat, 0, 0, "")
	})
	p := BuildProfile(events)
	if p.Unclosed != 1 {
		t.Fatalf("unclosed = %d, want 1", p.Unclosed)
	}
	if p.Total != 5*sim.Millisecond {
		t.Fatalf("total = %v, want 5ms", p.Total)
	}
	cp := p.Cells[0]
	if len(cp.Subs) != 1 || cp.Subs[0].Name != SubFS {
		t.Fatalf("cell 0 subsystems = %+v, want one fs row", cp.Subs)
	}
	if top := cp.Subs[0].Top[0]; top.Name != "rpc:call:120" || top.Time != 5*sim.Millisecond {
		t.Fatalf("top span = %+v, want rpc:call:120 at 5ms", top)
	}
	if p.Cells[1].Events != 1 {
		t.Fatalf("cell 1 instants = %d, want 1", p.Cells[1].Events)
	}
}

func TestProcSubsystemRanges(t *testing.T) {
	for _, tc := range []struct {
		proc int64
		want string
	}{
		{100, SubVM}, {121, SubFS}, {140, SubVM}, {160, SubSched}, {180, SubMembership}, {42, SubRPC},
	} {
		if got := procSubsystem(tc.proc); got != tc.want {
			t.Errorf("procSubsystem(%d) = %s, want %s", tc.proc, got, tc.want)
		}
	}
}

func TestTruncationSetsFlag(t *testing.T) {
	events, dropped := buildTrace(1, 8, func(tr func(int) *trace.Tracer) {
		tr(0).Emit(0, trace.Inject, 0, 0, "hw-fail")
		for i := 0; i < 100; i++ {
			tr(0).Emit(sim.Time(i), trace.SIPS, int64(i), 0, "")
		}
	})
	g := BuildGraph(events, dropped)
	if !g.Truncated {
		t.Fatal("data-ring overflow should set Truncated")
	}
	v := Audit(g, events)
	found := false
	for _, ev := range v.Evidence {
		if strings.Contains(ev, "truncated") {
			found = true
		}
	}
	if !found {
		t.Fatalf("audit evidence should warn about truncation: %v", v.Evidence)
	}
}

func TestReportFormatDeterministic(t *testing.T) {
	mk := func() string {
		events, dropped := buildTrace(3, 64, func(tr func(int) *trace.Tracer) {
			tr(1).Emit(10*sim.Millisecond, trace.Inject, 1, 0, "hw-fail")
			tr(1).Emit(12*sim.Millisecond, trace.Panic, 0, 0, "dead")
			tr(0).Emit(13*sim.Millisecond, trace.Alert, 1, 0, "clock")
			tr(2).EmitSpan(14*sim.Millisecond, trace.RPCSend, 3, 0, 121, "")
			tr(2).EmitSpan(16*sim.Millisecond, trace.RPCReply, 3, 0, 121, "")
		})
		return Analyze(events, dropped).Format(3)
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("report not deterministic:\n%s\n---\n%s", a, b)
	}
	if !strings.Contains(a, "audit: detected=PASS contained=PASS") {
		t.Fatalf("unexpected report:\n%s", a)
	}
}
