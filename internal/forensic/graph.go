package forensic

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/trace"
)

// EdgeClass says what the containment boundary did with one causal edge.
type EdgeClass int

const (
	// Validated: the interaction crossed a designed, checked interface
	// (an RPC request served, a failure-detection hint/alert/vote — the
	// only channels §3 permits a fault's effects to travel).
	Validated EdgeClass = iota
	// Blocked: the boundary refused the interaction outright — an RPC
	// timeout, a careful-read abort, a firewall write-permission revoke
	// during recovery.
	Blocked
	// Discarded: data arrived and was thrown away — a checksum discard,
	// a duplicate/stale-message discard, recovery's preemptive page and
	// process cleanup.
	Discarded
	// Absorbed: the fault was repaired transparently (a retransmit
	// recovered a lost message).
	Absorbed
	// Escaped: a cell with no injected fault died — the containment
	// failure everything above exists to prevent.
	Escaped
)

// String names the class for reports.
func (c EdgeClass) String() string {
	switch c {
	case Validated:
		return "validated"
	case Blocked:
		return "blocked"
	case Discarded:
		return "discarded"
	case Absorbed:
		return "absorbed"
	case Escaped:
		return "ESCAPED"
	}
	return "?"
}

// edgeClasses lists every class in report order.
func edgeClasses() []EdgeClass {
	return []EdgeClass{Validated, Blocked, Discarded, Absorbed, Escaped}
}

// Fault is one injected fault located in the trace.
type Fault struct {
	Cell int      `json:"cell"`
	At   sim.Time `json:"at"`
	What string   `json:"what"` // "hw-fail" or "corrupt"
}

// Death is one cell death located in the trace.
type Death struct {
	Cell     int      `json:"cell"`
	At       sim.Time `json:"at"`
	Reason   string   `json:"reason"`
	Injected bool     `json:"injected"` // had an injected fault before dying
	Healed   bool     `json:"healed"`   // a later join round readmitted the cell
}

// Reboot is one microboot stage located in the trace: a fresh cell image
// brought up on a dead cell's nodes (or the bounded give-up after the
// rejoin backoff is exhausted — distinguishable by Stage).
type Reboot struct {
	Cell    int      `json:"cell"`
	Attempt int      `json:"attempt"`
	At      sim.Time `json:"at"`
	Stage   string   `json:"stage"`
}

// Rejoin is one committed join round: the coordinator readmitted the
// rebooted cell to the live set at full trust.
type Rejoin struct {
	Cell        int      `json:"cell"`
	Coordinator int      `json:"coordinator"`
	At          sim.Time `json:"at"`
}

// WireFault aggregates one kind of injected wire fault.
type WireFault struct {
	Kind  string   `json:"kind"` // "drop", "dup", "corrupt", "delay"
	Count int      `json:"count"`
	First sim.Time `json:"first"`
}

// Edge is one aggregated causal edge of the propagation graph. From/To
// are cell ids; -1 stands for the wire or an unattributable source (e.g.
// a stale reply whose call record is gone).
type Edge struct {
	From  int       `json:"from"`
	To    int       `json:"to"`
	Class EdgeClass `json:"-"`
	Via   string    `json:"via"` // mechanism: rpc, rpc-timeout, careful, firewall, checksum, dedup, retry, membership, cleanup, death
	Count int       `json:"count"`
	First sim.Time  `json:"first"`
	Last  sim.Time  `json:"last"`
}

// ClassName is the stable JSON form of Class.
func (e Edge) ClassName() string { return e.Class.String() }

// Graph is the causal fault-propagation graph of one run: every recorded
// interaction causally downstream of an injected fault, aggregated per
// (from, to, class, mechanism) and classified by what the containment
// boundary did with it.
type Graph struct {
	Cells      int
	Events     int
	Faults     []Fault
	Deaths     []Death
	Reboots    []Reboot
	Rejoins    []Rejoin
	WireFaults []WireFault
	Edges      []Edge
	Escapes    []string
	Dropped    []trace.DropCount
	// Truncated reports that at least one ring overwrote events, so the
	// walk may have missed edges (the audit notes carry the warning).
	Truncated bool
}

// FaultCells returns the distinct cells with injected faults, ascending.
func (g *Graph) FaultCells() []int { return distinctCells(g.Faults, func(f Fault) int { return f.Cell }) }

// DeathCells returns the distinct dead cells, ascending.
func (g *Graph) DeathCells() []int { return distinctCells(g.Deaths, func(d Death) int { return d.Cell }) }

// RejoinCells returns the distinct cells readmitted by a join round,
// ascending.
func (g *Graph) RejoinCells() []int {
	return distinctCells(g.Rejoins, func(r Rejoin) int { return r.Cell })
}

// FinalDeathCells returns the distinct cells still dead when the trace
// ends: they died and no later join round readmitted them.
func (g *Graph) FinalDeathCells() []int {
	var unhealed []Death
	for _, d := range g.Deaths {
		if !d.Healed {
			unhealed = append(unhealed, d)
		}
	}
	return distinctCells(unhealed, func(d Death) int { return d.Cell })
}

func distinctCells[T any](xs []T, cell func(T) int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if c := cell(x); !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// ClassCounts tallies edge events per class.
func (g *Graph) ClassCounts() map[EdgeClass]int {
	out := map[EdgeClass]int{}
	for _, e := range g.Edges {
		out[e.Class] += e.Count
	}
	return out
}

type edgeKey struct {
	from, to int
	class    EdgeClass
	via      string
}

// BuildGraph walks the merged stream and reconstructs the propagation
// graph. events must be in merge order (trace.Set.Merged); dropped may be
// nil. Pure function: identical inputs give identical graphs.
func BuildGraph(events []trace.Event, dropped []trace.DropCount) *Graph {
	g := &Graph{Events: len(events), Dropped: append([]trace.DropCount(nil), dropped...)}
	for _, d := range dropped {
		if d.Total() > 0 {
			g.Truncated = true
		}
	}
	cells := 0
	for _, e := range events {
		if e.Cell >= cells {
			cells = e.Cell + 1
		}
	}
	g.Cells = cells

	edges := map[edgeKey]*Edge{}
	var edgeOrder []edgeKey // insertion order, one entry per edges key
	addEdge := func(from, to int, class EdgeClass, via string, at sim.Time) {
		k := edgeKey{from, to, class, via}
		ed := edges[k]
		if ed == nil {
			ed = &Edge{From: from, To: to, Class: class, Via: via, First: at}
			edges[k] = ed
			edgeOrder = append(edgeOrder, k)
		}
		ed.Count++
		ed.Last = at
	}

	taintAt := map[int]sim.Time{} // cell -> time its fault was injected / it escaped
	var taintedCells []int       // insertion order, one entry per taintAt key
	taint := func(cell int, at sim.Time) {
		if _, ok := taintAt[cell]; !ok {
			taintAt[cell] = at
			taintedCells = append(taintedCells, cell)
		}
	}
	tainted := func(cell int, at sim.Time) bool {
		t, ok := taintAt[cell]
		return ok && at >= t
	}
	// soleTainted attributes mechanisms that name no peer (firewall
	// revokes, recovery cleanup) to the unique faulty cell when there is
	// exactly one, and to -1 otherwise.
	soleTainted := func() int {
		if len(taintedCells) == 1 {
			return taintedCells[0]
		}
		return -1
	}
	// lastTouch[c] is the most recent faulty cell that interacted with c —
	// the best causal predecessor for an escape edge.
	lastTouch := map[int]int{}
	touch := func(from, to int) {
		if from >= 0 {
			lastTouch[to] = from
		}
	}

	var haveFault bool   // any injected fault (cell or wire) seen yet
	var recoveryOpen int // open recovery:* phase spans across all cells
	wire := map[string]*WireFault{}
	var wireOrder []string // insertion order, one entry per wire key
	addWire := func(kind string, at sim.Time) {
		haveFault = true
		w := wire[kind]
		if w == nil {
			w = &WireFault{Kind: kind, First: at}
			wire[kind] = w
			wireOrder = append(wireOrder, kind)
		}
		w.Count++
	}

	for _, e := range events {
		switch e.Kind {
		case trace.Inject:
			g.Faults = append(g.Faults, Fault{Cell: e.Cell, At: e.At, What: e.S})
			taint(e.Cell, e.At)
			haveFault = true
			continue
		case trace.Panic:
			injected := tainted(e.Cell, e.At)
			g.Deaths = append(g.Deaths, Death{Cell: e.Cell, At: e.At, Reason: e.S, Injected: injected})
			if !injected {
				// A cell died with no injected fault: containment failed.
				from := -1
				if f, ok := lastTouch[e.Cell]; ok {
					from = f
				}
				addEdge(from, e.Cell, Escaped, "death", e.At)
				g.Escapes = append(g.Escapes, fmt.Sprintf(
					"cell %d died at %v with no injected fault (last faulty contact: cell %d): %s",
					e.Cell, e.At, from, e.S))
				taint(e.Cell, e.At) // its own effects are now suspect too
			}
			continue
		case trace.Reboot:
			g.Reboots = append(g.Reboots, Reboot{
				Cell: int(e.A), Attempt: int(e.B), At: e.At, Stage: e.S})
			continue
		case trace.Rejoin:
			// A committed join round readmits the cell at full trust: its
			// image is fresh (microboot) and the round's validate barrier
			// vouched for it, so its taint is lifted. A later death of this
			// cell is a NEW fault (FailHardware re-emits Inject), not an
			// escape of the old one.
			joiner := int(e.A)
			g.Rejoins = append(g.Rejoins, Rejoin{
				Cell: joiner, Coordinator: int(e.B), At: e.At})
			if _, ok := taintAt[joiner]; ok {
				delete(taintAt, joiner)
				for i, c := range taintedCells {
					if c == joiner {
						taintedCells = append(taintedCells[:i], taintedCells[i+1:]...)
						break
					}
				}
			}
			// Causal contacts from before the reboot are also void — both
			// the joiner's own record and entries blaming the joiner.
			delete(lastTouch, joiner)
			var blamed []int
			for c, f := range lastTouch {
				if f == joiner {
					blamed = append(blamed, c)
				}
			}
			sort.Ints(blamed)
			for _, c := range blamed {
				delete(lastTouch, c)
			}
			continue
		case trace.MsgDrop:
			addWire("drop", e.At)
			addEdge(e.Cell, -1, Absorbed, "retry", e.At)
			continue
		case trace.MsgDup:
			addWire("dup", e.At)
			addEdge(e.Cell, -1, Discarded, "dedup", e.At)
			continue
		case trace.MsgDelay:
			addWire("delay", e.At)
			continue
		case trace.MsgCorrupt:
			// Recorded at the delivery side, where the checksum caught it.
			addWire("corrupt", e.At)
			addEdge(-1, e.Cell, Discarded, "checksum", e.At)
			continue
		case trace.PhaseBegin:
			if strings.HasPrefix(e.S, "recovery:") {
				recoveryOpen++
			}
			continue
		case trace.PhaseEnd:
			if strings.HasPrefix(e.S, "recovery:") && recoveryOpen > 0 {
				recoveryOpen--
			}
			continue
		}
		if !haveFault {
			continue // nothing to be downstream of yet
		}
		switch e.Kind {
		case trace.RPCSend:
			if tainted(e.Cell, e.At) && int(e.A) != e.Cell {
				// A faulty cell calling out through the validated interface
				// (§3: a corrupt cell keeps running until caught).
				addEdge(e.Cell, int(e.A), Validated, "rpc", e.At)
				touch(e.Cell, int(e.A))
			}
		case trace.RPCRecv:
			if from := int(e.A); tainted(from, e.At) && from != e.Cell {
				addEdge(from, e.Cell, Validated, "rpc", e.At)
				touch(from, e.Cell)
			}
		case trace.RPCTimeout:
			if peer := int(e.A); tainted(peer, e.At) && peer != e.Cell {
				addEdge(peer, e.Cell, Blocked, "rpc-timeout", e.At)
				touch(peer, e.Cell)
			}
		case trace.RPCRetry:
			if peer := int(e.A); tainted(peer, e.At) && peer != e.Cell {
				addEdge(peer, e.Cell, Absorbed, "retry", e.At)
			}
		case trace.RPCDedup:
			if peer := int(e.A); peer >= 0 && tainted(peer, e.At) && peer != e.Cell {
				addEdge(peer, e.Cell, Discarded, "dedup", e.At)
			}
		case trace.CarefulAbort:
			if suspect := int(e.A); tainted(suspect, e.At) && suspect != e.Cell {
				addEdge(suspect, e.Cell, Blocked, "careful", e.At)
				touch(suspect, e.Cell)
			}
		case trace.Hint, trace.Alert, trace.Vote:
			if suspect := int(e.A); tainted(suspect, e.At) && suspect != e.Cell {
				addEdge(suspect, e.Cell, Validated, "membership", e.At)
			}
		case trace.RoundRestart:
			if dead := int(e.A); tainted(dead, e.At) {
				addEdge(dead, e.Cell, Validated, "membership", e.At)
			}
		case trace.Kill, trace.Discard:
			if e.A > 0 { // zero-count cleanups carry no propagation
				addEdge(soleTainted(), e.Cell, Discarded, "cleanup", e.At)
			}
		case trace.FirewallRevoke:
			// Only revokes inside a recovery round are containment work;
			// permission narrowing is routine during normal operation.
			if recoveryOpen > 0 {
				addEdge(soleTainted(), e.Cell, Blocked, "firewall", e.At)
			}
		}
	}

	// A death is healed when a later join round readmitted the same cell:
	// the availability loop closed over it.
	for i := range g.Deaths {
		d := &g.Deaths[i]
		for _, r := range g.Rejoins {
			if r.Cell == d.Cell && r.At > d.At {
				d.Healed = true
				break
			}
		}
	}

	for _, kind := range wireOrder {
		g.WireFaults = append(g.WireFaults, *wire[kind])
	}
	sort.SliceStable(g.WireFaults, func(i, j int) bool { return g.WireFaults[i].Kind < g.WireFaults[j].Kind })
	for _, k := range edgeOrder {
		g.Edges = append(g.Edges, *edges[k])
	}
	sort.SliceStable(g.Edges, func(i, j int) bool {
		a, b := g.Edges[i], g.Edges[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Via < b.Via
	})
	return g
}
