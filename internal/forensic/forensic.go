// Package forensic derives fault-containment verdicts and performance
// attribution from the structured trace alone — independently of the
// fault-injection harness that orchestrated the run. Hive's core claim
// (§3, §7) is that a fault's effects never escape the faulting cell;
// faultinject asserts this by inspecting live kernel state, and this
// package re-derives the same verdict from the recorded event stream, so
// the two can be cross-checked and any disagreement fails loudly
// (cmd/hivemort, make mort-check).
//
// Three consumers share one pass over the merged stream:
//
//   - Graph (graph.go): the causal fault-propagation graph. Every event
//     causally downstream of an injected fault becomes an edge between
//     cells, classified by what the containment boundary did with it —
//     validated (crossed a designed interface), blocked (refused: RPC
//     timeout, careful-read abort, firewall revoke), discarded (checksum
//     or dedup discard, preemptive page/process cleanup), absorbed
//     (retransmit recovered it), or escaped (a cell died without an
//     injected fault — the containment failure the paper's design rules
//     exist to prevent).
//   - Verdict (audit.go): the trace-based containment auditor.
//   - Profile (profile.go): the virtual-time profiler attributing span
//     time and event counts per cell × subsystem.
//
// Everything here is a pure function of the merged stream plus the
// per-cell ring-truncation counters, so reports are byte-identical
// across -j and -shards whenever the underlying trace is.
package forensic

import (
	"repro/internal/trace"
)

// Subsystem names used by the profiler and the edge labels. RPC spans
// attribute to the subsystem owning the procedure (the documented ProcID
// ranges below); the wire itself shows up as rpc instants.
const (
	SubRPC        = "rpc"
	SubVM         = "vm"
	SubFS         = "fs"
	SubSched      = "sched"
	SubMembership = "membership"
	SubWax        = "wax"
	SubOther      = "other"
)

// procSubsystem maps an RPC procedure id to the subsystem that owns it.
// The ranges are the module's procedure-numbering convention (vm 100-119,
// fs 120-139, cow 140-159 — attributed to vm, its client layer —
// proc/sched 160-179, membership 180-199); forensic sits below those
// packages in the layering DAG, so the ranges are mirrored here rather
// than imported.
func procSubsystem(proc int64) string {
	switch {
	case proc >= 100 && proc < 120:
		return SubVM
	case proc >= 120 && proc < 140:
		return SubFS
	case proc >= 140 && proc < 160:
		return SubVM // cow: kernel-data plane of the vm layer
	case proc >= 160 && proc < 180:
		return SubSched
	case proc >= 180 && proc < 200:
		return SubMembership
	}
	return SubRPC
}

// spanSubsystem attributes a begin-kind event's span.
func spanSubsystem(e trace.Event) string {
	switch e.Kind {
	case trace.RPCSend, trace.RPCRecv:
		return procSubsystem(e.B)
	case trace.FaultBegin:
		return SubVM
	case trace.PhaseBegin:
		return phaseSubsystem(e.S)
	}
	return SubOther
}

// phaseSubsystem attributes a named phase span: the recovery and join
// rounds are membership work; anything else keeps its own prefix or falls
// to other.
func phaseSubsystem(name string) string {
	if len(name) >= 9 && name[:9] == "recovery:" {
		return SubMembership
	}
	if len(name) >= 5 && name[:5] == "join:" {
		return SubMembership
	}
	return SubOther
}

// instantSubsystem attributes a point event.
func instantSubsystem(e trace.Event) string {
	switch e.Kind {
	case trace.Hint, trace.Alert, trace.Vote, trace.Heartbeat, trace.RoundRestart,
		trace.Panic, trace.Kill, trace.Discard, trace.Inject,
		trace.Reboot, trace.Rejoin:
		return SubMembership
	case trace.SIPS, trace.MsgDrop, trace.MsgDup, trace.MsgCorrupt, trace.MsgDelay,
		trace.RPCReply, trace.RPCTimeout, trace.RPCRetry, trace.RPCDedup:
		return SubRPC
	case trace.FirewallGrant, trace.FirewallRevoke, trace.FaultEnd, trace.CarefulAbort:
		// Careful-read aborts guard the kernel-data plane (address maps,
		// COW trees, remote clocks); they attribute with it.
		return SubVM
	case trace.WaxHint:
		return SubWax
	}
	return SubOther
}

// Subsystems lists every attribution bucket in report order.
func Subsystems() []string {
	return []string{SubRPC, SubVM, SubFS, SubSched, SubMembership, SubWax, SubOther}
}
