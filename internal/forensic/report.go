package forensic

import (
	"fmt"
	"strings"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Report bundles the three forensic products of one run.
type Report struct {
	Graph   *Graph   `json:"-"`
	Audit   Verdict  `json:"audit"`
	Profile *Profile `json:"profile"`
}

// Analyze runs the full forensic pass over one run's merged stream:
// graph reconstruction, containment audit, virtual-time profile. Pure
// function of its inputs.
func Analyze(events []trace.Event, dropped []trace.DropCount) *Report {
	g := BuildGraph(events, dropped)
	return &Report{
		Graph:   g,
		Audit:   Audit(g, events),
		Profile: BuildProfile(events),
	}
}

// cellName renders a graph node (-1 is the wire / unattributed).
func cellName(c int) string {
	if c < 0 {
		return "wire"
	}
	return fmt.Sprintf("cell %d", c)
}

// Format renders the report deterministically: header (event volume,
// truncation), located faults and deaths, the classified edge table, the
// audit verdict with its evidence, and the per-cell top-down profile
// showing the topN heaviest span names per subsystem.
func (r *Report) Format(topN int) string {
	if topN <= 0 {
		topN = 3
	}
	g := r.Graph
	var b strings.Builder

	fmt.Fprintf(&b, "forensics: %d events across %d cells", g.Events, g.Cells)
	if d := totalDropped(g.Dropped); d > 0 {
		fmt.Fprintf(&b, "; %d events dropped by ring truncation (", d)
		first := true
		for _, dc := range g.Dropped {
			if dc.Total() == 0 {
				continue
			}
			if !first {
				b.WriteString(", ")
			}
			first = false
			fmt.Fprintf(&b, "cell %d: %d ctl + %d data", dc.Cell, dc.Control, dc.Data)
		}
		b.WriteString(") — WALK MAY BE INCOMPLETE")
	} else {
		b.WriteString("; no ring truncation")
	}
	b.WriteString("\n\n")

	if len(g.Faults) > 0 {
		b.WriteString("injected faults:\n")
		for _, f := range g.Faults {
			fmt.Fprintf(&b, "  %s  %-7s at %v\n", cellName(f.Cell), f.What, f.At)
		}
	}
	if len(g.WireFaults) > 0 {
		b.WriteString("injected wire faults:\n")
		for _, w := range g.WireFaults {
			fmt.Fprintf(&b, "  %-7s ×%-4d first at %v\n", w.Kind, w.Count, w.First)
		}
	}
	if len(g.Deaths) > 0 {
		b.WriteString("deaths:\n")
		for _, d := range g.Deaths {
			tag := "injected"
			if !d.Injected {
				tag = "NOT INJECTED"
			}
			if d.Healed {
				tag += ", later rejoined"
			}
			fmt.Fprintf(&b, "  %s at %v (%s): %s\n", cellName(d.Cell), d.At, tag, d.Reason)
		}
	}
	if len(g.Reboots) > 0 {
		b.WriteString("availability loop:\n")
		for _, rb := range g.Reboots {
			fmt.Fprintf(&b, "  %s reboot attempt %d at %v: %s\n",
				cellName(rb.Cell), rb.Attempt, rb.At, rb.Stage)
		}
		for _, rj := range g.Rejoins {
			fmt.Fprintf(&b, "  %s REJOINED at %v (join round led by %s)\n",
				cellName(rj.Cell), rj.At, cellName(rj.Coordinator))
		}
		if still := g.FinalDeathCells(); len(still) > 0 {
			fmt.Fprintf(&b, "  still dead at end of trace: %v\n", still)
		}
	}
	b.WriteString("\n")

	if len(g.Edges) > 0 {
		t := stats.NewTable("propagation edges (downstream of the fault)",
			"class", "from", "to", "via", "count", "first", "last")
		for _, e := range g.Edges {
			t.AddRow(e.Class.String(), cellName(e.From), cellName(e.To), e.Via,
				fmt.Sprintf("%d", e.Count), fmt.Sprintf("%v", e.First), fmt.Sprintf("%v", e.Last))
		}
		b.WriteString(t.String())
		counts := g.ClassCounts()
		b.WriteString("edge events:")
		for _, c := range edgeClasses() {
			if counts[c] > 0 {
				fmt.Fprintf(&b, " %s=%d", c, counts[c])
			}
		}
		b.WriteString("\n\n")
	} else {
		b.WriteString("propagation edges: none\n\n")
	}

	verdict := func(ok bool) string {
		if ok {
			return "PASS"
		}
		return "FAIL"
	}
	fmt.Fprintf(&b, "audit: detected=%s contained=%s\n",
		verdict(r.Audit.Detected), verdict(r.Audit.Contained))
	for _, ev := range r.Audit.Evidence {
		fmt.Fprintf(&b, "  - %s\n", ev)
	}
	b.WriteString("\n")

	b.WriteString(r.FormatProfile(topN))
	return b.String()
}

// FormatProfile renders only the virtual-time profile section.
func (r *Report) FormatProfile(topN int) string {
	if topN <= 0 {
		topN = 3
	}
	var b strings.Builder
	fmt.Fprintf(&b, "virtual-time profile (inclusive span time; top %d names per subsystem):\n", topN)
	if r.Profile.Unclosed > 0 {
		fmt.Fprintf(&b, "  (%d spans left open contribute no time)\n", r.Profile.Unclosed)
	}
	for _, cp := range r.Profile.Cells {
		if cp.Time == 0 && cp.Events == 0 {
			continue
		}
		fmt.Fprintf(&b, "cell %d  %v span time, %d instant events\n", cp.Cell, cp.Time, cp.Events)
		for _, sp := range cp.Subs {
			fmt.Fprintf(&b, "  %-11s %12v  %6d spans  %6d events\n", sp.Name, sp.Time, sp.Spans, sp.Events)
			for i, top := range sp.Top {
				if i >= topN {
					break
				}
				fmt.Fprintf(&b, "    %-24s %12v  ×%d\n", top.Name, top.Time, top.Count)
			}
		}
	}
	return b.String()
}
