package forensic

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Verdict is the containment verdict re-derived from the trace alone.
// It mirrors the two trace-derivable fields of faultinject.TrialResult —
// Detected and Contained — so cmd/hivemort can cross-check them; the
// workload-level fields (IntegrityOK, CorrectRunOK, StateOK) need live
// kernel state and are out of the trace's reach (DESIGN.md §11 caveats).
type Verdict struct {
	Detected  bool     `json:"detected"`
	Contained bool     `json:"contained"`
	Injected  []int    `json:"injected_cells"` // cells with injected faults
	Deaths    []int    `json:"dead_cells"`
	Rejoined  []int    `json:"rejoined_cells,omitempty"` // readmitted by a join round
	Wire      []string `json:"wire_faults"`              // injected wire-fault kinds
	Escapes   []string `json:"escapes,omitempty"`
	Evidence  []string `json:"evidence"` // what each verdict bit rests on
	Truncated bool     `json:"truncated"`
}

// Audit derives the verdict from a propagation graph. Rules:
//
// Cell-fault runs (≥1 Inject event):
//   - contained ⟺ the dead set equals the injected set exactly (every
//     injected cell died, nobody else did), no edge escaped, and the set
//     of cells still dead when the trace ends equals the injected cells
//     that were never readmitted by a join round (the availability loop
//     must close over every rejoined cell, and a cell may only stay dead
//     if its reboot gave up or never committed). A run that also
//     restarted a recovery round after its coordinator died (two
//     injected faults, one of them cell 0) must show the RoundRestart
//     evidence, mirroring faultinject's extra check.
//   - detected ⟺ every injected cell has post-injection membership
//     evidence about it (an alert broadcast or an agreement vote).
//
// Wire-fault runs (Msg* events, no Injects):
//   - contained ⟺ nobody died.
//   - detected ⟺ the messaging layer visibly observed the fault: a
//     retransmit for drops, a dedup discard for dups, the delivery-side
//     checksum discard for corruption (the MsgCorrupt event is recorded
//     at the catch). Mixed-kind storms count any of the above.
//
// A trace with no fault at all yields detected=false, contained = "no
// deaths" — matching the harness's injection-never-triggered path.
func Audit(g *Graph, events []trace.Event) Verdict {
	v := Verdict{
		Injected:  g.FaultCells(),
		Deaths:    g.DeathCells(),
		Escapes:   append([]string(nil), g.Escapes...),
		Truncated: g.Truncated,
	}
	for _, w := range g.WireFaults {
		if w.Kind != "delay" { // delays reorder nothing and need no detection
			v.Wire = append(v.Wire, w.Kind)
		}
	}
	injectAt := map[int]sim.Time{}
	for _, f := range g.Faults {
		if _, ok := injectAt[f.Cell]; !ok {
			injectAt[f.Cell] = f.At
		}
	}

	switch {
	case len(v.Injected) > 0:
		v.auditCellFaults(g, events, injectAt)
	case len(v.Wire) > 0:
		v.auditWireFaults(g, events)
	default:
		v.Contained = len(v.Deaths) == 0
		v.note("no injected fault found in the trace")
	}
	if g.Truncated {
		v.note("WARNING: trace rings truncated (%d events dropped) — the walk may be incomplete",
			totalDropped(g.Dropped))
	}
	return v
}

func (v *Verdict) auditCellFaults(g *Graph, events []trace.Event, injectAt map[int]sim.Time) {
	// Containment: dead set == injected set, no escapes, and every cell
	// still dead at end of trace is an injected cell that never rejoined.
	v.Rejoined = g.RejoinCells()
	final := g.FinalDeathCells()
	expectFinal := subtractInts(v.Injected, v.Rejoined)
	v.Contained = len(v.Escapes) == 0 && equalInts(v.Deaths, v.Injected) &&
		equalInts(final, expectFinal)
	switch {
	case len(v.Escapes) > 0:
		v.note("containment FAILED: %d escape(s)", len(v.Escapes))
	case !equalInts(v.Deaths, v.Injected):
		v.note("containment FAILED: injected %v but dead %v", v.Injected, v.Deaths)
	case !equalInts(final, expectFinal):
		v.note("containment FAILED: cells %v still dead at end of trace, expected %v (injected minus rejoined)",
			final, expectFinal)
	default:
		v.note("dead set %v equals injected set; all edges contained", v.Deaths)
	}
	if len(v.Rejoined) > 0 {
		v.note("cells %v rebooted and rejoined (%d microboot stage(s), %d join commit(s)); a later death would be a new fault, not an escape",
			v.Rejoined, len(g.Reboots), len(g.Rejoins))
	} else if len(g.Reboots) > 0 {
		v.note("%d microboot stage(s) recorded but no join round committed (bounded crash loop)",
			len(g.Reboots))
	}

	// A coordinator-death run (two faults, one of them the recovery
	// master, cell 0) must additionally show the deterministic round
	// restart, mirroring the harness's explicit check.
	if len(v.Injected) == 2 && containsInt(v.Injected, 0) {
		restarts := countKind(events, trace.RoundRestart)
		if restarts == 0 {
			v.Contained = false
			v.note("containment FAILED: coordinator died but no round restart recorded")
		} else {
			v.note("round restarted %d time(s) after coordinator death", restarts)
		}
	}

	// Detection: post-injection membership evidence per injected cell.
	v.Detected = true
	for _, cell := range v.Injected {
		kind, at := detectionEvidence(events, cell, injectAt[cell])
		if kind == "" {
			v.Detected = false
			v.note("detection FAILED: no membership evidence about cell %d after its fault", cell)
			continue
		}
		v.note("cell %d detected via %s at %v", cell, kind, at)
	}
}

func (v *Verdict) auditWireFaults(g *Graph, events []trace.Event) {
	v.Contained = len(v.Deaths) == 0
	if v.Contained {
		v.note("no cell died under %v wire faults", v.Wire)
	} else {
		v.note("containment FAILED: cells %v died under wire faults", v.Deaths)
	}

	retries := countKind(events, trace.RPCRetry)
	dedups := countKind(events, trace.RPCDedup)
	corrupts := countKind(events, trace.MsgCorrupt)
	evidence := func(kind string) (bool, string) {
		switch kind {
		case "drop":
			return retries > 0, fmt.Sprintf("%d retransmit(s)", retries)
		case "dup":
			return dedups > 0, fmt.Sprintf("%d dedup discard(s)", dedups)
		case "corrupt":
			return corrupts > 0, fmt.Sprintf("%d checksum discard(s)", corrupts)
		}
		return false, ""
	}
	if len(v.Wire) >= 2 {
		// A mixed storm: any visible absorption witnesses detection
		// (faultinject treats the firing injector as the witness; the
		// trace-side analogue is the injected events themselves).
		v.Detected = true
		v.note("mixed wire-fault storm %v: %d retransmits, %d dedups, %d checksum discards",
			v.Wire, retries, dedups, corrupts)
		return
	}
	for _, kind := range v.Wire {
		ok, detail := evidence(kind)
		if !ok {
			v.Detected = false
			v.note("detection FAILED: no absorption evidence for injected %s faults", kind)
			continue
		}
		v.Detected = true
		v.note("%s faults absorbed: %s", kind, detail)
	}
}

// detectionEvidence finds the first membership event naming cell at or
// after its injection: an alert broadcast or an agreement vote (hints can
// fire on pre-existing suspicion, so they do not count on their own).
func detectionEvidence(events []trace.Event, cell int, after sim.Time) (string, sim.Time) {
	for _, e := range events {
		if e.At < after || int(e.A) != cell {
			continue
		}
		switch e.Kind {
		case trace.Alert:
			return "alert", e.At
		case trace.Vote:
			return "vote", e.At
		case trace.RoundRestart:
			return "round-restart", e.At
		}
	}
	return "", 0
}

func (v *Verdict) note(format string, args ...any) {
	v.Evidence = append(v.Evidence, fmt.Sprintf(format, args...))
}

func countKind(events []trace.Event, k trace.Kind) int {
	n := 0
	for _, e := range events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

func totalDropped(ds []trace.DropCount) uint64 {
	var n uint64
	for _, d := range ds {
		n += d.Total()
	}
	return n
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Ints(a)
	sort.Ints(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// subtractInts returns the elements of a not present in b, ascending.
func subtractInts(a, b []int) []int {
	var out []int
	for _, x := range a {
		if !containsInt(b, x) {
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
