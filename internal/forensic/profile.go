package forensic

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// SpanStat aggregates one span name within one cell × subsystem bucket.
type SpanStat struct {
	Name  string   `json:"name"`
	Time  sim.Time `json:"time_ns"`
	Count int      `json:"count"`
}

// SubProfile is one subsystem's share of a cell's virtual time.
type SubProfile struct {
	Name   string     `json:"name"`
	Time   sim.Time   `json:"time_ns"` // summed closed-span durations (inclusive)
	Spans  int        `json:"spans"`   // closed spans
	Events int        `json:"events"`  // instant events attributed here
	Top    []SpanStat `json:"top"`     // per span name, by time desc
}

// CellProfile is one cell's flame-style top-down attribution.
type CellProfile struct {
	Cell   int          `json:"cell"`
	Time   sim.Time     `json:"time_ns"`
	Events int          `json:"events"`
	Subs   []SubProfile `json:"subsystems"`
}

// Profile attributes virtual time (closed begin/end span pairs) and event
// counts per cell × subsystem. Span durations are inclusive — a nested
// span's time also counts in its parent, as in a top-down flame view —
// so per-subsystem times are attribution weights, not a partition of the
// run's wall of virtual time.
type Profile struct {
	Cells    []CellProfile `json:"cells"`
	Total    sim.Time      `json:"total_ns"`
	Unclosed int           `json:"unclosed_spans"`
}

// spanLabel names the slice opened by a begin-kind event (mirrors the
// Chrome export's naming so Perfetto and the profiler agree).
func spanLabel(e trace.Event) string {
	switch e.Kind {
	case trace.RPCSend:
		return fmt.Sprintf("rpc:call:%d", e.B)
	case trace.RPCRecv:
		return fmt.Sprintf("rpc:serve:%d", e.B)
	case trace.FaultBegin:
		return "vm:fault"
	case trace.PhaseBegin:
		return e.S
	}
	return e.Kind.String()
}

func beginKind(k trace.Kind) bool {
	return k == trace.RPCSend || k == trace.RPCRecv || k == trace.FaultBegin || k == trace.PhaseBegin
}

func endKind(k trace.Kind) bool {
	return k == trace.RPCReply || k == trace.RPCTimeout || k == trace.FaultEnd || k == trace.PhaseEnd
}

type pairKey struct {
	span trace.SpanID
	cell int
}

type bucketKey struct {
	cell int
	sub  string
	name string
}

// BuildProfile runs the profiler over a merged stream. Begin/end pairs
// are matched exactly as the Chrome export matches them: same span id,
// same cell, LIFO per key (a self-RPC nests its halves correctly). Spans
// left open when the run stopped (or whose end fell off the ring) count
// in Unclosed and contribute no time.
func BuildProfile(events []trace.Event) *Profile {
	buckets := map[bucketKey]*SpanStat{}
	var bucketOrder []bucketKey     // insertion order, one entry per buckets key
	instants := map[bucketKey]int{} // name=="" rows: instant counts per cell × subsystem
	open := map[pairKey][]trace.Event{}
	p := &Profile{}
	cells := 0

	addTime := func(cell int, sub, name string, d sim.Time) {
		k := bucketKey{cell, sub, name}
		b := buckets[k]
		if b == nil {
			b = &SpanStat{Name: name}
			buckets[k] = b
			bucketOrder = append(bucketOrder, k)
		}
		b.Time += d
		b.Count++
	}

	for _, e := range events {
		if e.Cell >= cells {
			cells = e.Cell + 1
		}
		switch {
		case beginKind(e.Kind) && e.Span != 0:
			k := pairKey{e.Span, e.Cell}
			open[k] = append(open[k], e)
		case endKind(e.Kind) && e.Span != 0 && len(open[pairKey{e.Span, e.Cell}]) > 0:
			k := pairKey{e.Span, e.Cell}
			stack := open[k]
			b := stack[len(stack)-1]
			open[k] = stack[:len(stack)-1]
			addTime(e.Cell, spanSubsystem(b), spanLabel(b), e.At-b.At)
		default:
			instants[bucketKey{e.Cell, instantSubsystem(e), ""}]++
		}
	}
	for _, stack := range open {
		p.Unclosed += len(stack)
	}

	for cell := 0; cell < cells; cell++ {
		cp := CellProfile{Cell: cell}
		for _, sub := range Subsystems() {
			sp := SubProfile{Name: sub, Events: instants[bucketKey{cell, sub, ""}]}
			for _, k := range bucketOrder {
				if k.cell != cell || k.sub != sub {
					continue
				}
				b := buckets[k]
				sp.Time += b.Time
				sp.Spans += b.Count
				sp.Top = append(sp.Top, *b)
			}
			if sp.Time == 0 && sp.Spans == 0 && sp.Events == 0 {
				continue
			}
			sort.SliceStable(sp.Top, func(i, j int) bool {
				a, b := sp.Top[i], sp.Top[j]
				if a.Time != b.Time {
					return a.Time > b.Time
				}
				return a.Name < b.Name
			})
			cp.Time += sp.Time
			cp.Events += sp.Events
			cp.Subs = append(cp.Subs, sp)
		}
		sort.SliceStable(cp.Subs, func(i, j int) bool {
			a, b := cp.Subs[i], cp.Subs[j]
			if a.Time != b.Time {
				return a.Time > b.Time
			}
			return a.Name < b.Name
		})
		p.Total += cp.Time
		p.Cells = append(p.Cells, cp)
	}
	return p
}
