// Package careful implements the careful reference protocol of §4.1: the
// discipline a cell follows when reading another cell's internal kernel
// data structures directly through shared memory. The protocol defends the
// reading cell against bus errors (failed nodes), invalid pointers, linked
// structures with loops, and values that change mid-operation:
//
//  1. careful_on captures the current context and names the cell about to
//     be read; bus errors inside the window return to this context instead
//     of panicking the kernel.
//  2. Every remote address is checked for alignment and for addressing the
//     expected cell's memory range before use.
//  3. Data is copied to local memory before sanity checks, defending
//     against concurrent modification.
//  4. Each remote object's allocator-written type tag is verified.
//  5. careful_off restores normal trap handling.
//
// The measured cost of the full on→read→off sequence for the clock-monitor
// read is 1.16 µs (232 cycles at 200 MHz), of which 0.7 µs is the remote
// cache miss (§4.1); the component costs below reproduce that.
package careful

import (
	"errors"
	"fmt"

	"repro/internal/kmem"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Component costs (ns), calibrated so a single-word careful read totals
// 1.16 µs with a 700 ns miss (§4.1).
const (
	OnCost        sim.Time = 200 // capture stack frame, arm trap handler
	OffCost       sim.Time = 110 // disarm trap handler
	AddrCheckCost sim.Time = 50  // alignment + range validation
	SanityCost    sim.Time = 100 // per-object tag/sanity check
)

// Protocol failure modes. All are survivable by the reading cell; each is
// also a failure-detection hint about the remote cell (§4.3).
var (
	// ErrBadPointer covers misaligned addresses, addresses outside the
	// expected cell, and nil dereferences.
	ErrBadPointer = errors.New("careful: invalid remote pointer")
	// ErrBadTag is a type-tag mismatch: the pointer is stale or wild.
	ErrBadTag = errors.New("careful: type tag mismatch")
	// ErrLoop is a linked traversal exceeding its loop bound.
	ErrLoop = errors.New("careful: traversal loop bound exceeded")
	// ErrBusError wraps a hardware bus error caught by the armed handler.
	ErrBusError = errors.New("careful: bus error during remote read")
)

// Reader performs careful reads on behalf of one cell. HintSink, if set,
// receives a hint naming the suspect cell whenever a careful operation
// fails — wiring consistency-check failures into failure detection.
type Reader struct {
	M        *machine.Machine
	Space    *kmem.Space
	HintSink func(suspectCell int, reason string)
	// Tracer, if set, records a CarefulAbort event whenever a window
	// fails — the forensic record that bad remote data was discarded
	// at the protocol boundary instead of trusted.
	Tracer *trace.Tracer
	// CellEngine maps a cell id to the shard its nodes are bound to in a
	// sharded run (wired by the boot layer); nil means every cell shares
	// one engine and remote reads resolve directly. When the window's
	// expected cell lives on another shard, arena reads hop to the global
	// phase so they never race the owner's window.
	CellEngine func(cell int) *sim.Engine
}

// Ctx is one careful_on..careful_off window.
type Ctx struct {
	r          *Reader
	t          *sim.Task
	proc       *machine.Processor
	expectCell int
	err        error
	lineReads  int
	steps      int
	maxSteps   int
}

// On opens a careful window for reading cell expectCell's memory from proc.
func (r *Reader) On(t *sim.Task, proc *machine.Processor, expectCell int) *Ctx {
	proc.Use(t, OnCost)
	return &Ctx{r: r, t: t, proc: proc, expectCell: expectCell, maxSteps: 1 << 20}
}

// Off closes the window and returns the first error encountered (nil on a
// clean read). If the window failed, the hint sink is notified.
func (c *Ctx) Off() error {
	c.proc.Use(c.t, OffCost)
	if c.err != nil {
		c.r.Tracer.Emit(c.r.M.NodeEngine(c.proc.Node.ID).Now(), trace.CarefulAbort,
			int64(c.expectCell), 0, c.err.Error())
		if c.r.HintSink != nil {
			c.r.HintSink(c.expectCell, c.err.Error())
		}
	}
	return c.err
}

// Err returns the sticky error state without closing the window.
func (c *Ctx) Err() error { return c.err }

// Failed reports whether the window has recorded an error.
func (c *Ctx) Failed() bool { return c.err != nil }

func (c *Ctx) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// global runs fn with every shard quiescent when the window targets a cell
// on another shard; otherwise fn runs directly. This is the sharded-run
// analogue of the hardware guarantee the protocol already assumes — a
// remote read observes a consistent memory image, not a torn intermediate.
func (c *Ctx) global(fn func()) {
	me := c.r.M.NodeEngine(c.proc.Node.ID)
	if me.Cluster() == nil || c.r.CellEngine == nil || c.expectCell < 0 {
		fn()
		return
	}
	if g := c.r.CellEngine(c.expectCell); g == nil || g == me {
		fn()
		return
	}
	me.Global(c.t, fn)
}

// SetLoopBound sets the maximum number of traversal steps permitted in this
// window; Step counts against it.
func (c *Ctx) SetLoopBound(n int) { c.maxSteps = n }

// Step records one traversal step (e.g. following one tree edge), failing
// the window with ErrLoop if the bound is exceeded. It reports whether the
// traversal may continue.
func (c *Ctx) Step() bool {
	c.steps++
	if c.steps > c.maxSteps {
		c.fail(ErrLoop)
		return false
	}
	return true
}

// CheckAddr validates a remote address: non-nil, word-aligned, and within
// the expected cell's memory. It reports whether the address is usable.
func (c *Ctx) CheckAddr(addr kmem.Addr) bool {
	if c.err != nil {
		return false
	}
	c.proc.Use(c.t, AddrCheckCost)
	if addr == kmem.NilAddr || !addr.Aligned() {
		c.fail(fmt.Errorf("%w: %v", ErrBadPointer, addr))
		return false
	}
	if addr.Cell() != c.expectCell {
		c.fail(fmt.Errorf("%w: %v addresses cell %d, expected %d",
			ErrBadPointer, addr, addr.Cell(), c.expectCell))
		return false
	}
	return true
}

// CheckTag validates the object's allocator-written type tag — the first
// line of defense against invalid remote pointers (§4.1). The address must
// already have passed CheckAddr.
func (c *Ctx) CheckTag(addr kmem.Addr, want kmem.TypeTag) bool {
	if c.err != nil {
		return false
	}
	c.chargeRead()
	var tag kmem.TypeTag
	var err error
	c.global(func() { tag, err = c.r.Space.TagAt(addr) })
	if err != nil {
		c.fail(fmt.Errorf("%w reading tag at %v", ErrBusError, addr))
		return false
	}
	c.proc.Use(c.t, SanityCost)
	if tag != want {
		c.fail(fmt.Errorf("%w at %v: tag %#x, want %#x", ErrBadTag, addr, tag, want))
		return false
	}
	return true
}

// chargeRead charges one remote cache line miss per 16 words read in this
// window (128-byte lines of 8-byte words), subsequent words hitting in
// cache — the cost structure behind the 1.16 µs single-word figure.
func (c *Ctx) chargeRead() {
	if c.lineReads%16 == 0 {
		if c.expectCell == -1 || c.proc.Node.ID == c.expectCell {
			c.r.M.CacheHit(c.t, c.proc)
		} else {
			c.r.M.RemoteMiss(c.t, c.proc)
		}
	} else {
		c.r.M.CacheHit(c.t, c.proc)
	}
	c.lineReads++
}

// ReadWord reads word i of the remote object at addr. On a bus error the
// window fails and 0 is returned; garbage from wild pointers is returned
// as-is for the caller's sanity checks to catch.
func (c *Ctx) ReadWord(addr kmem.Addr, i int) uint64 {
	if c.err != nil {
		return 0
	}
	c.chargeRead()
	var v uint64
	var err error
	c.global(func() { v, err = c.r.Space.ReadWord(addr, i) })
	if err != nil {
		c.fail(fmt.Errorf("%w at %v+%d", ErrBusError, addr, i))
		return 0
	}
	return v
}

// CopyObject copies n words of the object at addr into local memory before
// any sanity checking (step 3 of the protocol): the returned slice cannot
// change under the caller even if the remote cell keeps mutating.
func (c *Ctx) CopyObject(addr kmem.Addr, n int) []uint64 {
	if c.err != nil {
		return nil
	}
	out := make([]uint64, n)
	// One hop covers the whole copy: the per-word reads inside nest and run
	// inline, so a cross-shard snapshot costs one window, not one per word.
	c.global(func() {
		for i := 0; i < n; i++ {
			out[i] = c.ReadWord(addr, i)
			if c.err != nil {
				return
			}
		}
	})
	if c.err != nil {
		return nil
	}
	return out
}

// ReadClock reads the clock word of node nodeID — the clock-monitoring
// check (§4.3) — inside this window.
func (c *Ctx) ReadClock(nodeID int) uint64 {
	if c.err != nil {
		return 0
	}
	c.proc.Use(c.t, AddrCheckCost+SanityCost) // vector check + monotonicity sanity
	v, err := c.r.M.ReadClockWord(c.t, c.proc, nodeID)
	if err != nil {
		c.fail(fmt.Errorf("%w reading clock of node %d", ErrBusError, nodeID))
		return 0
	}
	return v
}
