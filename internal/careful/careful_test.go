package careful

import (
	"errors"
	"testing"

	"repro/internal/kmem"
	"repro/internal/machine"
	"repro/internal/sim"
)

type fixture struct {
	e     *sim.Engine
	m     *machine.Machine
	space *kmem.Space
	r     *Reader
	hints []int
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	e := sim.NewEngine(5)
	cfg := machine.DefaultConfig()
	cfg.Nodes = 2
	cfg.MemPerNodeMB = 1
	m := machine.New(e, cfg)
	f := &fixture{e: e, m: m, space: kmem.NewSpace(2)}
	f.r = &Reader{M: m, Space: f.space,
		HintSink: func(cell int, reason string) { f.hints = append(f.hints, cell) }}
	// Wire arena accessibility to the machine fault model (cell i on node i).
	for i := 0; i < 2; i++ {
		node := m.Nodes[i]
		f.space.Arena(i).Accessible = func() error {
			if node.Failed() || node.CutOff() {
				return kmem.ErrBusError
			}
			return nil
		}
	}
	return f
}

func (f *fixture) run(t *testing.T, fn func(tk *sim.Task)) {
	t.Helper()
	f.e.Go("test", fn)
	f.e.Run(0)
}

func TestCleanRemoteRead(t *testing.T) {
	f := newFixture(t)
	const tagT kmem.TypeTag = 9
	addr := f.space.Arena(1).Alloc(tagT, 2)
	f.space.Arena(1).WriteWord(addr, 0, 123)
	f.run(t, func(tk *sim.Task) {
		c := f.r.On(tk, f.m.Procs[0], 1)
		if !c.CheckAddr(addr) || !c.CheckTag(addr, tagT) {
			t.Errorf("checks failed: %v", c.Err())
		}
		if v := c.ReadWord(addr, 0); v != 123 {
			t.Errorf("v = %d", v)
		}
		if err := c.Off(); err != nil {
			t.Errorf("Off: %v", err)
		}
	})
	if len(f.hints) != 0 {
		t.Fatalf("hints = %v", f.hints)
	}
}

func TestNilAndMisalignedPointers(t *testing.T) {
	f := newFixture(t)
	f.run(t, func(tk *sim.Task) {
		c := f.r.On(tk, f.m.Procs[0], 1)
		if c.CheckAddr(kmem.NilAddr) {
			t.Error("nil pointer passed")
		}
		if !errors.Is(c.Off(), ErrBadPointer) {
			t.Errorf("err = %v", c.Err())
		}

		c = f.r.On(tk, f.m.Procs[0], 1)
		if c.CheckAddr(kmem.MakeAddr(1, 0x1003)) {
			t.Error("misaligned pointer passed")
		}
		c.Off()
	})
}

func TestWrongCellPointerRejected(t *testing.T) {
	f := newFixture(t)
	addr := f.space.Arena(0).Alloc(1, 1) // cell 0 object
	f.run(t, func(tk *sim.Task) {
		c := f.r.On(tk, f.m.Procs[0], 1) // expecting cell 1
		if c.CheckAddr(addr) {
			t.Error("cross-cell pointer passed")
		}
		if !errors.Is(c.Off(), ErrBadPointer) {
			t.Errorf("err = %v", c.Err())
		}
	})
}

func TestStalePointerCaughtByTag(t *testing.T) {
	f := newFixture(t)
	const tagT kmem.TypeTag = 4
	addr := f.space.Arena(1).Alloc(tagT, 1)
	f.space.Arena(1).Free(addr)
	f.run(t, func(tk *sim.Task) {
		c := f.r.On(tk, f.m.Procs[0], 1)
		if c.CheckAddr(addr) && c.CheckTag(addr, tagT) {
			t.Error("stale pointer passed tag check")
		}
		if !errors.Is(c.Off(), ErrBadTag) {
			t.Errorf("err = %v", c.Err())
		}
	})
	if len(f.hints) != 1 || f.hints[0] != 1 {
		t.Fatalf("hints = %v", f.hints)
	}
}

func TestBusErrorSurvivedNotPanic(t *testing.T) {
	f := newFixture(t)
	addr := f.space.Arena(1).Alloc(2, 1)
	f.m.Nodes[1].FailStop()
	f.run(t, func(tk *sim.Task) {
		c := f.r.On(tk, f.m.Procs[0], 1)
		c.CheckAddr(addr)
		c.ReadWord(addr, 0)
		if !errors.Is(c.Off(), ErrBusError) {
			t.Errorf("err = %v", c.Err())
		}
	})
	// The reading task survived — that is the whole point of the protocol.
	if len(f.hints) != 1 {
		t.Fatalf("hints = %v", f.hints)
	}
}

func TestLoopBound(t *testing.T) {
	f := newFixture(t)
	// Build a two-node cycle in cell 1's memory.
	const tagNode kmem.TypeTag = 8
	a := f.space.Arena(1).Alloc(tagNode, 1)
	b := f.space.Arena(1).Alloc(tagNode, 1)
	f.space.Arena(1).WriteWord(a, 0, uint64(b))
	f.space.Arena(1).WriteWord(b, 0, uint64(a))
	f.run(t, func(tk *sim.Task) {
		c := f.r.On(tk, f.m.Procs[0], 1)
		c.SetLoopBound(10)
		cur := a
		for c.Step() && c.CheckAddr(cur) && c.CheckTag(cur, tagNode) {
			cur = kmem.Addr(c.ReadWord(cur, 0))
		}
		if !errors.Is(c.Off(), ErrLoop) {
			t.Errorf("err = %v", c.Err())
		}
	})
}

func TestCopyObjectSnapshotsBeforeChecks(t *testing.T) {
	f := newFixture(t)
	addr := f.space.Arena(1).Alloc(3, 4)
	for i := 0; i < 4; i++ {
		f.space.Arena(1).WriteWord(addr, i, uint64(i*10))
	}
	f.run(t, func(tk *sim.Task) {
		c := f.r.On(tk, f.m.Procs[0], 1)
		snap := c.CopyObject(addr, 4)
		// Remote cell mutates after the copy; the snapshot must not move.
		f.space.Arena(1).WriteWord(addr, 2, 999)
		if snap[2] != 20 {
			t.Errorf("snapshot changed: %v", snap)
		}
		c.Off()
	})
}

func TestCarefulClockReadLatency(t *testing.T) {
	// §4.1: the full careful_on → clock read → careful_off sequence
	// averages 1.16 µs, of which 0.7 µs is the remote cache miss.
	f := newFixture(t)
	var elapsed sim.Time
	f.run(t, func(tk *sim.Task) {
		start := tk.Now()
		c := f.r.On(tk, f.m.Procs[0], 1)
		c.ReadClock(1)
		if err := c.Off(); err != nil {
			t.Errorf("Off: %v", err)
		}
		elapsed = tk.Now() - start
	})
	us := elapsed.Micros()
	if us < 0.9 || us > 1.4 {
		t.Fatalf("careful clock read = %.2f µs, want ≈1.16 µs", us)
	}
}

func TestClockReadOfFailedNode(t *testing.T) {
	f := newFixture(t)
	f.m.Nodes[1].FailStop()
	f.run(t, func(tk *sim.Task) {
		c := f.r.On(tk, f.m.Procs[0], 1)
		c.ReadClock(1)
		if !errors.Is(c.Off(), ErrBusError) {
			t.Errorf("err = %v", c.Err())
		}
	})
}

func TestErrorIsSticky(t *testing.T) {
	f := newFixture(t)
	f.run(t, func(tk *sim.Task) {
		c := f.r.On(tk, f.m.Procs[0], 1)
		c.CheckAddr(kmem.NilAddr)
		first := c.Err()
		// Further operations are no-ops and don't overwrite the error.
		good := f.space.Arena(1).Alloc(1, 1)
		if c.CheckAddr(good) || c.CheckTag(good, 1) || c.ReadWord(good, 0) != 0 {
			t.Error("operations proceeded after failure")
		}
		if c.CopyObject(good, 1) != nil {
			t.Error("copy proceeded after failure")
		}
		if c.Err() != first {
			t.Error("error overwritten")
		}
		c.Off()
	})
}

func TestGarbageFromWildPointerIsCaughtBySanity(t *testing.T) {
	f := newFixture(t)
	wild := kmem.MakeAddr(1, 0x77440)
	f.run(t, func(tk *sim.Task) {
		c := f.r.On(tk, f.m.Procs[0], 1)
		if !c.CheckAddr(wild) {
			t.Fatal("aligned in-range wild pointer should pass address check")
		}
		if c.CheckTag(wild, 42) {
			t.Error("wild pointer passed tag check")
		}
		if !errors.Is(c.Off(), ErrBadTag) {
			t.Errorf("err = %v", c.Err())
		}
	})
}
