// Package wax implements Wax, Hive's user-level resource management policy
// process (§3.2 of the paper). Wax is a multithreaded process spanning all
// cells: its threads build a global view of system state through shared
// memory and drive the per-cell resource policies of Table 3.4 — which
// cells the page allocator should borrow from, which cells the clock hand
// should free pages toward, gang scheduling/space sharing, and swap victim
// selection.
//
// Wax has no special privileges: each cell sanity-checks the hints it
// receives, and operations required for correctness go through RPCs, never
// through Wax — a damaged Wax can hurt performance but not correctness.
// Because Wax uses resources from every cell, it exits whenever any cell
// fails, and the recovery process starts a fresh incarnation that rebuilds
// its view from scratch.
package wax

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Interval is how often Wax threads sample and apply policy.
const Interval = 50 * sim.Millisecond

// sampleCost models the shared-memory state scan one thread performs.
const sampleCost = 200 * sim.Microsecond

// cellState is one row of Wax's global view.
type cellState struct {
	FreePages int
	Borrowed  int
	Loaned    int
	Procs     int
	sampled   bool
}

// Wax is one incarnation of the policy process.
type Wax struct {
	h       *core.Hive
	view    []cellState
	mu      sim.Mutex // Wax threads synchronize with ordinary user locks
	threads []*proc.Process
	dead    bool
	// pendingKicks defers cross-cell borrow returns in a sharded run: the
	// leader records which homes each cell should return frames toward
	// (global phase), and each cell's own thread performs the returns on
	// its own shard — the RPC traffic they generate cannot run from the
	// global phase.
	pendingKicks [][]int

	Metrics *stats.Registry

	// Decisions (for tests and the ablation bench).
	AllocRetargets int
	PlaceRetargets int
	ClockHandKicks int
	GangGrants     int
	SwapVictims    []int
}

// Start launches a Wax incarnation: one thread per live cell.
func Start(h *core.Hive) *Wax {
	w := &Wax{
		h: h, view: make([]cellState, len(h.Cells)),
		pendingKicks: make([][]int, len(h.Cells)),
		Metrics:      stats.NewRegistry(),
	}
	for _, c := range h.LiveCells() {
		cell := c
		p := cell.Procs.Spawn("wax", waxGroup, func(p *proc.Process, t *sim.Task) {
			w.threadBody(cell.ID, p, t)
		})
		// Wax uses resources from all cells: it depends on every one
		// and dies with any of them.
		for _, other := range h.Cells {
			p.DependOn(other.ID)
		}
		w.threads = append(w.threads, p)
	}
	return w
}

// waxGroup is the process group of Wax threads.
const waxGroup = 999

// Stop terminates the incarnation.
func (w *Wax) Stop() {
	w.dead = true
	for _, p := range w.threads {
		if !p.Exited() {
			w.h.Cells[p.Cell].Procs.Kill(p)
		}
	}
}

// Alive reports whether every thread is still running.
func (w *Wax) Alive() bool {
	if w.dead {
		return false
	}
	for _, p := range w.threads {
		if p.Exited() {
			return false
		}
	}
	return true
}

// threadBody is one Wax thread: sample local state, synchronize through
// the shared view, and (on the lowest-numbered live thread) apply policy.
// In a classic run the threads synchronize with an ordinary user mutex; in
// a sharded run the shared view is cross-shard state, so the same exchange
// happens in the global phase — the paper's "global view through shared
// memory", with the window barrier standing in for the lock.
func (w *Wax) threadBody(cellID int, p *proc.Process, t *sim.Task) {
	cell := w.h.Cells[cellID]
	if cell.EP.Engine().Cluster() == nil {
		w.threadBodyClassic(cellID, p, t)
		return
	}
	eng := cell.EP.Engine()
	kicked := 0
	for !w.dead {
		t.Sleep(Interval)
		if w.dead || cell.Failed() {
			return
		}
		p.Compute(t, sampleCost)
		var kicks []int
		eng.Global(t, func() {
			w.view[cellID] = cellState{
				FreePages: cell.VM.FreePages(),
				Borrowed:  cell.VM.BorrowedFrames(),
				Loaned:    cell.VM.LoanedFrames(),
				Procs:     cell.Procs.Live(),
				sampled:   true,
			}
			w.ClockHandKicks += kicked
			kicked = 0
			kicks = w.pendingKicks[cellID]
			w.pendingKicks[cellID] = nil
			if w.isLeader(cellID) {
				w.applyPolicy(t, true)
			}
		})
		// Perform this cell's own deferred borrow returns on its own shard.
		for _, home := range kicks {
			if w.dead || cell.Failed() {
				return
			}
			if cell.ApplyClockHand(t, home) {
				kicked++
			}
		}
	}
}

func (w *Wax) threadBodyClassic(cellID int, p *proc.Process, t *sim.Task) {
	for !w.dead {
		t.Sleep(Interval)
		if w.dead || w.h.Cells[cellID].Failed() {
			return
		}
		p.Compute(t, sampleCost)
		cell := w.h.Cells[cellID]
		w.mu.Lock(t)
		w.view[cellID] = cellState{
			FreePages: cell.VM.FreePages(),
			Borrowed:  cell.VM.BorrowedFrames(),
			Loaned:    cell.VM.LoanedFrames(),
			Procs:     cell.Procs.Live(),
			sampled:   true,
		}
		leader := w.isLeader(cellID)
		w.mu.Unlock(t)
		if leader {
			w.applyPolicy(t, false)
		}
	}
}

// isLeader picks the lowest live cell's thread as the policy applier.
func (w *Wax) isLeader(cellID int) bool {
	for _, c := range w.h.Cells {
		if !c.Failed() {
			return c.ID == cellID
		}
	}
	return false
}

// applyPolicy computes and pushes the Table 3.4 hints. With deferKicks set
// (sharded runs) the clock-hand borrow returns are recorded in pendingKicks
// for each cell's own thread instead of being performed inline.
func (w *Wax) applyPolicy(t *sim.Task, deferKicks bool) {
	type fp struct{ cell, free int }
	var rows []fp
	total, n := 0, 0
	for id, st := range w.view {
		if !st.sampled || w.h.Cells[id].Failed() {
			continue
		}
		rows = append(rows, fp{id, st.FreePages})
		total += st.FreePages
		n++
	}
	if n < 2 {
		return
	}
	mean := total / n
	// Order richest-first with the cell id breaking free-page ties:
	// sort.Slice's order for equal keys is unspecified (and changed
	// across Go releases), which would make the borrow targets — and
	// everything downstream of the hints — vary run to run.
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].free != rows[j].free {
			return rows[i].free > rows[j].free
		}
		return rows[i].cell < rows[j].cell
	})

	// Page allocator hint: cells under memory pressure should borrow
	// from the cells with the most free memory.
	var richest []int
	for _, r := range rows {
		if r.free > mean && len(richest) < 3 {
			richest = append(richest, r.cell)
		}
	}
	for _, r := range rows {
		cell := w.h.Cells[r.cell]
		if r.free < mean/2 {
			if cell.ApplyAllocTargets(richest) == nil {
				w.AllocRetargets++
			}
		} else {
			cell.ApplyAllocTargets(nil)
		}
	}

	// Placement hint: where a dispatcher should spill work whose natural
	// home is failed or saturated — the least-loaded live cells first,
	// process count (then cell id) breaking ties, self excluded per cell.
	// This is Table 3.4's process-placement policy made visible to the
	// frontend's open-loop dispatchers.
	loads := append([]fp(nil), rows...)
	for i := range loads {
		loads[i].free = w.view[loads[i].cell].Procs
	}
	sort.SliceStable(loads, func(i, j int) bool {
		if loads[i].free != loads[j].free {
			return loads[i].free < loads[j].free
		}
		return loads[i].cell < loads[j].cell
	})
	for _, r := range rows {
		var spill []int
		for _, l := range loads {
			if l.cell == r.cell {
				continue
			}
			spill = append(spill, l.cell)
			if len(spill) == 3 {
				break
			}
		}
		if w.h.Cells[r.cell].ApplyPlaceTargets(spill) == nil {
			w.PlaceRetargets++
		}
	}

	// Clock-hand hint: when a memory home is pressured, ask borrowers
	// to return its idle frames and steer every cell's page-out daemon
	// toward that home's pages.
	pressured := map[int]bool{}
	for _, r := range rows {
		if r.free < mean/2 {
			pressured[r.cell] = true
		}
	}
	for _, other := range w.h.LiveCells() {
		other.ClockHand.PressureHomes = pressured
	}
	for _, r := range rows {
		if pressured[r.cell] && w.view[r.cell].Loaned > 0 {
			for _, other := range w.h.LiveCells() {
				if other.ID == r.cell {
					continue
				}
				if deferKicks {
					w.pendingKicks[other.ID] = append(w.pendingKicks[other.ID], r.cell)
				} else if other.ApplyClockHand(t, r.cell) {
					w.ClockHandKicks++
				}
			}
		}
	}

	// Swapper hint: on cells with heavy multiprogramming, nominate the
	// newest processes as swap candidates (recorded, not enacted — the
	// paper's workloads never swap).
	for _, r := range rows {
		if w.view[r.cell].Procs > 8 {
			w.SwapVictims = append(w.SwapVictims, r.cell)
		}
	}
	w.Metrics.Counter("wax.policy_rounds").Inc()
}

// GangHint asks a cell to space-share n CPUs for a parallel application.
// The cell sanity-checks the request.
func (w *Wax) GangHint(cell, n int) bool {
	c := w.h.Cells[cell]
	if c.Failed() {
		return false
	}
	if c.ApplyGang(n) {
		w.GangGrants++
		return true
	}
	return false
}

// Supervisor keeps a Wax incarnation alive across cell failures: when the
// current incarnation dies (any cell failure kills it), a new one is
// started from scratch once the system is out of recovery — the restart
// discipline of §3.2.
type Supervisor struct {
	h   *core.Hive
	Cur *Wax

	Restarts int
	stop     bool
}

// Supervise starts Wax and its restart loop.
func Supervise(h *core.Hive) *Supervisor {
	sup := &Supervisor{h: h, Cur: Start(h)}
	h.Eng.Go("wax.supervisor", func(t *sim.Task) {
		for !sup.stop {
			t.Sleep(20 * sim.Millisecond)
			if sup.stop {
				return
			}
			if sup.Cur.Alive() && len(sup.Cur.threads) == len(sup.h.LiveCells()) {
				// Alive alone is not enough: the live set can *grow* (a
				// rebooted cell rejoining) and an incarnation spanning
				// only the survivors would keep the rejoined cell out of
				// the allocation pool. Restart whenever the thread count
				// no longer matches the live set.
				continue
			}
			// Wait until no cell is mid-recovery before restarting.
			inRecovery := false
			for _, c := range sup.h.LiveCells() {
				if c.VM.InRecovery() {
					inRecovery = true
				}
			}
			if inRecovery || len(sup.h.LiveCells()) < 1 {
				continue
			}
			sup.Cur.Stop()
			sup.Cur = Start(sup.h)
			sup.Restarts++
		}
	})
	return sup
}

// Stop ends supervision and the current incarnation.
func (s *Supervisor) Stop() {
	s.stop = true
	if s.Cur != nil {
		s.Cur.Stop()
	}
}

// String summarizes the incarnation for diagnostics.
func (w *Wax) String() string {
	return fmt.Sprintf("wax{threads=%d retargets=%d clockhand=%d}",
		len(w.threads), w.AllocRetargets, w.ClockHandKicks)
}
