package wax

import (
	"testing"

	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/vm"
)

func testHive() *core.Hive {
	cfg := core.DefaultConfig()
	cfg.Machine.MemPerNodeMB = 4
	return core.Boot(cfg)
}

func TestWaxThreadsSpanAllCells(t *testing.T) {
	h := testHive()
	w := Start(h)
	h.Run(200 * sim.Millisecond)
	if !w.Alive() {
		t.Fatal("wax died in steady state")
	}
	if len(w.threads) != 4 {
		t.Fatalf("threads = %d", len(w.threads))
	}
	cells := map[int]bool{}
	for _, p := range w.threads {
		cells[p.Cell] = true
	}
	if len(cells) != 4 {
		t.Fatalf("threads span %d cells", len(cells))
	}
	if w.Metrics.Counter("wax.policy_rounds").Value() == 0 {
		t.Fatal("no policy rounds ran")
	}
	w.Stop()
}

func TestWaxRetargetsAllocationUnderPressure(t *testing.T) {
	h := testHive()
	w := Start(h)
	// Drain cell 0's free pool to put it under pressure.
	h.Eng.Go("drain", func(tk *sim.Task) {
		v := h.Cells[0].VM
		for v.FreePages() > 8 {
			f, err := v.AllocFrame(tk, vm.AllocOpts{Acceptable: []int{0}})
			if err != nil {
				break
			}
			_ = f
		}
	})
	h.Run(300 * sim.Millisecond)
	if w.AllocRetargets == 0 {
		t.Fatal("Wax never retargeted allocation despite pressure")
	}
	if len(h.Cells[0].VM.AllocTargets) == 0 {
		t.Fatal("pressured cell got no borrow targets")
	}
	for _, tc := range h.Cells[0].VM.AllocTargets {
		if tc == 0 {
			t.Fatal("cell told to borrow from itself")
		}
	}
	w.Stop()
}

func TestWaxInstallsPlacementHints(t *testing.T) {
	h := testHive()
	w := Start(h)
	h.Run(300 * sim.Millisecond)
	if w.PlaceRetargets == 0 {
		t.Fatal("Wax never installed placement hints")
	}
	for i, c := range h.Cells {
		if len(c.PlaceTargets) == 0 {
			t.Fatalf("cell %d got no spill list", i)
		}
		seen := map[int]bool{}
		for _, tc := range c.PlaceTargets {
			if tc == i {
				t.Fatalf("cell %d told to spill to itself", i)
			}
			if tc < 0 || tc >= len(h.Cells) {
				t.Fatalf("cell %d has out-of-range spill target %d", i, tc)
			}
			if seen[tc] {
				t.Fatalf("cell %d spill list repeats target %d", i, tc)
			}
			seen[tc] = true
		}
	}
	w.Stop()
}

func TestWaxDiesWithAnyCellAndSupervisorRestarts(t *testing.T) {
	h := testHive()
	sup := Supervise(h)
	first := sup.Cur
	h.Run(120 * sim.Millisecond)
	if !first.Alive() {
		t.Fatal("wax died prematurely")
	}
	h.Cells[2].FailHardware()
	if !h.RunUntil(func() bool { return !first.Alive() }, sim.Second) {
		t.Fatal("wax survived a cell failure")
	}
	if !h.RunUntil(func() bool { return sup.Restarts > 0 && sup.Cur.Alive() }, 2*sim.Second) {
		t.Fatal("supervisor never restarted wax")
	}
	// The new incarnation only spans live cells.
	for _, p := range sup.Cur.threads {
		if p.Cell == 2 {
			t.Fatal("new wax has a thread on the dead cell")
		}
	}
	sup.Stop()
}

func TestCellRejectsBadWaxHints(t *testing.T) {
	h := testHive()
	if err := h.Cells[0].ApplyAllocTargets([]int{0}); err == nil {
		t.Error("self target accepted")
	}
	if err := h.Cells[0].ApplyAllocTargets([]int{99}); err == nil {
		t.Error("out-of-range target accepted")
	}
	if err := h.Cells[0].ApplyAllocTargets([]int{1, 1}); err == nil {
		t.Error("duplicate targets accepted")
	}
	h.Cells[3].FailHardware()
	if err := h.Cells[0].ApplyAllocTargets([]int{3}); err == nil {
		t.Error("dead target accepted")
	}
	if h.Cells[0].Metrics.Counter("cell.wax_hints_rejected").Value() != 4 {
		t.Error("rejections not counted")
	}
}

func TestGangHint(t *testing.T) {
	h := testHive()
	w := Start(h)
	// 1 CPU per cell: reserving 1 of 1 is refused (n must be < CPUs),
	// reserving 0 is a no-op grant.
	if w.GangHint(0, 5) {
		t.Error("oversized gang hint accepted")
	}
	if !w.GangHint(0, 0) {
		t.Error("trivial gang hint rejected")
	}
	w.Stop()
}

func TestClockHandReturnsIdleBorrows(t *testing.T) {
	h := testHive()
	done := false
	h.Cells[0].Procs.Spawn("borrower", 1, func(p *proc.Process, tk *sim.Task) {
		v := h.Cells[0].VM
		// Drain local pool, then borrow from cell 1.
		for v.FreePages() > 0 {
			if _, err := v.AllocFrame(tk, vm.AllocOpts{Acceptable: []int{0}}); err != nil {
				break
			}
		}
		if _, err := v.AllocFrame(tk, vm.AllocOpts{Acceptable: []int{1}}); err != nil {
			t.Errorf("borrow: %v", err)
		}
		// Free one borrowed frame back into the local pool so it is idle.
		done = true
	})
	if !h.RunUntil(func() bool { return done }, sim.Second) {
		t.Fatal("setup never finished")
	}
	if h.Cells[0].VM.BorrowedFrames() == 0 {
		t.Fatal("no borrowed frames")
	}
	borrowedBefore := h.Cells[0].VM.BorrowedFrames()
	ok := false
	h.Eng.Go("hint", func(tk *sim.Task) {
		ok = h.Cells[0].ApplyClockHand(tk, 1)
	})
	h.Run(h.Eng.Now() + 100*sim.Millisecond)
	if !ok {
		t.Fatal("clock-hand hint returned nothing")
	}
	if h.Cells[0].VM.BorrowedFrames() >= borrowedBefore {
		t.Fatal("borrowed frames not reduced")
	}
}
