package core

import (
	"fmt"

	"repro/internal/membership"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The availability loop (§4.3 closed end-to-end): after the survivors'
// agreement kills a cell, the Rebooter microboots a fresh cell image on the
// dead cell's repaired nodes, re-admits it through a membership join round
// (coordinator-led, barriered, restart-safe — symmetric to the death
// round), and warms it back to full capacity. The recovering cell is
// untrusted until the join round commits: its monitor stays stopped, it is
// not a barrier party, and every byte it sends crosses the same
// validate*/checksum boundaries as any other cell's traffic.

// RebootPolicy configures the Rebooter.
type RebootPolicy struct {
	// Enabled turns the availability loop on.
	Enabled bool
	// Delay models hardware repair + firmware reload between the death
	// verdict and the first microboot attempt.
	Delay sim.Time
	// BackoffBase/BackoffMax bound the exponential backoff between failed
	// join attempts; MaxAttempts is the crash-loop give-up bound.
	BackoffBase sim.Time
	BackoffMax  sim.Time
	MaxAttempts int
	// WarmPages is how many page-cache pages each survivor migrates onto
	// the rejoined cell during warm-up (0 = default).
	WarmPages int
}

func (p RebootPolicy) withDefaults() RebootPolicy {
	if p.Delay == 0 {
		p.Delay = 60 * sim.Millisecond
	}
	if p.BackoffBase == 0 {
		p.BackoffBase = 40 * sim.Millisecond
	}
	if p.BackoffMax == 0 {
		p.BackoffMax = 500 * sim.Millisecond
	}
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 6
	}
	if p.WarmPages == 0 {
		p.WarmPages = 16
	}
	return p
}

// RejoinRecord is one pass through the loop for one cell death.
type RejoinRecord struct {
	Cell     int
	DeadAt   sim.Time // death verdict applied
	RebootAt sim.Time // last microboot attempt
	RejoinAt sim.Time // join round committed (0 if never)
	Attempts int
	GaveUp   bool // hit MaxAttempts without a commit
}

// Restored reports whether this pass ended with the cell back in service.
func (r RejoinRecord) Restored() bool { return r.RejoinAt > 0 }

// Rebooter drives the fault → reboot → rejoin → full-capacity loop.
type Rebooter struct {
	h      *Hive
	Policy RebootPolicy

	// Records accumulates one entry per completed loop pass, in commit
	// order. FullCapacityAt is the last instant every cell was live again
	// (0 if full capacity was never restored).
	Records        []RejoinRecord
	FullCapacityAt sim.Time

	busy map[int]bool // cells with a controller task in flight
}

func newRebooter(h *Hive, p RebootPolicy) *Rebooter {
	return &Rebooter{h: h, Policy: p.withDefaults(), busy: map[int]bool{}}
}

// Idle reports whether no controller task is in flight — the harness's
// "loop has settled" condition.
func (rb *Rebooter) Idle() bool { return len(rb.busy) == 0 }

// noteDeath is called from OnDeclaredDead, inside the global section that
// applied the death verdict, so coordinator state is stable here.
func (rb *Rebooter) noteDeath(cell int) {
	if rb.busy[cell] {
		return
	}
	rb.busy[cell] = true
	deadAt := rb.h.Eng.Now()
	rb.h.Eng.Go(fmt.Sprintf("rebooter.cell%d", cell), func(t *sim.Task) {
		rb.loop(t, cell, deadAt)
	})
}

// loop runs on the global engine (classic: the only engine; sharded: the
// global shard, whose tasks execute with every cell shard quiescent), so it
// may read coordinator and machine state directly.
func (rb *Rebooter) loop(t *sim.Task, cell int, deadAt sim.Time) {
	h := rb.h
	c := h.Cells[cell]
	rec := RejoinRecord{Cell: cell, DeadAt: deadAt}
	t.Sleep(rb.Policy.Delay)
	backoff := rb.Policy.BackoffBase
	for attempt := 1; ; attempt++ {
		rec.Attempts = attempt
		// Let any in-flight recovery round drain: the joiner must not
		// race its own death round, and the join round needs the
		// coordinator free.
		for !h.Coord.RecoveryIdle() {
			t.Sleep(membership.TickInterval)
		}
		if c.Failed() || attempt == 1 {
			c.Microboot()
			rec.RebootAt = t.Now()
			c.Tracer.Emit(t.Now(), trace.Reboot, int64(cell), int64(attempt), "microboot")
		}
		commit, seq := h.Coord.RequestJoin(cell)
		mon := c.Mon
		h.cellEngine(cell).Go(fmt.Sprintf("cell%d.announce", cell), func(at *sim.Task) {
			mon.AnnounceJoin(at, seq)
		})
		v, _ := commit.Wait(t)
		if ok, _ := v.(bool); ok {
			rec.RejoinAt = t.Now()
			c.Mon.Start()
			rb.warmUp(t, cell)
			if h.Coord.LiveCount() == h.Cfg.Cells {
				rb.FullCapacityAt = t.Now()
			}
			break
		}
		if attempt >= rb.Policy.MaxAttempts {
			rec.GaveUp = true
			c.Tracer.Emit(t.Now(), trace.Reboot, int64(cell), int64(attempt),
				"rejoin-backoff bound reached; giving up")
			break
		}
		t.Sleep(backoff)
		if backoff *= 2; backoff > rb.Policy.BackoffMax {
			backoff = rb.Policy.BackoffMax
		}
	}
	rb.Records = append(rb.Records, rec)
	delete(rb.busy, cell) // a later death of this cell starts a new pass
}

// warmUp re-stripes capacity onto the rejoined cell: each survivor
// migrates a slice of its page cache into frames borrowed from the joiner
// (vm.RebalanceToward) and re-creates its striped-file components homed
// there (fs.RestripeFor). The work runs asynchronously on each peer's own
// shard — warm-up is a background repair, not part of the commit.
func (rb *Rebooter) warmUp(t *sim.Task, cell int) {
	for _, peer := range rb.h.Cells {
		if peer.ID == cell || peer.Failed() {
			continue
		}
		p := peer
		rb.h.cellEngine(p.ID).Go(fmt.Sprintf("cell%d.warm%d", p.ID, cell), func(wt *sim.Task) {
			p.VM.RebalanceToward(wt, cell, rb.Policy.WarmPages)
			p.FS.RestripeFor(wt, cell)
		})
	}
}
