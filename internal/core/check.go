package core

import (
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/vm"
)

// CheckInvariants audits the cross-cell consistency of the memory-sharing
// state machines — the fsck of the multicellular kernel. It returns one
// message per violation (empty = clean). Only live cells are audited;
// state referring to failed cells is exempt where recovery legitimately
// leaves it asymmetric.
//
// Invariants checked:
//
//  1. Hash/frames coherence: every page-cache entry is Valid and its frame
//     record points back at the same pfdat; reference counts are
//     non-negative.
//  2. Free-pool hygiene: free frames are not Valid, not loaned, and appear
//     at most once.
//  3. Ownership: every frame is controlled by exactly one live cell — its
//     home, or the borrower it is loaned to.
//  4. Export/import symmetry: an import recorded at a live client has a
//     matching export record at the data home, and vice versa.
//  5. Firewall soundness: a local frame writable by a remote live cell is
//     either exported writable to that cell or loaned to it.
func (h *Hive) CheckInvariants() []string {
	var bad []string
	report := func(format string, args ...any) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}
	live := func(c int) bool { return c >= 0 && c < len(h.Cells) && !h.Cells[c].Failed() }

	controller := make(map[machine.PageNum]int)
	for _, c := range h.LiveCells() {
		v := c.VM

		// 1. Hash/frames coherence. Maps are audited in sorted key
		// order so the violation report is deterministic.
		hash := v.Hash()
		for _, lp := range vm.SortedPages(hash) {
			pf := hash[lp]
			if !pf.Valid {
				report("cell%d: hash entry %v not Valid", c.ID, lp)
			}
			if pf.LP != lp {
				report("cell%d: hash entry %v binds pfdat labelled %v", c.ID, lp, pf.LP)
			}
			if got, ok := v.PfdatFor(pf.Frame); !ok || got != pf {
				report("cell%d: frame %d record does not match hash entry %v", c.ID, pf.Frame, lp)
			}
			if pf.Refs < 0 {
				report("cell%d: %v has negative refs %d", c.ID, lp, pf.Refs)
			}
		}

		// 2. Free-pool hygiene.
		seen := map[machine.PageNum]bool{}
		for _, f := range v.FreeList() {
			if seen[f] {
				report("cell%d: frame %d appears twice in the free pool", c.ID, f)
			}
			seen[f] = true
			pf, ok := v.PfdatFor(f)
			if !ok {
				report("cell%d: free frame %d has no pfdat", c.ID, f)
				continue
			}
			if pf.Valid {
				report("cell%d: free frame %d still bound to %v", c.ID, f, pf.LP)
			}
			if pf.LoanedTo >= 0 {
				report("cell%d: free frame %d is marked loaned to %d", c.ID, f, pf.LoanedTo)
			}
		}

		// 3. Ownership claims (resolved after the loop).
		frames := v.FramesOfCell()
		for _, f := range sortedFrameKeys(frames) {
			pf := frames[f]
			owner := h.CellOfNode[h.M.HomeNode(f)]
			claims := owner == c.ID && pf.LoanedTo < 0 ||
				pf.BorrowedFrom >= 0 // borrower's claim
			if !claims {
				continue
			}
			if prev, dup := controller[f]; dup && prev != c.ID {
				report("frame %d controlled by both cell%d and cell%d", f, prev, c.ID)
			}
			controller[f] = c.ID
		}
	}

	// 4. Export/import symmetry among live cells.
	for _, c := range h.LiveCells() {
		hash := c.VM.Hash()
		for _, lp := range vm.SortedPages(hash) {
			pf := hash[lp]
			if pf.ImportedFrom >= 0 && live(pf.ImportedFrom) {
				home := h.Cells[pf.ImportedFrom].VM
				hpf, ok := home.Lookup(lp)
				if !ok || !hpf.ExportedTo(c.ID) {
					report("cell%d imports %v from cell%d, which has no export record",
						c.ID, lp, pf.ImportedFrom)
				}
			}
			for _, client := range pf.ExportClients() {
				if !live(client) {
					report("cell%d still exports %v to dead cell%d", c.ID, lp, client)
					continue
				}
				cpf, ok := h.Cells[client].VM.Lookup(lp)
				if !ok || cpf.ImportedFrom != c.ID {
					report("cell%d exports %v to cell%d, which has no import record",
						c.ID, lp, client)
				}
			}
		}
	}

	// 5. Firewall soundness for live cells' local frames.
	for _, c := range h.LiveCells() {
		frames := c.VM.FramesOfCell()
		for _, f := range sortedFrameKeys(frames) {
			pf := frames[f]
			if h.CellOfNode[h.M.HomeNode(f)] != c.ID {
				continue
			}
			fw := h.M.Firewall(f)
			for other := range h.Cells {
				if other == c.ID || !live(other) {
					continue
				}
				mask := h.M.NodeProcMask(h.Cells[other].Nodes[0])
				for _, n := range h.Cells[other].Nodes {
					mask |= h.M.NodeProcMask(n)
				}
				if fw&mask == 0 {
					continue // not writable by that cell
				}
				if !pf.WritableBy(other) && pf.LoanedTo != other {
					// A loaned frame is controlled by its borrower
					// (invariant 3): the borrower may cache one of its own
					// pages in it and export that page writable — the write
					// permission is then justified by the borrower's pfdat,
					// not the home's. Reachable since the rejoin warm-up
					// migrates a file server's cache into borrowed frames.
					if b := pf.LoanedTo; b >= 0 && live(b) {
						if bpf, ok := h.Cells[b].VM.PfdatFor(f); ok && bpf.WritableBy(other) {
							continue
						}
					}
					report("cell%d frame %d writable by cell%d without export or loan",
						c.ID, f, other)
				}
			}
		}
	}
	return bad
}

// sortedFrameKeys returns m's frame numbers ascending, the deterministic
// iteration order for frame-map audits.
func sortedFrameKeys(m map[machine.PageNum]*vm.Pfdat) []machine.PageNum {
	out := make([]machine.PageNum, 0, len(m))
	for f := range m {
		out = append(out, f)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
