package core

import (
	"testing"

	"repro/internal/membership"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/vm"
)

// testConfig returns a small 4-cell machine for fast tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Machine.MemPerNodeMB = 4
	return cfg
}

func TestBootAndSteadyState(t *testing.T) {
	h := Boot(testConfig())
	h.Run(1 * sim.Second)
	if h.Coord.RoundsRun != 0 {
		t.Fatalf("false alarms in steady state: %d rounds", h.Coord.RoundsRun)
	}
	if len(h.LiveCells()) != 4 {
		t.Fatalf("live cells = %d", len(h.LiveCells()))
	}
	// Clocks are ticking on every node.
	for n := 0; n < 4; n++ {
		if h.M.ClockWordValue(n) < 50 {
			t.Fatalf("node %d clock = %d after 1s", n, h.M.ClockWordValue(n))
		}
	}
}

func TestProcessLifecycle(t *testing.T) {
	h := Boot(testConfig())
	done := false
	h.Cells[0].Procs.Spawn("worker", 1, func(p *proc.Process, tk *sim.Task) {
		p.Compute(tk, 5*sim.Millisecond)
		if err := p.TouchAnon(tk, 0, true); err != nil {
			t.Errorf("touch: %v", err)
		}
		done = true
	})
	if !h.RunUntil(func() bool { return done }, sim.Second) {
		t.Fatal("process never finished")
	}
	if h.Cells[0].Procs.Live() != 0 {
		t.Fatal("process not reaped")
	}
}

func TestCrossCellForkAndWait(t *testing.T) {
	h := Boot(testConfig())
	var childRan, parentDone bool
	h.Cells[0].Procs.Spawn("parent", 1, func(p *proc.Process, tk *sim.Task) {
		if err := p.TouchAnon(tk, 3, true); err != nil {
			t.Errorf("parent touch: %v", err)
		}
		pid, err := h.Cells[0].Procs.Fork(tk, p, 2, "child", func(cp *proc.Process, ct *sim.Task) {
			// The child on cell 2 sees the parent's pre-fork page
			// through the distributed COW tree.
			if err := cp.TouchAnon(ct, 3, false); err != nil {
				t.Errorf("child touch: %v", err)
			}
			childRan = true
		})
		if err != nil {
			t.Errorf("fork: %v", err)
			return
		}
		_ = pid
		tk.Sleep(50 * sim.Millisecond)
		parentDone = true
	})
	if !h.RunUntil(func() bool { return childRan && parentDone }, sim.Second) {
		t.Fatalf("childRan=%v parentDone=%v", childRan, parentDone)
	}
}

func TestHardwareFailureDetectedAndContained(t *testing.T) {
	h := Boot(testConfig())
	// Independent work on cell 2 that must survive.
	survived := false
	var injectAt sim.Time
	h.Cells[2].Procs.Spawn("independent", 7, func(p *proc.Process, tk *sim.Task) {
		for i := 0; i < 20; i++ {
			p.Compute(tk, 10*sim.Millisecond)
		}
		survived = true
	})
	h.Run(30 * sim.Millisecond)
	injectAt = h.Eng.Now()
	h.Cells[1].FailHardware()

	if !h.RunUntil(func() bool { return h.Coord.LiveCount() == 3 }, sim.Second) {
		t.Fatal("failure never confirmed by agreement")
	}
	detect := h.Coord.LastDetectAt - injectAt
	if detect <= 0 || detect > 100*sim.Millisecond {
		t.Fatalf("detection latency = %v", detect)
	}
	if !h.RunUntil(func() bool { return survived }, 2*sim.Second) {
		t.Fatal("independent process did not survive the failure")
	}
	// The surviving cells still provide service: spawn and run a check
	// process that uses the file system.
	ok := false
	h.Cells[0].Procs.Spawn("check", 8, func(p *proc.Process, tk *sim.Task) {
		hdl, err := h.Cells[0].FS.Create(tk, "/check")
		if err != nil {
			t.Errorf("create after failure: %v", err)
			return
		}
		if err := h.Cells[0].FS.Write(tk, hdl, 4, 1); err != nil {
			t.Errorf("write after failure: %v", err)
			return
		}
		ok = true
	})
	if !h.RunUntil(func() bool { return ok }, 2*sim.Second) {
		t.Fatal("survivors not functional after recovery")
	}
}

func TestDependentProcessesKilledIndependentSurvive(t *testing.T) {
	h := Boot(testConfig())
	var depDied, indepDone bool
	// Dependent: a process on cell 0 that imports a page from cell 1.
	h.Cells[0].Procs.OnProcessDeath = func(p *proc.Process) {
		if p.Name == "dependent" {
			depDied = true
		}
	}
	h.Cells[0].Procs.Spawn("dependent", 1, func(p *proc.Process, tk *sim.Task) {
		// Import a remote page from a file served by cell 1.
		h1, err := h.Cells[1].FS.Create(tk, "/served")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if err := h.Cells[1].FS.Write(tk, h1, 2, 3); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		lp := vm.LogicalPage{Obj: vm.ObjID{Kind: vm.FileObj, Home: 1, Num: uint64(h1.Key.ID)}}
		if _, err := p.MapShared(tk, lp, false); err != nil {
			t.Errorf("map: %v", err)
			return
		}
		for {
			p.Compute(tk, 10*sim.Millisecond) // runs until killed
		}
	})
	h.Cells[0].Procs.Spawn("independent", 2, func(p *proc.Process, tk *sim.Task) {
		for i := 0; i < 15; i++ {
			p.Compute(tk, 10*sim.Millisecond)
		}
		indepDone = true
	})
	h.Run(40 * sim.Millisecond)
	h.Cells[1].FailHardware()
	if !h.RunUntil(func() bool { return depDied }, sim.Second) {
		t.Fatal("dependent process not killed by recovery")
	}
	if !h.RunUntil(func() bool { return indepDone }, 2*sim.Second) {
		t.Fatal("independent process did not complete")
	}
}

func TestPanicEngagesCutoffAndIsDetected(t *testing.T) {
	h := Boot(testConfig())
	h.Run(20 * sim.Millisecond)
	h.Cells[3].Panic("injected kernel panic")
	if !h.M.Nodes[3].CutOff() {
		t.Fatal("memory cutoff not engaged by panic")
	}
	if !h.RunUntil(func() bool { return h.Coord.LiveCount() == 3 }, sim.Second) {
		t.Fatal("panicked cell never declared dead")
	}
}

func TestVotingAgreementConfirmsRealFailure(t *testing.T) {
	cfg := testConfig()
	cfg.Agreement = membership.Vote
	h := Boot(cfg)
	h.Run(20 * sim.Millisecond)
	h.Cells[1].FailHardware()
	if !h.RunUntil(func() bool { return h.Coord.LiveCount() == 3 }, sim.Second) {
		t.Fatal("vote never confirmed the failure")
	}
}

func TestVotingAgreementRejectsFalseAlarm(t *testing.T) {
	cfg := testConfig()
	cfg.Agreement = membership.Vote
	h := Boot(cfg)
	h.Run(20 * sim.Millisecond)
	// Cell 0 falsely accuses healthy cell 2.
	h.Cells[0].Mon.Hint(2, "spurious")
	h.Run(h.Eng.Now() + 200*sim.Millisecond)
	if h.Coord.LiveCount() != 4 {
		t.Fatalf("healthy cell voted out; live = %d", h.Coord.LiveCount())
	}
	if h.Coord.FalseAlarms != 1 {
		t.Fatalf("false alarms = %d", h.Coord.FalseAlarms)
	}
}

func TestCorruptAccuserRule(t *testing.T) {
	// §4.3: a cell that broadcasts the same alert twice and is voted
	// down both times is considered corrupt by the other cells.
	cfg := testConfig()
	cfg.Agreement = membership.Vote
	h := Boot(cfg)
	h.Run(20 * sim.Millisecond)
	h.Cells[0].Mon.Hint(2, "bogus #1")
	h.Run(h.Eng.Now() + 200*sim.Millisecond)
	h.Cells[0].Mon.Hint(2, "bogus #2")
	if !h.RunUntil(func() bool { return h.Cells[0].Failed() }, 2*sim.Second) {
		t.Fatal("repeatedly-false accuser not stopped")
	}
	if !h.RunUntil(func() bool { return h.Coord.LiveCount() == 3 }, 2*sim.Second) {
		t.Fatalf("live = %d after accuser branded corrupt", h.Coord.LiveCount())
	}
	if h.Cells[2].Failed() {
		t.Fatal("falsely accused cell was stopped")
	}
}

func TestReintegrationAfterReboot(t *testing.T) {
	cfg := testConfig()
	cfg.AutoReintegrate = true
	h := Boot(cfg)
	h.Run(20 * sim.Millisecond)
	h.Cells[1].FailHardware()
	if !h.RunUntil(func() bool { return h.Coord.LiveCount() == 3 }, sim.Second) {
		t.Fatal("failure not confirmed")
	}
	// The recovery master repairs the hardware; reboot the cell's kernel.
	if !h.RunUntil(func() bool { return !h.M.Nodes[1].Failed() }, sim.Second) {
		t.Fatal("master never repaired the node")
	}
	h.Cells[1].Reboot()
	if h.Coord.LiveCount() != 4 {
		t.Fatalf("live after reintegration = %d", h.Coord.LiveCount())
	}
	// The rebooted cell serves again.
	ok := false
	h.Cells[1].Procs.Spawn("hello", 1, func(p *proc.Process, tk *sim.Task) {
		p.Compute(tk, sim.Millisecond)
		ok = true
	})
	if !h.RunUntil(func() bool { return ok }, sim.Second) {
		t.Fatal("rebooted cell not running processes")
	}
}

func TestRecoveryLatencyInPaperRange(t *testing.T) {
	h := Boot(testConfig())
	h.Run(20 * sim.Millisecond)
	h.Cells[1].FailHardware()
	if !h.RunUntil(func() bool { return h.Coord.RecoveryEndAt > 0 }, sim.Second) {
		t.Fatal("recovery never completed")
	}
	lat := h.Coord.RecoveryEndAt - h.Coord.FirstDetectAt
	// §7.4: recovery latency varied between 40 and 80 ms.
	if lat < 20*sim.Millisecond || lat > 120*sim.Millisecond {
		t.Fatalf("recovery latency = %v, want tens of ms", lat)
	}
}

func TestSpanningTask(t *testing.T) {
	h := Boot(testConfig())
	tables := []*proc.Table{h.Cells[0].Procs, h.Cells[1].Procs, h.Cells[2].Procs, h.Cells[3].Procs}
	ran := 0
	var span *proc.Span
	h.Cells[0].Procs.Spawn("launcher", 1, func(p *proc.Process, tk *sim.Task) {
		var err error
		span, err = h.Cells[0].Procs.SpawnSpanning(tk, "par", 5, tables,
			func(tp *proc.Process, tt *sim.Task) {
				tp.Compute(tt, 5*sim.Millisecond)
				ran++
			})
		if err != nil {
			t.Errorf("spanning: %v", err)
		}
	})
	if !h.RunUntil(func() bool { return ran == 4 }, sim.Second) {
		t.Fatalf("threads ran = %d", ran)
	}
	if span == nil || len(span.Threads) != 4 {
		t.Fatal("span malformed")
	}
	for _, th := range span.Threads {
		for c := 0; c < 4; c++ {
			if !th.Deps[c] {
				t.Fatal("spanning thread missing whole-machine dependency")
			}
		}
	}
}

func TestSpanningTaskDiesWithAnyCell(t *testing.T) {
	h := Boot(testConfig())
	tables := []*proc.Table{h.Cells[0].Procs, h.Cells[1].Procs, h.Cells[2].Procs, h.Cells[3].Procs}
	h.Cells[0].Procs.Spawn("launcher", 1, func(p *proc.Process, tk *sim.Task) {
		h.Cells[0].Procs.SpawnSpanning(tk, "par", 5, tables,
			func(tp *proc.Process, tt *sim.Task) {
				for {
					tp.Compute(tt, 10*sim.Millisecond)
				}
			})
	})
	h.Run(50 * sim.Millisecond)
	h.Cells[3].FailHardware()
	if !h.RunUntil(func() bool {
		return h.Cells[0].Procs.Live() == 0 && h.Cells[1].Procs.Live() == 0 && h.Cells[2].Procs.Live() == 0
	}, 2*sim.Second) {
		t.Fatal("spanning task threads survived a member-cell failure")
	}
}

func TestDeterministicBoot(t *testing.T) {
	runOnce := func() sim.Time {
		h := Boot(testConfig())
		done := false
		h.Cells[0].Procs.Spawn("p", 1, func(p *proc.Process, tk *sim.Task) {
			hdl, _ := h.Cells[0].FS.Create(tk, "/tmp/x")
			h.Cells[0].FS.Write(tk, hdl, 10, 1)
			p.Compute(tk, 3*sim.Millisecond)
			done = true
		})
		var at sim.Time
		h.RunUntil(func() bool {
			if done && at == 0 {
				at = h.Eng.Now()
			}
			return done
		}, sim.Second)
		return at
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestMultiNodeCells(t *testing.T) {
	// 8 nodes in 4 cells of 2: cells span nodes, so firewall masks,
	// frame ownership, and clock ticking must all be cell-wide.
	cfg := DefaultConfig()
	cfg.Machine.Nodes = 8
	cfg.Machine.MemPerNodeMB = 2
	cfg.Cells = 4
	h := Boot(cfg)
	if len(h.Cells[0].Nodes) != 2 {
		t.Fatalf("nodes per cell = %d", len(h.Cells[0].Nodes))
	}
	// A page on node 1 is writable by node 0's processor (same cell).
	done := false
	h.Cells[0].Procs.Spawn("writer", 1, func(p *proc.Process, tk *sim.Task) {
		defer func() { done = true }()
		lo, _ := h.M.NodePages(1)
		if err := h.M.WritePage(tk, h.M.Procs[0], lo, 1); err != nil {
			t.Errorf("intra-cell cross-node write: %v", err)
		}
		// But not by another cell's processor.
		if err := h.M.WritePage(tk, h.M.Procs[2], lo, 2); err == nil {
			t.Error("cross-cell write admitted")
		}
		// Cross-cell sharing still works.
		hd, err := h.Cells[0].FS.Create(tk, "/x")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		h.Cells[0].FS.Write(tk, hd, 4, 9)
		lp := vm.LogicalPage{Obj: vm.ObjID{Kind: vm.FileObj, Home: 0, Num: uint64(hd.Key.ID)}}
		pf, err := h.Cells[3].VM.Fault(tk, lp, true)
		if err != nil {
			t.Errorf("remote fault: %v", err)
			return
		}
		// Both processors of cell 3 can write (group grant policy).
		if err := h.M.WritePage(tk, h.M.Procs[6], pf.Frame, 3); err != nil {
			t.Errorf("cell 3 cpu 6 write: %v", err)
		}
		if err := h.M.WritePage(tk, h.M.Procs[7], pf.Frame, 3); err != nil {
			t.Errorf("cell 3 cpu 7 write: %v", err)
		}
	})
	if !h.RunUntil(func() bool { return done }, sim.Second) {
		t.Fatal("never finished")
	}
	// Failure of a multi-node cell is detected and contained.
	h.Cells[1].FailHardware()
	if !h.RunUntil(func() bool { return h.Coord.LiveCount() == 3 }, sim.Second) {
		t.Fatal("multi-node cell failure not confirmed")
	}
	for _, c := range h.Cells {
		if c.ID != 1 && c.Failed() {
			t.Fatalf("cell %d collaterally failed", c.ID)
		}
	}
}

func TestBootRejectsUnevenPartition(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 3 cells over 4 nodes")
		}
	}()
	cfg := DefaultConfig()
	cfg.Cells = 3
	Boot(cfg)
}

func TestInvariantsHoldThroughSharingAndFailure(t *testing.T) {
	h := Boot(testConfig())
	// Build up cross-cell sharing: files served remotely, write mappings,
	// borrowed frames.
	done := false
	h.Cells[0].Procs.Spawn("driver", 1, func(p *proc.Process, tk *sim.Task) {
		hd, err := h.Cells[1].FS.Create(tk, "/served/f")
		if err != nil {
			return
		}
		h.Cells[1].FS.Write(tk, hd, 8, 3)
		for off := int64(0); off < 8; off++ {
			lp := vm.LogicalPage{Obj: vm.ObjID{Kind: vm.FileObj, Home: 1, Num: uint64(hd.Key.ID)}, Off: off}
			if _, err := p.MapShared(tk, lp, off%2 == 0); err != nil {
				t.Errorf("map: %v", err)
			}
		}
		// Borrow frames from cell 2.
		v := h.Cells[0].VM
		for i := 0; i < 3; i++ {
			if _, err := v.AllocFrame(tk, vm.AllocOpts{Acceptable: []int{2}}); err != nil {
				t.Errorf("borrow: %v", err)
			}
		}
		tk.Sleep(20 * sim.Millisecond)
		if bad := h.CheckInvariants(); len(bad) > 0 {
			t.Errorf("invariants violated mid-run:\n%s", joinLines(bad))
		}
		done = true
		for {
			p.Compute(tk, 10*sim.Millisecond)
		}
	})
	if !h.RunUntil(func() bool { return done }, 2*sim.Second) {
		t.Fatal("driver never reached steady state")
	}
	// Now fail a cell and re-audit after recovery.
	h.Cells[1].FailHardware()
	if !h.RunUntil(func() bool { return h.Coord.LiveCount() == 3 && h.Coord.RecoveryEndAt > 0 }, 2*sim.Second) {
		t.Fatal("recovery incomplete")
	}
	h.Run(h.Now() + 300*sim.Millisecond)
	if bad := h.CheckInvariants(); len(bad) > 0 {
		t.Fatalf("invariants violated after recovery:\n%s", joinLines(bad))
	}
}

func joinLines(ss []string) string {
	out := ""
	for _, s := range ss {
		out += "  " + s + "\n"
	}
	return out
}

func TestSixteenCellScale(t *testing.T) {
	// §10: "the multicellular architecture of Hive makes it inherently
	// scalable to multiprocessors significantly larger than current
	// systems". Boot 16 cells, share across distant cells, fail two of
	// them sequentially, and audit the final state.
	cfg := DefaultConfig()
	cfg.Machine.Nodes = 16
	cfg.Machine.MemPerNodeMB = 2
	cfg.Cells = 16
	h := Boot(cfg)
	done := 0
	for i := 0; i < 16; i += 5 {
		i := i
		h.Cells[i].Procs.Spawn("worker", 1, func(p *proc.Process, tk *sim.Task) {
			hd, err := h.Cells[(i+7)%16].FS.Create(tk, "/w")
			if err != nil {
				return
			}
			h.Cells[(i+7)%16].FS.Write(tk, hd, 4, 5)
			lp := vm.LogicalPage{Obj: vm.ObjID{Kind: vm.FileObj, Home: (i + 7) % 16, Num: uint64(hd.Key.ID)}}
			if _, err := p.MapShared(tk, lp, true); err != nil {
				t.Errorf("map: %v", err)
			}
			p.Compute(tk, 20*sim.Millisecond)
			done++
		})
	}
	if !h.RunUntil(func() bool { return done == 4 }, 2*sim.Second) {
		t.Fatalf("workers done = %d", done)
	}
	h.Cells[3].FailHardware()
	if !h.RunUntil(func() bool { return h.Coord.LiveCount() == 15 }, 2*sim.Second) {
		t.Fatal("first failure not confirmed at 16 cells")
	}
	h.Run(h.Now() + 100*sim.Millisecond)
	h.Cells[11].FailHardware()
	if !h.RunUntil(func() bool { return h.Coord.LiveCount() == 14 }, 2*sim.Second) {
		t.Fatal("second failure not confirmed")
	}
	h.Run(h.Now() + 300*sim.Millisecond)
	for _, c := range h.Cells {
		if c.ID != 3 && c.ID != 11 && c.Failed() {
			t.Fatalf("cell %d collaterally failed", c.ID)
		}
	}
	if bad := h.CheckInvariants(); len(bad) > 0 {
		t.Fatalf("invariants at scale:\n%s", joinLines(bad))
	}
}
