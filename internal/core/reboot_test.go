package core

import (
	"testing"

	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/trace"
)

func rebootConfig() Config {
	cfg := DefaultConfig()
	cfg.Reboot = RebootPolicy{
		Enabled:     true,
		Delay:       20 * sim.Millisecond,
		BackoffBase: 10 * sim.Millisecond,
		MaxAttempts: 4,
	}
	return cfg
}

// waitDeath runs until the live set has shrunk to n (the verdict landed).
func waitDeath(t *testing.T, h *Hive, n int) {
	t.Helper()
	if !h.RunUntil(func() bool { return h.Coord.LiveCount() <= n }, h.Now()+2*sim.Second) {
		t.Fatalf("death never detected: live=%d", h.Coord.LiveCount())
	}
}

// waitRestored runs until every cell is live and the reboot controller has
// settled.
func waitRestored(t *testing.T, h *Hive, deadline sim.Time) {
	t.Helper()
	if !h.RunUntil(func() bool {
		return h.Coord.LiveCount() == h.Cfg.Cells && h.Rebooter.Idle()
	}, deadline) {
		t.Fatalf("capacity never restored: live=%d records=%+v",
			h.Coord.LiveCount(), h.Rebooter.Records)
	}
}

func TestRebooterFullLoop(t *testing.T) {
	h := Boot(rebootConfig())
	h.Run(30 * sim.Millisecond)
	h.Cells[1].FailHardware()
	if !h.RunUntil(func() bool { return h.Coord.LiveCount() == 3 }, h.Now()+sim.Second) {
		t.Fatal("death never detected")
	}
	waitRestored(t, h, h.Now()+5*sim.Second)

	if len(h.Rebooter.Records) != 1 {
		t.Fatalf("records = %+v, want one", h.Rebooter.Records)
	}
	rec := h.Rebooter.Records[0]
	if rec.Cell != 1 || !rec.Restored() || rec.GaveUp {
		t.Fatalf("bad record %+v", rec)
	}
	if rec.RejoinAt <= rec.RebootAt || rec.RebootAt <= rec.DeadAt {
		t.Fatalf("loop times out of order: %+v", rec)
	}
	if h.Rebooter.FullCapacityAt == 0 {
		t.Fatal("FullCapacityAt never set")
	}

	reboots, rejoins := 0, 0
	for _, e := range h.Trace.Merged() {
		switch e.Kind {
		case trace.Reboot:
			reboots++
		case trace.Rejoin:
			rejoins++
		}
	}
	if reboots != 1 || rejoins != 1 {
		t.Fatalf("trace has %d REBOOT / %d REJOIN events, want 1/1", reboots, rejoins)
	}

	// The rejoined cell must be fully usable: processes run on it again.
	ran := false
	h.Cells[1].Procs.Spawn("revived", 1, func(p *proc.Process, tk *sim.Task) {
		ran = true
	})
	h.Run(h.Now() + 10*sim.Millisecond)
	if !ran {
		t.Fatal("process on rejoined cell never ran")
	}
}

func TestRebooterJoinerDiesMidJoin(t *testing.T) {
	h := Boot(rebootConfig())
	h.Run(30 * sim.Millisecond)

	// One-shot: the joiner is killed the moment the join round's first
	// barrier opens; the round must abort and the next attempt succeed.
	fired := false
	h.Coord.OnJoinBarrier1Open = func(joiner, coordinator int) {
		if fired {
			return
		}
		fired = true
		h.Cells[joiner].FailHardware()
	}
	h.Cells[1].FailHardware()
	waitDeath(t, h, 3)
	waitRestored(t, h, h.Now()+10*sim.Second)

	if !fired {
		t.Fatal("join barrier hook never fired")
	}
	rec := h.Rebooter.Records[0]
	if rec.Attempts < 2 {
		t.Fatalf("record %+v: want a retried join after the mid-join death", rec)
	}
	if !rec.Restored() || rec.GaveUp {
		t.Fatalf("bad record %+v", rec)
	}
}

func TestRebooterCoordinatorDiesMidJoin(t *testing.T) {
	h := Boot(rebootConfig())
	h.Run(30 * sim.Millisecond)

	fired := false
	h.Coord.OnJoinBarrier1Open = func(joiner, coordinator int) {
		if fired {
			return
		}
		fired = true
		h.Cells[coordinator].FailHardware()
	}
	h.Cells[1].FailHardware()
	waitDeath(t, h, 3)
	// Both the original faultee and the killed round coordinator must come
	// back: the join round survives the coordinator's death (restart-safe),
	// and the coordinator's own death starts a second loop pass.
	waitRestored(t, h, h.Now()+10*sim.Second)
	if !fired {
		t.Fatal("join barrier hook never fired")
	}
	if len(h.Rebooter.Records) != 2 {
		t.Fatalf("records = %+v, want two passes", h.Rebooter.Records)
	}
	for _, rec := range h.Rebooter.Records {
		if !rec.Restored() || rec.GaveUp {
			t.Fatalf("bad record %+v", rec)
		}
	}
}

func TestRebooterSecondFaultDuringWarmup(t *testing.T) {
	h := Boot(rebootConfig())
	h.Run(30 * sim.Millisecond)
	h.Cells[1].FailHardware()
	waitDeath(t, h, 3)
	// Wait for the commit, then land a second fault while warm-up traffic
	// is still in flight.
	if !h.RunUntil(func() bool { return h.Coord.LiveCount() == 4 }, h.Now()+5*sim.Second) {
		t.Fatal("first rejoin never committed")
	}
	h.Cells[2].FailHardware()
	waitDeath(t, h, 3)
	waitRestored(t, h, h.Now()+10*sim.Second)
	if len(h.Rebooter.Records) != 2 {
		t.Fatalf("records = %+v, want two passes", h.Rebooter.Records)
	}
}

func TestRebooterCrashLoopHitsBackoffBound(t *testing.T) {
	cfg := rebootConfig()
	cfg.Reboot.MaxAttempts = 3
	h := Boot(cfg)
	h.Run(30 * sim.Millisecond)

	// Every join attempt kills the joiner again: a crash-looping cell.
	h.Coord.OnJoinBarrier1Open = func(joiner, coordinator int) {
		h.Cells[joiner].FailHardware()
	}
	h.Cells[1].FailHardware()
	if !h.RunUntil(func() bool { return h.Rebooter.Idle() && len(h.Rebooter.Records) > 0 },
		h.Now()+20*sim.Second) {
		t.Fatal("controller never settled")
	}
	rec := h.Rebooter.Records[0]
	if !rec.GaveUp || rec.Restored() {
		t.Fatalf("record %+v: want give-up without restore", rec)
	}
	if rec.Attempts != 3 {
		t.Fatalf("attempts = %d, want the MaxAttempts bound 3", rec.Attempts)
	}
	if h.Coord.LiveCount() != 3 {
		t.Fatalf("live = %d, want the crash-looping cell kept out", h.Coord.LiveCount())
	}
	// The give-up is visible in the trace.
	sawGiveup := false
	for _, e := range h.Trace.Merged() {
		if e.Kind == trace.Reboot && e.B == 3 {
			sawGiveup = true
		}
	}
	if !sawGiveup {
		t.Fatal("no give-up REBOOT event in trace")
	}
}
