// Package core assembles the Hive multicellular kernel — the paper's
// primary contribution. A Hive is an internal distributed system of
// independent kernels (cells), each owning a range of nodes of the FLASH
// machine and running its own virtual memory system, file system,
// copy-on-write manager, process table, scheduler, RPC endpoint, and
// failure monitor. The cells cooperate to present a single-system image
// while containing the effects of hardware and software faults to the cell
// where they occur.
package core

import (
	"fmt"

	"repro/internal/careful"
	"repro/internal/cow"
	"repro/internal/fs"
	"repro/internal/kmem"
	"repro/internal/machine"
	"repro/internal/membership"
	"repro/internal/proc"
	"repro/internal/rpc"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vm"
)

// MaxCells is the largest supported cell count. The bound comes from the
// FLASH firewall: write permission is a 64-bit processor vector per page
// (§4.2), so at most 64 distinct processors — and hence 64 single-node
// cells — can be told apart by the containment hardware.
const MaxCells = 64

// Config describes a Hive boot.
type Config struct {
	Machine machine.Config
	// Cells is the number of cells; the machine's nodes are divided
	// evenly among them (Figure 3.1). Must divide Machine.Nodes.
	Cells int
	// Agreement selects oracle (the paper's configuration) or the real
	// voting protocol.
	Agreement membership.AgreementMode
	// AutoReintegrate lets the recovery master reboot repaired cells.
	AutoReintegrate bool
	// Reboot configures the availability loop: when enabled, a controller
	// microboots a declared-dead cell on its repaired nodes and re-admits
	// it through a membership join round (untrusted until commit), then
	// warms it back to full capacity. Orthogonal to AutoReintegrate, the
	// older synchronous path.
	Reboot RebootPolicy
	// KernelPagesPerNode are reserved for each cell's kernel (never
	// shared or loaned). Defaults to 1/4 of each node's pages, leaving
	// ≈6000 user pages per 32 MB node as in §4.2.
	KernelPagesPerNode int
	// Mounts places file-system subtrees on data-home cells.
	Mounts []fs.Mount
	// RPCServerPool sizes each cell's queued-RPC server pool.
	RPCServerPool int
	// ClockCheckEvery is the neighbour clock-check period in ticks
	// (0 = membership.DefaultCheckEvery). The §4.3 frequency/
	// vulnerability tradeoff knob.
	ClockCheckEvery int
	// TraceCap sizes each cell's per-ring trace capacity in events
	// (0 = 4096). Raise it when exporting full Chrome traces of long runs.
	TraceCap int
	// Seed drives all randomness.
	Seed int64
	// Shards selects the sharded execution engine: 0 boots the classic
	// single-engine simulation (byte-identical to previous releases); any
	// positive value boots one event heap per cell plus a global shard,
	// with Shards OS worker threads driving the cell shards. The logical
	// decomposition is always one shard per cell regardless of the worker
	// count, so Shards=1 (the serial reference) and Shards=N produce
	// byte-identical results — the flag only buys wall-clock parallelism.
	// Negative values force the classic engine even where a harness-level
	// default (workload.SetDefaultShards) would otherwise apply.
	Shards int
}

// DefaultConfig is the paper's evaluation machine split into 4 cells with
// /tmp homed on the last cell (the pmake file server).
func DefaultConfig() Config {
	return Config{
		Machine:   machine.DefaultConfig(),
		Cells:     4,
		Agreement: membership.Oracle,
		Mounts:    []fs.Mount{{Prefix: "/tmp", Cell: 3}},
		Seed:      1995,
	}
}

// Hive is a booted system.
type Hive struct {
	Cfg Config
	// Eng is the engine harness and workload code schedules on: the single
	// engine of a classic run, or the global shard of a sharded run (whose
	// tasks execute with every cell shard quiescent).
	Eng *sim.Engine
	// Clu is the shard cluster of a sharded run (nil in classic mode).
	Clu   *sim.Cluster
	M     *machine.Machine
	Space *kmem.Space
	Coord *membership.Coordinator
	Cells []*Cell

	// Trace is the machine-wide forensic event recorder (hints, alerts,
	// votes, recovery phases, RPC and fault spans, panics) — the
	// post-fault analysis aid §7.4 credits deterministic simulation with
	// enabling. One pair of ring buffers per cell; Merged() restores the
	// global total order, ExportChrome renders it for Perfetto.
	Trace *trace.Set

	// CellOfNode maps node -> owning cell.
	CellOfNode []int

	// Rebooter drives the fault → reboot → rejoin → full-capacity loop
	// when Cfg.Reboot.Enabled (nil otherwise).
	Rebooter *Rebooter
}

// Cell is one independent kernel.
type Cell struct {
	ID    int
	Hive  *Hive
	Nodes []int

	EP        *rpc.Endpoint
	VM        *vm.VM
	FS        *fs.FS
	COW       *cow.Manager
	Procs     *proc.Table
	Sched     *sched.Scheduler
	Mon       *membership.Monitor
	Reader    *careful.Reader
	ClockHand *vm.ClockHand
	Tracer    *trace.Tracer

	// PlaceTargets is Wax's process-placement hint: preferred spill cells
	// (least-loaded first) for work this cell cannot or should not run
	// locally. Installed through ApplyPlaceTargets in the global phase and
	// read from this cell's own shard, like VM.AllocTargets. Advisory only:
	// dispatchers fall back to any live cell when it is stale or empty.
	PlaceTargets []int

	failed  bool // fail-stop or forced stop
	corrupt bool // software-corrupted (fault injection ground truth)
	boots   int  // microboot count (RPC incarnation epoch)

	Metrics *stats.Registry
}

// ValidateCells reports whether a cell count is bootable on a machine with
// the given node count: at least 1 cell, at most MaxCells, and an even
// node partition (Figure 3.1 gives every cell the same number of nodes).
func ValidateCells(cells, nodes int) error {
	switch {
	case cells < 1:
		return fmt.Errorf("core: cell count %d: must be at least 1", cells)
	case cells > MaxCells:
		return fmt.Errorf("core: cell count %d exceeds MaxCells %d (the firewall's 64-bit write-permission vector)", cells, MaxCells)
	case nodes%cells != 0:
		return fmt.Errorf("core: cell count %d must divide node count %d", cells, nodes)
	}
	return nil
}

// Boot builds and starts a Hive.
func Boot(cfg Config) *Hive {
	if err := ValidateCells(cfg.Cells, cfg.Machine.Nodes); err != nil {
		panic(err.Error())
	}
	if cfg.RPCServerPool == 0 {
		// One pool sized for the 4-cell evaluation machine, grown gently
		// with scale: intercell request fan-in rises with the number of
		// peers, but most traffic stays pairwise.
		cfg.RPCServerPool = 4 + cfg.Cells/8
	}
	var clu *sim.Cluster
	var eng *sim.Engine
	if cfg.Shards > 0 {
		// One logical shard per cell, lookahead = the machine's minimum
		// cross-cell interaction latency (SIPS wire time). The worker
		// count only changes how many OS threads drive the cell shards.
		la := cfg.Machine.IPINs
		if cfg.Machine.RemoteMissNs > la {
			la = cfg.Machine.RemoteMissNs
		}
		if la <= 0 {
			panic("core: sharded run needs a positive wire latency for lookahead")
		}
		clu = sim.NewCluster(cfg.Seed, cfg.Cells, la)
		clu.SetWorkers(cfg.Shards)
		//hive:lint-ignore shardcross boot-time wiring: no worker has started yet
		eng = clu.Global()
	} else {
		eng = sim.NewEngine(cfg.Seed)
	}
	m := machine.New(eng, cfg.Machine)
	if cfg.KernelPagesPerNode == 0 {
		cfg.KernelPagesPerNode = m.PagesPerNode / 4
	}
	h := &Hive{
		Cfg:   cfg,
		Eng:   eng,
		Clu:   clu,
		M:     m,
		Space: kmem.NewSpace(cfg.Cells),
		Coord: membership.NewCoordinator(cfg.Cells, nodePartition(cfg.Machine.Nodes, cfg.Cells), cfg.Agreement),
	}
	h.Trace = trace.NewSet(cfg.Cells, cfg.TraceCap)
	if clu != nil {
		h.Trace.Sharded()
	}
	h.Coord.AutoReintegrate = cfg.AutoReintegrate
	h.Coord.BrokenHardware = map[int]bool{}
	h.CellOfNode = make([]int, cfg.Machine.Nodes)
	nodesPerCell := cfg.Machine.Nodes / cfg.Cells
	for n := range h.CellOfNode {
		h.CellOfNode[n] = n / nodesPerCell
	}
	if clu != nil {
		// Bind every node — its processors, disk, and timed events — to
		// its cell's shard before any kernel subsystem captures them.
		for n := 0; n < cfg.Machine.Nodes; n++ {
			//hive:lint-ignore shardcross boot-time wiring: no worker has started yet
			m.BindShard(n, clu.Shard(h.CellOfNode[n]+1))
		}
	}
	// Hardware events (firewall updates, SIPS sends) record on the track
	// of the cell owning the issuing node.
	m.Trace = make([]*trace.Tracer, cfg.Machine.Nodes)
	for n := range m.Trace {
		m.Trace[n] = h.Trace.Tracer(h.CellOfNode[n])
	}

	for c := 0; c < cfg.Cells; c++ {
		h.Cells = append(h.Cells, h.bootCell(c))
	}
	rpc.Connect(endpoints(h.Cells)...)
	tables := make([]*proc.Table, len(h.Cells))
	for i, c := range h.Cells {
		tables[i] = c.Procs
	}
	proc.ConnectTables(tables...)
	h.Coord.OracleFailed = func(cell int) bool {
		return h.Cells[cell].ActuallyFailed()
	}
	h.Coord.OnDeclaredDead = func(cell int) {
		h.Cells[cell].ForceStop("declared dead by agreement")
		if h.Rebooter != nil {
			h.Rebooter.noteDeath(cell)
		}
	}
	if cfg.Reboot.Enabled {
		h.Rebooter = newRebooter(h, cfg.Reboot)
	}
	for _, c := range h.Cells {
		c.Mon.Start()
	}
	return h
}

func nodePartition(nodes, cells int) [][]int {
	per := nodes / cells
	out := make([][]int, cells)
	for c := 0; c < cells; c++ {
		for i := 0; i < per; i++ {
			out[c] = append(out[c], c*per+i)
		}
	}
	return out
}

func endpoints(cells []*Cell) []*rpc.Endpoint {
	eps := make([]*rpc.Endpoint, len(cells))
	for i, c := range cells {
		eps[i] = c.EP
	}
	return eps
}

// bootCell assembles one cell's kernel on a fresh Cell struct.
func (h *Hive) bootCell(id int) *Cell {
	c := &Cell{ID: id, Hive: h}
	h.buildCell(c)
	return c
}

// buildCell assembles (or, on a microboot, reassembles) a cell's kernel
// in place on the given Cell. Every closure handed to a subsystem —
// the arena's fault-model gate, the corruption panic, the recovery hooks —
// captures c itself, so a rebooted cell's fresh subsystems keep pointing
// at the one *Cell the Hive, the peers, and the harness all hold.
func (h *Hive) buildCell(c *Cell) {
	id := c.ID
	nodesPerCell := h.Cfg.Machine.Nodes / h.Cfg.Cells
	var nodes []int
	var procs []*machine.Processor
	for i := 0; i < nodesPerCell; i++ {
		n := id*nodesPerCell + i
		nodes = append(nodes, n)
		procs = append(procs, h.M.Nodes[n].Procs...)
	}
	c.Nodes = nodes
	c.Metrics = stats.NewRegistry()
	c.Tracer = h.Trace.Tracer(id)

	// Kernel memory arena with fault-model access semantics.
	arena := h.Space.Arena(id)
	arena.Accessible = func() error {
		if c.failed || h.M.Nodes[nodes[0]].Failed() || h.M.Nodes[nodes[0]].CutOff() {
			return kmem.ErrBusError
		}
		return nil
	}

	// Boot firewall: every processor of the cell may write every page of
	// the cell; nothing outside it may (§4.2's group-grant policy).
	var cellMask uint64
	for _, n := range nodes {
		cellMask |= h.M.NodeProcMask(n)
	}
	for _, n := range nodes {
		lo, hi := h.M.NodePages(n)
		for p := lo; p < hi; p++ {
			h.M.BootFirewall(p, cellMask)
		}
	}

	c.EP = rpc.NewEndpoint(h.M, id, procs, h.Cfg.RPCServerPool)
	c.EP.Tracer = c.Tracer
	c.VM = vm.New(h.M, c.EP, id, nodes, h.CellOfNode, h.Cfg.KernelPagesPerNode)
	c.VM.Tracer = c.Tracer
	c.FS = fs.New(h.M, c.EP, c.VM, id, h.Cfg.Mounts, h.M.Nodes[nodes[0]].Disk)
	c.Sched = sched.New(id, procs)
	c.Reader = &careful.Reader{M: h.M, Space: h.Space, CellEngine: h.cellEngine, Tracer: c.Tracer}
	c.COW = cow.New(h.M, c.EP, c.VM, h.Space, c.Reader, id)
	c.Procs = proc.NewTable(id, h.Cfg.Cells, c.EP, c.Sched, c.FS, c.COW, c.VM)
	c.Mon = membership.NewMonitor(h.M, c.EP, h.Coord, id, nodes)
	c.Mon.CheckEvery = h.Cfg.ClockCheckEvery
	c.Mon.Tracer = c.Tracer

	// A cell that finds its own kernel data corrupt panics (§4.1).
	c.COW.OnLocalDamage = func(reason string) {
		c.Panic("kernel data corruption: " + reason)
	}

	// The page-out daemon (§5.7/Table 3.4); Wax steers its preferences.
	// File pages write back through the file system, anonymous pages to
	// the swap partition (a reserved area at the end of the local disk).
	c.COW.EnableSwap(h.M.Nodes[nodes[0]].Disk, 1<<30)
	c.ClockHand = c.VM.StartClockHand(func(t *sim.Task, lp vm.LogicalPage) bool {
		if lp.Obj.Kind == vm.AnonObj {
			return c.COW.SwapOut(t, lp)
		}
		return c.FS.WritebackPage(t, lp)
	})

	// Wire failure hints from every detector into the monitor, which
	// records them in the forensic trace (post-dedup).
	c.EP.HintSink = c.Mon.Hint
	c.Reader.HintSink = c.Mon.Hint

	// Clock monitoring reads the neighbour's clock word under the
	// careful reference protocol (§4.3).
	c.Mon.ReadNeighborClock = func(t *sim.Task, cell int) (uint64, error) {
		p := c.liveProc()
		ctx := c.Reader.On(t, p, cell)
		v := ctx.ReadClock(h.Coord.Monitors()[cell].NodeIDs[0])
		if err := ctx.Off(); err != nil {
			return 0, err
		}
		return v, nil
	}

	c.Mon.Hooks = membership.Hooks{
		SuspendUser: c.Sched.Freeze,
		ResumeUser:  c.Sched.Thaw,
		Phase1:      c.VM.RecoveryPhase1,
		Phase2: func(t *sim.Task, failed map[int]bool) int {
			n := c.VM.RecoveryPhase2(t, failed)
			if n > 0 {
				c.Tracer.Emit(c.EP.Engine().Now(), trace.Discard, int64(n), 0, "pages writable by failed cells")
			}
			return n
		},
		Finish: c.VM.RecoveryFinish,
		KillDependents: func(failed map[int]bool) int {
			n := c.Procs.KillDependents(failed)
			if n > 0 {
				c.Tracer.Emit(c.EP.Engine().Now(), trace.Kill, int64(n), 0, "dependent processes killed")
			}
			return n
		},
		Panic: c.Panic,
		Reintegrate: func(cell int) {
			c.VM.DropPeerState(cell)
		},
	}
}

// cellEngine returns the engine whose shard owns a cell's state: the cell's
// own shard in a sharded run, the single engine otherwise. Used by careful
// readers to hop before touching a remote cell's memory.
func (h *Hive) cellEngine(cell int) *sim.Engine {
	if cell < 0 || cell >= h.Cfg.Cells {
		return nil
	}
	nodesPerCell := h.Cfg.Machine.Nodes / h.Cfg.Cells
	return h.M.NodeEngine(cell * nodesPerCell)
}

// liveProc returns a non-halted processor of the cell.
func (c *Cell) liveProc() *machine.Processor {
	for _, n := range c.Nodes {
		for _, p := range c.Hive.M.Nodes[n].Procs {
			if !p.Halted() {
				return p
			}
		}
	}
	return c.Hive.M.Nodes[c.Nodes[0]].Procs[0]
}

// ActuallyFailed is the agreement oracle's ground truth for this cell.
func (c *Cell) ActuallyFailed() bool {
	if c.failed || c.corrupt {
		return true
	}
	for _, n := range c.Nodes {
		if c.Hive.M.Nodes[n].Failed() {
			return true
		}
	}
	return false
}

// Failed reports whether the cell has stopped (fault or forced).
func (c *Cell) Failed() bool { return c.failed }

// MarkCorrupt flags the cell as software-corrupted; the oracle confirms
// alerts about it (the injected-bug ground truth of §7.4). The injection
// marker makes the fault locatable from the trace alone (forensic audit).
func (c *Cell) MarkCorrupt() {
	c.corrupt = true
	c.Tracer.Emit(c.Hive.Now(), trace.Inject, int64(c.ID), 0, "corrupt")
}

// FailHardware injects a fail-stop hardware fault: every node of the cell
// halts and its memory becomes inaccessible (§7.4's hardware fault
// injection). Survivor detection happens through the normal hint channels.
// In a sharded run it must be called from the global shard (fault injectors
// and harnesses run there), whose tasks execute with every cell quiescent.
func (c *Cell) FailHardware() {
	c.failed = true
	c.Tracer.Emit(c.Hive.Eng.Now(), trace.Inject, int64(c.ID), 0, "hw-fail")
	c.Tracer.Emit(c.Hive.Eng.Now(), trace.Panic, 0, 0, "fail-stop hardware fault injected")
	for _, n := range c.Nodes {
		c.Hive.M.Nodes[n].FailStop()
	}
	c.shutdownKernel()
	// If the cell was a member of an in-flight recovery round, the
	// barriers must stop waiting for it.
	c.Hive.Coord.CellDiedMidRound(c.ID)
}

// Panic is the software crash path: the cell stops itself, engaging the
// memory cutoff so potentially corrupt data cannot spread (Table 8.1).
// The teardown runs from engine context so a kernel task may panic its own
// cell and unwind cleanly.
func (c *Cell) Panic(reason string) {
	if eng := c.EP.Engine(); eng.Cluster() != nil && eng.ShardID() != 0 {
		// Sharded run, panicking from the cell's own shard: c.failed and
		// the node cutoff flags are cross-shard-readable, so the whole
		// teardown runs in the global phase (every cell shard quiescent).
		eng.SendGlobal(func() {
			if c.failed {
				return
			}
			c.failed = true
			c.Tracer.Emit(c.Hive.Eng.Now(), trace.Panic, 0, 0, reason)
			c.Metrics.Counter("cell.panics").Inc()
			for _, n := range c.Nodes {
				c.Hive.M.Nodes[n].EngageCutoff()
			}
			c.shutdownKernel()
			c.Hive.Coord.CellDiedMidRound(c.ID)
		})
		return
	}
	if c.failed {
		return
	}
	c.failed = true
	c.Tracer.Emit(c.Hive.Eng.Now(), trace.Panic, 0, 0, reason)
	c.Metrics.Counter("cell.panics").Inc()
	for _, n := range c.Nodes {
		c.Hive.M.Nodes[n].EngageCutoff()
	}
	c.Hive.Eng.At(c.Hive.Eng.Now(), func() {
		c.shutdownKernel()
		c.Hive.Coord.CellDiedMidRound(c.ID)
	})
}

// ForceStop implements the consensus-gated stop of a cell the survivors
// declared dead (the "reboot" of §4.3): processes killed, services down,
// memory cut off.
func (c *Cell) ForceStop(reason string) {
	if c.failed {
		return
	}
	c.failed = true
	// Death marker: without it a cell the survivors stopped (e.g. one
	// corrupted but never self-panicking) would die invisibly in the trace.
	c.Tracer.Emit(c.Hive.Now(), trace.Panic, 0, 0, "stopped by survivor consensus: "+reason)
	for _, n := range c.Nodes {
		c.Hive.M.Nodes[n].EngageCutoff()
	}
	c.shutdownKernel()
	c.Hive.Coord.CellDiedMidRound(c.ID)
}

// shutdownKernel kills processes and stops services.
func (c *Cell) shutdownKernel() {
	c.Procs.KillAll()
	c.EP.Shutdown()
	c.Mon.Stop()
	if c.ClockHand != nil {
		// The paging daemon's writeback closure captures this cell; left
		// running it would keep sweeping the dead incarnation's VM (and,
		// after a microboot, mix old-VM sweeps into the fresh image).
		c.ClockHand.Stop()
	}
}

// Microboot rebuilds a stopped cell's kernel in place on its repaired
// nodes — the first half of reintegration (§4.3): hardware repaired, the
// kernel arena emptied, every subsystem reconstructed on the same *Cell
// the rest of the system holds, firewall write permissions re-opened to
// the cell's own processors, and the RPC and process-table meshes rewired.
// The cell does NOT return to the live set and its monitor stays stopped:
// until a membership join round commits, the fresh image is untrusted —
// peers only ever see it through the validated RPC boundary. The Rebooter
// drives Microboot + join; Reboot below is the direct legacy path.
func (c *Cell) Microboot() {
	for _, n := range c.Nodes {
		c.Hive.M.Nodes[n].Repair()
	}
	c.Hive.Space.Arena(c.ID).Reset()
	c.failed, c.corrupt = false, false
	c.PlaceTargets = nil // stale pre-fault hints do not survive the reboot
	c.Hive.buildCell(c)
	c.boots++
	c.EP.SetIncarnation(c.boots)
	rpc.Connect(endpoints(c.Hive.Cells)...)
	tables := make([]*proc.Table, len(c.Hive.Cells))
	for i, cc := range c.Hive.Cells {
		tables[i] = cc.Procs
	}
	proc.ConnectTables(tables...)
}

// Reboot restores a stopped cell to service with a fresh kernel state
// (reintegration, §4.3) without a join round — the synchronous path used
// when the harness itself plays recovery master. The hardware is repaired
// here; the full availability loop (microboot + coordinated join + warm-up)
// lives in the Rebooter.
func (c *Cell) Reboot() {
	c.Microboot()
	c.Hive.Coord.Reintegrate(c.ID)
	c.Mon.Start()
	for _, peer := range c.Hive.Cells {
		if peer.ID != c.ID && !peer.Failed() {
			peer.VM.DropPeerState(c.ID)
		}
	}
}

// Now returns the current virtual time.
func (h *Hive) Now() sim.Time {
	if h.Clu != nil {
		return h.Clu.Now()
	}
	return h.Eng.Now()
}

// Run advances the simulation to the given deadline (0 = until idle).
// Note: the cells' clock tasks tick forever, so a deadline is required for
// a booted Hive.
func (h *Hive) Run(deadline sim.Time) sim.Time {
	if h.Clu != nil {
		return h.Clu.Run(deadline)
	}
	return h.Eng.Run(deadline)
}

// RunUntil advances simulation in 1 ms steps until cond holds or the
// deadline passes, reporting whether cond held.
func (h *Hive) RunUntil(cond func() bool, deadline sim.Time) bool {
	for h.Now() < deadline {
		if cond() {
			return true
		}
		h.Run(h.Now() + sim.Millisecond)
	}
	return cond()
}

// LiveCells returns the cells not failed.
func (h *Hive) LiveCells() []*Cell {
	var out []*Cell
	for _, c := range h.Cells {
		if !c.failed {
			out = append(out, c)
		}
	}
	return out
}

// CellName labels a cell for diagnostics.
func (c *Cell) String() string { return fmt.Sprintf("cell%d(nodes %v)", c.ID, c.Nodes) }

// Wax hint intake. Each cell protects itself by sanity-checking the inputs
// it receives from Wax (§3.2): a damaged Wax may cost performance, never
// correctness.

// ApplyAllocTargets installs Wax's page-allocation borrow targets after
// validating them (live, distinct, not self, bounded count).
func (c *Cell) ApplyAllocTargets(targets []int) error {
	if len(targets) > len(c.Hive.Cells) {
		return fmt.Errorf("core: hint rejected: %d targets", len(targets))
	}
	seen := map[int]bool{}
	for _, tc := range targets {
		if tc < 0 || tc >= len(c.Hive.Cells) || tc == c.ID || seen[tc] || c.Hive.Cells[tc].Failed() {
			c.Metrics.Counter("cell.wax_hints_rejected").Inc()
			c.Tracer.Emit(c.EP.Engine().Now(), trace.WaxHint, int64(tc), 0, "alloc-targets")
			return fmt.Errorf("core: hint rejected: bad target %d", tc)
		}
		seen[tc] = true
	}
	c.VM.AllocTargets = append([]int(nil), targets...)
	c.Metrics.Counter("cell.wax_hints_applied").Inc()
	c.Tracer.Emit(c.EP.Engine().Now(), trace.WaxHint, int64(len(targets)), 1, "alloc-targets")
	return nil
}

// ApplyPlaceTargets installs Wax's process-placement spill targets after
// the same validation as the allocation hint (live, distinct, not self,
// bounded count). Dispatchers consult the list when the natural home for
// a piece of work is failed or saturated.
func (c *Cell) ApplyPlaceTargets(targets []int) error {
	if len(targets) > len(c.Hive.Cells) {
		return fmt.Errorf("core: hint rejected: %d targets", len(targets))
	}
	seen := map[int]bool{}
	for _, tc := range targets {
		if tc < 0 || tc >= len(c.Hive.Cells) || tc == c.ID || seen[tc] || c.Hive.Cells[tc].Failed() {
			c.Metrics.Counter("cell.wax_hints_rejected").Inc()
			c.Tracer.Emit(c.EP.Engine().Now(), trace.WaxHint, int64(tc), 0, "place-targets")
			return fmt.Errorf("core: hint rejected: bad target %d", tc)
		}
		seen[tc] = true
	}
	c.PlaceTargets = append([]int(nil), targets...)
	c.Metrics.Counter("cell.wax_hints_applied").Inc()
	c.Tracer.Emit(c.EP.Engine().Now(), trace.WaxHint, int64(len(targets)), 1, "place-targets")
	return nil
}

// ApplyClockHand asks this cell's clock hand to preferentially free pages
// whose memory home is the pressured cell; it reports whether any idle
// borrowed frames were returned.
func (c *Cell) ApplyClockHand(t *sim.Task, pressuredHome int) bool {
	if pressuredHome < 0 || pressuredHome >= len(c.Hive.Cells) ||
		pressuredHome == c.ID || c.Hive.Cells[pressuredHome].Failed() {
		c.Metrics.Counter("cell.wax_hints_rejected").Inc()
		c.Tracer.Emit(c.EP.Engine().Now(), trace.WaxHint, int64(pressuredHome), 0, "clock-hand")
		return false
	}
	c.Metrics.Counter("cell.wax_hints_applied").Inc()
	c.Tracer.Emit(c.EP.Engine().Now(), trace.WaxHint, int64(pressuredHome), 1, "clock-hand")
	return c.VM.ReturnUnusedBorrows(t, pressuredHome) > 0
}

// ApplyGang space-shares n processors per Wax's gang-scheduling hint.
func (c *Cell) ApplyGang(n int) bool {
	if n < 0 || n >= len(c.Sched.Procs) {
		c.Metrics.Counter("cell.wax_hints_rejected").Inc()
		c.Tracer.Emit(c.EP.Engine().Now(), trace.WaxHint, int64(n), 0, "gang")
		return false
	}
	c.Metrics.Counter("cell.wax_hints_applied").Inc()
	c.Tracer.Emit(c.EP.Engine().Now(), trace.WaxHint, int64(n), 1, "gang")
	return c.Sched.Reserve(n)
}
