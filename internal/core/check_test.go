// check_test.go — one seeded corruption per CheckInvariants class. Each
// test builds healthy cross-cell sharing (audit silent), then mutates one
// piece of kernel state through the shared pfdat pointers and demands the
// auditor name the violation. The checker is the harness's corruption
// oracle; a class it cannot see is a containment failure the campaign
// would silently miss.
package core

import (
	"strings"
	"testing"

	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/vm"
)

// newSharingHive boots a hive, has a process on cell 0 import a file page
// served by cell 1 (writable), and returns the hive plus cell 0's imported
// pfdat. The audit must be silent at this baseline.
func newSharingHive(t *testing.T) (*Hive, *vm.Pfdat) {
	t.Helper()
	h := Boot(testConfig())
	var imported *vm.Pfdat
	done := false
	h.Cells[0].Procs.Spawn("driver", 1, func(p *proc.Process, tk *sim.Task) {
		hd, err := h.Cells[1].FS.Create(tk, "/shared/f")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if err := h.Cells[1].FS.Write(tk, hd, 4, 3); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		lp := vm.LogicalPage{Obj: vm.ObjID{Kind: vm.FileObj, Home: 1, Num: uint64(hd.Key.ID)}}
		imported, err = p.MapShared(tk, lp, true)
		if err != nil {
			t.Errorf("map: %v", err)
			return
		}
		done = true
		for {
			p.Compute(tk, 10*sim.Millisecond) // keep the mapping referenced
		}
	})
	if !h.RunUntil(func() bool { return done }, sim.Second) {
		t.Fatal("sharing setup never finished")
	}
	if imported == nil || imported.ImportedFrom != 1 {
		t.Fatalf("no import established: %+v", imported)
	}
	if bad := h.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("audit not silent on healthy sharing:\n%s", joinLines(bad))
	}
	return h, imported
}

// expectViolation asserts the audit reports at least one violation
// containing want.
func expectViolation(t *testing.T, h *Hive, want string) {
	t.Helper()
	bad := h.CheckInvariants()
	for _, msg := range bad {
		if strings.Contains(msg, want) {
			return
		}
	}
	t.Fatalf("audit missed the seeded corruption: want %q in:\n%s", want, joinLines(bad))
}

func TestCheckCatchesNegativeRefs(t *testing.T) {
	// Class 1, hash/frames coherence: a reference count driven below zero.
	h, pf := newSharingHive(t)
	pf.Refs = -1
	expectViolation(t, h, "negative refs")
}

func TestCheckCatchesFreeFrameStillBound(t *testing.T) {
	// Class 2, free-pool hygiene: a frame both free and bound to a page.
	h, _ := newSharingHive(t)
	free := h.Cells[0].VM.FreeList()
	if len(free) == 0 {
		t.Fatal("no free frames")
	}
	pf, ok := h.Cells[0].VM.PfdatFor(free[0])
	if !ok {
		t.Fatalf("free frame %d has no pfdat", free[0])
	}
	pf.Valid = true
	expectViolation(t, h, "still bound")
}

func TestCheckCatchesDoubleOwnership(t *testing.T) {
	// Class 3, ownership: cell 0 claims to have borrowed the frame that
	// cell 1 still controls as its unloaned home.
	h, pf := newSharingHive(t)
	pf.BorrowedFrom = 1
	expectViolation(t, h, "controlled by both")
}

func TestCheckCatchesImportWithoutExport(t *testing.T) {
	// Class 4, export/import symmetry: the import record names a home that
	// never exported the page.
	h, pf := newSharingHive(t)
	pf.ImportedFrom = 2
	expectViolation(t, h, "no export record")
}

func TestCheckCatchesFirewallOpenWithoutGrant(t *testing.T) {
	// Class 5, firewall soundness: a local frame writable by a remote cell
	// that holds neither an export nor a loan.
	h, _ := newSharingHive(t)
	free := h.Cells[0].VM.FreeList()
	if len(free) == 0 {
		t.Fatal("no free frames")
	}
	frame := free[0]
	mask := uint64(0)
	for _, n := range h.Cells[2].Nodes {
		mask |= h.M.NodeProcMask(n)
	}
	done := false
	h.Cells[0].Procs.Spawn("opener", 2, func(p *proc.Process, tk *sim.Task) {
		if err := h.M.GrantWrite(tk, h.M.Procs[0], frame, mask); err != nil {
			t.Errorf("grant: %v", err)
			return
		}
		done = true
	})
	if !h.RunUntil(func() bool { return done }, sim.Second) {
		t.Fatal("grant never ran")
	}
	expectViolation(t, h, "without export or loan")
}
