package cow

import (
	"fmt"

	"repro/internal/kmem"
	"repro/internal/rpc"
	"repro/internal/sim"
)

// The §5.3 ablation. The paper built the distributed COW tree as an
// experiment in shared-memory kernel data structures and concluded:
// "A more conventional RPC-based approach would be simpler and probably
// just as fast, at least for the workloads we evaluated." This file
// implements that conventional approach so the claim can be measured:
// instead of careful remote reads, the searching cell asks each remote
// cell (by RPC) to walk its own local portion of the tree.

// LookupMode selects the cross-cell search implementation.
type LookupMode int

const (
	// SharedMemory walks remote nodes directly with the careful
	// reference protocol (the paper's implementation).
	SharedMemory LookupMode = iota
	// RPCWalk sends a lookup RPC to each remote cell, which walks its
	// local chain (the conventional alternative).
	RPCWalk
)

// ProcTreeLookup is the RPC-walk service (range 140-159).
const ProcTreeLookup rpc.ProcID = 141

// treeLookupArgs asks a cell to search its local chain from Start.
type treeLookupArgs struct {
	Start kmem.Addr
	Off   int64
}

// treeLookupReply reports the outcome: the holding node, or the first
// pointer leaving the serving cell (NilAddr when the chain ends).
type treeLookupReply struct {
	Found bool
	Node  kmem.Addr
	Next  kmem.Addr
}

// LookupVia performs Lookup under an explicit mode (the Manager's Mode
// field selects the default used by Touch).
func (mg *Manager) LookupVia(t *sim.Task, mode LookupMode, leaf kmem.Addr, off int64) (kmem.Addr, bool, error) {
	if mode == SharedMemory {
		return mg.Lookup(t, leaf, off)
	}
	return mg.lookupRPC(t, leaf, off)
}

// lookupRPC is the conventional implementation: local walking plus one RPC
// per remote cell visited.
func (mg *Manager) lookupRPC(t *sim.Task, leaf kmem.Addr, off int64) (kmem.Addr, bool, error) {
	cur := leaf
	for hops := 0; hops < MaxDepth && cur != kmem.NilAddr; hops++ {
		if cur.Cell() == mg.CellID {
			node, found, next, err := mg.walkLocal(t, cur, off)
			if err != nil {
				mg.localDamage(err.Error())
				return 0, false, err
			}
			if found {
				return node, true, nil
			}
			cur = next
			continue
		}
		res, err := mg.EP.Call(t, mg.proc(), cur.Cell(), ProcTreeLookup,
			&treeLookupArgs{Start: cur, Off: off}, rpc.CallOpts{DataBytes: 24})
		if err != nil {
			return 0, false, fmt.Errorf("%w: lookup RPC: %v", ErrTreeDamaged, err)
		}
		rep, err := validateTreeLookupReply(res, cur.Cell())
		if err != nil {
			return 0, false, err
		}
		if rep.Found {
			return rep.Node, true, nil
		}
		cur = rep.Next
	}
	if cur != kmem.NilAddr {
		return 0, false, fmt.Errorf("%w: RPC walk exceeded hop bound", ErrTreeDamaged)
	}
	return 0, false, nil
}

// validateTreeLookupReply sanity-checks a tree-lookup reply as message
// data (§3.1): a found node must belong to the serving cell, and a
// not-found reply's next pointer must actually leave that cell — a
// corrupt server must neither plant pointers into third cells' trees
// nor trap the walker in a loop on its own.
func validateTreeLookupReply(res any, server int) (*treeLookupReply, error) {
	rep, ok := res.(*treeLookupReply)
	if !ok {
		return nil, fmt.Errorf("%w: bad lookup reply", ErrTreeDamaged)
	}
	if rep.Found && rep.Node.Cell() != server {
		return nil, fmt.Errorf("%w: reply node %v not on cell %d",
			ErrTreeDamaged, rep.Node, server)
	}
	if !rep.Found && rep.Next != kmem.NilAddr && rep.Next.Cell() == server {
		return nil, fmt.Errorf("%w: server returned non-progressing next", ErrTreeDamaged)
	}
	return rep, nil
}

// walkLocal searches this cell's chain from start, stopping at the first
// pointer that leaves the cell.
func (mg *Manager) walkLocal(t *sim.Task, start kmem.Addr, off int64) (node kmem.Addr, found bool, next kmem.Addr, err error) {
	a := mg.arena()
	cur := start
	for depth := 0; depth < MaxDepth && cur != kmem.NilAddr && cur.Cell() == mg.CellID; depth++ {
		mg.proc().Use(t, localVisit)
		tag, terr := a.TagAt(cur)
		if terr != nil || tag != TagNode {
			return 0, false, 0, fmt.Errorf("%w: node %v bad tag", ErrTreeDamaged, cur)
		}
		count, _ := a.ReadWord(cur, wordCount)
		if int(count) > MaxEntries {
			return 0, false, 0, fmt.Errorf("%w: node %v bad count", ErrTreeDamaged, cur)
		}
		for i := 0; i < int(count); i++ {
			v, _ := a.ReadWord(cur, wordPages+i)
			if int64(v) == off {
				return cur, true, 0, nil
			}
		}
		parent, _ := a.ReadWord(cur, wordParent)
		cur = kmem.Addr(parent)
	}
	if cur != kmem.NilAddr && cur.Cell() == mg.CellID {
		return 0, false, 0, fmt.Errorf("%w: local walk exceeded depth bound", ErrTreeDamaged)
	}
	return 0, false, cur, nil
}

// validateTreeLookupArgs vets a remote-walk request: the start node must
// be an address in this cell's arena (a corrupt peer must not steer the
// walk through another cell's address range).
func (mg *Manager) validateTreeLookupArgs(req *rpc.Request) (*treeLookupArgs, error) {
	args, ok := req.Args.(*treeLookupArgs)
	if !ok || args.Start.Cell() != mg.CellID {
		return nil, ErrBadArgs
	}
	return args, nil
}

// registerLookupService installs the RPC-walk server (called from
// registerServices). The walk is memory-only, so it is served at interrupt
// level like the page-fault fast path.
func (mg *Manager) registerLookupService() {
	mg.EP.Register(ProcTreeLookup, "cow.treelookup",
		func(req *rpc.Request) (any, sim.Time, bool, error) {
			args, err := mg.validateTreeLookupArgs(req)
			if err != nil {
				return nil, 0, true, err
			}
			// The interrupt handler cannot charge per-node time as a
			// task; estimate the visit cost into the service charge.
			a := mg.arena()
			cur := args.Start
			var visits sim.Time
			for depth := 0; depth < MaxDepth && cur != kmem.NilAddr && cur.Cell() == mg.CellID; depth++ {
				visits += localVisit
				tag, terr := a.TagAt(cur)
				if terr != nil || tag != TagNode {
					mg.localDamage(fmt.Sprintf("node %v bad tag (lookup service)", cur))
					return nil, visits, true, ErrTreeDamaged
				}
				count, _ := a.ReadWord(cur, wordCount)
				if int(count) > MaxEntries {
					mg.localDamage(fmt.Sprintf("node %v bad count (lookup service)", cur))
					return nil, visits, true, ErrTreeDamaged
				}
				for i := 0; i < int(count); i++ {
					v, _ := a.ReadWord(cur, wordPages+i)
					if int64(v) == off64(args.Off) {
						return &treeLookupReply{Found: true, Node: cur}, visits, true, nil
					}
				}
				parent, _ := a.ReadWord(cur, wordParent)
				cur = kmem.Addr(parent)
			}
			if cur != kmem.NilAddr && cur.Cell() == mg.CellID {
				return nil, visits, true, ErrTreeDamaged
			}
			return &treeLookupReply{Next: cur}, visits, true, nil
		}, nil, rpc.Idempotent())
}

func off64(v int64) int64 { return v }
