// Package cow implements the distributed copy-on-write trees that manage
// anonymous (swap-backed) pages, following §5.3 of the paper. The tree
// structure is the IRIX/Mach design: an anonymous page is recorded at the
// leaf node current when it was written; forking splits the leaf into two
// new leaves (one for parent, one for child); a faulting process searches
// up the tree for the copy made by the nearest ancestor.
//
// In Hive the parent and child may be on different cells, so tree pointers
// cross cell boundaries. The paper's experiment: keep the tree intact and
// let lookups traverse remote nodes with the careful reference protocol —
// the interior nodes are never modified by readers, so no wild-write
// vulnerability is created. Nodes live in kmem arenas so remote traversal
// is exposed to garbage pointers, stale tags, and bus errors, exactly as
// the §7.4 fault injections require.
package cow

import (
	"errors"
	"fmt"

	"repro/internal/careful"
	"repro/internal/disk"
	"repro/internal/kmem"
	"repro/internal/machine"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vm"
)

// TagNode is the allocator type tag for COW tree nodes (§4.1: checked by
// the careful reference protocol on every remote node visit).
const TagNode kmem.TypeTag = 0xC07E

// MaxEntries bounds the anonymous pages recorded per node.
const MaxEntries = 4096

// Node word layout.
const (
	wordParent = 0 // parent node address (kmem.Addr), 0 at the root
	wordCount  = 1 // number of page entries
	wordPages  = 2 // entries: one word per entry, the page offset
	nodeWords  = wordPages + MaxEntries
)

// MaxDepth bounds upward traversals (loop defense).
const MaxDepth = 64

// Traversal costs (ns): local node visits are cache work; remote visits go
// through the careful reference protocol which charges itself.
const localVisit sim.Time = 300

// Errors.
var (
	// ErrTreeDamaged is returned when the careful protocol rejected a
	// remote node during the search.
	ErrTreeDamaged = errors.New("cow: tree damaged (careful reference failed)")
	// ErrNodeFull means a leaf exceeded MaxEntries.
	ErrNodeFull = errors.New("cow: leaf node full")
	// ErrBadArgs is a server-side sanity rejection.
	ErrBadArgs = errors.New("cow: bad request arguments")
)

// RPC procedure numbers (range 140-159).
const (
	// ProcMakeLeaf asks a cell to allocate a leaf node for a forked
	// child process migrating there.
	ProcMakeLeaf rpc.ProcID = 140 + iota
)

// Manager is one cell's COW tree manager.
type Manager struct {
	CellID  int
	M       *machine.Machine
	EP      *rpc.Endpoint
	VM      *vm.VM
	Space   *kmem.Space
	Reader  *careful.Reader
	Metrics *stats.Registry

	// Mode selects the cross-cell lookup implementation (§5.3 ablation);
	// the default is the paper's shared-memory traversal.
	Mode LookupMode

	// Swap backing (see swap.go).
	swapDisk  *disk.Drive
	swapBase  int64
	swapMap   map[swapKey]uint64
	swapSlots map[swapKey]int64

	// OnLocalDamage is invoked when this cell's own kernel data fails a
	// consistency check during a local traversal — the kernel has
	// detected its own corruption and panics (§4.1: cells normally
	// panic on internal corruption; only *remote* reads are careful).
	OnLocalDamage func(reason string)
}

func (mg *Manager) localDamage(reason string) {
	mg.Metrics.Counter("cow.local_damage").Inc()
	if mg.OnLocalDamage != nil {
		mg.OnLocalDamage(reason)
	}
}

// New creates the manager and registers it as the VM's anonymous-page
// resolver and its RPC services.
func New(m *machine.Machine, ep *rpc.Endpoint, v *vm.VM, space *kmem.Space, reader *careful.Reader, cellID int) *Manager {
	mg := &Manager{
		CellID: cellID, M: m, EP: ep, VM: v, Space: space, Reader: reader,
		Metrics: stats.NewRegistry(),
	}
	v.SetResolver(vm.AnonObj, mg)
	mg.registerServices()
	mg.registerLookupService()
	return mg
}

func (mg *Manager) arena() *kmem.Arena { return mg.Space.Arena(mg.CellID) }

func (mg *Manager) proc() *machine.Processor {
	for _, p := range mg.EP.Procs {
		if !p.Halted() {
			return p
		}
	}
	return mg.EP.Procs[0]
}

// NewRoot allocates a fresh tree root/leaf for a new address space.
func (mg *Manager) NewRoot() kmem.Addr {
	return mg.arena().Alloc(TagNode, nodeWords)
}

// FreeNode releases a node (process exit tears down its leaf).
func (mg *Manager) FreeNode(addr kmem.Addr) { mg.arena().Free(addr) }

// Fork splits leaf into two new leaves — one stays with the parent process
// (on this cell), the other belongs to the child on childCell (allocated
// there by RPC when remote, keeping every process's leaf local to it).
// Pages recorded in the old leaf (now interior) are visible to both.
func (mg *Manager) Fork(t *sim.Task, leaf kmem.Addr, childCell int) (parentLeaf, childLeaf kmem.Addr, err error) {
	parentLeaf = mg.arena().Alloc(TagNode, nodeWords)
	mg.arena().WriteWord(parentLeaf, wordParent, uint64(leaf))
	if childCell == mg.CellID {
		childLeaf = mg.arena().Alloc(TagNode, nodeWords)
		mg.arena().WriteWord(childLeaf, wordParent, uint64(leaf))
		return parentLeaf, childLeaf, nil
	}
	res, err := mg.EP.Call(t, mg.proc(), childCell, ProcMakeLeaf,
		&makeLeafArgs{Parent: leaf}, rpc.CallOpts{DataBytes: 16})
	if err != nil {
		mg.arena().Free(parentLeaf)
		return 0, 0, err
	}
	childLeaf, err = validateMakeLeafReply(res, childCell)
	if err != nil {
		mg.arena().Free(parentLeaf)
		return 0, 0, err
	}
	mg.Metrics.Counter("cow.remote_forks").Inc()
	return parentLeaf, childLeaf, nil
}

// validateMakeLeafReply vets a makeleaf reply before the leaf address a
// peer chose becomes a process's address-space root: the reply must be
// well-formed and the leaf must live on the cell we asked — a corrupt
// peer must not hand back a pointer into a third cell's tree.
func validateMakeLeafReply(res any, childCell int) (kmem.Addr, error) {
	rep, ok := res.(*makeLeafReply)
	if !ok || rep.Leaf.Cell() != childCell {
		return 0, ErrBadArgs
	}
	return rep.Leaf, nil
}

// Record registers an anonymous page at the given local leaf (a process
// wrote a copy-on-write page; the new copy belongs to its current leaf).
func (mg *Manager) Record(leaf kmem.Addr, off int64) error {
	a := mg.arena()
	count, _ := a.ReadWord(leaf, wordCount)
	if int(count) >= MaxEntries {
		return ErrNodeFull
	}
	a.WriteWord(leaf, wordPages+int(count), uint64(off))
	a.WriteWord(leaf, wordCount, count+1)
	return nil
}

// LP builds the logical page id for an anonymous page recorded at node:
// the node's owning cell is the data home (§5.3).
func LP(node kmem.Addr, off int64) vm.LogicalPage {
	return vm.LogicalPage{
		Obj: vm.ObjID{Kind: vm.AnonObj, Home: node.Cell(), Num: uint64(node)},
		Off: off,
	}
}

// Lookup searches from leaf up the tree for the node holding page off.
// Local nodes are read directly; remote nodes through the careful reference
// protocol (§5.3). found=false means the page was never written by any
// ancestor (zero-fill at the caller's leaf).
//
// Damage attribution follows pointer provenance: a bad pointer read from
// one of this cell's own nodes means *our* kernel data is corrupt (panic);
// a bad pointer supplied by a remote cell's node is evidence against that
// cell — the reader survives and raises a hint against the supplier, not
// against whatever innocent cell the wild pointer happens to address.
func (mg *Manager) Lookup(t *sim.Task, leaf kmem.Addr, off int64) (node kmem.Addr, found bool, err error) {
	cur := leaf
	supplier := mg.CellID // the process table supplied the leaf pointer
	fail := func(format string, args ...any) error {
		e := fmt.Errorf("%w: "+format, append([]any{ErrTreeDamaged}, args...)...)
		if supplier == mg.CellID {
			mg.localDamage(e.Error())
		} else if mg.Reader.HintSink != nil {
			mg.Reader.HintSink(supplier, "supplied bad COW pointer: "+e.Error())
		}
		return e
	}
	for depth := 0; depth < MaxDepth && cur != kmem.NilAddr; depth++ {
		if cur.Cell() == mg.CellID {
			// Node in our own memory: direct reads, but trust the
			// contents only as far as the pointer's supplier.
			mg.proc().Use(t, localVisit)
			a := mg.arena()
			tag, terr := a.TagAt(cur)
			if terr != nil || tag != TagNode {
				return 0, false, fail("node %v bad tag", cur)
			}
			count, _ := a.ReadWord(cur, wordCount)
			if int(count) > MaxEntries {
				return 0, false, fail("node %v bad count %d", cur, count)
			}
			for i := 0; i < int(count); i++ {
				v, _ := a.ReadWord(cur, wordPages+i)
				if int64(v) == off {
					return cur, true, nil
				}
			}
			parent, _ := a.ReadWord(cur, wordParent)
			supplier = mg.CellID
			cur = kmem.Addr(parent)
			continue
		}

		// Remote node: careful reference protocol (§4.1).
		mg.Metrics.Counter("cow.remote_visits").Inc()
		ctx := mg.Reader.On(t, mg.proc(), cur.Cell())
		ctx.SetLoopBound(MaxDepth)
		var hit, badCount bool
		var next kmem.Addr
		if ctx.CheckAddr(cur) && ctx.CheckTag(cur, TagNode) {
			// Copy the header and entries to local memory before
			// sanity checks (protocol step 3).
			count := ctx.ReadWord(cur, wordCount)
			if count <= MaxEntries {
				snap := ctx.CopyObject(cur, wordPages+int(count))
				if snap != nil {
					for i := 0; i < int(count); i++ {
						if int64(snap[wordPages+i]) == off {
							hit = true
							break
						}
					}
					next = kmem.Addr(snap[wordParent])
				}
			} else {
				badCount = true // garbage count: consistency failure
			}
		}
		if cerr := ctx.Off(); cerr != nil {
			if errors.Is(cerr, careful.ErrBusError) {
				// The target node/cell failed mid-read. That is the
				// machine fault model at work, not corruption: the
				// careful window already raised the hint; survive.
				return 0, false, fmt.Errorf("%w: careful read of %v: %v",
					ErrTreeDamaged, cur, cerr)
			}
			// Consistency failure: fail() assigns provenance blame.
			return 0, false, fail("careful read of %v: %v", cur, cerr)
		}
		if badCount {
			supplierWas := supplier
			supplier = cur.Cell() // the node itself is the bad data
			e := fail("node %v count fails sanity check", cur)
			supplier = supplierWas
			return 0, false, e
		}
		if hit {
			return cur, true, nil
		}
		supplier = cur.Cell()
		cur = next
	}
	if cur != kmem.NilAddr {
		return 0, false, fail("traversal exceeded depth bound at %v", cur)
	}
	return 0, false, nil
}

// Touch services a process's access to anonymous page off from its leaf:
// it finds the page (or zero-fills at the leaf), performs copy-on-write for
// writes to ancestor pages, and returns the pfdat the process maps. The
// caller must Unref it when unmapping.
func (mg *Manager) Touch(t *sim.Task, leaf kmem.Addr, off int64, write bool) (*vm.Pfdat, error) {
	node, found, err := mg.LookupVia(t, mg.Mode, leaf, off)
	if err != nil {
		return nil, err
	}
	if !found {
		// Never written: materialize a zero page at the local leaf.
		if err := mg.Record(leaf, off); err != nil {
			return nil, err
		}
		mg.Metrics.Counter("cow.zero_fills").Inc()
		return mg.VM.Fault(t, LP(leaf, off), write)
	}
	if write && node != leaf {
		// Copy-on-write: read the ancestor's copy, write a new page
		// at our leaf.
		src, err := mg.VM.Fault(t, LP(node, off), false)
		if err != nil {
			return nil, err
		}
		tag, _, rerr := mg.M.ReadPage(t, mg.proc(), src.Frame)
		mg.VM.Unref(t, src)
		if rerr != nil {
			return nil, rerr
		}
		if err := mg.Record(leaf, off); err != nil {
			return nil, err
		}
		dst, err := mg.VM.Fault(t, LP(leaf, off), true)
		if err != nil {
			return nil, err
		}
		if err := mg.M.WritePage(t, mg.proc(), dst.Frame, tag); err != nil {
			mg.VM.Unref(t, dst)
			return nil, err
		}
		mg.Metrics.Counter("cow.copies").Inc()
		return dst, nil
	}
	return mg.VM.Fault(t, LP(node, off), write)
}

// ResolvePage implements vm.Resolver for anonymous pages: the data home
// (the node's owner) materializes the page; clients import it — the same
// export/import machinery as file pages (§5.3).
func (mg *Manager) ResolvePage(t *sim.Task, lp vm.LogicalPage, write bool) (*vm.Pfdat, error) {
	if lp.Obj.Home == mg.CellID {
		if pf, ok := mg.VM.Lookup(lp); ok {
			return pf, nil
		}
		// Materialize: from swap if the page was evicted there, else
		// zero-filled (tag 0).
		frame, err := mg.VM.AllocFrame(t, vm.AllocOpts{})
		if err != nil {
			return nil, err
		}
		tag, _ := mg.swapIn(t, lp)
		if err := mg.M.WritePage(t, mg.proc(), frame, tag); err != nil {
			return nil, err
		}
		return mg.VM.InsertLocal(lp, frame, false), nil
	}
	mg.proc().Use(t, vm.FSClientCost)
	return mg.VM.ImportRemote(t, lp, write)
}

// auditOff is a page offset no node ever records (offsets are
// non-negative), so a Lookup with it walks and validates a node's entire
// ancestor chain without matching anything.
const auditOff int64 = -1

// Audit runs the cell's kernel consistency check over the copy-on-write
// forest: every live node in the local arena has its full ancestor chain
// walked with the same checks as a lookup — type tag, entry count, the
// depth bound that catches pointer cycles, and careful remote reads for
// chains that cross cells. This is the paper's aggressive failure
// detection: damage a workload never happens to touch again must still be
// found, and a cell that finds its own kernel data damaged panics
// (OnLocalDamage fires per damaged chain). Returns the damaged-chain
// count.
func (mg *Manager) Audit(t *sim.Task) int {
	var nodes []kmem.Addr
	mg.arena().EachTagged(TagNode, func(a kmem.Addr) { nodes = append(nodes, a) })
	damaged := 0
	for _, n := range nodes {
		if _, _, err := mg.Lookup(t, n, auditOff); err != nil {
			damaged++
		}
	}
	return damaged
}

// CorruptParent overwrites a node's parent pointer — the §7.4 software
// fault injection for the copy-on-write tree.
func (mg *Manager) CorruptParent(node kmem.Addr, val uint64) bool {
	return mg.Space.Arena(node.Cell()).CorruptWord(node, wordParent, val)
}

// makeLeafArgs / makeLeafReply drive ProcMakeLeaf.
type makeLeafArgs struct {
	Parent kmem.Addr
}
type makeLeafReply struct {
	Leaf kmem.Addr
}

// validateMakeLeafArgs vets a makeleaf request before the parent address
// it carries is written into this cell's arena: the request must be
// well-formed and the parent must belong to the calling cell — a corrupt
// peer must not be able to graft a leaf under a third cell's tree.
func validateMakeLeafArgs(req *rpc.Request) (*makeLeafArgs, error) {
	args, ok := req.Args.(*makeLeafArgs)
	if !ok || args.Parent == kmem.NilAddr {
		return nil, ErrBadArgs
	}
	if args.Parent.Cell() != req.From {
		return nil, ErrBadArgs
	}
	return args, nil
}

func (mg *Manager) registerServices() {
	mg.EP.Register(ProcMakeLeaf, "cow.makeleaf",
		func(req *rpc.Request) (any, sim.Time, bool, error) {
			args, err := validateMakeLeafArgs(req)
			if err != nil {
				return nil, 0, true, err
			}
			leaf := mg.arena().Alloc(TagNode, nodeWords)
			mg.arena().WriteWord(leaf, wordParent, uint64(args.Parent))
			return &makeLeafReply{Leaf: leaf}, 2000, true, nil
		}, nil)
}
