package cow

import (
	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Swap backing for anonymous pages. The paper's anonymous pages have "their
// backing store in the swap partition" (§5.3); the evaluation workloads
// never page, but the mechanism must exist for the clock hand to evict
// dirty anonymous pages. Each cell owns a swap area on its local disk; the
// swap map records, per (node, offset), the content tag most recently
// written out.

// swapSlotBytes spaces swap slots on disk.
const swapSlotBytes = 4096

// swapKey identifies an anonymous page in the swap map.
type swapKey struct {
	node uint64
	off  int64
}

// EnableSwap attaches a swap area to the manager; without it, dirty
// anonymous pages are simply not evictable.
func (mg *Manager) EnableSwap(d *disk.Drive, baseOffset int64) {
	mg.swapDisk = d
	mg.swapBase = baseOffset
	mg.swapMap = make(map[swapKey]uint64)
}

// SwapOut writes an anonymous page's content to swap — the clock hand's
// writeback hook for AnonObj pages homed on this cell. It reports whether
// the page is now stable.
func (mg *Manager) SwapOut(t *sim.Task, lp vm.LogicalPage) bool {
	if mg.swapDisk == nil || lp.Obj.Kind != vm.AnonObj || lp.Obj.Home != mg.CellID {
		return false
	}
	pf, ok := mg.VM.Lookup(lp)
	if !ok {
		return false
	}
	tag, _ := mg.M.PageTag(pf.Frame)
	key := swapKey{node: lp.Obj.Num, off: lp.Off}
	slot, have := mg.swapSlots[key]
	if !have {
		if mg.swapSlots == nil {
			mg.swapSlots = make(map[swapKey]int64)
		}
		slot = int64(len(mg.swapSlots))
		mg.swapSlots[key] = slot
	}
	mg.swapDisk.Write(t, mg.swapBase+slot*swapSlotBytes, swapSlotBytes)
	mg.swapMap[key] = tag
	mg.Metrics.Counter("cow.swap_outs").Inc()
	return true
}

// swapIn recovers a page's content from swap, if it was ever written out.
func (mg *Manager) swapIn(t *sim.Task, lp vm.LogicalPage) (uint64, bool) {
	if mg.swapMap == nil {
		return 0, false
	}
	key := swapKey{node: lp.Obj.Num, off: lp.Off}
	tag, ok := mg.swapMap[key]
	if !ok {
		return 0, false
	}
	mg.swapDisk.Read(t, mg.swapBase+mg.swapSlots[key]*swapSlotBytes, swapSlotBytes)
	mg.Metrics.Counter("cow.swap_ins").Inc()
	return tag, true
}
