package cow

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/careful"
	"repro/internal/kmem"
	"repro/internal/machine"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/vm"
)

type fixture struct {
	e    *sim.Engine
	m    *machine.Machine
	mgs  []*Manager
	vms  []*vm.VM
	eps  []*rpc.Endpoint
	hint []int
}

func newFixture(t *testing.T, cells int) *fixture {
	t.Helper()
	e := sim.NewEngine(55)
	cfg := machine.DefaultConfig()
	cfg.Nodes = cells
	cfg.MemPerNodeMB = 2
	m := machine.New(e, cfg)
	f := &fixture{e: e, m: m}
	space := kmem.NewSpace(cells)
	cellOfNode := make([]int, cells)
	for i := range cellOfNode {
		cellOfNode[i] = i
	}
	for c := 0; c < cells; c++ {
		node := m.Nodes[c]
		space.Arena(c).Accessible = func() error {
			if node.Failed() || node.CutOff() {
				return kmem.ErrBusError
			}
			return nil
		}
		ep := rpc.NewEndpoint(m, c, []*machine.Processor{m.Procs[c]}, 2)
		f.eps = append(f.eps, ep)
	}
	rpc.Connect(f.eps...)
	for c := 0; c < cells; c++ {
		v := vm.New(m, f.eps[c], c, []int{c}, cellOfNode, 16)
		reader := &careful.Reader{M: m, Space: space,
			HintSink: func(cell int, reason string) { f.hint = append(f.hint, cell) }}
		f.vms = append(f.vms, v)
		f.mgs = append(f.mgs, New(m, f.eps[c], v, space, reader, c))
	}
	return f
}

func (f *fixture) run(t *testing.T, fn func(tk *sim.Task)) {
	t.Helper()
	f.e.Go("test", fn)
	f.e.Run(0)
}

func TestZeroFillAndReadBack(t *testing.T) {
	f := newFixture(t, 1)
	f.run(t, func(tk *sim.Task) {
		leaf := f.mgs[0].NewRoot()
		pf, err := f.mgs[0].Touch(tk, leaf, 5, true)
		if err != nil {
			t.Fatalf("touch: %v", err)
		}
		if err := f.m.WritePage(tk, f.m.Procs[0], pf.Frame, 77); err != nil {
			t.Fatalf("write: %v", err)
		}
		f.vms[0].Unref(tk, pf)
		pf2, err := f.mgs[0].Touch(tk, leaf, 5, false)
		if err != nil {
			t.Fatalf("retouch: %v", err)
		}
		tag, _, _ := f.m.ReadPage(tk, f.m.Procs[0], pf2.Frame)
		if tag != 77 {
			t.Fatalf("tag = %d", tag)
		}
		f.vms[0].Unref(tk, pf2)
	})
}

func TestForkChildSeesParentPages(t *testing.T) {
	f := newFixture(t, 1)
	f.run(t, func(tk *sim.Task) {
		root := f.mgs[0].NewRoot()
		// Parent writes page 3 before forking.
		pf, err := f.mgs[0].Touch(tk, root, 3, true)
		if err != nil {
			t.Fatalf("touch: %v", err)
		}
		f.m.WritePage(tk, f.m.Procs[0], pf.Frame, 123)
		f.vms[0].Unref(tk, pf)

		pLeaf, cLeaf, err := f.mgs[0].Fork(tk, root, 0)
		if err != nil {
			t.Fatalf("fork: %v", err)
		}
		// Child read-faults: finds the pre-fork page in the ancestor.
		node, found, err := f.mgs[0].Lookup(tk, cLeaf, 3)
		if err != nil || !found || node != root {
			t.Fatalf("lookup: node=%v found=%v err=%v", node, found, err)
		}
		_ = pLeaf
	})
}

func TestPostForkWritesInvisibleToChild(t *testing.T) {
	// §5.3: pages written by the parent after the fork are recorded in
	// its new leaf, so only pre-fork pages are visible to the child.
	f := newFixture(t, 1)
	f.run(t, func(tk *sim.Task) {
		root := f.mgs[0].NewRoot()
		pLeaf, cLeaf, _ := f.mgs[0].Fork(tk, root, 0)
		pf, err := f.mgs[0].Touch(tk, pLeaf, 9, true)
		if err != nil {
			t.Fatalf("touch: %v", err)
		}
		f.vms[0].Unref(tk, pf)
		_, found, err := f.mgs[0].Lookup(tk, cLeaf, 9)
		if err != nil {
			t.Fatalf("lookup: %v", err)
		}
		if found {
			t.Fatal("child sees parent's post-fork page")
		}
	})
}

func TestCopyOnWriteCopies(t *testing.T) {
	f := newFixture(t, 1)
	f.run(t, func(tk *sim.Task) {
		root := f.mgs[0].NewRoot()
		pf, _ := f.mgs[0].Touch(tk, root, 1, true)
		f.m.WritePage(tk, f.m.Procs[0], pf.Frame, 50)
		f.vms[0].Unref(tk, pf)
		pLeaf, cLeaf, _ := f.mgs[0].Fork(tk, root, 0)

		// Child writes the shared page: gets its own copy.
		cpf, err := f.mgs[0].Touch(tk, cLeaf, 1, true)
		if err != nil {
			t.Fatalf("cow touch: %v", err)
		}
		f.m.WritePage(tk, f.m.Procs[0], cpf.Frame, 60)
		f.vms[0].Unref(tk, cpf)

		// Parent still sees the original.
		ppf, err := f.mgs[0].Touch(tk, pLeaf, 1, false)
		if err != nil {
			t.Fatalf("parent touch: %v", err)
		}
		tag, _, _ := f.m.ReadPage(tk, f.m.Procs[0], ppf.Frame)
		if tag != 50 {
			t.Fatalf("parent's page changed: tag=%d", tag)
		}
		f.vms[0].Unref(tk, ppf)
		if f.mgs[0].Metrics.Counter("cow.copies").Value() != 1 {
			t.Error("copy not counted")
		}
	})
}

func TestCrossCellForkAndLookup(t *testing.T) {
	// §5.3: parent on cell 0 forks a child to cell 1. The child's leaf
	// is local to cell 1; its lookups traverse the tree back into cell
	// 0's kernel memory via the careful reference protocol, then bind
	// with an export/import RPC.
	f := newFixture(t, 2)
	f.run(t, func(tk *sim.Task) {
		root := f.mgs[0].NewRoot()
		pf, _ := f.mgs[0].Touch(tk, root, 7, true)
		f.m.WritePage(tk, f.m.Procs[0], pf.Frame, 88)
		f.vms[0].Unref(tk, pf)

		_, cLeaf, err := f.mgs[0].Fork(tk, root, 1)
		if err != nil {
			t.Fatalf("cross-cell fork: %v", err)
		}
		if cLeaf.Cell() != 1 {
			t.Fatalf("child leaf on cell %d", cLeaf.Cell())
		}
		// Child (on cell 1) touches the pre-fork page.
		cpf, err := f.mgs[1].Touch(tk, cLeaf, 7, false)
		if err != nil {
			t.Fatalf("child touch: %v", err)
		}
		tag, _, _ := f.m.ReadPage(tk, f.m.Procs[1], cpf.Frame)
		if tag != 88 {
			t.Fatalf("child read tag = %d", tag)
		}
		if f.mgs[1].Metrics.Counter("cow.remote_visits").Value() == 0 {
			t.Error("no remote tree visit recorded")
		}
		if f.vms[1].Metrics.Counter("vm.imports").Value() == 0 {
			t.Error("no import binding created")
		}
		f.vms[1].Unref(tk, cpf)
	})
}

func TestCorruptParentPointerCaught(t *testing.T) {
	// §7.4: corrupt a pointer in the COW tree; the careful reference
	// protocol must defend the traversing cell and raise a hint.
	f := newFixture(t, 2)
	f.run(t, func(tk *sim.Task) {
		root := f.mgs[0].NewRoot()
		_, cLeaf, err := f.mgs[0].Fork(tk, root, 1)
		if err != nil {
			t.Fatalf("fork: %v", err)
		}
		// Corrupt the root's parent pointer to a wild address in cell 0.
		if !f.mgs[0].CorruptParent(root, uint64(kmem.MakeAddr(0, 0xbad000))) {
			t.Fatal("corruption failed")
		}
		// Child searches for a page that was never written: traversal
		// passes root (no hit), follows the corrupt pointer, and the
		// tag check catches the wild address.
		_, _, err = f.mgs[1].Lookup(tk, cLeaf, 42)
		if !errors.Is(err, ErrTreeDamaged) {
			t.Fatalf("err = %v", err)
		}
	})
	if len(f.hint) == 0 || f.hint[0] != 0 {
		t.Fatalf("hints = %v, want suspect cell 0", f.hint)
	}
}

func TestSelfPointerCaughtByLoopBound(t *testing.T) {
	f := newFixture(t, 2)
	f.run(t, func(tk *sim.Task) {
		root := f.mgs[0].NewRoot()
		_, cLeaf, _ := f.mgs[0].Fork(tk, root, 1)
		// Self-pointing corruption (§7.4's pathological case).
		f.mgs[0].CorruptParent(root, uint64(root))
		_, _, err := f.mgs[1].Lookup(tk, cLeaf, 42)
		if !errors.Is(err, ErrTreeDamaged) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestNodeFailureDuringSearchSurvived(t *testing.T) {
	// §7.4: node failure during copy-on-write search. The child's
	// traversal hits a bus error and survives with a hint.
	f := newFixture(t, 2)
	f.run(t, func(tk *sim.Task) {
		root := f.mgs[0].NewRoot()
		_, cLeaf, _ := f.mgs[0].Fork(tk, root, 1)
		f.m.Nodes[0].FailStop()
		_, _, err := f.mgs[1].Lookup(tk, cLeaf, 3)
		if !errors.Is(err, ErrTreeDamaged) {
			t.Fatalf("err = %v", err)
		}
	})
	if len(f.hint) == 0 {
		t.Fatal("no failure hint raised")
	}
}

func TestLookupCrossCellCostsCarefulReads(t *testing.T) {
	f := newFixture(t, 2)
	var lat sim.Time
	f.run(t, func(tk *sim.Task) {
		root := f.mgs[0].NewRoot()
		_, cLeaf, _ := f.mgs[0].Fork(tk, root, 1)
		start := tk.Now()
		_, found, err := f.mgs[1].Lookup(tk, cLeaf, 9)
		lat = tk.Now() - start
		if err != nil || found {
			t.Fatalf("found=%v err=%v", found, err)
		}
	})
	// One local visit + one remote careful visit: a handful of µs, far
	// cheaper than an RPC-per-node approach would be.
	if lat < 1*sim.Microsecond || lat > 20*sim.Microsecond {
		t.Fatalf("cross-cell lookup cost %v", lat)
	}
}

func TestLeafFull(t *testing.T) {
	f := newFixture(t, 1)
	f.run(t, func(tk *sim.Task) {
		leaf := f.mgs[0].NewRoot()
		for i := 0; i < MaxEntries; i++ {
			if err := f.mgs[0].Record(leaf, int64(i)); err != nil {
				t.Fatalf("record %d: %v", i, err)
			}
		}
		if err := f.mgs[0].Record(leaf, 999); !errors.Is(err, ErrNodeFull) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestMakeLeafSanityRejectsForgedParent(t *testing.T) {
	// A corrupt cell asking for a leaf whose parent it does not own is
	// refused.
	f := newFixture(t, 3)
	f.run(t, func(tk *sim.Task) {
		foreign := f.mgs[1].NewRoot() // cell 1's node
		_, err := f.eps[2].Call(tk, f.m.Procs[2], 0, ProcMakeLeaf,
			&makeLeafArgs{Parent: foreign}, rpc.CallOpts{})
		if err == nil {
			t.Fatal("forged parent accepted")
		}
	})
}

func TestRPCWalkFindsSamePagesAsSharedMemory(t *testing.T) {
	f := newFixture(t, 2)
	f.run(t, func(tk *sim.Task) {
		root := f.mgs[0].NewRoot()
		pf, _ := f.mgs[0].Touch(tk, root, 7, true)
		f.vms[0].Unref(tk, pf)
		_, cLeaf, err := f.mgs[0].Fork(tk, root, 1)
		if err != nil {
			t.Fatalf("fork: %v", err)
		}
		nodeSM, foundSM, err := f.mgs[1].LookupVia(tk, SharedMemory, cLeaf, 7)
		if err != nil {
			t.Fatalf("shared-memory lookup: %v", err)
		}
		nodeRPC, foundRPC, err := f.mgs[1].LookupVia(tk, RPCWalk, cLeaf, 7)
		if err != nil {
			t.Fatalf("rpc lookup: %v", err)
		}
		if foundSM != foundRPC || nodeSM != nodeRPC {
			t.Fatalf("disagreement: sm=(%v,%v) rpc=(%v,%v)", nodeSM, foundSM, nodeRPC, foundRPC)
		}
		// Misses agree too.
		_, fSM, _ := f.mgs[1].LookupVia(tk, SharedMemory, cLeaf, 99)
		_, fRPC, _ := f.mgs[1].LookupVia(tk, RPCWalk, cLeaf, 99)
		if fSM || fRPC {
			t.Fatalf("phantom page: sm=%v rpc=%v", fSM, fRPC)
		}
	})
}

func TestRPCWalkSurvivesNodeFailure(t *testing.T) {
	f := newFixture(t, 2)
	f.run(t, func(tk *sim.Task) {
		root := f.mgs[0].NewRoot()
		_, cLeaf, _ := f.mgs[0].Fork(tk, root, 1)
		f.m.Nodes[0].FailStop()
		_, _, err := f.mgs[1].LookupVia(tk, RPCWalk, cLeaf, 3)
		if !errors.Is(err, ErrTreeDamaged) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestRPCWalkRejectsForgedReply(t *testing.T) {
	f := newFixture(t, 3)
	// Cell 1 serves a corrupt lookup reply claiming a node on cell 2.
	f.eps[1].Register(ProcTreeLookup, "cow.evil",
		func(req *rpc.Request) (any, sim.Time, bool, error) {
			return &treeLookupReply{Found: true, Node: f.mgs[2].NewRoot()}, 0, true, nil
		}, nil)
	f.run(t, func(tk *sim.Task) {
		root := f.mgs[0].NewRoot()
		_, cLeaf, _ := f.mgs[0].Fork(tk, root, 0)
		_ = cLeaf
		// Search directly against cell 1's forged service.
		fake := kmem.MakeAddr(1, 64)
		_, _, err := f.mgs[0].lookupRPC(tk, fake, 5)
		if err == nil {
			t.Fatal("forged reply accepted")
		}
	})
}

func TestSwapOutAndBackIn(t *testing.T) {
	f := newFixture(t, 1)
	f.mgs[0].EnableSwap(f.m.Nodes[0].Disk, 1<<30)
	f.run(t, func(tk *sim.Task) {
		leaf := f.mgs[0].NewRoot()
		pf, err := f.mgs[0].Touch(tk, leaf, 3, true)
		if err != nil {
			t.Fatalf("touch: %v", err)
		}
		f.m.WritePage(tk, f.m.Procs[0], pf.Frame, 4242)
		f.vms[0].Unref(tk, pf)
		pf.Dirty = true
		lp := LP(leaf, 3)

		// Swap the page out and evict it.
		if !f.mgs[0].SwapOut(tk, lp) {
			t.Fatal("swap-out refused")
		}
		pf.Dirty = false
		if !f.vms[0].Evict(tk, lp) {
			t.Fatal("evict failed")
		}
		// Touch again: content comes back from swap.
		pf2, err := f.mgs[0].Touch(tk, leaf, 3, false)
		if err != nil {
			t.Fatalf("retouch: %v", err)
		}
		tag, _, _ := f.m.ReadPage(tk, f.m.Procs[0], pf2.Frame)
		if tag != 4242 {
			t.Fatalf("tag after swap-in = %d", tag)
		}
		if f.mgs[0].Metrics.Counter("cow.swap_ins").Value() != 1 {
			t.Fatal("swap-in not counted")
		}
	})
}

func TestSwapOutRefusesForeignPages(t *testing.T) {
	f := newFixture(t, 2)
	f.mgs[0].EnableSwap(f.m.Nodes[0].Disk, 1<<30)
	f.run(t, func(tk *sim.Task) {
		foreign := LP(f.mgs[1].NewRoot(), 0)
		if f.mgs[0].SwapOut(tk, foreign) {
			t.Fatal("swapped out a page homed elsewhere")
		}
	})
}

// Property: no matter WHAT value a corrupt parent pointer takes, a remote
// traversal never crashes the reading cell — it either completes, reports
// tree damage with a hint, or (never) hangs. This is the §4.1 careful
// reference guarantee under fuzzing.
func TestPropertyCarefulTraversalAlwaysSurvives(t *testing.T) {
	fz := func(raw uint64, offRaw uint8) bool {
		f := newFixture(t, 2)
		survived := true
		f.run(t, func(tk *sim.Task) {
			root := f.mgs[0].NewRoot()
			pf, err := f.mgs[0].Touch(tk, root, 1, true)
			if err != nil {
				survived = false
				return
			}
			f.vms[0].Unref(tk, pf)
			_, cLeaf, err := f.mgs[0].Fork(tk, root, 1)
			if err != nil {
				survived = false
				return
			}
			f.mgs[0].CorruptParent(root, raw)
			// A miss-lookup follows the corrupt pointer; a hit stops
			// at the root. Both must return (no panic, no hang).
			_, _, _ = f.mgs[1].Lookup(tk, cLeaf, int64(offRaw)+100) // miss
			_, _, _ = f.mgs[1].Lookup(tk, cLeaf, 1)                 // hit
		})
		// The engine drained: the reading task did not deadlock.
		return survived && f.e.LiveTasks() <= 8 // rpc pool tasks remain parked
	}
	if err := quick.Check(fz, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
