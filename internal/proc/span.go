package proc

import (
	"repro/internal/cow"
	"repro/internal/kmem"
	"repro/internal/sim"
)

// Shared address space for spanning tasks (§3.2): a single parallel process
// runs threads on multiple cells, and "shared process state such as the
// address space map is kept consistent among the component processes of
// the spanning task". The span's page map records, per shared offset, the
// leaf (and hence data home) of the thread that first wrote the page;
// every other thread maps the same logical page, with the usual
// export/import machinery providing coherence and the firewall opening
// exactly for the cells that write.

// spanPages is the shared address-space map. The simulation engine is a
// single logical thread, so plain map access is safe; claims are recorded
// before any blocking operation to keep first-writer-wins well defined.
type spanPages map[int64]kmem.Addr

// TouchShared accesses shared page off of p's spanning task. The first
// toucher becomes the page's data home (the page lands in its cell's
// memory — the CC-NUMA placement the paper wants); later touches from any
// thread map the same page.
func (p *Process) TouchShared(t *sim.Task, off int64, write bool) error {
	span := p.Span
	if span == nil {
		return p.TouchAnon(t, off, write)
	}
	if span.pages == nil {
		span.pages = make(spanPages)
	}
	owner, claimed := span.pages[off]
	if !claimed {
		// First toucher claims the page at its local leaf. The claim is
		// visible to the other threads immediately (shared map), before
		// the blocking fault below.
		span.pages[off] = p.Leaf
		if err := p.table.COW.Record(p.Leaf, off); err != nil {
			delete(span.pages, off)
			return err
		}
		owner = p.Leaf
	}
	if owner == p.Leaf {
		return p.TouchAnon(t, off, write)
	}
	pf, err := p.MapShared(t, cow.LP(owner, off), write)
	if err != nil {
		return err
	}
	return p.access(t, pf, off, write)
}

// SharedPageHome reports which cell holds a shared page (-1 if untouched);
// tests and placement policy use it.
func (s *Span) SharedPageHome(off int64) int {
	if s.pages == nil {
		return -1
	}
	leaf, ok := s.pages[off]
	if !ok {
		return -1
	}
	return leaf.Cell()
}

// SharedPages returns how many shared pages the span has materialized.
func (s *Span) SharedPages() int { return len(s.pages) }
