// Package proc implements the UNIX process abstraction over the cells:
// process tables, fork/exec/exit/wait, distributed process groups and
// signal delivery, forks across cell boundaries, and spanning tasks — the
// extension (§3.2) that lets a single parallel process run threads on
// multiple cells at the same time.
package proc

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cow"
	"repro/internal/fs"
	"repro/internal/kmem"
	"repro/internal/rpc"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vm"
)

// Costs (ns) for process lifecycle operations, in line with mid-90s UNIX.
const (
	ForkCost   = 700 * sim.Microsecond // process duplication
	ExecCost   = 2 * sim.Millisecond   // image setup, warm cache
	ExitCost   = 300 * sim.Microsecond
	SignalCost = 50 * sim.Microsecond
)

// RPC procedure numbers (range 160-179).
const (
	ProcSpawn     rpc.ProcID = 160 + iota // create a process on another cell
	ProcSignal                            // deliver a signal to a remote group
	ProcSpawnExec                         // create a detached fresh-image process
)

// Errors.
var (
	ErrNoProcess = errors.New("proc: no such process")
	ErrBadArgs   = errors.New("proc: bad request arguments")
)

// Body is the simulated program a process runs.
type Body func(p *Process, t *sim.Task)

// Process is one UNIX process (or one thread of a spanning task).
type Process struct {
	PID    int
	Cell   int
	Group  int
	Name   string
	Task   *sim.Task
	Leaf   kmem.Addr // copy-on-write tree leaf (always local, §5.3)
	Parent int

	// Deps tracks the cells whose resources this process depends on;
	// recovery kills dependents of a failed cell (fault containment's
	// proportional-damage definition, §2).
	Deps map[int]bool

	// Span links threads of a spanning task (shared logical process).
	Span *Span

	exited   bool
	exitCode int
	waiters  []*sim.Task
	killed   bool

	table *Table
	refs  []*vm.Pfdat // live page references to drop at exit

	// mapped caches established mappings (the page-table/TLB analogue):
	// a touch of a mapped page costs a memory access, not a kernel
	// fault, and does not consult the COW tree again.
	mapped map[vm.LogicalPage]*vm.Pfdat
	anonAt map[int64]*vm.Pfdat
}

// Span is the shared state of a spanning task: one component process per
// cell, a shared address-space map, and gang metadata.
type Span struct {
	ID      int
	Threads []*Process

	pages spanPages // shared address-space map (see span.go)
}

// Table is one cell's process table.
type Table struct {
	CellID int
	EP     *rpc.Endpoint
	Sched  *sched.Scheduler
	FS     *fs.FS
	COW    *cow.Manager
	VM     *vm.VM

	Cells   int // total cells, for PID striding
	procs   map[int]*Process
	nextPID int
	nextSpn int
	Metrics *stats.Registry

	peers         map[int]*Table // all cells' tables, for migration
	advisedTarget int            // Wax's pending migration advice (-1 none)

	// OnProcessDeath is invoked (engine context) when a process exits
	// or is killed; the workload harness uses it for accounting.
	OnProcessDeath func(p *Process)
}

// NewTable builds a cell's process table and registers its RPC services.
func NewTable(cellID, cells int, ep *rpc.Endpoint, s *sched.Scheduler, f *fs.FS, c *cow.Manager, v *vm.VM) *Table {
	pt := &Table{
		CellID: cellID, Cells: cells, EP: ep, Sched: s, FS: f, COW: c, VM: v,
		procs:         make(map[int]*Process),
		nextPID:       cellID + cells, // stride PIDs by cell for global uniqueness
		Metrics:       stats.NewRegistry(),
		advisedTarget: -1,
	}
	pt.registerServices()
	return pt
}

// Live returns the number of live processes on this cell.
func (pt *Table) Live() int { return len(pt.procs) }

// Get finds a local process.
func (pt *Table) Get(pid int) (*Process, bool) {
	p, ok := pt.procs[pid]
	return p, ok
}

// Each visits every live local process in PID order.
func (pt *Table) Each(fn func(*Process)) {
	pids := make([]int, 0, len(pt.procs))
	for pid := range pt.procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		if p, ok := pt.procs[pid]; ok {
			fn(p)
		}
	}
}

// Spawn creates a fresh process (no COW inheritance) running body.
func (pt *Table) Spawn(name string, group int, body Body) *Process {
	return pt.spawn(name, group, 0, pt.COW.NewRoot(), body)
}

func (pt *Table) spawn(name string, group, parent int, leaf kmem.Addr, body Body) *Process {
	p := &Process{
		PID: pt.nextPID, Cell: pt.CellID, Group: group, Name: name,
		Leaf: leaf, Parent: parent,
		Deps:  map[int]bool{pt.CellID: true},
		table: pt,
	}
	pt.nextPID += pt.Cells
	pt.procs[p.PID] = p
	pt.Metrics.Counter("proc.spawned").Inc()
	p.Task = pt.EP.Engine().Go(fmt.Sprintf("cell%d.%s.%d", pt.CellID, name, p.PID), func(t *sim.Task) {
		t.Data = p
		defer pt.reap(p)
		body(p, t)
	})
	return p
}

// reap finalizes a process: drop page references, wake waiters, and
// asynchronously release imports whose last mapping went away (so the data
// home revokes any write permission, per the §4.2 policy: "write
// permission remains granted as long as any process on that cell has the
// page mapped").
func (pt *Table) reap(p *Process) {
	p.exited = true
	var release []*vm.Pfdat
	for _, pf := range p.refs {
		if pf.Refs > 0 {
			pf.Refs-- // bare deref; RPC-free (the task may be dying)
		}
		if pf.Refs == 0 && pf.ImportedFrom >= 0 {
			release = append(release, pf)
		}
	}
	p.refs = nil
	if len(release) > 0 {
		pt.EP.Engine().Go(fmt.Sprintf("cell%d.unmap.%d", pt.CellID, p.PID), func(t *sim.Task) {
			for _, pf := range release {
				if pf.Refs == 0 && pf.ImportedFrom >= 0 && pf.Valid {
					pt.VM.Release(t, pf)
				}
			}
		})
	}
	delete(pt.procs, p.PID)
	for _, w := range p.waiters {
		w.WakeSoon()
	}
	p.waiters = nil
	if pt.OnProcessDeath != nil {
		pt.OnProcessDeath(p)
	}
	pt.Metrics.Counter("proc.exited").Inc()
}

// Fork creates a child of p running body on targetCell (possibly remote:
// the single-system image's cross-cell fork). The parent pays ForkCost; the
// child's COW leaf is split per §5.3.
func (pt *Table) Fork(t *sim.Task, p *Process, targetCell int, name string, body Body) (int, error) {
	pt.Sched.System(t, ForkCost)
	newParentLeaf, childLeaf, err := pt.COW.Fork(t, p.Leaf, targetCell)
	if err != nil {
		return 0, err
	}
	p.Leaf = newParentLeaf
	if targetCell == pt.CellID {
		child := pt.spawn(name, p.Group, p.PID, childLeaf, body)
		return child.PID, nil
	}
	res, err := pt.EP.Call(t, pt.Sched.Procs[0], targetCell, ProcSpawn,
		&spawnArgs{Name: name, Group: p.Group, Parent: p.PID, Leaf: childLeaf, Body: body},
		rpc.CallOpts{DataBytes: 192})
	if err != nil {
		return 0, err
	}
	pid, err := validateSpawnReply(res)
	if err != nil {
		return 0, err
	}
	p.Deps[targetCell] = true
	pt.Metrics.Counter("proc.remote_forks").Inc()
	return pid, nil
}

// ForkExec creates a child on targetCell running body with a fresh
// address space — fork immediately followed by exec. Because the child
// shares no pages with the parent, the parent's COW leaf is not split
// (a dispatcher's tree stays shallow no matter how many children it
// creates) and the parent takes no fault dependency on the child's
// cell: only resources actually shared propagate faults (§2). The child
// still records the usual dependency on its parent's cell. This is the
// dispatch primitive for open-loop frontends that must survive the
// death of cells they route work to.
func (pt *Table) ForkExec(t *sim.Task, p *Process, targetCell int, name string, body Body) (int, error) {
	pt.Sched.System(t, ForkCost+ExecCost)
	if targetCell == pt.CellID {
		child := pt.spawn(name, p.Group, p.PID, pt.COW.NewRoot(), body)
		return child.PID, nil
	}
	res, err := pt.EP.Call(t, pt.Sched.Procs[0], targetCell, ProcSpawnExec,
		&spawnExecArgs{Name: name, Group: p.Group, Parent: p.PID, Body: body},
		rpc.CallOpts{DataBytes: 192})
	if err != nil {
		return 0, err
	}
	pid, err := validateSpawnReply(res)
	if err != nil {
		return 0, err
	}
	pt.Metrics.Counter("proc.remote_forks").Inc()
	return pid, nil
}

// validateSpawnReply vets a remote fork's reply. The child PID is an
// opaque token the child's cell allocated, so shape is all the parent
// can check; the PID is only ever used as a key back to that cell.
func validateSpawnReply(res any) (int, error) {
	rep, ok := res.(*spawnReply)
	if !ok {
		return 0, ErrBadArgs
	}
	return rep.PID, nil
}

// Exec charges the image-activation cost (text pages are warm in the
// unified page cache for the paper's workloads).
func (pt *Table) Exec(t *sim.Task, p *Process) {
	pt.Sched.System(t, ExecCost)
	pt.Metrics.Counter("proc.execs").Inc()
}

// Wait blocks until the local process pid exits.
func (pt *Table) Wait(t *sim.Task, pid int) error {
	p, ok := pt.procs[pid]
	if !ok {
		return nil // already gone
	}
	for !p.exited {
		p.waiters = append(p.waiters, t)
		t.Block()
	}
	return nil
}

// Kill terminates a local process immediately.
func (pt *Table) Kill(p *Process) {
	if p.exited || p.killed {
		return
	}
	p.killed = true
	pt.Metrics.Counter("proc.killed").Inc()
	p.Task.Kill()
}

// KillAll terminates every local process (cell panic), in PID order so
// teardown is deterministic.
func (pt *Table) KillAll() {
	pt.Each(func(p *Process) { pt.Kill(p) })
}

// KillDependents kills local processes that depend on any failed cell —
// the recovery step that bounds damage to users of the failed resources.
func (pt *Table) KillDependents(failed map[int]bool) int {
	n := 0
	pt.Each(func(p *Process) {
		doomed := false
		for c := range p.Deps {
			if failed[c] {
				doomed = true
			}
		}
		if doomed {
			pt.Kill(p)
			n++
		}
	})
	pt.Metrics.Counter("proc.killed_dependents").Add(int64(n))
	return n
}

// Signal delivers a signal to every process in group across all cells
// (distributed process groups). Only "kill" semantics are modelled.
func (pt *Table) Signal(t *sim.Task, group int) {
	pt.Sched.System(t, SignalCost)
	pt.signalLocal(group)
	// Peer order fixes the RPC issue order, which the event queue (and
	// so every downstream timing) observes.
	for _, c := range pt.EP.PeerIDs() {
		if c == pt.CellID {
			continue
		}
		//hive:lint-ignore errdrop signal fan-out is best-effort by design: a dead peer's processes die with it, so there is nothing left to signal
		pt.EP.Call(t, pt.Sched.Procs[0], c, ProcSignal,
			&signalArgs{Group: group}, rpc.CallOpts{DataBytes: 16, NoHint: true})
	}
}

func (pt *Table) signalLocal(group int) {
	pt.Each(func(p *Process) {
		if p.Group == group {
			pt.Kill(p)
		}
	})
}

// Process-side convenience operations, used by workload bodies.

// Compute runs user-mode CPU work.
func (p *Process) Compute(t *sim.Task, d sim.Time) { p.table.Sched.Compute(t, d) }

// TouchAnon accesses anonymous page off of p's address space (write or
// read). A mapped page costs one memory access; an unmapped one takes the
// COW fault path and enters the mapping cache.
func (p *Process) TouchAnon(t *sim.Task, off int64, write bool) error {
	proc := p.table.Sched.Procs[0]
	if pf, ok := p.anonAt[off]; ok && pf.Valid {
		return p.access(t, pf, off, write)
	}
	pf, err := p.table.COW.Touch(t, p.Leaf, off, write)
	if err != nil {
		return err
	}
	if p.anonAt == nil {
		p.anonAt = make(map[int64]*vm.Pfdat)
	}
	p.anonAt[off] = pf
	p.refs = append(p.refs, pf)
	if home := pf.ImportedFrom; home >= 0 {
		p.Deps[home] = true
	}
	if write {
		return p.table.EP.M.WritePage(t, proc, pf.Frame,
			uint64(p.PID)<<32|uint64(off)|1)
	}
	_, _, err = p.table.EP.M.ReadPage(t, proc, pf.Frame)
	return err
}

func (p *Process) access(t *sim.Task, pf *vm.Pfdat, off int64, write bool) error {
	proc := p.table.Sched.Procs[0]
	if write {
		return p.table.EP.M.WritePage(t, proc, pf.Frame,
			uint64(p.PID)<<32|uint64(off)|1)
	}
	_, _, err := p.table.EP.M.ReadPage(t, proc, pf.Frame)
	return err
}

// MapShared faults a page of another thread's (or any) anonymous object
// into this process, the write-shared data segment pattern of ocean.
// Mapped pages are cached like TouchAnon's.
func (p *Process) MapShared(t *sim.Task, lp vm.LogicalPage, write bool) (*vm.Pfdat, error) {
	if pf, ok := p.mapped[lp]; ok && pf.Valid && (!write || pf.ImportedFrom < 0 || pf.ImpWritable) {
		return pf, nil
	}
	pf, err := p.table.VM.Fault(t, lp, write)
	if err != nil {
		return nil, err
	}
	if p.mapped == nil {
		p.mapped = make(map[vm.LogicalPage]*vm.Pfdat)
	}
	p.mapped[lp] = pf
	p.refs = append(p.refs, pf)
	if lp.Obj.Home != p.Cell {
		p.Deps[lp.Obj.Home] = true
	}
	return pf, nil
}

// DependOn records an explicit dependency (e.g. on a file server cell that
// holds dirty data for this process).
func (p *Process) DependOn(cell int) { p.Deps[cell] = true }

// Exited reports whether the process has finished.
func (p *Process) Exited() bool { return p.exited }

// spawnArgs/spawnReply and signalArgs are the RPC wire types.
type spawnArgs struct {
	Name   string
	Group  int
	Parent int
	Leaf   kmem.Addr
	Body   Body
}
type spawnReply struct {
	PID int
}

// spawnExecArgs drives ProcSpawnExec: no leaf crosses the wire — the
// child's fresh address space is rooted on its own cell.
type spawnExecArgs struct {
	Name   string
	Group  int
	Parent int
	Body   Body
}
type signalArgs struct {
	Group int
}

// validateSpawnArgs vets a spawn request from another cell before the
// leaf address it names enters this cell's process table: the request
// must be well-formed and the leaf must be local (every process's leaf
// is local to it, §5.3). Anything a corrupt peer could forge is checked
// here, at the trust boundary.
func (pt *Table) validateSpawnArgs(raw any) (*spawnArgs, error) {
	args, ok := raw.(*spawnArgs)
	if !ok || args.Body == nil || args.Name == "" {
		return nil, ErrBadArgs
	}
	if args.Leaf.Cell() != pt.CellID {
		return nil, fmt.Errorf("%w: leaf on cell %d", ErrBadArgs, args.Leaf.Cell())
	}
	return args, nil
}

// validateSpawnExecArgs vets a detached-spawn request from another cell.
// No leaf crosses this boundary (the child's address space is rooted
// locally), so shape is the whole attack surface.
func validateSpawnExecArgs(raw any) (*spawnExecArgs, error) {
	args, ok := raw.(*spawnExecArgs)
	if !ok || args.Body == nil || args.Name == "" {
		return nil, ErrBadArgs
	}
	return args, nil
}

func (pt *Table) registerServices() {
	pt.EP.Register(ProcSpawn, "proc.spawn", nil,
		func(t *sim.Task, req *rpc.Request) (any, error) {
			args, err := pt.validateSpawnArgs(req.Args)
			if err != nil {
				return nil, err
			}
			pt.Sched.System(t, ForkCost/2)
			p := pt.spawn(args.Name, args.Group, args.Parent, args.Leaf, args.Body)
			p.Deps[req.From] = true // child depends on its parent's cell tree
			return &spawnReply{PID: p.PID}, nil
		})

	pt.EP.Register(ProcSpawnExec, "proc.spawnexec", nil,
		func(t *sim.Task, req *rpc.Request) (any, error) {
			args, err := validateSpawnExecArgs(req.Args)
			if err != nil {
				return nil, err
			}
			pt.Sched.System(t, ForkCost/2+ExecCost)
			p := pt.spawn(args.Name, args.Group, args.Parent, pt.COW.NewRoot(), args.Body)
			p.Deps[req.From] = true // child depends on its parent's cell
			return &spawnReply{PID: p.PID}, nil
		})

	pt.EP.Register(ProcSignal, "proc.signal",
		func(req *rpc.Request) (any, sim.Time, bool, error) {
			args, ok := req.Args.(*signalArgs)
			if !ok {
				return nil, 0, true, ErrBadArgs
			}
			pt.signalLocal(args.Group)
			return nil, SignalCost, true, nil
		}, nil)
}

// Spanning tasks (§3.2 extension).

// SpawnSpanning creates a spanning task with one thread per listed cell,
// all in the same group, each running body with its thread index in
// p.Span. Thread 0 runs on cells[0]'s table (which must be this table's
// cell). Returns the span.
func (pt *Table) SpawnSpanning(t *sim.Task, name string, group int, tables []*Table, body Body) (*Span, error) {
	if len(tables) == 0 || tables[0].CellID != pt.CellID {
		return nil, ErrBadArgs
	}
	pt.nextSpn++
	span := &Span{ID: pt.nextSpn}
	spawnAll := func() {
		for _, tbl := range tables {
			p := tbl.spawn(name, group, 0, tbl.COW.NewRoot(), body)
			p.Span = span
			// Every thread depends on every member cell: the whole task
			// dies if any member cell fails (§2: large applications that
			// use the whole system get no reliability benefit).
			span.Threads = append(span.Threads, p)
		}
		for _, p := range span.Threads {
			for _, q := range span.Threads {
				p.Deps[q.Cell] = true
			}
		}
	}
	// Member tables on other shards: their PID counters, process maps, and
	// COW roots belong to those shards, so the whole creation runs in the
	// global phase; each thread then starts on its own cell's shard at the
	// window edge.
	hop := false
	for _, tbl := range tables {
		if tbl.EP.Engine() != pt.EP.Engine() {
			hop = true
			break
		}
	}
	if hop {
		pt.EP.Engine().Global(t, spawnAll)
	} else {
		spawnAll()
	}
	pt.Metrics.Counter("proc.spanning_tasks").Inc()
	return span, nil
}

// ThreadIndex returns p's index within its span (-1 if not spanning).
func (p *Process) ThreadIndex() int {
	if p.Span == nil {
		return -1
	}
	for i, q := range p.Span.Threads {
		if q == p {
			return i
		}
	}
	return -1
}
