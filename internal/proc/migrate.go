package proc

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/vm"
)

// Migration of sequential processes among cells for load balancing (§3.2).
// The mechanism mirrors the address-space design: the process gets a fresh
// COW leaf on the target cell whose parent is its old leaf (which becomes
// an interior node, still readable through the careful reference protocol),
// its page mappings are dropped to be re-faulted on the target, and its
// process-table entry moves. The migrated process permanently depends on
// its former cell — the tree's interior nodes live there.

// MigrateCost covers state transfer and rescheduling.
const MigrateCost = 2 * sim.Millisecond

// Migrate moves the calling process to the target cell. It must be invoked
// from the process's own task (migration happens at a kernel entry, not
// preemptively). The process keeps its PID.
func (pt *Table) Migrate(t *sim.Task, p *Process, target int) error {
	if p.table != pt {
		return fmt.Errorf("%w: process not on this cell", ErrBadArgs)
	}
	if target == pt.CellID {
		return nil
	}
	dst := pt.peerTable(target)
	if dst == nil {
		return fmt.Errorf("%w: no table for cell %d", ErrBadArgs, target)
	}
	pt.Sched.System(t, MigrateCost)

	// Re-home the address space: new leaf on the target, parented by the
	// old leaf (same split as fork, but the old process identity moves).
	_, newLeaf, err := pt.COW.Fork(t, p.Leaf, target)
	if err != nil {
		return err
	}

	// Drop mappings: imports release so data homes revoke write access;
	// everything re-faults on the target cell.
	for _, pf := range p.refs {
		if pf.Refs > 0 {
			pf.Refs--
		}
		if pf.Refs == 0 && pf.ImportedFrom >= 0 && pf.Valid {
			pt.VM.Release(t, pf)
		}
	}
	p.refs = nil
	p.mapped = nil
	p.anonAt = nil

	delete(pt.procs, p.PID)
	p.Leaf = newLeaf
	p.Cell = target
	p.table = dst
	p.Deps[pt.CellID] = true // the old cell still holds tree interior nodes
	p.Deps[target] = true
	dst.procs[p.PID] = p
	pt.Metrics.Counter("proc.migrated_out").Inc()
	dst.Metrics.Counter("proc.migrated_in").Inc()
	return nil
}

// peerTable finds another cell's process table through the registry the
// tables share (populated at boot).
func (pt *Table) peerTable(cell int) *Table {
	if pt.peers == nil {
		return nil
	}
	return pt.peers[cell]
}

// ConnectTables wires process tables so cross-cell migration can move
// entries; called once at boot.
func ConnectTables(tables ...*Table) {
	reg := make(map[int]*Table, len(tables))
	for _, tb := range tables {
		reg[tb.CellID] = tb
	}
	for _, tb := range tables {
		tb.peers = reg
	}
}

// MigrateAdvice lets a policy (Wax) suggest a better home for processes of
// a cell; processes act on it voluntarily at their next checkpoint.
func (pt *Table) MigrateAdvice(target int) {
	if target >= 0 && target != pt.CellID {
		pt.advisedTarget = target
	} else {
		pt.advisedTarget = -1
	}
}

// CheckMigration migrates the calling process if a policy advised it;
// workload bodies call this at convenient points. It returns whether a
// migration happened.
func (p *Process) CheckMigration(t *sim.Task) bool {
	pt := p.table
	if pt.advisedTarget < 0 || p.Span != nil {
		return false // spanning tasks don't migrate; only sequential ones
	}
	target := pt.advisedTarget
	pt.advisedTarget = -1 // one process per advice
	return pt.Migrate(t, p, target) == nil
}

// Ensure vm is linked for the Release call's documentation reference.
var _ = vm.LogicalPage{}
