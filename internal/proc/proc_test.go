package proc

import (
	"testing"

	"repro/internal/careful"
	"repro/internal/cow"
	"repro/internal/fs"
	"repro/internal/kmem"
	"repro/internal/machine"
	"repro/internal/rpc"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/vm"
)

type fixture struct {
	e   *sim.Engine
	m   *machine.Machine
	pts []*Table
	vms []*vm.VM
}

func newFixture(t *testing.T, cells int) *fixture {
	t.Helper()
	e := sim.NewEngine(77)
	cfg := machine.DefaultConfig()
	cfg.Nodes = cells
	cfg.MemPerNodeMB = 2
	m := machine.New(e, cfg)
	f := &fixture{e: e, m: m}
	space := kmem.NewSpace(cells)
	cellOfNode := make([]int, cells)
	for i := range cellOfNode {
		cellOfNode[i] = i
	}
	var eps []*rpc.Endpoint
	for c := 0; c < cells; c++ {
		eps = append(eps, rpc.NewEndpoint(m, c, []*machine.Processor{m.Procs[c]}, 2))
	}
	rpc.Connect(eps...)
	for c := 0; c < cells; c++ {
		v := vm.New(m, eps[c], c, []int{c}, cellOfNode, 16)
		f.vms = append(f.vms, v)
		fsys := fs.New(m, eps[c], v, c, nil, m.Nodes[c].Disk)
		reader := &careful.Reader{M: m, Space: space}
		cm := cow.New(m, eps[c], v, space, reader, c)
		s := sched.New(c, []*machine.Processor{m.Procs[c]})
		f.pts = append(f.pts, NewTable(c, cells, eps[c], s, fsys, cm, v))
	}
	return f
}

func (f *fixture) runUntil(cond func() bool, d sim.Time) bool {
	deadline := f.e.Now() + d
	for f.e.Now() < deadline {
		if cond() {
			return true
		}
		f.e.Run(f.e.Now() + sim.Millisecond)
	}
	return cond()
}

func TestSpawnReapAndPIDUniqueness(t *testing.T) {
	f := newFixture(t, 2)
	pids := map[int]bool{}
	n := 0
	for c := 0; c < 2; c++ {
		for i := 0; i < 5; i++ {
			p := f.pts[c].Spawn("w", 1, func(p *Process, tk *sim.Task) {
				p.Compute(tk, sim.Millisecond)
				n++
			})
			if pids[p.PID] {
				t.Fatalf("duplicate PID %d", p.PID)
			}
			pids[p.PID] = true
		}
	}
	if !f.runUntil(func() bool { return n == 10 }, sim.Second) {
		t.Fatalf("ran %d of 10", n)
	}
	if f.pts[0].Live()+f.pts[1].Live() != 0 {
		t.Fatal("processes not reaped")
	}
}

func TestForkWaitLocal(t *testing.T) {
	f := newFixture(t, 1)
	order := []string{}
	done := false
	f.pts[0].Spawn("parent", 1, func(p *Process, tk *sim.Task) {
		pid, err := f.pts[0].Fork(tk, p, 0, "child", func(cp *Process, ct *sim.Task) {
			ct.Sleep(5 * sim.Millisecond)
			order = append(order, "child")
		})
		if err != nil {
			t.Errorf("fork: %v", err)
			return
		}
		f.pts[0].Wait(tk, pid)
		order = append(order, "parent")
		done = true
	})
	if !f.runUntil(func() bool { return done }, sim.Second) {
		t.Fatal("never finished")
	}
	if len(order) != 2 || order[0] != "child" {
		t.Fatalf("order = %v", order)
	}
}

func TestRemoteForkSanityChecks(t *testing.T) {
	f := newFixture(t, 2)
	done := false
	f.pts[0].Spawn("parent", 1, func(p *Process, tk *sim.Task) {
		defer func() { done = true }()
		// A spawn whose leaf is not local to the target is refused.
		_, err := f.pts[0].EP.Call(tk, f.m.Procs[0], 1, ProcSpawn,
			&spawnArgs{Name: "evil", Leaf: kmem.MakeAddr(0, 64),
				Body: func(p *Process, t *sim.Task) {}},
			rpc.CallOpts{NoHint: true})
		if err == nil {
			t.Error("foreign-leaf spawn accepted")
		}
		// A nil body is refused.
		_, err = f.pts[0].EP.Call(tk, f.m.Procs[0], 1, ProcSpawn,
			&spawnArgs{Name: "nobody", Leaf: kmem.MakeAddr(1, 64)},
			rpc.CallOpts{NoHint: true})
		if err == nil {
			t.Error("nil-body spawn accepted")
		}
	})
	if !f.runUntil(func() bool { return done }, sim.Second) {
		t.Fatal("never finished")
	}
}

func TestSignalKillsGroupAcrossCells(t *testing.T) {
	f := newFixture(t, 3)
	for c := 0; c < 3; c++ {
		c := c
		f.pts[c].Spawn("member", 42, func(p *Process, tk *sim.Task) {
			for {
				p.Compute(tk, 10*sim.Millisecond)
			}
		})
		f.pts[c].Spawn("bystander", 7, func(p *Process, tk *sim.Task) {
			tk.Sleep(200 * sim.Millisecond)
		})
		_ = c
	}
	f.e.Run(20 * sim.Millisecond)
	killDone := false
	f.pts[0].Spawn("killer", 7, func(p *Process, tk *sim.Task) {
		f.pts[0].Signal(tk, 42)
		killDone = true
	})
	if !f.runUntil(func() bool {
		if !killDone {
			return false
		}
		for c := 0; c < 3; c++ {
			alive := 0
			f.pts[c].Each(func(p *Process) {
				if p.Group == 42 {
					alive++
				}
			})
			if alive > 0 {
				return false
			}
		}
		return true
	}, sim.Second) {
		t.Fatal("group members survived the signal")
	}
	// Bystanders unharmed.
	bystanders := 0
	for c := 0; c < 3; c++ {
		f.pts[c].Each(func(p *Process) {
			if p.Name == "bystander" {
				bystanders++
			}
		})
	}
	if bystanders != 3 {
		t.Fatalf("bystanders = %d", bystanders)
	}
}

func TestKillDependentsScopesToDeps(t *testing.T) {
	f := newFixture(t, 2)
	f.pts[0].Spawn("dependent", 1, func(p *Process, tk *sim.Task) {
		p.DependOn(1)
		for {
			p.Compute(tk, 10*sim.Millisecond)
		}
	})
	f.pts[0].Spawn("loner", 2, func(p *Process, tk *sim.Task) {
		for {
			p.Compute(tk, 10*sim.Millisecond)
		}
	})
	f.e.Run(20 * sim.Millisecond)
	killed := f.pts[0].KillDependents(map[int]bool{1: true})
	if killed != 1 {
		t.Fatalf("killed = %d", killed)
	}
	f.e.Run(f.e.Now() + 50*sim.Millisecond)
	names := []string{}
	f.pts[0].Each(func(p *Process) { names = append(names, p.Name) })
	if len(names) != 1 || names[0] != "loner" {
		t.Fatalf("survivors = %v", names)
	}
}

func TestTouchAnonMappingCache(t *testing.T) {
	f := newFixture(t, 1)
	done := false
	f.pts[0].Spawn("p", 1, func(p *Process, tk *sim.Task) {
		defer func() { done = true }()
		if err := p.TouchAnon(tk, 3, true); err != nil {
			t.Errorf("touch: %v", err)
			return
		}
		misses := f.vms[0].Metrics.Counter("vm.fault_misses").Value()
		// Repeated touches hit the mapping cache, not the fault path.
		for i := 0; i < 10; i++ {
			if err := p.TouchAnon(tk, 3, true); err != nil {
				t.Errorf("retouch: %v", err)
			}
		}
		if got := f.vms[0].Metrics.Counter("vm.fault_misses").Value(); got != misses {
			t.Errorf("mapping cache missed: %d extra faults", got-misses)
		}
	})
	if !f.runUntil(func() bool { return done }, sim.Second) {
		t.Fatal("never finished")
	}
}

func TestExitReleasesImports(t *testing.T) {
	f := newFixture(t, 2)
	// A file page on cell 1 mapped writable by a process on cell 0:
	// when the process exits, the import is released and write access
	// revoked.
	var frame machine.PageNum
	setup := false
	f.pts[1].Spawn("server", 1, func(p *Process, tk *sim.Task) {
		hd, err := f.pts[1].FS.Create(tk, "/shared")
		if err != nil {
			return
		}
		f.pts[1].FS.Write(tk, hd, 1, 5)
		setup = true
	})
	if !f.runUntil(func() bool { return setup }, sim.Second) {
		t.Fatal("setup failed")
	}
	mapped := false
	f.pts[0].Spawn("mapper", 2, func(p *Process, tk *sim.Task) {
		lp := vm.LogicalPage{Obj: vm.ObjID{Kind: vm.FileObj, Home: 1, Num: 1}}
		pf, err := p.MapShared(tk, lp, true)
		if err != nil {
			t.Errorf("map: %v", err)
			return
		}
		frame = pf.Frame
		mapped = true
		tk.Sleep(10 * sim.Millisecond)
	})
	if !f.runUntil(func() bool { return mapped }, sim.Second) {
		t.Fatal("never mapped")
	}
	if f.vms[1].RemotelyWritablePages() != 1 {
		t.Fatalf("writable = %d", f.vms[1].RemotelyWritablePages())
	}
	// Wait for exit + async release.
	if !f.runUntil(func() bool { return f.vms[1].RemotelyWritablePages() == 0 }, sim.Second) {
		t.Fatal("write permission not revoked after exit")
	}
	_ = frame
}

func TestSpanningThreadIndex(t *testing.T) {
	f := newFixture(t, 2)
	idxs := map[int]bool{}
	launched := false
	f.pts[0].Spawn("launcher", 1, func(p *Process, tk *sim.Task) {
		span, err := f.pts[0].SpawnSpanning(tk, "par", 9,
			[]*Table{f.pts[0], f.pts[1]},
			func(tp *Process, tt *sim.Task) {
				idxs[tp.ThreadIndex()] = true
			})
		if err != nil || len(span.Threads) != 2 {
			t.Errorf("span: %v", err)
		}
		launched = true
	})
	if !f.runUntil(func() bool { return launched && len(idxs) == 2 }, sim.Second) {
		t.Fatalf("idxs = %v", idxs)
	}
	if !idxs[0] || !idxs[1] {
		t.Fatalf("thread indices = %v", idxs)
	}
}

func TestExecAndForkCosts(t *testing.T) {
	f := newFixture(t, 1)
	var forkCost, execCost sim.Time
	done := false
	f.pts[0].Spawn("p", 1, func(p *Process, tk *sim.Task) {
		defer func() { done = true }()
		start := tk.Now()
		_, err := f.pts[0].Fork(tk, p, 0, "c", func(cp *Process, ct *sim.Task) {})
		if err != nil {
			t.Errorf("fork: %v", err)
		}
		forkCost = tk.Now() - start
		start = tk.Now()
		f.pts[0].Exec(tk, p)
		execCost = tk.Now() - start
	})
	if !f.runUntil(func() bool { return done }, sim.Second) {
		t.Fatal("never finished")
	}
	if forkCost < ForkCost || execCost < ExecCost {
		t.Fatalf("fork=%v exec=%v", forkCost, execCost)
	}
}

func TestMigrateMovesProcessAndState(t *testing.T) {
	f := newFixture(t, 2)
	ConnectTables(f.pts...)
	done := false
	f.pts[0].Spawn("mover", 1, func(p *Process, tk *sim.Task) {
		defer func() { done = true }()
		// Write a page pre-migration.
		if err := p.TouchAnon(tk, 5, true); err != nil {
			t.Errorf("touch: %v", err)
			return
		}
		pid := p.PID
		if err := f.pts[0].Migrate(tk, p, 1); err != nil {
			t.Errorf("migrate: %v", err)
			return
		}
		if p.Cell != 1 || p.PID != pid {
			t.Errorf("cell=%d pid=%d", p.Cell, p.PID)
		}
		if p.Leaf.Cell() != 1 {
			t.Errorf("leaf still on cell %d", p.Leaf.Cell())
		}
		// The pre-migration page is reachable through the tree (its
		// data home stays on cell 0).
		if err := p.TouchAnon(tk, 5, false); err != nil {
			t.Errorf("post-migration touch: %v", err)
		}
		if !p.Deps[0] || !p.Deps[1] {
			t.Errorf("deps = %v", p.Deps)
		}
		// Compute now runs on cell 1's scheduler.
		p.Compute(tk, sim.Millisecond)
	})
	deadline := f.e.Now() + sim.Second
	for f.e.Now() < deadline && !done {
		f.e.Run(f.e.Now() + sim.Millisecond)
	}
	if !done {
		t.Fatal("never finished")
	}
	if _, ok := f.pts[0].Get(0); ok {
		t.Fatal("stale entry on source table")
	}
	if f.pts[1].Metrics.Counter("proc.migrated_in").Value() != 1 {
		t.Fatal("migration not counted")
	}
}

func TestCheckMigrationFollowsAdvice(t *testing.T) {
	f := newFixture(t, 2)
	ConnectTables(f.pts...)
	migrated := false
	f.pts[0].Spawn("seq", 1, func(p *Process, tk *sim.Task) {
		for i := 0; i < 20; i++ {
			p.Compute(tk, 2*sim.Millisecond)
			if p.CheckMigration(tk) {
				migrated = p.Cell == 1
			}
		}
	})
	f.e.Run(5 * sim.Millisecond)
	f.pts[0].MigrateAdvice(1)
	if !f.runUntil(func() bool { return migrated }, sim.Second) {
		t.Fatal("process never followed migration advice")
	}
}

func TestMigratedProcessDiesWithOldHome(t *testing.T) {
	// The migrated process depends on its former cell (tree interior
	// nodes live there): when that cell fails, recovery kills it.
	f := newFixture(t, 2)
	ConnectTables(f.pts...)
	var moved *Process
	f.pts[0].Spawn("mover", 1, func(p *Process, tk *sim.Task) {
		p.TouchAnon(tk, 1, true)
		if err := f.pts[0].Migrate(tk, p, 1); err != nil {
			t.Errorf("migrate: %v", err)
			return
		}
		moved = p
		for {
			p.Compute(tk, 5*sim.Millisecond)
		}
	})
	if !f.runUntil(func() bool { return moved != nil }, sim.Second) {
		t.Fatal("never migrated")
	}
	if n := f.pts[1].KillDependents(map[int]bool{0: true}); n != 1 {
		t.Fatalf("killed = %d", n)
	}
}

func TestSpanningSharedAddressSpace(t *testing.T) {
	f := newFixture(t, 2)
	ConnectTables(f.pts...)
	var span *Span
	phase := 0
	f.pts[0].Spawn("launcher", 1, func(p *Process, tk *sim.Task) {
		s, err := f.pts[0].SpawnSpanning(tk, "par", 9,
			[]*Table{f.pts[0], f.pts[1]},
			func(tp *Process, tt *sim.Task) {
				idx := tp.ThreadIndex()
				if idx == 0 {
					// Thread 0 writes shared page 5 first.
					if err := tp.TouchShared(tt, 5, true); err != nil {
						t.Errorf("t0 touch: %v", err)
					}
					phase = 1
				} else {
					// Thread 1 waits, then reads the same page across
					// cells through the shared map.
					for phase == 0 {
						tt.Sleep(sim.Millisecond)
					}
					if err := tp.TouchShared(tt, 5, false); err != nil {
						t.Errorf("t1 touch: %v", err)
					}
					// And writes its own page, claimed locally.
					if err := tp.TouchShared(tt, 9, true); err != nil {
						t.Errorf("t1 write: %v", err)
					}
					phase = 2
				}
				for phase != 2 {
					tt.Sleep(sim.Millisecond)
				}
			})
		if err != nil {
			t.Errorf("spanning: %v", err)
		}
		span = s
	})
	if !f.runUntil(func() bool { return phase == 2 }, sim.Second) {
		t.Fatalf("phase = %d", phase)
	}
	f.e.Run(f.e.Now() + 50*sim.Millisecond)
	// Page 5 is homed where thread 0 lives (cell 0); page 9 on cell 1 —
	// first-writer placement.
	if got := span.SharedPageHome(5); got != 0 {
		t.Fatalf("page 5 home = %d", got)
	}
	if got := span.SharedPageHome(9); got != 1 {
		t.Fatalf("page 9 home = %d", got)
	}
	if span.SharedPages() != 2 {
		t.Fatalf("shared pages = %d", span.SharedPages())
	}
	// Thread 1's read imported the page from cell 0.
	if f.vms[1].Metrics.Counter("vm.imports").Value() == 0 {
		t.Fatal("no cross-cell import for the shared page")
	}
}
