package fs

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/vm"
)

type fixture struct {
	e   *sim.Engine
	m   *machine.Machine
	vms []*vm.VM
	fss []*FS
	eps []*rpc.Endpoint
}

// newFixture builds `cells` single-node cells with /tmp homed on the last.
func newFixture(t *testing.T, cells int) *fixture {
	t.Helper()
	e := sim.NewEngine(33)
	cfg := machine.DefaultConfig()
	cfg.Nodes = cells
	cfg.MemPerNodeMB = 8
	m := machine.New(e, cfg)
	f := &fixture{e: e, m: m}
	cellOfNode := make([]int, cells)
	for i := range cellOfNode {
		cellOfNode[i] = i
	}
	mounts := []Mount{{Prefix: "/tmp", Cell: cells - 1}}
	for c := 0; c < cells; c++ {
		ep := rpc.NewEndpoint(m, c, []*machine.Processor{m.Procs[c]}, 2)
		f.eps = append(f.eps, ep)
	}
	rpc.Connect(f.eps...)
	for c := 0; c < cells; c++ {
		v := vm.New(m, f.eps[c], c, []int{c}, cellOfNode, 16)
		f.vms = append(f.vms, v)
		f.fss = append(f.fss, New(m, f.eps[c], v, c, mounts, m.Nodes[c].Disk))
	}
	return f
}

func (f *fixture) run(t *testing.T, fn func(tk *sim.Task)) {
	t.Helper()
	f.e.Go("test", fn)
	f.e.Run(0)
}

func TestCreateWriteReadLocal(t *testing.T) {
	f := newFixture(t, 2)
	f.run(t, func(tk *sim.Task) {
		h, err := f.fss[0].Create(tk, "/home/a/data")
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		if err := f.fss[0].Write(tk, h, 8, 99); err != nil {
			t.Fatalf("write: %v", err)
		}
		h.Pos = 0
		pages, err := f.fss[0].Read(tk, h, 8)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		for i, p := range pages {
			want := PageTag(h.Key, int64(i), 99)
			if p.Tag != want || p.Corrupt {
				t.Fatalf("page %d: tag=%x want=%x corrupt=%v", i, p.Tag, want, p.Corrupt)
			}
		}
	})
}

func TestRemoteCreateWriteRead(t *testing.T) {
	f := newFixture(t, 2)
	f.run(t, func(tk *sim.Task) {
		// /tmp is homed on cell 1; cell 0 is the client.
		h, err := f.fss[0].Create(tk, "/tmp/build.o")
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		if h.Key.Home != 1 {
			t.Fatalf("home = %d", h.Key.Home)
		}
		if err := f.fss[0].Write(tk, h, 20, 7); err != nil {
			t.Fatalf("write: %v", err)
		}
		// Another client on the data home reads it back coherently —
		// the unified file buffer cache.
		h1, err := f.fss[1].Open(tk, "/tmp/build.o")
		if err != nil {
			t.Fatalf("open at home: %v", err)
		}
		pages, err := f.fss[1].Read(tk, h1, 20)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		for i, p := range pages {
			if want := PageTag(h.Key, int64(i), 7); p.Tag != want {
				t.Fatalf("page %d mismatch", i)
			}
		}
	})
}

func TestOpenLatencies(t *testing.T) {
	// Table 7.3: open 148 µs local, 580 µs remote (3.9×).
	f := newFixture(t, 2)
	var local, remote sim.Time
	f.run(t, func(tk *sim.Task) {
		if _, err := f.fss[0].Create(tk, "/home/u/f"); err != nil {
			t.Fatalf("create: %v", err)
		}
		if _, err := f.fss[0].Create(tk, "/tmp/u/f"); err != nil {
			t.Fatalf("create: %v", err)
		}
		start := tk.Now()
		if _, err := f.fss[0].Open(tk, "/home/u/f"); err != nil {
			t.Fatalf("open local: %v", err)
		}
		local = tk.Now() - start
		start = tk.Now()
		if _, err := f.fss[0].Open(tk, "/tmp/u/f"); err != nil {
			t.Fatalf("open remote: %v", err)
		}
		remote = tk.Now() - start
	})
	if us := local.Micros(); us < 130 || us > 170 {
		t.Errorf("local open = %.0f µs, want ≈148", us)
	}
	if us := remote.Micros(); us < 500 || us > 660 {
		t.Errorf("remote open = %.0f µs, want ≈580", us)
	}
	ratio := float64(remote) / float64(local)
	if ratio < 3.0 || ratio > 4.8 {
		t.Errorf("remote/local open ratio = %.1f, want ≈3.9", ratio)
	}
}

func TestReadLatency4MB(t *testing.T) {
	// Table 7.3: 4 MB read = 65 ms local, 76.2 ms remote (1.2×), with a
	// warm file cache.
	f := newFixture(t, 2)
	const npages = 1024 // 4 MB
	var local, remote sim.Time
	f.run(t, func(tk *sim.Task) {
		hl, _ := f.fss[1].Create(tk, "/data/local")
		if err := f.fss[1].Write(tk, hl, npages, 3); err != nil {
			t.Fatalf("write: %v", err)
		}
		hr, _ := f.fss[1].Create(tk, "/tmp/remote") // homed on cell 1 too
		if err := f.fss[1].Write(tk, hr, npages, 4); err != nil {
			t.Fatalf("write: %v", err)
		}

		hl.Pos = 0
		start := tk.Now()
		if _, err := f.fss[1].Read(tk, hl, npages); err != nil {
			t.Fatalf("local read: %v", err)
		}
		local = tk.Now() - start

		// Client on cell 0 reads the same (cache-warm) remote file.
		h0, err := f.fss[0].Open(tk, "/tmp/remote")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		start = tk.Now()
		if _, err := f.fss[0].Read(tk, h0, npages); err != nil {
			t.Fatalf("remote read: %v", err)
		}
		remote = tk.Now() - start
	})
	if ms := local.Millis(); ms < 60 || ms > 70 {
		t.Errorf("local 4MB read = %.1f ms, want ≈65", ms)
	}
	if ms := remote.Millis(); ms < 71 || ms > 82 {
		t.Errorf("remote 4MB read = %.1f ms, want ≈76.2", ms)
	}
}

func TestWriteLatency4MB(t *testing.T) {
	// Table 7.3: 4 MB write/extend = 83.7 ms local, 87.3 ms remote (1.1×).
	f := newFixture(t, 2)
	const npages = 1024
	var local, remote sim.Time
	f.run(t, func(tk *sim.Task) {
		hl, _ := f.fss[1].Create(tk, "/data/wlocal")
		start := tk.Now()
		if err := f.fss[1].Write(tk, hl, npages, 5); err != nil {
			t.Fatalf("local write: %v", err)
		}
		local = tk.Now() - start

		hr, err := f.fss[0].Create(tk, "/tmp/wremote")
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		start = tk.Now()
		if err := f.fss[0].Write(tk, hr, npages, 6); err != nil {
			t.Fatalf("remote write: %v", err)
		}
		remote = tk.Now() - start
	})
	if ms := local.Millis(); ms < 78 || ms > 90 {
		t.Errorf("local 4MB write = %.1f ms, want ≈83.7", ms)
	}
	if ms := remote.Millis(); ms < 82 || ms > 95 {
		t.Errorf("remote 4MB write = %.1f ms, want ≈87.3", ms)
	}
	if ratio := float64(remote) / float64(local); ratio < 1.0 || ratio > 1.25 {
		t.Errorf("write ratio = %.2f, want ≈1.1", ratio)
	}
}

func TestGenerationBumpGivesEIOToOldHandles(t *testing.T) {
	// §4.2: a discarded dirty page bumps the file generation; handles
	// opened before the failure get EIO, later opens read disk data.
	f := newFixture(t, 2)
	f.run(t, func(tk *sim.Task) {
		h, _ := f.fss[1].Create(tk, "/tmp/precious")
		if err := f.fss[1].Write(tk, h, 4, 11); err != nil {
			t.Fatalf("write: %v", err)
		}
		f.fss[1].Sync(tk) // pages clean on disk
		if err := f.fss[1].Write(tk, h, 2, 12); err != nil {
			t.Fatalf("dirty write: %v", err)
		}
		// A dirty page is preemptively discarded (as recovery would).
		lp := vm.LogicalPage{Obj: vm.ObjID{Kind: vm.FileObj, Home: 1, Num: uint64(h.Key.ID)}, Off: 4}
		pf, ok := f.vms[1].Lookup(lp)
		if !ok || !pf.Dirty {
			t.Fatal("dirty page missing")
		}
		f.fss[1].bumpGeneration(lp)

		h.Pos = 0
		if _, err := f.fss[1].Read(tk, h, 1); !errors.Is(err, ErrStale) {
			t.Errorf("old handle read err = %v, want ErrStale", err)
		}
		if err := f.fss[1].Write(tk, h, 1, 13); !errors.Is(err, ErrStale) {
			t.Errorf("old handle write err = %v, want ErrStale", err)
		}
		// A fresh open succeeds and reads the stable (disk) data.
		h2, err := f.fss[1].Open(tk, "/tmp/precious")
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if _, err := f.fss[1].Read(tk, h2, 4); err != nil {
			t.Errorf("fresh handle read: %v", err)
		}
	})
}

func TestStaleGenerationAcrossRPC(t *testing.T) {
	f := newFixture(t, 2)
	f.run(t, func(tk *sim.Task) {
		h, _ := f.fss[0].Create(tk, "/tmp/r")
		if err := f.fss[0].Write(tk, h, 2, 9); err != nil {
			t.Fatalf("write: %v", err)
		}
		// Bump at the data home; the remote client's handle is stale.
		f.fss[1].bumpGeneration(vm.LogicalPage{
			Obj: vm.ObjID{Kind: vm.FileObj, Home: 1, Num: uint64(h.Key.ID)}})
		h.Pos = 0
		_, err := f.fss[0].Read(tk, h, 1)
		if err == nil || !strings.Contains(err.Error(), "stale") {
			t.Errorf("remote stale read err = %v", err)
		}
	})
}

func TestSyncWritesBack(t *testing.T) {
	f := newFixture(t, 1)
	f.run(t, func(tk *sim.Task) {
		h, _ := f.fss[0].Create(tk, "/a")
		f.fss[0].Write(tk, h, 5, 2)
		if n := f.fss[0].Sync(tk); n != 5 {
			t.Errorf("synced %d pages, want 5", n)
		}
		if n := f.fss[0].Sync(tk); n != 0 {
			t.Errorf("second sync wrote %d pages", n)
		}
		file := f.fss[0].files[h.Key.ID]
		for off := int64(0); off < 5; off++ {
			if file.onDisk[off] != PageTag(h.Key, off, 2) {
				t.Errorf("disk content wrong at %d", off)
			}
		}
	})
}

func TestColdReadFillsFromDisk(t *testing.T) {
	f := newFixture(t, 1)
	f.run(t, func(tk *sim.Task) {
		h, _ := f.fss[0].Create(tk, "/cold")
		f.fss[0].Write(tk, h, 3, 8)
		f.fss[0].Sync(tk)
		// Evict all pages to make the cache cold.
		for off := int64(0); off < 3; off++ {
			lp := vm.LogicalPage{Obj: vm.ObjID{Kind: vm.FileObj, Home: 0, Num: uint64(h.Key.ID)}, Off: off}
			f.vms[0].Evict(tk, lp)
		}
		h.Pos = 0
		pages, err := f.fss[0].Read(tk, h, 3)
		if err != nil {
			t.Fatalf("cold read: %v", err)
		}
		for i, p := range pages {
			if want := PageTag(h.Key, int64(i), 8); p.Tag != want {
				t.Fatalf("page %d wrong after disk fill", i)
			}
		}
		if f.fss[0].Metrics.Counter("fs.disk_reads").Value() != 3 {
			t.Error("disk reads not recorded")
		}
	})
}

func TestOpenNonexistent(t *testing.T) {
	f := newFixture(t, 2)
	f.run(t, func(tk *sim.Task) {
		if _, err := f.fss[0].Open(tk, "/nope"); !errors.Is(err, ErrNotFound) {
			t.Errorf("local err = %v", err)
		}
		_, err := f.fss[0].Open(tk, "/tmp/nope")
		if err == nil || !strings.Contains(err.Error(), "no such file") {
			t.Errorf("remote err = %v", err)
		}
	})
}

func TestUnlinkLocalAndRemote(t *testing.T) {
	f := newFixture(t, 2)
	f.run(t, func(tk *sim.Task) {
		f.fss[0].Create(tk, "/x")
		if err := f.fss[0].Unlink(tk, "/x"); err != nil {
			t.Errorf("unlink local: %v", err)
		}
		f.fss[0].Create(tk, "/tmp/y")
		if err := f.fss[0].Unlink(tk, "/tmp/y"); err != nil {
			t.Errorf("unlink remote: %v", err)
		}
		if _, err := f.fss[0].Open(tk, "/tmp/y"); err == nil {
			t.Error("unlinked file still opens")
		}
	})
}

func TestCorruptPageObservedByReader(t *testing.T) {
	// A wild write that lands before detection is visible to readers —
	// the data-integrity window the paper's preemptive discard narrows.
	f := newFixture(t, 2)
	f.run(t, func(tk *sim.Task) {
		h, _ := f.fss[1].Create(tk, "/tmp/victim")
		f.fss[1].Write(tk, h, 1, 3)
		lp := vm.LogicalPage{Obj: vm.ObjID{Kind: vm.FileObj, Home: 1, Num: uint64(h.Key.ID)}}
		pf, _ := f.vms[1].Lookup(lp)
		f.m.MarkCorrupt(pf.Frame)
		h.Pos = 0
		pages, err := f.fss[1].Read(tk, h, 1)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !pages[0].Corrupt {
			t.Error("corruption not observable")
		}
	})
}

func TestPageTagDeterministicAndDistinct(t *testing.T) {
	k1 := Key{Home: 0, ID: 1}
	k2 := Key{Home: 1, ID: 1}
	if PageTag(k1, 0, 5) != PageTag(k1, 0, 5) {
		t.Error("tag not deterministic")
	}
	if PageTag(k1, 0, 5) == PageTag(k2, 0, 5) {
		t.Error("tags collide across homes")
	}
	if PageTag(k1, 0, 5) == PageTag(k1, 1, 5) {
		t.Error("tags collide across offsets")
	}
}

func TestComponentsCount(t *testing.T) {
	cases := map[string]int{"/a": 1, "/a/b/c": 3, "/": 1, "/tmp/x.o": 2}
	for path, want := range cases {
		if got := components(path); got != want {
			t.Errorf("components(%q) = %d, want %d", path, got, want)
		}
	}
}

func TestStripedFileSpreadsAcrossCells(t *testing.T) {
	f := newFixture(t, 4)
	done := false
	f.run(t, func(tk *sim.Task) {
		defer func() { done = true }()
		sh, err := f.fss[0].CreateStriped(tk, "/data/big", []int{0, 1, 2, 3})
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if err := sh.Write(tk, 16, 5); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		// Each stripe cell holds 4 pages of the file.
		for i, cell := range sh.Cells {
			gen, ok := f.fss[cell].Generation(sh.comps[i].Key.ID)
			if !ok || gen != 0 {
				t.Errorf("component %d missing on cell %d", i, cell)
			}
		}
		sh.Pos = 0
		pages, err := sh.Read(tk, 16)
		if err != nil || len(pages) != 16 {
			t.Errorf("read: %d pages, %v", len(pages), err)
			return
		}
		for _, pg := range pages {
			if pg.Tag == 0 || pg.Corrupt {
				t.Error("bad striped page")
			}
		}
		// Reopen from another cell.
		sh2, err := f.fss[2].OpenStriped(tk, "/data/big", []int{0, 1, 2, 3})
		if err != nil {
			t.Errorf("reopen: %v", err)
			return
		}
		if _, err := sh2.Read(tk, 8); err != nil {
			t.Errorf("read after reopen: %v", err)
		}
	})
	if !done {
		t.Fatal("never finished")
	}
}

func TestReplicatedFileSurvivesReplicaFailure(t *testing.T) {
	f := newFixture(t, 3)
	done := false
	f.run(t, func(tk *sim.Task) {
		defer func() { done = true }()
		rh, err := f.fss[0].CreateReplicated(tk, "/data/precious", []int{1, 2})
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if err := rh.Write(tk, 4, 9); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		// Kill replica cell 1: reads still succeed from cell 2.
		f.m.Nodes[1].FailStop()
		rh.Pos = 0
		pages, err := rh.Read(tk, 4)
		if err != nil {
			t.Errorf("read after replica failure: %v", err)
			return
		}
		if len(pages) != 4 {
			t.Errorf("pages = %d", len(pages))
		}
		// Writes keep succeeding on the surviving replica.
		if err := rh.Write(tk, 2, 9); err != nil {
			t.Errorf("write after replica failure: %v", err)
		}
	})
	if !done {
		t.Fatal("never finished")
	}
}

func TestReplicatedOpenToleratesDeadReplica(t *testing.T) {
	f := newFixture(t, 3)
	done := false
	f.run(t, func(tk *sim.Task) {
		defer func() { done = true }()
		rh, err := f.fss[0].CreateReplicated(tk, "/d", []int{1, 2})
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		rh.Write(tk, 2, 3)
		f.m.Nodes[1].FailStop()
		rh2, err := f.fss[0].OpenReplicated(tk, "/d", []int{1, 2})
		if err != nil {
			t.Errorf("open with dead replica: %v", err)
			return
		}
		if _, err := rh2.Read(tk, 2); err != nil {
			t.Errorf("read: %v", err)
		}
	})
	if !done {
		t.Fatal("never finished")
	}
}

func TestStripedCreateRejectsEmptyCells(t *testing.T) {
	f := newFixture(t, 1)
	f.run(t, func(tk *sim.Task) {
		if _, err := f.fss[0].CreateStriped(tk, "/x", nil); err == nil {
			t.Error("empty stripe set accepted")
		}
		if _, err := f.fss[0].CreateReplicated(tk, "/x", nil); err == nil {
			t.Error("empty replica set accepted")
		}
	})
}

func TestRenameLocalAndRemote(t *testing.T) {
	f := newFixture(t, 2)
	f.run(t, func(tk *sim.Task) {
		f.fss[0].Create(tk, "/a/old")
		if err := f.fss[0].Rename(tk, "/a/old", "/a/new"); err != nil {
			t.Fatalf("rename: %v", err)
		}
		if _, err := f.fss[0].Open(tk, "/a/old"); err == nil {
			t.Error("old name still resolves")
		}
		if _, err := f.fss[0].Open(tk, "/a/new"); err != nil {
			t.Errorf("new name: %v", err)
		}
		// Remote rename within /tmp (cell 1).
		f.fss[0].Create(tk, "/tmp/r1")
		if err := f.fss[0].Rename(tk, "/tmp/r1", "/tmp/r2"); err != nil {
			t.Fatalf("remote rename: %v", err)
		}
		if _, err := f.fss[0].Open(tk, "/tmp/r2"); err != nil {
			t.Errorf("remote new name: %v", err)
		}
		// Cross-home renames are refused.
		if err := f.fss[0].Rename(tk, "/a/new", "/tmp/x"); err == nil {
			t.Error("cross-home rename accepted")
		}
	})
}

func TestTruncateAndSize(t *testing.T) {
	f := newFixture(t, 2)
	f.run(t, func(tk *sim.Task) {
		h, _ := f.fss[0].Create(tk, "/t/file")
		f.fss[0].Write(tk, h, 10, 3)
		if n, err := f.fss[0].SizePages(tk, h); err != nil || n != 10 {
			t.Fatalf("size = %d, %v", n, err)
		}
		if err := f.fss[0].Truncate(tk, h, 4); err != nil {
			t.Fatalf("truncate: %v", err)
		}
		if n, _ := f.fss[0].SizePages(tk, h); n != 4 {
			t.Fatalf("size after truncate = %d", n)
		}
		// Remote size + truncate via /tmp.
		hr, _ := f.fss[0].Create(tk, "/tmp/big")
		f.fss[0].Write(tk, hr, 8, 4)
		if n, err := f.fss[0].SizePages(tk, hr); err != nil || n != 8 {
			t.Fatalf("remote size = %d, %v", n, err)
		}
		if err := f.fss[0].Truncate(tk, hr, 2); err != nil {
			t.Fatalf("remote truncate: %v", err)
		}
		if n, _ := f.fss[0].SizePages(tk, hr); n != 2 {
			t.Fatalf("remote size after truncate = %d", n)
		}
	})
}
