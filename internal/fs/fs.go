// Package fs implements Hive's file system layer: vnodes and client-side
// shadow vnodes (§5.2), a shared name space distributed over data-home
// cells, the page-cache service behind the unified file buffer cache, and
// the stable-write generation numbers that record data loss when dirty
// pages are preemptively discarded after a cell failure (§4.2).
//
// File contents are modelled as one content tag per page (a checksum
// surrogate kept in the machine's page state); the fault-injection
// campaign's output-file comparison checks these tags.
package fs

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/disk"
	"repro/internal/machine"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vm"
)

// PageSize is the file page size in bytes (matches the firewall granularity).
const PageSize = 4096

// Cost components (ns) calibrated to Table 7.3: open 148 µs local / 580 µs
// remote (3.9×), 4 MB read 65 ms local / 76.2 ms remote (1.2×), 4 MB
// write/extend 83.7 ms local / 87.3 ms remote (1.1×). Composition is
// documented in DESIGN.md §4.
const (
	OpenBase        sim.Time = 40 * sim.Microsecond  // fd allocation, credential checks
	LookupLocal     sim.Time = 36 * sim.Microsecond  // per-component directory lookup
	LookupServer    sim.Time = 74 * sim.Microsecond  // server-side remote lookup work
	GetattrServer   sim.Time = 74 * sim.Microsecond  // server-side attribute fetch
	ChunkOverhead   sim.Time = 120 * sim.Microsecond // per-64KB read/write syscall work
	CopyPerPageRead sim.Time = 56 * sim.Microsecond  // copyout of one page to the user buffer
	CopyPerPageWr   sim.Time = 74200                 // copyin + allocation + dirty marking per page
	ImportLight     sim.Time = 1300                  // client binding for a served remote page
	RemoteWritePage sim.Time = 1400                  // per-page remote delayed-write token work
	ChunkPages      int      = 16                    // pages per read/write chunk (64 KB)
)

// Errors.
var (
	// ErrNotFound means the path does not resolve.
	ErrNotFound = errors.New("fs: no such file")
	// ErrStale is the EIO given to processes whose descriptor predates a
	// generation bump — they may have observed the lost dirty data (§4.2).
	ErrStale = errors.New("fs: stale file generation (EIO)")
	// ErrBadArgs is a server-side sanity-check rejection.
	ErrBadArgs = errors.New("fs: bad request arguments")
)

// RPC procedure numbers (range 120-139).
const (
	ProcLookup    rpc.ProcID = 120 + iota // path component lookup
	ProcGetattr                           // attribute fetch at open
	ProcCreate                            // create a file at its data home
	ProcReadPage                          // fetch one page (interrupt-level fast path)
	ProcWriteGen                          // fetch current generation
	ProcWriteBulk                         // write a chunk of page tags
	ProcUnlink                            // remove a file
	ProcRename                            // rename within a data home
	ProcTruncate                          // shorten a file
)

// FileID numbers files within one data home.
type FileID uint64

// Key globally identifies a file.
type Key struct {
	Home int
	ID   FileID
}

// File is the data-home record of one file (the "vnode" of §5.1).
type File struct {
	ID       FileID
	Path     string
	SizePgs  int64
	Gen      uint64 // generation number (§4.2)
	diskBase int64
	onDisk   map[int64]uint64 // page offset -> tag on stable storage
}

// Handle is an open file descriptor. Gen is copied at open time; a
// mismatch with the file's current generation yields ErrStale (§4.2).
type Handle struct {
	Key  Key
	Gen  uint64
	Pos  int64 // page position for sequential I/O
	fs   *FS
	open bool
}

// Mount maps a path prefix to the cell serving it (e.g. /tmp on cell 2).
type Mount struct {
	Prefix string
	Cell   int
}

// FS is one cell's file system instance.
type FS struct {
	CellID int
	M      *machine.Machine
	EP     *rpc.Endpoint
	VM     *vm.VM
	Disk   *disk.Drive
	Mounts []Mount

	files    map[FileID]*File
	byPath   map[string]FileID
	nextID   FileID
	nextDisk int64
	// striped remembers each striped file's cell list so the components
	// homed on a rebooted cell can be re-created at rejoin (RestripeFor).
	striped map[string][]int

	Metrics *stats.Registry
}

// New creates the FS for a cell and registers it as the VM's file-page
// resolver and generation-bump sink.
func New(m *machine.Machine, ep *rpc.Endpoint, v *vm.VM, cellID int, mounts []Mount, d *disk.Drive) *FS {
	f := &FS{
		CellID: cellID, M: m, EP: ep, VM: v, Disk: d, Mounts: mounts,
		files:   make(map[FileID]*File),
		byPath:  make(map[string]FileID),
		nextID:  1,
		Metrics: stats.NewRegistry(),
	}
	v.SetResolver(vm.FileObj, f)
	v.OnDiscardDirty = f.bumpGeneration
	f.registerServices()
	return f
}

// homeFor resolves the data-home cell for a path by longest mount prefix;
// paths with no mount are served locally.
func (f *FS) homeFor(path string) int {
	best, cell := -1, f.CellID
	for _, m := range f.Mounts {
		if strings.HasPrefix(path, m.Prefix) && len(m.Prefix) > best {
			best, cell = len(m.Prefix), m.Cell
		}
	}
	return cell
}

// components counts path components for lookup cost accounting.
func components(path string) int {
	n := 0
	for _, c := range strings.Split(path, "/") {
		if c != "" {
			n++
		}
	}
	if n == 0 {
		n = 1
	}
	return n
}

// lpFor builds the logical page id for a file page.
func lpFor(key Key, off int64) vm.LogicalPage {
	return vm.LogicalPage{Obj: vm.ObjID{Kind: vm.FileObj, Home: key.Home, Num: uint64(key.ID)}, Off: off}
}

// KeyOf extracts the file key from a file logical page.
func KeyOf(lp vm.LogicalPage) Key {
	return Key{Home: lp.Obj.Home, ID: FileID(lp.Obj.Num)}
}

// proc returns a live processor for FS work.
func (f *FS) proc() *machine.Processor {
	for _, p := range f.EP.Procs {
		if !p.Halted() {
			return p
		}
	}
	return f.EP.Procs[0]
}

// validateOpenReply sanity-checks an open/create/lookup reply from a
// remote data home as the careful-message discipline requires. The id
// and generation are opaque tokens only the data home can interpret —
// the generation check on every later page operation is what catches a
// forged or stale id — so shape and a non-negative size are what a
// client can vet here.
func validateOpenReply(res any) (*openReply, error) {
	rep, ok := res.(*openReply)
	if !ok || rep.Size < 0 {
		return nil, ErrBadArgs
	}
	return rep, nil
}

// validatePageReply vets a page-fetch reply: shape only — the tag is
// content, and readers compare it against their expected seed.
func validatePageReply(res any) (*pageReply, error) {
	rep, ok := res.(*pageReply)
	if !ok {
		return nil, ErrBadArgs
	}
	return rep, nil
}

// Create makes a new empty file and returns an open handle to it.
func (f *FS) Create(t *sim.Task, path string) (*Handle, error) {
	home := f.homeFor(path)
	f.proc().Use(t, OpenBase+sim.Time(components(path))*LookupLocal)
	if home == f.CellID {
		file := f.createLocal(path)
		f.Metrics.Counter("fs.creates").Inc()
		return &Handle{Key: Key{Home: home, ID: file.ID}, Gen: file.Gen, fs: f, open: true}, nil
	}
	res, err := f.EP.Call(t, f.proc(), home, ProcCreate, &createArgs{Path: path},
		rpc.CallOpts{DataBytes: len(path)})
	if err != nil {
		return nil, err
	}
	rep, err := validateOpenReply(res)
	if err != nil {
		return nil, err
	}
	return &Handle{Key: Key{Home: home, ID: rep.ID}, Gen: rep.Gen, fs: f, open: true}, nil
}

func (f *FS) createLocal(path string) *File {
	if id, ok := f.byPath[path]; ok {
		file := f.files[id]
		file.SizePgs = 0
		file.onDisk = make(map[int64]uint64)
		return file
	}
	file := &File{
		ID: f.nextID, Path: path,
		diskBase: f.nextDisk,
		onDisk:   make(map[int64]uint64),
	}
	f.nextID++
	f.nextDisk += 16 << 20 // 16 MB extents keep files apart on disk
	f.files[file.ID] = file
	f.byPath[path] = file.ID
	return file
}

// Open resolves path and returns a handle carrying the file's current
// generation number. Local opens cost 148 µs; remote opens pay per-
// component lookup RPCs plus a getattr RPC (≈580 µs) — Table 7.3.
func (f *FS) Open(t *sim.Task, path string) (*Handle, error) {
	home := f.homeFor(path)
	ncomp := components(path)
	f.proc().Use(t, OpenBase)
	if home == f.CellID {
		f.proc().Use(t, sim.Time(ncomp)*LookupLocal)
		id, ok := f.byPath[path]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
		}
		f.Metrics.Counter("fs.opens_local").Inc()
		return &Handle{Key: Key{Home: home, ID: id}, Gen: f.files[id].Gen, fs: f, open: true}, nil
	}
	// Remote: VOP_LOOKUP per component through the shadow vnode, then a
	// getattr to fill it in.
	var rep *openReply
	for i := 1; i <= ncomp; i++ {
		f.proc().Use(t, LookupLocal)
		res, err := f.EP.Call(t, f.proc(), home, ProcLookup,
			&lookupArgs{Path: path, Component: i}, rpc.CallOpts{DataBytes: len(path)})
		if err != nil {
			return nil, err
		}
		rep, err = validateOpenReply(res)
		if err != nil {
			return nil, err
		}
	}
	if _, err := f.EP.Call(t, f.proc(), home, ProcGetattr,
		&lookupArgs{Path: path}, rpc.CallOpts{DataBytes: 64}); err != nil {
		return nil, err
	}
	f.Metrics.Counter("fs.opens_remote").Inc()
	return &Handle{Key: Key{Home: home, ID: rep.ID}, Gen: rep.Gen, fs: f, open: true}, nil
}

// SizePages returns a file's current length in pages.
func (f *FS) SizePages(t *sim.Task, h *Handle) (int64, error) {
	if h.Key.Home == f.CellID {
		f.proc().Use(t, LookupLocal)
		file := f.files[h.Key.ID]
		if file == nil {
			return 0, ErrNotFound
		}
		return file.SizePgs, nil
	}
	res, err := f.EP.Call(t, f.proc(), h.Key.Home, ProcGetattr,
		&lookupArgs{Path: "", Component: int(h.Key.ID)}, rpc.CallOpts{DataBytes: 16})
	if err != nil {
		return 0, err
	}
	rep, err := validateOpenReply(res)
	if err != nil {
		return 0, err
	}
	return int64(rep.Size), nil
}

// Rename moves a file within its data home (cross-home renames would be a
// copy; the paper's name-space work left that for the fault-tolerant FS).
func (f *FS) Rename(t *sim.Task, oldPath, newPath string) error {
	home := f.homeFor(oldPath)
	if f.homeFor(newPath) != home {
		return fmt.Errorf("%w: rename across data homes", ErrBadArgs)
	}
	if home == f.CellID {
		f.proc().Use(t, sim.Time(components(oldPath)+components(newPath))*LookupLocal)
		id, ok := f.byPath[oldPath]
		if !ok {
			return ErrNotFound
		}
		if victim, exists := f.byPath[newPath]; exists {
			delete(f.files, victim)
		}
		delete(f.byPath, oldPath)
		f.byPath[newPath] = id
		f.files[id].Path = newPath
		return nil
	}
	_, err := f.EP.Call(t, f.proc(), home, ProcRename,
		&renameArgs{Old: oldPath, New: newPath}, rpc.CallOpts{DataBytes: len(oldPath) + len(newPath)})
	return err
}

// Truncate shortens a file to npages, evicting the cut pages from the
// cache and dropping their stable copies.
func (f *FS) Truncate(t *sim.Task, h *Handle, npages int64) error {
	if h.Key.Home != f.CellID {
		_, err := f.EP.Call(t, f.proc(), h.Key.Home, ProcTruncate,
			&truncArgs{Key: h.Key, Gen: h.Gen, Pages: npages}, rpc.CallOpts{DataBytes: 32})
		return err
	}
	file := f.files[h.Key.ID]
	if file == nil {
		return ErrNotFound
	}
	if h.Gen != file.Gen {
		return ErrStale
	}
	f.proc().Use(t, OpenBase)
	return f.truncateLocal(t, file, npages)
}

func (f *FS) truncateLocal(t *sim.Task, file *File, npages int64) error {
	for off := npages; off < file.SizePgs; off++ {
		lp := lpFor(Key{Home: f.CellID, ID: file.ID}, off)
		if pf, ok := f.VM.Lookup(lp); ok {
			pf.Dirty = false
			f.VM.Evict(t, lp)
		}
		delete(file.onDisk, off)
	}
	if npages < file.SizePgs {
		file.SizePgs = npages
	}
	return nil
}

// Stat resolves a path and returns whether it exists — the namespace
// probe (header search paths, make dependency checks) that dominates
// compilation workloads' kernel traffic. Local stats are a directory
// lookup; remote ones cost one getattr RPC.
func (f *FS) Stat(t *sim.Task, path string) (bool, error) {
	home := f.homeFor(path)
	if home == f.CellID {
		f.proc().Use(t, sim.Time(components(path))*LookupLocal)
		_, ok := f.byPath[path]
		return ok, nil
	}
	f.proc().Use(t, LookupLocal)
	_, err := f.EP.Call(t, f.proc(), home, ProcGetattr,
		&lookupArgs{Path: path}, rpc.CallOpts{DataBytes: len(path)})
	if err != nil {
		if strings.Contains(err.Error(), "no such file") {
			return false, nil
		}
		return false, err
	}
	return true, nil
}

// Close drops the handle.
func (f *FS) Close(t *sim.Task, h *Handle) { h.open = false }

// Unlink removes a file.
func (f *FS) Unlink(t *sim.Task, path string) error {
	home := f.homeFor(path)
	f.proc().Use(t, OpenBase)
	if home == f.CellID {
		id, ok := f.byPath[path]
		if !ok {
			return ErrNotFound
		}
		delete(f.byPath, path)
		delete(f.files, id)
		return nil
	}
	_, err := f.EP.Call(t, f.proc(), home, ProcUnlink, &lookupArgs{Path: path},
		rpc.CallOpts{DataBytes: len(path)})
	return err
}

// PageData is one page of file content as observed by a reader.
type PageData struct {
	Tag     uint64
	Corrupt bool
}

// Read reads npages sequential pages through h, returning the observed
// content. It reproduces the Table 7.3 read path: chunked syscalls, page
// cache lookups, per-page copyout, and for remote files one interrupt-level
// page-fetch RPC per missed page.
func (f *FS) Read(t *sim.Task, h *Handle, npages int) ([]PageData, error) {
	if !h.open {
		return nil, ErrBadArgs
	}
	out := make([]PageData, 0, npages)
	for done := 0; done < npages; {
		n := ChunkPages
		if rem := npages - done; rem < n {
			n = rem
		}
		f.proc().Use(t, ChunkOverhead)
		for i := 0; i < n; i++ {
			pd, err := f.readPage(t, h, h.Pos)
			if err != nil {
				return out, err
			}
			out = append(out, pd)
			h.Pos++
		}
		done += n
	}
	f.Metrics.Counter("fs.pages_read").Add(int64(len(out)))
	return out, nil
}

// readPage obtains one page of h at offset off.
func (f *FS) readPage(t *sim.Task, h *Handle, off int64) (PageData, error) {
	lp := lpFor(h.Key, off)
	if h.Key.Home == f.CellID {
		file := f.files[h.Key.ID]
		if file == nil {
			return PageData{}, ErrNotFound
		}
		if h.Gen != file.Gen {
			return PageData{}, ErrStale
		}
		pf, ok := f.VM.Lookup(lp)
		if !ok {
			var err error
			pf, err = f.fillFromDisk(t, lp, file)
			if err != nil {
				return PageData{}, err
			}
		}
		f.proc().Use(t, CopyPerPageRead)
		tag, corrupt, err := f.M.ReadPage(t, f.proc(), pf.Frame)
		if err != nil {
			return PageData{}, err
		}
		return PageData{Tag: tag, Corrupt: corrupt}, nil
	}
	// Remote file: if the page is cached locally (mapped via an import),
	// use it; otherwise one page-fetch RPC to the data home.
	if pf, ok := f.VM.Lookup(lp); ok {
		f.proc().Use(t, CopyPerPageRead)
		tag, corrupt, err := f.M.ReadPage(t, f.proc(), pf.Frame)
		if err != nil {
			return PageData{}, err
		}
		return PageData{Tag: tag, Corrupt: corrupt}, nil
	}
	res, err := f.EP.Call(t, f.proc(), h.Key.Home, ProcReadPage,
		&pageArgs{Key: h.Key, Off: off, Gen: h.Gen}, rpc.CallOpts{DataBytes: 64})
	if err != nil {
		return PageData{}, err
	}
	rep, err := validatePageReply(res)
	if err != nil {
		return PageData{}, err
	}
	f.proc().Use(t, ImportLight+CopyPerPageRead)
	f.Metrics.Counter("fs.remote_page_fetches").Inc()
	return PageData{Tag: rep.Tag, Corrupt: rep.Corrupt}, nil
}

// Write appends/overwrites npages sequential pages through h with content
// derived from seed. Remote writes ship chunks of tags to the data home —
// one queued RPC per 16-page chunk plus a small per-page token cost,
// reproducing Table 7.3's 1.1× write ratio.
func (f *FS) Write(t *sim.Task, h *Handle, npages int, seed uint64) error {
	if !h.open {
		return ErrBadArgs
	}
	for done := 0; done < npages; {
		n := ChunkPages
		if rem := npages - done; rem < n {
			n = rem
		}
		f.proc().Use(t, ChunkOverhead)
		tags := make([]uint64, n)
		for i := range tags {
			tags[i] = PageTag(h.Key, h.Pos+int64(i), seed)
			f.proc().Use(t, CopyPerPageWr)
		}
		if h.Key.Home == f.CellID {
			file := f.files[h.Key.ID]
			if file == nil {
				return ErrNotFound
			}
			if h.Gen != file.Gen {
				return ErrStale
			}
			if err := f.writeLocal(t, file, h.Pos, tags); err != nil {
				return err
			}
		} else {
			f.proc().Use(t, sim.Time(n)*RemoteWritePage)
			_, err := f.EP.Call(t, f.proc(), h.Key.Home, ProcWriteBulk,
				&writeArgs{Key: h.Key, Off: h.Pos, Gen: h.Gen, Tags: tags},
				rpc.CallOpts{DataBytes: 256})
			if err != nil {
				return err
			}
		}
		h.Pos += int64(n)
		done += n
	}
	f.Metrics.Counter("fs.pages_written").Add(int64(npages))
	return nil
}

// writeLocal stores tags into the data home's page cache, marking dirty.
func (f *FS) writeLocal(t *sim.Task, file *File, off int64, tags []uint64) error {
	for i, tag := range tags {
		o := off + int64(i)
		lp := lpFor(Key{Home: f.CellID, ID: file.ID}, o)
		pf, ok := f.VM.Lookup(lp)
		if !ok {
			frame, err := f.VM.AllocFrame(t, vm.AllocOpts{})
			if err != nil {
				return err
			}
			pf = f.VM.InsertLocal(lp, frame, false)
		}
		if err := f.M.WritePage(t, f.proc(), pf.Frame, tag); err != nil {
			return err
		}
		pf.Dirty = true
		if o >= file.SizePgs {
			file.SizePgs = o + 1
		}
	}
	return nil
}

// fillFromDisk materializes a page in the cache: from disk when it has
// stable backing, zero-filled (no I/O) when it is a hole or lies beyond
// the end of the file (fresh extends and temp-file mappings).
func (f *FS) fillFromDisk(t *sim.Task, lp vm.LogicalPage, file *File) (*vm.Pfdat, error) {
	frame, err := f.VM.AllocFrame(t, vm.AllocOpts{})
	if err != nil {
		return nil, err
	}
	tag, stable := file.onDisk[lp.Off]
	if stable {
		f.Disk.Read(t, file.diskBase+lp.Off*PageSize, PageSize)
		f.Metrics.Counter("fs.disk_reads").Inc()
	}
	if err := f.M.WritePage(t, f.proc(), frame, tag); err != nil {
		return nil, err
	}
	if lp.Off >= file.SizePgs {
		file.SizePgs = lp.Off + 1
	}
	return f.VM.InsertLocal(lp, frame, false), nil
}

// Sync writes back every dirty locally-homed page (the update daemon),
// in file-ID order so disk traffic is deterministic.
func (f *FS) Sync(t *sim.Task) int {
	n := 0
	ids := make([]FileID, 0, len(f.files))
	for id := range f.files {
		ids = append(ids, id)
	}
	sort.SliceStable(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		file := f.files[id]
		for off := int64(0); off < file.SizePgs; off++ {
			lp := lpFor(Key{Home: f.CellID, ID: id}, off)
			pf, ok := f.VM.Lookup(lp)
			if !ok || !pf.Dirty {
				continue
			}
			tag, _ := f.M.PageTag(pf.Frame)
			f.Disk.Write(t, file.diskBase+off*PageSize, PageSize)
			file.onDisk[off] = tag
			pf.Dirty = false
			n++
		}
	}
	f.Metrics.Counter("fs.pages_synced").Add(int64(n))
	return n
}

// WritebackPage persists one dirty page of a locally-homed file (the
// clock hand's pre-eviction writeback). It reports whether the page is now
// stable.
func (f *FS) WritebackPage(t *sim.Task, lp vm.LogicalPage) bool {
	if lp.Obj.Kind != vm.FileObj || lp.Obj.Home != f.CellID {
		return false // anonymous/remote pages are not ours to stabilize
	}
	file := f.files[FileID(lp.Obj.Num)]
	if file == nil {
		return false
	}
	pf, ok := f.VM.Lookup(lp)
	if !ok {
		return false
	}
	tag, _ := f.M.PageTag(pf.Frame)
	f.Disk.Write(t, file.diskBase+lp.Off*PageSize, PageSize)
	file.onDisk[lp.Off] = tag
	pf.Dirty = false
	f.Metrics.Counter("fs.pages_synced").Inc()
	return true
}

// bumpGeneration records the loss of a discarded dirty page (§4.2): the
// file is the unit of data loss, so its generation number increments and
// every pre-failure descriptor goes stale.
func (f *FS) bumpGeneration(lp vm.LogicalPage) {
	if lp.Obj.Kind != vm.FileObj || lp.Obj.Home != f.CellID {
		return
	}
	if file := f.files[FileID(lp.Obj.Num)]; file != nil {
		file.Gen++
		f.Metrics.Counter("fs.generation_bumps").Inc()
	}
}

// Generation returns a file's current generation (tests/diagnostics).
func (f *FS) Generation(id FileID) (uint64, bool) {
	if file := f.files[id]; file != nil {
		return file.Gen, true
	}
	return 0, false
}

// PageTag derives the canonical content tag for page off of a file written
// with the given seed; workloads use it to verify output integrity.
func PageTag(key Key, off int64, seed uint64) uint64 {
	x := uint64(key.Home)<<56 ^ uint64(key.ID)<<32 ^ uint64(off) ^ seed*0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	if x == 0 {
		x = 1
	}
	return x
}

// ResolvePage implements vm.Resolver for file pages: the data home fills
// from disk; clients import from the data home (§5.2).
func (f *FS) ResolvePage(t *sim.Task, lp vm.LogicalPage, write bool) (*vm.Pfdat, error) {
	key := KeyOf(lp)
	if key.Home == f.CellID {
		file := f.files[key.ID]
		if file == nil {
			return nil, ErrNotFound
		}
		if pf, ok := f.VM.Lookup(lp); ok {
			return pf, nil
		}
		return f.fillFromDisk(t, lp, file)
	}
	f.proc().Use(t, vm.FSClientCost)
	return f.VM.ImportRemote(t, lp, write)
}
