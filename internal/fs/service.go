package fs

import (
	"fmt"

	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Server-side RPC services. Every handler sanity-checks its arguments
// before touching local state, per the message-exchange discipline of §3.1.

// lookupArgs drives ProcLookup/ProcGetattr/ProcUnlink.
type lookupArgs struct {
	Path      string
	Component int
}

// createArgs drives ProcCreate.
type createArgs struct {
	Path string
}

// openReply returns the file identity, generation, and size.
type openReply struct {
	ID   FileID
	Gen  uint64
	Size int64
}

// pageArgs drives ProcReadPage.
type pageArgs struct {
	Key Key
	Off int64
	Gen uint64
}

// pageReply returns one page's content.
type pageReply struct {
	Tag     uint64
	Corrupt bool
}

// renameArgs drives ProcRename.
type renameArgs struct {
	Old, New string
}

// truncArgs drives ProcTruncate.
type truncArgs struct {
	Key   Key
	Gen   uint64
	Pages int64
}

// writeArgs drives ProcWriteBulk.
type writeArgs struct {
	Key  Key
	Off  int64
	Gen  uint64
	Tags []uint64
}

// The validate* functions below are the trust boundary for remote file
// requests: every field a corrupt peer could forge (paths, keys,
// offsets, generations, tag counts) is vetted here before it selects or
// mutates local file state, per the paper's rule that a cell assumes
// its peers are faulty until proven otherwise.

// validateLookupArgs vets a lookup/unlink request: non-empty path homed
// at this cell.
func (f *FS) validateLookupArgs(raw any) (*lookupArgs, error) {
	args, ok := raw.(*lookupArgs)
	if !ok || args.Path == "" || len(args.Path) > 4096 {
		return nil, ErrBadArgs
	}
	if f.homeFor(args.Path) != f.CellID {
		return nil, ErrBadArgs
	}
	return args, nil
}

// validateGetattrArgs vets a getattr request, which names a file either
// by path or — with an empty path — by id in the Component field.
func (f *FS) validateGetattrArgs(raw any) (*lookupArgs, error) {
	args, ok := raw.(*lookupArgs)
	if !ok || len(args.Path) > 4096 || args.Component < 0 {
		return nil, ErrBadArgs
	}
	return args, nil
}

// validateRenameArgs vets a rename request: both paths well-formed and
// homed at this cell (cross-home renames are rejected at the client).
func (f *FS) validateRenameArgs(raw any) (*renameArgs, error) {
	args, ok := raw.(*renameArgs)
	if !ok || args.Old == "" || args.New == "" {
		return nil, ErrBadArgs
	}
	if f.homeFor(args.Old) != f.CellID || f.homeFor(args.New) != f.CellID {
		return nil, ErrBadArgs
	}
	return args, nil
}

// validateTruncArgs vets a truncate request and resolves its target.
func (f *FS) validateTruncArgs(raw any) (*truncArgs, *File, error) {
	args, ok := raw.(*truncArgs)
	if !ok || args.Key.Home != f.CellID || args.Pages < 0 {
		return nil, nil, ErrBadArgs
	}
	file := f.files[args.Key.ID]
	if file == nil {
		return nil, nil, ErrNotFound
	}
	if args.Gen != file.Gen {
		return nil, nil, ErrStale
	}
	return args, file, nil
}

// validateCreateArgs vets a create request: well-formed path, homed here.
func (f *FS) validateCreateArgs(raw any) (*createArgs, error) {
	args, ok := raw.(*createArgs)
	if !ok || args.Path == "" || len(args.Path) > 4096 {
		return nil, ErrBadArgs
	}
	if f.homeFor(args.Path) != f.CellID {
		return nil, fmt.Errorf("%w: %s not homed here", ErrBadArgs, args.Path)
	}
	return args, nil
}

// validatePageArgs vets a page-fetch request and resolves it to the
// local file it names: key homed here, sane offset, file present,
// generation current.
func (f *FS) validatePageArgs(raw any) (*pageArgs, *File, error) {
	args, ok := raw.(*pageArgs)
	if !ok || args.Key.Home != f.CellID || args.Off < 0 {
		return nil, nil, ErrBadArgs
	}
	file := f.files[args.Key.ID]
	if file == nil {
		return nil, nil, ErrNotFound
	}
	if args.Gen != file.Gen {
		return nil, nil, ErrStale
	}
	return args, file, nil
}

// validateWriteArgs vets a bulk-write request and resolves its target
// file, additionally bounding the tag payload a peer may push at us.
func (f *FS) validateWriteArgs(raw any) (*writeArgs, *File, error) {
	args, ok := raw.(*writeArgs)
	if !ok || args.Key.Home != f.CellID || args.Off < 0 || len(args.Tags) > 1024 {
		return nil, nil, ErrBadArgs
	}
	file := f.files[args.Key.ID]
	if file == nil {
		return nil, nil, ErrNotFound
	}
	if args.Gen != file.Gen {
		return nil, nil, ErrStale
	}
	return args, file, nil
}

func (f *FS) registerServices() {
	// Path lookup: interrupt-level (directory maps are in memory).
	f.EP.Register(ProcLookup, "fs.lookup",
		func(req *rpc.Request) (any, sim.Time, bool, error) {
			args, err := f.validateLookupArgs(req.Args)
			if err != nil {
				return nil, 0, true, err
			}
			id, ok := f.byPath[args.Path]
			if !ok {
				return nil, LookupServer, true, fmt.Errorf("%w: %s", ErrNotFound, args.Path)
			}
			return &openReply{ID: id, Gen: f.files[id].Gen}, LookupServer, true, nil
		}, nil, rpc.Idempotent())

	f.EP.Register(ProcGetattr, "fs.getattr",
		func(req *rpc.Request) (any, sim.Time, bool, error) {
			args, err := f.validateGetattrArgs(req.Args)
			if err != nil {
				return nil, 0, true, err
			}
			if args.Path == "" {
				// Getattr by file id (size queries on open handles).
				file := f.files[FileID(args.Component)]
				if file == nil {
					return nil, GetattrServer, true, ErrNotFound
				}
				return &openReply{ID: file.ID, Gen: file.Gen, Size: file.SizePgs},
					GetattrServer, true, nil
			}
			id, ok := f.byPath[args.Path]
			if !ok {
				return nil, GetattrServer, true, ErrNotFound
			}
			file := f.files[id]
			return &openReply{ID: id, Gen: file.Gen, Size: file.SizePgs}, GetattrServer, true, nil
		}, nil, rpc.Idempotent())

	f.EP.Register(ProcRename, "fs.rename", nil,
		func(t *sim.Task, req *rpc.Request) (any, error) {
			args, err := f.validateRenameArgs(req.Args)
			if err != nil {
				return nil, err
			}
			return nil, f.Rename(t, args.Old, args.New)
		})

	f.EP.Register(ProcTruncate, "fs.truncate", nil,
		func(t *sim.Task, req *rpc.Request) (any, error) {
			args, file, err := f.validateTruncArgs(req.Args)
			if err != nil {
				return nil, err
			}
			return nil, f.truncateLocal(t, file, args.Pages)
		})

	f.EP.Register(ProcCreate, "fs.create", nil,
		func(t *sim.Task, req *rpc.Request) (any, error) {
			args, err := f.validateCreateArgs(req.Args)
			if err != nil {
				return nil, err
			}
			f.proc().Use(t, LookupServer)
			file := f.createLocal(args.Path)
			return &openReply{ID: file.ID, Gen: file.Gen}, nil
		})

	// Page fetch: the common case — a hit in the data-home page cache —
	// is serviced entirely at interrupt level (§4.3); disk fills fall
	// back to the queued path.
	f.EP.Register(ProcReadPage, "fs.readpage",
		func(req *rpc.Request) (any, sim.Time, bool, error) {
			args, _, err := f.validatePageArgs(req.Args)
			if err != nil {
				return nil, 0, true, err
			}
			if f.VM.InRecovery() || f.VM.Lock.Locked() {
				return nil, 0, false, nil
			}
			pf, ok := f.VM.Lookup(lpFor(args.Key, args.Off))
			if !ok {
				return nil, 0, false, nil // disk fill: queued path
			}
			tag, corrupt := f.M.PageTag(pf.Frame)
			return &pageReply{Tag: tag, Corrupt: corrupt}, vm.MiscVMDataHome, true, nil
		},
		func(t *sim.Task, req *rpc.Request) (any, error) {
			args, file, err := f.validatePageArgs(req.Args)
			if err != nil {
				return nil, err
			}
			if f.VM.InRecovery() {
				return nil, vm.ErrRecovering
			}
			pf, ok := f.VM.Lookup(lpFor(args.Key, args.Off))
			if !ok {
				pf, err = f.fillFromDisk(t, lpFor(args.Key, args.Off), file)
				if err != nil {
					return nil, err
				}
			}
			tag, corrupt := f.M.PageTag(pf.Frame)
			return &pageReply{Tag: tag, Corrupt: corrupt}, nil
		}, rpc.Idempotent())

	// Bulk write: queued (it allocates frames and may evict).
	f.EP.Register(ProcWriteBulk, "fs.writebulk", nil,
		func(t *sim.Task, req *rpc.Request) (any, error) {
			args, file, err := f.validateWriteArgs(req.Args)
			if err != nil {
				return nil, err
			}
			return nil, f.writeLocal(t, file, args.Off, args.Tags)
		})

	f.EP.Register(ProcUnlink, "fs.unlink", nil,
		func(t *sim.Task, req *rpc.Request) (any, error) {
			args, err := f.validateLookupArgs(req.Args)
			if err != nil {
				return nil, err
			}
			id, ok := f.byPath[args.Path]
			if !ok {
				return nil, ErrNotFound
			}
			f.proc().Use(t, LookupServer)
			delete(f.byPath, args.Path)
			delete(f.files, id)
			return nil, nil
		})
}
