package fs

import (
	"fmt"
	"sort"

	"repro/internal/rpc"
	"repro/internal/sim"
)

// Fault-tolerant file system mechanisms (§8 lists these as requirements
// for a production multicellular OS: "mechanisms that support file
// replication and striping across cells"). Both are built on component
// files living in a reserved per-cell namespace ("/.ft/..."), which every
// cell serves locally, so the ordinary data-home machinery (page cache,
// generation numbers, preemptive discard) applies per component.
//
//   - A striped file spreads page i to component i%k on stripe cell k —
//     bandwidth and capacity across cells, no redundancy.
//   - A replicated file keeps a full copy on every replica cell — reads
//     prefer the nearest live copy, writes go to all, and the file
//     survives the failure of any proper subset of its replica cells.

// compPath names the component of path on replica/stripe index i.
func compPath(path string, i int) string {
	return fmt.Sprintf("/.ft%s#%d", path, i)
}

// StripedHandle is an open striped file.
type StripedHandle struct {
	Path   string
	Cells  []int
	comps  []*Handle // one per stripe cell
	Pos    int64
	fs     *FS
	stripe int
}

// CreateStriped creates a striped file across the given cells and returns
// an open handle. Component files are created at each stripe cell. The
// cell list is remembered so a rejoining cell's components can be
// re-created after a reboot (RestripeFor).
func (f *FS) CreateStriped(t *sim.Task, path string, cells []int) (*StripedHandle, error) {
	if len(cells) == 0 {
		return nil, ErrBadArgs
	}
	sh := &StripedHandle{Path: path, Cells: append([]int(nil), cells...), fs: f, stripe: len(cells)}
	for i, cell := range cells {
		h, err := f.createAt(t, compPath(path, i), cell)
		if err != nil {
			return nil, fmt.Errorf("stripe %d on cell %d: %w", i, cell, err)
		}
		sh.comps = append(sh.comps, h)
	}
	if f.striped == nil {
		f.striped = make(map[string][]int)
	}
	f.striped[path] = append([]int(nil), cells...)
	f.Metrics.Counter("fs.striped_creates").Inc()
	return sh, nil
}

// RestripeFor re-creates this cell's recorded striped components that live
// on a rejoined cell: the fresh image booted with an empty namespace, so
// every stripe homed there is gone (striping carries no redundancy — the
// data is lost; what is restored is the *placement*, so new writes stripe
// across full capacity again and opens stop failing). Returns the number
// of components re-created.
func (f *FS) RestripeFor(t *sim.Task, cell int) int {
	if len(f.striped) == 0 {
		return 0
	}
	paths := make([]string, 0, len(f.striped))
	for p := range f.striped {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	restored := 0
	for _, p := range paths {
		for i, c := range f.striped[p] {
			if c != cell {
				continue
			}
			if _, err := f.createAt(t, compPath(p, i), cell); err == nil {
				restored++
			}
		}
	}
	if restored > 0 {
		f.Metrics.Counter("fs.stripes_restored").Add(int64(restored))
	}
	return restored
}

// OpenStriped opens an existing striped file (the caller supplies the same
// cell list used at creation; a directory service would record it).
func (f *FS) OpenStriped(t *sim.Task, path string, cells []int) (*StripedHandle, error) {
	sh := &StripedHandle{Path: path, Cells: append([]int(nil), cells...), fs: f, stripe: len(cells)}
	for i, cell := range cells {
		h, err := f.openAt(t, compPath(path, i), cell)
		if err != nil {
			return nil, err
		}
		sh.comps = append(sh.comps, h)
	}
	return sh, nil
}

// Write writes npages sequential pages, page i landing on stripe i%k.
func (sh *StripedHandle) Write(t *sim.Task, npages int, seed uint64) error {
	for n := 0; n < npages; n++ {
		comp := sh.comps[int(sh.Pos)%sh.stripe]
		comp.Pos = sh.Pos / int64(sh.stripe)
		if err := sh.fs.Write(t, comp, 1, seed); err != nil {
			return err
		}
		sh.Pos++
	}
	return nil
}

// Read reads npages sequential pages from their stripes.
func (sh *StripedHandle) Read(t *sim.Task, npages int) ([]PageData, error) {
	var out []PageData
	for n := 0; n < npages; n++ {
		comp := sh.comps[int(sh.Pos)%sh.stripe]
		comp.Pos = sh.Pos / int64(sh.stripe)
		pages, err := sh.fs.Read(t, comp, 1)
		if err != nil {
			return out, err
		}
		out = append(out, pages...)
		sh.Pos++
	}
	return out, nil
}

// ReplicatedHandle is an open replicated file.
type ReplicatedHandle struct {
	Path  string
	Cells []int
	comps []*Handle
	Pos   int64
	fs    *FS
}

// CreateReplicated creates a file with one full copy on each cell.
func (f *FS) CreateReplicated(t *sim.Task, path string, cells []int) (*ReplicatedHandle, error) {
	if len(cells) == 0 {
		return nil, ErrBadArgs
	}
	rh := &ReplicatedHandle{Path: path, Cells: append([]int(nil), cells...), fs: f}
	for i, cell := range cells {
		h, err := f.createAt(t, compPath(path, i), cell)
		if err != nil {
			return nil, err
		}
		rh.comps = append(rh.comps, h)
	}
	f.Metrics.Counter("fs.replicated_creates").Inc()
	return rh, nil
}

// OpenReplicated opens an existing replicated file; replicas on failed
// cells are tolerated as long as one copy is reachable.
func (f *FS) OpenReplicated(t *sim.Task, path string, cells []int) (*ReplicatedHandle, error) {
	rh := &ReplicatedHandle{Path: path, Cells: append([]int(nil), cells...), fs: f}
	var lastErr error
	for i, cell := range cells {
		h, err := f.openAt(t, compPath(path, i), cell)
		if err != nil {
			lastErr = err
			rh.comps = append(rh.comps, nil)
			continue
		}
		rh.comps = append(rh.comps, h)
	}
	for _, h := range rh.comps {
		if h != nil {
			return rh, nil
		}
	}
	return nil, fmt.Errorf("fs: no live replica of %s: %w", path, lastErr)
}

// Write updates every reachable replica; it fails only when no replica
// accepted the write (strict quorum semantics are left to callers needing
// them — the paper's direction is availability for compute-server files).
func (rh *ReplicatedHandle) Write(t *sim.Task, npages int, seed uint64) error {
	okCount := 0
	var lastErr error
	for _, comp := range rh.comps {
		if comp == nil {
			continue
		}
		comp.Pos = rh.Pos
		if err := rh.fs.Write(t, comp, npages, seed); err != nil {
			lastErr = err
			continue
		}
		okCount++
	}
	if okCount == 0 {
		return fmt.Errorf("fs: replicated write failed everywhere: %w", lastErr)
	}
	rh.Pos += int64(npages)
	return nil
}

// Read serves from the first reachable replica, preferring a local one.
func (rh *ReplicatedHandle) Read(t *sim.Task, npages int) ([]PageData, error) {
	order := make([]*Handle, 0, len(rh.comps))
	for i, comp := range rh.comps {
		if comp != nil && rh.Cells[i] == rh.fs.CellID {
			order = append(order, comp)
		}
	}
	for i, comp := range rh.comps {
		if comp != nil && rh.Cells[i] != rh.fs.CellID {
			order = append(order, comp)
		}
	}
	var lastErr error
	for _, comp := range order {
		comp.Pos = rh.Pos
		pages, err := rh.fs.Read(t, comp, npages)
		if err == nil {
			rh.Pos += int64(npages)
			return pages, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("fs: replicated read failed everywhere: %w", lastErr)
}

// createAt creates a component file on an explicit cell, bypassing mount
// resolution (the /.ft namespace is served locally by every cell).
func (f *FS) createAt(t *sim.Task, path string, cell int) (*Handle, error) {
	if cell == f.CellID {
		f.proc().Use(t, OpenBase+sim.Time(components(path))*LookupLocal)
		file := f.createLocal(path)
		return &Handle{Key: Key{Home: cell, ID: file.ID}, Gen: file.Gen, fs: f, open: true}, nil
	}
	res, err := f.EP.Call(t, f.proc(), cell, ProcCreate, &createArgs{Path: path},
		rpc.CallOpts{DataBytes: len(path)})
	if err != nil {
		return nil, err
	}
	rep, err := validateOpenReply(res)
	if err != nil {
		return nil, err
	}
	return &Handle{Key: Key{Home: cell, ID: rep.ID}, Gen: rep.Gen, fs: f, open: true}, nil
}

// openAt opens a component file on an explicit cell.
func (f *FS) openAt(t *sim.Task, path string, cell int) (*Handle, error) {
	if cell == f.CellID {
		return f.Open(t, path)
	}
	res, err := f.EP.Call(t, f.proc(), cell, ProcGetattr,
		&lookupArgs{Path: path}, rpc.CallOpts{DataBytes: len(path), NoHint: true})
	if err != nil {
		return nil, err
	}
	rep, err := validateOpenReply(res)
	if err != nil {
		return nil, err
	}
	return &Handle{Key: Key{Home: cell, ID: rep.ID}, Gen: rep.Gen, fs: f, open: true}, nil
}
