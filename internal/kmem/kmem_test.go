package kmem

import (
	"testing"
	"testing/quick"
)

func TestAddrEncoding(t *testing.T) {
	a := MakeAddr(3, 0x1000)
	if a.Cell() != 3 || a.Offset() != 0x1000 || !a.Aligned() {
		t.Fatalf("addr %v: cell=%d off=%#x", a, a.Cell(), a.Offset())
	}
	if NilAddr.String() != "nil" {
		t.Fatalf("nil string = %q", NilAddr.String())
	}
	if MakeAddr(1, 0x1003).Aligned() {
		t.Fatal("unaligned address reported aligned")
	}
}

func TestAllocReadWrite(t *testing.T) {
	a := NewArena(2)
	addr := a.Alloc(7, 4)
	if addr.Cell() != 2 {
		t.Fatalf("cell = %d", addr.Cell())
	}
	a.WriteWord(addr, 1, 0xabc)
	v, err := a.ReadWord(addr, 1)
	if err != nil || v != 0xabc {
		t.Fatalf("read = %#x, %v", v, err)
	}
	tag, err := a.TagAt(addr)
	if err != nil || tag != 7 {
		t.Fatalf("tag = %d, %v", tag, err)
	}
	if a.Size(addr) != 4 {
		t.Fatalf("size = %d", a.Size(addr))
	}
}

func TestFreeRemovesTag(t *testing.T) {
	a := NewArena(0)
	addr := a.Alloc(7, 2)
	a.Free(addr)
	tag, err := a.TagAt(addr)
	if err != nil {
		t.Fatalf("tag read errored: %v", err)
	}
	if tag == 7 {
		t.Fatal("tag survived free — stale pointers would pass checks")
	}
	if a.Live() != 0 {
		t.Fatalf("live = %d", a.Live())
	}
	a.Free(addr) // double free is a tolerated no-op
}

func TestUnmappedReadsReturnDeterministicGarbage(t *testing.T) {
	a := NewArena(0)
	wild := MakeAddr(0, 0x424240)
	v1, err1 := a.ReadWord(wild, 3)
	v2, err2 := a.ReadWord(wild, 3)
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v %v", err1, err2)
	}
	if v1 != v2 {
		t.Fatal("garbage not deterministic")
	}
	v3, _ := a.ReadWord(wild, 4)
	if v3 == v1 {
		t.Fatal("garbage not position-dependent")
	}
}

func TestOutOfBoundsReadIsGarbageNotPanic(t *testing.T) {
	a := NewArena(0)
	addr := a.Alloc(1, 2)
	if _, err := a.ReadWord(addr, 99); err != nil {
		t.Fatalf("oob read errored: %v", err)
	}
	a.WriteWord(addr, 99, 5) // silently vanishes
}

func TestAccessibleGate(t *testing.T) {
	a := NewArena(0)
	addr := a.Alloc(1, 1)
	a.Accessible = func() error { return ErrBusError }
	if _, err := a.ReadWord(addr, 0); err != ErrBusError {
		t.Fatalf("err = %v", err)
	}
	if _, err := a.TagAt(addr); err != ErrBusError {
		t.Fatalf("tag err = %v", err)
	}
}

func TestUnbackedRangeBusError(t *testing.T) {
	a := NewArena(0)
	far := MakeAddr(0, arenaLimit+8)
	if _, err := a.ReadWord(far, 0); err != ErrBusError {
		t.Fatalf("err = %v", err)
	}
}

func TestCorruptWord(t *testing.T) {
	a := NewArena(0)
	addr := a.Alloc(1, 3)
	a.WriteWord(addr, 2, 10)
	if !a.CorruptWord(addr, 2, 0xbad) {
		t.Fatal("corrupt failed")
	}
	v, _ := a.ReadWord(addr, 2)
	if v != 0xbad {
		t.Fatalf("v = %#x", v)
	}
	if a.CorruptWord(MakeAddr(0, 0x999940), 0, 1) {
		t.Fatal("corrupted unmapped address")
	}
}

func TestSpaceRouting(t *testing.T) {
	s := NewSpace(3)
	addr := s.Arena(1).Alloc(5, 1)
	s.Arena(1).WriteWord(addr, 0, 42)
	v, err := s.ReadWord(addr, 0)
	if err != nil || v != 42 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	tag, err := s.TagAt(addr)
	if err != nil || tag != 5 {
		t.Fatalf("tag=%d err=%v", tag, err)
	}
	if _, err := s.ReadWord(MakeAddr(9, 64), 0); err != ErrBusError {
		t.Fatalf("bogus cell err = %v", err)
	}
	if s.NumCells() != 3 {
		t.Fatalf("cells = %d", s.NumCells())
	}
}

func TestAllocationsDoNotOverlap(t *testing.T) {
	a := NewArena(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		addr := a.Alloc(TypeTag(i), 10)
		if seen[addr.Offset()] {
			t.Fatalf("offset %#x reused", addr.Offset())
		}
		seen[addr.Offset()] = true
	}
}

// Property: round-tripping any (cell, offset) pair through an Addr is exact
// for in-range values.
func TestPropertyAddrRoundTrip(t *testing.T) {
	f := func(cell uint16, off uint32) bool {
		a := MakeAddr(int(cell), uint64(off))
		return a.Cell() == int(cell) && a.Offset() == uint64(off)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: data written to distinct live objects never bleeds between them.
func TestPropertyObjectIsolation(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) == 0 {
			return true
		}
		a := NewArena(0)
		addrs := make([]Addr, len(vals))
		for i, v := range vals {
			addrs[i] = a.Alloc(1, 1)
			a.WriteWord(addrs[i], 0, v)
		}
		for i, v := range vals {
			got, err := a.ReadWord(addrs[i], 0)
			if err != nil || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
