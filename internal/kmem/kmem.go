// Package kmem models each cell's kernel memory as a word-addressed arena
// that other cells may read directly through shared memory (§4.1 of the
// paper). It exists to make remote reads *dangerous in the same ways they
// are on real hardware*: a wild pointer dereference returns garbage rather
// than failing cleanly, a pointer into a failed node's memory raises a bus
// error, and a freed object's allocator-written type tag is gone — exactly
// the hazards the careful reference protocol defends against.
package kmem

import (
	"errors"
	"fmt"
	"sort"
)

// Addr is a simulated kernel virtual address: cell number in the high 16
// bits, byte offset in the low 48. The zero Addr is the nil pointer.
type Addr uint64

// NilAddr is the nil kernel pointer.
const NilAddr Addr = 0

// WordSize is the machine word size in bytes; all kernel objects are
// word-aligned arrays of words.
const WordSize = 8

// arenaLimit bounds each cell's kernel address space; addresses beyond it
// are not backed by memory and raise bus errors.
const arenaLimit = 1 << 40

// MakeAddr builds an address from a cell and byte offset.
func MakeAddr(cell int, off uint64) Addr {
	return Addr(uint64(cell)<<48 | off&(1<<48-1))
}

// Cell extracts the owning cell number.
func (a Addr) Cell() int { return int(a >> 48) }

// Offset extracts the byte offset within the cell's arena.
func (a Addr) Offset() uint64 { return uint64(a) & (1<<48 - 1) }

// Aligned reports whether the address is word-aligned.
func (a Addr) Aligned() bool { return a.Offset()%WordSize == 0 }

// String formats the address for diagnostics.
func (a Addr) String() string {
	if a == NilAddr {
		return "nil"
	}
	return fmt.Sprintf("cell%d:0x%x", a.Cell(), a.Offset())
}

// TypeTag identifies the type of an allocated kernel object. The allocator
// writes it and the deallocator removes it (§4.1), so a stale pointer's tag
// check fails.
type TypeTag uint32

// ErrBusError is raised for addresses outside any backed range or on a
// failed/cut-off node.
var ErrBusError = errors.New("kmem: bus error")

// object is one allocated kernel object.
type object struct {
	tag   TypeTag
	words []uint64
}

// Arena is one cell's kernel heap.
type Arena struct {
	cell    int
	objects map[uint64]*object // keyed by byte offset
	nextOff uint64

	// Accessible, if set, gates every access with the machine fault
	// model (bus error when the backing node failed or is cut off).
	Accessible func() error

	allocs, frees int64
}

// NewArena returns an empty arena for the given cell.
func NewArena(cell int) *Arena {
	return &Arena{
		cell:    cell,
		objects: make(map[uint64]*object),
		nextOff: 64, // keep offset 0 unmapped so NilAddr never resolves
	}
}

// Cell returns the owning cell number.
func (a *Arena) Cell() int { return a.cell }

// Reset discards every object and returns the arena to its freshly-booted
// state, keeping the *Arena pointer itself valid: peers hold the pointer
// through Space, so a cell microboot must empty the heap in place rather
// than swap in a new arena. The Accessible gate is left for the caller to
// rebind (the fresh cell image installs its own).
func (a *Arena) Reset() {
	a.objects = make(map[uint64]*object)
	a.nextOff = 64
	a.allocs, a.frees = 0, 0
}

// Alloc allocates an object of nwords words with the given type tag and
// returns its address. Objects are 64-byte aligned like real allocations.
func (a *Arena) Alloc(tag TypeTag, nwords int) Addr {
	if nwords <= 0 {
		panic("kmem: non-positive allocation")
	}
	off := a.nextOff
	a.nextOff += uint64((nwords*WordSize + 63) / 64 * 64)
	a.objects[off] = &object{tag: tag, words: make([]uint64, nwords)}
	a.allocs++
	return MakeAddr(a.cell, off)
}

// Free releases the object at addr, removing its type tag. Freeing an
// unknown address is a no-op (double frees are a kernel bug we tolerate in
// simulation rather than crash the host).
func (a *Arena) Free(addr Addr) {
	if _, ok := a.objects[addr.Offset()]; ok {
		delete(a.objects, addr.Offset())
		a.frees++
	}
}

// Live returns the number of live objects (for leak tests).
func (a *Arena) Live() int { return len(a.objects) }

// EachTagged calls fn for every live object carrying the given type tag,
// in address order — the deterministic iteration the kernel's periodic
// consistency audits need.
func (a *Arena) EachTagged(tag TypeTag, fn func(Addr)) {
	offs := make([]uint64, 0, len(a.objects))
	for off, obj := range a.objects {
		if obj.tag == tag {
			offs = append(offs, off)
		}
	}
	sort.SliceStable(offs, func(i, j int) bool { return offs[i] < offs[j] })
	for _, off := range offs {
		fn(MakeAddr(a.cell, off))
	}
}

// garbage produces a deterministic junk word for unmapped reads, so wild
// pointer traversals behave identically across runs.
func garbage(addr Addr, i int) uint64 {
	x := uint64(addr) ^ uint64(i)*0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// lookup finds the object containing addr, if any. addr may point at the
// object's base only (interior pointers read garbage — matching the paper's
// alignment check, which rejects them before any read).
func (a *Arena) lookup(addr Addr) *object {
	return a.objects[addr.Offset()]
}

// check validates that addr is backed by this arena's address range.
func (a *Arena) check(addr Addr) error {
	if a.Accessible != nil {
		if err := a.Accessible(); err != nil {
			return err
		}
	}
	if addr.Offset() >= arenaLimit {
		return ErrBusError
	}
	return nil
}

// ReadWord reads word i of the object at addr. Unmapped or out-of-bounds
// reads return deterministic garbage with a nil error — like real memory.
// Bus errors are returned only per the fault model (failed node, unbacked
// address range).
func (a *Arena) ReadWord(addr Addr, i int) (uint64, error) {
	if err := a.check(addr); err != nil {
		return 0, err
	}
	obj := a.lookup(addr)
	if obj == nil || i < 0 || i >= len(obj.words) {
		return garbage(addr, i), nil
	}
	return obj.words[i], nil
}

// WriteWord stores v into word i of the object at addr; only the owning
// cell's kernel calls this (cells never write each other's internals, §3.1).
// Writes to unmapped addresses vanish, like stores to reused memory.
func (a *Arena) WriteWord(addr Addr, i int, v uint64) {
	obj := a.lookup(addr)
	if obj == nil || i < 0 || i >= len(obj.words) {
		return
	}
	obj.words[i] = v
}

// TagAt reads the allocator type tag at addr. Unmapped addresses yield a
// garbage tag (with nil error), which is precisely what a stale pointer
// check must detect.
func (a *Arena) TagAt(addr Addr) (TypeTag, error) {
	if err := a.check(addr); err != nil {
		return 0, err
	}
	obj := a.lookup(addr)
	if obj == nil {
		return TypeTag(garbage(addr, -1)), nil
	}
	return obj.tag, nil
}

// Size returns the word count of the object at addr (0 if unmapped).
func (a *Arena) Size(addr Addr) int {
	if obj := a.lookup(addr); obj != nil {
		return len(obj.words)
	}
	return 0
}

// CorruptWord overwrites word i at addr regardless of bounds bookkeeping —
// the software fault injector's hook (§7.4 corrupts kernel data structures
// in place).
func (a *Arena) CorruptWord(addr Addr, i int, v uint64) bool {
	obj := a.lookup(addr)
	if obj == nil || i < 0 || i >= len(obj.words) {
		return false
	}
	obj.words[i] = v
	return true
}

// Space is the collection of every cell's arena: the machine-wide kernel
// address space view used for cross-cell reads.
type Space struct {
	arenas []*Arena
}

// NewSpace creates arenas for n cells.
func NewSpace(n int) *Space {
	s := &Space{}
	for i := 0; i < n; i++ {
		s.arenas = append(s.arenas, NewArena(i))
	}
	return s
}

// Arena returns cell c's arena.
func (s *Space) Arena(c int) *Arena { return s.arenas[c] }

// NumCells returns the number of arenas.
func (s *Space) NumCells() int { return len(s.arenas) }

// ReadWord resolves addr to its owning arena and reads word i. An address
// naming a nonexistent cell is a bus error.
func (s *Space) ReadWord(addr Addr, i int) (uint64, error) {
	c := addr.Cell()
	if c < 0 || c >= len(s.arenas) {
		return 0, ErrBusError
	}
	return s.arenas[c].ReadWord(addr, i)
}

// TagAt resolves addr and reads its type tag.
func (s *Space) TagAt(addr Addr) (TypeTag, error) {
	c := addr.Cell()
	if c < 0 || c >= len(s.arenas) {
		return 0, ErrBusError
	}
	return s.arenas[c].TagAt(addr)
}
