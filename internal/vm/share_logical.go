package vm

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/rpc"
	"repro/internal/sim"
)

// Logical-level sharing (§5.2): a client cell gains the right to access a
// data page wherever it is stored, through the export/import/release
// primitives of Table 5.1. The data home records each client in its pfdat;
// the client allocates an extended pfdat so the rest of its kernel can
// treat the remote page as local.

// exportArgs is the wire argument of the page-fault/export RPC.
type exportArgs struct {
	LP       LogicalPage
	Client   int
	Writable bool
}

// exportReply returns the page's physical address to the client (§5.2).
type exportReply struct {
	Frame machine.PageNum
}

// Export records that client now accesses the data page held by pf and, if
// the client requested write access, opens the firewall for all of the
// client cell's processors (§4.2 firewall management policy). Returns the
// extra cost when running at interrupt level (engine context), or performs
// the blocking variant when t is non-nil.
func (v *VM) Export(t *sim.Task, pf *Pfdat, client int, writable bool) (sim.Time, error) {
	if pf.exports == nil {
		pf.exports = make(map[int]int)
	}
	pf.exports[client]++
	cost := MiscVMDataHome + ExportCost
	if writable && !pf.writable[client] {
		if pf.writable == nil {
			pf.writable = make(map[int]bool)
		}
		pf.writable[client] = true
		c, err := v.grantFirewall(t, pf, client)
		if err != nil {
			return 0, err
		}
		cost += c
	}
	v.Metrics.Counter("vm.exports").Inc()
	return cost, nil
}

// clientMask returns the firewall mask for every processor of a cell. The
// node→cell map is fixed at boot, so the masks are computed once and cached
// — every grant and revocation consults this on the fault path, and the
// per-call scan over all nodes was quadratic in machine size at 32+ cells.
func (v *VM) clientMask(cell int) uint64 {
	if v.maskOfCell == nil {
		cells := 0
		for _, c := range v.CellOfNode {
			if c+1 > cells {
				cells = c + 1
			}
		}
		v.maskOfCell = make([]uint64, cells)
		for n, c := range v.CellOfNode {
			v.maskOfCell[c] |= v.M.NodeProcMask(n)
		}
	}
	if cell < 0 || cell >= len(v.maskOfCell) {
		return 0
	}
	return v.maskOfCell[cell]
}

// homeMask returns the firewall mask of the cell owning a frame — the
// permission set a page returns to when all remote access is revoked.
func (v *VM) homeMask(frame machine.PageNum) uint64 {
	return v.clientMask(v.CellOfNode[v.M.HomeNode(frame)])
}

// grantFirewall opens pf's frame for writing by all processors of client.
// For a borrowed frame the memory home must make the change (§5.4), which
// requires an RPC and therefore a task context.
func (v *VM) grantFirewall(t *sim.Task, pf *Pfdat, client int) (sim.Time, error) {
	frame := pf.Frame
	bits := v.M.Firewall(frame) | v.clientMask(client)
	if v.localFrame(frame) {
		if t != nil {
			return 0, v.M.SetFirewall(t, v.proc(frame), frame, bits)
		}
		return v.M.SetFirewallIntr(v.proc(frame), frame, bits)
	}
	// Borrowed frame: the firewall lives at the memory home.
	if t == nil {
		return 0, fmt.Errorf("firewall change on borrowed frame needs queued path")
	}
	home := v.CellOfNode[v.M.HomeNode(frame)]
	_, err := v.EP.Call(t, v.anyProc(), home, ProcFirewall,
		&firewallArgs{Frame: frame, Bits: bits}, rpc.CallOpts{DataBytes: 32})
	return 0, err
}

// revokeFirewall closes pf's frame to the given client cell's processors.
func (v *VM) revokeFirewall(t *sim.Task, pf *Pfdat, client int) error {
	frame := pf.Frame
	bits := v.M.Firewall(frame) &^ v.clientMask(client)
	bits |= v.homeMask(frame) // the owning cell always retains access
	if v.localFrame(frame) {
		if t != nil {
			return v.M.SetFirewall(t, v.proc(frame), frame, bits)
		}
		_, err := v.M.SetFirewallIntr(v.proc(frame), frame, bits)
		return err
	}
	if t == nil {
		return fmt.Errorf("firewall change on borrowed frame needs queued path")
	}
	home := v.CellOfNode[v.M.HomeNode(frame)]
	_, err := v.EP.Call(t, v.anyProc(), home, ProcFirewall,
		&firewallArgs{Frame: frame, Bits: bits}, rpc.CallOpts{DataBytes: 32})
	return err
}

// Import allocates an extended pfdat bound to a remote page (Table 5.1) and
// inserts it in the pfdat hash so further faults hit locally.
func (v *VM) Import(t *sim.Task, frame machine.PageNum, dataHome int, lp LogicalPage, writable bool) *Pfdat {
	v.anyProc().Use(t, ImportCost)
	// §5.5: when a loaned frame's page is imported back by its memory
	// home, the preexisting pfdat is reused — the logical-level and
	// physical-level state machines use separate storage.
	pf, ok := v.frames[frame]
	if !ok {
		pf = newPfdat(frame)
		pf.Extended = true
		v.frames[frame] = pf
	}
	pf.LP = lp
	pf.Valid = true
	pf.ImportedFrom = dataHome
	pf.ImpWritable = pf.ImpWritable || writable
	v.hash[lp] = pf
	v.Metrics.Counter("vm.imports").Inc()
	return pf
}

// Release frees an extended pfdat and tells the data home to drop the
// export reference (Table 5.1). The page stays in the data home's cache for
// fast re-access (§5.2).
func (v *VM) Release(t *sim.Task, pf *Pfdat) {
	v.anyProc().Use(t, ReleaseCost)
	delete(v.hash, pf.LP)
	if pf.Extended {
		delete(v.frames, pf.Frame)
	} else {
		pf.Valid = false
	}
	home := pf.ImportedFrom
	pf.ImportedFrom = -1
	pf.ImpWritable = false
	v.Metrics.Counter("vm.releases").Inc()
	//hive:lint-ignore errdrop release notification is best-effort: if the data home is dead its export table dies with it, and recovery rebuilds the survivors' tables
	v.EP.Call(t, v.anyProc(), home, ProcRelease,
		&exportArgs{LP: pf.LP, Client: v.CellID}, rpc.CallOpts{DataBytes: 48, NoHint: true})
}

// ImportRemote performs the client side of a remote page fault: the export
// RPC to the data home followed by Import. The file system and COW manager
// call it from their resolvers. The RPC carries more than one line of data
// (page descriptors), engaging the Table 5.2 copy/alloc costs.
func (v *VM) ImportRemote(t *sim.Task, lp LogicalPage, writable bool) (*Pfdat, error) {
	res, err := v.EP.Call(t, v.anyProc(), lp.Obj.Home, ProcExport,
		&exportArgs{LP: lp, Client: v.CellID, Writable: writable},
		rpc.CallOpts{DataBytes: 256})
	if err != nil {
		return nil, err
	}
	rep, err := v.validateExportReply(res)
	if err != nil {
		return nil, err
	}
	return v.Import(t, rep.Frame, lp.Obj.Home, lp, writable), nil
}

// validateExportReply sanity-checks an export reply as the
// careful-message discipline requires, before the frame number a peer
// chose enters our page cache. The frame must exist; it need not be
// owned by the data home, since a data home may legally serve a page
// cached in a borrowed frame (§5.5: a frame can be simultaneously
// borrowed and exported).
func (v *VM) validateExportReply(res any) (*exportReply, error) {
	rep, ok := res.(*exportReply)
	if !ok {
		return nil, fmt.Errorf("%w: bad export reply", ErrBadPage)
	}
	if rep.Frame < 0 || int(rep.Frame) >= v.M.NumPages() {
		return nil, fmt.Errorf("%w: export reply frame %d out of range",
			ErrBadPage, rep.Frame)
	}
	return rep, nil
}

// validateExportArgs vets an export/page-fault request from another
// cell: we must be the data home for the page it names, and the client
// must be the cell that actually sent the request — a corrupt cell must
// not be able to charge export references to an innocent third cell.
func (v *VM) validateExportArgs(req *rpc.Request) (*exportArgs, error) {
	args, ok := req.Args.(*exportArgs)
	if !ok || args.LP.Obj.Home != v.CellID || args.Client != req.From {
		return nil, ErrBadPage
	}
	return args, nil
}

// registerServices installs the VM's RPC services on the cell's endpoint.
func (v *VM) registerServices() {
	v.registerPhysicalServices()
	// Page-fault/export service: best-effort at interrupt level (the
	// common case — a hit in the data home page cache — is serviced
	// entirely in the interrupt handler, §4.3/§5.2), falling back to the
	// queued path when the memory lock is busy, the page needs I/O, or a
	// firewall change must cross to a memory home.
	v.EP.Register(ProcExport, "vm.export",
		func(req *rpc.Request) (any, sim.Time, bool, error) {
			args, err := v.validateExportArgs(req)
			if err != nil {
				return nil, 0, true, err
			}
			if v.holdFaults {
				return nil, 0, true, ErrRecovering
			}
			if v.Lock.Locked() {
				return nil, 0, false, nil // blocking lock: queued path
			}
			pf, hit := v.hash[args.LP]
			if !hit {
				return nil, 0, false, nil // needs I/O: queued path
			}
			if args.Writable && !pf.writable[args.Client] && !v.localFrame(pf.Frame) {
				return nil, 0, false, nil // firewall RPC needed: queued path
			}
			cost, err := v.Export(nil, pf, args.Client, args.Writable)
			if err != nil {
				return nil, 0, true, err
			}
			v.Metrics.Counter("vm.export_intr").Inc()
			return &exportReply{Frame: pf.Frame}, cost, true, nil
		},
		func(t *sim.Task, req *rpc.Request) (any, error) {
			args, err := v.validateExportArgs(req)
			if err != nil {
				return nil, err
			}
			return v.serveExportQueued(t, args)
		})

	v.EP.Register(ProcRelease, "vm.release",
		func(req *rpc.Request) (any, sim.Time, bool, error) {
			args, err := v.validateExportArgs(req)
			if err != nil {
				return nil, 0, true, err
			}
			if v.Lock.Locked() {
				return nil, 0, false, nil
			}
			if pf, ok := v.hash[args.LP]; ok && pf.writable[args.Client] && !v.localFrame(pf.Frame) {
				return nil, 0, false, nil // borrowed-frame revocation needs an RPC
			}
			v.dropExport(nil, args.LP, args.Client)
			return nil, MiscVMDataHome, true, nil
		},
		func(t *sim.Task, req *rpc.Request) (any, error) {
			args, err := v.validateExportArgs(req)
			if err != nil {
				return nil, err
			}
			v.Lock.Lock(t)
			v.dropExport(t, args.LP, args.Client)
			v.Lock.Unlock(t)
			return nil, nil
		})

	v.EP.Register(ProcFirewall, "vm.firewall", nil,
		func(t *sim.Task, req *rpc.Request) (any, error) {
			args, err := v.validateFirewallArgs(req)
			if err != nil {
				return nil, err
			}
			return nil, v.M.SetFirewall(t, v.proc(args.Frame), args.Frame, args.Bits)
		})
}

// validateFirewallArgs vets a firewall-change request: the frame must be
// this memory home's, and only the cell the frame is loaned to may
// direct its firewall — a corrupt cell must not open other cells' pages.
func (v *VM) validateFirewallArgs(req *rpc.Request) (*firewallArgs, error) {
	args, ok := req.Args.(*firewallArgs)
	if !ok {
		return nil, ErrBadPage
	}
	if !v.localFrame(args.Frame) {
		return nil, fmt.Errorf("%w: frame %d not local", ErrBadPage, args.Frame)
	}
	pf := v.frames[args.Frame]
	if pf == nil || pf.LoanedTo != req.From {
		return nil, fmt.Errorf("%w: frame %d not loaned to cell %d",
			ErrBadPage, args.Frame, req.From)
	}
	return args, nil
}

// serveExportQueued is the blocking export path: it may perform file I/O
// through the resolver and firewall RPCs to memory homes.
func (v *VM) serveExportQueued(t *sim.Task, args *exportArgs) (any, error) {
	if v.holdFaults {
		return nil, ErrRecovering
	}
	v.Lock.Lock(t)
	pf, hit := v.hash[args.LP]
	v.Lock.Unlock(t)
	if !hit {
		res := v.resolvers[args.LP.Obj.Kind]
		if res == nil {
			return nil, fmt.Errorf("%w: no resolver", ErrBadPage)
		}
		var err error
		pf, err = res.ResolvePage(t, args.LP, args.Writable)
		if err != nil {
			return nil, err
		}
	}
	v.Lock.Lock(t)
	_, err := v.Export(t, pf, args.Client, args.Writable)
	v.Lock.Unlock(t)
	if err != nil {
		return nil, err
	}
	return &exportReply{Frame: pf.Frame}, nil
}

// dropExport decrements a client's export reference and revokes its write
// access when the last reference goes away. t may be nil only when the
// revocation (if any) is local.
func (v *VM) dropExport(t *sim.Task, lp LogicalPage, client int) {
	pf, ok := v.hash[lp]
	if !ok {
		return
	}
	if pf.exports[client] > 0 {
		pf.exports[client]--
	}
	if pf.exports[client] == 0 {
		delete(pf.exports, client)
		if pf.writable[client] {
			delete(pf.writable, client)
			//hive:lint-ignore errdrop revocation failure means the frame's memory home is unreachable; recovery rewrites every surviving firewall wholesale (§4.2)
			v.revokeFirewall(t, pf, client)
		}
	}
}

// firewallArgs asks a memory home to change a loaned frame's firewall.
type firewallArgs struct {
	Frame machine.PageNum
	Bits  uint64
}
