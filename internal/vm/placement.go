package vm

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
)

// CC-NUMA page placement (§5.4/§5.5): physical-level sharing exists so
// "data pages [can] be placed where required for fast access". MigratePage
// moves a cached page's storage into a frame borrowed from the cell whose
// processes use it — after which the frame is simultaneously loaned out
// (from the user's point of view) and imported back (from ours), the §5.5
// interaction that reuses the preexisting pfdat.
//
// Note on fidelity: the paper's machine model (and ours, §7.2) charges a
// flat 700 ns for all L2 misses, so placement has no latency payoff inside
// the simulation; the mechanism is reproduced for completeness and for the
// allocation-policy experiments.

// MigrateCost is the copy + bookkeeping cost per migrated page.
const MigrateCost sim.Time = 12 * sim.Microsecond

// MigratePage moves the storage of a locally-cached page to a frame
// allocated from target's memory. Restricted to pages with no current
// mappings or exports (migrating a shared page would require remapping
// every client).
func (v *VM) MigratePage(t *sim.Task, lp LogicalPage, target int) error {
	pf, ok := v.hash[lp]
	if !ok {
		return fmt.Errorf("%w: %v not cached", ErrBadPage, lp)
	}
	if pf.Refs > 0 || pf.Exported() || pf.ImportedFrom >= 0 || pf.Kernel {
		return fmt.Errorf("%w: %v is in use or shared", ErrBadPage, lp)
	}
	if v.CellOfNode[v.M.HomeNode(pf.Frame)] == target {
		return nil // already there
	}

	newFrame, err := v.AllocFrame(t, AllocOpts{Preferred: target, HasPreferred: true,
		Acceptable: []int{target}})
	if err != nil {
		return err
	}
	// Copy the page contents into the new frame.
	tag, corrupt, err := v.M.ReadPage(t, v.proc(pf.Frame), pf.Frame)
	if err != nil {
		v.FreeFrame(t, newFrame)
		return err
	}
	v.anyProc().Use(t, MigrateCost)
	if err := v.M.WritePage(t, v.anyProc(), newFrame, tag); err != nil {
		v.FreeFrame(t, newFrame)
		return err
	}
	if corrupt {
		v.M.MarkCorrupt(newFrame)
	}

	// Rebind: the new frame's pfdat (created by the borrow) takes over
	// the logical page; the old frame returns to the pool.
	oldFrame := pf.Frame
	npf := v.frames[newFrame]
	if npf == nil {
		npf = newPfdat(newFrame)
		v.frames[newFrame] = npf
	}
	npf.LP = lp
	npf.Valid = true
	npf.Dirty = pf.Dirty
	v.hash[lp] = npf

	pf.Valid = false
	pf.Dirty = false
	if pf.Extended {
		delete(v.frames, oldFrame)
		v.ReturnFrames(t, []machine.PageNum{oldFrame})
	} else {
		v.free = append(v.free, oldFrame)
	}
	v.Metrics.Counter("vm.pages_migrated").Inc()
	return nil
}

// RebalanceToward migrates up to n unshared cached pages (any object)
// into frames borrowed from target. This is the rejoin warm-up path: a
// freshly rebooted cell's memory is empty, and moving a slice of each
// survivor's page cache onto it re-stripes placement across full capacity.
// Returns pages moved.
func (v *VM) RebalanceToward(t *sim.Task, target, n int) int {
	moved := 0
	for _, f := range v.sortedFrames() {
		if moved >= n {
			break
		}
		pf := v.frames[f]
		if !pf.Valid {
			continue
		}
		if v.MigratePage(t, pf.LP, target) == nil {
			moved++
		}
	}
	return moved
}

// PlacePages migrates up to n unshared cached pages of the given object
// toward target — the policy entry point Wax (or the data home's fault
// path) would drive. Returns pages moved.
func (v *VM) PlacePages(t *sim.Task, obj ObjID, target, n int) int {
	moved := 0
	for _, f := range v.sortedFrames() {
		if moved >= n {
			break
		}
		pf := v.frames[f]
		if !pf.Valid || pf.LP.Obj != obj {
			continue
		}
		if v.MigratePage(t, pf.LP, target) == nil {
			moved++
		}
	}
	return moved
}
