package vm

import (
	"sort"

	"repro/internal/machine"
	"repro/internal/sim"
)

// Recovery (§4.3). The membership layer drives each cell through two
// phases separated by global barriers:
//
//   Phase 1 (before the first barrier): user processes are suspended, new
//   page faults are held up client-side, processor TLBs are flushed, and
//   all remote mappings are removed — guaranteeing a later access to a
//   discarded page faults and sends an RPC to the page's owner, where it
//   can be checked against the file generation number.
//
//   Phase 2 (between the barriers): each cell revokes every firewall write
//   permission it granted to other cells, preemptively discards all pages
//   that were writable by a failed cell (notifying the file system about
//   dirty ones), reclaims frames loaned to failed cells, and drops frames
//   borrowed from them.
//
// After the second barrier, RecoveryFinish releases held faults.

// TLBFlushCost is the per-processor cost of flushing the TLB and walking
// address spaces to remove remote mappings.
const TLBFlushCost sim.Time = 25 * sim.Microsecond

// RecoveryPhase1 holds up faults, flushes TLBs, and removes all remote
// mappings (imports). It runs before the cell joins the first barrier.
func (v *VM) RecoveryPhase1(t *sim.Task) {
	v.holdFaults = true
	for _, n := range v.NodeIDs {
		if p := v.procForNode[n]; !p.Halted() {
			p.Use(t, TLBFlushCost)
		}
	}
	// Remove every imported page: the extended pfdats go away and any
	// process holding a mapping will re-fault after recovery. Pages are
	// visited in logical-page order so the drop sequence (and the
	// resulting free-list order) is deterministic.
	for _, lp := range SortedPages(v.hash) {
		pf := v.hash[lp]
		if pf.ImportedFrom >= 0 {
			pf.ImportedFrom = -1 // neutralize so stale Unref sends no RPC
			pf.ImpWritable = false
			pf.Valid = false
			delete(v.hash, lp)
			if pf.Extended {
				delete(v.frames, pf.Frame)
			}
			v.Metrics.Counter("vm.recovery_imports_dropped").Inc()
		}
	}
}

// RecoveryPhase2 revokes remote firewall grants, preemptively discards
// pages writable by failed cells, and cleans up loans/borrows involving
// them. It runs between the two barriers and returns the number of pages
// discarded. failed maps cell IDs that the agreement round declared dead.
func (v *VM) RecoveryPhase2(t *sim.Task, failed map[int]bool) (discarded int) {
	// 1. Local frames: revoke all remote write permission, discard pages
	// writable by a failed cell (the pessimistic assumption of §3.1: all
	// potentially damaged pages are treated as corrupted). Frames are
	// visited in page order so recovery is deterministic.
	for _, f := range v.sortedFrames() {
		pf := v.frames[f]
		if !v.localFrame(f) {
			continue
		}
		doomed := false
		for c := range pf.writable {
			if failed[c] {
				doomed = true
			}
		}
		if len(pf.writable) > 0 {
			v.M.SetFirewall(t, v.proc(f), f, v.homeMask(f))
		}
		pf.writable = nil
		pf.exports = nil
		if doomed && pf.Valid {
			v.discardPage(pf)
			discarded++
		}
		// 2. Frames loaned to failed cells come back scrubbed: the
		// borrower could have written anything into them.
		if pf.LoanedTo >= 0 && failed[pf.LoanedTo] {
			pf.LoanedTo = -1
			v.M.SetFirewall(t, v.proc(f), f, v.homeMask(f))
			v.M.ScrubPage(f, 0)
			if pf.Valid {
				v.discardPage(pf)
				discarded++
			}
			v.free = append(v.free, f)
			v.Metrics.Counter("vm.recovery_loans_reclaimed").Inc()
		}
	}

	// 3. Frames borrowed from failed cells are gone with their memory.
	var deadFree []int
	for i, f := range v.free {
		if pf := v.frames[f]; pf != nil && pf.BorrowedFrom >= 0 && failed[pf.BorrowedFrom] {
			deadFree = append(deadFree, i)
		}
	}
	for i := len(deadFree) - 1; i >= 0; i-- {
		idx := deadFree[i]
		delete(v.frames, v.free[idx])
		v.free = append(v.free[:idx], v.free[idx+1:]...)
	}
	for _, f := range v.sortedFrames() {
		pf := v.frames[f]
		if pf.BorrowedFrom >= 0 && failed[pf.BorrowedFrom] {
			// The page's data lived in failed memory: discard it.
			if pf.Valid {
				v.discardPage(pf)
				discarded++
			}
			delete(v.frames, f)
			v.Metrics.Counter("vm.recovery_borrows_lost").Inc()
		}
	}
	v.Metrics.Counter("vm.recovery_discards").Add(int64(discarded))
	return discarded
}

// discardPage removes a page from the cache, bumping the file generation if
// it was dirty (the data-loss record of §4.2).
func (v *VM) discardPage(pf *Pfdat) {
	if pf.Dirty && v.OnDiscardDirty != nil {
		v.OnDiscardDirty(pf.LP)
	}
	delete(v.hash, pf.LP)
	pf.Valid = false
	pf.Dirty = false
	pf.Refs = 0
	if v.localFrame(pf.Frame) && pf.LoanedTo < 0 {
		v.M.ScrubPage(pf.Frame, 0)
		v.free = append(v.free, pf.Frame)
	}
}

// RecoveryFinish releases held-up faults after the second barrier.
func (v *VM) RecoveryFinish() {
	v.holdFaults = false
	v.faultCond.Broadcast()
}

// InRecovery reports whether faults are currently held.
func (v *VM) InRecovery() bool { return v.holdFaults }

// DropPeerState removes all sharing state involving cell c without RPCs;
// used when this cell learns c rebooted (reintegration) — stale references
// must not survive into c's next incarnation.
func (v *VM) DropPeerState(c int) {
	for _, f := range v.sortedFrames() {
		pf := v.frames[f]
		delete(pf.exports, c)
		delete(pf.writable, c)
		if pf.LoanedTo == c {
			pf.LoanedTo = -1
			v.M.ScrubPage(pf.Frame, 0)
			v.free = append(v.free, pf.Frame)
		}
	}
}

// FramesOfCell lists this cell's pfdats whose frames live on node n; used
// by diagnostics and tests.
func (v *VM) FramesOfCell() map[machine.PageNum]*Pfdat {
	out := make(map[machine.PageNum]*Pfdat, len(v.frames))
	for f, pf := range v.frames {
		out[f] = pf
	}
	return out
}

// sortedFrames returns the frame numbers this cell tracks, ascending —
// state-mutating sweeps iterate in this order so runs stay deterministic.
func (v *VM) sortedFrames() []machine.PageNum {
	out := make([]machine.PageNum, 0, len(v.frames))
	for f := range v.frames {
		out = append(out, f)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
