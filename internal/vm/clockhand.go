package vm

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
)

// The clock-hand page-out daemon (§5.7, Table 3.4). Each cell runs one:
// when the free pool falls below the low watermark it sweeps the page
// cache with a clock hand, evicting unreferenced pages until the high
// watermark is restored. Dirty pages are written back through the
// writeback hook first (stable-write semantics). Wax steers the hand by
// naming pressured memory homes whose loaned frames should be freed first
// (ReturnUnusedBorrows handles the idle ones; the sweep prefers evicting
// pages held in their frames).

// Watermark defaults, as fractions of the paged pool.
const (
	defaultLowWaterFrac  = 0.06
	defaultHighWaterFrac = 0.12
	// ClockTickCost is charged per examined page.
	ClockTickCost sim.Time = 800
	// ClockInterval is the daemon's poll period.
	ClockInterval = 25 * sim.Millisecond
)

// ClockHand is the per-cell page-out daemon.
type ClockHand struct {
	v *VM
	// Writeback persists one dirty page before eviction, returning
	// false if it could not (the page is then skipped).
	Writeback func(t *sim.Task, lp LogicalPage) bool
	// PressureHomes, set by Wax, lists memory homes under pressure;
	// their pages are preferred eviction victims.
	PressureHomes map[int]bool

	LowWater  int
	HighWater int

	sweep   []machine.PageNum // clock order: stable, page-number sorted
	hand    int
	stopped bool
}

// StartClockHand launches the daemon for this VM.
func (v *VM) StartClockHand(writeback func(t *sim.Task, lp LogicalPage) bool) *ClockHand {
	total := 0
	for range v.frames {
		total++
	}
	ch := &ClockHand{
		v:         v,
		Writeback: writeback,
		LowWater:  int(float64(total) * defaultLowWaterFrac),
		HighWater: int(float64(total) * defaultHighWaterFrac),
	}
	v.EP.Engine().Go(fmt.Sprintf("cell%d.clockhand", v.CellID), ch.loop)
	return ch
}

// Stop ends the daemon at its next wakeup.
func (ch *ClockHand) Stop() { ch.stopped = true }

func (ch *ClockHand) loop(t *sim.Task) {
	for !ch.stopped {
		t.Sleep(ClockInterval)
		if ch.stopped {
			return
		}
		if ch.v.InRecovery() || ch.v.FreePages() >= ch.LowWater {
			continue
		}
		ch.v.Lock.Lock(t)
		ch.Sweep(t, ch.HighWater)
		ch.v.Lock.Unlock(t)
	}
}

// Sweep evicts unreferenced cache pages until the free pool reaches target
// or a full revolution finds nothing more. It returns pages evicted.
func (ch *ClockHand) Sweep(t *sim.Task, target int) int {
	v := ch.v
	ch.rebuild()
	evicted := 0
	// Two passes: pressured-home victims first (the Wax hint), then any.
	for pass := 0; pass < 2 && v.FreePages() < target; pass++ {
		preferOnly := pass == 0 && len(ch.PressureHomes) > 0
		if pass == 0 && !preferOnly {
			continue
		}
		for n := 0; n < len(ch.sweep) && v.FreePages() < target; n++ {
			ch.hand = (ch.hand + 1) % len(ch.sweep)
			f := ch.sweep[ch.hand]
			pf, ok := v.frames[f]
			if !ok || !pf.Valid || pf.Refs > 0 || pf.Exported() || pf.Kernel {
				continue
			}
			if pf.ImportedFrom >= 0 {
				continue // imports are released by their users
			}
			home := v.CellOfNode[v.M.HomeNode(f)]
			if preferOnly && !ch.PressureHomes[home] {
				continue
			}
			v.anyProc().Use(t, ClockTickCost)
			if pf.Dirty {
				if ch.Writeback == nil || !ch.Writeback(t, pf.LP) {
					continue
				}
				pf.Dirty = false
			}
			if v.Evict(t, pf.LP) {
				evicted++
				v.Metrics.Counter("vm.clockhand_evictions").Inc()
			}
		}
	}
	return evicted
}

// rebuild refreshes the sweep order if the frame population changed.
func (ch *ClockHand) rebuild() {
	if len(ch.sweep) == len(ch.v.frames) {
		return
	}
	ch.sweep = ch.v.sortedFrames()
	if ch.hand >= len(ch.sweep) {
		ch.hand = 0
	}
}
