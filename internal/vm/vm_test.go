package vm

import (
	"errors"
	"testing"

	"repro/internal/machine"
	"repro/internal/rpc"
	"repro/internal/sim"
)

// fakeResolver is a minimal stand-in for the file system: the data home
// materializes pages on demand (simulated 1 ms "disk" read); clients import
// from the data home.
type fakeResolver struct {
	v        *VM
	diskTime sim.Time
}

func (r *fakeResolver) ResolvePage(t *sim.Task, lp LogicalPage, write bool) (*Pfdat, error) {
	v := r.v
	if lp.Obj.Home == v.CellID {
		if pf, ok := v.Lookup(lp); ok {
			return pf, nil
		}
		if r.diskTime > 0 {
			t.Sleep(r.diskTime)
		}
		f, err := v.AllocFrame(t, AllocOpts{})
		if err != nil {
			return nil, err
		}
		return v.InsertLocal(lp, f, false), nil
	}
	v.anyProc().Use(t, FSClientCost)
	return v.ImportRemote(t, lp, write)
}

type fixture struct {
	e   *sim.Engine
	m   *machine.Machine
	vms []*VM
	eps []*rpc.Endpoint
}

func newFixture(t *testing.T, cells int) *fixture {
	t.Helper()
	e := sim.NewEngine(21)
	cfg := machine.DefaultConfig()
	cfg.Nodes = cells
	cfg.MemPerNodeMB = 2
	m := machine.New(e, cfg)
	f := &fixture{e: e, m: m}
	cellOfNode := make([]int, cells)
	for i := range cellOfNode {
		cellOfNode[i] = i
	}
	for c := 0; c < cells; c++ {
		ep := rpc.NewEndpoint(m, c, []*machine.Processor{m.Procs[c]}, 2)
		f.eps = append(f.eps, ep)
	}
	rpc.Connect(f.eps...)
	for c := 0; c < cells; c++ {
		v := New(m, f.eps[c], c, []int{c}, cellOfNode, 16)
		v.SetResolver(FileObj, &fakeResolver{v: v})
		f.vms = append(f.vms, v)
	}
	return f
}

func (f *fixture) run(t *testing.T, fn func(tk *sim.Task)) {
	t.Helper()
	f.e.Go("test", fn)
	f.e.Run(0)
}

func filePage(home int, file uint64, off int64) LogicalPage {
	return LogicalPage{Obj: ObjID{Kind: FileObj, Home: home, Num: file}, Off: off}
}

func TestLocalFaultHitLatency(t *testing.T) {
	// Table 5.2 / Table 7.3: a page fault that hits in the local page
	// cache costs 6.9 µs.
	f := newFixture(t, 2)
	lp := filePage(0, 1, 0)
	f.run(t, func(tk *sim.Task) {
		// Populate the cache.
		pf, err := f.vms[0].Fault(tk, lp, false)
		if err != nil {
			t.Fatalf("first fault: %v", err)
		}
		f.vms[0].Unref(tk, pf)
		start := tk.Now()
		pf, err = f.vms[0].Fault(tk, lp, false)
		if err != nil {
			t.Fatalf("second fault: %v", err)
		}
		lat := tk.Now() - start
		if us := lat.Micros(); us < 6.5 || us > 7.3 {
			t.Errorf("local fault hit = %.2f µs, want ≈6.9", us)
		}
		f.vms[0].Unref(tk, pf)
	})
}

func TestRemoteFaultLatencyMatchesTable52(t *testing.T) {
	// Table 5.2: a remote fault that hits in the data home page cache
	// costs 50.7 µs.
	f := newFixture(t, 2)
	lp := filePage(1, 7, 0)
	f.run(t, func(tk *sim.Task) {
		// Warm the data home's cache so the remote fault is a cache hit
		// served at interrupt level.
		f.e.Go("warm", func(tk2 *sim.Task) {
			pf, err := f.vms[1].Fault(tk2, lp, false)
			if err == nil {
				f.vms[1].Unref(tk2, pf)
			}
		})
		tk.Sleep(10 * sim.Millisecond)
		start := tk.Now()
		pf, err := f.vms[0].Fault(tk, lp, false)
		if err != nil {
			t.Fatalf("remote fault: %v", err)
		}
		lat := tk.Now() - start
		if us := lat.Micros(); us < 47 || us > 55 {
			t.Errorf("remote fault = %.2f µs, want ≈50.7", us)
		}
		// Second fault hits the extended pfdat locally at 6.9 µs (§5.2).
		f.vms[0].Unref(tk, pf) // NB: releases the import (refs hit 0)
		pf2, err := f.vms[0].Fault(tk, lp, false)
		if err != nil {
			t.Fatalf("refault: %v", err)
		}
		f.vms[0].Unref(tk, pf2)
	})
	if f.vms[0].Metrics.Counter("vm.imports").Value() < 1 {
		t.Error("no import recorded")
	}
	if f.vms[1].Metrics.Counter("vm.exports").Value() < 1 {
		t.Error("no export recorded")
	}
}

func TestImportHitAvoidsRPC(t *testing.T) {
	f := newFixture(t, 2)
	lp := filePage(1, 3, 0)
	f.run(t, func(tk *sim.Task) {
		pf, err := f.vms[0].Fault(tk, lp, false)
		if err != nil {
			t.Fatalf("fault: %v", err)
		}
		calls := f.eps[0].Metrics.Counter("rpc.calls").Value()
		// Another fault while the first ref is live: local hit.
		pf2, err := f.vms[0].Fault(tk, lp, false)
		if err != nil {
			t.Fatalf("fault2: %v", err)
		}
		if got := f.eps[0].Metrics.Counter("rpc.calls").Value(); got != calls {
			t.Errorf("second fault sent %d RPCs", got-calls)
		}
		if pf2 != pf {
			t.Error("second fault returned different pfdat")
		}
		f.vms[0].Unref(tk, pf)
		f.vms[0].Unref(tk, pf2)
	})
}

func TestWritableExportOpensFirewall(t *testing.T) {
	f := newFixture(t, 2)
	lp := filePage(1, 9, 0)
	f.run(t, func(tk *sim.Task) {
		pf, err := f.vms[0].Fault(tk, lp, true)
		if err != nil {
			t.Fatalf("write fault: %v", err)
		}
		// Cell 0's processor can now write the page owned by cell 1.
		if err := f.m.WritePage(tk, f.m.Procs[0], pf.Frame, 42); err != nil {
			t.Errorf("write after export: %v", err)
		}
		// The data home counts it as remotely writable (§4.2 metric).
		if f.vms[1].RemotelyWritablePages() != 1 {
			t.Errorf("remotely writable = %d", f.vms[1].RemotelyWritablePages())
		}
		// Releasing the import revokes write permission.
		f.vms[0].Unref(tk, pf)
		tk.Sleep(sim.Millisecond)
		if err := f.m.WritePage(tk, f.m.Procs[0], pf.Frame, 43); !errors.Is(err, machine.ErrBusError) {
			t.Errorf("write after release err = %v", err)
		}
		if f.vms[1].RemotelyWritablePages() != 0 {
			t.Errorf("remotely writable after release = %d", f.vms[1].RemotelyWritablePages())
		}
	})
}

func TestReadOnlyExportKeepsFirewallClosed(t *testing.T) {
	f := newFixture(t, 2)
	lp := filePage(1, 4, 0)
	f.run(t, func(tk *sim.Task) {
		pf, err := f.vms[0].Fault(tk, lp, false)
		if err != nil {
			t.Fatalf("fault: %v", err)
		}
		if err := f.m.WritePage(tk, f.m.Procs[0], pf.Frame, 1); !errors.Is(err, machine.ErrBusError) {
			t.Errorf("read-only import allowed write: %v", err)
		}
		f.vms[0].Unref(tk, pf)
	})
}

func TestWriteUpgrade(t *testing.T) {
	f := newFixture(t, 2)
	lp := filePage(1, 5, 0)
	f.run(t, func(tk *sim.Task) {
		pf, err := f.vms[0].Fault(tk, lp, false)
		if err != nil {
			t.Fatalf("read fault: %v", err)
		}
		pf2, err := f.vms[0].Fault(tk, lp, true)
		if err != nil {
			t.Fatalf("write fault: %v", err)
		}
		if !pf2.ImpWritable {
			t.Error("import not upgraded to writable")
		}
		if err := f.m.WritePage(tk, f.m.Procs[0], pf2.Frame, 7); err != nil {
			t.Errorf("write after upgrade: %v", err)
		}
		f.vms[0].Unref(tk, pf)
		f.vms[0].Unref(tk, pf2)
	})
}

func TestBorrowAndReturnFrames(t *testing.T) {
	f := newFixture(t, 2)
	f.run(t, func(tk *sim.Task) {
		// Drain cell 0's local pool.
		for {
			if _, ok := f.vms[0].popLocalFree(false); !ok {
				break
			}
		}
		frame, err := f.vms[0].AllocFrame(tk, AllocOpts{})
		if err != nil {
			t.Fatalf("alloc with empty pool: %v", err)
		}
		if f.m.HomeNode(frame) != 1 {
			t.Fatalf("frame %d not borrowed from cell 1", frame)
		}
		if f.vms[0].BorrowedFrames() == 0 || f.vms[1].LoanedFrames() == 0 {
			t.Error("loan/borrow state not recorded")
		}
		loaned := f.vms[1].LoanedFrames()
		// Free it: eager return policy sends it home (§5.4).
		f.vms[0].FreeFrame(tk, frame)
		tk.Sleep(sim.Millisecond)
		if got := f.vms[1].LoanedFrames(); got != loaned-1 {
			t.Errorf("loaned = %d, want %d", got, loaned-1)
		}
	})
}

func TestKernelAllocMustBeLocal(t *testing.T) {
	f := newFixture(t, 2)
	f.run(t, func(tk *sim.Task) {
		for {
			if _, ok := f.vms[0].popLocalFree(false); !ok {
				break
			}
		}
		_, err := f.vms[0].AllocFrame(tk, AllocOpts{Kernel: true})
		if !errors.Is(err, ErrNoMemory) {
			t.Errorf("kernel alloc from remote: err = %v", err)
		}
	})
}

func TestLoanPreservesDeadlockReserve(t *testing.T) {
	f := newFixture(t, 2)
	f.run(t, func(tk *sim.Task) {
		// Cell 0 borrows greedily; cell 1 must keep its reserve.
		f.vms[0].BorrowBatch = 1024
		for {
			if _, ok := f.vms[0].popLocalFree(false); !ok {
				break
			}
		}
		if _, err := f.vms[0].AllocFrame(tk, AllocOpts{}); err != nil {
			t.Fatalf("borrow: %v", err)
		}
		if free := f.vms[1].FreePages(); free < 16 {
			t.Errorf("memory home left with %d free pages", free)
		}
	})
}

func TestWaxAllocTargetPreferred(t *testing.T) {
	f := newFixture(t, 3)
	f.run(t, func(tk *sim.Task) {
		for {
			if _, ok := f.vms[0].popLocalFree(false); !ok {
				break
			}
		}
		f.vms[0].AllocTargets = []int{2}
		frame, err := f.vms[0].AllocFrame(tk, AllocOpts{})
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		if f.m.HomeNode(frame) != 2 {
			t.Errorf("frame from node %d, Wax said cell 2", f.m.HomeNode(frame))
		}
	})
}

func TestPreferredAllocation(t *testing.T) {
	// §5.5 CC-NUMA optimization: the data home places a page in the
	// memory of the client cell that faulted to it.
	f := newFixture(t, 2)
	f.run(t, func(tk *sim.Task) {
		frame, err := f.vms[0].AllocFrame(tk, Prefer(1))
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		if f.m.HomeNode(frame) != 1 {
			t.Errorf("preferred allocation landed on node %d", f.m.HomeNode(frame))
		}
	})
}

func TestReimportOfLoanedFrameReusesPfdat(t *testing.T) {
	// §5.5: a frame simultaneously loaned out and imported back into the
	// memory home reuses the preexisting pfdat.
	f := newFixture(t, 2)
	f.run(t, func(tk *sim.Task) {
		// Cell 1 borrows a frame from cell 0 and stores file data in it.
		frame, err := f.vms[1].borrowFrom(tk, 0)
		if err != nil {
			t.Fatalf("borrow: %v", err)
		}
		lp := filePage(1, 77, 0)
		f.vms[1].InsertLocal(lp, frame, false)
		// Cell 0 (the memory home) faults on that page: the pfdat it
		// already has for the frame is reused, not an extended one.
		before := f.vms[0].frames[frame]
		if before == nil || before.LoanedTo != 1 {
			t.Fatal("loan state missing on memory home")
		}
		pf, err := f.vms[0].Fault(tk, lp, false)
		if err != nil {
			t.Fatalf("reimport fault: %v", err)
		}
		if pf != before {
			t.Error("reimport allocated a new pfdat instead of reusing")
		}
		if pf.LoanedTo != 1 || pf.ImportedFrom != 1 {
			t.Errorf("state: loanedTo=%d importedFrom=%d", pf.LoanedTo, pf.ImportedFrom)
		}
	})
}

func TestEvict(t *testing.T) {
	f := newFixture(t, 1)
	lp := filePage(0, 2, 0)
	f.run(t, func(tk *sim.Task) {
		pf, _ := f.vms[0].Fault(tk, lp, false)
		if f.vms[0].Evict(tk, lp) {
			t.Error("evicted a referenced page")
		}
		f.vms[0].Unref(tk, pf)
		free := f.vms[0].FreePages()
		if !f.vms[0].Evict(tk, lp) {
			t.Error("evict failed")
		}
		if f.vms[0].FreePages() != free+1 {
			t.Error("frame not freed")
		}
		if _, ok := f.vms[0].Lookup(lp); ok {
			t.Error("page still in hash")
		}
	})
}

func TestRecoveryDiscardsPagesWritableByFailedCell(t *testing.T) {
	f := newFixture(t, 3)
	lpW := filePage(1, 10, 0) // will be writable by cell 0
	lpR := filePage(1, 11, 0) // read-only export to cell 0
	f.run(t, func(tk *sim.Task) {
		pfW, err := f.vms[0].Fault(tk, lpW, true)
		if err != nil {
			t.Fatalf("fault: %v", err)
		}
		_, err = f.vms[0].Fault(tk, lpR, false)
		if err != nil {
			t.Fatalf("fault: %v", err)
		}
		// Mark the writable page dirty at the data home.
		dhW, _ := f.vms[1].Lookup(lpW)
		dhW.Dirty = true
		var genBumps []LogicalPage
		f.vms[1].OnDiscardDirty = func(lp LogicalPage) { genBumps = append(genBumps, lp) }

		// Cell 0 fails; cells 1 and 2 run recovery.
		f.m.Nodes[0].FailStop()
		failed := map[int]bool{0: true}
		for _, c := range []int{1, 2} {
			f.vms[c].RecoveryPhase1(tk)
		}
		disc := 0
		for _, c := range []int{1, 2} {
			disc += f.vms[c].RecoveryPhase2(tk, failed)
		}
		for _, c := range []int{1, 2} {
			f.vms[c].RecoveryFinish()
		}

		if disc != 1 {
			t.Errorf("discarded = %d, want 1 (only the writable page)", disc)
		}
		if _, ok := f.vms[1].Lookup(lpW); ok {
			t.Error("writable page survived discard")
		}
		if _, ok := f.vms[1].Lookup(lpR); !ok {
			t.Error("read-only page was discarded")
		}
		if len(genBumps) != 1 || genBumps[0] != lpW {
			t.Errorf("generation bumps = %v", genBumps)
		}
		if f.vms[1].RemotelyWritablePages() != 0 {
			t.Error("remote write permission survived recovery")
		}
		_ = pfW
	})
}

func TestRecoveryReclaimsLoansAndDropsBorrows(t *testing.T) {
	f := newFixture(t, 3)
	f.run(t, func(tk *sim.Task) {
		// Cell 0 borrows from cell 1; cell 1 borrows from cell 0.
		fr01, err := f.vms[0].borrowFrom(tk, 1)
		if err != nil {
			t.Fatalf("borrow: %v", err)
		}
		if _, err := f.vms[1].borrowFrom(tk, 0); err != nil {
			t.Fatalf("borrow: %v", err)
		}
		freeBefore := f.vms[1].FreePages()

		// Cell 0 fails.
		f.m.Nodes[0].FailStop()
		failed := map[int]bool{0: true}
		f.vms[1].RecoveryPhase1(tk)
		f.vms[2].RecoveryPhase1(tk)
		f.vms[1].RecoveryPhase2(tk, failed)
		f.vms[2].RecoveryPhase2(tk, failed)
		f.vms[1].RecoveryFinish()
		f.vms[2].RecoveryFinish()

		// Cell 1 reclaimed the frames it loaned to cell 0...
		if f.vms[1].LoanedFrames() != 0 {
			t.Error("loans to failed cell not reclaimed")
		}
		if f.vms[1].FreePages() <= freeBefore {
			t.Error("reclaimed frames not back in the pool")
		}
		// ...and dropped the frames it borrowed from cell 0.
		if f.vms[1].BorrowedFrames() != 0 {
			t.Error("borrows from failed cell not dropped")
		}
		for _, fr := range f.vms[1].free {
			if f.m.HomeNode(fr) == 0 {
				t.Error("dead frame still in free pool")
			}
		}
		_ = fr01
	})
}

func TestFaultsHeldDuringRecovery(t *testing.T) {
	f := newFixture(t, 2)
	lp := filePage(0, 30, 0)
	var faultDone sim.Time
	f.run(t, func(tk *sim.Task) {
		f.vms[0].RecoveryPhase1(tk)
		f.e.Go("faulter", func(tk2 *sim.Task) {
			pf, err := f.vms[0].Fault(tk2, lp, false)
			if err != nil {
				t.Errorf("fault: %v", err)
				return
			}
			faultDone = tk2.Now()
			f.vms[0].Unref(tk2, pf)
		})
		tk.Sleep(5 * sim.Millisecond)
		f.vms[0].RecoveryPhase2(tk, map[int]bool{1: true})
		f.vms[0].RecoveryFinish()
	})
	if faultDone < 5*sim.Millisecond {
		t.Fatalf("fault completed at %v, during recovery", faultDone)
	}
}

func TestExportRefusedDuringRecovery(t *testing.T) {
	f := newFixture(t, 2)
	lp := filePage(1, 31, 0)
	f.run(t, func(tk *sim.Task) {
		f.vms[1].RecoveryPhase1(tk)
		// End recovery 3 ms later so the client's retry loop succeeds.
		f.e.At(f.e.Now()+3*sim.Millisecond, func() {
			f.e.Go("finish", func(tk2 *sim.Task) {
				f.vms[1].RecoveryPhase2(tk2, map[int]bool{})
				f.vms[1].RecoveryFinish()
			})
		})
		start := tk.Now()
		pf, err := f.vms[0].Fault(tk, lp, false)
		if err != nil {
			t.Fatalf("fault: %v", err)
		}
		if tk.Now()-start < 3*sim.Millisecond {
			t.Error("fault served while data home was recovering")
		}
		f.vms[0].Unref(tk, pf)
	})
}

func TestBorrowSanityCheckRejectsForgedFrames(t *testing.T) {
	// A corrupt memory home returning frames it does not own must be
	// caught by the borrower's sanity check.
	f := newFixture(t, 2)
	f.eps[1].Register(ProcBorrow, "vm.borrow.evil",
		func(req *rpc.Request) (any, sim.Time, bool, error) {
			lo, _ := f.m.NodePages(0) // cell 0's own frame, forged
			return &borrowReply{Frames: []machine.PageNum{lo}}, 0, true, nil
		}, nil)
	f.run(t, func(tk *sim.Task) {
		_, err := f.vms[0].borrowFrom(tk, 1)
		if !errors.Is(err, ErrBadPage) {
			t.Errorf("forged borrow err = %v", err)
		}
	})
}

func TestFirewallServiceRejectsNonBorrower(t *testing.T) {
	// Only the borrower of a loaned frame may direct its firewall; a
	// corrupt third cell must be refused.
	f := newFixture(t, 3)
	f.run(t, func(tk *sim.Task) {
		frame, err := f.vms[1].borrowFrom(tk, 0)
		if err != nil {
			t.Fatalf("borrow: %v", err)
		}
		// Cell 2 (not the borrower) tries to open the firewall.
		_, err = f.eps[2].Call(tk, f.m.Procs[2], 0, ProcFirewall,
			&firewallArgs{Frame: frame, Bits: ^uint64(0)}, rpc.CallOpts{})
		if err == nil {
			t.Error("non-borrower firewall change accepted")
		}
	})
}

func TestClockHandEvictsUnderPressure(t *testing.T) {
	f := newFixture(t, 1)
	v := f.vms[0]
	written := 0
	ch := v.StartClockHand(func(tk *sim.Task, lp LogicalPage) bool {
		written++
		tk.Sleep(sim.Millisecond) // "disk write"
		return true
	})
	ch.LowWater = 32
	ch.HighWater = 64
	filled := false
	f.e.Go("filler", func(tk *sim.Task) {
		// Populate the cache (half dirty) until the pool is nearly dry.
		off := int64(0)
		for v.FreePages() > 8 {
			lp := filePage(0, 50, off)
			frame, err := v.AllocFrame(tk, AllocOpts{Acceptable: []int{0}})
			if err != nil {
				break
			}
			pf := v.InsertLocal(lp, frame, off%2 == 0)
			_ = pf
			off++
		}
		filled = true
	})
	deadline := f.e.Now() + 2*sim.Second
	for f.e.Now() < deadline && (!filled || v.FreePages() < ch.HighWater) {
		f.e.Run(f.e.Now() + 10*sim.Millisecond)
	}
	if v.FreePages() < ch.HighWater {
		t.Fatalf("free = %d, want >= %d after sweeps", v.FreePages(), ch.HighWater)
	}
	if written == 0 {
		t.Fatal("no dirty pages written back before eviction")
	}
	if v.Metrics.Counter("vm.clockhand_evictions").Value() == 0 {
		t.Fatal("no evictions counted")
	}
	ch.Stop()
}

func TestClockHandSkipsPinnedAndExported(t *testing.T) {
	f := newFixture(t, 2)
	v := f.vms[0]
	ch := v.StartClockHand(nil)
	done := false
	f.e.Go("setup", func(tk *sim.Task) {
		defer func() { done = true }()
		// A referenced page and an exported page must survive a sweep.
		lp1 := filePage(0, 60, 0)
		pf1, err := v.Fault(tk, lp1, false) // holds a ref
		if err != nil {
			t.Errorf("fault: %v", err)
			return
		}
		lp2 := filePage(0, 61, 0)
		frame, _ := v.AllocFrame(tk, AllocOpts{Acceptable: []int{0}})
		pf2 := v.InsertLocal(lp2, frame, false)
		v.Export(tk, pf2, 1, false)
		v.Lock.Lock(tk)
		ch.Sweep(tk, 1<<30) // try to evict everything
		v.Lock.Unlock(tk)
		if _, ok := v.Lookup(lp1); !ok {
			t.Error("referenced page evicted")
		}
		if _, ok := v.Lookup(lp2); !ok {
			t.Error("exported page evicted")
		}
		_ = pf1
	})
	f.e.Run(2 * sim.Second)
	if !done {
		t.Fatal("setup never finished")
	}
	ch.Stop()
}

func TestMigratePageMovesStorage(t *testing.T) {
	f := newFixture(t, 2)
	f.run(t, func(tk *sim.Task) {
		lp := filePage(0, 80, 0)
		pf, err := f.vms[0].Fault(tk, lp, false)
		if err != nil {
			t.Fatalf("fault: %v", err)
		}
		f.m.WritePage(tk, f.m.Procs[0], pf.Frame, 777)
		f.vms[0].Unref(tk, pf)

		if err := f.vms[0].MigratePage(tk, lp, 1); err != nil {
			t.Fatalf("migrate: %v", err)
		}
		npf, ok := f.vms[0].Lookup(lp)
		if !ok {
			t.Fatal("page lost after migration")
		}
		if f.m.HomeNode(npf.Frame) != 1 {
			t.Fatalf("frame on node %d, want 1", f.m.HomeNode(npf.Frame))
		}
		// §5.5: the frame is borrowed (physical level) while the page
		// stays ours (logical level).
		if npf.BorrowedFrom != 1 {
			t.Fatalf("BorrowedFrom = %d", npf.BorrowedFrom)
		}
		tag, corrupt, _ := f.m.ReadPage(tk, f.m.Procs[0], npf.Frame)
		if tag != 777 || corrupt {
			t.Fatalf("content lost: tag=%d corrupt=%v", tag, corrupt)
		}
		// A later fault finds the migrated page normally.
		pf2, err := f.vms[0].Fault(tk, lp, false)
		if err != nil || pf2 != npf {
			t.Fatalf("refault: %v", err)
		}
		f.vms[0].Unref(tk, pf2)
	})
}

func TestMigratePageRefusesSharedOrPinned(t *testing.T) {
	f := newFixture(t, 2)
	f.run(t, func(tk *sim.Task) {
		lp := filePage(0, 81, 0)
		pf, _ := f.vms[0].Fault(tk, lp, false) // pinned by the ref
		if err := f.vms[0].MigratePage(tk, lp, 1); err == nil {
			t.Error("migrated a referenced page")
		}
		f.vms[0].Unref(tk, pf)
		// Exported page also refused.
		pf, _ = f.vms[0].Lookup(lp)
		f.vms[0].Export(tk, pf, 1, false)
		if err := f.vms[0].MigratePage(tk, lp, 1); err == nil {
			t.Error("migrated an exported page")
		}
	})
}

func TestPlacePagesBatch(t *testing.T) {
	f := newFixture(t, 2)
	f.run(t, func(tk *sim.Task) {
		obj := ObjID{Kind: FileObj, Home: 0, Num: 82}
		for off := int64(0); off < 6; off++ {
			pf, err := f.vms[0].Fault(tk, LogicalPage{Obj: obj, Off: off}, false)
			if err != nil {
				t.Fatalf("fault: %v", err)
			}
			f.vms[0].Unref(tk, pf)
		}
		moved := f.vms[0].PlacePages(tk, obj, 1, 4)
		if moved != 4 {
			t.Fatalf("moved = %d, want 4", moved)
		}
		if f.vms[0].Metrics.Counter("vm.pages_migrated").Value() != 4 {
			t.Fatal("migrations not counted")
		}
	})
}
