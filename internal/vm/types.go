// Package vm implements Hive's per-cell virtual memory system (§5 of the
// paper): the IRIX-derived pfdat page cache, extended pfdats, logical-level
// memory sharing (export/import/release), physical-level sharing
// (loan/borrow/return of page frames), the firewall management policy, and
// the preemptive-discard bookkeeping the wild-write defense depends on.
package vm

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/machine"
	"repro/internal/rpc"
	"repro/internal/sim"
)

// ObjKind distinguishes the two owners of logical pages.
type ObjKind uint8

const (
	// FileObj pages belong to a file; the tag names the file.
	FileObj ObjKind = iota
	// AnonObj pages are anonymous (backed by swap); the tag names a
	// copy-on-write tree node.
	AnonObj
)

// ObjID is the tag component of a logical page id (§5.1): the object —
// file or copy-on-write node — to which the page belongs.
type ObjID struct {
	Kind ObjKind
	Home int    // data home cell for the object
	Num  uint64 // file number or COW node address
}

// LogicalPage is a logical page id: object tag plus page offset (§5.1).
type LogicalPage struct {
	Obj ObjID
	Off int64 // page offset within the object
}

// Less is a total order over logical pages, used wherever a pfdat map
// must be iterated deterministically.
func (lp LogicalPage) Less(o LogicalPage) bool {
	if lp.Obj.Kind != o.Obj.Kind {
		return lp.Obj.Kind < o.Obj.Kind
	}
	if lp.Obj.Home != o.Obj.Home {
		return lp.Obj.Home < o.Obj.Home
	}
	if lp.Obj.Num != o.Obj.Num {
		return lp.Obj.Num < o.Obj.Num
	}
	return lp.Off < o.Off
}

// SortedPages returns m's keys in LogicalPage.Less order, so callers
// can sweep a pfdat map without leaking Go's random map order into
// simulation state.
func SortedPages(m map[LogicalPage]*Pfdat) []LogicalPage {
	out := make([]LogicalPage, 0, len(m))
	for lp := range m {
		out = append(out, lp)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// String formats the logical page id for diagnostics.
func (lp LogicalPage) String() string {
	k := "file"
	if lp.Obj.Kind == AnonObj {
		k = "anon"
	}
	return fmt.Sprintf("%s(home=%d,%d)+%d", k, lp.Obj.Home, lp.Obj.Num, lp.Off)
}

// Pfdat is a page frame data structure (§5.1): the kernel record binding a
// logical page id to a physical frame. Regular pfdats describe local
// frames; extended pfdats are allocated dynamically for remote frames a
// cell has imported (logical level) or borrowed (physical level).
type Pfdat struct {
	Frame machine.PageNum
	LP    LogicalPage
	Valid bool // bound to a logical page and present in the hash
	Dirty bool // modified with respect to backing store

	// Extended marks a dynamically allocated pfdat for a remote frame.
	Extended bool

	// Logical-level sharing state (data home side).
	exports  map[int]int  // client cell -> reference count
	writable map[int]bool // client cells granted firewall write access

	// Logical-level sharing state (client side).
	ImportedFrom int  // data home cell, or -1
	ImpWritable  bool // this cell requested write access

	// Physical-level sharing state. The two state machines use separate
	// storage so a frame can be loaned out and imported back at once
	// (§5.5).
	LoanedTo     int // memory home side: borrowing cell, or -1
	BorrowedFrom int // data home side: memory home cell, or -1

	// Refs counts local mappings/uses; the page cannot be freed or its
	// import released while nonzero.
	Refs int

	// Kernel marks frames reserved for kernel text/data: never granted
	// remote write access and never loaned.
	Kernel bool
}

func newPfdat(frame machine.PageNum) *Pfdat {
	return &Pfdat{Frame: frame, ImportedFrom: -1, LoanedTo: -1, BorrowedFrom: -1}
}

// Exported reports whether any client cell currently imports this page.
func (p *Pfdat) Exported() bool { return len(p.exports) > 0 }

// ExportedTo reports whether the given cell imports this page.
func (p *Pfdat) ExportedTo(cell int) bool { return p.exports[cell] > 0 }

// WritableBy reports whether the given cell has write access to the page.
func (p *Pfdat) WritableBy(cell int) bool { return p.writable[cell] }

// Exports returns the export reference counts by client cell (a copy;
// invariant auditing).
func (p *Pfdat) Exports() map[int]int {
	out := make(map[int]int, len(p.exports))
	for c, n := range p.exports {
		out[c] = n
	}
	return out
}

// ExportClients returns the client cells importing this page, ascending
// — the deterministic iteration order for auditing and recovery sweeps.
func (p *Pfdat) ExportClients() []int {
	out := make([]int, 0, len(p.exports))
	for c := range p.exports {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// Errors returned by the VM layer.
var (
	// ErrNoMemory means no acceptable frame could be allocated.
	ErrNoMemory = errors.New("vm: out of memory")
	// ErrDiscarded means the page was preemptively discarded after a
	// cell failure and the caller's generation is stale (§4.2).
	ErrDiscarded = errors.New("vm: page discarded after cell failure")
	// ErrBadPage is a sanity-check failure on an RPC argument.
	ErrBadPage = errors.New("vm: bad page argument")
	// ErrRecovering means the operation arrived while recovery holds
	// faults up (§4.3 double barrier).
	ErrRecovering = errors.New("vm: cell in recovery")
)

// IsRecovering reports whether err indicates the callee was in recovery;
// error identity does not survive the RPC boundary, so match the message
// too.
func IsRecovering(err error) bool {
	return err != nil &&
		(errors.Is(err, ErrRecovering) || strings.Contains(err.Error(), ErrRecovering.Error()))
}

// RPC procedure numbers used by the VM subsystem (range 100-119).
const (
	ProcExport   rpc.ProcID = 100 + iota // page-fault service: export a page
	ProcRelease                          // drop an export reference
	ProcBorrow                           // borrow free frames
	ProcReturn                           // return borrowed frames
	ProcFirewall                         // change firewall on a loaned frame
)

// Cost components (ns) calibrated from Table 5.2 of the paper. The local
// page-fault path totals 6.9 µs; the remote path's client cell spends
// 28.0 µs (file system 9.0, locking 5.5, miscellaneous VM 8.7, import 4.8)
// and the data home 5.4 µs (miscellaneous VM 3.4, export 2.0); RPC costs
// (17.3 µs) are charged by the rpc package.
const (
	LocalFaultLookup sim.Time = 3200 // hash lookup + pfdat checks
	LocalFaultMap    sim.Time = 3700 // TLB/page-table insertion
	FSClientCost     sim.Time = 9000 // client-side file system work
	LockingCost      sim.Time = 5500 // client-side locking overhead
	MiscVMClient     sim.Time = 8700 // client-side miscellaneous VM
	ImportCost       sim.Time = 4800 // allocate extended pfdat + hash insert
	ExportCost       sim.Time = 2000 // record client, firewall bookkeeping
	MiscVMDataHome   sim.Time = 3400 // data-home miscellaneous VM
	BorrowCost       sim.Time = 6000 // borrow bookkeeping per batch
	ReleaseCost      sim.Time = 2500 // free extended pfdat
)
