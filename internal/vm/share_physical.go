package vm

import (
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/rpc"
	"repro/internal/sim"
)

// Physical-level sharing (§5.4): a memory home loans free page frames to
// another cell, which becomes their data home and manages them as its own.
// Frame loaning balances memory pressure across the machine and lets data
// pages be placed near the processes using them on a CC-NUMA machine.

// borrowArgs asks a memory home for frames.
type borrowArgs struct {
	Client int
	Count  int
}

// borrowReply carries the loaned frame numbers.
type borrowReply struct {
	Frames []machine.PageNum
}

// returnArgs gives frames back.
type returnArgs struct {
	Client int
	Frames []machine.PageNum
}

// AllocOpts constrains frame allocation (§5.4: the page allocator takes a
// set of acceptable cells and one preferred cell).
type AllocOpts struct {
	// Kernel frames must be local: the firewall does not defend against
	// wild writes by the memory home (§5.4).
	Kernel bool
	// Preferred is the cell to allocate from if possible; meaningful
	// only when HasPreferred is set.
	Preferred    int
	HasPreferred bool
	// Acceptable restricts which cells may provide the frame (nil = any).
	Acceptable []int
}

// Prefer returns AllocOpts preferring the given cell (§5.5 CC-NUMA
// placement: put the page near the process using it).
func Prefer(cell int) AllocOpts {
	return AllocOpts{Preferred: cell, HasPreferred: true}
}

// AllocFrame allocates one page frame, borrowing from a remote memory home
// when the local pool is empty (demand-driven frame loaning, §5.4, with
// targets ordered by Wax's allocation hints).
func (v *VM) AllocFrame(t *sim.Task, opts AllocOpts) (machine.PageNum, error) {
	acceptable := func(cell int) bool {
		if opts.Acceptable == nil {
			return true
		}
		for _, c := range opts.Acceptable {
			if c == cell {
				return true
			}
		}
		return false
	}

	// Preferred remote cell first, if asked and allowed.
	if !opts.Kernel && opts.HasPreferred && opts.Preferred != v.CellID && acceptable(opts.Preferred) {
		if f, err := v.borrowFrom(t, opts.Preferred); err == nil {
			return f, nil
		}
	}

	if acceptable(v.CellID) {
		if f, ok := v.popLocalFree(opts.Kernel); ok {
			return f, nil
		}
	}
	if opts.Kernel {
		return machine.NoPage, fmt.Errorf("%w: kernel frames must be local", ErrNoMemory)
	}

	// Local pool dry: borrow along Wax's target list, then any peer.
	tried := map[int]bool{v.CellID: true}
	for _, c := range v.AllocTargets {
		if !tried[c] && acceptable(c) {
			tried[c] = true
			if f, err := v.borrowFrom(t, c); err == nil {
				return f, nil
			}
		}
	}
	peers := make([]int, 0, len(v.EP.Peers))
	for c := range v.EP.Peers {
		peers = append(peers, c)
	}
	sort.Ints(peers)
	for _, c := range peers {
		if !tried[c] && acceptable(c) {
			tried[c] = true
			if f, err := v.borrowFrom(t, c); err == nil {
				return f, nil
			}
		}
	}
	return machine.NoPage, ErrNoMemory
}

// popLocalFree takes a frame from the free pool. Kernel requests skip
// borrowed frames (§5.4).
func (v *VM) popLocalFree(kernelOnly bool) (machine.PageNum, bool) {
	for i := len(v.free) - 1; i >= 0; i-- {
		f := v.free[i]
		if kernelOnly && !v.localFrame(f) {
			continue
		}
		v.free = append(v.free[:i], v.free[i+1:]...)
		return f, true
	}
	return machine.NoPage, false
}

// FreeFrame returns a frame to the pool. Borrowed frames go back to their
// memory home as soon as their data is no longer in use — the paper's
// current (admittedly eager) policy (§5.4).
func (v *VM) FreeFrame(t *sim.Task, f machine.PageNum) {
	pf := v.frames[f]
	if pf != nil && pf.BorrowedFrom >= 0 {
		v.ReturnFrames(t, []machine.PageNum{f})
		return
	}
	v.free = append(v.free, f)
}

// borrowFrom requests a batch of frames from the given memory home and
// returns one of them, pooling the rest (Table 5.1: borrow_frame).
func (v *VM) borrowFrom(t *sim.Task, home int) (machine.PageNum, error) {
	v.anyProc().Use(t, BorrowCost)
	res, err := v.EP.Call(t, v.anyProc(), home, ProcBorrow,
		&borrowArgs{Client: v.CellID, Count: v.BorrowBatch},
		rpc.CallOpts{DataBytes: 192})
	if err != nil {
		return machine.NoPage, err
	}
	rep, err := v.validateBorrowReply(res, home)
	if err != nil {
		return machine.NoPage, err
	}
	for _, f := range rep.Frames {
		pf := newPfdat(f)
		pf.Extended = true
		pf.BorrowedFrom = home
		v.frames[f] = pf
		v.free = append(v.free, f)
	}
	v.Metrics.Counter("vm.borrows").Add(int64(len(rep.Frames)))
	f, _ := v.popLocalFree(false)
	return f, nil
}

// validateBorrowReply sanity-checks a borrow reply: every frame the
// memory home handed out must exist and actually be owned by that home
// — a corrupt cell must not loan out an innocent third cell's memory.
func (v *VM) validateBorrowReply(res any, home int) (*borrowReply, error) {
	rep, ok := res.(*borrowReply)
	if !ok || len(rep.Frames) == 0 {
		return nil, ErrNoMemory
	}
	for _, f := range rep.Frames {
		if f < 0 || int(f) >= v.M.NumPages() || v.CellOfNode[v.M.HomeNode(f)] != home {
			return nil, fmt.Errorf("%w: borrowed frame %d not owned by cell %d",
				ErrBadPage, f, home)
		}
	}
	return rep, nil
}

// ReturnFrames sends borrowed frames back to their memory homes
// (Table 5.1: return_frame).
func (v *VM) ReturnFrames(t *sim.Task, frames []machine.PageNum) {
	byHome := map[int][]machine.PageNum{}
	for _, f := range frames {
		pf := v.frames[f]
		if pf == nil || pf.BorrowedFrom < 0 {
			continue
		}
		byHome[pf.BorrowedFrom] = append(byHome[pf.BorrowedFrom], f)
		delete(v.frames, f)
	}
	homes := make([]int, 0, len(byHome))
	for home := range byHome {
		homes = append(homes, home)
	}
	sort.Ints(homes)
	for _, home := range homes {
		fs := byHome[home]
		v.Metrics.Counter("vm.returns").Add(int64(len(fs)))
		//hive:lint-ignore errdrop frame return is best-effort: a dead memory home reclaims every loan during its recovery, so the return is moot
		v.EP.Call(t, v.anyProc(), home, ProcReturn,
			&returnArgs{Client: v.CellID, Frames: fs},
			rpc.CallOpts{DataBytes: 192, NoHint: true})
	}
}

// ReturnUnusedBorrows sends idle borrowed frames back to a pressured
// memory home — the clock-hand policy Wax drives ("preferentially free
// pages whose memory home is under memory pressure", §5.7). It returns the
// number of frames sent home.
func (v *VM) ReturnUnusedBorrows(t *sim.Task, home int) int {
	var give []machine.PageNum
	for i := len(v.free) - 1; i >= 0; i-- {
		f := v.free[i]
		if pf := v.frames[f]; pf != nil && pf.BorrowedFrom == home {
			v.free = append(v.free[:i], v.free[i+1:]...)
			give = append(give, f)
		}
	}
	if len(give) > 0 {
		v.ReturnFrames(t, give)
	}
	return len(give)
}

// BorrowedFrames counts frames currently borrowed from other cells.
func (v *VM) BorrowedFrames() int {
	n := 0
	for _, pf := range v.frames {
		if pf.BorrowedFrom >= 0 {
			n++
		}
	}
	return n
}

// LoanedFrames counts local frames currently loaned out.
func (v *VM) LoanedFrames() int {
	n := 0
	for _, pf := range v.frames {
		if pf.LoanedTo >= 0 {
			n++
		}
	}
	return n
}

// validateBorrowArgs vets a frame-loan request: the borrower named in
// the request must be the cell that actually sent it (a corrupt cell
// must not open another cell's firewall by impersonation, §5.4) and the
// batch size must be sane.
func validateBorrowArgs(req *rpc.Request) (*borrowArgs, error) {
	args, ok := req.Args.(*borrowArgs)
	if !ok || args.Client != req.From || args.Count <= 0 || args.Count > 1024 {
		return nil, ErrBadPage
	}
	return args, nil
}

// validateReturnArgs vets a frame-return: only the borrower of record
// may hand frames back (per-frame ownership is re-checked against the
// loan table in acceptReturns).
func validateReturnArgs(req *rpc.Request) (*returnArgs, error) {
	args, ok := req.Args.(*returnArgs)
	if !ok || args.Client != req.From || len(args.Frames) > 1024 {
		return nil, ErrBadPage
	}
	return args, nil
}

// registerPhysicalServices is called from registerServices.
func (v *VM) registerPhysicalServices() {
	// Loan service: the memory home moves frames to the reserved list
	// and ignores them until returned or the borrower fails (§5.4).
	v.EP.Register(ProcBorrow, "vm.borrow",
		func(req *rpc.Request) (any, sim.Time, bool, error) {
			args, err := validateBorrowArgs(req)
			if err != nil {
				return nil, 0, true, err
			}
			if v.Lock.Locked() {
				return nil, 0, false, nil
			}
			rep := v.loanFrames(args.Client, args.Count)
			if len(rep.Frames) == 0 {
				return nil, 0, true, ErrNoMemory
			}
			return rep, BorrowCost, true, nil
		},
		func(t *sim.Task, req *rpc.Request) (any, error) {
			args, err := validateBorrowArgs(req)
			if err != nil {
				return nil, err
			}
			v.Lock.Lock(t)
			rep := v.loanFrames(args.Client, args.Count)
			v.Lock.Unlock(t)
			if len(rep.Frames) == 0 {
				return nil, ErrNoMemory
			}
			return rep, nil
		})

	v.EP.Register(ProcReturn, "vm.return",
		func(req *rpc.Request) (any, sim.Time, bool, error) {
			args, err := validateReturnArgs(req)
			if err != nil {
				return nil, 0, true, err
			}
			if v.Lock.Locked() {
				return nil, 0, false, nil
			}
			v.acceptReturns(args.Client, args.Frames)
			return nil, MiscVMDataHome, true, nil
		},
		func(t *sim.Task, req *rpc.Request) (any, error) {
			args, err := validateReturnArgs(req)
			if err != nil {
				return nil, err
			}
			v.Lock.Lock(t)
			v.acceptReturns(args.Client, args.Frames)
			v.Lock.Unlock(t)
			return nil, nil
		})
}

// loanFrames moves up to count local free frames to the loaned state.
// Preserve a reserve so the cell cannot deadlock itself (§3.2: each cell
// preserves enough local free memory to avoid deadlock).
func (v *VM) loanFrames(client, count int) *borrowReply {
	const reserve = 32
	rep := &borrowReply{}
	for len(rep.Frames) < count && len(v.free) > reserve {
		f, ok := v.popLocalFree(true) // only loan frames we own
		if !ok {
			break
		}
		pf := v.frames[f]
		pf.LoanedTo = client
		// Loaning transfers control of the frame: open the firewall for
		// the borrowing cell (further changes come back by RPC, §5.4).
		bits := v.homeMask(f) | v.clientMask(client)
		v.M.SetFirewallIntr(v.proc(f), f, bits)
		rep.Frames = append(rep.Frames, f)
	}
	v.Metrics.Counter("vm.loans").Add(int64(len(rep.Frames)))
	return rep
}

// acceptReturns takes loaned frames back from a borrower.
func (v *VM) acceptReturns(client int, frames []machine.PageNum) {
	for _, f := range frames {
		if !v.localFrame(f) {
			continue // sanity: only our own frames
		}
		pf := v.frames[f]
		if pf == nil || pf.LoanedTo != client {
			continue // sanity: must have been loaned to this client
		}
		pf.LoanedTo = -1
		v.M.SetFirewallIntr(v.proc(f), f, v.homeMask(f))
		v.free = append(v.free, f)
	}
}
