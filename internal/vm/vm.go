package vm

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Resolver locates a logical page that missed in the pfdat hash: the file
// system for file pages, the copy-on-write manager for anonymous pages
// (§5.7: they provide naming and location transparency). ResolvePage runs
// in task context and may block (disk reads, RPCs); on success the page is
// in the hash.
type Resolver interface {
	ResolvePage(t *sim.Task, lp LogicalPage, write bool) (*Pfdat, error)
}

// VM is one cell's virtual memory system.
type VM struct {
	CellID int
	M      *machine.Machine
	EP     *rpc.Endpoint

	// NodeIDs the cell owns; CellOfNode maps any node to its owning cell.
	NodeIDs    []int
	CellOfNode []int

	// Lock is the cell's memory lock. Interrupt-level services check it
	// with Locked() and fall back to the queued path when busy (§4.3
	// explains why fault service must avoid blocking locks).
	Lock sim.Mutex

	hash      map[LogicalPage]*Pfdat
	frames    map[machine.PageNum]*Pfdat
	free      []machine.PageNum
	resolvers map[ObjKind]Resolver

	procForNode map[int]*machine.Processor

	// recovery state
	holdFaults bool
	faultCond  *sim.Cond

	// OnDiscardDirty tells the file system a dirty page was preemptively
	// discarded so it can bump the file's generation number (§4.2).
	OnDiscardDirty func(lp LogicalPage)

	// AllocTargets, set by Wax, orders remote cells to borrow frames
	// from when local memory runs out (Table 3.4: page allocator policy).
	AllocTargets []int

	// BorrowBatch is how many frames one borrow RPC requests.
	BorrowBatch int

	// Tracer records this cell's fault spans (nil no-ops).
	Tracer *trace.Tracer

	Metrics   *stats.Registry
	histFault *stats.Histogram // fault service latency (µs), hits and misses

	// maskOfCell caches each cell's firewall processor mask (built lazily
	// from CellOfNode, which never changes after boot).
	maskOfCell []uint64
}

// New creates the VM for cell cellID owning the given nodes. kernelPages
// frames per node are reserved for the kernel (never shared, never loaned);
// the rest form the paged-memory free pool.
func New(m *machine.Machine, ep *rpc.Endpoint, cellID int, nodeIDs []int, cellOfNode []int, kernelPages int) *VM {
	v := &VM{
		CellID:      cellID,
		M:           m,
		EP:          ep,
		NodeIDs:     nodeIDs,
		CellOfNode:  cellOfNode,
		hash:        make(map[LogicalPage]*Pfdat),
		frames:      make(map[machine.PageNum]*Pfdat),
		resolvers:   make(map[ObjKind]Resolver),
		procForNode: make(map[int]*machine.Processor),
		BorrowBatch: 16,
		Metrics:     stats.NewRegistry(),
	}
	v.histFault = v.Metrics.Hist("vm.fault_us")
	v.faultCond = &sim.Cond{M: &v.Lock}
	for _, n := range nodeIDs {
		v.procForNode[n] = m.Nodes[n].Procs[0]
		lo, hi := m.NodePages(n)
		for p := lo; p < hi; p++ {
			pf := newPfdat(p)
			if int(p-lo) < kernelPages {
				pf.Kernel = true
			} else {
				v.free = append(v.free, p)
			}
			v.frames[p] = pf
		}
	}
	v.registerServices()
	return v
}

// SetResolver installs the page resolver for an object kind.
func (v *VM) SetResolver(k ObjKind, r Resolver) { v.resolvers[k] = r }

// Lookup returns the pfdat for lp if present in the hash (no timing).
func (v *VM) Lookup(lp LogicalPage) (*Pfdat, bool) {
	pf, ok := v.hash[lp]
	return pf, ok
}

// PfdatFor returns the pfdat for a frame this cell knows about.
func (v *VM) PfdatFor(frame machine.PageNum) (*Pfdat, bool) {
	pf, ok := v.frames[frame]
	return pf, ok
}

// FreePages returns the current free-pool size.
func (v *VM) FreePages() int { return len(v.free) }

// CacheSize returns the number of pages in the page cache hash.
func (v *VM) CacheSize() int { return len(v.hash) }

// ownsNode reports whether this cell owns node n.
func (v *VM) ownsNode(n int) bool {
	return n < len(v.CellOfNode) && v.CellOfNode[n] == v.CellID
}

// localFrame reports whether the frame's memory home is this cell.
func (v *VM) localFrame(p machine.PageNum) bool {
	return v.ownsNode(v.M.HomeNode(p))
}

// proc returns the processor used for VM work on the frame's home node, or
// any of the cell's processors for remote frames.
func (v *VM) proc(frame machine.PageNum) *machine.Processor {
	if p, ok := v.procForNode[v.M.HomeNode(frame)]; ok {
		return p
	}
	return v.anyProc()
}

func (v *VM) anyProc() *machine.Processor {
	for _, n := range v.NodeIDs {
		if p := v.procForNode[n]; !p.Halted() {
			return p
		}
	}
	return v.procForNode[v.NodeIDs[0]]
}

// Fault services a page fault by a process on this cell for logical page
// lp. A hit in the local pfdat hash costs 6.9 µs; a miss invokes the
// object's resolver (file system or COW manager), which may go remote —
// the 50.7 µs path broken down in Table 5.2. The returned pfdat has its
// reference count incremented; the caller owns one reference.
func (v *VM) Fault(t *sim.Task, lp LogicalPage, write bool) (*Pfdat, error) {
	proc := v.anyProc()
	start := t.Now()
	span := v.Tracer.NextSpan()
	v.Tracer.EmitSpan(start, trace.FaultBegin, span, int64(lp.Obj.Home), lp.Off, "")
	for {
		// Faults are held up client-side while recovery runs (§4.3).
		if v.holdFaults {
			v.Lock.Lock(t)
			for v.holdFaults {
				v.faultCond.Wait(t)
			}
			v.Lock.Unlock(t)
		}

		proc.Use(t, LocalFaultLookup)
		pf, ok := v.hash[lp]
		if ok && (!write || v.writableHere(pf)) {
			// Hit: 6.9 µs total.
			proc.Use(t, LocalFaultMap)
			pf.Refs++
			v.Metrics.Counter("vm.fault_hits").Inc()
			v.Tracer.EmitSpan(t.Now(), trace.FaultEnd, span, 1, 0, "")
			v.histFault.ObserveTime(t.Now() - start)
			return pf, nil
		}

		// Miss (or write upgrade): client-side VM + locking costs.
		v.Metrics.Counter("vm.fault_misses").Inc()
		proc.Use(t, MiscVMClient-LocalFaultLookup+LockingCost)
		v.Lock.Lock(t)
		res := v.resolvers[lp.Obj.Kind]
		if res == nil {
			v.Lock.Unlock(t)
			v.Tracer.EmitSpan(t.Now(), trace.FaultEnd, span, 0, 0, "")
			return nil, fmt.Errorf("%w: no resolver for %v", ErrBadPage, lp)
		}
		v.Lock.Unlock(t)
		pf, err := res.ResolvePage(t, lp, write)
		if IsRecovering(err) {
			t.Sleep(sim.Millisecond)
			continue
		}
		if err != nil {
			v.Tracer.EmitSpan(t.Now(), trace.FaultEnd, span, 0, 0, "")
			return nil, err
		}
		// Mapping cost on the miss path is folded into MiscVMClient,
		// keeping the client-side total at Table 5.2's 28.0 µs.
		pf.Refs++
		v.Tracer.EmitSpan(t.Now(), trace.FaultEnd, span, 0, 0, "")
		v.histFault.ObserveTime(t.Now() - start)
		return pf, nil
	}
}

// writableHere reports whether the page, as currently cached, satisfies a
// write fault from this cell.
func (v *VM) writableHere(pf *Pfdat) bool {
	if pf.ImportedFrom >= 0 {
		return pf.ImpWritable
	}
	return true // locally owned pages are writable by the owner
}

// Unref drops one reference to a pfdat. When the last local reference to an
// imported page is dropped the import is released back to the data home
// (§5.2: release frees the extended pfdat and RPCs the data home).
func (v *VM) Unref(t *sim.Task, pf *Pfdat) {
	if pf.Refs <= 0 {
		panic("vm: unref of unreferenced pfdat")
	}
	pf.Refs--
	if pf.Refs == 0 && pf.ImportedFrom >= 0 && pf.BorrowedFrom < 0 && !v.localFrame(pf.Frame) {
		v.Release(t, pf)
	}
}

// InsertLocal binds a local frame to a logical page and enters it in the
// hash: the data-home side of page-cache population (file reads, COW page
// creation). The caller must have allocated the frame.
func (v *VM) InsertLocal(lp LogicalPage, frame machine.PageNum, dirty bool) *Pfdat {
	pf := v.frames[frame]
	if pf == nil {
		// Borrowed frame in use as data home: pfdat exists from borrow.
		pf = newPfdat(frame)
		v.frames[frame] = pf
	}
	pf.LP = lp
	pf.Valid = true
	pf.Dirty = dirty
	v.hash[lp] = pf
	return pf
}

// Evict removes an unreferenced page from the hash and frees its frame.
// Dirty pages are the caller's responsibility to write back first.
func (v *VM) Evict(t *sim.Task, lp LogicalPage) bool {
	pf, ok := v.hash[lp]
	if !ok || pf.Refs > 0 || pf.Exported() {
		return false
	}
	delete(v.hash, lp)
	pf.Valid = false
	pf.Dirty = false
	v.FreeFrame(t, pf.Frame)
	return true
}

// Hash returns a copy of the pfdat hash (invariant auditing).
func (v *VM) Hash() map[LogicalPage]*Pfdat {
	out := make(map[LogicalPage]*Pfdat, len(v.hash))
	for lp, pf := range v.hash {
		out[lp] = pf
	}
	return out
}

// FreeList returns a copy of the free pool (invariant auditing).
func (v *VM) FreeList() []machine.PageNum {
	return append([]machine.PageNum(nil), v.free...)
}

// Metrics helpers used by the §4.2 firewall study.

// RemotelyWritablePages counts this cell's local frames currently writable
// by any remote cell — the quantity sampled every 20 ms in the paper.
func (v *VM) RemotelyWritablePages() int {
	n := 0
	//hive:lint-ignore maporder pure count; localFrame only reads the node table, no order escapes
	for _, pf := range v.frames {
		if !v.localFrame(pf.Frame) {
			continue
		}
		if len(pf.writable) > 0 {
			n++
		}
	}
	return n
}

// UserPages counts local frames currently bound to logical pages.
func (v *VM) UserPages() int {
	n := 0
	//hive:lint-ignore maporder pure count; localFrame only reads the node table, no order escapes
	for _, pf := range v.frames {
		if pf.Valid && v.localFrame(pf.Frame) {
			n++
		}
	}
	return n
}
