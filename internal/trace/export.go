package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
)

// Chrome trace-event export: the merged stream rendered as the JSON
// object format (https://ui.perfetto.dev loads it directly), keyed by
// virtual microseconds. Each cell is one track (pid 0, tid = cell);
// begin/end pairs — RPC client and server halves, page faults, recovery
// phases — become complete ("X") slices, everything else an instant.
// The output is a pure function of the merged stream, so two runs with
// the same seed produce byte-identical files.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeDoc is the whole file.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// spanName labels the slice opened by a begin-kind event.
func spanName(e Event) string {
	switch e.Kind {
	case RPCSend:
		return fmt.Sprintf("rpc:call:%d", e.B)
	case RPCRecv:
		return fmt.Sprintf("rpc:serve:%d", e.B)
	case FaultBegin:
		return "vm:fault"
	case PhaseBegin:
		return e.S
	}
	return e.Kind.String()
}

// instantName labels a point event.
func instantName(e Event) string {
	switch e.Kind {
	case Hint:
		return "hint"
	case Alert:
		return "alert"
	case Vote:
		return "vote"
	case Heartbeat:
		return "heartbeat"
	case Panic:
		return "panic"
	case Kill:
		return "kill"
	case Discard:
		return "discard"
	case FirewallGrant:
		return "firewall:grant"
	case FirewallRevoke:
		return "firewall:revoke"
	case SIPS:
		return "sips"
	case WaxHint:
		return "wax:hint"
	case RPCReply:
		return "rpc:reply"
	case RPCTimeout:
		return "rpc:timeout"
	case MsgDrop:
		return "msg:drop"
	case MsgDup:
		return "msg:dup"
	case MsgCorrupt:
		return "msg:corrupt"
	case MsgDelay:
		return "msg:delay"
	case RPCRetry:
		return "rpc:retry"
	case RoundRestart:
		return "round:restart"
	case FaultEnd:
		return "vm:fault-end"
	case PhaseEnd:
		return e.S + ":end"
	case Inject:
		return "inject"
	case CarefulAbort:
		return "careful:abort"
	case RPCDedup:
		return "rpc:dedup"
	}
	return "info"
}

// chromeArgs builds the args payload for an event.
func chromeArgs(e Event) map[string]any {
	args := map[string]any{}
	if e.Span != 0 {
		args["span"] = uint64(e.Span)
	}
	switch e.Kind {
	case Hint, Alert:
		args["suspect"] = e.A
		args["reason"] = e.S
	case Vote:
		args["suspect"] = e.A
		args["dead"] = e.B != 0
	case Heartbeat:
		args["neighbour"] = e.A
		args["clock"] = e.B
	case Panic:
		args["reason"] = e.S
	case Kill, Discard:
		args["count"] = e.A
	case RPCSend, RPCRecv, RPCReply, RPCTimeout:
		args["peer"] = e.A
		args["proc"] = e.B
	case FaultBegin:
		args["home"] = e.A
		args["page"] = e.B
	case FaultEnd:
		args["hit"] = e.A != 0
	case FirewallGrant, FirewallRevoke:
		args["page"] = e.A
		args["bits"] = fmt.Sprintf("%#x", uint64(e.B))
	case SIPS, MsgDrop, MsgDup, MsgCorrupt:
		args["to_proc"] = e.A
		args["queue"] = e.B
	case MsgDelay:
		args["to_proc"] = e.A
		args["extra_ns"] = e.B
	case RPCRetry:
		args["peer"] = e.A
		args["attempt"] = e.B
	case RoundRestart:
		args["dead_coordinator"] = e.A
		args["new_coordinator"] = e.B
	case PhaseEnd:
		if e.A != 0 {
			args["count"] = e.A
		}
	case WaxHint:
		args["hint"] = e.S
		args["target"] = e.A
		args["applied"] = e.B != 0
	case Inject:
		args["fault"] = e.S
	case CarefulAbort:
		args["suspect"] = e.A
		args["reason"] = e.S
	case RPCDedup:
		args["peer"] = e.A
		args["what"] = e.S
	}
	if len(args) == 0 {
		return nil
	}
	return args
}

// beginKind reports whether k opens a slice; endKind whether it closes one.
func beginKind(k Kind) bool {
	return k == RPCSend || k == RPCRecv || k == FaultBegin || k == PhaseBegin
}

func endKind(k Kind) bool {
	return k == RPCReply || k == RPCTimeout || k == FaultEnd || k == PhaseEnd
}

// cat labels the ring an event came from.
func cat(k Kind) string {
	if k.control() {
		return "control"
	}
	return "data"
}

// pairKey identifies the track a slice lives on: same span, same cell.
// (A self-RPC nests its client and server slices on one track; the
// per-key stack pairs them LIFO, which is exactly the nesting order.)
type pairKey struct {
	span SpanID
	cell int
}

// BuildChrome converts the merged stream into trace-event entries:
// metadata first, then events in merge order, with each begin/end pair
// folded into one complete slice emitted at its end event's position.
func (s *Set) BuildChrome() []chromeEvent {
	var out []chromeEvent
	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": "hive"},
	})
	for c := 0; c < s.Cells(); c++ {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: c,
			Args: map[string]any{"name": fmt.Sprintf("cell %d", c)},
		})
	}

	open := map[pairKey][]Event{}
	var openOrder []pairKey // insertion order, for deterministic leftovers
	for _, e := range s.Merged() {
		switch {
		case beginKind(e.Kind) && e.Span != 0:
			k := pairKey{e.Span, e.Cell}
			if len(open[k]) == 0 {
				openOrder = append(openOrder, k)
			}
			open[k] = append(open[k], e)
		case endKind(e.Kind) && e.Span != 0 && len(open[pairKey{e.Span, e.Cell}]) > 0:
			k := pairKey{e.Span, e.Cell}
			stack := open[k]
			b := stack[len(stack)-1]
			open[k] = stack[:len(stack)-1]
			dur := (e.At - b.At).Micros()
			args := chromeArgs(b)
			if e.Kind == FaultEnd {
				if args == nil {
					args = map[string]any{}
				}
				args["hit"] = e.A != 0
			}
			if e.Kind == PhaseEnd && e.A != 0 {
				if args == nil {
					args = map[string]any{}
				}
				args["count"] = e.A
			}
			if e.Kind == RPCTimeout {
				if args == nil {
					args = map[string]any{}
				}
				args["timeout"] = true
			}
			out = append(out, chromeEvent{
				Name: spanName(b), Cat: cat(b.Kind), Ph: "X",
				Ts: b.At.Micros(), Dur: &dur, Pid: 0, Tid: e.Cell,
				Args: args,
			})
		default:
			out = append(out, chromeEvent{
				Name: instantName(e), Cat: cat(e.Kind), Ph: "i",
				Ts: e.At.Micros(), Pid: 0, Tid: e.Cell, Scope: "t",
				Args: chromeArgs(e),
			})
		}
	}
	// Slices whose end fell outside the ring (or never happened —
	// e.g. an RPC outstanding when the run stopped) close with zero
	// duration rather than vanish.
	for _, k := range openOrder {
		stack := open[k]
		open[k] = nil // a key may appear twice in openOrder; drain once
		for _, b := range stack {
			zero := 0.0
			args := chromeArgs(b)
			if args == nil {
				args = map[string]any{}
			}
			args["unclosed"] = true
			out = append(out, chromeEvent{
				Name: spanName(b), Cat: cat(b.Kind), Ph: "X",
				Ts: b.At.Micros(), Dur: &zero, Pid: 0, Tid: b.Cell,
				Args: args,
			})
		}
	}
	return out
}

// CounterPoint is one sample of a counter track.
type CounterPoint struct {
	At    sim.Time
	Value int64
}

// CounterTrack is a named time series rendered as a Chrome counter
// ("C") track, so Perfetto plots engine behaviour — mailbox depth,
// event-heap occupancy, window activity — alongside the span slices.
type CounterTrack struct {
	Name   string
	Points []CounterPoint
}

// enginePid is the synthetic process hosting counter tracks; the per-cell
// span tracks live on pid 0.
const enginePid = 1

// buildCounterEvents renders tracks as counter entries under a dedicated
// "engine" process. Output order is tracks-then-points, fully determined
// by the input.
func buildCounterEvents(tracks []CounterTrack) []chromeEvent {
	if len(tracks) == 0 {
		return nil
	}
	out := []chromeEvent{{
		Name: "process_name", Ph: "M", Pid: enginePid, Tid: 0,
		Args: map[string]any{"name": "engine"},
	}}
	for _, tr := range tracks {
		for _, p := range tr.Points {
			out = append(out, chromeEvent{
				Name: tr.Name, Cat: "engine", Ph: "C",
				Ts: p.At.Micros(), Pid: enginePid, Tid: 0,
				Args: map[string]any{"value": p.Value},
			})
		}
	}
	return out
}

// EngineCounterTracks converts a sharded-engine snapshot into Perfetto
// counter tracks: the window time series (merged mail, active shards,
// pending events, deepest heap) plus one lookahead-window track, all in
// virtual time. A snapshot with no windows yields no tracks.
func EngineCounterTracks(st sim.ClusterStats) []CounterTrack {
	if st.Windows == 0 {
		return nil
	}
	mk := func(name string, get func(sim.WindowSample) int64) CounterTrack {
		tr := CounterTrack{Name: name}
		for _, sm := range st.Samples {
			tr.Points = append(tr.Points, CounterPoint{At: sm.At, Value: get(sm)})
		}
		return tr
	}
	tracks := []CounterTrack{
		mk("mailbox merged", func(s sim.WindowSample) int64 { return int64(s.Merged) }),
		mk("active shards", func(s sim.WindowSample) int64 { return int64(s.Active) }),
		mk("pending events", func(s sim.WindowSample) int64 { return int64(s.Pending) }),
		mk("max shard heap", func(s sim.WindowSample) int64 { return int64(s.MaxHeap) }),
	}
	if len(st.Samples) > 0 {
		first, last := st.Samples[0], st.Samples[len(st.Samples)-1]
		tracks = append(tracks, CounterTrack{Name: "lookahead window (ns)", Points: []CounterPoint{
			{At: first.At, Value: int64(st.Lookahead)},
			{At: last.At, Value: int64(st.Lookahead)},
		}})
	}
	return tracks
}

// ExportChrome writes the merged stream as Chrome trace-event JSON.
// Virtual time maps to the trace's microsecond timestamps, one track per
// cell. Deterministic: same seed, same bytes, at any -j level.
func (s *Set) ExportChrome(w io.Writer) error {
	return s.ExportChromeWith(w, nil)
}

// ExportChromeWith is ExportChrome plus counter tracks (typically from
// EngineCounterTracks) appended under a separate "engine" process.
func (s *Set) ExportChromeWith(w io.Writer, tracks []CounterTrack) error {
	enc := json.NewEncoder(w)
	return enc.Encode(chromeDoc{
		TraceEvents:     append(s.BuildChrome(), buildCounterEvents(tracks)...),
		DisplayTimeUnit: "ms",
	})
}
