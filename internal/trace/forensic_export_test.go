package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestRingDroppedCounter(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{At: sim.Time(i), Kind: Info})
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6 (10 records into cap 4)", got)
	}
}

func TestSetDroppedPerCell(t *testing.T) {
	s := NewSet(2, 4)
	// Flood cell 0's data ring; cell 1 stays under cap everywhere.
	for i := 0; i < 10; i++ {
		s.Tracer(0).Emit(sim.Time(i), SIPS, int64(i), 0, "")
	}
	s.Tracer(0).Emit(20, Hint, 1, 0, "x")
	s.Tracer(1).Emit(21, Hint, 0, 0, "y")

	ds := s.Dropped()
	if len(ds) != 2 {
		t.Fatalf("Dropped rows = %d, want 2", len(ds))
	}
	if ds[0].Cell != 0 || ds[0].Data != 6 || ds[0].Control != 0 {
		t.Fatalf("cell 0 drops = %+v, want {Cell:0 Control:0 Data:6}", ds[0])
	}
	if ds[1].Total() != 0 {
		t.Fatalf("cell 1 drops = %+v, want none", ds[1])
	}
	if s.TotalDropped() != 6 {
		t.Fatalf("TotalDropped = %d, want 6", s.TotalDropped())
	}
}

func TestNewKindsAreControlPlane(t *testing.T) {
	for _, k := range []Kind{Inject, CarefulAbort, RPCDedup} {
		if !k.control() {
			t.Errorf("%s must live on the control ring (forensics depends on it surviving data floods)", k)
		}
		if k.String() == "" || strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestExportChromeWithCounterTracks(t *testing.T) {
	s := NewSet(1, 16)
	s.Tracer(0).Emit(0, Hint, 1, 0, "x")

	tracks := []CounterTrack{
		{Name: "pending events", Points: []CounterPoint{{At: 0, Value: 3}, {At: 1000, Value: 7}}},
		{Name: "active shards", Points: []CounterPoint{{At: 500, Value: 2}}},
	}
	var buf strings.Builder
	if err := s.ExportChromeWith(&buf, tracks); err != nil {
		t.Fatalf("export: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Ts   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	counters := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "C" {
			counters[e.Name]++
			if e.Pid != enginePid {
				t.Errorf("counter %q on pid %d, want engine pid %d", e.Name, e.Pid, enginePid)
			}
			if _, ok := e.Args["value"]; !ok {
				t.Errorf("counter %q has no value arg: %v", e.Name, e.Args)
			}
		}
	}
	if counters["pending events"] != 2 || counters["active shards"] != 1 {
		t.Fatalf("counter events = %v, want pending×2 and active×1", counters)
	}
}

func TestEngineCounterTracksFromStats(t *testing.T) {
	st := sim.ClusterStats{
		Lookahead: 700,
		Windows:   4,
		Shards:    []sim.ShardStats{{Shard: 0}, {Shard: 1, MaxHeap: 5}},
		Samples: []sim.WindowSample{
			{At: 0, Merged: 1, Active: 2, Pending: 9, MaxHeap: 5},
			{At: 1400, Merged: 0, Active: 1, Pending: 4, MaxHeap: 3},
		},
	}
	tracks := EngineCounterTracks(st)
	if len(tracks) == 0 {
		t.Fatal("no tracks from populated stats")
	}
	names := map[string]bool{}
	for _, tr := range tracks {
		names[tr.Name] = true
		if len(tr.Points) == 0 {
			t.Errorf("track %q has no points", tr.Name)
		}
	}
	for _, want := range []string{"mailbox merged", "active shards", "pending events", "max shard heap", "lookahead window (ns)"} {
		if !names[want] {
			t.Errorf("missing track %q (have %v)", want, names)
		}
	}
	if got := EngineCounterTracks(sim.ClusterStats{}); got != nil {
		t.Fatalf("empty stats should yield no tracks, got %v", got)
	}
}
