package trace

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// BenchmarkRecord measures the hot-path recording cost. The v1 ring ran
// fmt.Sprintf eagerly on every Record — 1 alloc/op and ~142 ns/op on
// the development machine (see BenchmarkRecordEagerFormat, which keeps
// that behaviour for comparison). v2 stores typed fields and defers
// formatting to Dump/export: ~20 ns/op, 0 allocs/op.
func BenchmarkRecord(b *testing.B) {
	s := NewSet(4, 4096)
	tr := s.Tracer(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(sim.Time(i), Hint, int64(i%4), 0, "clock word failed to increment")
	}
}

// BenchmarkRecordEagerFormat is the v1 behaviour, kept for comparison:
// formatting on the hot path, whether or not the event is ever read.
func BenchmarkRecordEagerFormat(b *testing.B) {
	s := NewSet(4, 4096)
	tr := s.Tracer(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(sim.Time(i), Info, 0, 0,
			fmt.Sprintf("suspect cell %d: %s", i%4, "clock word failed to increment"))
	}
}

// BenchmarkRecordSpan covers the span-stamped variant used by the RPC
// layer (also 0 allocs/op).
func BenchmarkRecordSpan(b *testing.B) {
	s := NewSet(4, 4096)
	tr := s.Tracer(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		span := tr.NextSpan()
		tr.EmitSpan(sim.Time(i), RPCSend, span, 3, 42, "")
	}
}
