package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestRecordAndEvents(t *testing.T) {
	r := NewRing(8)
	r.Record(Event{At: 5 * sim.Millisecond, Cell: 1, Kind: Hint, A: 2, S: "clock stalled"})
	r.Record(Event{At: 6 * sim.Millisecond, Cell: 1, Kind: Panic, S: "bad pointer"})
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	es := r.Events()
	if es[0].Kind != Hint || es[1].Kind != Panic {
		t.Fatalf("wrong order: %v", es)
	}
	if got := es[0].Detail(); got != "suspect cell 2: clock stalled" {
		t.Errorf("Detail = %q", got)
	}
	if !strings.Contains(es[0].String(), "HINT") {
		t.Errorf("String = %q, want HINT tag", es[0].String())
	}
}

func TestRingWraps(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{At: sim.Time(i), Kind: Info, A: int64(i)})
	}
	es := r.Events()
	if len(es) != 4 {
		t.Fatalf("Len = %d, want 4", len(es))
	}
	for i, e := range es {
		if e.A != int64(6+i) {
			t.Errorf("event %d: A = %d, want %d (oldest-first after wrap)", i, e.A, 6+i)
		}
	}
}

func TestZeroCapacityDefaults(t *testing.T) {
	if r := NewRing(0); r.cap != 256 {
		t.Errorf("cap = %d, want 256", r.cap)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty String()", k)
		}
	}
}

func TestSetMergeTotalOrder(t *testing.T) {
	s := NewSet(3, 16)
	a, b := s.Tracer(0), s.Tracer(2)
	a.Emit(1*sim.Millisecond, Hint, 2, 0, "x")
	b.Emit(1*sim.Millisecond, SIPS, 5, 0, "") // same virtual time, later seq
	a.Emit(2*sim.Millisecond, Panic, 0, 0, "dead")
	m := s.Merged()
	if len(m) != 3 {
		t.Fatalf("merged %d events, want 3", len(m))
	}
	for i := 1; i < len(m); i++ {
		if m[i].Seq <= m[i-1].Seq {
			t.Fatalf("merge not ordered by seq: %v", m)
		}
	}
	if m[0].Cell != 0 || m[1].Cell != 2 {
		t.Errorf("cells out of order: %v %v", m[0], m[1])
	}
	if got := len(s.Filter(Hint)); got != 1 {
		t.Errorf("Filter(Hint) = %d events, want 1", got)
	}
	if got := len(s.Tail(2)); got != 2 {
		t.Errorf("Tail(2) = %d events, want 2", got)
	}
}

func TestControlRingSurvivesDataFlood(t *testing.T) {
	s := NewSet(1, 8)
	tr := s.Tracer(0)
	span := tr.Begin(0, "recovery:barrier1")
	tr.End(sim.Millisecond, span, "recovery:barrier1", 0)
	for i := 0; i < 1000; i++ {
		tr.Emit(sim.Time(i), SIPS, int64(i), 0, "")
	}
	var phases int
	for _, e := range s.Merged() {
		if e.Kind == PhaseBegin || e.Kind == PhaseEnd {
			phases++
		}
	}
	if phases != 2 {
		t.Fatalf("control events evicted by data flood: %d phase events held, want 2", phases)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Emit(0, Hint, 1, 2, "x")
	tr.EmitSpan(0, RPCSend, 7, 1, 2, "")
	span := tr.Begin(0, "p")
	tr.End(0, span, "p", 0)
	if span != 0 || tr.NextSpan() != 0 {
		t.Errorf("nil tracer allocated a span")
	}
	if tr.Cell() != -1 {
		t.Errorf("nil tracer Cell = %d", tr.Cell())
	}
}

func TestSpanPropagationAcrossCells(t *testing.T) {
	s := NewSet(2, 16)
	client, server := s.Tracer(0), s.Tracer(1)
	span := client.NextSpan()
	client.EmitSpan(0, RPCSend, span, 1, 42, "")
	server.EmitSpan(10*sim.Microsecond, RPCRecv, span, 0, 42, "")
	server.EmitSpan(20*sim.Microsecond, RPCReply, span, 0, 42, "")
	client.EmitSpan(30*sim.Microsecond, RPCReply, span, 1, 42, "")

	var got []Event
	for _, e := range s.Merged() {
		if e.Span == span {
			got = append(got, e)
		}
	}
	if len(got) != 4 {
		t.Fatalf("span links %d events, want 4", len(got))
	}
	if got[0].Cell == got[1].Cell {
		t.Errorf("span did not cross cells: %v", got)
	}
}

func TestExportChromePairsSpans(t *testing.T) {
	s := NewSet(2, 64)
	client, server := s.Tracer(0), s.Tracer(1)
	span := client.NextSpan()
	client.EmitSpan(0, RPCSend, span, 1, 42, "")
	server.EmitSpan(10*sim.Microsecond, RPCRecv, span, 0, 42, "")
	server.EmitSpan(25*sim.Microsecond, RPCReply, span, 0, 42, "")
	client.EmitSpan(30*sim.Microsecond, RPCReply, span, 1, 42, "")
	rec := server.Begin(40*sim.Microsecond, "recovery:barrier1")
	server.End(90*sim.Microsecond, rec, "recovery:barrier1", 3)
	server.Emit(95*sim.Microsecond, Hint, 0, 0, "test")
	dangling := client.Begin(99*sim.Microsecond, "vm:fault")
	_ = dangling // never ended: must still export, with dur 0

	var buf strings.Builder
	if err := s.ExportChrome(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	byName := map[string]int{}
	for _, e := range doc.TraceEvents {
		byName[e.Name]++
		switch e.Name {
		case "rpc:call:42":
			if e.Ph != "X" || e.Dur == nil || *e.Dur != 30 {
				t.Errorf("client slice wrong: ph=%s dur=%v", e.Ph, e.Dur)
			}
			if e.Tid != 0 || e.Args["peer"].(float64) != 1 {
				t.Errorf("client slice on wrong track: tid=%d args=%v", e.Tid, e.Args)
			}
		case "rpc:serve:42":
			if e.Ph != "X" || e.Dur == nil || *e.Dur != 15 || e.Tid != 1 {
				t.Errorf("server slice wrong: ph=%s dur=%v tid=%d", e.Ph, e.Dur, e.Tid)
			}
		case "recovery:barrier1":
			if e.Ph != "X" || *e.Dur != 50 || e.Args["count"].(float64) != 3 {
				t.Errorf("phase slice wrong: %+v", e)
			}
		case "vm:fault":
			if e.Ph != "X" || *e.Dur != 0 || e.Args["unclosed"] != true {
				t.Errorf("dangling begin not closed with dur 0: %+v", e)
			}
		}
	}
	for _, want := range []string{"process_name", "thread_name", "rpc:call:42", "rpc:serve:42", "recovery:barrier1", "hint", "vm:fault"} {
		if byName[want] == 0 {
			t.Errorf("export missing %q event", want)
		}
	}

	// Byte-determinism of the export itself.
	var buf2 strings.Builder
	if err := s.ExportChrome(&buf2); err != nil {
		t.Fatalf("second export: %v", err)
	}
	if buf.String() != buf2.String() {
		t.Errorf("two exports of the same set differ")
	}
}
