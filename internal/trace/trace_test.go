package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestRecordAndEntries(t *testing.T) {
	r := NewRing(8)
	r.Record(10, 0, Hint, "suspect %d", 2)
	r.Record(20, 1, Panic, "boom")
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	es := r.Entries()
	if es[0].Kind != Hint || es[1].Kind != Panic {
		t.Fatalf("entries = %v", es)
	}
	if es[0].What != "suspect 2" {
		t.Fatalf("what = %q", es[0].What)
	}
}

func TestRingWraps(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(sim.Time(i), 0, Info, "e%d", i)
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d", r.Len())
	}
	es := r.Entries()
	if es[0].What != "e6" || es[3].What != "e9" {
		t.Fatalf("wrap order: %v", es)
	}
}

func TestDumpAndFilter(t *testing.T) {
	r := NewRing(8)
	r.Record(1, 0, Hint, "a")
	r.Record(2, 1, Recovery, "b")
	r.Record(3, 2, Hint, "c")
	dump := r.Dump()
	if !strings.Contains(dump, "HINT") || !strings.Contains(dump, "RECOVERY") {
		t.Fatalf("dump = %q", dump)
	}
	hints := r.Filter(Hint)
	if len(hints) != 2 || hints[1].What != "c" {
		t.Fatalf("filter = %v", hints)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Hint; k <= Info; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
}

func TestZeroCapacityDefaults(t *testing.T) {
	r := NewRing(0)
	r.Record(1, 0, Info, "x")
	if r.Len() != 1 {
		t.Fatal("default-capacity ring broken")
	}
}
