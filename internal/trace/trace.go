// Package trace provides the lightweight event-trace facility used for
// post-fault analysis. §7.4 credits SimOS's deterministic replay with
// making it "straightforward to analyze the complex series of events that
// follow after a software fault"; our simulation is equally deterministic,
// and this ring buffer gives the same forensic view without re-running:
// each cell records its kernel-visible events (hints, alerts, recovery
// phases, panics, discards), and the buffer is dumped when a cell dies or
// on demand.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Kind classifies an event.
type Kind int

const (
	// Hint is a failure-detection hint raised or received.
	Hint Kind = iota
	// Alert is an agreement alert broadcast.
	Alert
	// Recovery marks recovery phase transitions.
	Recovery
	// Discard records a preemptively discarded page.
	Discard
	// Panic is a cell panic.
	Panic
	// Kill is a process killed by recovery.
	Kill
	// Info is anything else worth keeping.
	Info
)

// String names the kind for trace rendering.
func (k Kind) String() string {
	switch k {
	case Hint:
		return "HINT"
	case Alert:
		return "ALERT"
	case Recovery:
		return "RECOVERY"
	case Discard:
		return "DISCARD"
	case Panic:
		return "PANIC"
	case Kill:
		return "KILL"
	default:
		return "INFO"
	}
}

// Entry is one recorded event.
type Entry struct {
	At   sim.Time
	Cell int
	Kind Kind
	What string
}

// String renders one trace line.
func (e Entry) String() string {
	return fmt.Sprintf("[%12v] cell%d %-8s %s", e.At, e.Cell, e.Kind, e.What)
}

// Ring is a fixed-capacity event buffer. The zero value is unusable; use
// NewRing. Not safe for real concurrency — like everything in the
// simulation it runs on the engine's single logical thread.
type Ring struct {
	cap     int
	entries []Entry
	next    int
	wrapped bool
}

// NewRing returns a ring holding the last n events.
func NewRing(n int) *Ring {
	if n <= 0 {
		n = 256
	}
	return &Ring{cap: n, entries: make([]Entry, n)}
}

// Record appends an event.
func (r *Ring) Record(at sim.Time, cell int, kind Kind, format string, args ...any) {
	r.entries[r.next] = Entry{At: at, Cell: cell, Kind: kind, What: fmt.Sprintf(format, args...)}
	r.next++
	if r.next == r.cap {
		r.next = 0
		r.wrapped = true
	}
}

// Len reports how many events are held.
func (r *Ring) Len() int {
	if r.wrapped {
		return r.cap
	}
	return r.next
}

// Entries returns the events oldest-first.
func (r *Ring) Entries() []Entry {
	if !r.wrapped {
		return append([]Entry(nil), r.entries[:r.next]...)
	}
	out := make([]Entry, 0, r.cap)
	out = append(out, r.entries[r.next:]...)
	out = append(out, r.entries[:r.next]...)
	return out
}

// Dump renders the buffer for a post-mortem.
func (r *Ring) Dump() string {
	var b strings.Builder
	for _, e := range r.Entries() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Filter returns the events of one kind, oldest-first.
func (r *Ring) Filter(k Kind) []Entry {
	var out []Entry
	for _, e := range r.Entries() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}
