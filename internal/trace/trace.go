// Package trace provides the structured event-trace facility used for
// post-fault analysis. §7.4 credits SimOS's deterministic replay with
// making it "straightforward to analyze the complex series of events that
// follow after a software fault"; our simulation is equally deterministic,
// and these ring buffers give the same forensic view without re-running.
//
// Version 2 records typed events instead of pre-formatted strings: each
// event carries a kind, up to two integer operands, an optional string,
// and a causal span id that propagates across intercell RPCs. Recording
// is allocation-free on the hot path; human-readable text is produced
// lazily by Detail/String, and export.go renders the merged stream as
// Chrome trace-event JSON keyed by virtual microseconds.
//
// Events are recorded into per-cell rings (one control ring for rare,
// high-value events — hints, votes, recovery phases, panics — and one
// data ring for high-volume events — RPCs, SIPS, page faults, firewall
// updates) and merged into one stream totally ordered by a Set-wide
// sequence number. Because the simulation runs on one logical thread,
// the sequence order is the engine's dispatch order and is bit-identical
// across repeated runs and parallel-trial worker counts.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Kind classifies an event.
type Kind int

const (
	// Info is anything else worth keeping.
	Info Kind = iota
	// Hint is a failure-detection hint raised about a suspect cell
	// (A = suspect, S = reason).
	Hint
	// Alert is an agreement alert broadcast (A = suspect, S = reason).
	Alert
	// Vote is one cell's agreement vote (A = suspect, B = 1 if voted dead).
	Vote
	// Heartbeat is a neighbour clock check (A = neighbour, B = clock value).
	Heartbeat
	// Panic is a cell panic (S = reason).
	Panic
	// Kill records dependent processes killed by recovery (A = count).
	Kill
	// Discard records preemptively discarded pages (A = count).
	Discard
	// RPCSend is a client issuing a call (A = callee cell, B = proc).
	RPCSend
	// RPCRecv is a server dispatching a request (A = caller cell, B = proc).
	RPCRecv
	// RPCReply closes an RPC span on either side (A = peer cell, B = proc).
	RPCReply
	// RPCTimeout closes a client span that never got a reply
	// (A = callee cell, B = proc).
	RPCTimeout
	// FaultBegin opens a page-fault span (A = home node, B = page offset).
	FaultBegin
	// FaultEnd closes a page-fault span (A = 1 on a page-cache hit).
	FaultEnd
	// FirewallGrant is a firewall permission widening (A = page, B = bits).
	FirewallGrant
	// FirewallRevoke is a firewall permission narrowing (A = page, B = bits).
	FirewallRevoke
	// SIPS is one short interprocessor send (A = destination processor,
	// B = queue kind).
	SIPS
	// PhaseBegin opens a named span (S = name), e.g. the recovery
	// barrier phases.
	PhaseBegin
	// PhaseEnd closes a named span (S = name, A = optional count).
	PhaseEnd
	// WaxHint is a Wax policy hint arriving at a cell (S = hint name,
	// A = target, B = 1 if applied).
	WaxHint
	// MsgDrop is an injected message loss on the SIPS wire
	// (A = destination processor, B = queue kind).
	MsgDrop
	// MsgDup is an injected message duplication (A = destination
	// processor, B = queue kind).
	MsgDup
	// MsgCorrupt is a payload-checksum mismatch detected at delivery —
	// injected corruption caught by the hardware check and discarded
	// (A = destination processor, B = queue kind).
	MsgCorrupt
	// MsgDelay is an injected extra wire delay (A = destination
	// processor, B = extra delay in ns).
	MsgDelay
	// RPCRetry is a client retransmitting an idempotent call after a
	// per-attempt timeout (A = callee cell, B = attempt number).
	RPCRetry
	// RoundRestart is a recovery round deterministically restarting
	// after its coordinator died mid-round (A = dead coordinator,
	// B = new coordinator).
	RoundRestart
	// Inject marks a fault injection into this cell (S = "hw-fail" or
	// "corrupt"). Emitted by the injection path itself so a forensic
	// walk can locate faults from the trace alone.
	Inject
	// CarefulAbort is a careful-reference protocol abort: a cross-cell
	// kernel read hit bad data and was discarded instead of trusted
	// (A = suspect cell, S = reason).
	CarefulAbort
	// RPCDedup is a server or client discarding a duplicate or stale
	// message instead of re-executing it (A = peer cell, S = one of
	// "dup-request", "dup-reply", "stale-reply").
	RPCDedup
	// Reboot marks a microboot of a fresh cell image on a dead cell's
	// nodes (A = rebooted cell, B = attempt number, S = stage). Recorded
	// by the reboot controller so the forensic walk can see the loop.
	Reboot
	// Rejoin marks the commit of a membership join round: the rebooted
	// cell is back in the live set (A = joiner, B = coordinator). From
	// this event on, the joiner's prior taint is cleared — a later death
	// is a *new* fault, not an escape of the old one.
	Rejoin

	numKinds
)

// String names the kind for trace rendering.
func (k Kind) String() string {
	switch k {
	case Hint:
		return "HINT"
	case Alert:
		return "ALERT"
	case Vote:
		return "VOTE"
	case Heartbeat:
		return "HEARTBEAT"
	case Panic:
		return "PANIC"
	case Kill:
		return "KILL"
	case Discard:
		return "DISCARD"
	case RPCSend:
		return "RPC-SEND"
	case RPCRecv:
		return "RPC-RECV"
	case RPCReply:
		return "RPC-REPLY"
	case RPCTimeout:
		return "RPC-TIMEOUT"
	case FaultBegin:
		return "FAULT-BEGIN"
	case FaultEnd:
		return "FAULT-END"
	case FirewallGrant:
		return "FW-GRANT"
	case FirewallRevoke:
		return "FW-REVOKE"
	case SIPS:
		return "SIPS"
	case PhaseBegin:
		return "PHASE-BEGIN"
	case PhaseEnd:
		return "PHASE-END"
	case WaxHint:
		return "WAX-HINT"
	case MsgDrop:
		return "MSG-DROP"
	case MsgDup:
		return "MSG-DUP"
	case MsgCorrupt:
		return "MSG-CORRUPT"
	case MsgDelay:
		return "MSG-DELAY"
	case RPCRetry:
		return "RPC-RETRY"
	case RoundRestart:
		return "ROUND-RESTART"
	case Inject:
		return "INJECT"
	case CarefulAbort:
		return "CAREFUL-ABORT"
	case RPCDedup:
		return "RPC-DEDUP"
	case Reboot:
		return "REBOOT"
	case Rejoin:
		return "REJOIN"
	default:
		return "INFO"
	}
}

// control reports whether the kind goes to the (rarely-wrapping) control
// ring: rare, high-value forensic events that must survive long runs.
// High-volume data-plane events share a separate ring so a busy workload
// cannot evict the recovery timeline.
func (k Kind) control() bool {
	switch k {
	case Hint, Alert, Vote, Panic, Kill, Discard, PhaseBegin, PhaseEnd, WaxHint, Info,
		MsgDrop, MsgDup, MsgCorrupt, RPCRetry, RoundRestart,
		Inject, CarefulAbort, RPCDedup, Reboot, Rejoin:
		// Injected message faults, retransmissions, and round restarts
		// are rare and forensically decisive: they live in the control
		// ring so a busy workload cannot evict them.
		return true
	}
	return false
}

// SpanID links causally-related events; 0 means "no span". Client and
// server halves of one RPC share the id, so the merged stream answers
// "which call caused this".
type SpanID uint64

// Event is one recorded event. Fields A, B and S are operands whose
// meaning depends on Kind (see the Kind constants); formatting is
// deferred until Detail or String is called.
type Event struct {
	At   sim.Time
	Seq  uint64 // Set-wide total order (engine dispatch order)
	Cell int
	Kind Kind
	Span SpanID
	A, B int64
	S    string
}

// Detail renders the kind-specific message (lazily; recording never
// formats).
func (e Event) Detail() string {
	switch e.Kind {
	case Hint:
		return fmt.Sprintf("suspect cell %d: %s", e.A, e.S)
	case Alert:
		return fmt.Sprintf("alert broadcast for cell %d (%s)", e.A, e.S)
	case Vote:
		return fmt.Sprintf("vote on cell %d: dead=%v", e.A, e.B != 0)
	case Heartbeat:
		return fmt.Sprintf("neighbour %d clock=%d", e.A, e.B)
	case Panic:
		return e.S
	case Kill:
		return fmt.Sprintf("%d dependent processes killed", e.A)
	case Discard:
		return fmt.Sprintf("%d pages writable by failed cells discarded", e.A)
	case RPCSend:
		return fmt.Sprintf("call cell %d proc %d", e.A, e.B)
	case RPCRecv:
		return fmt.Sprintf("serve cell %d proc %d", e.A, e.B)
	case RPCReply:
		return fmt.Sprintf("reply (peer cell %d, proc %d)", e.A, e.B)
	case RPCTimeout:
		return fmt.Sprintf("timeout calling cell %d proc %d", e.A, e.B)
	case FaultBegin:
		return fmt.Sprintf("page fault (home node %d, page %d)", e.A, e.B)
	case FaultEnd:
		return fmt.Sprintf("fault done (hit=%v)", e.A != 0)
	case FirewallGrant:
		return fmt.Sprintf("grant page %d bits %#x", e.A, e.B)
	case FirewallRevoke:
		return fmt.Sprintf("revoke page %d bits %#x", e.A, e.B)
	case SIPS:
		return fmt.Sprintf("send to proc %d (queue %d)", e.A, e.B)
	case PhaseBegin:
		return e.S + " begin"
	case PhaseEnd:
		if e.A != 0 {
			return fmt.Sprintf("%s end (%d)", e.S, e.A)
		}
		return e.S + " end"
	case WaxHint:
		return fmt.Sprintf("wax hint %s applied=%v", e.S, e.B != 0)
	case MsgDrop:
		return fmt.Sprintf("injected drop of send to proc %d (queue %d)", e.A, e.B)
	case MsgDup:
		return fmt.Sprintf("injected duplicate of send to proc %d (queue %d)", e.A, e.B)
	case MsgCorrupt:
		return fmt.Sprintf("checksum mismatch on delivery to proc %d (queue %d): discarded", e.A, e.B)
	case MsgDelay:
		return fmt.Sprintf("injected %dns extra delay to proc %d", e.B, e.A)
	case RPCRetry:
		return fmt.Sprintf("retry attempt %d to cell %d", e.B, e.A)
	case RoundRestart:
		return fmt.Sprintf("round coordinator %d died; restarted under %d", e.A, e.B)
	case Inject:
		return "fault injected: " + e.S
	case CarefulAbort:
		return fmt.Sprintf("careful read about cell %d aborted: %s", e.A, e.S)
	case RPCDedup:
		return fmt.Sprintf("%s from cell %d discarded", e.S, e.A)
	case Reboot:
		return fmt.Sprintf("cell %d microboot attempt %d: %s", e.A, e.B, e.S)
	case Rejoin:
		return fmt.Sprintf("cell %d rejoined the live set (coordinator %d)", e.A, e.B)
	default:
		return e.S
	}
}

// String renders one trace line.
func (e Event) String() string {
	if e.Span != 0 {
		return fmt.Sprintf("[%12v] cell%d %-12s span=%-4d %s", e.At, e.Cell, e.Kind, e.Span, e.Detail())
	}
	return fmt.Sprintf("[%12v] cell%d %-12s %s", e.At, e.Cell, e.Kind, e.Detail())
}

// Ring is a fixed-capacity event buffer. The zero value is unusable; use
// NewRing. Not safe for real concurrency — like everything in the
// simulation it runs on the engine's single logical thread.
type Ring struct {
	cap     int
	events  []Event
	next    int
	wrapped bool
	dropped uint64
}

// NewRing returns a ring holding the last n events.
func NewRing(n int) *Ring {
	if n <= 0 {
		n = 256
	}
	return &Ring{cap: n, events: make([]Event, n)}
}

// Record appends an event. It stores typed fields only — no formatting,
// no allocation (see BenchmarkRecord). Once the ring has wrapped, every
// further record overwrites the oldest held event; the overwrite is
// counted so truncation is never silent.
func (r *Ring) Record(e Event) {
	if r.wrapped {
		r.dropped++
	}
	r.events[r.next] = e
	r.next++
	if r.next == r.cap {
		r.next = 0
		r.wrapped = true
	}
}

// Dropped reports how many events have been overwritten since the ring
// filled. The held window always covers [first kept, now]; Dropped says
// how much history before that window is gone.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Len reports how many events are held.
func (r *Ring) Len() int {
	if r.wrapped {
		return r.cap
	}
	return r.next
}

// Events returns the held events oldest-first.
func (r *Ring) Events() []Event {
	if !r.wrapped {
		return append([]Event(nil), r.events[:r.next]...)
	}
	out := make([]Event, 0, r.cap)
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Dump renders the buffer for a post-mortem.
func (r *Ring) Dump() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Set is the machine-wide trace: per-cell rings, the shared sequence
// counter establishing the total order, and the span-id allocator.
//
// In a sharded run (see sim.Cluster) each cell's events are recorded by
// that cell's own shard, so a Set-wide counter would be a data race and —
// worse — its values would depend on worker scheduling. Sharded() switches
// the Set to per-cell sequence and span spaces: each cell's shard touches
// only its own counters and ring, and Merged reconstructs the same Set-wide
// total order from the (At, Cell, Seq) stamp, which is fully determined by
// virtual time plus per-shard dispatch order and therefore bit-identical
// across worker counts.
type Set struct {
	ctl  []*Ring // per cell: control-plane events
	data []*Ring // per cell: data-plane events
	seq  uint64
	span uint64

	sharded  bool
	cellSeq  []uint64 // per cell: Seq space (sharded mode)
	cellSpan []uint64 // per cell: span space (sharded mode)
}

// NewSet builds the trace for `cells` cells with capPerCell events in
// each of a cell's two rings (<=0 selects 4096).
func NewSet(cells, capPerCell int) *Set {
	if cells <= 0 {
		cells = 1
	}
	if capPerCell <= 0 {
		capPerCell = 4096
	}
	s := &Set{}
	for i := 0; i < cells; i++ {
		s.ctl = append(s.ctl, NewRing(capPerCell))
		s.data = append(s.data, NewRing(capPerCell))
	}
	return s
}

// Cells returns the number of per-cell tracks.
func (s *Set) Cells() int { return len(s.ctl) }

// Sharded switches the Set to per-cell sequence and span spaces for a
// sharded run. Must be called before any event is recorded.
func (s *Set) Sharded() {
	if s.seq != 0 || s.span != 0 {
		panic("trace: Sharded() after events were recorded")
	}
	s.sharded = true
	s.cellSeq = make([]uint64, len(s.ctl))
	s.cellSpan = make([]uint64, len(s.ctl))
}

// NextSpan allocates a fresh causal span id from the Set-wide space.
// Sharded runs must allocate through a cell's Tracer instead.
func (s *Set) NextSpan() SpanID {
	if s.sharded {
		panic("trace: Set.NextSpan in sharded mode; use Tracer.NextSpan")
	}
	s.span++
	return SpanID(s.span)
}

// nextSpanFor allocates a span id on behalf of cell's tracer. Sharded
// span ids embed the cell in the high bits so two shards can allocate
// concurrently and still never collide.
func (s *Set) nextSpanFor(cell int) SpanID {
	if !s.sharded {
		s.span++
		return SpanID(s.span)
	}
	if cell < 0 || cell >= len(s.cellSpan) {
		cell = 0
	}
	s.cellSpan[cell]++
	return SpanID(uint64(cell+1)<<40 | s.cellSpan[cell])
}

// Record stamps the event with the next sequence number and stores it in
// the cell's ring. Out-of-range cells clamp to track 0 so a stray
// hardware event can never panic the tracer.
func (s *Set) Record(cell int, e Event) {
	if cell < 0 || cell >= len(s.ctl) {
		cell = 0
	}
	if s.sharded {
		s.cellSeq[cell]++
		e.Seq = s.cellSeq[cell]
	} else {
		s.seq++
		e.Seq = s.seq
	}
	e.Cell = cell
	if e.Kind.control() {
		s.ctl[cell].Record(e)
	} else {
		s.data[cell].Record(e)
	}
}

// DropCount reports one cell's ring truncation: how many control- and
// data-plane events were overwritten before the held window begins.
type DropCount struct {
	Cell    int
	Control uint64
	Data    uint64
}

// Total is the cell's combined overwrite count.
func (d DropCount) Total() uint64 { return d.Control + d.Data }

// Dropped returns the per-cell truncation counters, indexed by cell.
func (s *Set) Dropped() []DropCount {
	out := make([]DropCount, len(s.ctl))
	for i := range s.ctl {
		out[i] = DropCount{Cell: i, Control: s.ctl[i].Dropped(), Data: s.data[i].Dropped()}
	}
	return out
}

// TotalDropped sums the overwrite counts across every cell and ring.
func (s *Set) TotalDropped() uint64 {
	var n uint64
	for i := range s.ctl {
		n += s.ctl[i].Dropped() + s.data[i].Dropped()
	}
	return n
}

// Tracer returns the recording handle for one cell. The nil *Tracer is a
// valid no-op handle, so packages built without a Hive need no guards.
func (s *Set) Tracer(cell int) *Tracer {
	if s == nil {
		return nil
	}
	return &Tracer{set: s, cell: cell}
}

// Merged returns every held event from every cell in one stream, totally
// ordered: by sequence number in a classic run (the engine's dispatch
// order), and by (At, Cell, Seq) in a sharded run. The sharded key is a
// total order — (Cell, Seq) is unique — and every component is fixed by
// virtual time and per-shard dispatch order, so the merged stream is
// bit-identical across worker counts. Per-cell At is nondecreasing in
// record order (window phases, then the global phase at the horizon), so
// within one cell the merge preserves record order exactly.
func (s *Set) Merged() []Event {
	var out []Event
	for i := range s.ctl {
		out = append(out, s.ctl[i].Events()...)
		out = append(out, s.data[i].Events()...)
	}
	if s.sharded {
		sort.SliceStable(out, func(a, b int) bool {
			ea, eb := out[a], out[b]
			if ea.At != eb.At {
				return ea.At < eb.At
			}
			if ea.Cell != eb.Cell {
				return ea.Cell < eb.Cell
			}
			return ea.Seq < eb.Seq
		})
		return out
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Filter returns the merged events of one kind.
func (s *Set) Filter(k Kind) []Event {
	var out []Event
	for _, e := range s.Merged() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders the merged stream for a post-mortem.
func (s *Set) Dump() string {
	var b strings.Builder
	for _, e := range s.Merged() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Tail returns the last n merged events (all of them when n <= 0 or the
// stream is shorter).
func (s *Set) Tail(n int) []Event {
	all := s.Merged()
	if n <= 0 || n >= len(all) {
		return all
	}
	return all[len(all)-n:]
}

// Tracer is one cell's recording handle. All methods are safe on a nil
// receiver (they no-op), so instrumented packages work unchanged when
// constructed without a trace Set (unit tests, micro-harnesses).
type Tracer struct {
	set  *Set
	cell int
}

// Enabled reports whether events are actually recorded.
func (tr *Tracer) Enabled() bool { return tr != nil && tr.set != nil }

// Cell returns the track this handle records to.
func (tr *Tracer) Cell() int {
	if tr == nil {
		return -1
	}
	return tr.cell
}

// NextSpan allocates a span id (0 when disabled).
func (tr *Tracer) NextSpan() SpanID {
	if !tr.Enabled() {
		return 0
	}
	return tr.set.nextSpanFor(tr.cell)
}

// Emit records a span-less event.
func (tr *Tracer) Emit(at sim.Time, k Kind, a, b int64, s string) {
	if !tr.Enabled() {
		return
	}
	tr.set.Record(tr.cell, Event{At: at, Kind: k, A: a, B: b, S: s})
}

// EmitSpan records an event belonging to an existing span.
func (tr *Tracer) EmitSpan(at sim.Time, k Kind, span SpanID, a, b int64, s string) {
	if !tr.Enabled() {
		return
	}
	tr.set.Record(tr.cell, Event{At: at, Kind: k, Span: span, A: a, B: b, S: s})
}

// Begin opens a named span (PhaseBegin) and returns its id.
func (tr *Tracer) Begin(at sim.Time, name string) SpanID {
	if !tr.Enabled() {
		return 0
	}
	span := tr.set.nextSpanFor(tr.cell)
	tr.set.Record(tr.cell, Event{At: at, Kind: PhaseBegin, Span: span, S: name})
	return span
}

// End closes a named span (PhaseEnd); a carries an optional count.
func (tr *Tracer) End(at sim.Time, span SpanID, name string, a int64) {
	if !tr.Enabled() {
		return
	}
	tr.set.Record(tr.cell, Event{At: at, Kind: PhaseEnd, Span: span, S: name, A: a})
}
