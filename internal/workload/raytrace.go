package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/sim"
)

// RaytraceConfig parameterizes the SPLASH-2 raytrace generator: a parent
// builds the scene (a teapot) in anonymous memory, then forks one worker
// per CPU across the cells. Workers reach the read-shared scene through
// the distributed copy-on-write tree — the cross-cell traversal that the
// §7.4 "corrupt pointer in copy-on-write tree" and "node failure during
// copy-on-write search" injections target.
type RaytraceConfig struct {
	Workers    int      // one per CPU
	ScenePages int      // read-shared scene size
	Tiles      int      // work units per worker
	TileCPU    sim.Time // compute per tile
	TileReads  int      // scene pages consulted per tile
	Scratch    int      // tiles between fresh scratch-page allocations
	MainCell   int      // cell hosting the parent (scene data home)
	Seed       uint64
	// ForkHook fires from the parent's task as each worker forks (an
	// injection trigger). The task lets injection code hop to the global
	// phase (Engine.Global) in sharded runs.
	ForkHook func(t *sim.Task, worker int)
}

// DefaultRaytrace returns the calibrated configuration (IRIX ≈4.35 s).
func DefaultRaytrace() RaytraceConfig {
	return RaytraceConfig{
		Workers:    4,
		ScenePages: 500,
		Tiles:      64,
		TileCPU:    67 * sim.Millisecond,
		TileReads:  24,
		Scratch:    16,
		Seed:       0x7EA9,
	}
}

// RunRaytrace executes the workload and blocks until completion or maxTime.
func RunRaytrace(h *core.Hive, cfg RaytraceConfig, maxTime sim.Time) *Result {
	res := &Result{Name: "raytrace", Cells: len(h.Cells)}
	h0, m0, i0 := snapshotFaults(h)
	start := h.Now()
	res.Started = start

	// One completion slot per worker: each is written only by its own
	// worker's shard (a shared counter would be a cross-shard write-write
	// race when recovery kills several workers in the same window), and
	// only read from the driver loop between windows.
	finished := make([]int, cfg.Workers)
	doneCount := func() int {
		n := 0
		for _, f := range finished {
			n += f
		}
		return n
	}
	parentDone := false
	main := cfg.MainCell % len(h.Cells)
	var mainProc *proc.Process
	mainProc = h.Cells[main].Procs.Spawn("rt.main", 300, func(p *proc.Process, t *sim.Task) {
		// Build the scene in the parent's anonymous memory (pre-fork,
		// so every child sees it through the COW tree).
		for off := 0; off < cfg.ScenePages; off++ {
			if err := p.TouchAnon(t, int64(off), true); err != nil {
				res.AddError("scene build: %v", err)
				return
			}
		}

		worker := func(w int) proc.Body {
			return func(wp *proc.Process, wt *sim.Task) {
				defer func() { finished[w] = 1 }()
				for tile := 0; tile < cfg.Tiles; tile++ {
					wp.Compute(wt, cfg.TileCPU)
					// Consult the scene: COW-tree lookups that
					// cross back to the parent's cell.
					base := (w*cfg.Tiles + tile) * cfg.TileReads
					for r := 0; r < cfg.TileReads; r++ {
						off := int64((base + r) % cfg.ScenePages)
						if err := wp.TouchAnon(wt, off, false); err != nil {
							return
						}
					}
					// Private scratch: mostly reuse, with a fresh
					// page every Scratch tiles (heap growth) —
					// the infrequent cold lookups that traverse
					// past the scene root in the COW tree.
					off := int64(cfg.ScenePages + tile/cfg.Scratch)
					if err := wp.TouchAnon(wt, off, true); err != nil {
						return
					}
				}
			}
		}

		pids := make(map[int]int)
		cellOf := make(map[int]int)
		for w := 0; w < cfg.Workers; w++ {
			if cfg.ForkHook != nil {
				cfg.ForkHook(t, w)
			}
			target := w % len(h.Cells)
			for i := 0; i < len(h.Cells) && h.Cells[target].Failed(); i++ {
				target = (target + 1) % len(h.Cells)
			}
			pid, err := h.Cells[main].Procs.Fork(t, p, target, fmt.Sprintf("rt%d", w), worker(w))
			if err != nil {
				res.AddError("fork worker %d: %v", w, err)
				continue
			}
			pids[w] = pid
			cellOf[w] = target
		}
		// Wait for every worker, local and remote (make-style polling
		// for the remote ones, which Wait cannot reach).
		for len(pids) > 0 {
			if h.Cells[main].Failed() {
				return
			}
			// Poll in worker order, not map order (see pmake).
			for w := 0; w < cfg.Workers; w++ {
				pid, ok := pids[w]
				if !ok {
					continue
				}
				if _, alive := h.Cells[cellOf[w]].Procs.Get(pid); !alive {
					delete(pids, w)
				}
			}
			if len(pids) > 0 {
				t.Sleep(5 * sim.Millisecond)
			}
		}
		parentDone = true
	})

	deadline := h.Now() + maxTime
	h.RunUntil(func() bool {
		// Completed, or aborted (the parent was killed by recovery as
		// a dependent of a failed cell).
		return (parentDone && doneCount() == cfg.Workers) || mainProc.Exited()
	}, deadline)
	res.Done = parentDone && doneCount() == cfg.Workers
	res.Elapsed = h.Now() - start
	res.finishStats(h, h0, m0, i0)
	return res
}
