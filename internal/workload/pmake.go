package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/vm"
)

// PmakeConfig parameterizes the parallel-make generator. Defaults are
// calibrated so that on the paper's 4-CPU machine IRIX completes in
// ≈5.77 s and the per-job kernel-interaction profile matches §5.2
// (≈810 page-cache faults per compile, ≈55 % remote on four cells).
type PmakeConfig struct {
	Files    int // compilation units (11 files of GnuChess 3.1)
	Parallel int // concurrent jobs (make -j4)

	CompileCPU   sim.Time // pure user-mode compute per job
	Chunks       int      // compute is split into this many bursts
	SharedPages  int      // compiler text + headers faulted per job (first-touch)
	AnonPages    int      // private anonymous pages touched per job
	HdrOpens     int      // header/source opens per job
	SrcPages     int      // source pages read per job
	OutPages     int      // object-file pages written per job
	TmpMapPages  int      // /tmp temp-file pages write-mapped per job (§4.2)
	Tag          string   // file-name namespace ("chess" by default)
	NamespaceOps int      // stat-like probes on the shared tree per job (-I search)

	Seed uint64
	// InjectHook, when set, is called from the job's own task as each job
	// starts (the §7.4 "during process creation" trigger point). The task
	// lets injection code hop to the global phase (Engine.Global) in
	// sharded runs.
	InjectHook func(t *sim.Task, job int)
}

// DefaultPmake returns the calibrated configuration.
func DefaultPmake() PmakeConfig {
	return PmakeConfig{
		Files:        11,
		Parallel:     4,
		CompileCPU:   1680 * sim.Millisecond,
		Chunks:       16,
		SharedPages:  590,
		AnonPages:    222,
		HdrOpens:     12,
		SrcPages:     90,
		OutPages:     50,
		TmpMapPages:  12,
		NamespaceOps: 2600,
		Tag:          "chess",
		Seed:         0x9A4E,
	}
}

// RunPmake executes the parallel make on the hive and blocks (in simulated
// time) until it completes or maxTime passes.
func RunPmake(h *core.Hive, cfg PmakeConfig, maxTime sim.Time) *Result {
	if cfg.Tag == "" {
		cfg.Tag = "chess"
	}
	res := &Result{Name: "pmake", Cells: len(h.Cells)}
	h0, m0, i0 := snapshotFaults(h)

	cells := len(h.Cells)
	srcHome := mountHome(h, "/usr") // the shared source tree's cell
	drv := driverCell(h)            // make driver: lowest live cell

	// Build the shared tree: sources, headers, compiler text. Warm the
	// data home's cache (the paper warms the file cache before runs).
	setupDone := false
	h.Cells[srcHome].Procs.Spawn("pmake.setup", 100, func(p *proc.Process, t *sim.Task) {
		fsys := h.Cells[srcHome].FS
		mk := func(path string, pages int) bool {
			hd, err := fsys.Create(t, path)
			if err != nil {
				res.AddError("setup create %s: %v", path, err)
				return false
			}
			if err := fsys.Write(t, hd, pages, cfg.Seed); err != nil {
				res.AddError("setup write %s: %v", path, err)
				return false
			}
			fsys.Close(t, hd)
			return true
		}
		for i := 0; i < cfg.Files; i++ {
			if !mk(fmt.Sprintf("/usr/src/%s%d.c", cfg.Tag, i), cfg.SrcPages) {
				return
			}
		}
		for j := 0; j < cfg.HdrOpens; j++ {
			if !mk(fmt.Sprintf("/usr/include/h%d.h", j), 2) {
				return
			}
		}
		if !mk("/usr/bin/cc", cfg.SharedPages) {
			return
		}
		setupDone = true
	})
	if !h.RunUntil(func() bool { return setupDone }, h.Now()+20*sim.Second) {
		res.AddError("setup never finished")
		return res
	}

	// The make coordinator runs on the driver cell (the lowest live cell,
	// cell 0 on a healthy hive) and keeps Parallel jobs in flight,
	// spreading them round-robin across cells (the single-system image's
	// load balancing).
	ccKey := mustKey(h, srcHome, "/usr/bin/cc")
	start := h.Now()
	res.Started = start
	jobsDone := 0
	coordinatorDone := false

	jobBody := func(job int) proc.Body {
		return func(p *proc.Process, t *sim.Task) {
			if cfg.InjectHook != nil {
				cfg.InjectHook(t, job)
			}
			cell := h.Cells[p.Cell]
			pt := cell.Procs
			pt.Exec(t, p)

			// Header search and dependency checks: stat probes over the
			// shared source tree and the /tmp target directory (make
			// re-stats targets), the namespace traffic that dominates
			// compilation's kernel time.
			for s := 0; s < cfg.NamespaceOps; s++ {
				path := fmt.Sprintf("/usr/include/h%d.h", s%cfg.HdrOpens)
				switch s % 3 {
				case 1:
					path = fmt.Sprintf("/tmp/%s%d.o", cfg.Tag, s%cfg.Files) // target check
				case 2:
					path = fmt.Sprintf("/tmp/cc%d.s", s) // temp-file probe
				}
				if _, err := cell.FS.Stat(t, path); err != nil {
					return // server cell died mid-run
				}
			}

			// Open and read the source and headers.
			src, err := cell.FS.Open(t, fmt.Sprintf("/usr/src/%s%d.c", cfg.Tag, job))
			if err != nil {
				return
			}
			if _, err := cell.FS.Read(t, src, cfg.SrcPages); err != nil {
				return
			}
			for jj := 0; jj < cfg.HdrOpens; jj++ {
				hd, err := cell.FS.Open(t, fmt.Sprintf("/usr/include/h%d.h", jj))
				if err != nil {
					return
				}
				cell.FS.Close(t, hd)
			}

			// Write-map a temp file on the /tmp server for compiler
			// intermediates: these mappings are what opens the
			// firewall and produces the §4.2 remotely-writable page
			// population (avg ≈15/cell, max on the /tmp server).
			tmpF, err := cell.FS.Create(t, fmt.Sprintf("/tmp/%scc%d.tmp", cfg.Tag, job))
			if err != nil {
				return
			}
			for off := int64(0); off < int64(cfg.TmpMapPages); off++ {
				lp := vm.LogicalPage{Obj: vm.ObjID{Kind: vm.FileObj,
					Home: tmpF.Key.Home, Num: uint64(tmpF.Key.ID)}, Off: off}
				pf, err := p.MapShared(t, lp, true)
				if err != nil {
					return
				}
				cell.EP.M.WritePage(t, cell.Sched.Procs[0], pf.Frame, uint64(job)<<32|uint64(off))
			}

			// Compile: compute interleaved with first-touch faults on
			// the compiler text (shared, homed on cell 0) and private
			// anonymous pages.
			perChunkShared := cfg.SharedPages / cfg.Chunks
			perChunkAnon := cfg.AnonPages / cfg.Chunks
			var refs []*vm.Pfdat
			for ch := 0; ch < cfg.Chunks; ch++ {
				p.Compute(t, cfg.CompileCPU/sim.Time(cfg.Chunks))
				for k := 0; k < perChunkShared; k++ {
					off := int64(ch*perChunkShared + k)
					lp := vm.LogicalPage{Obj: vm.ObjID{Kind: vm.FileObj, Home: srcHome, Num: uint64(ccKey)}, Off: off}
					pf, err := cell.VM.Fault(t, lp, false)
					if err != nil {
						return
					}
					refs = append(refs, pf)
				}
				for k := 0; k < perChunkAnon; k++ {
					if err := p.TouchAnon(t, int64(ch*perChunkAnon+k), true); err != nil {
						return
					}
				}
			}

			// Write the object file to /tmp (the file-server cell).
			out, err := cell.FS.Create(t, fmt.Sprintf("/tmp/%s%d.o", cfg.Tag, job))
			if err != nil {
				return
			}
			if err := cell.FS.Write(t, out, cfg.OutPages, cfg.Seed+uint64(job)); err != nil {
				return
			}
			p.DependOn(out.Key.Home) // dirty data at the server
			cell.FS.Close(t, out)
			for _, pf := range refs {
				cell.VM.Unref(t, pf)
			}
		}
	}

	var makeProc *proc.Process
	makeProc = h.Cells[drv].Procs.Spawn("make", 101, func(p *proc.Process, t *sim.Task) {
		inFlight := 0
		next := 0
		pids := map[int]int{} // job -> pid (on job's cell)
		cellOf := map[int]int{}
		launch := func(job int) {
			// Place the job on the next live cell (the single-system
			// image does not schedule onto failed cells).
			target := job % cells
			for i := 0; i < cells && h.Cells[target].Failed(); i++ {
				target = (target + 1) % cells
			}
			pid, err := h.Cells[drv].Procs.Fork(t, p, target, fmt.Sprintf("cc%d", job), jobBody(job))
			if err != nil {
				res.AddError("fork job %d: %v", job, err)
				return
			}
			pids[job] = pid
			cellOf[job] = target
			inFlight++
		}
		for next < cfg.Files || inFlight > 0 {
			for inFlight < cfg.Parallel && next < cfg.Files {
				launch(next)
				next++
			}
			// Wait for any job to finish (poll at make's granularity).
			// Jobs are scanned in launch order, not map order: Get()
			// touches the scheduler, so the poll sequence is part of
			// the simulation's event order.
			t.Sleep(5 * sim.Millisecond)
			for job := 0; job < next; job++ {
				pid, ok := pids[job]
				if !ok {
					continue
				}
				tbl := h.Cells[cellOf[job]].Procs
				if tbl == nil {
					continue
				}
				if _, alive := tbl.Get(pid); !alive {
					delete(pids, job)
					inFlight--
					jobsDone++
				}
			}
			if h.Cells[drv].Failed() {
				return
			}
		}
		coordinatorDone = true
	})

	deadline := h.Now() + maxTime
	// The coordinator may be killed by recovery if a cell it forked to
	// fails — pmake used that cell's resources, so it is a legitimate
	// casualty (§2). The run ends either way.
	h.RunUntil(func() bool { return coordinatorDone || makeProc.Exited() }, deadline)
	res.Done = coordinatorDone
	if !coordinatorDone && makeProc.Exited() {
		res.AddError("make coordinator killed (depended on a failed cell)")
	}
	res.Elapsed = h.Now() - start
	for i := 0; i < cfg.Files; i++ {
		res.Outputs = append(res.Outputs, OutputFile{
			Path:  fmt.Sprintf("/tmp/%s%d.o", cfg.Tag, i),
			Pages: cfg.OutPages,
			Seed:  cfg.Seed + uint64(i),
			Home:  tmpHome(h),
		})
	}
	res.finishStats(h, h0, m0, i0)
	return res
}

// tmpHome returns the cell serving /tmp.
func tmpHome(h *core.Hive) int { return mountHome(h, "/tmp") }

// mountHome returns the cell serving a mount prefix (cell 0 by default).
func mountHome(h *core.Hive, prefix string) int {
	for _, m := range h.Cfg.Mounts {
		if m.Prefix == prefix {
			return m.Cell
		}
	}
	return 0
}

// driverCell returns the lowest live cell — where workload drivers run.
// On a healthy hive this is cell 0; post-fault checks must not drive from
// a dead cell.
func driverCell(h *core.Hive) int {
	for _, c := range h.Cells {
		if !c.Failed() {
			return c.ID
		}
	}
	return 0
}

// mustKey resolves a path to its file ID at the data home (setup helper).
func mustKey(h *core.Hive, home int, path string) uint64 {
	var id uint64
	done := false
	h.Cells[home].Procs.Spawn("resolve", 102, func(p *proc.Process, t *sim.Task) {
		hd, err := h.Cells[home].FS.Open(t, path)
		if err == nil {
			id = uint64(hd.Key.ID)
		}
		done = true
	})
	h.RunUntil(func() bool { return done }, h.Now()+sim.Second)
	return id
}
