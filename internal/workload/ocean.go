package workload

import (
	"repro/internal/core"
	"repro/internal/cow"
	"repro/internal/kmem"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/vm"
)

// OceanConfig parameterizes the SPLASH-2 ocean generator: a spanning
// parallel application (one thread per CPU) whose threads write-share the
// data segment. Each thread owns a grid partition placed in its cell's
// memory; every thread maps every partition writable, which is what makes
// ≈550 pages per cell remotely writable in the §4.2 firewall study.
type OceanConfig struct {
	Threads    int      // one per CPU (4)
	GridPages  int      // total data segment pages (130×130 grid + arrays)
	Iterations int      // outer time steps
	StepCPU    sim.Time // compute per thread per step
	Boundary   int      // neighbour-partition pages written per step
	InitPages  int      // input file pages read during initialization
	Seed       uint64
}

// DefaultOcean returns the calibrated configuration (IRIX ≈6.07 s).
func DefaultOcean() OceanConfig {
	return OceanConfig{
		Threads:    4,
		GridPages:  2200,
		Iterations: 30,
		StepCPU:    201 * sim.Millisecond,
		Boundary:   32,
		InitPages:  64,
		Seed:       0x0CEA,
	}
}

// RunOcean executes the workload and blocks until completion or maxTime.
func RunOcean(h *core.Hive, cfg OceanConfig, maxTime sim.Time) *Result {
	res := &Result{Name: "ocean", Cells: len(h.Cells)}
	h0, m0, i0 := snapshotFaults(h)

	// Input file on cell 0, cache warmed by setup.
	setupDone := false
	h.Cells[0].Procs.Spawn("ocean.setup", 200, func(p *proc.Process, t *sim.Task) {
		hd, err := h.Cells[0].FS.Create(t, "/data/ocean.in")
		if err != nil {
			res.AddError("setup create: %v", err)
		} else {
			if werr := h.Cells[0].FS.Write(t, hd, cfg.InitPages, cfg.Seed); werr != nil {
				res.AddError("setup write: %v", werr)
			}
			h.Cells[0].FS.Close(t, hd)
		}
		setupDone = true
	})
	if !h.RunUntil(func() bool { return setupDone }, h.Now()+20*sim.Second) {
		res.AddError("setup never finished")
		return res
	}

	// One thread per CPU, spread over the cells (a spanning task).
	var tables []*proc.Table
	for i := 0; i < cfg.Threads; i++ {
		tables = append(tables, h.Cells[i%len(h.Cells)].Procs)
	}
	part := cfg.GridPages / cfg.Threads
	leaves := make([]kmem.Addr, cfg.Threads)
	ready := sim.NewBarrier(cfg.Threads)
	stepBar := sim.NewBarrier(cfg.Threads)
	// One completion slot per thread: each is written only by its own
	// thread's shard (a shared counter would be a cross-shard write-write
	// race when recovery kills several threads in the same window), and
	// only read from the driver loop between windows.
	finished := make([]int, cfg.Threads)
	doneCount := func() int {
		n := 0
		for _, f := range finished {
			n += f
		}
		return n
	}

	start := h.Now()
	res.Started = start
	launched := false
	h.Cells[0].Procs.Spawn("ocean.main", 201, func(p *proc.Process, t *sim.Task) {
		_, err := h.Cells[0].Procs.SpawnSpanning(t, "ocean", 202, tables,
			func(tp *proc.Process, tt *sim.Task) {
				defer func() { finished[tp.ThreadIndex()] = 1 }()
				idx := tp.ThreadIndex()
				cell := h.Cells[tp.Cell]

				// Initialization: thread 0 reads the input file.
				if idx == 0 {
					hd, err := cell.FS.Open(tt, "/data/ocean.in")
					if err == nil {
						// The warm-up read is advisory: if the input home
						// died mid-campaign the grid simply starts cold, so
						// a failure is counted rather than fatal.
						if _, rerr := cell.FS.Read(tt, hd, cfg.InitPages); rerr != nil {
							cell.Metrics.Counter("workload.ocean_input_read_errors").Inc()
						}
						cell.FS.Close(tt, hd)
					}
				}

				// Allocate this thread's partition locally.
				for off := 0; off < part; off++ {
					if err := tp.TouchAnon(tt, int64(off), true); err != nil {
						return
					}
				}
				leaves[idx] = tp.Leaf
				ready.Await(tt)

				// Map every partition writable (the write-shared
				// data segment: SVR4 maps the whole segment rw).
				for other := 0; other < cfg.Threads; other++ {
					if other == idx {
						continue
					}
					for off := 0; off < part; off++ {
						lp := cow.LP(leaves[other], int64(off))
						if _, err := tp.MapShared(tt, lp, true); err != nil {
							return
						}
					}
				}

				// Time steps: compute, write own partition and
				// neighbours' boundary pages, barrier.
				for it := 0; it < cfg.Iterations; it++ {
					tp.Compute(tt, cfg.StepCPU)
					for b := 0; b < cfg.Boundary; b++ {
						nb := (idx + 1) % cfg.Threads
						lp := cow.LP(leaves[nb], int64(b%part))
						pf, err := tp.MapShared(tt, lp, true)
						if err != nil {
							return
						}
						cell.EP.M.WritePage(tt, cell.Sched.Procs[0], pf.Frame,
							uint64(idx)<<32|uint64(it))
					}
					stepBar.Await(tt)
				}
			})
		if err != nil {
			res.AddError("spanning: %v", err)
		}
		launched = true
	})

	deadline := h.Now() + maxTime
	h.RunUntil(func() bool { return launched && doneCount() == cfg.Threads }, deadline)
	res.Done = doneCount() == cfg.Threads
	res.Elapsed = h.Now() - start
	res.finishStats(h, h0, m0, i0)
	return res
}

// OceanRemotelyWritablePages samples the §4.2 metric across cells.
func OceanRemotelyWritablePages(h *core.Hive) (perCell []int) {
	for _, c := range h.Cells {
		perCell = append(perCell, c.VM.RemotelyWritablePages())
	}
	return
}

// oceanLP is exported for tests needing a partition page id.
func oceanLP(leaf kmem.Addr, off int64) vm.LogicalPage { return cow.LP(leaf, off) }
