package workload

import (
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// hiveDigest fingerprints everything a run's determinism gate cares about:
// the final virtual time, the merged forensic trace (full total order), the
// workload result, and the per-cell failure states.
func hiveDigest(h *core.Hive, res *Result) uint64 {
	d := fnv.New64a()
	fmt.Fprintf(d, "now=%d\n", h.Now())
	for _, ev := range h.Trace.Merged() {
		fmt.Fprintf(d, "ev=%d|%d|%d|%d|%d|%d|%d|%s\n",
			ev.At, ev.Cell, ev.Seq, ev.Kind, ev.Span, ev.A, ev.B, ev.S)
	}
	if res != nil {
		fmt.Fprintf(d, "wl=%v|%d|%d|%d|%d|%v\n",
			res.Done, res.Elapsed, res.FaultHits, res.FaultMisses, res.RemoteFaults, res.Errors)
		for _, out := range res.Outputs {
			fmt.Fprintf(d, "out=%s|%d|%d\n", out.Path, out.Home, out.Pages)
		}
	}
	for _, c := range h.Cells {
		fmt.Fprintf(d, "cell=%d|%v\n", c.ID, c.Failed())
	}
	return d.Sum64()
}

// runShardedPmake boots a Hive at the given cell count and worker count and
// runs a small pmake to completion.
func runShardedPmake(t *testing.T, cells, shards int) uint64 {
	t.Helper()
	h := BootHiveWith(cells, 4242, func(cfg *core.Config) {
		cfg.Shards = shards
	})
	cfg := DefaultPmake()
	cfg.Files = 4
	cfg.Parallel = 2
	cfg.CompileCPU = 30 * sim.Millisecond
	cfg.NamespaceOps = 40
	cfg.SharedPages = 16
	cfg.AnonPages = 8
	cfg.SrcPages = 4
	cfg.OutPages = 2
	res := RunPmake(h, cfg, 60*sim.Second)
	if !res.Done {
		t.Fatalf("pmake did not finish at cells=%d shards=%d: errs=%v", cells, shards, res.Errors)
	}
	return hiveDigest(h, res)
}

// TestShardedIdentity is the stack-level determinism gate: a full Hive boot
// plus pmake must produce a byte-identical trace, workload result, and
// failure state at every worker count — the sharded engine's merge order is
// fixed by (virtual time, shard, sequence) stamps, never by OS scheduling.
func TestShardedIdentity(t *testing.T) {
	for _, cells := range []int{4, 16} {
		ref := runShardedPmake(t, cells, 1)
		for _, shards := range []int{2, 4} {
			if got := runShardedPmake(t, cells, shards); got != ref {
				t.Errorf("cells=%d: digest at %d workers = %x, want %x (1 worker)",
					cells, shards, got, ref)
			}
		}
	}
}

// TestShardedIdentity32 extends the gate to the 32-cell machine with a
// boot-plus-idle run (the full pmake at 32 cells belongs to the bench
// suite, not the unit gate).
func TestShardedIdentity32(t *testing.T) {
	if testing.Short() {
		t.Skip("32-cell identity gate skipped in -short")
	}
	run := func(shards int) uint64 {
		h := BootHiveWith(32, 4242, func(cfg *core.Config) {
			cfg.Shards = shards
		})
		h.Run(2 * sim.Second)
		return hiveDigest(h, nil)
	}
	ref := run(1)
	for _, shards := range []int{2, 4} {
		if got := run(shards); got != ref {
			t.Errorf("32 cells: digest at %d workers = %x, want %x (1 worker)", shards, got, ref)
		}
	}
}

// TestShardedFailureIdentity exercises the fault path under sharding: a
// cell's hardware death, detection, and recovery must land identically at
// every worker count.
func TestShardedFailureIdentity(t *testing.T) {
	run := func(shards int) uint64 {
		h := BootHiveWith(4, 99, func(cfg *core.Config) {
			cfg.Shards = shards
		})
		h.Eng.At(100*sim.Millisecond, func() { h.Cells[1].FailHardware() })
		if !h.RunUntil(func() bool {
			return h.Coord.LiveCount() == 3 && h.Coord.RecoveryIdle()
		}, 5*sim.Second) {
			t.Fatalf("recovery did not converge at shards=%d", shards)
		}
		h.Run(h.Now() + 200*sim.Millisecond)
		return hiveDigest(h, nil)
	}
	ref := run(1)
	for _, shards := range []int{2, 4} {
		if got := run(shards); got != ref {
			t.Errorf("failure digest at %d workers = %x, want %x (1 worker)", shards, got, ref)
		}
	}
}
