package workload

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// testFrontendConfig is a scaled-down frontend for the unit gates: same
// shape as the default (skew, burst, shared+anon pages), ~300 jobs.
func testFrontendConfig() FrontendConfig {
	cfg := DefaultFrontend()
	cfg.Users = 10_000
	cfg.Tenants = 16
	cfg.RatePerSec = 300
	cfg.Duration = 1 * sim.Second
	cfg.BurstAt = 300 * sim.Millisecond
	cfg.BurstLen = 300 * sim.Millisecond
	cfg.JobSharedPages = 2
	cfg.JobAnonPages = 4
	return cfg
}

// feDigest extends the hive digest with the SLO-level result, so the
// identity gate covers the frontend's own accounting, not just the trace.
func feDigest(h *core.Hive, res *Result, fe *FrontendResult) string {
	return fmt.Sprintf("%x|%+v", hiveDigest(h, res), *fe)
}

// runShardedFrontend boots a hive at the given shard count and runs the
// scaled-down frontend to completion.
func runShardedFrontend(t *testing.T, cells, shards int) string {
	t.Helper()
	h := BootHiveWith(cells, 5151, func(cfg *core.Config) {
		cfg.Shards = shards
	})
	res, fe := RunFrontend(h, testFrontendConfig(), 60*sim.Second)
	if !res.Done {
		t.Fatalf("frontend did not finish at cells=%d shards=%d: errs=%v", cells, shards, res.Errors)
	}
	if fe.Completed == 0 {
		t.Fatalf("frontend completed no jobs at cells=%d shards=%d", cells, shards)
	}
	if fe.Lost != 0 || fe.ForkErrs != 0 {
		t.Fatalf("healthy frontend lost work at cells=%d shards=%d: %+v", cells, shards, *fe)
	}
	return feDigest(h, res, fe)
}

// TestFrontendShardedIdentity is the frontend's stack-level determinism
// gate: trace, workload result, and every SLO metric must be identical at
// any worker count — arrivals come from per-generator seeded RNGs in
// virtual time, so shard scheduling cannot perturb them.
func TestFrontendShardedIdentity(t *testing.T) {
	ref := runShardedFrontend(t, 4, 1)
	for _, shards := range []int{2, 4} {
		if got := runShardedFrontend(t, 4, shards); got != ref {
			t.Errorf("digest at %d workers differs from serial reference", shards)
		}
	}
}

// TestFrontendArrivalDeterminism checks the open-loop generator itself:
// the same seed must reproduce the identical arrival stream (offered,
// issued, per-tenant mix) run to run, and a different seed must not.
func TestFrontendArrivalDeterminism(t *testing.T) {
	run := func(seed uint64) *FrontendResult {
		h := BootHive(4)
		cfg := testFrontendConfig()
		cfg.Seed = seed
		res, fe := RunFrontend(h, cfg, 60*sim.Second)
		if !res.Done {
			t.Fatalf("frontend did not finish: errs=%v", res.Errors)
		}
		return fe
	}
	a, b := run(0xF12E), run(0xF12E)
	if fmt.Sprintf("%+v", *a) != fmt.Sprintf("%+v", *b) {
		t.Errorf("same seed produced different results:\n%+v\n%+v", *a, *b)
	}
	c := run(0xBEEF)
	if a.Offered == c.Offered && fmt.Sprintf("%v", a.TenantIssued) == fmt.Sprintf("%v", c.TenantIssued) {
		t.Errorf("different seeds produced the identical arrival stream")
	}
}

// TestFrontendZipfTenantMix checks the skew generator: with s=1.2 the
// head tenant must dominate the tail, and the per-tenant counts must
// account for every issued job.
func TestFrontendZipfTenantMix(t *testing.T) {
	h := BootHive(4)
	cfg := testFrontendConfig()
	res, fe := RunFrontend(h, cfg, 60*sim.Second)
	if !res.Done {
		t.Fatalf("frontend did not finish: errs=%v", res.Errors)
	}
	var sum, tail int64
	for k, n := range fe.TenantIssued {
		sum += n
		if k >= cfg.Tenants/2 {
			tail += n
		}
	}
	if sum != int64(fe.Issued) {
		t.Errorf("tenant mix does not account for issued jobs: sum=%d issued=%d", sum, fe.Issued)
	}
	head := fe.TenantIssued[0]
	if head <= tail/4 {
		t.Errorf("Zipf head tenant not dominant: head=%d tail-half=%d", head, tail)
	}
	if head <= fe.TenantIssued[cfg.Tenants-1] {
		t.Errorf("Zipf mix not skewed: tenant0=%d tenant%d=%d",
			head, cfg.Tenants-1, fe.TenantIssued[cfg.Tenants-1])
	}
	if fe.Good == 0 || fe.Good > fe.Completed {
		t.Errorf("goodput accounting broken: good=%d completed=%d", fe.Good, fe.Completed)
	}
	if fe.Latency.N != int64(fe.Completed) {
		t.Errorf("latency histogram holds %d samples, want %d", fe.Latency.N, fe.Completed)
	}
	if fe.Latency.P50 <= 0 || fe.Latency.P999 < fe.Latency.P99 || fe.Latency.P99 < fe.Latency.P50 {
		t.Errorf("latency quantiles not monotone: %+v", fe.Latency)
	}
}
