package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cow"
	"repro/internal/kmem"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// FrontendConfig parameterizes the multi-tenant compute-server frontend:
// an open-loop client population (10⁵–10⁶ simulated users) issuing short
// jobs at a Poisson rate in virtual time, skewed across tenants by a Zipf
// mix and ramped through a configurable burst window. Arrivals are open
// loop — clients do not wait for earlier requests before issuing new ones
// — so queueing delay shows up as latency, not as a reduced offered rate,
// which is what makes the SLO tail meaningful under overload and faults.
type FrontendConfig struct {
	Users   int     // simulated user population (job attribution only)
	Tenants int     // tenant count; each tenant has a home cell and shared state
	ZipfS   float64 // Zipf skew exponent (>1); <=1 or 1 tenant = uniform mix

	RatePerSec int      // aggregate offered arrival rate, jobs per virtual second
	Duration   sim.Time // arrival window length

	BurstAt     sim.Time // burst window start (offset from run start; 0 = none)
	BurstLen    sim.Time // burst window length
	BurstFactor float64  // arrival-rate multiplier inside the window

	JobCPU         sim.Time // per-job compute
	JobSharedPages int      // tenant-state pages mapped per job
	JobAnonPages   int      // private anonymous pages touched per job

	SLOTarget   sim.Time // latency target; completions within it count as goodput
	MaxInFlight int      // per-dispatcher admission cap; arrivals beyond it shed
	SpanSample  int      // trace one per-tenant span every N issued jobs (0 = off)

	Seed uint64
}

// DefaultFrontend returns the calibrated configuration: half a million
// users across 64 tenants, ~2.6k jobs over a 3 s window with a 2.5×
// mid-run burst — heavy enough to make Wax's balancing measurable, light
// enough that one run stays inside a campaign trial's time budget.
func DefaultFrontend() FrontendConfig {
	return FrontendConfig{
		Users:          500_000,
		Tenants:        64,
		ZipfS:          1.2,
		RatePerSec:     700,
		Duration:       3 * sim.Second,
		BurstAt:        1 * sim.Second,
		BurstLen:       800 * sim.Millisecond,
		BurstFactor:    2.5,
		JobCPU:         300 * sim.Microsecond,
		JobSharedPages: 4,
		JobAnonPages:   8,
		SLOTarget:      20 * sim.Millisecond,
		MaxInFlight:    96,
		SpanSample:     64,
		Seed:           0xF12E,
	}
}

// FrontendResult is the SLO-level outcome of one frontend run. All values
// derive from virtual time and per-shard seeded RNGs, so they are
// byte-identical across -j and -shards.
type FrontendResult struct {
	Offered  int // arrivals generated (open loop, includes shed)
	Issued   int // jobs actually forked
	Shed     int // arrivals dropped by the admission cap
	ForkErrs int // dispatch failures (no live target / fork error)

	Completed int // jobs that ran to completion
	Lost      int // issued but never completed (killed with their cell)
	Good      int // completed within SLOTarget
	Redirects int // jobs routed off their tenant's home cell

	// SharedSkips counts completions that ran without their tenant's
	// shared state because its home cell (or holder process) was dead —
	// degraded service rather than an error.
	SharedSkips int

	// Latency is the merged job-latency distribution in virtual
	// microseconds (arrival to completion, queueing included).
	Latency stats.HistSnapshot

	// Availability under fault: a dispatch is degraded while any cell is
	// failed (the fleet is below capacity). The window runs from the
	// first user-visible loss or degraded arrival to the last, bounding
	// what users saw of the death → reboot → rejoin loop.
	Degraded    int // arrivals generated while the fleet was below capacity
	FirstLossAt sim.Time
	LastLossAt  sim.Time
	ErrWindowMs float64

	OfferedPerSec    float64 // offered rate over the arrival window
	ThroughputPerSec float64 // completions per virtual second of the window
	GoodputPerSec    float64 // within-SLO completions per virtual second

	TenantIssued []int64 // per-tenant arrivals issued
	TenantDone   []int64 // per-tenant completions
}

// feCellStats is completion-side accounting for one cell. Every field is
// written only by jobs running on that cell — one shard — and read after
// the run; the merge into FrontendResult is single-threaded.
type feCellStats struct {
	completed   int
	good        int
	sharedSkips int
	hist        stats.Histogram
	tenantDone  []int64
}

// feGenStats is dispatch-side accounting for one per-cell generator,
// written only from that generator's own shard.
type feGenStats struct {
	offered      int
	issued       int
	shed         int
	forkErrs     int
	redirects    int
	degraded     int
	firstLoss    sim.Time
	lastLoss     sim.Time
	done         bool
	inflight     []int    // outstanding jobs per target cell
	out          []feJob  // outstanding job handles, launch order
	tenantIssued []int64
}

// feJob is one outstanding dispatch.
type feJob struct {
	pid  int
	cell int
}

func (g *feGenStats) markLoss(at sim.Time) {
	if g.firstLoss == 0 {
		g.firstLoss = at
	}
	if at > g.lastLoss {
		g.lastLoss = at
	}
}

// feHolder is one tenant's resident state: a holder process on the
// tenant's home cell whose COW leaf anchors the shared pages jobs map.
// The table is filled during setup and immutable while generators run.
type feHolder struct {
	pid  int
	home int
	leaf kmem.Addr
}

// RunFrontend drives the open-loop frontend against the hive and blocks
// (in simulated time) until the arrival window has passed and in-flight
// work has drained, or maxTime elapses. The second result carries the
// SLO-level metrics; the first is the common workload envelope.
func RunFrontend(h *core.Hive, cfg FrontendConfig, maxTime sim.Time) (*Result, *FrontendResult) {
	res := &Result{Name: "frontend", Cells: len(h.Cells)}
	fe := &FrontendResult{}
	h0, m0, i0 := snapshotFaults(h)
	cells := len(h.Cells)
	if cfg.Tenants < 1 {
		cfg.Tenants = 1
	}
	if cfg.MaxInFlight < 1 {
		cfg.MaxInFlight = 1
	}

	// Tenant holders: one resident process per tenant on its home cell.
	// Each materializes the tenant's shared pages in its COW leaf, then
	// parks; jobs from any cell map those pages (setting a dependency on
	// the home, §2's fault model) until the run ends or the home dies.
	tenantPages := 8 * cfg.JobSharedPages
	if tenantPages < 8 {
		tenantPages = 8
	}
	holders := make([]feHolder, cfg.Tenants)
	holdersReady := make([]int, cfg.Tenants) // one slot per holder's shard
	stopHolders := false
	for k := 0; k < cfg.Tenants; k++ {
		k := k
		home := k % cells
		h.Cells[home].Procs.Spawn(fmt.Sprintf("fe.tenant%d", k), 910,
			func(p *proc.Process, t *sim.Task) {
				for off := 0; off < tenantPages; off++ {
					if err := p.TouchAnon(t, int64(off), true); err != nil {
						return
					}
				}
				holders[k] = feHolder{pid: p.PID, home: home, leaf: p.Leaf}
				holdersReady[k] = 1
				for !stopHolders && !h.Cells[p.Cell].Failed() {
					t.Sleep(47 * sim.Millisecond)
				}
			})
	}
	allReady := func() bool {
		for _, r := range holdersReady {
			if r == 0 {
				return false
			}
		}
		return true
	}
	if !h.RunUntil(allReady, h.Now()+20*sim.Second) {
		res.AddError("tenant holders never became ready")
		return res, fe
	}

	// Completion-side and dispatch-side state, one slot per cell.
	cellStats := make([]*feCellStats, cells)
	genStats := make([]*feGenStats, cells)
	for i := range cellStats {
		cellStats[i] = &feCellStats{tenantDone: make([]int64, cfg.Tenants)}
		genStats[i] = &feGenStats{
			inflight:     make([]int, cells),
			tenantIssued: make([]int64, cfg.Tenants),
		}
	}

	// jobBody is one short request: exec, map the tenant's shared state
	// (read-mostly, one page written — the remotely-writable population
	// Wax's borrowing acts on), compute interleaved with private pages,
	// then record latency against the arrival stamp.
	jobBody := func(tenant, user int, arrival sim.Time, hold feHolder, sampled bool) proc.Body {
		return func(p *proc.Process, t *sim.Task) {
			cell := h.Cells[p.Cell]
			st := cellStats[p.Cell]
			var span trace.SpanID
			haveSpan := false
			if sampled && cell.Tracer.Enabled() {
				span = cell.Tracer.Begin(t.Now(), fmt.Sprintf("fe:tenant%d", tenant))
				haveSpan = true
			}
			cell.Procs.Exec(t, p)

			// Tenant state: skip (degraded) rather than fail when the
			// tenant's home or holder is gone.
			homeUp := !h.Cells[hold.home].Failed()
			if homeUp {
				if _, alive := h.Cells[hold.home].Procs.Get(hold.pid); !alive {
					homeUp = false
				}
			}
			if homeUp {
				base := int64(user%8) * int64(cfg.JobSharedPages)
				for off := 0; off < cfg.JobSharedPages; off++ {
					lp := cow.LP(hold.leaf, base+int64(off))
					pf, err := p.MapShared(t, lp, off == 0)
					if err != nil {
						return // home died mid-request: the job is lost
					}
					if off == 0 {
						cell.EP.M.WritePage(t, cell.Sched.Procs[0], pf.Frame,
							uint64(tenant)<<32|uint64(user))
					}
				}
			} else {
				st.sharedSkips++
			}

			chunks := 2
			perChunkAnon := cfg.JobAnonPages / chunks
			for ch := 0; ch < chunks; ch++ {
				p.Compute(t, cfg.JobCPU/sim.Time(chunks))
				for k := 0; k < perChunkAnon; k++ {
					if err := p.TouchAnon(t, int64(ch*perChunkAnon+k), true); err != nil {
						return
					}
				}
			}

			lat := t.Now() - arrival
			st.hist.ObserveTime(lat)
			st.completed++
			if lat <= cfg.SLOTarget {
				st.good++
			}
			st.tenantDone[tenant]++
			if haveSpan {
				cell.Tracer.End(t.Now(), span, fmt.Sprintf("fe:tenant%d", tenant), int64(lat))
			}
		}
	}

	// Generators: one open-loop dispatcher per cell, each with its own
	// seeded RNG so the arrival stream is independent of shard count.
	start := h.Now()
	res.Started = start
	endAt := start + cfg.Duration
	perGenRate := float64(cfg.RatePerSec) / float64(cells)
	genProcs := make([]*proc.Process, cells)
	for g := 0; g < cells; g++ {
		g := g
		cell := h.Cells[g]
		gs := genStats[g]
		genProcs[g] = cell.Procs.Spawn(fmt.Sprintf("fe.gen%d", g), 911,
			func(p *proc.Process, t *sim.Task) {
				rng := rand.New(rand.NewSource(int64(cfg.Seed) + int64(g)*1_000_003 + 17))
				var zipf *rand.Zipf
				if cfg.Tenants > 1 && cfg.ZipfS > 1 {
					zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Tenants-1))
				}
				drawTenant := func() int {
					if zipf != nil {
						return int(zipf.Uint64())
					}
					return rng.Intn(cfg.Tenants)
				}
				// sweep retires finished jobs and charges jobs stranded on
				// a failed cell as losses. Get() crosses shards the same
				// way the pmake coordinator's completion poll does.
				sweep := func(now sim.Time) {
					keep := gs.out[:0]
					for _, j := range gs.out {
						tc := h.Cells[j.cell]
						if tc.Failed() {
							gs.markLoss(now)
							gs.inflight[j.cell]--
							continue
						}
						if _, alive := tc.Procs.Get(j.pid); alive {
							keep = append(keep, j)
						} else {
							gs.inflight[j.cell]--
						}
					}
					gs.out = keep
				}
				route := func(home int) int {
					perTarget := cfg.MaxInFlight / cells
					if perTarget < 2 {
						perTarget = 2
					}
					if !h.Cells[home].Failed() && gs.inflight[home] < perTarget {
						return home
					}
					// Wax's placement hint for this dispatcher's cell:
					// spill to the least-loaded live cells it named.
					for _, tc := range cell.PlaceTargets {
						if tc >= 0 && tc < cells && !h.Cells[tc].Failed() && gs.inflight[tc] < perTarget {
							return tc
						}
					}
					for i := 0; i < cells; i++ {
						tc := (home + 1 + i) % cells
						if !h.Cells[tc].Failed() {
							return tc
						}
					}
					return -1
				}

				// Arrivals are paced against an absolute schedule (`next`),
				// not by sleeping between dispatches: the virtual time a
				// dispatch itself costs (fork RPC, sweeps) never stretches
				// the inter-arrival gaps. Under overload the dispatcher
				// falls behind the schedule and arrivals queue — the
				// open-loop property the closed-loop workloads lack.
				next := t.Now()
				for {
					now := t.Now()
					if cell.Failed() || now >= endAt+sim.Second {
						break
					}
					rate := perGenRate
					if cfg.BurstFactor > 1 && cfg.BurstLen > 0 &&
						next >= start+cfg.BurstAt && next < start+cfg.BurstAt+cfg.BurstLen {
						rate *= cfg.BurstFactor
					}
					gap := sim.Time(rng.ExpFloat64() / rate * float64(sim.Second))
					if gap < sim.Microsecond {
						gap = sim.Microsecond
					}
					next += gap
					if next >= endAt {
						break
					}
					if d := next - now; d > 0 {
						t.Sleep(d)
					}
					now = t.Now()
					if cell.Failed() {
						break
					}
					gs.offered++
					if gs.offered%8 == 0 {
						sweep(now)
					}
					below := false
					for _, c := range h.Cells {
						if c.Failed() {
							below = true
							break
						}
					}
					if below {
						gs.degraded++
						gs.markLoss(now)
					}
					// A dispatcher running behind schedule is itself a queue.
					// An arrival that already waited out its SLO budget
					// before dispatch is shed, not issued: the overload
					// response is bounded latency for admitted jobs, never a
					// collapse into an ever-deepening backlog.
					if now-next > cfg.SLOTarget {
						gs.shed++
						// Keep the RNG stream aligned with admitted arrivals.
						_ = drawTenant()
						_ = rng.Intn(cfg.Users)
						continue
					}
					tenant := drawTenant()
					user := rng.Intn(cfg.Users)
					if len(gs.out) >= cfg.MaxInFlight {
						sweep(now)
						if len(gs.out) >= cfg.MaxInFlight {
							gs.shed++
							continue
						}
					}
					target := route(holders[tenant].home)
					if target < 0 {
						gs.forkErrs++
						gs.markLoss(now)
						continue
					}
					sampled := cfg.SpanSample > 0 && gs.issued%cfg.SpanSample == 0
					// Latency is charged from the scheduled arrival, so time
					// spent queued behind a backlogged dispatcher counts.
					pid, err := cell.Procs.ForkExec(t, p, target,
						fmt.Sprintf("fe%d.%d", g, gs.issued),
						jobBody(tenant, user, next, holders[tenant], sampled))
					if err != nil {
						gs.forkErrs++
						gs.markLoss(now)
						continue
					}
					if target != holders[tenant].home {
						gs.redirects++
					}
					gs.issued++
					gs.tenantIssued[tenant]++
					gs.inflight[target]++
					gs.out = append(gs.out, feJob{pid: pid, cell: target})
				}

				// Drain: the arrival window is over; retire everything still
				// in flight. The drain is not time-bounded — returning with
				// live jobs would hand whoever runs next a hive still
				// working through this run's backlog (the caller's maxTime
				// deadline is the only bound). Jobs stranded on a failed
				// cell are charged as losses by the sweep.
				for len(gs.out) > 0 && !cell.Failed() {
					t.Sleep(5 * sim.Millisecond)
					sweep(t.Now())
				}
				gs.done = true
			})
	}

	deadline := h.Now() + maxTime
	settled := func() bool {
		for g := 0; g < cells; g++ {
			if !genStats[g].done && !genProcs[g].Exited() {
				return false
			}
		}
		return true
	}
	h.RunUntil(settled, deadline)
	res.Done = settled()
	res.Elapsed = h.Now() - start
	// Release the holders: they park in 47 ms sleeps and exit on their
	// next wake-up if the caller keeps simulating (campaign settle does);
	// with the engine stopped they are simply left parked.
	stopHolders = true

	// Merge (single-threaded, cell order).
	var merged stats.Histogram
	fe.TenantIssued = make([]int64, cfg.Tenants)
	fe.TenantDone = make([]int64, cfg.Tenants)
	for g := 0; g < cells; g++ {
		gs, cs := genStats[g], cellStats[g]
		fe.Offered += gs.offered
		fe.Issued += gs.issued
		fe.Shed += gs.shed
		fe.ForkErrs += gs.forkErrs
		fe.Redirects += gs.redirects
		fe.Degraded += gs.degraded
		if gs.firstLoss > 0 && (fe.FirstLossAt == 0 || gs.firstLoss < fe.FirstLossAt) {
			fe.FirstLossAt = gs.firstLoss
		}
		if gs.lastLoss > fe.LastLossAt {
			fe.LastLossAt = gs.lastLoss
		}
		fe.Completed += cs.completed
		fe.Good += cs.good
		fe.SharedSkips += cs.sharedSkips
		merged.Merge(&cs.hist)
		for k := 0; k < cfg.Tenants; k++ {
			fe.TenantIssued[k] += gs.tenantIssued[k]
			fe.TenantDone[k] += cs.tenantDone[k]
		}
	}
	fe.Lost = fe.Issued - fe.Completed
	fe.Latency = merged.Snapshot()
	if fe.LastLossAt > fe.FirstLossAt {
		fe.ErrWindowMs = (fe.LastLossAt - fe.FirstLossAt).Millis()
	}
	secs := cfg.Duration.Seconds()
	if secs > 0 {
		fe.OfferedPerSec = float64(fe.Offered) / secs
		fe.ThroughputPerSec = float64(fe.Completed) / secs
		fe.GoodputPerSec = float64(fe.Good) / secs
	}
	res.finishStats(h, h0, m0, i0)
	return res, fe
}
