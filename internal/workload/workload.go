// Package workload implements the paper's evaluation workloads (Table 7.1)
// as synthetic generators that reproduce each program's kernel-visible
// behaviour:
//
//   - pmake: parallel compilation of 11 files of GnuChess 3.1, four at a
//     time — many short processes, heavy namespace traffic on a shared
//     source tree, intermediate files on a /tmp file-server cell, and the
//     §5.2 page-cache fault profile (≈8900 cache-hit faults, ≈55 % remote
//     on four cells).
//   - ocean: a SPLASH-2 scientific simulation on a 130×130 grid — one
//     parallel application whose threads write-share the data segment
//     (the §4.2 firewall study's ≈550 remotely-writable pages per cell).
//   - raytrace: SPLASH-2 rendering of a teapot — fork-based parallelism
//     with a read-shared scene reached through the distributed
//     copy-on-write tree.
//
// Each generator runs on any Hive configuration (1-4 cells) and on the
// IRIX baseline, and records the output files it wrote so the fault
// injection campaign can verify data integrity afterwards.
package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/proc"
	"repro/internal/sim"
)

// Result is one workload execution's outcome.
type Result struct {
	Name    string
	Cells   int
	Started sim.Time
	Elapsed sim.Time
	Done    bool

	// Outputs lists files written, for post-run integrity checking.
	Outputs []OutputFile

	// Fault-path statistics aggregated across cells (§5.2 reports
	// these for pmake).
	FaultHits    int64
	FaultMisses  int64
	RemoteFaults int64

	Errors []string
}

// OutputFile records an output file's identity and expected contents.
type OutputFile struct {
	Path  string
	Pages int
	Seed  uint64
	Home  int
}

// AddError records a workload-visible error (processes killed by fault
// injection produce none — they just vanish; errors here are unexpected).
func (r *Result) AddError(format string, args ...any) {
	r.Errors = append(r.Errors, fmt.Sprintf(format, args...))
}

// snapshotFaults sums the cells' fault counters.
func snapshotFaults(h *core.Hive) (hits, misses, imports int64) {
	for _, c := range h.Cells {
		hits += c.VM.Metrics.Counter("vm.fault_hits").Value()
		misses += c.VM.Metrics.Counter("vm.fault_misses").Value()
		imports += c.VM.Metrics.Counter("vm.imports").Value()
	}
	return
}

// finishStats fills the Result's fault statistics from counter deltas.
func (r *Result) finishStats(h *core.Hive, h0, m0, i0 int64) {
	h1, m1, i1 := snapshotFaults(h)
	r.FaultHits = (h1 - h0) + (m1 - m0) // faults that found the page cached somewhere
	r.FaultMisses = m1 - m0
	r.RemoteFaults = i1 - i0
}

// VerifyOutputs re-reads every output file from a surviving cell and
// checks its content tags — the paper's §7.4 output-comparison correctness
// check. A *data integrity violation* is silently wrong or corrupt data;
// files that are missing (their writer was killed) or that return EIO
// (stale generation after preemptive discard) are availability losses the
// fault-containment model explicitly permits, and are not counted.
func VerifyOutputs(h *core.Hive, res *Result) (bad int, report []string) {
	live := h.LiveCells()
	if len(live) == 0 {
		return len(res.Outputs), []string{"no live cells"}
	}
	reader := live[0]
	done := false
	reader.Procs.Spawn("verify", 900, func(p *proc.Process, t *sim.Task) {
		defer func() { done = true }()
		for _, out := range res.Outputs {
			if h.Cells[out.Home].Failed() {
				continue // lost with its cell: not an integrity violation
			}
			hdl, err := reader.FS.Open(t, out.Path)
			if err != nil {
				continue // missing: writer killed (availability loss)
			}
			pages, err := reader.FS.Read(t, hdl, out.Pages)
			if err != nil {
				continue // EIO (stale generation): the correct signal
			}
			for i, pg := range pages {
				if pg.Tag == 0 {
					break // short file: writer killed mid-write
				}
				want := fs.PageTag(hdl.Key, int64(i), out.Seed)
				if pg.Corrupt || pg.Tag != want {
					bad++
					report = append(report, fmt.Sprintf("%s page %d: tag=%x want=%x corrupt=%v",
						out.Path, i, pg.Tag, want, pg.Corrupt))
					break
				}
			}
			reader.FS.Close(t, hdl)
		}
	})
	if !h.RunUntil(func() bool { return done }, h.Now()+60*sim.Second) {
		return bad + 1, append(report, "verification timed out")
	}
	return bad, report
}
