package workload

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// TestCalibrationPrint is a calibration aid; run with -run Calibration -v
// to see the Table 7.2 numbers.
func TestCalibrationPrint(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration print")
	}
	for _, cells := range []int{0, 1, 2, 4} {
		var h = BootIRIX()
		name := "IRIX"
		if cells > 0 {
			h = BootHive(cells)
			name = fmt.Sprintf("hive%d", cells)
		}
		res := RunPmake(h, DefaultPmake(), 120*sim.Second)
		fmt.Printf("pmake    %-6s elapsed=%.3fs done=%v faults=%d remote=%d errs=%v\n",
			name, res.Elapsed.Seconds(), res.Done, res.FaultHits, res.RemoteFaults, res.Errors)
	}
	for _, cells := range []int{0, 1, 2, 4} {
		var h = BootIRIX()
		name := "IRIX"
		if cells > 0 {
			h = BootHive(cells)
			name = fmt.Sprintf("hive%d", cells)
		}
		res := RunOcean(h, DefaultOcean(), 120*sim.Second)
		fmt.Printf("ocean    %-6s elapsed=%.3fs done=%v remote=%d rw=%v errs=%v\n",
			name, res.Elapsed.Seconds(), res.Done, res.RemoteFaults, OceanRemotelyWritablePages(h), res.Errors)
	}
	for _, cells := range []int{0, 1, 2, 4} {
		var h = BootIRIX()
		name := "IRIX"
		if cells > 0 {
			h = BootHive(cells)
			name = fmt.Sprintf("hive%d", cells)
		}
		res := RunRaytrace(h, DefaultRaytrace(), 120*sim.Second)
		fmt.Printf("raytrace %-6s elapsed=%.3fs done=%v remote=%d errs=%v\n",
			name, res.Elapsed.Seconds(), res.Done, res.RemoteFaults, res.Errors)
	}
}
