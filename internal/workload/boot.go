package workload

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/membership"
)

// defaultShards, set once at CLI startup via SetDefaultShards, boots every
// harness Hive on the sharded engine with that many worker threads
// (0 = classic single engine). Boot sites that set Config.Shards
// explicitly are not overridden.
var defaultShards int

// ShardsAuto, passed to SetDefaultShards (or returned by ParseShards for
// "auto"), selects one worker per cell shard at each boot site.
const ShardsAuto = -1

// SetDefaultShards selects the engine mode for subsequent Boot* calls:
// 0 = classic, N = sharded with N workers, ShardsAuto = one worker per
// cell. The CLIs' -shards flag lands here; results are byte-identical at
// every positive value.
func SetDefaultShards(n int) { defaultShards = n }

// AutoShards is the -shards auto worker count for a cell count: one worker
// per cell shard, letting the runtime multiplex onto available CPUs.
func AutoShards(cells int) int { return cells }

// ParseShards parses a -shards flag value: "" and "0" keep the classic
// engine, "auto" selects ShardsAuto, any positive integer is a worker
// count.
func ParseShards(s string) (int, error) {
	switch s {
	case "", "0":
		return 0, nil
	case "auto":
		return ShardsAuto, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("workload: -shards %q: want a positive integer, \"auto\", or 0", s)
	}
	return n, nil
}

// applyDefaultShards resolves the process-wide default engine mode for one
// boot config (explicit settings win).
func applyDefaultShards(cfg *core.Config) {
	if cfg.Shards != 0 {
		return
	}
	cfg.Shards = defaultShards
	if defaultShards == ShardsAuto {
		cfg.Shards = AutoShards(cfg.Cells)
	}
}

// BootHive boots a machine partitioned into the given number of cells
// (1 up to core.MaxCells), with /tmp homed on the last cell. Counts that
// divide the paper's 4-node evaluation machine boot exactly that machine;
// larger (or non-dividing) counts scale the machine to one node per cell,
// keeping per-cell resources identical to the paper's configuration.
func BootHive(cells int) *core.Hive {
	return BootHiveWith(cells, core.DefaultConfig().Seed, nil)
}

// scaleConfig sizes cfg's machine for the requested cell count and installs
// the standard mounts. The 4-node evaluation machine is kept whenever the
// count divides it so the calibrated 1/2/4-cell timings are untouched.
func scaleConfig(cfg core.Config, cells int) core.Config {
	cfg.Cells = cells
	if cells > 0 && (cells > cfg.Machine.Nodes || cfg.Machine.Nodes%cells != 0) {
		cfg.Machine.Nodes = cells
	}
	cfg.Mounts = standardMounts(cells)
	return cfg
}

// standardMounts places /tmp on the last cell (the paper's intermediate-
// file server) and the shared source tree and data sets on cell 0.
func standardMounts(cells int) []fs.Mount {
	return []fs.Mount{
		{Prefix: "/tmp", Cell: cells - 1},
		{Prefix: "/usr", Cell: 0},
		{Prefix: "/data", Cell: 0},
	}
}

// BootHiveSeeded is BootHive with an explicit seed (fault campaigns vary
// the seed across trials).
func BootHiveSeeded(cells int, seed int64) *core.Hive {
	return BootHiveWith(cells, seed, nil)
}

// BootHiveWith is BootHiveSeeded with a config hook applied after the
// standard fields are set — the knob the tracing harnesses use to widen
// trace rings without duplicating the standard boot recipe.
func BootHiveWith(cells int, seed int64, mutate func(*core.Config)) *core.Hive {
	cfg := scaleConfig(core.DefaultConfig(), cells)
	cfg.Seed = seed
	if mutate != nil {
		mutate(&cfg)
	}
	applyDefaultShards(&cfg)
	return core.Boot(cfg)
}

// BootIRIX boots the IRIX 5.2 baseline: the same machine and kernel code
// paths as a single cell spanning all nodes, with Hive's protection
// hardware turned off — no firewall checks, no clock monitoring of peers
// (a single cell has no neighbours), no careful-reference traffic.
func BootIRIX() *core.Hive {
	cfg := core.DefaultConfig()
	cfg.Cells = 1
	cfg.Machine.FirewallEnabled = false
	cfg.Mounts = standardMounts(1)
	cfg.Agreement = membership.Oracle
	applyDefaultShards(&cfg)
	return core.Boot(cfg)
}
