package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/vm"
)

// filePageOf resolves an output file's first page id.
func filePageOf(h *core.Hive, out OutputFile) vm.LogicalPage {
	id := mustKey(h, out.Home, out.Path)
	return vm.LogicalPage{Obj: vm.ObjID{Kind: vm.FileObj, Home: out.Home, Num: id}}
}

// Small, fast configurations for unit assertions (the full calibrated runs
// are exercised by TestCalibrationPrint and the bench suite).

func smallPmake() PmakeConfig {
	cfg := DefaultPmake()
	cfg.Files = 4
	cfg.CompileCPU = 40 * sim.Millisecond
	cfg.NamespaceOps = 60
	cfg.SharedPages = 48
	cfg.AnonPages = 16
	cfg.SrcPages = 8
	cfg.OutPages = 4
	cfg.TmpMapPages = 4
	return cfg
}

func TestPmakeCompletesAndVerifies(t *testing.T) {
	h := BootHive(4)
	res := RunPmake(h, smallPmake(), 60*sim.Second)
	if !res.Done {
		t.Fatalf("not done: %v", res.Errors)
	}
	if len(res.Outputs) != 4 {
		t.Fatalf("outputs = %d", len(res.Outputs))
	}
	bad, report := VerifyOutputs(h, res)
	if bad != 0 {
		t.Fatalf("integrity: %v", report)
	}
	if res.FaultHits == 0 || res.RemoteFaults == 0 {
		t.Fatalf("faults=%d remote=%d", res.FaultHits, res.RemoteFaults)
	}
}

func TestPmakeSingleCellHasNoRemoteTraffic(t *testing.T) {
	h := BootHive(1)
	res := RunPmake(h, smallPmake(), 60*sim.Second)
	if !res.Done {
		t.Fatalf("not done: %v", res.Errors)
	}
	if res.RemoteFaults != 0 {
		t.Fatalf("remote faults on one cell: %d", res.RemoteFaults)
	}
}

func TestPmakeDeterministic(t *testing.T) {
	run := func() sim.Time {
		h := BootHiveSeeded(4, 42)
		return RunPmake(h, smallPmake(), 60*sim.Second).Elapsed
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestPmakeSlowdownShape(t *testing.T) {
	cfg := smallPmake()
	cfg.CompileCPU = 250 * sim.Millisecond
	cfg.NamespaceOps = 400
	base := RunPmake(BootIRIX(), cfg, 60*sim.Second).Elapsed
	four := RunPmake(BootHive(4), cfg, 60*sim.Second).Elapsed
	if four <= base {
		t.Fatalf("4-cell (%v) not slower than IRIX (%v)", four, base)
	}
	if float64(four)/float64(base) > 1.6 {
		t.Fatalf("4-cell slowdown implausibly high: %v vs %v", four, base)
	}
}

func TestOceanWriteSharesAcrossCells(t *testing.T) {
	h := BootHive(4)
	cfg := DefaultOcean()
	cfg.GridPages = 200
	cfg.Iterations = 3
	cfg.StepCPU = 10 * sim.Millisecond
	// Sample during the run via an event probe.
	var peak int
	h.Eng.After(50*sim.Millisecond, func() {})
	probe := func() {
		total := 0
		for _, c := range h.Cells {
			total += c.VM.RemotelyWritablePages()
		}
		if total > peak {
			peak = total
		}
	}
	stop := false
	var tick func()
	tick = func() {
		if stop {
			return
		}
		probe()
		h.Eng.After(10*sim.Millisecond, tick)
	}
	h.Eng.After(10*sim.Millisecond, tick)
	res := RunOcean(h, cfg, 60*sim.Second)
	stop = true
	if !res.Done {
		t.Fatalf("not done: %v", res.Errors)
	}
	// All 200 grid pages end up write-shared (50 per cell, each open to
	// the other three).
	if peak < 150 {
		t.Fatalf("peak remotely-writable = %d, want ≈200", peak)
	}
}

func TestRaytraceCrossCellCOWTraffic(t *testing.T) {
	h := BootHive(4)
	cfg := DefaultRaytrace()
	cfg.Tiles = 8
	cfg.TileCPU = 5 * sim.Millisecond
	cfg.ScenePages = 60
	res := RunRaytrace(h, cfg, 60*sim.Second)
	if !res.Done {
		t.Fatalf("not done: %v", res.Errors)
	}
	visits := int64(0)
	for _, c := range h.Cells {
		visits += c.COW.Metrics.Counter("cow.remote_visits").Value()
	}
	if visits == 0 {
		t.Fatal("no cross-cell COW traversals — scene sharing not exercised")
	}
	if res.RemoteFaults == 0 {
		t.Fatal("no scene imports")
	}
}

func TestWorkloadAbortsWhenCoordinatorCellDies(t *testing.T) {
	h := BootHive(4)
	cfg := smallPmake()
	cfg.CompileCPU = 200 * sim.Millisecond
	h.Eng.At(100*sim.Millisecond, func() { h.Cells[0].FailHardware() })
	res := RunPmake(h, cfg, 60*sim.Second)
	if res.Done {
		t.Fatal("reported done despite coordinator-cell failure")
	}
	// The run must abort promptly, not ride the deadline.
	if res.Elapsed > 5*sim.Second {
		t.Fatalf("aborted run took %v", res.Elapsed)
	}
}

func TestVerifyOutputsFlagsCorruption(t *testing.T) {
	h := BootHive(2)
	res := RunPmake(h, smallPmake(), 60*sim.Second)
	if !res.Done {
		t.Fatalf("not done: %v", res.Errors)
	}
	// Corrupt one output page behind the file system's back.
	out := res.Outputs[0]
	cell := h.Cells[out.Home]
	lp := filePageOf(h, out)
	pf, ok := cell.VM.Lookup(lp)
	if !ok {
		t.Fatal("output page not cached")
	}
	h.M.MarkCorrupt(pf.Frame)
	bad, _ := VerifyOutputs(h, res)
	if bad == 0 {
		t.Fatal("corruption not detected by verification")
	}
}

func TestMountsRouteToHomes(t *testing.T) {
	h := BootHive(4)
	if got := tmpHome(h); got != 3 {
		t.Fatalf("/tmp home = %d", got)
	}
	h1 := BootHive(2)
	if got := tmpHome(h1); got != 1 {
		t.Fatalf("/tmp home (2 cells) = %d", got)
	}
}
